package htd

import (
	"context"
	"strings"
	"testing"
)

const triangleSrc = "r1(x,y), r2(y,z), r3(z,x)."

func TestPublicAPIRoundTrip(t *testing.T) {
	h, err := ParseString(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d, ok, err := Decompose(ctx, h, Options{K: 2, Workers: 2})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWidth(d, 2); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 2 {
		t.Fatalf("width = %d, want 2", d.Width())
	}
}

func TestDecomposeKRejectsTriangleAtOne(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	_, ok, err := DecomposeK(context.Background(), h, 1)
	if err != nil || ok {
		t.Fatalf("triangle at k=1: ok=%v err=%v", ok, err)
	}
}

func TestDetKAndGHDBaselines(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	ctx := context.Background()
	d1, ok, err := DecomposeDetK(ctx, h, 2)
	if err != nil || !ok {
		t.Fatalf("detk: ok=%v err=%v", ok, err)
	}
	if err := Validate(d1); err != nil {
		t.Fatal(err)
	}
	d2, ok, err := DecomposeGHD(ctx, h, 2, 0)
	if err != nil || !ok {
		t.Fatalf("ghd: ok=%v err=%v", ok, err)
	}
	if err := ValidateGHD(d2); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalWidthPublic(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	w, d, ok, err := OptimalWidth(context.Background(), h, 4)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 2 {
		t.Fatalf("optimal width = %d, want 2", w)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeStatsExposed(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	_, ok, st, err := DecomposeStats(context.Background(), h, Options{K: 2})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st.Candidates == 0 {
		t.Fatal("stats should count candidates")
	}
	if st.MaxDepth == 0 {
		t.Fatal("stats should record recursion depth")
	}
}

func TestBuilderPublic(t *testing.T) {
	var b Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "b", "c")
	h := b.Build()
	d, ok, err := DecomposeK(context.Background(), h, 1)
	if err != nil || !ok {
		t.Fatalf("path should have width 1: ok=%v err=%v", ok, err)
	}
	if !strings.Contains(d.String(), "lambda=") {
		t.Fatal("rendering broken")
	}
}
