package htd

import (
	"context"
	"strings"
	"sync"
	"testing"
)

const triangleSrc = "r1(x,y), r2(y,z), r3(z,x)."

func TestPublicAPIRoundTrip(t *testing.T) {
	h, err := ParseString(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d, ok, err := Decompose(ctx, h, Options{K: 2, Workers: 2})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWidth(d, 2); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 2 {
		t.Fatalf("width = %d, want 2", d.Width())
	}
}

func TestDecomposeKRejectsTriangleAtOne(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	_, ok, err := DecomposeK(context.Background(), h, 1)
	if err != nil || ok {
		t.Fatalf("triangle at k=1: ok=%v err=%v", ok, err)
	}
}

func TestDetKAndGHDBaselines(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	ctx := context.Background()
	d1, ok, err := DecomposeDetK(ctx, h, 2)
	if err != nil || !ok {
		t.Fatalf("detk: ok=%v err=%v", ok, err)
	}
	if err := Validate(d1); err != nil {
		t.Fatal(err)
	}
	d2, ok, err := DecomposeGHD(ctx, h, 2, 0)
	if err != nil || !ok {
		t.Fatalf("ghd: ok=%v err=%v", ok, err)
	}
	if err := ValidateGHD(d2); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalWidthPublic(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	w, d, ok, err := OptimalWidth(context.Background(), h, 4)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 2 {
		t.Fatalf("optimal width = %d, want 2", w)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeStatsExposed(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	_, ok, st, err := DecomposeStats(context.Background(), h, Options{K: 2})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st.Candidates == 0 {
		t.Fatal("stats should count candidates")
	}
	if st.MaxDepth == 0 {
		t.Fatal("stats should record recursion depth")
	}
}

func TestBuilderPublic(t *testing.T) {
	var b Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "b", "c")
	h := b.Build()
	d, ok, err := DecomposeK(context.Background(), h, 1)
	if err != nil || !ok {
		t.Fatalf("path should have width 1: ok=%v err=%v", ok, err)
	}
	if !strings.Contains(d.String(), "lambda=") {
		t.Fatal("rendering broken")
	}
}

func TestDecomposeOptimalPublic(t *testing.T) {
	h, _ := ParseString(triangleSrc)
	w, d, ok, err := DecomposeOptimal(context.Background(), h, RaceOptions{KMax: 4, MaxProbes: 2})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 2 {
		t.Fatalf("optimal width = %d, want 2", w)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWidth(d, 2); err != nil {
		t.Fatal(err)
	}

	res, err := DecomposeOptimalResult(context.Background(), h, RaceOptions{KMax: 4})
	if err != nil || !res.Found || res.Width != 2 {
		t.Fatalf("found=%v width=%d err=%v", res.Found, res.Width, err)
	}
	if res.LowerBound != 2 || res.LowerBoundFrom.String() != "probe" {
		t.Fatalf("lower bound %d from %v", res.LowerBound, res.LowerBoundFrom)
	}
}

func TestServiceOptimalModePublic(t *testing.T) {
	svc := NewService(ServiceConfig{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	h, _ := ParseString(triangleSrc)
	res := svc.Submit(context.Background(), ServiceRequest{H: h, K: 4, Mode: ModeOptimal})
	if res.Err != nil || !res.OK || res.Width != 2 {
		t.Fatalf("ok=%v width=%d err=%v", res.OK, res.Width, res.Err)
	}
	if err := Validate(res.Decomp); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.OptimalJobs != 1 {
		t.Fatalf("OptimalJobs=%d, want 1", st.OptimalJobs)
	}
}

// TestServicePublicAPI drives htd.Service end to end: 32 concurrent
// submissions over a shared budget, then a batch, then stats.
func TestServicePublicAPI(t *testing.T) {
	svc := NewService(ServiceConfig{TokenBudget: 2, MaxConcurrent: 8, MaxQueue: 128})
	defer svc.Close()

	h, err := ParseString(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 32
	results := make([]ServiceResult, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = svc.Submit(context.Background(), ServiceRequest{H: h, K: 2})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil || !r.OK {
			t.Fatalf("job %d: ok=%v err=%v", i, r.OK, r.Err)
		}
		if err := Validate(r.Decomp); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	batch := svc.Batch(context.Background(), []ServiceRequest{
		{H: h, K: 2}, {H: h, K: 1},
	})
	if batch[0].Err != nil || !batch[0].OK {
		t.Fatalf("batch[0]: ok=%v err=%v", batch[0].OK, batch[0].Err)
	}
	if batch[1].Err != nil || batch[1].OK {
		t.Fatalf("batch[1]: triangle at k=1 must be rejected (ok=%v err=%v)", batch[1].OK, batch[1].Err)
	}

	st := svc.Stats()
	if st.Completed != jobs+2 {
		t.Fatalf("completed %d, want %d", st.Completed, jobs+2)
	}
	if st.TokensHighWater > st.TokenBudget {
		t.Fatalf("budget exceeded: %d > %d", st.TokensHighWater, st.TokenBudget)
	}
	if st.CacheReuses == 0 {
		t.Fatal("identical submissions should reuse the memo cache")
	}
}
