package htd

// fuzz_test.go is the PR's correctness wall: a native Go fuzz target
// seeded from the deterministic HyperBench-sim corpus. For every parsed
// hypergraph it cross-checks the basic Algorithm 1 oracle, the
// optimised solver (sequential and parallel), det-k-decomp, the GHD
// solver, and the optimal-width racer: all decisions must agree, every
// returned decomposition must pass the independent CheckHD / CheckGHD
// checkers, and the racer's width must equal the serial optimum.
//
// CI runs a short `-fuzz` smoke (see Makefile `fuzz`); `go test` alone
// replays the seed corpus as regression tests.

import (
	"context"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hyperbench"
	"repro/internal/logk"
	"repro/internal/opt"
	"repro/internal/race"
)

func FuzzDecomposeCheckHD(f *testing.F) {
	// Seed corpus: the small instances of the deterministic suite, plus
	// hand-picked shapes (cyclic, acyclic, hyperedges of arity > 2).
	for _, in := range hyperbench.Suite(hyperbench.Config{Scale: 1, Seed: 2022}) {
		if in.H.NumEdges() <= 10 && in.H.NumVertices() <= 14 {
			f.Add(in.H.String(), byte(in.KnownHW))
		}
	}
	f.Add("r1(x,y), r2(y,z), r3(z,x).", byte(2))
	f.Add("e1(a,b,c), e2(c,d), e3(d,a).", byte(2))
	f.Add("p1(a,b), p2(b,c), p3(c,d).", byte(1))
	f.Add("big(a,b,c,d), t1(a,x), t2(b,x), t3(c,y).", byte(1))
	// Positive-cache seed: a satisfiable shape (hw = 2) whose repeat
	// submission exercises the service's cached-witness path below.
	f.Add("q1(u,v), q2(v,w), q3(w,u), q4(u,t), q5(t,v).", byte(2))

	f.Fuzz(func(t *testing.T, src string, kb byte) {
		h, err := ParseString(src)
		if err != nil {
			t.Skip()
		}
		// Keep the exhaustive oracles (Algorithm 1, serial opt) fast.
		if h.NumEdges() == 0 || h.NumEdges() > 8 || h.NumVertices() > 10 {
			t.Skip()
		}
		k := int(kb)%3 + 1
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()

		// Basic Algorithm 1 is the decision oracle at width k.
		_, want, err := logk.NewBasic(h, k).Decompose(ctx)
		if err != nil {
			t.Fatalf("basic solver errored: %v\ninstance:\n%s", err, h)
		}

		check := func(name string, d *Decomposition, ok bool, err error, ghd bool) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s k=%d errored: %v\ninstance:\n%s", name, k, err, h)
			}
			if !ghd && ok != want {
				t.Fatalf("%s k=%d decided %v, oracle says %v\ninstance:\n%s", name, k, ok, want, h)
			}
			if !ok {
				return
			}
			verr := decomp.CheckHD(d)
			if ghd {
				verr = decomp.CheckGHD(d)
			}
			if verr == nil {
				verr = decomp.CheckWidth(d, k)
			}
			if verr != nil {
				t.Fatalf("%s k=%d returned an invalid decomposition: %v\ninstance:\n%s", name, k, verr, h)
			}
		}

		d, ok, err := Decompose(ctx, h, Options{K: k})
		check("logk", d, ok, err, false)
		d, ok, err = Decompose(ctx, h, Options{K: k, Workers: 4})
		check("logk-parallel", d, ok, err, false)
		d, ok, err = DecomposeDetK(ctx, h, k)
		check("detk", d, ok, err, false)
		// ghw ≤ hw, so the GHD solver must succeed whenever the oracle
		// does; its output is validated as a GHD (no special condition).
		d, ok, err = DecomposeGHD(ctx, h, k, 0)
		if want && !ok && err == nil {
			t.Fatalf("ghd k=%d rejected but hw <= %d holds\ninstance:\n%s", k, k, h)
		}
		check("ghd", d, ok, err, true)

		// The racer must agree with the serial optimum exactly.
		const kMax = 4
		wantW, _, wantFound, err := opt.New(h, kMax).Solve(ctx)
		if err != nil {
			t.Fatalf("serial optimal solver errored: %v\ninstance:\n%s", err, h)
		}
		res, err := race.New(h, race.Config{KMax: kMax, MaxProbes: 3, Workers: 2}).Solve(ctx)
		if err != nil {
			t.Fatalf("racer errored: %v\ninstance:\n%s", err, h)
		}
		if res.Found != wantFound {
			t.Fatalf("racer found=%v, serial optimum found=%v\ninstance:\n%s", res.Found, wantFound, h)
		}
		if !res.Found {
			return
		}
		if res.Width != wantW {
			t.Fatalf("racer width %d, serial optimum %d\ninstance:\n%s", res.Width, wantW, h)
		}
		if verr := decomp.CheckHD(res.Decomp); verr != nil {
			t.Fatalf("racer witness invalid: %v\ninstance:\n%s", verr, h)
		}
		if verr := decomp.CheckWidth(res.Decomp, wantW); verr != nil {
			t.Fatalf("racer witness exceeds optimum: %v\ninstance:\n%s", verr, h)
		}

		// Positive result cache: decompose the same graph twice through a
		// service. The second submission must agree with the oracle, and
		// when it is answered from the cache its witness must survive the
		// independent CheckHD checker again.
		svc := NewService(ServiceConfig{TokenBudget: 1, MaxConcurrent: 2})
		defer svc.Close()
		first := svc.Submit(ctx, ServiceRequest{H: h, K: k})
		second := svc.Submit(ctx, ServiceRequest{H: h, K: k})
		for name, r := range map[string]ServiceResult{"first": first, "second": second} {
			if r.Err != nil {
				t.Fatalf("service %s errored: %v\ninstance:\n%s", name, r.Err, h)
			}
			if r.OK != want {
				t.Fatalf("service %s decided %v, oracle says %v\ninstance:\n%s", name, r.OK, want, h)
			}
			if r.OK {
				if verr := decomp.CheckHD(r.Decomp); verr != nil {
					t.Fatalf("service %s witness invalid: %v\ninstance:\n%s", name, verr, h)
				}
				if verr := decomp.CheckWidth(r.Decomp, k); verr != nil {
					t.Fatalf("service %s witness too wide: %v\ninstance:\n%s", name, verr, h)
				}
			}
		}
		if want && !second.CacheHit {
			t.Fatalf("repeat submission of a solved instance must hit the positive cache\ninstance:\n%s", h)
		}
	})
}
