#!/usr/bin/env sh
# capture_pprof.sh — memory-diet profile capture.
#
# Boots a real htdserve with the -pprof-addr listener enabled, warms it
# up, then captures heap, allocs, goroutine, and CPU profiles from the
# profiling endpoint while loadgen drives steady query traffic — so the
# CPU profile shows the executor under load, not an idle accept loop.
# Profiles land in the directory given as $1 (default /tmp/htd-pprof);
# nightly CI uploads that directory as an artifact, giving every night
# a browsable `go tool pprof` snapshot of the columnar executor.
#
# Usage: scripts/capture_pprof.sh [outdir]
set -eu

OUT="${1:-/tmp/htd-pprof}"
ADDR="127.0.0.1:18232"
PPROF_ADDR="127.0.0.1:18233"
URL="http://$ADDR"
PPROF_URL="http://$PPROF_ADDR"
# CPU profile window; the load run lasts slightly longer so the whole
# window sees traffic.
SECONDS_CPU="${PPROF_SECONDS:-10}"

mkdir -p "$OUT"
BIN="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

echo "capture_pprof: building htdserve and loadgen"
go build -o "$BIN/htdserve" ./cmd/htdserve
go build -o "$BIN/loadgen" ./cmd/loadgen

echo "capture_pprof: starting htdserve on $ADDR (pprof on $PPROF_ADDR)"
"$BIN/htdserve" -addr "$ADDR" -pprof-addr "$PPROF_ADDR" >/dev/null 2>&1 &
SRV_PID=$!

echo "capture_pprof: waiting for /healthz"
i=0
until curl -sf "$URL/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 150 ]; then
    echo "capture_pprof: FAIL: server did not become healthy" >&2
    exit 1
  fi
  sleep 0.1
done

# Drive steady traffic in the background for the whole capture window.
LOAD_SECONDS=$((SECONDS_CPU + 5))
echo "capture_pprof: driving load for ${LOAD_SECONDS}s"
"$BIN/loadgen" -url "$URL" -duration "${LOAD_SECONDS}s" \
  -tenant "profile:50:uniform" -out "$OUT/load.json" >/dev/null 2>&1 &
LOAD_PID=$!

sleep 2 # let traffic ramp before the snapshots
echo "capture_pprof: capturing profiles into $OUT"
curl -sf "$PPROF_URL/debug/pprof/heap" -o "$OUT/heap.pb.gz"
curl -sf "$PPROF_URL/debug/pprof/allocs" -o "$OUT/allocs.pb.gz"
curl -sf "$PPROF_URL/debug/pprof/goroutine" -o "$OUT/goroutine.pb.gz"
curl -sf "$PPROF_URL/debug/pprof/profile?seconds=$SECONDS_CPU" -o "$OUT/cpu.pb.gz"

wait "$LOAD_PID" 2>/dev/null || true

# A capture that produced empty files is a broken capture.
for f in heap allocs goroutine cpu; do
  if [ ! -s "$OUT/$f.pb.gz" ]; then
    echo "capture_pprof: FAIL: $f profile is empty" >&2
    exit 1
  fi
done
echo "capture_pprof: PASS (profiles in $OUT: heap, allocs, goroutine, cpu@${SECONDS_CPU}s)"
