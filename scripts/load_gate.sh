#!/usr/bin/env sh
# load_gate.sh — the live load wall.
#
# Boots a real htdserve with the tenant wall armed, drives it with a
# greedy tenant at 10x its rate limit next to a polite tenant well
# inside its budget — the polite tenant mixing dataset mutations into
# its traffic (writepct), so the wall is exercised by the write path
# too — and asserts isolation:
#
#   (a) the polite tenant's p99 and error rate stay within bounds even
#       while the greedy tenant is being rejected wholesale, and
#   (b) the whole server's p99 stays inside a calibrated envelope.
#
# Writes the loadgen JSON report (per-tenant p50/p99/error-rate plus
# the server's own /stats snapshot) to the path given as $1, default
# BENCH_PR7.json — committed once as the PR's evidence and uploaded
# nightly as an artifact.
#
# Usage: scripts/load_gate.sh [report.json]
set -eu

OUT="${1:-BENCH_PR7.json}"
ADDR="127.0.0.1:18231"
URL="http://$ADDR"

# Calibration: the tenant wall reserves 40 admissions/s per tenant with
# fair-share reflow. The greedy tenant offers 400 qps (10x its limit,
# so the wall must reject most of it); the polite tenant offers 10 qps
# (a quarter of its reserve, so the wall must never touch it).
TENANT_RATE=40
GREEDY_QPS=400
POLITE_QPS=10
# A fifth of the polite tenant's requests are NDJSON mutation batches
# against its own uploaded dataset — writes go through the same
# admission wall and must stay inside the same latency bounds.
POLITE_WRITEPCT=20
DURATION="${LOAD_GATE_DURATION:-10s}"

# Bounds: tiny conjunctive queries answer in single-digit milliseconds
# warm; 250ms p99 for the polite tenant and a 500ms whole-server
# envelope leave room for cold plans and noisy CI boxes while still
# catching an unfair scheduler by an order of magnitude.
POLITE_P99_MS=250
POLITE_ERROR_RATE=0.01
OVERALL_P99_MS=500

BIN="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

echo "load_gate: building htdserve and loadgen"
go build -o "$BIN/htdserve" ./cmd/htdserve
go build -o "$BIN/loadgen" ./cmd/loadgen

echo "load_gate: starting htdserve on $ADDR (tenant rate $TENANT_RATE/s, fair-share on)"
"$BIN/htdserve" -addr "$ADDR" \
  -tenant-rate "$TENANT_RATE" \
  -tenant-inflight 8 \
  -tenant-queue 16 \
  -fair-share \
  >/dev/null 2>&1 &
SRV_PID=$!

echo "load_gate: driving greedy:${GREEDY_QPS}qps(hotkey) + polite:${POLITE_QPS}qps(uniform, ${POLITE_WRITEPCT}% writes) for $DURATION"
"$BIN/loadgen" \
  -url "$URL" \
  -wait 15s \
  -duration "$DURATION" \
  -tenant "greedy:$GREEDY_QPS:hotkey" \
  -tenant "polite:$POLITE_QPS:uniform:$POLITE_WRITEPCT" \
  -out "$OUT" \
  -gate-tenant polite \
  -gate-p99-ms "$POLITE_P99_MS" \
  -gate-error-rate "$POLITE_ERROR_RATE" \
  -gate-overall-p99-ms "$OVERALL_P99_MS"

# The gate above proves the polite tenant was protected; also prove the
# wall actually pushed back on the greedy tenant, otherwise the run
# demonstrated nothing.
GREEDY_REJECTED=$(sed -n 's/^[[:space:]]*"rejected": \([0-9]*\),*$/\1/p' "$OUT" | head -1)
if [ -z "$GREEDY_REJECTED" ] || [ "$GREEDY_REJECTED" -eq 0 ]; then
  echo "load_gate: FAIL: greedy tenant saw no rejections (wall not engaged)" >&2
  exit 1
fi
# And prove the write mix actually ran: the polite tenant must have
# sent mutation batches (its "writes" counter), otherwise the wall was
# never exercised by the write path.
POLITE_WRITES=$(sed -n 's/^[[:space:]]*"writes": \([0-9]*\),*$/\1/p' "$OUT" | head -1)
if [ -z "$POLITE_WRITES" ] || [ "$POLITE_WRITES" -eq 0 ]; then
  echo "load_gate: FAIL: polite tenant sent no dataset mutations (write path not exercised)" >&2
  exit 1
fi
echo "load_gate: PASS (greedy rejected $GREEDY_REJECTED times, polite sent $POLITE_WRITES writes, report in $OUT)"
