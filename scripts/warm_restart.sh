#!/usr/bin/env sh
# warm_restart.sh — the two-process crash-safe warm-restart wall.
#
# Boots a real htdserve with -store-dir, feeds it decompositions, kills
# the process dead (kill -9, no graceful shutdown, no snapshot save),
# boots a second process on the same directory, and asserts the
# disk-backed store's whole contract:
#
#   (a) every repeat request is answered "cache_hit":true, and
#   (b) the restarted server's /stats reports SolverRuns == 0 —
#       the warm process never ran a solver at all.
#
# Usage: scripts/warm_restart.sh
set -eu

ADDR="127.0.0.1:18233"
URL="http://$ADDR"

WORK="$(mktemp -d)"
SRV_PID=""
trap 'kill -9 "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

echo "warm_restart: building htdserve"
go build -o "$WORK/htdserve" ./cmd/htdserve

boot() {
  "$WORK/htdserve" -addr "$ADDR" -store-dir "$WORK/store" >"$WORK/server.log" 2>&1 &
  SRV_PID=$!
  # Wait for the listener.
  i=0
  until curl -sf "$URL/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "warm_restart: FAIL: server did not come up; log:" >&2
      cat "$WORK/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# The job set: three distinct structures, decide and optimal modes.
JOBS='{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}
{"hypergraph":"a(x,y), b(y,z), c(z,w), d(w,x).","k":2}
{"hypergraph":"e1(a,b), e2(b,c), e3(c,d), e4(d,e), e5(e,a).","k":2,"mode":"optimal"}'

submit_all() {
  # $1 = the phase name; prints one response JSON per job.
  printf '%s\n' "$JOBS" | while IFS= read -r job; do
    RESP=$(curl -sf "$URL/decompose" -d "$job") || {
      echo "warm_restart: FAIL: $1 request failed: $job" >&2
      exit 1
    }
    printf '%s\n' "$RESP"
    case "$RESP" in
    *'"ok":true'*) ;;
    *)
      echo "warm_restart: FAIL: $1 request not ok: $RESP" >&2
      exit 1
      ;;
    esac
  done
}

echo "warm_restart: boot #1 (cold) on $ADDR, store in $WORK/store"
boot
submit_all cold >"$WORK/cold.out"

echo "warm_restart: kill -9 $SRV_PID (no graceful shutdown, no snapshot)"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

echo "warm_restart: boot #2 (warm) on the same store"
boot
submit_all warm >"$WORK/warm.out"

# (a) Every warm response must be a cache hit.
HITS=$(grep -c '"cache_hit":true' "$WORK/warm.out" || true)
WANT=$(printf '%s\n' "$JOBS" | grep -c .)
if [ "$HITS" -ne "$WANT" ]; then
  echo "warm_restart: FAIL: $HITS/$WANT warm responses were cache hits" >&2
  cat "$WORK/warm.out" >&2
  exit 1
fi

# (b) The warm process must have run zero solvers. service.Stats has no
# json tags, so the field name on the wire is the Go name.
STATS=$(curl -sf "$URL/stats")
case "$STATS" in
*'"SolverRuns":0'*) ;;
*)
  echo "warm_restart: FAIL: warm server ran solvers; /stats:" >&2
  printf '%s\n' "$STATS" >&2
  exit 1
  ;;
esac

echo "warm_restart: PASS ($HITS/$WANT cache hits after kill -9, SolverRuns=0)"
