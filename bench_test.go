package htd

// bench_test.go regenerates every table and figure of the paper's
// evaluation (§5 and Appendix D) at bench scale. Each benchmark runs one
// full (scaled-down) experiment per iteration and logs the resulting
// table on the first iteration; `cmd/benchtab` runs the same experiments
// at larger scale and timeout.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Expected shapes (absolute numbers depend on the machine; see
// EXPERIMENTS.md for one recorded run):
//
//	Table 1:  Hyb# >= LEO# >= DetK# in the Total row
//	Figure 1: log-k average runtime decreases with cores
//	Table 2:  WeightedCount rows solve at least as many as EdgeCount rows
//	Table 3:  Hyb matches VirtualBest at widths <= 3
//	Table 4:  Hyb decides the most bounds at every width
//	Table 5:  non-negative solved deltas under 10x timeout
//	Figure 3: unsolved instances concentrate in the largest buckets

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/hyperbench"
	"repro/internal/logk"
)

// benchSuite returns the instance suite used by the experiment benches:
// the deterministic Scale-1 HyperBench-sim suite.
func benchSuite() []hyperbench.Instance {
	return hyperbench.Suite(hyperbench.Config{Scale: 1, Seed: 2022})
}

// benchConfig bundles the scaled-down experiment parameters.
func benchConfig() harness.Config {
	return harness.Config{
		Suite:   benchSuite(),
		Timeout: 400 * time.Millisecond,
		KMax:    5,
		Workers: runtime.GOMAXPROCS(0),
	}
}

func checkResults(b *testing.B, results []harness.Result) {
	b.Helper()
	for _, r := range results {
		if r.Err != nil {
			b.Fatalf("%s on %s: %v", r.Method, r.Instance.Name, r.Err)
		}
	}
}

// BenchmarkTable1SolvedInstances reproduces Table 1: solved counts and
// runtime statistics per origin × size group for NewDetKDecomp, the
// HtdLEO stand-in and the log-k-decomp hybrid.
func BenchmarkTable1SolvedInstances(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tab, results := harness.Table1(context.Background(), cfg)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkFigure1ParallelScaling reproduces Figure 1: average runtime
// on the HBlarge analogue as a function of worker count.
func BenchmarkFigure1ParallelScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.Timeout = 1500 * time.Millisecond // search-bound instances need headroom
	cores := []int{1, 2, 4, 6}
	if runtime.GOMAXPROCS(0) < 6 {
		cores = []int{1, 2}
	}
	for i := 0; i < b.N; i++ {
		tab, _ := harness.Figure1(context.Background(), cfg, cores)
		if i == 0 {
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkTable2HybridMetrics reproduces the hybridisation study of
// Appendix D.2 (Table 2): WeightedCount vs EdgeCount thresholds.
func BenchmarkTable2HybridMetrics(b *testing.B) {
	cfg := benchConfig()
	cfg.Timeout = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		tab, results := harness.Table2(context.Background(), cfg)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkTable3SolvedByWidth reproduces Table 3: optimally solved
// instance counts per width, with the Virtual Best aggregate.
func BenchmarkTable3SolvedByWidth(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tab, results := harness.Table3(context.Background(), cfg)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkTable4UpperBounds reproduces Table 4: how many instances each
// method can decide "hw ≤ w" for, per width.
func BenchmarkTable4UpperBounds(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, results := harness.Table3(context.Background(), cfg)
		tab := harness.Table4(results, len(cfg.Suite), 6)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkTable5ExtendedTimeout reproduces Table 5 (Appendix D.3): the
// HtdLEO stand-in with a 10× budget.
func BenchmarkTable5ExtendedTimeout(b *testing.B) {
	cfg := benchConfig()
	cfg.Timeout = 100 * time.Millisecond
	for i := 0; i < b.N; i++ {
		tab, results := harness.Table5(context.Background(), cfg)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkFigure3SolvedScatter reproduces the solved/unsolved scatter
// of Appendix D.4 (Figure 3), as per-method CSV data plus a bucket table.
func BenchmarkFigure3SolvedScatter(b *testing.B) {
	cfg := benchConfig()
	methods := []harness.Method{
		harness.MethodDetK(),
		harness.MethodOpt(),
		harness.MethodLogKHybrid(cfg.Workers, logk.HybridWeightedCount, 40),
	}
	for i := 0; i < b.N; i++ {
		r := harness.Runner{Timeout: cfg.Timeout, KMax: cfg.KMax}
		results := r.RunAll(context.Background(), methods, cfg.Suite, nil)
		csv, tab := harness.Figure3(results)
		if i == 0 {
			checkResults(b, results)
			b.Logf("\n%s", tab.Render())
			b.Logf("scatter CSV: %d bytes (see cmd/benchtab -experiment figure3 for the full data)", len(csv))
		}
	}
}

// BenchmarkAblationOptimisations measures the Appendix C optimisations
// by disabling them one at a time (DESIGN.md ablation index).
func BenchmarkAblationOptimisations(b *testing.B) {
	cfg := benchConfig()
	// Medium instances with known widths only.
	var medium []hyperbench.Instance
	for _, in := range cfg.Suite {
		if in.KnownHW > 0 && in.Edges() > 10 && in.Edges() <= 60 {
			medium = append(medium, in)
		}
	}
	cfg.Suite = medium
	cfg.Timeout = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		tab := harness.AblationExperiment(context.Background(), cfg)
		if i == 0 {
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkRecursionDepth verifies Theorem 4.1 at growing sizes:
// recursion depth stays within ⌈log2 |E|⌉ + 2.
func BenchmarkRecursionDepth(b *testing.B) {
	sizes := []int{16, 32, 64, 128, 256}
	for i := 0; i < b.N; i++ {
		tab := harness.DepthExperiment(context.Background(), sizes)
		if i == 0 {
			b.Logf("\n%s", tab.Render())
		}
	}
}

// BenchmarkGHDComparison reproduces the §5.2 GHD comparison: the
// BalancedGo-style solver against the log-k-decomp hybrid.
func BenchmarkGHDComparison(b *testing.B) {
	cfg := benchConfig()
	// GHD search is exponential in the pool; keep to small instances.
	var small []hyperbench.Instance
	for _, in := range cfg.Suite {
		if in.Edges() <= 30 {
			small = append(small, in)
		}
	}
	cfg.Suite = small
	for i := 0; i < b.N; i++ {
		tab, err := harness.GHDComparison(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.Render())
		}
	}
}

// --- micro-benchmarks of the core solver ---------------------------------

func BenchmarkDecomposeCycle64K2(b *testing.B) {
	in := cycleBench(64)
	for i := 0; i < b.N; i++ {
		_, ok, err := Decompose(context.Background(), in, Options{K: 2})
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkDecomposeCycle64K2Parallel8(b *testing.B) {
	in := cycleBench(64)
	for i := 0; i < b.N; i++ {
		_, ok, err := Decompose(context.Background(), in, Options{K: 2, Workers: 8})
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkDetKCycle32K2(b *testing.B) {
	in := cycleBench(32)
	for i := 0; i < b.N; i++ {
		_, ok, err := DecomposeDetK(context.Background(), in, 2)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkHybridCycle64K2(b *testing.B) {
	in := cycleBench(64)
	for i := 0; i < b.N; i++ {
		_, ok, err := Decompose(context.Background(), in,
			Options{K: 2, Workers: 8, Hybrid: HybridWeightedCount, HybridThreshold: 40})
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func cycleBench(n int) *Hypergraph {
	var bld Builder
	for i := 0; i < n; i++ {
		bld.MustAddEdge("", vn(i), vn((i+1)%n))
	}
	return bld.Build()
}

func vn(i int) string {
	return "x" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
