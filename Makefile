# Local targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: all build fmt fmt-check vet test race bench fuzz serve ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchtab -experiment race -benchjson BENCH_PR2.json -quiet

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecomposeCheckHD -fuzztime=10s .

serve:
	$(GO) run ./cmd/htdserve

ci: fmt-check vet build race bench fuzz
