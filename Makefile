# Local targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` means a green CI run.

GO ?= go
# Benchmark artifact produced by `make bench` and uploaded by CI; bump
# per PR so artifacts stay comparable across the perf trajectory.
BENCH_JSON ?= BENCH_PR4.json

.PHONY: all build fmt fmt-check vet test race bench stress differential fuzz serve ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchtab -experiment query -benchjson $(BENCH_JSON) -quiet

stress:
	$(GO) test -race -count=2 -run 'TestStoreStress|TestCoalescing|TestBatchDuplicates|TestSnapshot|TestServeCache|TestShardedConcurrency|TestFlight' ./internal/store ./internal/service ./cmd/htdserve

differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestConcurrentIdentical|TestEval|TestServeQuery' ./internal/query ./internal/join ./cmd/htdserve

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecomposeCheckHD -fuzztime=10s .
	$(GO) test -run=NONE -fuzz=FuzzParseQuery -fuzztime=10s ./internal/join

serve:
	$(GO) run ./cmd/htdserve

ci: fmt-check vet build race bench stress differential fuzz
