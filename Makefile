# Local targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` means a green CI run (`make lint` needs staticcheck on PATH;
# the nightly workflow additionally runs `make fuzz-long`).

GO ?= go
# Benchmark artifact produced by `make bench-agg` and uploaded by CI;
# bump per PR so artifacts stay comparable across the perf trajectory.
BENCH_JSON ?= BENCH_PR6.json
# Committed baseline the bench-regression gate compares against.
BENCH_BASELINE ?= BENCH_PR4.json
# Load-wall report produced by `make load-gate` and uploaded nightly.
LOAD_JSON ?= BENCH_PR7.json
# Memory-diet artifact produced by `make bench-mem` and gated by
# `make bench-mem-gate` (the columnar-storage PR's baseline).
BENCH_MEM_JSON ?= BENCH_PR8.json
# Disk-store persistence artifact produced by `make bench-persist` and
# gated by `make bench-persist-gate` (the disk-backed store tier PR's
# baseline: cold solve+append vs warm restart with zero solver runs).
BENCH_PERSIST_JSON ?= BENCH_PR9.json
# Incremental-maintenance artifact produced by `make bench-incr` and
# gated by `make bench-incr-gate` (the versioned-dataset PR's
# baseline).
BENCH_INCR_JSON ?= BENCH_PR10.json

.PHONY: all build fmt fmt-check vet lint test race bench bench-exec bench-agg bench-gate bench-mem bench-mem-gate bench-persist bench-persist-gate bench-incr bench-incr-gate crash-recovery warm-restart pprof-capture load-gate stress differential fuzz fuzz-long docs-check serve ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Mirrors the CI lint job. Install the pinned version with:
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1.1
lint:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; exit 1; }
	staticcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchtab -experiment agg -benchjson $(BENCH_JSON) -quiet

# The previous PR's executor benchmark: serial slice-scan vs indexed vs
# parallel indexed Yannakakis over identical plans (writes its own
# fixed artifact so the exec trajectory stays comparable).
bench-exec:
	$(GO) run ./cmd/benchtab -experiment exec -benchjson BENCH_PR5.json -quiet

# This PR's benchmark: aggregate pushdown vs materialise-then-fold on
# high-output star queries, including the differential wall and the
# row-budget flip inside the experiment (writes $(BENCH_JSON)).
bench-agg:
	$(GO) run ./cmd/benchtab -experiment agg -benchjson $(BENCH_JSON) -quiet

# The bench-regression gate CI runs on every PR: a fresh query
# experiment must not regress the warm-plan suite >25% against the
# committed $(BENCH_BASELINE); the cold entries calibrate out the
# machine-speed difference between this host and the baseline's.
bench-gate:
	$(GO) run ./cmd/benchtab -experiment query \
		-benchjson /tmp/BENCH_query_fresh.json \
		-compare $(BENCH_BASELINE) -tolerance 0.25 -calibrate query-cold -quiet

# This PR's benchmark: the memory-diet harness — columnar kernels vs
# the frozen pre-columnar rowref executor, allocs/op and bytes/op cold
# vs warm, with byte-identity and the 2x allocation-reduction wall
# enforced inside the experiment. Writes $(BENCH_MEM_JSON).
bench-mem:
	$(GO) run ./cmd/benchtab -experiment mem -benchjson $(BENCH_MEM_JSON) -quiet

# The memory-regression gate CI runs on every PR: a fresh mem run must
# not regress warm indexed allocs/op, bytes/op, or (calibrated) ns/op
# >25% against the committed $(BENCH_MEM_JSON). Allocation counts are
# machine-independent; the rowref entries calibrate machine speed out
# of the timing ratios only.
bench-mem-gate:
	$(GO) run ./cmd/benchtab -experiment mem \
		-benchjson /tmp/BENCH_mem_fresh.json \
		-compare $(BENCH_MEM_JSON) -tolerance 0.25 \
		-gate mem-indexed/ -calibrate mem-rowref/ -quiet

# This PR's benchmark: the disk-backed store tier — cold solve+append
# traffic (fsync every append) vs a same-process warm pass vs a full
# service reopen on the same directory, with zero solver runs enforced
# on the reopened service inside the experiment. Writes
# $(BENCH_PERSIST_JSON).
bench-persist:
	$(GO) run ./cmd/benchtab -experiment persist -benchjson $(BENCH_PERSIST_JSON) -quiet

# The persistence gate CI runs on every PR: a fresh persist run must
# not regress the warm or reopen suite aggregates >50% against the
# committed $(BENCH_PERSIST_JSON); the cold entries calibrate out
# machine speed. (The warm/reopen passes are sub-millisecond, hence
# the wider tolerance than the other gates; the hard zero-solver-runs
# wall is enforced inside the experiment itself, not by the ratio.)
bench-persist-gate:
	$(GO) run ./cmd/benchtab -experiment persist \
		-benchjson /tmp/BENCH_persist_fresh.json \
		-compare $(BENCH_PERSIST_JSON) -tolerance 0.50 \
		-gate persist-warm/suite,persist-reopen/suite \
		-calibrate persist-cold/ -quiet

# This PR's benchmark: incremental dataset maintenance — per delta
# batch, O(delta) layered index maintenance vs a full index rebuild vs
# a full re-upload (re-parse + re-index), over delta sizes 1/100/10k
# plus a mixed insert+delete bucket, with byte-identity, the
# maintenance-beats-rebuild wall, and the unchanged-data fast paths
# (zero index builds warm, parse-cache coalescing) enforced inside the
# experiment. Writes $(BENCH_INCR_JSON).
bench-incr:
	$(GO) run ./cmd/benchtab -experiment incr -benchjson $(BENCH_INCR_JSON) -quiet

# The incremental-maintenance gate CI runs on every PR: a fresh incr
# run must not regress the maint suite's (calibrated) ns/op or its
# machine-independent allocs/op >50% against the committed
# $(BENCH_INCR_JSON); the rebuild entries calibrate machine speed out
# of the timing ratios. (Per-batch times are sub-10ms and noisy, hence
# the wide tolerance; the hard maint-beats-rebuild and identity walls
# run inside the experiment itself.)
bench-incr-gate:
	$(GO) run ./cmd/benchtab -experiment incr \
		-benchjson /tmp/BENCH_incr_fresh.json \
		-compare $(BENCH_INCR_JSON) -tolerance 0.50 \
		-gate incr-maint/ -calibrate incr-rebuild/ -quiet

# The crash-recovery wall: kill -9 a child process mid-append and
# mid-snapshot-save, then assert the reopened log serves an intact
# contiguous prefix (torn tails truncated, never served corrupt), plus
# the torn-tail/bit-flip recovery table and the concurrent-save race.
crash-recovery:
	$(GO) test -race -count=1 \
		-run 'TestCrashRecovery|TestSnapshotConcurrentSaves|TestLogTornTail|TestLogBitFlip|TestDiskBackedServiceWarmRestart' \
		./internal/store ./internal/service

# The two-process warm-restart wall: boot a real htdserve with
# -store-dir, feed it jobs, kill -9, reboot on the same directory, and
# assert every repeat request is a cache hit with SolverRuns == 0.
warm-restart:
	./scripts/warm_restart.sh

# Capture heap/allocs/CPU profiles from a live htdserve under load via
# the -pprof-addr listener; writes them under $(PPROF_DIR) (default
# /tmp/htd-pprof). Nightly CI uploads the directory as an artifact.
pprof-capture:
	./scripts/capture_pprof.sh $(or $(PPROF_DIR),/tmp/htd-pprof)

# The live load wall (nightly CI): boots htdserve with the tenant wall
# armed, drives a greedy tenant at 10x its rate limit beside a polite
# tenant, and asserts the polite tenant's p99/error rate plus the
# whole-server p99 envelope. Writes $(LOAD_JSON) with per-tenant
# p50/p99/error-rate; LOAD_GATE_DURATION overrides the 10s run.
load-gate:
	./scripts/load_gate.sh $(LOAD_JSON)

stress:
	$(GO) test -race -count=2 -run 'TestStoreStress|TestCoalescing|TestBatchDuplicates|TestSnapshot|TestServeCache|TestShardedConcurrency|TestFlight' ./internal/store ./internal/service ./cmd/htdserve

differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestConcurrentIdentical|TestEval|TestServeQuery' ./internal/query ./internal/join ./cmd/htdserve

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecomposeCheckHD -fuzztime=10s .
	$(GO) test -run=NONE -fuzz=FuzzParseQuery -fuzztime=10s ./internal/join

# The nightly workflow's long-form fuzz: 5 minutes per target.
fuzz-long:
	$(GO) test -run=NONE -fuzz=FuzzDecomposeCheckHD -fuzztime=5m .
	$(GO) test -run=NONE -fuzz=FuzzParseQuery -fuzztime=5m ./internal/join

# Fails on broken intra-repo links (and missing anchors) in committed
# Markdown files; mirrors the CI docs job.
docs-check:
	$(GO) run ./cmd/docscheck .

serve:
	$(GO) run ./cmd/htdserve

ci: fmt-check vet lint build race bench bench-gate bench-mem-gate bench-persist-gate bench-incr-gate crash-recovery warm-restart stress differential fuzz docs-check
