// cspsolve: solve a constraint satisfaction problem through its
// hypertree decomposition — the paper's second motivating application.
//
// The CSP is 3-coloring of a prism graph (cycle × K2), whose constraint
// hypergraph has hypertree width 3; the decomposition-guided solver
// enumerates all proper colorings and cross-checks a backtracking
// baseline.
//
// Run with: go run ./examples/cspsolve
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/internal/csp"
)

func main() {
	// Prism graph edges: two concentric cycles a0..a7, b0..b7 plus rungs.
	const n = 8
	var edges [][2]string
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		edges = append(edges,
			[2]string{"a" + strconv.Itoa(i), "a" + strconv.Itoa(j)},
			[2]string{"b" + strconv.Itoa(i), "b" + strconv.Itoa(j)},
			[2]string{"a" + strconv.Itoa(i), "b" + strconv.Itoa(i)},
		)
	}
	p := csp.Coloring(edges, 3)
	fmt.Printf("CSP: 3-coloring of the %d-prism (%d constraints, %d variables)\n",
		n, len(edges), len(p.Variables()))

	ctx := context.Background()
	start := time.Now()
	res, err := csp.Solve(ctx, p, csp.SolveOptions{MaxWidth: 4, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition width: %d (%d nodes)\n", res.Width, res.Decomp.NumNodes())
	fmt.Printf("solutions via decomposition: %d in %v\n", res.Solutions.Size(), time.Since(start))

	start = time.Now()
	bt, err := csp.SolveBacktrack(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solutions via backtracking:  %d in %v\n", len(bt), time.Since(start))

	if res.Solutions.Size() != len(bt) {
		log.Fatal("solution counts disagree — this is a bug")
	}
	fmt.Println("results agree ✓")

	// One concrete coloring, for show.
	if res.Solutions.Size() > 0 {
		vars := p.Variables()
		proj, err := res.Solutions.Project(vars...)
		if err != nil {
			log.Fatal(err)
		}
		first := proj.Sorted()[0]
		fmt.Print("example coloring: ")
		for i, v := range vars {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%d", v, first[i])
		}
		fmt.Println()
	}
}
