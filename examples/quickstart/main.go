// Quickstart: parse a conjunctive query's hypergraph, compute a
// hypertree decomposition with log-k-decomp, validate it, and print it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	htd "repro"
)

func main() {
	// The running example of the paper's Appendix B: a cyclic join query
	// over ten binary relations (hypertree width 2).
	src := `
		% cyclic conjunctive query, hw = 2
		R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5), R5(x5,x6),
		R6(x6,x7), R7(x7,x8), R8(x8,x9), R9(x9,x10), R10(x10,x1).`

	h, err := htd.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypergraph: %d vertices, %d edges, acyclic=%v\n",
		h.NumVertices(), h.NumEdges(), h.IsAcyclic())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Width 1 must fail: the query is cyclic.
	if _, ok, err := htd.DecomposeK(ctx, h, 1); err != nil || ok {
		log.Fatalf("expected rejection at width 1 (ok=%v err=%v)", ok, err)
	}
	fmt.Println("width 1: no HD exists (query is cyclic)")

	// Width 2 succeeds; use 4 workers for the separator search.
	d, ok, err := htd.Decompose(ctx, h, htd.Options{K: 2, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("expected an HD of width 2")
	}
	if err := htd.Validate(d); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("width 2: found a valid HD with %d nodes (depth %d)\n\n",
		d.NumNodes(), d.Depth())
	fmt.Print(d)

	// The exact width, computed directly.
	w, _, ok, err := htd.OptimalWidth(ctx, h, 5)
	if err != nil || !ok {
		log.Fatalf("optimal width: ok=%v err=%v", ok, err)
	}
	fmt.Printf("\noptimal hypertree width: %d\n", w)
}
