// Serve example: the decomposition service from both sides.
//
// Standalone it drives htd.Service directly — concurrent submissions
// over a shared worker budget, a batch, and the cross-request memo
// cache paying off on a repeated hypergraph:
//
//	go run ./examples/serve
//
// Pointed at a running htdserve it exercises the HTTP API instead —
// /decompose, an NDJSON /batch stream, and /stats:
//
//	go run ./cmd/htdserve -addr :8080 &
//	go run ./examples/serve -addr http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	htd "repro"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running htdserve (empty = use the library in-process)")
	flag.Parse()
	if *addr != "" {
		runHTTPClient(strings.TrimRight(*addr, "/"))
		return
	}
	runLibrary()
}

// runLibrary shows the htd.Service API without any HTTP in between.
func runLibrary() {
	svc := htd.NewService(htd.ServiceConfig{
		TokenBudget:    4,
		MaxConcurrent:  4,
		DefaultTimeout: 30 * time.Second,
	})
	defer svc.Close()
	ctx := context.Background()

	// The paper's cyclic 10-relation query (hw = 2), submitted 8 times
	// concurrently: all jobs share the 4-token worker budget, and after
	// the first one the rest reuse its memo table.
	cyclic, err := htd.ParseString(`
		R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5), R5(x5,x6),
		R6(x6,x7), R7(x7,x8), R8(x8,x9), R9(x9,x10), R10(x10,x1).`)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]htd.ServiceResult, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = svc.Submit(ctx, htd.ServiceRequest{H: cyclic, K: 2})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil || !r.OK {
			log.Fatalf("job %d: ok=%v err=%v", i, r.OK, r.Err)
		}
		fmt.Printf("job %d: width=%d nodes=%d cache_shared=%v elapsed=%v\n",
			i, r.Decomp.Width(), r.Decomp.NumNodes(), r.CacheShared, r.Elapsed.Round(time.Microsecond))
	}

	// A mixed batch, results in request order.
	triangle, _ := htd.ParseString("r1(x,y), r2(y,z), r3(z,x).")
	batch := svc.Batch(ctx, []htd.ServiceRequest{
		{H: triangle, K: 2},
		{H: triangle, K: 1}, // definitive NO
		{H: cyclic, K: 2},   // memo table already warm
	})
	fmt.Println("\nbatch:")
	for i, r := range batch {
		fmt.Printf("  [%d] ok=%v cache_shared=%v err=%v\n", i, r.OK, r.CacheShared, r.Err)
	}

	st := svc.Stats()
	fmt.Printf("\nservice stats: submitted=%d completed=%d cache_reuses=%d memo_graphs=%d memo_entries=%d tokens_high_water=%d/%d\n",
		st.Submitted, st.Completed, st.CacheReuses, st.MemoGraphs, st.MemoEntries,
		st.TokensHighWater, st.TokenBudget)
}

// runHTTPClient drives the same flows through htdserve's HTTP API.
func runHTTPClient(base string) {
	// One job with the rendered tree.
	body, _ := json.Marshal(map[string]any{
		"hypergraph": `R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5), R5(x5,x6),
			R6(x6,x7), R7(x7,x8), R8(x8,x9), R9(x9,x10), R10(x10,x1).`,
		"k": 2, "render": true,
	})
	resp, err := http.Post(base+"/decompose", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var result map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /decompose: ok=%v width=%v elapsed=%vms\n",
		result["ok"], result["width"], result["elapsed_ms"])
	if rendering, _ := result["rendering"].(string); rendering != "" {
		fmt.Println(rendering)
	}

	// An NDJSON batch, streamed back in order; the repeated first line
	// demonstrates the cross-request memo cache.
	lines := []string{
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`,
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":1}`,
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`,
		`{"hypergraph":"p1(a,b), p2(b,c), p3(c,d).","k":1}`,
	}
	resp, err = http.Post(base+"/batch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPOST /batch:")
	sc := bufio.NewScanner(resp.Body)
	for i := 0; sc.Scan(); i++ {
		var r map[string]any
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  line %d: ok=%v width=%v cache_shared=%v\n",
			i, r["ok"], r["width"], r["cache_shared"])
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// Service-wide counters.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats htd.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nGET /stats: submitted=%d completed=%d cache_reuses=%d memo_entries=%d tokens_high_water=%d/%d\n",
		stats.Submitted, stats.Completed, stats.CacheReuses, stats.MemoEntries,
		stats.TokensHighWater, stats.TokenBudget)
}
