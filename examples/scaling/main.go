// scaling: a miniature of the paper's Figure 1 — measure how the
// log-k-decomp separator search speeds up with the number of workers on
// a single instance, and how width racing stacks on top: at each worker
// count the serial k = 1..k ladder is raced against the optimal-width
// racer, which proves the refutations and finds the witness
// concurrently instead of one width at a time.
//
// Run with: go run ./examples/scaling [-n 36] [-k 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/race"
)

func main() {
	n := flag.Int("n", 36, "cylinder length (3n edges)")
	k := flag.Int("k", 3, "width bound")
	flag.Parse()

	h := cylinder(*n)
	fmt.Printf("instance: cylinder(%d) — %d edges, %d vertices, k = %d\n",
		*n, h.NumEdges(), h.NumVertices(), *k)
	fmt.Printf("machine: GOMAXPROCS = %d\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s  %-12s  %-8s  %-12s  %s\n",
		"workers", "serial", "speedup", "racer", "vs-serial")

	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		if workers > runtime.GOMAXPROCS(0) {
			break
		}
		// Like the paper's Figure 1 we time the full optimal-width
		// solve: refuting widths 1..k-1 plus finding the width-k HD.
		// Refutations explore the entire separator search space, which
		// is where partitioning it across workers pays off. Median of 3.
		var serialTimes, racerTimes []time.Duration
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for kk := 1; kk <= *k; kk++ {
				s := logk.New(h, logk.Options{K: kk, Workers: workers,
					Hybrid: logk.HybridWeightedCount, HybridThreshold: 40})
				_, ok, err := s.Decompose(context.Background())
				if err != nil {
					log.Fatalf("workers=%d k=%d: %v", workers, kk, err)
				}
				if ok != (kk == *k) {
					log.Fatalf("workers=%d: unexpected verdict at k=%d (ok=%v)", workers, kk, ok)
				}
			}
			serialTimes = append(serialTimes, time.Since(start))

			// The racer does the same work — refute 1..k-1, witness k —
			// but the probes run concurrently with shared bounds.
			start = time.Now()
			res, err := race.New(h, race.Config{
				KMax: *k, MaxProbes: *k, Workers: workers,
				Hybrid: logk.HybridWeightedCount, HybridThreshold: 40,
			}).Solve(context.Background())
			if err != nil {
				log.Fatalf("racer workers=%d: %v", workers, err)
			}
			if !res.Found || res.Width != *k {
				log.Fatalf("racer workers=%d: found=%v width=%d, want %d",
					workers, res.Found, res.Width, *k)
			}
			racerTimes = append(racerTimes, time.Since(start))
		}
		serial, racer := median(serialTimes), median(racerTimes)
		if workers == 1 {
			base = serial
		}
		fmt.Printf("%-8d  %-12v  %-8s  %-12v  %.2fx\n",
			workers, serial.Round(time.Microsecond),
			fmt.Sprintf("%.2fx", float64(base)/float64(serial)),
			racer.Round(time.Microsecond),
			float64(serial)/float64(racer))
	}
}

func cylinder(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(j))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(j))
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return b.Build()
}

func median(ts []time.Duration) time.Duration {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts[len(ts)/2]
}
