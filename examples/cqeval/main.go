// cqeval: answer a cyclic conjunctive query end to end with the public
// query API — the paper's §1 motivating application (HDs reduce CQ
// evaluation to an acyclic instance solvable in polynomial time).
//
// htd.EvalQuery runs the whole pipeline: the query's hypergraph is
// decomposed through the service's content-addressed plan cache, and
// Yannakakis' algorithm executes over the bags. The same query asked
// twice plans once — the repeat is a plan-cache hit with zero solver
// runs.
//
// The query is a "triangle of paths" — three relations forming a cycle
// plus dangling selection atoms:
//
//	Q(x,y,z,…) = R(x,y) ∧ S(y,z) ∧ T(z,x) ∧ A(x,a) ∧ B(y,b)
//
// Run with: go run ./examples/cqeval
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	htd "repro"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// Random data: each relation has 300 tuples over a domain of 40.
	const tuples, domain = 300, 40
	mk := func() *htd.Relation {
		rel := htd.NewRelation("c1", "c2")
		for i := 0; i < tuples; i++ {
			rel.Add(r.Intn(domain), r.Intn(domain))
		}
		return rel
	}
	db := htd.Database{"R": mk(), "S": mk(), "T": mk(), "A": mk(), "B": mk()}
	q, err := htd.ParseCQ("R(x,y), S(y,z), T(z,x), A(x,a), B(y,b).")
	if err != nil {
		log.Fatal(err)
	}

	svc := htd.NewService(htd.ServiceConfig{})
	defer svc.Close()
	planner := htd.NewQueryPlanner(svc)
	ctx := context.Background()

	// Cold: the plan (a minimum-width HD of the query hypergraph) is
	// computed by the racing solver and banked in the store.
	cold, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold: %6d answers, plan width %d, plan %v + exec %v (cache hit: %v)\n",
		cold.Rows.Size(), cold.Width, cold.PlanElapsed.Round(time.Microsecond),
		cold.ExecElapsed.Round(time.Microsecond), cold.PlanCacheHit)

	// Warm: the identical query again — the plan is a store cache hit,
	// no solver runs, and the rows come back byte-identical.
	warm, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm: %6d answers, plan width %d, plan %v + exec %v (cache hit: %v)\n",
		warm.Rows.Size(), warm.Width, warm.PlanElapsed.Round(time.Microsecond),
		warm.ExecElapsed.Round(time.Microsecond), warm.PlanCacheHit)
	if !warm.PlanCacheHit {
		log.Fatal("repeat query should hit the plan cache — this is a bug")
	}

	// Differential check: the naive cross join must agree exactly.
	start := time.Now()
	naive, err := htd.EvalQueryNaive(q, db)
	if err != nil {
		log.Fatal(err)
	}
	tNaive := time.Since(start)
	canon, err := htd.CanonicalRows(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive join: %d answers in %v\n", canon.Size(), tNaive.Round(time.Microsecond))
	if canon.Size() != warm.Rows.Size() {
		log.Fatal("answer sets disagree — this is a bug")
	}
	fmt.Println("results agree ✓")

	// Budgets: the same query with a tiny row budget fails fast instead
	// of materialising a huge intermediate.
	if _, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db, MaxRows: 10}); err != nil {
		fmt.Printf("with MaxRows=10: %v\n", err)
	}

	st := planner.Stats()
	fmt.Printf("planner: %d queries, %d answered, %d plan-cache hits\n",
		st.Queries, st.Answered, st.PlanCacheHits)
}
