// cqeval: answer a cyclic conjunctive query end to end with the public
// query API — the paper's §1 motivating application (HDs reduce CQ
// evaluation to an acyclic instance solvable in polynomial time) — in
// the dataset-reference flow: upload the data once as a named,
// versioned dataset, query it many times by name, mutate it with tuple
// deltas, and query again.
//
// Datasets keep the expensive artefacts server-resident: the plan is
// cached by the service's content-addressed plan cache, and the data's
// hash indexes are *maintained* across mutations as layered deltas —
// a repeat query re-parses nothing and rebuilds nothing, and a
// mutation costs O(delta), not O(data).
//
// The query is a "triangle of paths" — three relations forming a cycle
// plus dangling selection atoms:
//
//	Q(x,y,z,…) = R(x,y) ∧ S(y,z) ∧ T(z,x) ∧ A(x,a) ∧ B(y,b)
//
// Run with: go run ./examples/cqeval
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	htd "repro"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// Random data: each relation has 300 tuples over a domain of 40.
	const tuples, domain = 300, 40
	mk := func() *htd.Relation {
		rel := htd.NewRelation("c1", "c2")
		for i := 0; i < tuples; i++ {
			rel.Add(r.Intn(domain), r.Intn(domain))
		}
		return rel
	}
	db := htd.Database{"R": mk(), "S": mk(), "T": mk(), "A": mk(), "B": mk()}
	q, err := htd.ParseCQ("R(x,y), S(y,z), T(z,x), A(x,a), B(y,b).")
	if err != nil {
		log.Fatal(err)
	}

	svc := htd.NewService(htd.ServiceConfig{})
	defer svc.Close()
	planner := htd.NewQueryPlanner(svc)
	ctx := context.Background()

	// Upload once: the dataset is registered under a name at version 1.
	// (Over HTTP this is PUT /data/paths with the rel-block text.)
	version, err := svc.Datasets().Put("", "paths", db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset \"paths\" uploaded at version %d\n", version)

	// Query many: requests reference the dataset by name instead of
	// shipping the data. Cold, the plan is computed by the racing
	// solver and the executor builds (and captures) the hash indexes.
	eval := func(label string) htd.QueryResult {
		res, err := planner.Eval(ctx, htd.QueryRequest{Query: q, Dataset: "paths"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %6d answers @v%d, width %d, plan %v + exec %v (plan hit: %v, index builds %d, reuses %d)\n",
			label, res.Rows.Size(), res.DatasetVersion, res.Width,
			res.PlanElapsed.Round(time.Microsecond), res.ExecElapsed.Round(time.Microsecond),
			res.PlanCacheHit, res.Exec.IndexBuilds, res.Exec.IndexReuses)
		return res
	}
	cold := eval("cold")
	warm := eval("warm")
	if !warm.PlanCacheHit {
		log.Fatal("repeat query should hit the plan cache — this is a bug")
	}
	// Indexes over the base relations are captured on first use and
	// reused by every later query; only indexes over per-query
	// intermediate results are ever rebuilt.
	if warm.Exec.IndexReuses <= cold.Exec.IndexReuses {
		log.Fatal("repeat query should reuse the captured indexes — this is a bug")
	}
	if warm.Rows.Size() != cold.Rows.Size() {
		log.Fatal("repeat answers disagree — this is a bug")
	}

	// Mutate: one delta batch — one version bump, O(delta) index
	// maintenance. (Over HTTP: POST /data/paths/mutate, NDJSON lines.)
	ds, _ := svc.Datasets().Get("", "paths")
	mres, err := ds.Mutate([]htd.DatasetMutation{
		{Op: "insert", Rel: "R", Rows: [][]int{{0, 1}, {1, 2}, {2, 0}}},
		{Op: "delete", Rel: "S", Rows: [][]int{db["S"].Rows()[0]}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutated: +%d -%d tuples -> version %d\n", mres.Inserted, mres.Deleted, mres.Version)

	// Re-query: the same plan, the maintained indexes extended by a
	// delta layer — and the answer reflects the new version.
	after := eval("after mutation")
	if after.DatasetVersion != mres.Version {
		log.Fatal("query did not read the mutated version — this is a bug")
	}

	// Pinned read: the pre-mutation version is still resolvable and
	// answers with its original rows (snapshot isolation, bounded by
	// DatasetConfig.Retain).
	pinned, err := planner.Eval(ctx, htd.QueryRequest{Query: q, Dataset: "paths", AtVersion: version})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned @v%d: %6d answers (current is v%d)\n",
		pinned.DatasetVersion, pinned.Rows.Size(), after.DatasetVersion)
	if pinned.Rows.Size() != warm.Rows.Size() {
		log.Fatal("pinned answers differ from the version they pin — this is a bug")
	}

	// Differential check: the naive cross join over the materialised
	// current state must agree exactly with the incremental answer.
	snap, err := svc.Datasets().Resolve("", "paths", 0)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	naive, err := htd.EvalQueryNaive(q, snap.DB)
	if err != nil {
		log.Fatal(err)
	}
	tNaive := time.Since(start)
	canon, err := htd.CanonicalRows(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive join: %d answers in %v\n", canon.Size(), tNaive.Round(time.Microsecond))
	if canon.Size() != after.Rows.Size() {
		log.Fatal("answer sets disagree — this is a bug")
	}
	fmt.Println("results agree ✓")

	// The inline path still works for self-contained one-shot queries —
	// but ships, parses and validates the data every time.
	inline, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: snap.DB})
	if err != nil {
		log.Fatal(err)
	}
	if inline.Rows.Size() != after.Rows.Size() {
		log.Fatal("inline and dataset answers disagree — this is a bug")
	}

	st := planner.Stats()
	fmt.Printf("planner: %d queries (%d over datasets), %d plan-cache hits, %d index builds, %d reuses\n",
		st.Queries, st.DatasetQueries, st.PlanCacheHits, st.ExecIndexBuilds, st.ExecIndexReuses)
}
