// cqeval: evaluate a cyclic conjunctive query with Yannakakis' algorithm
// over a hypertree decomposition, and compare against the naive join —
// the paper's §1 motivating application (HDs reduce CQ evaluation to an
// acyclic instance solvable in polynomial time).
//
// The query is a "triangle of paths" — three relations forming a cycle
// plus dangling selection atoms:
//
//	Q(x,y,z,…) = R(x,y) ∧ S(y,z) ∧ T(z,x) ∧ A(x,a) ∧ B(y,b)
//
// Run with: go run ./examples/cqeval
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/join"
	"repro/internal/logk"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// Random data: each relation has 300 tuples over a domain of 40.
	const tuples, domain = 300, 40
	mk := func() *join.Relation {
		rel := join.NewRelation("c1", "c2")
		for i := 0; i < tuples; i++ {
			rel.Add(r.Intn(domain), r.Intn(domain))
		}
		return rel
	}
	db := join.Database{"R": mk(), "S": mk(), "T": mk(), "A": mk(), "B": mk()}
	q := join.Query{Atoms: []join.Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
		{Relation: "T", Vars: []string{"z", "x"}},
		{Relation: "A", Vars: []string{"x", "a"}},
		{Relation: "B", Vars: []string{"y", "b"}},
	}}

	h, err := q.Hypergraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query hypergraph: %d variables, %d atoms\n", h.NumVertices(), h.NumEdges())

	ctx := context.Background()
	solver := logk.New(h, logk.Options{K: 2, Workers: 4})
	d, ok, err := solver.Decompose(ctx)
	if err != nil || !ok {
		log.Fatalf("no HD of width 2 (ok=%v err=%v)", ok, err)
	}
	fmt.Printf("decomposition: width %d, %d nodes\n\n", d.Width(), d.NumNodes())

	start := time.Now()
	fast, err := join.Evaluate(q, db, d)
	if err != nil {
		log.Fatal(err)
	}
	tFast := time.Since(start)

	start = time.Now()
	naive, err := join.EvaluateNaive(q, db)
	if err != nil {
		log.Fatal(err)
	}
	tNaive := time.Since(start)

	fmt.Printf("Yannakakis over HD: %6d answers in %v\n", fast.Size(), tFast)
	fmt.Printf("naive join:         %6d answers in %v\n", naive.Size(), tNaive)
	if fast.Size() != naive.Size() {
		log.Fatal("answer sets disagree — this is a bug")
	}
	fmt.Println("results agree ✓")

	// Boolean variant: satisfiability only, via the first semijoin pass.
	sat, err := join.IsBoolean(q, db, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Boolean(Q) = %v\n", sat)
}
