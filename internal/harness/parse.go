package harness

import "repro/internal/hypergraph"

// mustParse parses a HyperBench-format string, panicking on error; used
// only for generator-internal fixed instances.
func mustParse(s string) *hypergraph.Hypergraph {
	h, err := hypergraph.ParseString(s)
	if err != nil {
		panic(err)
	}
	return h
}
