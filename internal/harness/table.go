package harness

import (
	"fmt"
	"strings"
)

// Table is a minimal aligned-text table for experiment output, in the
// spirit of the paper's LaTeX tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Footnote lines are printed under the table.
	Notes []string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
