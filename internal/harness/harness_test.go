package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/hyperbench"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/race"
)

// tinySuite returns a handful of instances with fast solves.
func tinySuite() []hyperbench.Instance {
	all := hyperbench.Suite(hyperbench.Config{Scale: 1})
	var out []hyperbench.Instance
	for _, in := range all {
		if in.Edges() <= 12 {
			out = append(out, in)
		}
		if len(out) == 8 {
			break
		}
	}
	return out
}

func TestRunParamSolvesAndProves(t *testing.T) {
	r := &Runner{Timeout: 10 * time.Second, KMax: 4}
	in := cycleInstance(8)
	res := r.Run(context.Background(), MethodDetK(), in)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Solved || res.Width != 2 {
		t.Fatalf("cycle(8): solved=%v width=%d, want solved at width 2", res.Solved, res.Width)
	}
	if res.Bounds[1] != No || res.Bounds[2] != Yes || res.Bounds[3] != Yes {
		t.Fatalf("bounds wrong: %v", res.Bounds)
	}
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
}

func TestRunOptimalMethod(t *testing.T) {
	r := &Runner{Timeout: 10 * time.Second, KMax: 4}
	res := r.Run(context.Background(), MethodOpt(), cycleInstance(6))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Solved || res.Width != 2 {
		t.Fatalf("solved=%v width=%d", res.Solved, res.Width)
	}
}

func TestRunRaceMethod(t *testing.T) {
	r := &Runner{Timeout: 10 * time.Second, KMax: 4}
	res := r.Run(context.Background(), MethodRacer(2, 3), cycleInstance(8))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Solved || res.Width != 2 {
		t.Fatalf("cycle(8): solved=%v width=%d, want solved at width 2", res.Solved, res.Width)
	}
	if res.Bounds[1] != No || res.Bounds[2] != Yes || res.Bounds[3] != Yes {
		t.Fatalf("bounds wrong: %v", res.Bounds)
	}
	if res.LBSource != "probe" {
		t.Fatalf("lower-bound provenance %q, want probe", res.LBSource)
	}
}

// TestRunRaceValidatesBeforeCountingSolved: the racer's claim is not
// trusted — the harness re-checks the witness with the independent
// checker, exactly like the width-parameterised methods. A method whose
// racer returns a corrupted report must not count as solved.
func TestRunRaceValidatesBeforeCountingSolved(t *testing.T) {
	r := &Runner{Timeout: 10 * time.Second, KMax: 4}
	in := cycleInstance(8)
	lying := Method{
		Name: "lying-racer",
		SolveRace: func(ctx context.Context, h *hypergraph.Hypergraph, kMax int) (race.Result, error) {
			res, err := race.New(h, race.Config{KMax: kMax}).Solve(ctx)
			if err == nil && res.Found {
				res.Width = 1 // claim a width the witness does not have
			}
			return res, err
		},
	}
	res := r.Run(context.Background(), lying, in)
	if res.Err == nil {
		t.Fatal("invalid racer claim must surface as a validation error")
	}
	if res.Solved {
		t.Fatal("invalid racer claim must not count as solved")
	}
}

func TestTimeoutsAreRecorded(t *testing.T) {
	// A high-width clique at 1ms per width: every width run times out.
	r := &Runner{Timeout: time.Millisecond, KMax: 3}
	var in hyperbench.Instance
	for _, cand := range hyperbench.Suite(hyperbench.Config{Scale: 1}) {
		if cand.KnownHW >= 5 && cand.Edges() > 40 {
			in = cand
			break
		}
	}
	if in.H == nil {
		t.Fatal("no large instance in suite")
	}
	res := r.Run(context.Background(), MethodDetK(), in)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Solved {
		t.Fatal("1ms budget should not solve a 60-edge instance")
	}
	if !res.TimedOut {
		t.Fatal("timeout not recorded")
	}
}

func TestAggregate(t *testing.T) {
	results := []Result{
		{Method: "a", Solved: true, Runtime: 2 * time.Second},
		{Method: "a", Solved: true, Runtime: 4 * time.Second},
		{Method: "a", Solved: false, Runtime: 9 * time.Second},
		{Method: "b", Solved: true, Runtime: 1 * time.Second},
	}
	st := Aggregate(results, func(r Result) bool { return r.Method == "a" })
	if st.Count != 3 || st.Solved != 2 {
		t.Fatalf("count=%d solved=%d", st.Count, st.Solved)
	}
	if st.AvgSec != 3.0 || st.MaxSec != 4.0 {
		t.Fatalf("avg=%f max=%f", st.AvgSec, st.MaxSec)
	}
	if st.StdevSec != 1.0 {
		t.Fatalf("stdev=%f", st.StdevSec)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", "w")
	out := tab.Render()
	if !strings.Contains(out, "a    bb") && !strings.Contains(out, "a  ") {
		t.Fatalf("header misaligned:\n%s", out)
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "xyz") {
		t.Fatalf("cells missing:\n%s", out)
	}
}

func TestTable1SmallSuite(t *testing.T) {
	cfg := Config{
		Suite:   tinySuite(),
		Timeout: 3 * time.Second,
		KMax:    4,
		Workers: 2,
	}
	tab, results := Table1(context.Background(), cfg)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s on %s: %v", r.Method, r.Instance.Name, r.Err)
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "Hyb#") || !strings.Contains(out, "Total") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestTable4FromResults(t *testing.T) {
	cfg := Config{Suite: tinySuite(), Timeout: 3 * time.Second, KMax: 3, Workers: 1}
	_, results := Table3(context.Background(), cfg)
	tab := Table4(results, len(cfg.Suite), 3)
	out := tab.Render()
	if !strings.Contains(out, "hw <= 1") || !strings.Contains(out, "VirtualBest") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestFigure3Data(t *testing.T) {
	cfg := Config{Suite: tinySuite(), Timeout: 3 * time.Second, KMax: 3, Workers: 1}
	r := cfg.runner()
	results := r.RunAll(context.Background(), []Method{MethodDetK()}, cfg.Suite, nil)
	csv, tab := Figure3(results)
	if !strings.HasPrefix(csv, "method,instance,edges,vertices,solved") {
		t.Fatalf("csv header wrong: %q", csv[:50])
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(results)+1 {
		t.Fatal("csv row count mismatch")
	}
	if !strings.Contains(tab.Render(), "DetK-s") {
		t.Fatalf("figure table malformed:\n%s", tab.Render())
	}
}

func TestDepthExperiment(t *testing.T) {
	tab := DepthExperiment(context.Background(), []int{8, 16})
	out := tab.Render()
	if !strings.Contains(out, "observed depth") {
		t.Fatalf("depth table malformed:\n%s", out)
	}
	if strings.Contains(out, "error") {
		t.Fatalf("depth experiment failed:\n%s", out)
	}
}

func TestGHDComparisonSmall(t *testing.T) {
	cfg := Config{Suite: tinySuite()[:4], Timeout: 3 * time.Second, KMax: 3, Workers: 1}
	tab, err := GHDComparison(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "ghw < hw cases") {
		t.Fatalf("comparison table malformed:\n%s", out)
	}
}

func TestFigure1Smoke(t *testing.T) {
	// A minimal HBlarge-sim slice: one large known-width instance.
	var suite []hyperbench.Instance
	for _, in := range hyperbench.Suite(hyperbench.Config{Scale: 1}) {
		if in.Edges() > 50 && in.KnownHW == 2 {
			suite = append(suite, in)
		}
		if len(suite) == 2 {
			break
		}
	}
	if len(suite) == 0 {
		t.Fatal("no large known-width instances in suite")
	}
	cfg := Config{Suite: suite, Timeout: 5 * time.Second, KMax: 3, Workers: 2}
	tab, series := Figure1(context.Background(), cfg, []int{1, 2})
	out := tab.Render()
	if !strings.Contains(out, "cores") {
		t.Fatalf("figure table malformed:\n%s", out)
	}
	pts := series["log-k(Hybrid)"]
	if len(pts) != 2 {
		t.Fatalf("hybrid series has %d points, want 2", len(pts))
	}
	if pts[0].AvgSec <= 0 {
		t.Fatal("hybrid should solve the instances at this budget")
	}
}

func TestTable2Smoke(t *testing.T) {
	var suite []hyperbench.Instance
	for _, in := range hyperbench.Suite(hyperbench.Config{Scale: 1}) {
		if in.Edges() > 50 && in.KnownHW == 2 {
			suite = append(suite, in)
			break
		}
	}
	cfg := Config{Suite: suite, Timeout: 5 * time.Second, KMax: 3, Workers: 2}
	tab, results := Table2(context.Background(), cfg)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if !strings.Contains(tab.Render(), "WeightedCount") {
		t.Fatalf("table malformed:\n%s", tab.Render())
	}
}

func TestTable5Smoke(t *testing.T) {
	cfg := Config{Suite: tinySuite()[:3], Timeout: 2 * time.Second, KMax: 3, Workers: 1}
	tab, results := Table5(context.Background(), cfg)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if !strings.Contains(tab.Render(), "delta vs 1x") {
		t.Fatalf("table malformed:\n%s", tab.Render())
	}
}

func TestAblationSmoke(t *testing.T) {
	var suite []hyperbench.Instance
	for _, in := range hyperbench.Suite(hyperbench.Config{Scale: 1}) {
		if in.KnownHW > 0 && in.Edges() > 10 && in.Edges() <= 30 {
			suite = append(suite, in)
		}
		if len(suite) == 3 {
			break
		}
	}
	cfg := Config{Suite: suite, Timeout: 5 * time.Second, KMax: 3, Workers: 1}
	tab := AblationExperiment(context.Background(), cfg)
	if !strings.Contains(tab.Render(), "full (Algorithm 2)") {
		t.Fatalf("table malformed:\n%s", tab.Render())
	}
}

func TestMethodLogKName(t *testing.T) {
	if MethodLogK(2).Name != "log-k-decomp" {
		t.Fatal("unexpected method name")
	}
	if shortName("log-k-decomp Hybrid") != "Hyb" {
		t.Fatal("short name mapping broken")
	}
	_ = logk.HybridWeightedCount
}
