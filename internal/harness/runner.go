// Package harness runs decomposition methods over instance suites with
// per-run timeouts and aggregates the results into the tables and
// figures of the paper's evaluation (§5 and Appendix D). It plays the
// role HTCondor played in the original experiments: budget enforcement,
// bookkeeping of solved/timeout state, and result collation.
//
// Semantics follow §5.1: an instance is "solved" by a method when the
// optimal-width HD is found and proven optimal (all smaller widths
// refuted within budget); runtimes are reported over solved instances
// only, and every returned decomposition is validated against the
// independent checker before it counts.
package harness

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/decomp"
	"repro/internal/hyperbench"
	"repro/internal/hypergraph"
	"repro/internal/race"
)

// WidthSolver decides hw(H) ≤ k for a fixed k and materialises an HD.
type WidthSolver interface {
	Decompose(ctx context.Context) (*decomp.Decomp, bool, error)
}

// Method is one decomposition approach under evaluation. Exactly one of
// NewParam, SolveOptimal and SolveRace must be set.
type Method struct {
	Name string
	// NewParam constructs a width-parameterised solver (det-k, log-k, …).
	NewParam func(h *hypergraph.Hypergraph, k int) WidthSolver
	// SolveOptimal runs a direct optimal-width solver (the HtdLEO-style
	// method, which takes no width parameter).
	SolveOptimal func(ctx context.Context, h *hypergraph.Hypergraph, kMax int) (int, *decomp.Decomp, bool, error)
	// SolveRace runs the width-racing optimal pipeline and returns the
	// full race report, including lower-bound provenance.
	SolveRace func(ctx context.Context, h *hypergraph.Hypergraph, kMax int) (race.Result, error)
	// GHD marks methods whose output is validated as a generalized
	// hypertree decomposition (no special condition).
	GHD bool
}

// BoundState records what a method established about "hw ≤ k".
type BoundState int

const (
	// Unknown: the run for this width timed out.
	Unknown BoundState = iota
	// Yes: an HD of width ≤ k was found (and validated).
	Yes
	// No: the method refuted width k within budget.
	No
)

// Result is the outcome of one (method, instance) evaluation.
type Result struct {
	Instance hyperbench.Instance
	Method   string
	// Solved: optimal width found and proven optimal within the budget.
	Solved bool
	// Width is the smallest width with a found HD (0 if none found).
	Width int
	// Runtime is the total wall time spent on the instance across all
	// width runs (the paper's per-instance "running time").
	Runtime time.Duration
	// TimedOut reports whether any width run hit the budget.
	TimedOut bool
	// Bounds[k] is the decision state for hw ≤ k, k = 1..KMax.
	Bounds map[int]BoundState
	// LBSource records how a racing method proved its lower bound:
	// "probe" (refuted during the run), "memo" (cached bounds) or
	// "trivial" (optimum was width 1). Empty for non-racing methods.
	LBSource string
	// Err records validation failures or internal errors (never expected).
	Err error
}

// Runner executes methods over instances.
type Runner struct {
	// Timeout is the per-(instance, width) budget, mirroring the paper's
	// per-run one-hour limit (scaled down; see DESIGN.md §3).
	Timeout time.Duration
	// KMax bounds the width search (the paper used widths 1..10).
	KMax int
	// SkipValidation turns off HD re-validation (benchmarks of raw solver
	// speed only; experiments keep it on).
	SkipValidation bool
}

// Run evaluates one method on one instance.
func (r *Runner) Run(ctx context.Context, m Method, in hyperbench.Instance) Result {
	if m.SolveRace != nil {
		return r.runRace(ctx, m, in)
	}
	if m.SolveOptimal != nil {
		return r.runOptimal(ctx, m, in)
	}
	return r.runParam(ctx, m, in)
}

func (r *Runner) runParam(ctx context.Context, m Method, in hyperbench.Instance) Result {
	res := Result{Instance: in, Method: m.Name, Bounds: map[int]BoundState{}}
	provenBelow := true // all widths < current refuted
	for k := 1; k <= r.KMax; k++ {
		runCtx, cancel := context.WithTimeout(ctx, r.Timeout)
		start := time.Now()
		d, ok, err := m.NewParam(in.H, k).Decompose(runCtx)
		elapsed := time.Since(start)
		cancel()
		res.Runtime += elapsed

		switch {
		case err != nil && runCtx.Err() != nil:
			// Per-run timeout (or outer cancellation).
			res.Bounds[k] = Unknown
			res.TimedOut = true
			provenBelow = false
			if ctx.Err() != nil {
				res.Err = ctx.Err()
				return res
			}
		case err != nil:
			res.Err = err
			return res
		case ok:
			if !r.SkipValidation {
				if verr := validate(d, k, m.GHD); verr != nil {
					res.Err = fmt.Errorf("harness: %s on %s k=%d: %w", m.Name, in.Name, k, verr)
					return res
				}
			}
			res.Bounds[k] = Yes
			// hw ≤ k implies hw ≤ k' for all larger k'.
			for k2 := k + 1; k2 <= r.KMax; k2++ {
				res.Bounds[k2] = Yes
			}
			res.Width = k
			res.Solved = provenBelow
			return res
		default:
			res.Bounds[k] = No
		}
	}
	return res
}

func (r *Runner) runOptimal(ctx context.Context, m Method, in hyperbench.Instance) Result {
	res := Result{Instance: in, Method: m.Name, Bounds: map[int]BoundState{}}
	runCtx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	w, d, ok, err := m.SolveOptimal(runCtx, in.H, r.KMax)
	res.Runtime = time.Since(start)
	switch {
	case err != nil && runCtx.Err() != nil:
		res.TimedOut = true
		if ctx.Err() != nil {
			res.Err = ctx.Err()
		}
	case err != nil:
		res.Err = err
	case ok:
		if !r.SkipValidation {
			if verr := validate(d, w, m.GHD); verr != nil {
				res.Err = fmt.Errorf("harness: %s on %s: %w", m.Name, in.Name, verr)
				return res
			}
		}
		res.Width = w
		res.Solved = true
		for k := 1; k <= r.KMax; k++ {
			if k >= w {
				res.Bounds[k] = Yes
			} else {
				res.Bounds[k] = No
			}
		}
	default:
		// Width above KMax: every bound up to KMax is refuted.
		for k := 1; k <= r.KMax; k++ {
			res.Bounds[k] = No
		}
	}
	return res
}

// runRace evaluates a width-racing optimal method. The racer's own
// bookkeeping claims a width and a proven lower bound; the harness
// applies the same rule as for width-parameterised methods and trusts
// neither until the returned decomposition passes the independent
// checker. Partial bounds (widths refuted before a timeout) are still
// banked into Bounds, with provenance recorded in LBSource.
func (r *Runner) runRace(ctx context.Context, m Method, in hyperbench.Instance) Result {
	res := Result{Instance: in, Method: m.Name, Bounds: map[int]BoundState{}}
	runCtx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	rr, err := m.SolveRace(runCtx, in.H, r.KMax)
	res.Runtime = time.Since(start)

	// The race report is meaningful even on error: lower bounds proven
	// before the deadline are sound refutations.
	for k := 1; k < rr.LowerBound && k <= r.KMax; k++ {
		res.Bounds[k] = No
	}
	// A witness claim is banked only after it passes the independent
	// checker — the racer's say-so is never trusted, exactly as runParam
	// validates before recording Yes.
	witnessValid := false
	if rr.BestWidth > 0 && rr.Decomp != nil {
		if r.SkipValidation {
			witnessValid = true
		} else if verr := validate(rr.Decomp, rr.BestWidth, m.GHD); verr != nil {
			res.Err = fmt.Errorf("harness: %s on %s: %w", m.Name, in.Name, verr)
		} else {
			witnessValid = true
		}
	}
	if witnessValid {
		for k := rr.BestWidth; k <= r.KMax; k++ {
			res.Bounds[k] = Yes
		}
		res.Width = rr.BestWidth
	}
	for k := 1; k <= r.KMax; k++ {
		if _, ok := res.Bounds[k]; !ok {
			res.Bounds[k] = Unknown
		}
	}
	res.LBSource = rr.LowerBoundFrom.String()
	if res.Err != nil {
		return res
	}

	switch {
	case err != nil && runCtx.Err() != nil:
		res.TimedOut = true
		if ctx.Err() != nil {
			res.Err = ctx.Err()
		}
	case err != nil:
		res.Err = err
	case rr.Found:
		// The witness was validated against BestWidth above; a racer
		// whose claimed optimum disagrees with its own witness is
		// rejected here.
		if !witnessValid || rr.Width != rr.BestWidth {
			res.Err = fmt.Errorf("harness: %s on %s: racer claims width %d but witness has width %d",
				m.Name, in.Name, rr.Width, rr.BestWidth)
			return res
		}
		res.Solved = true
	}
	return res
}

func validate(d *decomp.Decomp, k int, ghd bool) error {
	if ghd {
		if err := decomp.CheckGHD(d); err != nil {
			return err
		}
	} else if err := decomp.CheckHD(d); err != nil {
		return err
	}
	return decomp.CheckWidth(d, k)
}

// RunAll evaluates every method on every instance, sequentially (one
// live solver at a time, as one HTCondor slot would).
func (r *Runner) RunAll(ctx context.Context, methods []Method, suite []hyperbench.Instance, progress func(done, total int)) []Result {
	total := len(methods) * len(suite)
	results := make([]Result, 0, total)
	done := 0
	for _, in := range suite {
		for _, m := range methods {
			results = append(results, r.Run(ctx, m, in))
			done++
			if progress != nil {
				progress(done, total)
			}
			if ctx.Err() != nil {
				return results
			}
		}
	}
	return results
}

// Stat summarises runtimes of solved instances in one group.
type Stat struct {
	Count    int     // instances in the group
	Solved   int     // solved by the method
	AvgSec   float64 // over solved instances
	MaxSec   float64
	StdevSec float64
}

// Aggregate computes solved counts and runtime statistics for the subset
// of results matched by filter.
func Aggregate(results []Result, filter func(Result) bool) Stat {
	var st Stat
	var times []float64
	for _, r := range results {
		if !filter(r) {
			continue
		}
		st.Count++
		if r.Solved {
			st.Solved++
			times = append(times, r.Runtime.Seconds())
		}
	}
	if len(times) > 0 {
		sum := 0.0
		st.MaxSec = times[0]
		for _, t := range times {
			sum += t
			if t > st.MaxSec {
				st.MaxSec = t
			}
		}
		st.AvgSec = sum / float64(len(times))
		varsum := 0.0
		for _, t := range times {
			varsum += (t - st.AvgSec) * (t - st.AvgSec)
		}
		st.StdevSec = math.Sqrt(varsum / float64(len(times)))
	}
	return st
}
