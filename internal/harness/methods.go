package harness

import (
	"context"

	"repro/internal/balgo"
	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/opt"
	"repro/internal/race"
)

// The standard method roster of the evaluation. Names follow the paper.

// MethodDetK is NewDetKDecomp [9]: sequential det-k-decomp.
func MethodDetK() Method {
	return Method{
		Name: "NewDetKDecomp",
		NewParam: func(h *hypergraph.Hypergraph, k int) WidthSolver {
			return detk.New(h, k)
		},
	}
}

// MethodOpt is the HtdLEO [24] stand-in: a direct optimal-width solver
// with no width parameter (see internal/opt and DESIGN.md §3).
func MethodOpt() Method {
	return Method{
		Name: "HtdLEO(sim)",
		SolveOptimal: func(ctx context.Context, h *hypergraph.Hypergraph, kMax int) (int, *decomp.Decomp, bool, error) {
			return opt.New(h, kMax).Solve(ctx)
		},
	}
}

// MethodLogK is plain log-k-decomp with the given worker count.
func MethodLogK(workers int) Method {
	return Method{
		Name: "log-k-decomp",
		NewParam: func(h *hypergraph.Hypergraph, k int) WidthSolver {
			return logk.New(h, logk.Options{K: k, Workers: workers})
		},
	}
}

// MethodLogKHybrid is the paper's headline configuration: log-k-decomp
// with det-k-decomp hybridisation (§5.2, Appendix D.2).
func MethodLogKHybrid(workers int, metric logk.HybridMetric, threshold float64) Method {
	name := "log-k-decomp Hybrid"
	return Method{
		Name: name,
		NewParam: func(h *hypergraph.Hypergraph, k int) WidthSolver {
			return logk.New(h, logk.Options{
				K: k, Workers: workers,
				Hybrid: metric, HybridThreshold: threshold,
			})
		},
	}
}

// MethodNamed wraps MethodLogKHybrid with an explicit display name (used
// by the Table 2 threshold study).
func MethodNamed(name string, workers int, metric logk.HybridMetric, threshold float64) Method {
	m := MethodLogKHybrid(workers, metric, threshold)
	m.Name = name
	return m
}

// MethodRacer is the parallel optimal-width pipeline: concurrent width
// probes with shared bound propagation and moot-probe cancellation
// (internal/race), hybridised like the paper's headline configuration.
// Unlike the width-parameterised rosters it needs no external k ladder:
// one run per instance finds the optimum and refutes everything below
// it, which is exactly the §5.1 "solved" criterion.
func MethodRacer(workers, maxProbes int) Method {
	return Method{
		Name: "log-k-decomp Race",
		SolveRace: func(ctx context.Context, h *hypergraph.Hypergraph, kMax int) (race.Result, error) {
			return race.New(h, race.Config{
				KMax:            kMax,
				MaxProbes:       maxProbes,
				Workers:         workers,
				Hybrid:          logk.HybridWeightedCount,
				HybridThreshold: 40,
			}).Solve(ctx)
		},
	}
}

// MethodBalancedGo is the GHD comparison system of §5.2.
func MethodBalancedGo() Method {
	return Method{
		Name: "BalancedGo(GHD)",
		NewParam: func(h *hypergraph.Hypergraph, k int) WidthSolver {
			return balgo.New(h, balgo.Options{K: k})
		},
		GHD: true,
	}
}
