package harness

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/hyperbench"
	"repro/internal/hypergraph"
	"repro/internal/logk"
)

// Config parameterises the experiment reproductions. The defaults in the
// benches use scaled-down timeouts; cmd/benchtab can raise them.
type Config struct {
	Suite   []hyperbench.Instance
	Timeout time.Duration
	KMax    int
	Workers int
	// Progress, if non-nil, receives completion ticks.
	Progress func(done, total int)
}

func (c Config) runner() *Runner {
	return &Runner{Timeout: c.Timeout, KMax: c.KMax}
}

// shortName maps method names to compact column prefixes.
func shortName(m string) string {
	switch m {
	case "NewDetKDecomp":
		return "DetK"
	case "HtdLEO(sim)":
		return "LEO"
	case "log-k-decomp":
		return "LogK"
	case "log-k-decomp Hybrid":
		return "Hyb"
	case "log-k-decomp Race":
		return "Race"
	case "BalancedGo(GHD)":
		return "BalGo"
	}
	return m
}

// provenanceNote summarises lower-bound provenance over the racing
// method's solved results ("" when no racing method ran): how many
// optimality proofs came from fresh probe refutations vs cached bounds.
func provenanceNote(results []Result) string {
	counts := map[string]int{}
	for _, r := range results {
		if r.Solved && r.LBSource != "" {
			counts[r.LBSource]++
		}
	}
	if len(counts) == 0 {
		return ""
	}
	return fmt.Sprintf("Race lower-bound provenance (solved): probe=%d memo=%d trivial=%d",
		counts["probe"], counts["memo"], counts["trivial"])
}

// Table1 reproduces Table 1: solved counts and runtime statistics per
// origin × size group for NewDetKDecomp, the HtdLEO stand-in, and the
// log-k-decomp hybrid.
func Table1(ctx context.Context, cfg Config) (*Table, []Result) {
	methods := []Method{
		MethodDetK(),
		MethodOpt(),
		MethodLogKHybrid(cfg.Workers, logk.HybridWeightedCount, 40),
		MethodRacer(cfg.Workers, 0),
	}
	results := cfg.runner().RunAll(ctx, methods, cfg.Suite, cfg.Progress)

	t := &Table{
		Title: "Table 1: solved instances and runtimes (sec) per method",
		Headers: []string{
			"Origin", "Size", "N",
		},
	}
	for _, m := range methods {
		p := shortName(m.Name)
		t.Headers = append(t.Headers, p+"#", p+"-avg", p+"-max", p+"-std")
	}

	addRows := func(origin hyperbench.Origin) {
		for _, bucket := range hyperbench.BucketOrder {
			inGroup := func(r Result) bool {
				return r.Instance.Origin == origin && hyperbench.SizeBucket(r.Instance.Edges()) == bucket
			}
			// Group size (per instance, not per result).
			n := 0
			for _, in := range cfg.Suite {
				if in.Origin == origin && hyperbench.SizeBucket(in.Edges()) == bucket {
					n++
				}
			}
			if n == 0 {
				continue
			}
			row := []any{origin.String(), bucket, n}
			for _, m := range methods {
				st := Aggregate(results, func(r Result) bool { return r.Method == m.Name && inGroup(r) })
				row = append(row, st.Solved, st.AvgSec, st.MaxSec, st.StdevSec)
			}
			t.AddRow(row...)
		}
	}
	addRows(hyperbench.Application)
	addRows(hyperbench.Synthetic)

	// Total row.
	row := []any{"Total", "-", len(cfg.Suite)}
	for _, m := range methods {
		st := Aggregate(results, func(r Result) bool { return r.Method == m.Name })
		row = append(row, st.Solved, st.AvgSec, st.MaxSec, st.StdevSec)
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		fmt.Sprintf("timeout/run: %s, widths 1..%d; runtimes averaged over solved instances only",
			cfg.Timeout, cfg.KMax))
	if note := provenanceNote(results); note != "" {
		t.Notes = append(t.Notes, note)
	}
	return t, results
}

// ScalingPoint is one (cores, seconds) measurement of Figure 1.
type ScalingPoint struct {
	Cores    int
	AvgSec   float64
	Timeouts int
}

// Figure1 reproduces the core-scaling study of §5.2 on the HBlarge
// analogue: average time to find and prove the optimal width as a
// function of worker count, for log-k-decomp plain and hybrid, with
// single-core NewDetKDecomp as reference.
func Figure1(ctx context.Context, cfg Config, coreCounts []int) (*Table, map[string][]ScalingPoint) {
	large := hyperbench.Large(cfg.Suite, 6)
	series := map[string][]ScalingPoint{}
	perMethodTimes := map[string]map[int]map[string]float64{} // method -> cores -> instance -> sec
	timeouts := map[string]int{}

	run := func(name string, cores int, m Method) {
		r := cfg.runner()
		for _, in := range large {
			res := r.Run(ctx, m, in)
			if perMethodTimes[name] == nil {
				perMethodTimes[name] = map[int]map[string]float64{}
			}
			if perMethodTimes[name][cores] == nil {
				perMethodTimes[name][cores] = map[string]float64{}
			}
			if res.Solved {
				perMethodTimes[name][cores][in.Name] = res.Runtime.Seconds()
			} else {
				timeouts[name]++
			}
		}
	}

	for _, n := range coreCounts {
		// The plain log-k series disables the solver-level memo: the
		// paper's implementation has no cache (that is det-k-decomp's
		// domain), and the scaling of interest is the partitioned
		// separator search itself.
		run("log-k", n, Method{
			Name: "log-k-decomp",
			NewParam: func(h *hypergraph.Hypergraph, k int) WidthSolver {
				return logk.New(h, logk.Options{K: k, Workers: n, NoCache: true})
			},
		})
		run("log-k(Hybrid)", n, MethodLogKHybrid(n, logk.HybridWeightedCount, 40))
	}
	run("NewDetKDecomp", 1, MethodDetK())

	// Average only over instances solved at every core count (the
	// paper's methodology: avoid decreasing timeouts skewing the data).
	for name, byCores := range perMethodTimes {
		var common []string
		for in := range byCores[coreCountsOrOne(coreCounts, name)[0]] {
			inAll := true
			for _, n := range coreCountsOrOne(coreCounts, name) {
				if _, ok := byCores[n][in]; !ok {
					inAll = false
					break
				}
			}
			if inAll {
				common = append(common, in)
			}
		}
		sort.Strings(common)
		for _, n := range coreCountsOrOne(coreCounts, name) {
			sum := 0.0
			for _, in := range common {
				sum += byCores[n][in]
			}
			avg := 0.0
			if len(common) > 0 {
				avg = sum / float64(len(common))
			}
			series[name] = append(series[name], ScalingPoint{Cores: n, AvgSec: avg, Timeouts: timeouts[name]})
		}
	}

	t := &Table{
		Title:   "Figure 1: average runtime (sec) on HBlarge-sim vs worker count",
		Headers: []string{"cores", "log-k", "log-k(Hybrid)", "NewDetKDecomp(1core)"},
	}
	ref := 0.0
	if pts := series["NewDetKDecomp"]; len(pts) > 0 {
		ref = pts[0].AvgSec
	}
	for i, n := range coreCounts {
		lk, hy := "-", "-"
		if pts := series["log-k"]; i < len(pts) {
			lk = fmt.Sprintf("%.2f", pts[i].AvgSec)
		}
		if pts := series["log-k(Hybrid)"]; i < len(pts) {
			hy = fmt.Sprintf("%.2f", pts[i].AvgSec)
		}
		t.AddRow(n, lk, hy, fmt.Sprintf("%.2f", ref))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("instances: %d (HBlarge-sim: >50 edges, known hw <= 6)", len(large)))
	for _, name := range []string{"log-k(Hybrid)", "log-k", "NewDetKDecomp"} {
		t.Notes = append(t.Notes, fmt.Sprintf("timeouts %-14s %d", name, timeouts[name]))
	}
	return t, series
}

func coreCountsOrOne(coreCounts []int, name string) []int {
	if name == "NewDetKDecomp" {
		return []int{1}
	}
	return coreCounts
}

// Table2 reproduces the hybridisation study (Appendix D.2, Table 2):
// WeightedCount vs EdgeCount at several thresholds on HBlarge-sim, with
// NewDetKDecomp and the HtdLEO stand-in as references.
func Table2(ctx context.Context, cfg Config) (*Table, []Result) {
	large := hyperbench.Large(cfg.Suite, 6)
	type entry struct {
		label     string
		threshold string
		method    Method
	}
	entries := []entry{
		{"WeightedCount", "20", MethodNamed("W20", cfg.Workers, logk.HybridWeightedCount, 20)},
		{"WeightedCount", "40", MethodNamed("W40", cfg.Workers, logk.HybridWeightedCount, 40)},
		{"WeightedCount", "60", MethodNamed("W60", cfg.Workers, logk.HybridWeightedCount, 60)},
		{"EdgeCount", "8", MethodNamed("E8", cfg.Workers, logk.HybridEdgeCount, 8)},
		{"EdgeCount", "16", MethodNamed("E16", cfg.Workers, logk.HybridEdgeCount, 16)},
		{"EdgeCount", "32", MethodNamed("E32", cfg.Workers, logk.HybridEdgeCount, 32)},
		{"NewDetKDecomp", "-", MethodDetK()},
		{"HtdLEO(sim)", "-", MethodOpt()},
	}
	t := &Table{
		Title:   "Table 2: hybrid metrics on HBlarge-sim",
		Headers: []string{"Method", "Threshold", "Solved", "Av.runtime(sec)"},
	}
	var all []Result
	r := cfg.runner()
	for _, e := range entries {
		res := r.RunAll(ctx, []Method{e.method}, large, cfg.Progress)
		all = append(all, res...)
		st := Aggregate(res, func(Result) bool { return true })
		t.AddRow(e.label, e.threshold, st.Solved, st.AvgSec)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("instances: %d; thresholds scaled to suite size (paper: 200-600 / 20-80)", len(large)))
	return t, all
}

// Table3 reproduces the per-width solved counts (Appendix D.5, Table 3),
// including the Virtual Best aggregation.
func Table3(ctx context.Context, cfg Config) (*Table, []Result) {
	methods := []Method{
		MethodDetK(),
		MethodOpt(),
		MethodLogKHybrid(cfg.Workers, logk.HybridWeightedCount, 40),
		MethodRacer(cfg.Workers, 0),
	}
	results := cfg.runner().RunAll(ctx, methods, cfg.Suite, cfg.Progress)

	// width -> method -> count of optimally solved instances of that width
	solvedAt := map[int]map[string]int{}
	virtual := map[int]map[string]bool{} // width -> instance set
	for _, r := range results {
		if !r.Solved {
			continue
		}
		if solvedAt[r.Width] == nil {
			solvedAt[r.Width] = map[string]int{}
		}
		solvedAt[r.Width][r.Method]++
		if virtual[r.Width] == nil {
			virtual[r.Width] = map[string]bool{}
		}
		virtual[r.Width][r.Instance.Name] = true
	}
	t := &Table{
		Title:   "Table 3: instances solved optimally, by width",
		Headers: []string{"Width", "VirtualBest"},
	}
	for _, m := range methods {
		t.Headers = append(t.Headers, shortName(m.Name))
	}
	maxW := 0
	for w := range virtual {
		if w > maxW {
			maxW = w
		}
	}
	for w := 1; w <= maxW; w++ {
		row := []any{w, len(virtual[w])}
		for _, m := range methods {
			row = append(row, solvedAt[w][m.Name])
		}
		t.AddRow(row...)
	}
	return t, results
}

// Table4 reproduces the upper-bound determination study (Appendix D.5,
// Table 4): for each width w, how many instances each method can decide
// "hw ≤ w?" (either way) within budget. Reuses the results of a prior
// RunAll (pass them in) to avoid a second sweep.
func Table4(results []Result, suiteSize, maxW int) *Table {
	methods := []string{}
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Method] {
			seen[r.Method] = true
			methods = append(methods, r.Method)
		}
	}
	t := &Table{
		Title:   "Table 4: instances for which 'hw <= w' is decided",
		Headers: []string{"Problem", "VirtualBest"},
	}
	for _, m := range methods {
		t.Headers = append(t.Headers, shortName(m))
	}
	for w := 1; w <= maxW; w++ {
		decided := map[string]int{}
		virtualSet := map[string]bool{}
		for _, r := range results {
			if r.Bounds[w] != Unknown {
				decided[r.Method]++
				virtualSet[r.Instance.Name] = true
			}
		}
		row := []any{"hw <= " + strconv.Itoa(w), len(virtualSet)}
		for _, m := range methods {
			row = append(row, decided[m])
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("suite size: %d", suiteSize))
	return t
}

// Table5 reproduces the extended-timeout study for the HtdLEO stand-in
// (Appendix D.3, Table 5): solved counts per group at 1× and 10× budget.
func Table5(ctx context.Context, cfg Config) (*Table, []Result) {
	short := Runner{Timeout: cfg.Timeout, KMax: cfg.KMax}
	long := Runner{Timeout: 10 * cfg.Timeout, KMax: cfg.KMax}
	m := MethodOpt()
	resShort := short.RunAll(ctx, []Method{m}, cfg.Suite, cfg.Progress)
	resLong := long.RunAll(ctx, []Method{m}, cfg.Suite, cfg.Progress)

	t := &Table{
		Title:   "Table 5: HtdLEO(sim) with 10x timeout",
		Headers: []string{"Origin", "Size", "N", "solved(10x)", "delta vs 1x"},
	}
	for _, origin := range []hyperbench.Origin{hyperbench.Application, hyperbench.Synthetic} {
		for _, bucket := range hyperbench.BucketOrder {
			filter := func(r Result) bool {
				return r.Instance.Origin == origin && hyperbench.SizeBucket(r.Instance.Edges()) == bucket
			}
			stS := Aggregate(resShort, filter)
			stL := Aggregate(resLong, filter)
			if stS.Count == 0 {
				continue
			}
			delta := stL.Solved - stS.Solved
			sign := "+-0"
			if delta > 0 {
				sign = "+" + strconv.Itoa(delta)
			} else if delta < 0 {
				sign = strconv.Itoa(delta)
			}
			t.AddRow(origin.String(), bucket, stS.Count, stL.Solved, sign)
		}
	}
	stS := Aggregate(resShort, func(Result) bool { return true })
	stL := Aggregate(resLong, func(Result) bool { return true })
	t.AddRow("Total", "-", stS.Count, stL.Solved, fmt.Sprintf("%+d", stL.Solved-stS.Solved))
	return t, append(resShort, resLong...)
}

// Figure3 emits the solved/unsolved scatter data (Appendix D.4): one CSV
// block per method with instance coordinates (#edges, #vertices) and the
// solved flag, plus an aggregate table of the solved frontier.
func Figure3(results []Result) (string, *Table) {
	var csv strings.Builder
	csv.WriteString("method,instance,edges,vertices,solved\n")
	byMethod := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, ok := byMethod[r.Method]; !ok {
			order = append(order, r.Method)
		}
		byMethod[r.Method] = append(byMethod[r.Method], r)
	}
	for _, m := range order {
		for _, r := range byMethod[m] {
			fmt.Fprintf(&csv, "%s,%s,%d,%d,%v\n",
				m, r.Instance.Name, r.Instance.Edges(), r.Instance.H.NumVertices(), r.Solved)
		}
	}

	t := &Table{
		Title:   "Figure 3: solved (s) / unsolved (u) counts by edge-size bucket",
		Headers: []string{"Size"},
	}
	for _, m := range order {
		t.Headers = append(t.Headers, shortName(m)+"-s", shortName(m)+"-u")
	}
	for _, bucket := range hyperbench.BucketOrder {
		row := []any{bucket}
		any := false
		for _, m := range order {
			s, u := 0, 0
			for _, r := range byMethod[m] {
				if hyperbench.SizeBucket(r.Instance.Edges()) != bucket {
					continue
				}
				if r.Solved {
					s++
				} else {
					u++
				}
			}
			if s+u > 0 {
				any = true
			}
			row = append(row, s, u)
		}
		if any {
			t.AddRow(row...)
		}
	}
	return csv.String(), t
}

// DepthExperiment verifies Theorem 4.1 empirically: observed recursion
// depth against ⌈log2 |E|⌉ on growing cycles.
func DepthExperiment(ctx context.Context, sizes []int) *Table {
	t := &Table{
		Title:   "Recursion depth vs log2(|E|) (Theorem 4.1)",
		Headers: []string{"|E|", "observed depth", "ceil(log2|E|)+2"},
	}
	for _, n := range sizes {
		in := cycleInstance(n)
		s := logk.New(in.H, logk.Options{K: 2})
		if _, ok, err := s.Decompose(ctx); err != nil || !ok {
			t.AddRow(n, "error", "-")
			continue
		}
		bound := int(math.Ceil(math.Log2(float64(n)))) + 2
		t.AddRow(n, s.Stats().MaxDepth, bound)
	}
	return t
}

// AblationExperiment measures the Appendix C optimisations by toggling
// them off one at a time on a medium workload.
func AblationExperiment(ctx context.Context, cfg Config) *Table {
	type variant struct {
		name string
		opts func(k int) logk.Options
	}
	variants := []variant{
		{"full (Algorithm 2)", func(k int) logk.Options { return logk.Options{K: k} }},
		{"-allowed-edges", func(k int) logk.Options { return logk.Options{K: k, NoAllowedRestriction: true} }},
		{"-parent-pool", func(k int) logk.Options { return logk.Options{K: k, NoParentPoolRestriction: true} }},
		{"-negative-base", func(k int) logk.Options { return logk.Options{K: k, NoNegativeBaseCase: true} }},
		{"none disabled off", func(k int) logk.Options {
			return logk.Options{K: k, NoAllowedRestriction: true, NoParentPoolRestriction: true, NoNegativeBaseCase: true}
		}},
	}
	t := &Table{
		Title:   "Ablation: Appendix C optimisations (medium instances)",
		Headers: []string{"Variant", "solved", "total-sec", "child-candidates"},
	}
	for _, v := range variants {
		solved := 0
		var totalTime time.Duration
		var cands int64
		for _, in := range cfg.Suite {
			k := in.KnownHW
			if k == 0 {
				continue
			}
			runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			s := logk.New(in.H, v.opts(k))
			start := time.Now()
			_, ok, _ := s.Decompose(runCtx)
			totalTime += time.Since(start)
			cancel()
			if ok {
				solved++
			}
			cands += s.Stats().Candidates
		}
		t.AddRow(v.name, solved, totalTime.Seconds(), cands)
	}
	return t
}

// GHDComparison reproduces the §5.2 comparison with GHD computation:
// BalancedGo-style GHD search vs log-k-decomp HDs on the same instances.
// It reports solved counts and verifies that on commonly solved
// instances the GHD width never beats the HD width.
func GHDComparison(ctx context.Context, cfg Config) (*Table, error) {
	r := cfg.runner()
	hd := MethodLogKHybrid(cfg.Workers, logk.HybridWeightedCount, 40)
	ghd := MethodBalancedGo()

	hdSolved, ghdSolved, both, lower := 0, 0, 0, 0
	var hdTime, ghdTime time.Duration
	for _, in := range cfg.Suite {
		rh := r.Run(ctx, hd, in)
		rg := r.Run(ctx, ghd, in)
		if rh.Err != nil {
			return nil, rh.Err
		}
		if rg.Err != nil {
			return nil, rg.Err
		}
		if rh.Solved {
			hdSolved++
			hdTime += rh.Runtime
		}
		if rg.Solved {
			ghdSolved++
			ghdTime += rg.Runtime
		}
		if rh.Solved && rg.Solved {
			both++
			if rg.Width < rh.Width {
				lower++
			}
		}
	}
	t := &Table{
		Title:   "GHD (BalancedGo-style) vs HD (log-k-decomp Hybrid)",
		Headers: []string{"Metric", "HD", "GHD"},
	}
	t.AddRow("solved", hdSolved, ghdSolved)
	t.AddRow("total-sec(solved)", hdTime.Seconds(), ghdTime.Seconds())
	t.AddRow("ghw < hw cases", "-", lower)
	t.Notes = append(t.Notes, fmt.Sprintf("instances solved by both: %d", both))
	return t, nil
}

// cycleInstance builds a cycle for the depth experiment without going
// through the suite generator.
func cycleInstance(n int) hyperbench.Instance {
	cfg := hyperbench.Config{Scale: 1}
	_ = cfg
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "R%d(x%d,x%d)", i, i, (i+1)%n)
	}
	b.WriteString(".")
	h := mustParse(b.String())
	return hyperbench.Instance{Name: fmt.Sprintf("cycle-%d", n), Origin: hyperbench.Synthetic, H: h, KnownHW: 2}
}
