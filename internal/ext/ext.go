// Package ext implements extended subhypergraphs ⟨E′, Sp, Conn⟩
// (Definition 3.1 of the paper) and their [U]-components
// (Definition 3.2). These are the objects the recursive Decomp functions
// of log-k-decomp and det-k-decomp operate on.
//
// A special edge is a vertex set acting as a placeholder for the bag of a
// decomposition node determined elsewhere; it carries a run-unique ID so
// HD-fragments can later be stitched together at the leaf that covers it.
// The Conn interface set is passed alongside a Graph rather than stored
// in it, mirroring how the algorithms thread it through recursion.
package ext

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// Special is a special edge: a set of vertices with a run-unique identity.
//
// Forbidden records the vertices that will appear in decomposition bags
// below this special's placeholder leaf once the leaf is replaced by the
// fragment it stands for (everything the "down" side of the originating
// split covers, minus the interface χ(c) itself). Any node that is an
// ancestor of the leaf must avoid these vertices in its λ-label: they
// occur in bags below but can never be added to a bag up here (the
// interface χ(c) would have to contain them, and it does not), so a
// λ-edge containing one would violate the special condition
// (condition 4) in the final stitched tree. A nil Forbidden means no
// constraint.
type Special struct {
	ID        int
	Vertices  *bitset.Set
	Forbidden *bitset.Set
}

// Graph is an extended subhypergraph of a fixed base hypergraph: a subset
// of its edges plus a set of special edges. Graphs are immutable after
// construction.
type Graph struct {
	H        *hypergraph.Hypergraph
	Edges    []int // sorted ascending
	Specials []Special

	verts     *bitset.Set // lazy cache of V(H'), see Vertices
	forbidden *bitset.Set // lazy cache, see ForbiddenUnion
	fbDone    bool
}

// NewGraph builds a Graph over h. The edge slice is copied and sorted.
func NewGraph(h *hypergraph.Hypergraph, edges []int, specials []Special) *Graph {
	e := append([]int(nil), edges...)
	sort.Ints(e)
	return &Graph{H: h, Edges: e, Specials: specials}
}

// Root returns the extended subhypergraph ⟨E(H), ∅⟩ whose HDs coincide
// with the HDs of H itself.
func Root(h *hypergraph.Hypergraph) *Graph {
	return &Graph{H: h, Edges: h.AllEdgeIDs()}
}

// Size returns |E′| + |Sp|, the measure halved by balanced separation.
func (g *Graph) Size() int { return len(g.Edges) + len(g.Specials) }

// Vertices returns V(H') = (∪E′) ∪ (∪Sp). The result is cached and shared;
// callers must not mutate it.
func (g *Graph) Vertices() *bitset.Set {
	if g.verts == nil {
		v := g.H.NewVertexSet()
		for _, e := range g.Edges {
			v.InPlaceUnion(g.H.Edge(e))
		}
		for _, s := range g.Specials {
			v.InPlaceUnion(s.Vertices)
		}
		g.verts = v
	}
	return g.verts
}

// ForbiddenUnion returns the union of the Forbidden sets of this graph's
// special edges, or nil when no special carries one. A node that roots a
// fragment of this graph is an ancestor of every special's leaf, so its
// λ-label must avoid the returned vertices (see Special.Forbidden).
func (g *Graph) ForbiddenUnion() *bitset.Set {
	if !g.fbDone {
		g.fbDone = true
		for _, s := range g.Specials {
			if s.Forbidden == nil || s.Forbidden.IsEmpty() {
				continue
			}
			if g.forbidden == nil {
				g.forbidden = s.Forbidden.Clone()
			} else {
				g.forbidden.InPlaceUnion(s.Forbidden)
			}
		}
	}
	return g.forbidden
}

// ContainsEdge reports whether edge id e is in E′ (binary search).
func (g *Graph) ContainsEdge(e int) bool {
	i := sort.SearchInts(g.Edges, e)
	return i < len(g.Edges) && g.Edges[i] == e
}

// SpecialsCoveredBy returns the special edges f ∈ Sp with f ⊆ u. These
// are exactly the specials that fall in no [u]-component.
func (g *Graph) SpecialsCoveredBy(u *bitset.Set) []Special {
	var out []Special
	for _, s := range g.Specials {
		if s.Vertices.SubsetOf(u) {
			out = append(out, s)
		}
	}
	return out
}

// Subtract returns g minus the edges and specials of d ("pointwise
// difference", line 35 of Algorithm 1). d's edges must be a subset of
// g's; specials are matched by ID.
func (g *Graph) Subtract(d *Graph) *Graph {
	edges := DiffSortedInts(g.Edges, d.Edges)
	drop := make(map[int]bool, len(d.Specials))
	for _, s := range d.Specials {
		drop[s.ID] = true
	}
	var specials []Special
	for _, s := range g.Specials {
		if !drop[s.ID] {
			specials = append(specials, s)
		}
	}
	return &Graph{H: g.H, Edges: edges, Specials: specials}
}

// WithSpecial returns a copy of g with one additional special edge.
func (g *Graph) WithSpecial(s Special) *Graph {
	specials := make([]Special, 0, len(g.Specials)+1)
	specials = append(specials, g.Specials...)
	specials = append(specials, s)
	return &Graph{H: g.H, Edges: g.Edges, Specials: specials}
}

// DiffSortedInts returns a \ b for sorted int slices. It is used both
// for Subtract and by the solvers (allowed-edge bookkeeping in the
// optimised algorithm).
func DiffSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Key appends a canonical encoding of (g, conn) to dst, for memoisation.
// Specials are identified by vertex-set content (not ID), so structurally
// identical states reached through different fragment histories share a
// cache entry. Use KeyStrict when cached results embed special IDs.
func (g *Graph) Key(conn *bitset.Set, dst []byte) []byte {
	dst = g.keyCommon(dst, false)
	dst = conn.AppendKey(dst)
	return dst
}

// KeyStrict is Key but additionally distinguishes special edges by ID.
// Solvers that cache constructed fragments (which embed special-leaf IDs)
// must use this key, or a cache hit could graft a fragment referring to
// specials of a different recursion branch.
func (g *Graph) KeyStrict(conn *bitset.Set, dst []byte) []byte {
	dst = g.keyCommon(dst, true)
	dst = conn.AppendKey(dst)
	return dst
}

// MemoKey appends a purely content-based encoding of (g, conn, allowed)
// to dst: edge set, special edges by vertex and forbidden content (IDs
// ignored), the interface, and the allowed-edge list. Two states with
// equal MemoKeys are interchangeable for the *decision* problem, so the
// key is safe for negative memoisation (positive results embed special
// IDs and must not be shared this way).
func (g *Graph) MemoKey(conn *bitset.Set, allowed []int, dst []byte) []byte {
	eb := g.H.NewEdgeSet()
	for _, e := range g.Edges {
		eb.Set(e)
	}
	dst = eb.AppendKey(dst)
	spKeys := make([]string, len(g.Specials))
	for i, s := range g.Specials {
		k := s.Vertices.AppendKey(nil)
		k = append(k, 0xFE)
		if s.Forbidden != nil {
			k = s.Forbidden.AppendKey(k)
		}
		spKeys[i] = string(k)
	}
	sort.Strings(spKeys)
	for _, k := range spKeys {
		dst = append(dst, k...)
	}
	dst = append(dst, 0xFF)
	dst = conn.AppendKey(dst)
	ab := g.H.NewEdgeSet()
	for _, e := range allowed {
		ab.Set(e)
	}
	dst = ab.AppendKey(dst)
	return dst
}

func (g *Graph) keyCommon(dst []byte, withIDs bool) []byte {
	eb := g.H.NewEdgeSet()
	for _, e := range g.Edges {
		eb.Set(e)
	}
	dst = eb.AppendKey(dst)
	spKeys := make([]string, len(g.Specials))
	for i, s := range g.Specials {
		k := s.Vertices.AppendKey(nil)
		if withIDs {
			id := s.ID
			k = append(k, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		spKeys[i] = string(k)
	}
	sort.Strings(spKeys)
	for _, k := range spKeys {
		dst = append(dst, k...)
	}
	dst = append(dst, 0xFF)
	return dst
}
