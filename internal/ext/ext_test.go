package ext

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("", vname(i), vname((i+1)%n))
	}
	return b.Build()
}

func vname(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestRootGraph(t *testing.T) {
	h := cycle(5)
	g := Root(h)
	if g.Size() != 5 || len(g.Specials) != 0 {
		t.Fatalf("root graph wrong: size=%d", g.Size())
	}
	if g.Vertices().Len() != 5 {
		t.Fatalf("root vertices = %d", g.Vertices().Len())
	}
}

func TestComponentsOfCycle(t *testing.T) {
	// Separating a 10-cycle at the union of edges {0} and {5} (vertices
	// 0,1 and 5,6) splits the rest into two arcs.
	h := cycle(10)
	g := Root(h)
	sp := NewSplitter(h)
	u := h.Union([]int{0, 5})
	comps := sp.Components(g, u)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	sizes := []int{comps[0].Size(), comps[1].Size()}
	if !(sizes[0] == 4 && sizes[1] == 4) {
		t.Fatalf("component sizes = %v, want [4 4]", sizes)
	}
	// Edges fully inside u (edges 0 and 5 themselves) are in no component.
	for _, c := range comps {
		for _, e := range c.Edges {
			if e == 0 || e == 5 {
				t.Fatalf("covered edge %d appears in a component", e)
			}
		}
	}
}

func TestComponentsEmptySeparator(t *testing.T) {
	h := cycle(6)
	g := Root(h)
	sp := NewSplitter(h)
	comps := sp.Components(g, h.NewVertexSet())
	if len(comps) != 1 || comps[0].Size() != 6 {
		t.Fatalf("cycle under empty separator should be one component, got %d", len(comps))
	}
}

func TestComponentsWithSpecials(t *testing.T) {
	// Path a-b, b-c plus a special {c,d} and a special {x} (disconnected).
	var b hypergraph.Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "b", "c")
	b.MustAddEdge("iso", "x", "y")
	h := b.Build()
	cIdx := -1
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexName(v) == "c" {
			cIdx = v
		}
	}
	s1 := Special{ID: 100, Vertices: bitset.FromSlice(h.NumVertices(), []int{cIdx})}
	g := NewGraph(h, []int{0, 1, 2}, []Special{s1})

	sp := NewSplitter(h)
	// Separate at "b": e1 joins nothing across b; e2 and the special share c.
	var bIdx int
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexName(v) == "b" {
			bIdx = v
		}
	}
	u := bitset.FromSlice(h.NumVertices(), []int{bIdx})
	comps := sp.Components(g, u)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	// One component must contain both edge e2 and the special.
	found := false
	for _, c := range comps {
		if len(c.Edges) == 1 && c.Edges[0] == 1 && len(c.Specials) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge e2 and special {c} should share a component")
	}
}

func TestSpecialsCoveredBy(t *testing.T) {
	h := cycle(4)
	s1 := Special{ID: 1, Vertices: bitset.FromSlice(h.NumVertices(), []int{0, 1})}
	s2 := Special{ID: 2, Vertices: bitset.FromSlice(h.NumVertices(), []int{2, 3})}
	g := NewGraph(h, nil, []Special{s1, s2})
	u := bitset.FromSlice(h.NumVertices(), []int{0, 1, 2})
	cov := g.SpecialsCoveredBy(u)
	if len(cov) != 1 || cov[0].ID != 1 {
		t.Fatalf("covered = %v", cov)
	}
}

func TestSubtractAndWithSpecial(t *testing.T) {
	h := cycle(6)
	s1 := Special{ID: 7, Vertices: bitset.FromSlice(h.NumVertices(), []int{0})}
	g := NewGraph(h, []int{0, 1, 2, 3}, []Special{s1})
	d := NewGraph(h, []int{1, 3}, []Special{s1})
	r := g.Subtract(d)
	if !reflect.DeepEqual(r.Edges, []int{0, 2}) {
		t.Fatalf("Subtract edges = %v", r.Edges)
	}
	if len(r.Specials) != 0 {
		t.Fatalf("Subtract specials = %v", r.Specials)
	}
	r2 := r.WithSpecial(Special{ID: 9, Vertices: bitset.FromSlice(h.NumVertices(), []int{5})})
	if len(r2.Specials) != 1 || r2.Specials[0].ID != 9 {
		t.Fatal("WithSpecial failed")
	}
	if len(r.Specials) != 0 {
		t.Fatal("WithSpecial mutated receiver")
	}
}

func TestContainsEdge(t *testing.T) {
	h := cycle(6)
	g := NewGraph(h, []int{1, 3, 5}, nil)
	for _, e := range []int{1, 3, 5} {
		if !g.ContainsEdge(e) {
			t.Fatalf("ContainsEdge(%d) = false", e)
		}
	}
	for _, e := range []int{0, 2, 4} {
		if g.ContainsEdge(e) {
			t.Fatalf("ContainsEdge(%d) = true", e)
		}
	}
}

func TestKeyDistinguishesStates(t *testing.T) {
	h := cycle(6)
	conn := h.NewVertexSet()
	g1 := NewGraph(h, []int{0, 1}, nil)
	g2 := NewGraph(h, []int{0, 2}, nil)
	if string(g1.Key(conn, nil)) == string(g2.Key(conn, nil)) {
		t.Fatal("different edge sets share a key")
	}
	// Same specials content under different IDs must share a key.
	sA := Special{ID: 1, Vertices: bitset.FromSlice(h.NumVertices(), []int{2, 3})}
	sB := Special{ID: 42, Vertices: bitset.FromSlice(h.NumVertices(), []int{2, 3})}
	gA := NewGraph(h, []int{0}, []Special{sA})
	gB := NewGraph(h, []int{0}, []Special{sB})
	if string(gA.Key(conn, nil)) != string(gB.Key(conn, nil)) {
		t.Fatal("structurally identical graphs have different keys")
	}
	conn2 := bitset.FromSlice(h.NumVertices(), []int{0})
	if string(gA.Key(conn, nil)) == string(gA.Key(conn2, nil)) {
		t.Fatal("different Conn sets share a key")
	}
}

func TestLargestComponentAndBalance(t *testing.T) {
	h := cycle(8)
	a := NewGraph(h, []int{0, 1, 2, 3, 4}, nil)
	b := NewGraph(h, []int{5}, nil)
	comps := []*Graph{b, a}
	if got := LargestComponent(comps, 8); got != 1 {
		t.Fatalf("LargestComponent = %d, want 1", got)
	}
	if AllBalanced(comps, 8) {
		t.Fatal("component of size 5 of 8 is unbalanced")
	}
	if !AllBalanced(comps, 10) {
		t.Fatal("size 5 of 10 is balanced (≤ half)")
	}
}

func randomHypergraph(r *rand.Rand, maxV, maxE int) *hypergraph.Hypergraph {
	nv := 2 + r.Intn(maxV-1)
	ne := 1 + r.Intn(maxE)
	var b hypergraph.Builder
	for e := 0; e < ne; e++ {
		maxArity := 3
		if maxArity > nv {
			maxArity = nv
		}
		arity := 1 + r.Intn(maxArity)
		seen := map[int]bool{}
		var names []string
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, vname(v))
			}
		}
		b.MustAddEdge("", names...)
	}
	return b.Build()
}

// Property: components partition the non-covered items, components are
// pairwise vertex-disjoint outside U, and every item is either covered
// (f ⊆ U) or in exactly one component.
func TestQuickComponentsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 12, 14)
		g := Root(h)
		u := h.NewVertexSet()
		for v := 0; v < h.NumVertices(); v++ {
			if r.Intn(3) == 0 {
				u.Set(v)
			}
		}
		sp := NewSplitter(h)
		comps := sp.Components(g, u)

		seen := map[int]int{} // edge id -> count over components
		for _, c := range comps {
			for _, e := range c.Edges {
				seen[e]++
			}
		}
		for e := 0; e < h.NumEdges(); e++ {
			covered := h.Edge(e).SubsetOf(u)
			switch {
			case covered && seen[e] != 0:
				return false
			case !covered && seen[e] != 1:
				return false
			}
		}
		// Pairwise disjoint outside u.
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				vi := comps[i].Vertices().Diff(u)
				vj := comps[j].Vertices().Diff(u)
				if vi.Intersects(vj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: maximality — merging any two distinct components would break
// [U]-connectedness, i.e. no edge in one component shares an out-of-U
// vertex with an edge in another (already covered by disjointness), and
// within a component of size >= 2 every item connects to some other item.
func TestQuickComponentsInternallyConnected(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 10, 10)
		g := Root(h)
		u := h.NewVertexSet()
		for v := 0; v < h.NumVertices(); v++ {
			if r.Intn(4) == 0 {
				u.Set(v)
			}
		}
		sp := NewSplitter(h)
		for _, c := range sp.Components(g, u) {
			if c.Size() < 2 {
				continue
			}
			// BFS inside the component over [u]-adjacency.
			adj := func(a, b int) bool {
				return h.Edge(c.Edges[a]).IntersectsDiff(h.Edge(c.Edges[b]), u)
			}
			visited := make([]bool, len(c.Edges))
			stack := []int{0}
			visited[0] = true
			count := 1
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for y := range c.Edges {
					if !visited[y] && adj(x, y) {
						visited[y] = true
						count++
						stack = append(stack, y)
					}
				}
			}
			if count != len(c.Edges) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property behind Corollary 3.8 as used by the solver: for any
// sub-collection d of g's items, the [U]-components of d coincide with
// the [U ∩ V(d)]-components of d — adjacency only ever inspects shared
// vertices, which lie in V(d). This is what lets log-k-decomp compute
// χ(c) = ∪λ(c) ∩ V(compdown) and still split compdown exactly as ∪λ(c)
// would.
func TestQuickComponentsRestrictSeparator(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 10, 10)
		// Random sub-collection d of the edges.
		var sub []int
		for e := 0; e < h.NumEdges(); e++ {
			if r.Intn(2) == 0 {
				sub = append(sub, e)
			}
		}
		if len(sub) == 0 {
			return true
		}
		d := NewGraph(h, sub, nil)
		u := h.NewVertexSet()
		for v := 0; v < h.NumVertices(); v++ {
			if r.Intn(3) == 0 {
				u.Set(v)
			}
		}
		restricted := u.Intersect(d.Vertices())
		sp := NewSplitter(h)
		a := sp.Components(d, u)
		b := sp.Components(d, restricted)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i].Edges) != len(b[i].Edges) {
				return false
			}
			for j := range a[i].Edges {
				if a[i].Edges[j] != b[i].Edges[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitterReuse(t *testing.T) {
	h := cycle(12)
	g := Root(h)
	sp := NewSplitter(h)
	u1 := h.Union([]int{0})
	u2 := h.Union([]int{0, 6})
	for i := 0; i < 50; i++ {
		c1 := sp.Components(g, u1)
		c2 := sp.Components(g, u2)
		if len(c1) != 1 || len(c2) != 2 {
			t.Fatalf("iteration %d: got %d and %d components", i, len(c1), len(c2))
		}
	}
}

func BenchmarkComponentsCycle64(b *testing.B) {
	h := cycle(64)
	g := Root(h)
	sp := NewSplitter(h)
	u := h.Union([]int{0, 16, 32, 48})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Components(g, u)
	}
}
