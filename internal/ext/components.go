package ext

import (
	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// Splitter computes [U]-components of extended subhypergraphs over one
// fixed base hypergraph. It reuses internal scratch buffers between calls
// via epoch stamping, so component computation in the solvers' hot loops
// is allocation-light. A Splitter is not safe for concurrent use; give
// each worker goroutine its own.
type Splitter struct {
	h *hypergraph.Hypergraph

	// union-find over the items (edges then specials) of the current call
	parent []int32
	rank   []int8

	// root item -> output component index, reset per call
	rootComp []int32
	// scratch: item has a vertex outside u
	hasOutside []bool

	// vertex -> first item seen containing it (outside U), epoch-stamped
	vOwner []int32
	vStamp []uint32
	epoch  uint32
}

// NewSplitter returns a Splitter for hypergraphs over h's vertex universe.
func NewSplitter(h *hypergraph.Hypergraph) *Splitter {
	return &Splitter{
		h:      h,
		vOwner: make([]int32, h.NumVertices()),
		vStamp: make([]uint32, h.NumVertices()),
	}
}

func (s *Splitter) find(i int32) int32 {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

func (s *Splitter) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
}

// Components returns the [u]-components of g (Definition 3.2): the
// maximal subsets of E′ ∪ Sp connected transitively through shared
// vertices outside u. Items entirely inside u (f ⊆ u) belong to no
// component. Each returned component is itself a Graph over the same
// base hypergraph.
func (s *Splitter) Components(g *Graph, u *bitset.Set) []*Graph {
	nItems := g.Size()
	if cap(s.parent) < nItems {
		s.parent = make([]int32, nItems)
		s.rank = make([]int8, nItems)
		s.rootComp = make([]int32, nItems)
		s.hasOutside = make([]bool, nItems)
	}
	s.parent = s.parent[:nItems]
	s.rank = s.rank[:nItems]
	s.rootComp = s.rootComp[:nItems]
	for i := range s.parent {
		s.parent[i] = int32(i)
		s.rank[i] = 0
		s.rootComp[i] = -1
	}
	s.epoch++
	if s.epoch == 0 { // wrapped; reset stamps
		for i := range s.vStamp {
			s.vStamp[i] = 0
		}
		s.epoch = 1
	}

	itemVerts := func(i int) *bitset.Set {
		if i < len(g.Edges) {
			return s.h.Edge(g.Edges[i])
		}
		return g.Specials[i-len(g.Edges)].Vertices
	}

	if cap(s.hasOutside) < nItems {
		s.hasOutside = make([]bool, nItems)
	}
	hasOutside := s.hasOutside[:nItems]
	for i := range hasOutside {
		hasOutside[i] = false
	}
	for i := 0; i < nItems; i++ {
		vs := itemVerts(i)
		vs.ForEach(func(v int) {
			if u.Test(v) {
				return
			}
			hasOutside[i] = true
			if s.vStamp[v] == s.epoch {
				s.union(int32(i), s.vOwner[v])
			} else {
				s.vStamp[v] = s.epoch
				s.vOwner[v] = int32(i)
			}
		})
	}

	// Group items by union-find root, preserving order (edges first,
	// ascending; then specials) so component edge lists stay sorted.
	var comps []*Graph
	for i := 0; i < nItems; i++ {
		if !hasOutside[i] {
			continue
		}
		r := s.find(int32(i))
		ci := s.rootComp[r]
		if ci < 0 {
			ci = int32(len(comps))
			s.rootComp[r] = ci
			comps = append(comps, &Graph{H: g.H})
		}
		if i < len(g.Edges) {
			comps[ci].Edges = append(comps[ci].Edges, g.Edges[i])
		} else {
			comps[ci].Specials = append(comps[ci].Specials, g.Specials[i-len(g.Edges)])
		}
	}
	return comps
}

// LargestComponent returns the index of a component with size strictly
// greater than half the size of total (2*|C| > total), or -1 if none
// exists. At most one such component can exist.
func LargestComponent(comps []*Graph, total int) int {
	for i, c := range comps {
		if 2*c.Size() > total {
			return i
		}
	}
	return -1
}

// AllBalanced reports whether every component has size at most half of
// total (2*|C| ≤ total) — the balancedness condition of Definition 3.9.
func AllBalanced(comps []*Graph, total int) bool {
	return LargestComponent(comps, total) == -1
}
