// Package hypergraph defines the hypergraph representation shared by all
// decomposition algorithms in this repository, together with a parser for
// the HyperBench text format, structural statistics, preprocessing, and
// the GYO acyclicity test.
//
// Vertices and edges are dense integer ids. Every edge is a vertex bitset
// of capacity NumVertices; sets of edges are bitsets of capacity NumEdges.
// Hypergraphs are immutable after construction — algorithms treat the
// edge bitsets as read-only and never mutate them.
package hypergraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/bitset"
)

// Hypergraph is an immutable hypergraph H = (V, E). Construct one with a
// Builder or by parsing the HyperBench format (see Parse).
type Hypergraph struct {
	vertexNames []string
	vertexIndex map[string]int
	edgeNames   []string
	edges       []*bitset.Set // edge id -> vertex set
	incidence   [][]int       // vertex id -> sorted edge ids containing it

	// contentHash caches ContentHash; safe because the structure is
	// immutable after Build (racing computations agree on the value).
	contentHash atomic.Pointer[string]
}

// Builder accumulates edges and produces a Hypergraph. The zero value is
// ready to use.
type Builder struct {
	vertexIndex map[string]int
	vertexNames []string
	edgeNames   []string
	edgeVerts   [][]int
}

// AddEdge appends an edge with the given name and vertex names. Vertex
// names are interned; repeating a vertex within an edge is harmless.
// Empty edges are rejected (the paper assumes non-empty edges).
func (b *Builder) AddEdge(name string, vertices ...string) error {
	if len(vertices) == 0 {
		return fmt.Errorf("hypergraph: edge %q has no vertices", name)
	}
	if b.vertexIndex == nil {
		b.vertexIndex = make(map[string]int)
	}
	ids := make([]int, 0, len(vertices))
	for _, v := range vertices {
		id, ok := b.vertexIndex[v]
		if !ok {
			id = len(b.vertexNames)
			b.vertexIndex[v] = id
			b.vertexNames = append(b.vertexNames, v)
		}
		ids = append(ids, id)
	}
	if name == "" {
		name = fmt.Sprintf("E%d", len(b.edgeNames)+1)
	}
	b.edgeNames = append(b.edgeNames, name)
	b.edgeVerts = append(b.edgeVerts, ids)
	return nil
}

// MustAddEdge is AddEdge that panics on error, for use in tests and
// generators where edges are known to be well-formed.
func (b *Builder) MustAddEdge(name string, vertices ...string) {
	if err := b.AddEdge(name, vertices...); err != nil {
		panic(err)
	}
}

// Build finalises the hypergraph. The builder may be reused afterwards,
// but edges added later do not affect the returned value.
func (b *Builder) Build() *Hypergraph {
	n := len(b.vertexNames)
	h := &Hypergraph{
		vertexNames: append([]string(nil), b.vertexNames...),
		vertexIndex: make(map[string]int, n),
		edgeNames:   append([]string(nil), b.edgeNames...),
		edges:       make([]*bitset.Set, len(b.edgeVerts)),
		incidence:   make([][]int, n),
	}
	for i, name := range h.vertexNames {
		h.vertexIndex[name] = i
	}
	for i, vs := range b.edgeVerts {
		e := bitset.New(n)
		for _, v := range vs {
			e.Set(v)
		}
		h.edges[i] = e
		e.ForEach(func(v int) {
			h.incidence[v] = append(h.incidence[v], i)
		})
	}
	return h
}

// NumVertices returns |V(H)|.
func (h *Hypergraph) NumVertices() int { return len(h.vertexNames) }

// NumEdges returns |E(H)|.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// Edge returns the vertex set of edge i. The returned set is shared and
// must not be mutated.
func (h *Hypergraph) Edge(i int) *bitset.Set { return h.edges[i] }

// EdgeName returns the name of edge i.
func (h *Hypergraph) EdgeName(i int) string { return h.edgeNames[i] }

// VertexName returns the name of vertex v.
func (h *Hypergraph) VertexName(v int) string { return h.vertexNames[v] }

// VertexID returns the id of the vertex with the given name.
func (h *Hypergraph) VertexID(name string) (int, bool) {
	id, ok := h.vertexIndex[name]
	return id, ok
}

// IncidentEdges returns the sorted ids of edges containing vertex v. The
// returned slice is shared and must not be mutated.
func (h *Hypergraph) IncidentEdges(v int) []int { return h.incidence[v] }

// NewVertexSet returns an empty bitset with capacity NumVertices.
func (h *Hypergraph) NewVertexSet() *bitset.Set { return bitset.New(h.NumVertices()) }

// NewEdgeSet returns an empty bitset with capacity NumEdges.
func (h *Hypergraph) NewEdgeSet() *bitset.Set { return bitset.New(h.NumEdges()) }

// UnionInto adds the vertices of every edge in ids to dst and returns dst.
func (h *Hypergraph) UnionInto(dst *bitset.Set, ids []int) *bitset.Set {
	for _, id := range ids {
		dst.InPlaceUnion(h.edges[id])
	}
	return dst
}

// Union returns the union of the vertex sets of the given edges.
func (h *Hypergraph) Union(ids []int) *bitset.Set {
	return h.UnionInto(h.NewVertexSet(), ids)
}

// AllEdgeIDs returns 0..NumEdges-1 as a fresh slice.
func (h *Hypergraph) AllEdgeIDs() []int {
	ids := make([]int, h.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Vertices returns the full vertex set as a fresh bitset.
func (h *Hypergraph) Vertices() *bitset.Set {
	s := h.NewVertexSet()
	for _, e := range h.edges {
		s.InPlaceUnion(e)
	}
	return s
}

// ContentHash returns a hex digest of the hypergraph's structure: the
// vertex count plus the vertex set of every edge, in edge-id order.
// Names are ignored — two hypergraphs with identical edge bitsets over
// the same id space hash equally, and because all solver memo keys are
// id-based, their memoised search states are interchangeable. The
// service layer keys its cross-request caches on this digest.
func (h *Hypergraph) ContentHash() string {
	if p := h.contentHash.Load(); p != nil {
		return *p
	}
	d := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(h.vertexNames)))
	d.Write(hdr[:])
	var key []byte
	for _, e := range h.edges {
		key = e.AppendKey(key[:0])
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(key)))
		d.Write(hdr[:])
		d.Write(key)
	}
	sum := hex.EncodeToString(d.Sum(nil))
	h.contentHash.Store(&sum)
	return sum
}

// EdgeVertices returns the sorted vertex ids of edge i.
func (h *Hypergraph) EdgeVertices(i int) []int { return h.edges[i].Elements() }

// String renders the hypergraph in HyperBench syntax.
func (h *Hypergraph) String() string {
	var b strings.Builder
	for i := range h.edges {
		if i > 0 {
			b.WriteString(",\n")
		}
		b.WriteString(h.edgeNames[i])
		b.WriteByte('(')
		for j, v := range h.EdgeVertices(i) {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(h.vertexNames[v])
		}
		b.WriteByte(')')
	}
	b.WriteString(".")
	return b.String()
}

// RemoveSubsumedEdges returns a hypergraph without edges that are subsets
// of other edges (ties broken by keeping the lower id), plus a mapping
// from new edge ids to original ids. Removing subsumed edges preserves
// hypertree width: any node covering the superset edge also covers the
// subsumed one.
func (h *Hypergraph) RemoveSubsumedEdges() (*Hypergraph, []int) {
	m := h.NumEdges()
	keep := make([]bool, m)
	for i := range keep {
		keep[i] = true
	}
	for i := 0; i < m; i++ {
		if !keep[i] {
			continue
		}
		for j := 0; j < m; j++ {
			if i == j || !keep[j] {
				continue
			}
			if h.edges[j].SubsetOf(h.edges[i]) {
				if !h.edges[i].SubsetOf(h.edges[j]) || j > i {
					keep[j] = false
				}
			}
		}
	}
	var b Builder
	var mapping []int
	for i := 0; i < m; i++ {
		if !keep[i] {
			continue
		}
		names := make([]string, 0, h.edges[i].Len())
		for _, v := range h.EdgeVertices(i) {
			names = append(names, h.vertexNames[v])
		}
		b.MustAddEdge(h.edgeNames[i], names...)
		mapping = append(mapping, i)
	}
	return b.Build(), mapping
}

// Stats summarises structural properties of a hypergraph.
type Stats struct {
	Vertices    int
	Edges       int
	MinArity    int
	MaxArity    int
	AvgArity    float64
	MinDegree   int
	MaxDegree   int
	AvgDegree   float64
	IsConnected bool
}

// ComputeStats returns structural statistics for h.
func (h *Hypergraph) ComputeStats() Stats {
	s := Stats{Vertices: h.NumVertices(), Edges: h.NumEdges()}
	if s.Edges == 0 {
		s.IsConnected = true
		return s
	}
	s.MinArity = h.edges[0].Len()
	totalArity := 0
	for _, e := range h.edges {
		a := e.Len()
		totalArity += a
		if a < s.MinArity {
			s.MinArity = a
		}
		if a > s.MaxArity {
			s.MaxArity = a
		}
	}
	s.AvgArity = float64(totalArity) / float64(s.Edges)
	if s.Vertices > 0 {
		s.MinDegree = len(h.incidence[0])
		totalDeg := 0
		for _, inc := range h.incidence {
			d := len(inc)
			totalDeg += d
			if d < s.MinDegree {
				s.MinDegree = d
			}
			if d > s.MaxDegree {
				s.MaxDegree = d
			}
		}
		s.AvgDegree = float64(totalDeg) / float64(s.Vertices)
	}
	s.IsConnected = h.isConnected()
	return s
}

// isConnected reports whether the hypergraph has a single [∅]-component.
func (h *Hypergraph) isConnected() bool {
	m := h.NumEdges()
	if m <= 1 {
		return true
	}
	visited := make([]bool, m)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.edges[e].ForEach(func(v int) {
			for _, f := range h.incidence[v] {
				if !visited[f] {
					visited[f] = true
					count++
					stack = append(stack, f)
				}
			}
		})
	}
	return count == m
}

// SortedEdgeIDsByDegree returns edge ids ordered by descending total
// vertex degree (the sum over the edge's vertices of how many edges
// contain them). Separator searches that try "central" edges first tend
// to find balanced separators sooner.
func (h *Hypergraph) SortedEdgeIDsByDegree() []int {
	type ed struct{ id, weight int }
	eds := make([]ed, h.NumEdges())
	for i := range eds {
		w := 0
		h.edges[i].ForEach(func(v int) { w += len(h.incidence[v]) })
		eds[i] = ed{i, w}
	}
	sort.Slice(eds, func(a, b int) bool {
		if eds[a].weight != eds[b].weight {
			return eds[a].weight > eds[b].weight
		}
		return eds[a].id < eds[b].id
	})
	out := make([]int, len(eds))
	for i, e := range eds {
		out[i] = e.id
	}
	return out
}
