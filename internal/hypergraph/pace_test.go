package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestParsePACE(t *testing.T) {
	src := `c the triangle
p htd 3 3
1 1 2
2 2 3
3 3 1
`
	h, err := ParsePACE(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumEdges() != 3 {
		t.Fatalf("shape: %d vertices, %d edges", h.NumVertices(), h.NumEdges())
	}
	if h.EdgeName(0) != "e1" {
		t.Fatalf("edge name = %q", h.EdgeName(0))
	}
	if h.IsAcyclic() {
		t.Fatal("triangle should be cyclic")
	}
}

func TestParsePACEErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"1 1 2",            // edge before problem line
		"p htd 3 2\n1 1 2", // declared 2 edges, found 1
		"p htd x y\n",      // bad counts
		"p tw 3 3\n1 1 2",  // wrong problem type
		"p htd 2 1\n1 1 5", // vertex out of range
		"p htd 2 1\n1",     // edge without vertices
		"p htd 2 1\nz 1 2", // bad edge id
	}
	for _, src := range cases {
		if _, err := ParsePACE(strings.NewReader(src)); err == nil {
			t.Errorf("ParsePACE(%q) should fail", src)
		}
	}
}

func TestPACERoundTrip(t *testing.T) {
	var b Builder
	b.MustAddEdge("r1", "a", "b", "c")
	b.MustAddEdge("r2", "c", "d")
	h := b.Build()
	var buf bytes.Buffer
	if err := h.WritePACE(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ParsePACE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != h.NumVertices() || h2.NumEdges() != h.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	for e := 0; e < h.NumEdges(); e++ {
		if h.Edge(e).Len() != h2.Edge(e).Len() {
			t.Fatalf("edge %d arity changed", e)
		}
	}
}
