package hypergraph

import "repro/internal/bitset"

// IsAcyclic reports whether the hypergraph is α-acyclic, using the
// GYO (Graham / Yu–Özsoyoğlu) reduction: repeatedly
//
//  1. remove vertices that occur in exactly one edge ("ear vertices"), and
//  2. remove edges that are contained in another (remaining) edge,
//
// until a fixpoint. H is α-acyclic iff the reduction empties every edge.
//
// α-acyclicity characterises hypertree width 1 (Gottlob, Leone, Scarcello
// 2002), which gives the tests an independent oracle for hw(H) = 1.
func (h *Hypergraph) IsAcyclic() bool {
	n, m := h.NumVertices(), h.NumEdges()
	if m == 0 {
		return true
	}
	// Working copies of edges (vertex sets) and an "alive" flag per edge.
	edges := make([]*bitset.Set, m)
	for i, e := range h.edges {
		edges[i] = e.Clone()
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	// degree[v] = number of alive edges containing v.
	degree := make([]int, n)
	for i := range edges {
		edges[i].ForEach(func(v int) { degree[v]++ })
	}

	changed := true
	for changed {
		changed = false
		// Rule 1: drop vertices of degree 1.
		for i := range edges {
			if !alive[i] {
				continue
			}
			var drop []int
			edges[i].ForEach(func(v int) {
				if degree[v] == 1 {
					drop = append(drop, v)
				}
			})
			for _, v := range drop {
				edges[i].Clear(v)
				degree[v] = 0
				changed = true
			}
		}
		// Rule 2: drop edges subsumed by another alive edge (empty edges
		// are subsumed by anything alive, and an edge equal to another is
		// subsumed with the duplicate of higher index removed).
		for i := range edges {
			if !alive[i] {
				continue
			}
			for j := range edges {
				if i == j || !alive[j] {
					continue
				}
				if edges[i].SubsetOf(edges[j]) && (!edges[j].SubsetOf(edges[i]) || i > j) {
					alive[i] = false
					edges[i].ForEach(func(v int) { degree[v]-- })
					changed = true
					break
				}
			}
		}
		// An empty alive edge with no alive peers left: treat as removable.
		aliveCount := 0
		last := -1
		for i := range alive {
			if alive[i] {
				aliveCount++
				last = i
			}
		}
		if aliveCount == 1 && edges[last].IsEmpty() {
			alive[last] = false
			changed = true
		}
	}

	for i := range alive {
		if alive[i] {
			return false
		}
	}
	return true
}
