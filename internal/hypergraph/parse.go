package hypergraph

import (
	"fmt"
	"io"
	"strings"
)

// Parse reads a hypergraph in the HyperBench / det-k-decomp text format:
//
//	% comment
//	edge1(v1,v2,v3),
//	edge2(v2,v4).
//
// Edges are name(vertex,...) terms separated by commas; the final edge may
// be terminated by a period. Whitespace is insignificant. Vertex and edge
// names may contain any characters except '(', ')', ',', '.', and
// whitespace.
func Parse(r io.Reader) (*Hypergraph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("hypergraph: read: %w", err)
	}
	return ParseString(string(data))
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Hypergraph, error) {
	p := &parser{input: stripComments(s)}
	var b Builder
	for {
		p.skipSpace()
		if p.done() {
			break
		}
		name, verts, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := b.AddEdge(name, verts...); err != nil {
			return nil, err
		}
		p.skipSpace()
		switch {
		case p.done():
		case p.peek() == ',':
			p.pos++
		case p.peek() == '.':
			p.pos++
			p.skipSpace()
			if !p.done() {
				return nil, fmt.Errorf("hypergraph: trailing input after '.' at offset %d", p.pos)
			}
		default:
			return nil, fmt.Errorf("hypergraph: expected ',' or '.' at offset %d, found %q", p.pos, p.peek())
		}
	}
	if len(b.edgeNames) == 0 {
		return nil, fmt.Errorf("hypergraph: no edges found")
	}
	return b.Build(), nil
}

func stripComments(s string) string {
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		if idx := strings.IndexByte(ln, '%'); idx >= 0 {
			lines[i] = ln[:idx]
		}
	}
	return strings.Join(lines, "\n")
}

type parser struct {
	input string
	pos   int
}

func (p *parser) done() bool { return p.pos >= len(p.input) }
func (p *parser) peek() byte { return p.input[p.pos] }
func (p *parser) skipSpace() {
	for !p.done() {
		switch p.peek() {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func isNameByte(c byte) bool {
	switch c {
	case '(', ')', ',', '.', ' ', '\t', '\n', '\r', '%':
		return false
	}
	return true
}

func (p *parser) name() (string, error) {
	start := p.pos
	for !p.done() && isNameByte(p.peek()) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("hypergraph: expected name at offset %d", p.pos)
	}
	return p.input[start:p.pos], nil
}

// term parses name(v1,v2,...).
func (p *parser) term() (string, []string, error) {
	name, err := p.name()
	if err != nil {
		return "", nil, err
	}
	p.skipSpace()
	if p.done() || p.peek() != '(' {
		return "", nil, fmt.Errorf("hypergraph: expected '(' after %q at offset %d", name, p.pos)
	}
	p.pos++
	var verts []string
	for {
		p.skipSpace()
		v, err := p.name()
		if err != nil {
			return "", nil, err
		}
		verts = append(verts, v)
		p.skipSpace()
		if p.done() {
			return "", nil, fmt.Errorf("hypergraph: unterminated edge %q", name)
		}
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return name, verts, nil
		default:
			return "", nil, fmt.Errorf("hypergraph: expected ',' or ')' in edge %q at offset %d", name, p.pos)
		}
	}
}
