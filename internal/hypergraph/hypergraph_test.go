package hypergraph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Cycle builds the 10-cycle hypergraph from Appendix B of the paper.
func cycle(n int) *Hypergraph {
	var b Builder
	for i := 1; i <= n; i++ {
		next := i%n + 1
		b.MustAddEdge(
			"R"+itoa(i),
			"x"+itoa(i), "x"+itoa(next),
		)
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestBuilderBasic(t *testing.T) {
	var b Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "b", "c")
	h := b.Build()
	if h.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", h.NumVertices())
	}
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", h.NumEdges())
	}
	if h.EdgeName(0) != "e1" || h.VertexName(0) != "a" {
		t.Fatal("names not preserved")
	}
	if got := h.IncidentEdges(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("IncidentEdges(b) = %v", got)
	}
}

func TestBuilderRejectsEmptyEdge(t *testing.T) {
	var b Builder
	if err := b.AddEdge("bad"); err == nil {
		t.Fatal("empty edge accepted")
	}
}

func TestBuilderAutoNames(t *testing.T) {
	var b Builder
	b.MustAddEdge("", "a", "b")
	h := b.Build()
	if h.EdgeName(0) != "E1" {
		t.Fatalf("auto name = %q, want E1", h.EdgeName(0))
	}
}

func TestBuilderDuplicateVertexInEdge(t *testing.T) {
	var b Builder
	b.MustAddEdge("e", "a", "a", "b")
	h := b.Build()
	if h.Edge(0).Len() != 2 {
		t.Fatalf("edge arity = %d, want 2", h.Edge(0).Len())
	}
}

func TestUnionAndVertices(t *testing.T) {
	h := cycle(4)
	u := h.Union([]int{0, 1})
	if got := u.Len(); got != 3 {
		t.Fatalf("union of two adjacent cycle edges has %d vertices, want 3", got)
	}
	if h.Vertices().Len() != 4 {
		t.Fatal("cycle(4) should have 4 vertices")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `% a comment
e1(a,b,c),
e2(c,d),  % inline comment
e3(d,a).`
	h, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 3 || h.NumVertices() != 4 {
		t.Fatalf("parsed %d edges, %d vertices", h.NumEdges(), h.NumVertices())
	}
	// Round-trip through String and Parse again.
	h2, err := ParseString(h.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if h2.NumEdges() != h.NumEdges() || h2.NumVertices() != h.NumVertices() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < h.NumEdges(); i++ {
		if !h.Edge(i).Equal(h2.Edge(i)) {
			t.Fatalf("edge %d changed in round trip", i)
		}
	}
}

func TestParseWithoutTerminator(t *testing.T) {
	h, err := ParseString("e1(a,b), e2(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", h.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   % only comments",
		"e1(a,b",
		"e1(a,b)x",
		"e1",
		"e1(a,b). trailing",
		"e1()",
		"(a,b)",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestParseReader(t *testing.T) {
	h, err := Parse(strings.NewReader("e(a,b)."))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 {
		t.Fatal("reader parse failed")
	}
}

func TestRemoveSubsumedEdges(t *testing.T) {
	var b Builder
	b.MustAddEdge("big", "a", "b", "c")
	b.MustAddEdge("small", "a", "b")
	b.MustAddEdge("dup", "a", "b", "c")
	b.MustAddEdge("other", "c", "d")
	h := b.Build()
	r, mapping := h.RemoveSubsumedEdges()
	if r.NumEdges() != 2 {
		t.Fatalf("reduced to %d edges, want 2", r.NumEdges())
	}
	if !reflect.DeepEqual(mapping, []int{0, 3}) {
		t.Fatalf("mapping = %v, want [0 3]", mapping)
	}
}

func TestComputeStats(t *testing.T) {
	h := cycle(6)
	s := h.ComputeStats()
	if s.Vertices != 6 || s.Edges != 6 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.MinArity != 2 || s.MaxArity != 2 || s.AvgArity != 2 {
		t.Fatalf("arity stats wrong: %+v", s)
	}
	if s.MinDegree != 2 || s.MaxDegree != 2 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if !s.IsConnected {
		t.Fatal("cycle should be connected")
	}

	var b Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "c", "d")
	if b.Build().ComputeStats().IsConnected {
		t.Fatal("two disjoint edges should be disconnected")
	}
}

func TestSortedEdgeIDsByDegree(t *testing.T) {
	var b Builder
	b.MustAddEdge("hub", "a", "b", "c")
	b.MustAddEdge("leaf1", "a", "x")
	b.MustAddEdge("leaf2", "b", "y")
	h := b.Build()
	ids := h.SortedEdgeIDsByDegree()
	if ids[0] != 0 {
		t.Fatalf("hub edge should come first, got order %v", ids)
	}
	if len(ids) != 3 {
		t.Fatalf("want all 3 edges, got %v", ids)
	}
}

func TestIsAcyclic(t *testing.T) {
	// A path is acyclic.
	var b Builder
	b.MustAddEdge("e1", "a", "b")
	b.MustAddEdge("e2", "b", "c")
	b.MustAddEdge("e3", "c", "d")
	if !b.Build().IsAcyclic() {
		t.Fatal("path should be acyclic")
	}
	// A single edge is acyclic.
	var b2 Builder
	b2.MustAddEdge("e", "a", "b", "c")
	if !b2.Build().IsAcyclic() {
		t.Fatal("single edge should be acyclic")
	}
	// Cycles of length >= 3 are cyclic.
	for _, n := range []int{3, 4, 10} {
		if cycle(n).IsAcyclic() {
			t.Fatalf("cycle(%d) should be cyclic", n)
		}
	}
	// A triangle covered by a big edge is acyclic.
	var b3 Builder
	b3.MustAddEdge("t1", "a", "b")
	b3.MustAddEdge("t2", "b", "c")
	b3.MustAddEdge("t3", "c", "a")
	b3.MustAddEdge("cover", "a", "b", "c")
	if !b3.Build().IsAcyclic() {
		t.Fatal("covered triangle should be acyclic")
	}
	// Star query (acyclic): center edge joined with satellites.
	var b4 Builder
	b4.MustAddEdge("center", "a", "b", "c", "d")
	b4.MustAddEdge("s1", "a", "x1")
	b4.MustAddEdge("s2", "b", "x2")
	b4.MustAddEdge("s3", "c", "x3")
	if !b4.Build().IsAcyclic() {
		t.Fatal("star should be acyclic")
	}
	// Two disjoint triangles: cyclic.
	var b5 Builder
	b5.MustAddEdge("p1", "a", "b")
	b5.MustAddEdge("p2", "b", "c")
	b5.MustAddEdge("p3", "c", "a")
	b5.MustAddEdge("q1", "u", "v")
	b5.MustAddEdge("q2", "v", "w")
	b5.MustAddEdge("q3", "w", "u")
	if b5.Build().IsAcyclic() {
		t.Fatal("disjoint triangles should be cyclic")
	}
	// Disjoint acyclic pieces: acyclic overall.
	var b6 Builder
	b6.MustAddEdge("p1", "a", "b")
	b6.MustAddEdge("q1", "u", "v")
	if !b6.Build().IsAcyclic() {
		t.Fatal("disjoint edges should be acyclic")
	}
}

// randomHypergraph builds a connected-ish random hypergraph for property
// tests. Exported via test helper pattern for reuse in other packages'
// tests through copy (internal packages cannot share test helpers without
// an extra package; duplication here is deliberate and tiny).
func randomHypergraph(r *rand.Rand, maxV, maxE int) *Hypergraph {
	nv := 2 + r.Intn(maxV-1)
	ne := 1 + r.Intn(maxE)
	var b Builder
	for e := 0; e < ne; e++ {
		maxArity := 3
		if maxArity > nv {
			maxArity = nv
		}
		arity := 1 + r.Intn(maxArity)
		seen := map[int]bool{}
		var names []string
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, "v"+itoa(v))
			}
		}
		b.MustAddEdge("", names...)
	}
	return b.Build()
}

func TestQuickSubsumptionPreservesVertexCover(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 10, 12)
		red, mapping := h.RemoveSubsumedEdges()
		// Every original edge must be a subset of some surviving edge.
		for i := 0; i < h.NumEdges(); i++ {
			covered := false
			for j := 0; j < red.NumEdges(); j++ {
				orig := h.Edge(mapping[j])
				if h.Edge(i).SubsetOf(orig) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 8, 8)
		h2, err := ParseString(h.String())
		if err != nil {
			return false
		}
		if h2.NumEdges() != h.NumEdges() {
			return false
		}
		for i := 0; i < h.NumEdges(); i++ {
			if h.Edge(i).Len() != h2.Edge(i).Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestContentHash(t *testing.T) {
	build := func(f func(*Builder)) *Hypergraph {
		var b Builder
		f(&b)
		return b.Build()
	}
	base := build(func(b *Builder) {
		b.MustAddEdge("r1", "x", "y")
		b.MustAddEdge("r2", "y", "z")
	})

	// Names are ignored: same structure under renaming hashes equally.
	renamed := build(func(b *Builder) {
		b.MustAddEdge("other1", "a", "b")
		b.MustAddEdge("other2", "b", "c")
	})
	if base.ContentHash() != renamed.ContentHash() {
		t.Error("renaming vertices/edges changed the content hash")
	}

	// Any structural change must change the hash.
	moreEdges := build(func(b *Builder) {
		b.MustAddEdge("r1", "x", "y")
		b.MustAddEdge("r2", "y", "z")
		b.MustAddEdge("r3", "z", "x")
	})
	moreVerts := build(func(b *Builder) {
		b.MustAddEdge("r1", "x", "y")
		b.MustAddEdge("r2", "y", "z", "w")
	})
	reordered := build(func(b *Builder) {
		b.MustAddEdge("r2", "y", "z")
		b.MustAddEdge("r1", "x", "y")
	})
	for name, h := range map[string]*Hypergraph{
		"extra edge": moreEdges, "extra vertex": moreVerts, "edge order": reordered,
	} {
		if h.ContentHash() == base.ContentHash() {
			t.Errorf("%s: content hash did not change", name)
		}
	}

	// Deterministic across calls.
	if base.ContentHash() != base.ContentHash() {
		t.Error("content hash not deterministic")
	}
}
