package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsePACE reads a hypergraph in the PACE 2019 "htd" format used by the
// parameterized-algorithms competition the paper cites [7]:
//
//	c a comment
//	p htd <num-vertices> <num-edges>
//	<edge-id> <vertex> <vertex> ...
//
// Vertices are 1-based integers; edge ids are 1..m in order. Vertex
// names become "v<i>" and edge names "e<id>".
func ParsePACE(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b Builder
	declaredVerts, declaredEdges := -1, -1
	edgeCount := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "htd" {
				return nil, fmt.Errorf("hypergraph: malformed PACE problem line %q", line)
			}
			var err1, err2 error
			declaredVerts, err1 = strconv.Atoi(fields[2])
			declaredEdges, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declaredVerts < 0 || declaredEdges < 0 {
				return nil, fmt.Errorf("hypergraph: bad counts in problem line %q", line)
			}
			continue
		}
		if declaredVerts < 0 {
			return nil, fmt.Errorf("hypergraph: edge line before problem line: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("hypergraph: edge line needs an id and at least one vertex: %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("hypergraph: bad edge id in %q", line)
		}
		verts := make([]string, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 || v > declaredVerts {
				return nil, fmt.Errorf("hypergraph: vertex %q out of range 1..%d", f, declaredVerts)
			}
			verts = append(verts, "v"+strconv.Itoa(v))
		}
		if err := b.AddEdge("e"+strconv.Itoa(id), verts...); err != nil {
			return nil, err
		}
		edgeCount++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hypergraph: read: %w", err)
	}
	if edgeCount == 0 {
		return nil, fmt.Errorf("hypergraph: no edges found")
	}
	if declaredEdges >= 0 && edgeCount != declaredEdges {
		return nil, fmt.Errorf("hypergraph: problem line declares %d edges, found %d", declaredEdges, edgeCount)
	}
	return b.Build(), nil
}

// WritePACE renders the hypergraph in the PACE 2019 htd format. Vertex
// numbering follows internal ids shifted to 1-based.
func (h *Hypergraph) WritePACE(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p htd %d %d\n", h.NumVertices(), h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d", e+1)
		for _, v := range h.EdgeVertices(e) {
			fmt.Fprintf(bw, " %d", v+1)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
