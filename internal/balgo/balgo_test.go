package balgo

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func TestCycleGHD(t *testing.T) {
	ctx := context.Background()
	h := cycle(8)
	if _, ok, err := New(h, Options{K: 1}).Decompose(ctx); err != nil || ok {
		t.Fatalf("cycle k=1: ok=%v err=%v, want rejection", ok, err)
	}
	d, ok, err := New(h, Options{K: 2}).Decompose(ctx)
	if err != nil || !ok {
		t.Fatalf("cycle k=2: ok=%v err=%v", ok, err)
	}
	if err := decomp.CheckGHD(d); err != nil {
		t.Fatalf("invalid GHD: %v\n%s", err, d)
	}
	if err := decomp.CheckWidth(d, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPoolContainsSubedges(t *testing.T) {
	// Two overlapping ternary edges produce a pairwise intersection.
	var b hypergraph.Builder
	b.MustAddEdge("e1", "a", "b", "c")
	b.MustAddEdge("e2", "b", "c", "d")
	h := b.Build()
	s := New(h, Options{K: 2})
	if s.Stats.PoolSize <= h.NumEdges() {
		t.Fatalf("pool size %d should exceed edge count %d", s.Stats.PoolSize, h.NumEdges())
	}
	sOff := New(h, Options{K: 2, SubedgeOrder: 1})
	if sOff.Stats.PoolSize != h.NumEdges() {
		t.Fatalf("order-1 pool size %d should equal edge count %d", sOff.Stats.PoolSize, h.NumEdges())
	}
}

// TestGHDAtMostHD: since ghw ≤ hw and the balgo pool subsumes the HD
// search, balgo must succeed whenever det-k-decomp does.
func TestGHDAtMostHD(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 25; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		var b hypergraph.Builder
		nv := 3 + r.Intn(6)
		ne := 2 + r.Intn(7)
		for e := 0; e < ne; e++ {
			arity := 1 + r.Intn(min(3, nv))
			seen := map[int]bool{}
			var names []string
			for len(names) < arity {
				v := r.Intn(nv)
				if !seen[v] {
					seen[v] = true
					names = append(names, "v"+strconv.Itoa(v))
				}
			}
			b.MustAddEdge("", names...)
		}
		h := b.Build()
		for k := 1; k <= 3; k++ {
			_, hdOK, err := detk.New(h, k).Decompose(ctx)
			if err != nil {
				t.Fatal(err)
			}
			dG, ghdOK, err := New(h, Options{K: k}).Decompose(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if hdOK && !ghdOK {
				t.Fatalf("seed %d k=%d: HD exists but GHD search failed\n%s", seed, k, h)
			}
			if ghdOK {
				if err := decomp.CheckGHD(dG); err != nil {
					t.Fatalf("seed %d k=%d: invalid GHD: %v", seed, k, err)
				}
				if err := decomp.CheckWidth(dG, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := New(cycle(24), Options{K: 2}).Decompose(ctx); err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
