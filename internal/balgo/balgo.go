// Package balgo computes generalized hypertree decompositions (GHDs) in
// the style of BalancedGo [21], the parallel GHD system the paper builds
// on and compares against in §5.2.
//
// GHDs drop the special condition, so a bag χ(u) may be a proper subset
// of ∪λ(u). Practical GHD algorithms handle this by augmenting the edge
// pool with subedges — intersections of edges — and searching over the
// augmented pool; the pool blow-up is the "additional exponential
// factor" of GHD computation the paper's introduction discusses (the
// decision problem is NP-hard already for width 2 [15, 20]).
//
// This implementation augments the pool with intersections of up to
// SubedgeOrder original edges (default 2) and runs a top-down search
// over the augmented pool. It is sound — every output validates as a
// GHD — and complete relative to the pool closure: whenever a GHD of
// width ≤ k exists whose bags are expressible over the augmented pool,
// it is found. In particular it succeeds whenever det-k-decomp does,
// since the pool contains all original edges and the special condition
// is not enforced. Exact GHD width is NP-hard at k = 2, so every
// practical system makes this trade; with SubedgeOrder = |E| the search
// is exact and fully exponential.
package balgo

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/decomp"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// Options configures the GHD solver.
type Options struct {
	// K is the width bound (required, ≥ 1).
	K int
	// SubedgeOrder bounds how many original edges may be intersected to
	// form a subedge in the λ pool. 1 disables augmentation; 2 (default
	// when 0) adds pairwise intersections.
	SubedgeOrder int
}

// poolEntry is an element of the augmented λ pool: a vertex set together
// with the original edge it is charged to in the final λ-label.
type poolEntry struct {
	verts  *bitset.Set
	parent int // original edge id
}

// Solver computes GHDs of one hypergraph for one width bound. Not safe
// for concurrent use.
type Solver struct {
	H    *hypergraph.Hypergraph
	Opts Options

	pool     []poolEntry
	split    *ext.Splitter
	negCache map[string]struct{}

	// Stats counts search effort.
	Stats struct {
		PoolSize   int
		Candidates int64
	}

	ctx   context.Context
	steps int
}

// New returns a GHD solver for h.
func New(h *hypergraph.Hypergraph, opts Options) *Solver {
	if opts.K < 1 {
		panic("balgo: width bound K must be >= 1")
	}
	if opts.SubedgeOrder < 1 {
		opts.SubedgeOrder = 2
	}
	s := &Solver{H: h, Opts: opts, split: ext.NewSplitter(h), negCache: map[string]struct{}{}}
	s.buildPool()
	return s
}

// buildPool assembles original edges plus subedges up to SubedgeOrder.
func (s *Solver) buildPool() {
	seen := map[string]bool{}
	add := func(v *bitset.Set, parent int) {
		if v.IsEmpty() {
			return
		}
		key := string(v.AppendKey(nil))
		if seen[key] {
			return
		}
		seen[key] = true
		s.pool = append(s.pool, poolEntry{verts: v, parent: parent})
	}
	m := s.H.NumEdges()
	for e := 0; e < m; e++ {
		add(s.H.Edge(e).Clone(), e)
	}
	// Intersections of growing order. Order o entries are intersections
	// of an original edge with o-1 others.
	frontier := make([]poolEntry, len(s.pool))
	copy(frontier, s.pool)
	for order := 2; order <= s.Opts.SubedgeOrder; order++ {
		var next []poolEntry
		for _, pe := range frontier {
			for e := 0; e < m; e++ {
				if e == pe.parent {
					continue
				}
				iv := pe.verts.Intersect(s.H.Edge(e))
				if iv.IsEmpty() || iv.Equal(pe.verts) {
					continue
				}
				key := string(iv.AppendKey(nil))
				if !seen[key] {
					seen[key] = true
					entry := poolEntry{verts: iv, parent: pe.parent}
					s.pool = append(s.pool, entry)
					next = append(next, entry)
				}
			}
		}
		frontier = next
	}
	// Deterministic order: decreasing size, then content.
	sort.SliceStable(s.pool, func(a, b int) bool {
		la, lb := s.pool[a].verts.Len(), s.pool[b].verts.Len()
		if la != lb {
			return la > lb
		}
		return s.pool[a].parent < s.pool[b].parent
	})
	s.Stats.PoolSize = len(s.pool)
}

// Decompose checks whether the augmented-pool search finds a GHD of
// width ≤ K and returns it. The returned decomposition's λ-labels refer
// to original edges (subedges are replaced by their parent edges), so it
// validates under decomp.CheckGHD.
func (s *Solver) Decompose(ctx context.Context) (*decomp.Decomp, bool, error) {
	s.ctx = ctx
	g := ext.Root(s.H)
	node, ok, err := s.rec(g, s.H.NewVertexSet())
	if err != nil || !ok {
		return nil, false, err
	}
	return &decomp.Decomp{H: s.H, Root: node}, true, nil
}

func (s *Solver) tick() error {
	s.steps++
	if s.steps&0xFF == 0 {
		return s.ctx.Err()
	}
	return nil
}

func (s *Solver) rec(g *ext.Graph, conn *bitset.Set) (*decomp.Node, bool, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, false, err
	}
	if len(g.Edges) == 0 && len(g.Specials) == 1 {
		sp := g.Specials[0]
		return decomp.NewSpecialLeaf(sp.ID, sp.Vertices), true, nil
	}
	if len(g.Edges) == 0 && len(g.Specials) > 1 {
		return nil, false, nil
	}

	key := string(g.KeyStrict(conn, nil))
	if _, bad := s.negCache[key]; bad {
		return nil, false, nil
	}

	// Candidate pool restricted to entries intersecting the subproblem.
	scope := g.Vertices().Union(conn)
	var cands []int
	for i := range s.pool {
		if s.pool[i].verts.Intersects(scope) {
			cands = append(cands, i)
		}
	}

	lambda := make([]int, 0, s.Opts.K) // pool indices
	cover := s.H.NewVertexSet()

	var try func(start int) (*decomp.Node, bool, error)
	try = func(start int) (*decomp.Node, bool, error) {
		if len(lambda) > 0 {
			s.Stats.Candidates++
			if err := s.tick(); err != nil {
				return nil, false, err
			}
			if node, ok, err := s.tryLambda(g, conn, cover, lambda); err != nil || ok {
				return node, ok, err
			}
		}
		if len(lambda) == s.Opts.K {
			return nil, false, nil
		}
		for i := start; i < len(cands); i++ {
			pi := cands[i]
			lambda = append(lambda, pi)
			saved := cover.Clone()
			cover.InPlaceUnion(s.pool[pi].verts)
			node, ok, err := try(i + 1)
			lambda = lambda[:len(lambda)-1]
			cover.CopyFrom(saved)
			if err != nil || ok {
				return node, ok, err
			}
		}
		return nil, false, nil
	}
	node, ok, err := try(0)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		s.negCache[key] = struct{}{}
	}
	return node, ok, nil
}

func (s *Solver) tryLambda(g *ext.Graph, conn *bitset.Set, cover *bitset.Set, lambda []int) (*decomp.Node, bool, error) {
	if !conn.SubsetOf(cover) {
		return nil, false, nil
	}
	// Progress: some edge of the subproblem fully covered by the bag.
	chi := cover.Intersect(g.Vertices().Union(conn))
	progress := false
	for _, e := range g.Edges {
		if s.H.Edge(e).SubsetOf(chi) {
			progress = true
			break
		}
	}
	if !progress {
		return nil, false, nil
	}
	comps := s.split.Components(g, chi)
	children := make([]*decomp.Node, 0, len(comps))
	for _, c := range comps {
		childConn := c.Vertices().Intersect(chi)
		child, ok, err := s.rec(c, childConn)
		if err != nil || !ok {
			return nil, ok, err
		}
		children = append(children, child)
	}
	for _, sp := range g.SpecialsCoveredBy(chi) {
		children = append(children, decomp.NewSpecialLeaf(sp.ID, sp.Vertices))
	}
	// λ-label in terms of original edges (a subedge is charged to its
	// parent edge); duplicates collapse, which can only shrink the width.
	lamEdges := make([]int, 0, len(lambda))
	seen := map[int]bool{}
	for _, pi := range lambda {
		p := s.pool[pi].parent
		if !seen[p] {
			seen[p] = true
			lamEdges = append(lamEdges, p)
		}
	}
	node := decomp.NewNode(lamEdges, chi)
	node.Children = children
	return node, true, nil
}
