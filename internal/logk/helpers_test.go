package logk

import (
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// extRootFor wraps ext.Root for tests (kept separate so test files read
// naturally).
func extRootFor(h *hypergraph.Hypergraph) *ext.Graph { return ext.Root(h) }
