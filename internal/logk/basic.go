package logk

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/comb"
	"repro/internal/decomp"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// BasicSolver is a faithful, sequential transliteration of the basic
// Algorithm 1 from Section 4 of the paper: the main program guesses the
// root λ-label (RootLoop), and the recursive Decomp guesses parent
// labels before child labels, with none of the Appendix C optimisations.
// It exists as a correctness oracle for the optimised solver and as the
// "no optimisations" arm of the ablation benchmarks; it is far too slow
// for anything but small instances.
type BasicSolver struct {
	H *hypergraph.Hypergraph
	K int

	// MaxDepth records the deepest recursion observed (for the
	// Theorem 4.1 log-depth property test).
	MaxDepth int

	split     *ext.Splitter
	specialID int
	ctx       context.Context
	steps     int
}

// NewBasic returns a BasicSolver for h and width bound k.
func NewBasic(h *hypergraph.Hypergraph, k int) *BasicSolver {
	if k < 1 {
		panic("logk: width bound K must be >= 1")
	}
	return &BasicSolver{H: h, K: k, split: ext.NewSplitter(h)}
}

// Decompose checks hw(H) ≤ k per Algorithm 1 and materialises the HD.
func (b *BasicSolver) Decompose(ctx context.Context) (*decomp.Decomp, bool, error) {
	b.ctx = ctx
	m := b.H.NumEdges()
	space := comb.Space{M: m, K: b.K}
	it := comb.NewIter(space, 0, space.Total())
	hComp := ext.Root(b.H)

	lambdaR := make([]int, 0, b.K)
	unionR := b.H.NewVertexSet()

RootLoop:
	for idxs := it.Next(); idxs != nil; idxs = it.Next() {
		if err := b.tick(); err != nil {
			return nil, false, err
		}
		lambdaR = lambdaR[:0]
		unionR.Reset()
		for _, i := range idxs {
			lambdaR = append(lambdaR, i)
			unionR.InPlaceUnion(b.H.Edge(i))
		}
		// χ(r) = ∪λ(r) by the special condition; [λr]-components coincide
		// with [χr]-components (lines 3-4).
		compsR := b.split.Components(hComp, unionR)
		children := make([]*decomp.Node, 0, len(compsR))
		for _, y := range compsR {
			connY := y.Vertices().Intersect(unionR)
			node, ok, err := b.decomp(y, connY, 1)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue RootLoop // reject this root (line 8)
			}
			children = append(children, node)
		}
		root := decomp.NewNode(lambdaR, unionR.Clone())
		root.Children = children
		return &decomp.Decomp{H: b.H, Root: root}, true, nil
	}
	return nil, false, nil // exhausted search space (line 10)
}

// Decide runs Decompose and discards the decomposition.
func (b *BasicSolver) Decide(ctx context.Context) (bool, error) {
	_, ok, err := b.Decompose(ctx)
	return ok, err
}

func (b *BasicSolver) tick() error {
	b.steps++
	if b.steps&0xFF == 0 {
		return b.ctx.Err()
	}
	return nil
}

// decomp is function Decomp of Algorithm 1 (lines 11-40), extended to
// materialise the HD-fragment.
func (b *BasicSolver) decomp(g *ext.Graph, conn *bitset.Set, depth int) (*decomp.Node, bool, error) {
	if err := b.ctx.Err(); err != nil {
		return nil, false, err
	}
	if depth > b.MaxDepth {
		b.MaxDepth = depth
	}
	// Base cases (lines 12-15).
	if len(g.Edges) <= b.K && len(g.Specials) == 0 {
		return decomp.NewNode(g.Edges, b.H.Union(g.Edges)), true, nil
	}
	if len(g.Edges) == 0 && len(g.Specials) == 1 {
		sp := g.Specials[0]
		return decomp.NewSpecialLeaf(sp.ID, sp.Vertices), true, nil
	}

	m := b.H.NumEdges()
	total := g.Size()
	pSpace := comb.Space{M: m, K: b.K}
	pIt := comb.NewIter(pSpace, 0, pSpace.Total())
	lambdaP := make([]int, 0, b.K)
	unionP := b.H.NewVertexSet()

ParentLoop:
	for pIdxs := pIt.Next(); pIdxs != nil; pIdxs = pIt.Next() {
		if err := b.tick(); err != nil {
			return nil, false, err
		}
		lambdaP = lambdaP[:0]
		unionP.Reset()
		for _, i := range pIdxs {
			lambdaP = append(lambdaP, i)
			unionP.InPlaceUnion(b.H.Edge(i))
		}
		compsP := b.split.Components(g, unionP) // line 17
		di := ext.LargestComponent(compsP, total)
		if di < 0 {
			continue ParentLoop // line 21
		}
		compDown := compsP[di] // line 19
		vDown := compDown.Vertices()
		if !vDown.Intersect(conn).SubsetOf(unionP) {
			continue ParentLoop // connectedness check, line 22-23
		}

		cSpace := comb.Space{M: m, K: b.K}
		cIt := comb.NewIter(cSpace, 0, cSpace.Total())
		lambdaC := make([]int, 0, b.K)
		unionC := b.H.NewVertexSet()

	ChildLoop:
		for cIdxs := cIt.Next(); cIdxs != nil; cIdxs = cIt.Next() {
			if err := b.tick(); err != nil {
				return nil, false, err
			}
			lambdaC = lambdaC[:0]
			unionC.Reset()
			for _, i := range cIdxs {
				lambdaC = append(lambdaC, i)
				unionC.InPlaceUnion(b.H.Edge(i))
			}
			// Soundness of stitching: c sits above the leaf of every
			// special in compDown, so λc must avoid their forbidden
			// vertices (see ext.Special.Forbidden). Algorithm 1's
			// pseudo-code leaves this implicit; without it the special
			// condition can break across fragment boundaries.
			if fb := compDown.ForbiddenUnion(); fb != nil && unionC.Intersects(fb) {
				continue ChildLoop
			}
			chiC := unionC.Intersect(vDown) // line 25
			if !vDown.Intersect(unionP).SubsetOf(chiC) {
				continue ChildLoop // connectedness check, lines 26-27
			}
			compsC := b.split.Components(compDown, chiC) // line 28
			if ext.LargestComponent(compsC, total) >= 0 {
				continue ChildLoop // lines 29-30
			}
			children := make([]*decomp.Node, 0, len(compsC))
			for _, x := range compsC { // lines 31-34
				connX := x.Vertices().Intersect(chiC)
				child, ok, err := b.decomp(x, connX, depth+1)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue ChildLoop // reject child
				}
				children = append(children, child)
			}
			// compUp := H' \ compDown plus χc as a special (lines 35-36).
			// The new special's Forbidden set records what will later be
			// spliced below its leaf (everything compDown covers).
			b.specialID++
			sid := b.specialID
			forbidden := vDown.Clone()
			for _, sp := range compDown.Specials {
				if sp.Forbidden != nil {
					forbidden.InPlaceUnion(sp.Forbidden)
				}
			}
			forbidden.InPlaceDiff(chiC)
			compUp := g.Subtract(compDown).WithSpecial(ext.Special{ID: sid, Vertices: chiC, Forbidden: forbidden})
			up, ok, err := b.decomp(compUp, conn, depth+1) // line 37
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue ChildLoop // reject child (line 38)
			}
			// Stitch the fragments (soundness construction, Appendix A).
			leaf := up.FindSpecialLeaf(sid)
			if leaf == nil {
				return nil, false, fmt.Errorf("logk: internal error: special leaf %d missing", sid)
			}
			leaf.SpecialID = decomp.NoSpecial
			leaf.Lambda = append([]int(nil), lambdaC...)
			sortInts(leaf.Lambda)
			leaf.Bag = chiC
			leaf.Children = children
			for _, sp := range compDown.SpecialsCoveredBy(chiC) {
				leaf.Children = append(leaf.Children, decomp.NewSpecialLeaf(sp.ID, sp.Vertices))
			}
			return up, true, nil // line 39
		}
	}
	return nil, false, nil // exhausted search space (line 40)
}
