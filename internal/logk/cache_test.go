package logk

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/decomp"
)

// TestNoCacheEquivalence: the negative memo and parent-candidate cache
// are pure accelerations — decisions must be identical with and without
// them, and both variants must produce valid HDs.
func TestNoCacheEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 40; seed++ {
		r := rand.New(rand.NewSource(int64(5000 + seed)))
		h := randomHypergraph(r, 9, 9)
		for k := 1; k <= 3; k++ {
			cached := New(h, Options{K: k})
			plain := New(h, Options{K: k, NoCache: true})
			dC, okC, errC := cached.Decompose(ctx)
			dP, okP, errP := plain.Decompose(ctx)
			if errC != nil || errP != nil {
				t.Fatalf("seed %d k=%d: errs %v %v", seed, k, errC, errP)
			}
			if okC != okP {
				t.Fatalf("seed %d k=%d: cached=%v nocache=%v\n%s", seed, k, okC, okP, h)
			}
			for name, d := range map[string]*decomp.Decomp{"cached": dC, "nocache": dP} {
				if d == nil {
					continue
				}
				if err := decomp.CheckHD(d); err != nil {
					t.Fatalf("seed %d k=%d %s: %v", seed, k, name, err)
				}
			}
		}
	}
}

// TestMemoHitsAccumulate: on a structured instance the memo must
// actually fire (guards against key drift silently disabling it).
func TestMemoHitsAccumulate(t *testing.T) {
	h := grid(3)
	s := New(h, Options{K: 2})
	if _, ok, err := s.Decompose(context.Background()); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if s.Stats().MemoHits == 0 {
		t.Skip("no memo hits on this instance; acceptable but unusual")
	}
}

// TestParallelStressSuite: decompositions from highly parallel runs over
// a batch of structured instances are all valid (exercises cancellation,
// token pool, shared caches under contention).
func TestParallelStressSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ctx := context.Background()
	for _, n := range []int{10, 20, 30} {
		h := cycle(n)
		for rep := 0; rep < 3; rep++ {
			s := New(h, Options{K: 2, Workers: 16})
			d, ok, err := s.Decompose(ctx)
			if err != nil || !ok {
				t.Fatalf("cycle(%d) rep %d: ok=%v err=%v", n, rep, ok, err)
			}
			if err := decomp.CheckHD(d); err != nil {
				t.Fatalf("cycle(%d) rep %d: %v", n, rep, err)
			}
		}
	}
	for _, m := range []int{3, 4} {
		h := grid(m)
		s := New(h, Options{K: m, Workers: 16, Hybrid: HybridEdgeCount, HybridThreshold: 12})
		d, ok, err := s.Decompose(ctx)
		if err != nil || !ok {
			t.Fatalf("grid(%d): ok=%v err=%v", m, ok, err)
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("grid(%d): %v", m, err)
		}
	}
}
