package logk

import (
	"sync"
	"sync/atomic"
)

// TokenSource supplies the extra-worker tokens that parallel search
// splits draw from (Appendix D.1). A Solver created without one gets a
// private source sized to Options.Workers-1; a serving layer can instead
// inject a budget shared across many concurrent Solvers so the process
// never oversubscribes its cores. Implementations must be safe for
// concurrent use.
type TokenSource interface {
	// TryAcquire takes up to max tokens without blocking and returns how
	// many it got (0..max).
	TryAcquire(max int) int
	// Release returns n previously acquired tokens.
	Release(n int)
}

// MemoBackend stores the negative memo: content keys of states whose
// search space was exhausted without success (see ext.Graph.MemoKey).
// Keys are pure content — safe to share across Solvers of the same
// hypergraph and width bound, which is how a serving layer turns the
// memo into a cross-request cache. Implementations must be safe for
// concurrent use.
type MemoBackend interface {
	// Lookup reports whether key is a known-dead state. The slice is
	// only valid for the duration of the call.
	Lookup(key []byte) bool
	// Insert records key as dead. Implementations may drop inserts
	// (e.g. when full): the memo is a pure acceleration.
	Insert(key string)
}

// NewTokenPool returns a standalone TokenSource holding n tokens. It is
// the same pool a Solver creates privately; exporting a constructor lets
// callers that run several Solvers side by side (width-probe racing, ad
// hoc batch drivers) share one pool without depending on the service
// layer's budget type.
func NewTokenPool(n int) TokenSource {
	if n < 0 {
		n = 0
	}
	return newChanTokens(n)
}

// GatedTokens wraps a TokenSource with a shut-off gate, the probe
// cancellation hook used by width-bound racing: when a sibling probe's
// result makes this probe moot, closing the gate makes the probe stop
// acquiring new search workers immediately — before its context
// cancellation has propagated into the inner search loops — so the freed
// parallelism flows to the surviving probes instead of a walking-dead
// search. Releases always pass through, so no token is ever stranded.
type GatedTokens struct {
	src    TokenSource
	closed atomic.Bool
}

// NewGatedTokens wraps src; a nil src yields an always-empty source.
func NewGatedTokens(src TokenSource) *GatedTokens {
	return &GatedTokens{src: src}
}

// TryAcquire implements TokenSource; it grants nothing once closed.
func (g *GatedTokens) TryAcquire(max int) int {
	if g.src == nil || g.closed.Load() {
		return 0
	}
	return g.src.TryAcquire(max)
}

// Release implements TokenSource.
func (g *GatedTokens) Release(n int) {
	if g.src != nil {
		g.src.Release(n)
	}
}

// Close shuts the gate. It is safe to call concurrently with acquires
// and more than once.
func (g *GatedTokens) Close() { g.closed.Store(true) }

// Closed reports whether the gate has been shut.
func (g *GatedTokens) Closed() bool { return g.closed.Load() }

// chanTokens is the default TokenSource: a private channel-based pool,
// matching the pre-injection Solver behaviour.
type chanTokens struct {
	ch chan struct{}
}

func newChanTokens(n int) *chanTokens {
	t := &chanTokens{ch: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		t.ch <- struct{}{}
	}
	return t
}

func (t *chanTokens) TryAcquire(max int) int {
	got := 0
	for got < max {
		select {
		case <-t.ch:
			got++
		default:
			return got
		}
	}
	return got
}

func (t *chanTokens) Release(n int) {
	for i := 0; i < n; i++ {
		t.ch <- struct{}{}
	}
}

// ShardedMemo is the default MemoBackend: 64 RWMutex-guarded map shards
// selected by an FNV hash of the key, with the no-allocation string(buf)
// lookup form on the read path. The zero value is ready to use. It is
// exported so serving layers can reuse the same structure per cached
// hypergraph.
type ShardedMemo struct {
	shards [64]memoShard
}

// memoShard is one shard of the negative memo.
type memoShard struct {
	mu sync.RWMutex
	m  map[string]struct{}
}

// Lookup implements MemoBackend.
func (s *ShardedMemo) Lookup(key []byte) bool {
	sh := &s.shards[fnvShard(key)]
	sh.mu.RLock()
	_, dead := sh.m[string(key)] // no-alloc lookup form
	sh.mu.RUnlock()
	return dead
}

// Insert implements MemoBackend.
func (s *ShardedMemo) Insert(key string) { s.Add(key) }

// Add is Insert reporting whether the key was new, for backends that
// keep a size estimate on top of the sharded maps.
func (s *ShardedMemo) Add(key string) bool {
	sh := &s.shards[fnvShardString(key)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]struct{})
	}
	_, exists := sh.m[key]
	if !exists {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	return !exists
}

// Len returns the number of memoised states.
func (s *ShardedMemo) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// fnvShard hashes a key buffer to a shard index.
func fnvShard(b []byte) int {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return int(h & 63)
}

// fnvShardString is fnvShard over a string key (same hash, no copy).
func fnvShardString(s string) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h & 63)
}
