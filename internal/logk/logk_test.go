package logk

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func path(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("P"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa(i+1))
	}
	return b.Build()
}

// clique returns K_n as a hypergraph (all 2-element edges). Known:
// hw(K_n) = ⌈n/2⌉ for n ≥ 3.
func clique(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge("e"+strconv.Itoa(i)+"_"+strconv.Itoa(j),
				"v"+strconv.Itoa(i), "v"+strconv.Itoa(j))
		}
	}
	return b.Build()
}

// grid returns the m×m grid graph as a hypergraph of binary edges.
func grid(m int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	name := func(i, j int) string { return "g" + strconv.Itoa(i) + "_" + strconv.Itoa(j) }
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j+1 < m {
				b.MustAddEdge("", name(i, j), name(i, j+1))
			}
			if i+1 < m {
				b.MustAddEdge("", name(i, j), name(i+1, j))
			}
		}
	}
	return b.Build()
}

func mustDecompose(t *testing.T, h *hypergraph.Hypergraph, k int, opts ...func(*Options)) *decomp.Decomp {
	t.Helper()
	o := Options{K: k}
	for _, f := range opts {
		f(&o)
	}
	s := New(h, o)
	d, ok, err := s.Decompose(context.Background())
	if err != nil {
		t.Fatalf("Decompose error: %v", err)
	}
	if !ok {
		t.Fatalf("Decompose: no HD of width ≤ %d found", k)
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatalf("invalid HD: %v\n%s", err, d)
	}
	if err := decomp.CheckWidth(d, k); err != nil {
		t.Fatal(err)
	}
	return d
}

func mustReject(t *testing.T, h *hypergraph.Hypergraph, k int) {
	t.Helper()
	s := New(h, Options{K: k})
	_, ok, err := s.Decompose(context.Background())
	if err != nil {
		t.Fatalf("Decompose error: %v", err)
	}
	if ok {
		t.Fatalf("Decompose claimed hw ≤ %d, expected rejection", k)
	}
}

func TestPathWidthOne(t *testing.T) {
	mustDecompose(t, path(6), 1)
}

func TestSingleEdge(t *testing.T) {
	var b hypergraph.Builder
	b.MustAddEdge("e", "a", "b", "c")
	mustDecompose(t, b.Build(), 1)
}

func TestCycleWidthTwo(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10} {
		h := cycle(n)
		mustReject(t, h, 1)
		d := mustDecompose(t, h, 2)
		if d.Width() != 2 {
			t.Fatalf("cycle(%d): width %d, want 2", n, d.Width())
		}
	}
}

func TestPaperExampleCycle10(t *testing.T) {
	// Appendix B works through cycle(10) with k = 2.
	d := mustDecompose(t, cycle(10), 2)
	if d.Width() != 2 {
		t.Fatalf("width = %d, want 2", d.Width())
	}
}

func TestCliqueWidths(t *testing.T) {
	// hw(K_n) = ⌈n/2⌉.
	cases := []struct{ n, hw int }{{3, 2}, {4, 2}, {5, 3}}
	for _, c := range cases {
		h := clique(c.n)
		mustReject(t, h, c.hw-1)
		mustDecompose(t, h, c.hw)
	}
}

func TestStarWidthOne(t *testing.T) {
	var b hypergraph.Builder
	b.MustAddEdge("center", "a", "b", "c", "d")
	b.MustAddEdge("s1", "a", "x")
	b.MustAddEdge("s2", "b", "y")
	b.MustAddEdge("s3", "c", "z")
	mustDecompose(t, b.Build(), 1)
}

func TestDisconnectedHypergraph(t *testing.T) {
	var b hypergraph.Builder
	b.MustAddEdge("p1", "a", "b")
	b.MustAddEdge("p2", "b", "c")
	b.MustAddEdge("q1", "u", "v")
	b.MustAddEdge("q2", "v", "w")
	mustDecompose(t, b.Build(), 1)
}

func TestGrid3WidthTwo(t *testing.T) {
	h := grid(3)
	mustReject(t, h, 1)
	mustDecompose(t, h, 2)
}

func TestRecursionDepthLogarithmic(t *testing.T) {
	// Theorem 4.1: recursion depth is O(log |E|). The size recurrence is
	// s → ⌈s/2⌉ with one extra level for the initial call, so
	// depth ≤ ⌈log2 m⌉ + 2 holds comfortably.
	for _, n := range []int{16, 32, 64} {
		h := cycle(n)
		s := New(h, Options{K: 2})
		_, ok, err := s.Decompose(context.Background())
		if err != nil || !ok {
			t.Fatalf("cycle(%d): ok=%v err=%v", n, ok, err)
		}
		bound := int64(math.Ceil(math.Log2(float64(n)))) + 2
		if got := s.Stats().MaxDepth; got > bound {
			t.Fatalf("cycle(%d): recursion depth %d exceeds log bound %d", n, got, bound)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	graphs := []*hypergraph.Hypergraph{cycle(12), grid(3), clique(5)}
	for gi, h := range graphs {
		for k := 1; k <= 3; k++ {
			seq := New(h, Options{K: k})
			par := New(h, Options{K: k, Workers: 8})
			_, okS, errS := seq.Decompose(context.Background())
			dP, okP, errP := par.Decompose(context.Background())
			if errS != nil || errP != nil {
				t.Fatalf("graph %d k=%d: errs %v %v", gi, k, errS, errP)
			}
			if okS != okP {
				t.Fatalf("graph %d k=%d: sequential=%v parallel=%v", gi, k, okS, okP)
			}
			if okP {
				if err := decomp.CheckHD(dP); err != nil {
					t.Fatalf("graph %d k=%d: parallel HD invalid: %v", gi, k, err)
				}
				if err := decomp.CheckWidth(dP, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestHybridMatchesPlain(t *testing.T) {
	graphs := []*hypergraph.Hypergraph{cycle(12), grid(3), clique(4)}
	for gi, h := range graphs {
		for k := 1; k <= 3; k++ {
			plain := New(h, Options{K: k})
			hyb := New(h, Options{K: k, Hybrid: HybridWeightedCount, HybridThreshold: 20})
			_, okP, errP := plain.Decompose(context.Background())
			dH, okH, errH := hyb.Decompose(context.Background())
			if errP != nil || errH != nil {
				t.Fatalf("graph %d k=%d: errs %v %v", gi, k, errP, errH)
			}
			if okP != okH {
				t.Fatalf("graph %d k=%d: plain=%v hybrid=%v", gi, k, okP, okH)
			}
			if okH {
				if err := decomp.CheckHD(dH); err != nil {
					t.Fatalf("graph %d k=%d: hybrid HD invalid: %v", gi, k, err)
				}
				if err := decomp.CheckWidth(dH, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestHybridUsesDetK(t *testing.T) {
	h := cycle(16)
	s := New(h, Options{K: 2, Hybrid: HybridEdgeCount, HybridThreshold: 8})
	_, ok, err := s.Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if s.Stats().HybridCalls == 0 {
		t.Fatal("hybrid mode never delegated to det-k-decomp")
	}
}

func TestAblationTogglesStillCorrect(t *testing.T) {
	h := cycle(10)
	variants := []Options{
		{K: 2, NoAllowedRestriction: true},
		{K: 2, NoParentPoolRestriction: true},
		{K: 2, NoNegativeBaseCase: true},
		{K: 2, NoAllowedRestriction: true, NoParentPoolRestriction: true, NoNegativeBaseCase: true},
	}
	for i, o := range variants {
		s := New(h, o)
		d, ok, err := s.Decompose(context.Background())
		if err != nil || !ok {
			t.Fatalf("variant %d: ok=%v err=%v", i, ok, err)
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("variant %d: invalid HD: %v", i, err)
		}
		sNeg := New(cycle(5), Options{K: o.K, NoAllowedRestriction: o.NoAllowedRestriction,
			NoParentPoolRestriction: o.NoParentPoolRestriction, NoNegativeBaseCase: o.NoNegativeBaseCase})
		sNeg.Opts.K = 1
		if ok, err := sNeg.Decide(context.Background()); err != nil || ok {
			t.Fatalf("variant %d: k=1 on cycle should reject (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(cycle(20), Options{K: 2})
	_, _, err := s.Decompose(ctx)
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}

func TestBasicSolverOnPaperExample(t *testing.T) {
	h := cycle(6)
	b := NewBasic(h, 2)
	d, ok, err := b.Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("basic solver failed: ok=%v err=%v", ok, err)
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatalf("basic solver produced invalid HD: %v\n%s", err, d)
	}
	if err := decomp.CheckWidth(d, 2); err != nil {
		t.Fatal(err)
	}
	if ok, err := NewBasic(h, 1).Decide(context.Background()); err != nil || ok {
		t.Fatalf("basic solver should reject k=1 on a cycle (ok=%v err=%v)", ok, err)
	}
}

// randomHypergraph builds a small random hypergraph for cross-validation.
func randomHypergraph(r *rand.Rand, maxV, maxE int) *hypergraph.Hypergraph {
	nv := 2 + r.Intn(maxV-1)
	ne := 1 + r.Intn(maxE)
	var b hypergraph.Builder
	for e := 0; e < ne; e++ {
		maxArity := 3
		if maxArity > nv {
			maxArity = nv
		}
		arity := 1 + r.Intn(maxArity)
		seen := map[int]bool{}
		var names []string
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, "v"+strconv.Itoa(v))
			}
		}
		b.MustAddEdge("", names...)
	}
	return b.Build()
}

// TestCrossValidationSolvers is the central correctness test: on random
// small hypergraphs, the optimised log-k-decomp, the basic Algorithm 1,
// and det-k-decomp must agree on the decision hw(H) ≤ k for all k, every
// produced HD must validate, and hw(H) = 1 must coincide with GYO
// α-acyclicity.
func TestCrossValidationSolvers(t *testing.T) {
	ctx := context.Background()
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for seed := 0; seed < rounds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		h := randomHypergraph(r, 8, 7)
		for k := 1; k <= 3; k++ {
			opt := New(h, Options{K: k})
			dOpt, okOpt, err := opt.Decompose(ctx)
			if err != nil {
				t.Fatalf("seed %d k=%d: logk err: %v", seed, k, err)
			}
			bas := NewBasic(h, k)
			dBas, okBas, err := bas.Decompose(ctx)
			if err != nil {
				t.Fatalf("seed %d k=%d: basic err: %v", seed, k, err)
			}
			dk := detk.New(h, k)
			dDet, okDet, err := dk.Decompose(ctx)
			if err != nil {
				t.Fatalf("seed %d k=%d: detk err: %v", seed, k, err)
			}
			if okOpt != okBas || okOpt != okDet {
				t.Fatalf("seed %d k=%d: decisions disagree: logk=%v basic=%v detk=%v\n%s",
					seed, k, okOpt, okBas, okDet, h)
			}
			for name, d := range map[string]*decomp.Decomp{"logk": dOpt, "basic": dBas, "detk": dDet} {
				if d == nil {
					continue
				}
				if err := decomp.CheckHD(d); err != nil {
					t.Fatalf("seed %d k=%d: %s invalid HD: %v\n%s\n%s", seed, k, name, err, h, d)
				}
				if err := decomp.CheckWidth(d, k); err != nil {
					t.Fatalf("seed %d k=%d: %s: %v", seed, k, name, err)
				}
			}
			if k == 1 && okOpt != h.IsAcyclic() {
				t.Fatalf("seed %d: hw≤1 is %v but IsAcyclic is %v\n%s",
					seed, okOpt, h.IsAcyclic(), h)
			}
		}
	}
}

// TestBalancedSeparatorProperty: any HD produced by the solver must
// contain a balanced separator (Lemma 3.10) findable by the constructive
// walk.
func TestBalancedSeparatorProperty(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 25; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		h := randomHypergraph(r, 10, 9)
		for k := 1; k <= 3; k++ {
			s := New(h, Options{K: k})
			d, ok, err := s.Decompose(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			g := extRootFor(h)
			sep := decomp.FindBalancedSeparator(d, g)
			if sep == nil || !decomp.IsBalancedSeparator(d, g, sep) {
				t.Fatalf("seed %d k=%d: no balanced separator in produced HD\n%s", seed, k, d)
			}
			break // one k per instance is enough for this property
		}
	}
}
