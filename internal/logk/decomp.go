package logk

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/comb"
	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/ext"
)

// callState is shared by the (possibly parallel) workers of one decomp
// call. Its parent cache exploits that the [λp]-components of H' depend
// only on ∪λp — not on the current child candidate — so each distinct
// parent candidate is analysed once per call instead of once per
// (λc, λp) pair. The cache is sharded by the union's hash: reads take a
// shard RLock and use the no-allocation string(buf) map-lookup form,
// keeping the multi-million-iteration parent loops cheap.
type callState struct {
	shards [64]parentShard
}

type parentShard struct {
	mu sync.RWMutex
	m  map[string]*parentInfo
}

// parentInfo is the cached analysis of one ∪λp: the oversized
// [λp]-component if any (with its vertex set and forbidden union
// precomputed, so the shared object is safe to read concurrently).
type parentInfo struct {
	compDown *ext.Graph
	vDown    *bitset.Set
}

// decomp is the recursive core (Algorithm 2 of the paper, Appendix C),
// extended to materialise the HD-fragment it finds. It returns the root
// node of an HD of ⟨g.Edges, g.Specials, conn⟩ in which every special
// edge of g appears as exactly one placeholder leaf.
func (s *Solver) decomp(ctx context.Context, w *worker, g *ext.Graph, conn *bitset.Set, allowed []int, depth int) (*decomp.Node, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	s.noteDepth(depth)

	// Base cases (lines 5-10).
	if len(g.Edges) <= s.Opts.K && len(g.Specials) == 0 {
		bag := s.H.Union(g.Edges)
		return decomp.NewNode(g.Edges, bag), true, nil
	}
	if len(g.Edges) == 0 {
		if len(g.Specials) == 1 {
			sp := g.Specials[0]
			return decomp.NewSpecialLeaf(sp.ID, sp.Vertices), true, nil
		}
		if !s.Opts.NoNegativeBaseCase {
			// A λ-label of only "old" edges makes no progress (normal
			// form condition 2), so ≥2 specials cannot be separated.
			return nil, false, nil
		}
	}

	// Hybrid switch (Appendix D.2): small subproblems go to det-k-decomp.
	if s.Opts.Hybrid != HybridNone && s.metricValue(g) < s.Opts.HybridThreshold {
		s.stats.hybridCalls.Add(1)
		if w.detk == nil {
			w.detk = detk.New(s.H, s.Opts.K)
		}
		return w.detk.DecomposeExt(ctx, g, conn)
	}

	// Negative memo: a content-identical state that previously exhausted
	// its search space cannot succeed now.
	var memoKey string
	if !s.Opts.NoCache {
		w.memoBuf = g.MemoKey(conn, allowed, w.memoBuf[:0])
		if s.memo.Lookup(w.memoBuf) {
			s.stats.memoHits.Add(1)
			return nil, false, nil
		}
		memoKey = string(w.memoBuf) // materialise before recursion reuses the buffer
	}

	node, ok, err := s.searchChild(ctx, w, g, conn, allowed, depth)
	if err == nil && !ok && !s.Opts.NoCache {
		// The search space was exhausted cleanly; remember the failure.
		s.memo.Insert(memoKey)
	}
	return node, ok, err
}

// childRange enumerates one rank range of the λ(c) candidate space
// (ChildLoop, lines 11-21) and returns the first success.
func (s *Solver) childRange(ctx context.Context, w *worker, cs *callState, g *ext.Graph, conn *bitset.Set, allowed []int, depth int, it *comb.Iter) (*decomp.Node, bool, error) {
	// isNew[i] marks allowed edges that belong to g.Edges; a candidate
	// must contain at least one of them (progress condition).
	fr := w.frame(depth)
	if cap(fr.childNew) < len(allowed) {
		fr.childNew = make([]bool, len(allowed))
	}
	isNew := fr.childNew[:len(allowed)]
	for i, e := range allowed {
		isNew[i] = g.ContainsEdge(e)
	}

	lambdaC := make([]int, 0, s.Opts.K)
	unionC := s.H.NewVertexSet()
	count := 0

	for idxs := it.Next(); idxs != nil; idxs = it.Next() {
		count++
		if count&0x3F == 0 {
			if err := ctx.Err(); err != nil {
				s.stats.candidates.Add(int64(count))
				return nil, false, err
			}
		}
		hasNew := false
		for _, i := range idxs {
			if isNew[i] {
				hasNew = true
				break
			}
		}
		if !hasNew {
			continue
		}
		lambdaC = lambdaC[:0]
		unionC.Reset()
		for _, i := range idxs {
			e := allowed[i]
			lambdaC = append(lambdaC, e)
			unionC.InPlaceUnion(s.H.Edge(e))
		}
		node, ok, err := s.tryChild(ctx, w, cs, g, conn, allowed, lambdaC, unionC, depth)
		if err != nil {
			s.stats.candidates.Add(int64(count))
			return nil, false, err
		}
		if ok {
			s.stats.candidates.Add(int64(count))
			return node, true, nil
		}
	}
	s.stats.candidates.Add(int64(count))
	return nil, false, nil
}

// tryChild evaluates one λ(c) candidate: the balancedness pre-check, the
// root-of-fragment case, and the ParentLoop.
func (s *Solver) tryChild(ctx context.Context, w *worker, cs *callState, g *ext.Graph, conn *bitset.Set, allowed []int, lambdaC []int, unionC *bitset.Set, depth int) (*decomp.Node, bool, error) {
	total := g.Size()

	// Balancedness pre-check (lines 12-14): if ∪λc does not balance H',
	// then neither does any χc ⊆ ∪λc derived from it.
	compsC := w.split.Components(g, unionC)
	if ext.LargestComponent(compsC, total) >= 0 {
		return nil, false, nil
	}

	// Root-of-fragment case (lines 15-21): if λc covers the interface,
	// node c is the root of the HD-fragment for g — no parent needed.
	// As root, c is an ancestor of every special's leaf, so λc must
	// avoid their forbidden vertices (see ext.Special.Forbidden).
	if conn.SubsetOf(unionC) && !intersectsForbidden(unionC, g.ForbiddenUnion()) {
		chiC := unionC.Intersect(g.Vertices())
		children := make([]*decomp.Node, 0, len(compsC))
		ok := true
		for _, y := range compsC {
			connY := y.Vertices().Intersect(chiC)
			child, childOK, err := s.decomp(ctx, w, y, connY, allowed, depth+1)
			if err != nil {
				return nil, false, err
			}
			if !childOK {
				ok = false
				break
			}
			children = append(children, child)
		}
		if ok {
			for _, sp := range g.SpecialsCoveredBy(chiC) {
				children = append(children, decomp.NewSpecialLeaf(sp.ID, sp.Vertices))
			}
			root := decomp.NewNode(lambdaC, chiC)
			root.Children = children
			return root, true, nil
		}
		// fall through to the ParentLoop: c may still work as a non-root
		// balanced separator with some parent above it.
	}

	return s.parentLoop(ctx, w, cs, g, conn, allowed, lambdaC, unionC, depth)
}

// parentFor returns the cached analysis of one parent candidate ∪λp,
// computing and publishing it on first use.
func (s *Solver) parentFor(w *worker, cs *callState, g *ext.Graph, unionP *bitset.Set, total int) *parentInfo {
	var sh *parentShard
	if !s.Opts.NoCache {
		w.keyBuf = unionP.AppendKey(w.keyBuf[:0])
		sh = &cs.shards[unionP.Hash()&63]
		sh.mu.RLock()
		pi := sh.m[string(w.keyBuf)] // no-alloc lookup form
		sh.mu.RUnlock()
		if pi != nil {
			return pi
		}
	}
	compsP := w.split.Components(g, unionP)
	pi := &parentInfo{}
	if di := ext.LargestComponent(compsP, total); di >= 0 {
		pi.compDown = compsP[di]
		pi.vDown = pi.compDown.Vertices()
		pi.compDown.ForbiddenUnion() // precompute for lock-free sharing
	}
	if !s.Opts.NoCache {
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[string]*parentInfo)
		}
		// Keep one canonical object so the per-λc failure dedup
		// (pointer-keyed) works across cache races.
		if prev := sh.m[string(w.keyBuf)]; prev != nil {
			pi = prev
		} else {
			sh.m[string(w.keyBuf)] = pi
		}
		sh.mu.Unlock()
	}
	return pi
}

// parentLoop searches for a λ(p) compatible with the chosen λ(c)
// (lines 22-43 of Algorithm 2).
func (s *Solver) parentLoop(ctx context.Context, w *worker, cs *callState, g *ext.Graph, conn *bitset.Set, allowed []int, lambdaC []int, unionC *bitset.Set, depth int) (*decomp.Node, bool, error) {
	// Parent candidates: edges sharing a vertex with ∪λc (Appendix C,
	// "Speeding up the search for parent λ-labels"); completeness is
	// preserved (Theorem C.1).
	fr := w.frame(depth)
	pool := allowed
	if !s.Opts.NoParentPoolRestriction {
		pool = fr.parentPool[:0]
		for _, e := range allowed {
			if s.H.Edge(e).Intersects(unionC) {
				pool = append(pool, e)
			}
		}
		fr.parentPool = pool
	}
	if cap(fr.parentNew) < len(pool) {
		fr.parentNew = make([]bool, len(pool))
	}
	isNew := fr.parentNew[:len(pool)]
	for i, e := range pool {
		isNew[i] = g.ContainsEdge(e)
	}

	space := comb.Space{M: len(pool), K: s.Opts.K}
	it := comb.NewIter(space, 0, space.Total())
	lambdaP := make([]int, 0, s.Opts.K)
	unionP := s.H.NewVertexSet()
	total := g.Size()
	count := 0

	// Distinct downward components whose recursion already failed for
	// this λc; different λp producing the same component would repeat
	// the identical recursion.
	failed := map[*ext.Graph]bool{}

	for idxs := it.Next(); idxs != nil; idxs = it.Next() {
		count++
		if count&0x3F == 0 {
			if err := ctx.Err(); err != nil {
				s.stats.parentCands.Add(int64(count))
				return nil, false, err
			}
		}
		hasNew := false
		for _, i := range idxs {
			if isNew[i] {
				hasNew = true
				break
			}
		}
		if !hasNew {
			continue
		}
		lambdaP = lambdaP[:0]
		unionP.Reset()
		for _, i := range idxs {
			e := pool[i]
			lambdaP = append(lambdaP, e)
			unionP.InPlaceUnion(s.H.Edge(e))
		}

		pi := s.parentFor(w, cs, g, unionP, total)
		if pi.compDown == nil {
			// No oversized [λp]-component: p cannot sit above a balanced
			// separator child (the root case is handled in tryChild).
			continue
		}
		if failed[pi.compDown] {
			continue
		}
		node, ok, rejectedComp, err := s.tryParent(ctx, w, g, conn, allowed, lambdaC, unionC, unionP, pi, depth)
		if err != nil {
			s.stats.parentCands.Add(int64(count))
			return nil, false, err
		}
		if ok {
			s.stats.parentCands.Add(int64(count))
			return node, true, nil
		}
		if rejectedComp {
			failed[pi.compDown] = true
		}
	}
	s.stats.parentCands.Add(int64(count))
	return nil, false, nil
}

// tryParent evaluates one (λp, λc) pair (lines 23-43). rejectedComp
// reports that the downward component's recursions failed — a failure
// that depends only on (compDown, λc), so the caller can skip other λp
// yielding the same component.
func (s *Solver) tryParent(ctx context.Context, w *worker, g *ext.Graph, conn *bitset.Set, allowed []int, lambdaC []int, unionC, unionP *bitset.Set, pi *parentInfo, depth int) (*decomp.Node, bool, bool, error) {
	compDown, vDown := pi.compDown, pi.vDown

	// c becomes an ancestor of the leaf of every special in compDown;
	// λc must avoid their forbidden vertices (soundness of stitching,
	// see ext.Special.Forbidden).
	if intersectsForbidden(unionC, compDown.ForbiddenUnion()) {
		return nil, false, true, nil
	}

	// Connectivity check (line 29): the interface vertices lying in the
	// downward component must be covered by λp.
	if !conn.Intersect(vDown).SubsetOf(unionP) {
		return nil, false, false, nil
	}
	// χ(c) per normal form condition 3 (line 28).
	chiC := unionC.Intersect(vDown)
	// Connectivity check (line 31).
	if !vDown.Intersect(unionP).SubsetOf(chiC) {
		return nil, false, false, nil
	}

	// [χc]-components inside compDown (line 33). By Corollary 3.8 these
	// coincide with the [λc]-components there, so the balancedness
	// pre-check in tryChild already bounds their size by total/2.
	compsC := w.split.Components(compDown, chiC)

	children := make([]*decomp.Node, 0, len(compsC))
	for _, x := range compsC {
		connX := x.Vertices().Intersect(chiC)
		child, ok, err := s.decomp(ctx, w, x, connX, allowed, depth+1)
		if err != nil {
			return nil, false, false, err
		}
		if !ok {
			return nil, false, true, nil // reject parent (line 37)
		}
		children = append(children, child)
	}

	// The part above c: everything outside compDown plus χc as a new
	// special edge (lines 38-40). Everything compDown covers — and
	// everything that will later be spliced below compDown's own special
	// leaves — ends up below this new special's leaf, so its Forbidden
	// set is the union of those vertex sets minus the interface χc.
	sid := s.nextSpecialID()
	forbidden := vDown.Clone()
	for _, sp := range compDown.Specials {
		if sp.Forbidden != nil {
			forbidden.InPlaceUnion(sp.Forbidden)
		}
	}
	forbidden.InPlaceDiff(chiC)
	compUp := g.Subtract(compDown).WithSpecial(ext.Special{ID: sid, Vertices: chiC, Forbidden: forbidden})
	allowedUp := allowed
	if !s.Opts.NoAllowedRestriction {
		allowedUp = ext.DiffSortedInts(allowed, compDown.Edges)
	}
	up, ok, err := s.decomp(ctx, w, compUp, conn, allowedUp, depth+1)
	if err != nil {
		return nil, false, false, err
	}
	if !ok {
		return nil, false, true, nil // reject parent (line 42)
	}

	// Stitch: the fragment above has exactly one leaf for special sid;
	// replace it in place with node c and hang the downward fragments
	// plus leaves for compDown's specials covered by χc (App. A).
	leaf := up.FindSpecialLeaf(sid)
	if leaf == nil {
		return nil, false, false, fmt.Errorf("logk: internal error: special leaf %d missing after successful recursion", sid)
	}
	leaf.SpecialID = decomp.NoSpecial
	leaf.Lambda = append([]int(nil), lambdaC...)
	sortInts(leaf.Lambda)
	leaf.Bag = chiC
	leaf.Children = children
	for _, sp := range compDown.SpecialsCoveredBy(chiC) {
		leaf.Children = append(leaf.Children, decomp.NewSpecialLeaf(sp.ID, sp.Vertices))
	}
	return up, true, false, nil
}

func intersectsForbidden(union, forbidden *bitset.Set) bool {
	return forbidden != nil && union.Intersects(forbidden)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
