package logk

import (
	"context"
	"errors"

	"repro/internal/bitset"
	"repro/internal/comb"
	"repro/internal/decomp"
	"repro/internal/ext"
)

// minParallelSpace is the smallest candidate-space size worth splitting
// across goroutines; below it, coordination overhead dominates.
const minParallelSpace = 64

// searchChild runs the ChildLoop over the full candidate space, splitting
// it across workers when tokens are available (Appendix D.1: the search
// space for balanced separators is partitioned uniformly over the
// available cores, with no communication until first success).
func (s *Solver) searchChild(ctx context.Context, w *worker, g *ext.Graph, conn *bitset.Set, allowed []int, depth int) (*decomp.Node, bool, error) {
	space := comb.Space{M: len(allowed), K: s.Opts.K}
	total := space.Total()
	cs := &callState{}

	extra := 0
	if s.Opts.Workers > 1 && total >= minParallelSpace {
		extra = s.tokens.TryAcquire(s.Opts.Workers - 1)
	}
	if extra == 0 {
		it := comb.NewIter(space, 0, total)
		return s.childRange(ctx, w, cs, g, conn, allowed, depth, it)
	}
	defer s.tokens.Release(extra)
	s.stats.tokenGrabs.Add(1)

	// Force g's lazy caches before sharing it across goroutines.
	g.Vertices()
	g.ForbiddenUnion()

	iters := comb.Split(space, extra+1)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		node *decomp.Node
		ok   bool
		err  error
	}
	results := make(chan result, len(iters)-1)
	for _, it := range iters[1:] {
		go func(it *comb.Iter) {
			nw := s.getWorker()
			defer s.putWorker(nw)
			node, ok, err := s.childRange(cctx, nw, cs, g, conn, allowed, depth, it)
			results <- result{node, ok, err}
		}(it)
	}

	node, ok, err := s.childRange(cctx, w, cs, g, conn, allowed, depth, iters[0])
	if ok {
		cancel() // siblings are redundant now
	}
	var firstErr error = err
	foundNode, found := node, ok
	for range iters[1:] {
		r := <-results
		if r.ok && !found {
			found = true
			foundNode = r.node
			cancel()
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if found {
		return foundNode, true, nil
	}
	// Distinguish "our cancel" from a real deadline/cancellation above us.
	if outerErr := ctx.Err(); outerErr != nil {
		return nil, false, outerErr
	}
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) {
		return nil, false, firstErr
	}
	return nil, false, nil
}
