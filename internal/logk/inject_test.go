package logk

import (
	"sync"
	"testing"
)

func TestNewTokenPoolBounds(t *testing.T) {
	p := NewTokenPool(3)
	if got := p.TryAcquire(10); got != 3 {
		t.Fatalf("TryAcquire(10) = %d, want 3", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty pool = %d, want 0", got)
	}
	p.Release(3)
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire after release = %d, want 2", got)
	}
	p.Release(2)
	if NewTokenPool(-5).TryAcquire(1) != 0 {
		t.Fatal("negative pool size must clamp to empty")
	}
}

func TestGatedTokensShutOff(t *testing.T) {
	pool := NewTokenPool(4)
	g := NewGatedTokens(pool)
	if got := g.TryAcquire(2); got != 2 {
		t.Fatalf("open gate TryAcquire = %d, want 2", got)
	}
	g.Close()
	if !g.Closed() {
		t.Fatal("gate should report closed")
	}
	if got := g.TryAcquire(2); got != 0 {
		t.Fatal("closed gate must not grant tokens")
	}
	// Releases pass through even when closed, so tokens return to the
	// shared pool for surviving probes.
	g.Release(2)
	if got := pool.TryAcquire(4); got != 4 {
		t.Fatalf("pool should hold all 4 tokens again, got %d", got)
	}
	pool.Release(4)
}

func TestGatedTokensNilSource(t *testing.T) {
	g := NewGatedTokens(nil)
	if got := g.TryAcquire(3); got != 0 {
		t.Fatalf("nil-source gate granted %d tokens", got)
	}
	g.Release(1) // must not panic
	g.Close()
}

func TestGatedTokensConcurrentClose(t *testing.T) {
	pool := NewTokenPool(8)
	g := NewGatedTokens(pool)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := g.TryAcquire(2)
			g.Release(n)
		}()
	}
	g.Close()
	wg.Wait()
	if got := pool.TryAcquire(8); got != 8 {
		t.Fatalf("tokens leaked through concurrent close: recovered %d of 8", got)
	}
}
