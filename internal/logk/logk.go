// Package logk implements log-k-decomp, the parallel hypertree
// decomposition algorithm of Gottlob, Lanzinger, Okulmus and Pichler
// (PODS 2022). The solver decides hw(H) ≤ k and materialises a width-≤k
// HD on success, with recursion depth logarithmic in |E(H)|
// (Theorem 4.1).
//
// Three variants are provided:
//
//   - Solver (this file, decomp.go, parallel.go): the optimised
//     Algorithm 2 with all Appendix C improvements, parallel search-space
//     splitting (Appendix D.1) and optional hybridisation with
//     det-k-decomp (Appendix D.2);
//   - BasicSolver (basic.go): a faithful transliteration of the basic
//     Algorithm 1, used as a correctness oracle and ablation baseline.
//
// The core recursive step fixes λ-labels for a parent/child node pair
// (p, c) such that c is a balanced separator of the current extended
// subhypergraph: every child subtree of c covers at most half of the
// edges and specials, and the part above c covers strictly less than
// half. Corollary 3.8 lets χ(c) be derived from λ(p) and λ(c) alone, so
// subproblems halve and the recursion stack stays logarithmic.
package logk

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// HybridMetric selects the subproblem-complexity metric that decides when
// the hybrid solver hands a subproblem to det-k-decomp (Appendix D.2).
type HybridMetric int

const (
	// HybridNone disables hybridisation: log-k-decomp all the way down.
	HybridNone HybridMetric = iota
	// HybridEdgeCount uses |E(H_i)| as the complexity measure.
	HybridEdgeCount
	// HybridWeightedCount uses |E(H_i)| · k / avg_e |e|, weighting edge
	// count up for high widths and down for large (easily covering) edges.
	HybridWeightedCount
)

func (m HybridMetric) String() string {
	switch m {
	case HybridNone:
		return "none"
	case HybridEdgeCount:
		return "EdgeCount"
	case HybridWeightedCount:
		return "WeightedCount"
	}
	return fmt.Sprintf("HybridMetric(%d)", int(m))
}

// Options configures a Solver.
type Options struct {
	// K is the width bound (required, ≥ 1).
	K int
	// Workers bounds the number of goroutines searching concurrently.
	// 1 (or 0) runs fully sequentially.
	Workers int

	// Hybrid selects the metric for switching to det-k-decomp; threshold
	// is the switch point: subproblems with metric < HybridThreshold are
	// handed over (the paper's best configuration is WeightedCount with
	// thresholds around 400).
	Hybrid          HybridMetric
	HybridThreshold float64

	// Ablation toggles. All default to false = optimisation enabled;
	// they are spelled negatively so the zero Options value is the fully
	// optimised algorithm.

	// NoAllowedRestriction disables the "allowed edges" parameter A of
	// Algorithm 2 (every recursion searches λ over all edges of H).
	NoAllowedRestriction bool
	// NoParentPoolRestriction disables restricting the λ(p) search to
	// edges intersecting ∪λ(c) (the last optimisation of Appendix C).
	NoParentPoolRestriction bool
	// NoNegativeBaseCase disables the "no edges and ≥2 specials" early
	// rejection.
	NoNegativeBaseCase bool
	// NoCache disables the solver-level negative memoisation of failed
	// (subhypergraph, interface, allowed) states and the per-call reuse
	// of parent-candidate components.
	NoCache bool

	// Tokens, when non-nil, replaces the Solver's private worker-token
	// pool: parallel search splits draw extra workers from it instead.
	// Inject a shared budget to bound total parallelism across many
	// concurrent Solvers. Workers still caps how many extra tokens one
	// split requests.
	Tokens TokenSource

	// Memo, when non-nil, replaces the Solver's private negative memo.
	// Keys are pure content (ext.Graph.MemoKey), so a backend may be
	// shared by all Solvers running the same hypergraph with the same K —
	// the basis for cross-request caching in the service layer. Ignored
	// when NoCache is set.
	Memo MemoBackend
}

// Stats reports search effort, populated during Decompose. Counters are
// aggregated across workers.
type Stats struct {
	Candidates    int64 // λ(c) candidates evaluated
	ParentCands   int64 // λ(p) candidates evaluated
	MaxDepth      int64 // deepest Decomp recursion observed
	HybridCalls   int64 // subproblems delegated to det-k-decomp
	TokensGrabbed int64 // parallel search-space splits performed
	MemoHits      int64 // negative-memo hits
}

// Solver runs the optimised log-k-decomp. Safe for one Decompose call at
// a time; create a new Solver per concurrent decomposition.
type Solver struct {
	H    *hypergraph.Hypergraph
	Opts Options

	tokens    TokenSource
	specialID atomic.Int64

	// memo records content-keyed states whose search space was exhausted
	// without success; see ext.Graph.MemoKey. The default is a private
	// ShardedMemo; Options.Memo swaps in a shared backend.
	memo MemoBackend

	stats struct {
		candidates  atomic.Int64
		parentCands atomic.Int64
		maxDepth    atomic.Int64
		hybridCalls atomic.Int64
		tokenGrabs  atomic.Int64
		memoHits    atomic.Int64
	}

	workerPool sync.Pool
}

// New returns a Solver for h with the given options.
func New(h *hypergraph.Hypergraph, opts Options) *Solver {
	if opts.K < 1 {
		panic("logk: width bound K must be >= 1")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	s := &Solver{H: h, Opts: opts}
	s.tokens = opts.Tokens
	if s.tokens == nil {
		s.tokens = newChanTokens(opts.Workers - 1)
	}
	s.memo = opts.Memo
	if s.memo == nil {
		s.memo = new(ShardedMemo)
	}
	s.workerPool.New = func() any { return s.makeWorker() }
	return s
}

// Stats returns a snapshot of the effort counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Candidates:    s.stats.candidates.Load(),
		ParentCands:   s.stats.parentCands.Load(),
		MaxDepth:      s.stats.maxDepth.Load(),
		HybridCalls:   s.stats.hybridCalls.Load(),
		TokensGrabbed: s.stats.tokenGrabs.Load(),
		MemoHits:      s.stats.memoHits.Load(),
	}
}

// Decompose checks hw(H) ≤ K and returns a valid HD of width ≤ K when it
// holds. On timeout/cancellation it returns the context's error.
func (s *Solver) Decompose(ctx context.Context) (*decomp.Decomp, bool, error) {
	g := ext.Root(s.H)
	conn := s.H.NewVertexSet()
	allowed := s.H.AllEdgeIDs()
	w := s.getWorker()
	defer s.putWorker(w)
	node, ok, err := s.decomp(ctx, w, g, conn, allowed, 1)
	if err != nil || !ok {
		return nil, false, err
	}
	return &decomp.Decomp{H: s.H, Root: node}, true, nil
}

// Decide is Decompose without materialising the decomposition.
func (s *Solver) Decide(ctx context.Context) (bool, error) {
	_, ok, err := s.Decompose(ctx)
	return ok, err
}

// worker carries per-goroutine scratch state.
type worker struct {
	split *ext.Splitter
	detk  *detk.Solver // lazily created, hybrid mode only

	// keyBuf is filled and consumed within a single parentFor call (no
	// recursion in between), so one per worker suffices.
	keyBuf []byte

	// memoBuf is the reusable MemoKey build buffer; the key is
	// materialised as a string before any recursion can reuse the buffer.
	memoBuf []byte

	// frames holds per-recursion-depth scratch: the candidate loops at
	// depth d keep slices alive across recursive calls at depth d+1, so
	// scratch must not be shared between depths.
	frames []frameScratch
}

// frameScratch is reusable loop scratch for one recursion depth.
type frameScratch struct {
	childNew   []bool
	parentPool []int
	parentNew  []bool
}

// frame returns the scratch for the given depth, growing the stack as
// needed.
func (w *worker) frame(depth int) *frameScratch {
	for len(w.frames) <= depth {
		w.frames = append(w.frames, frameScratch{})
	}
	return &w.frames[depth]
}

func (s *Solver) makeWorker() *worker {
	return &worker{split: ext.NewSplitter(s.H)}
}

func (s *Solver) getWorker() *worker  { return s.workerPool.Get().(*worker) }
func (s *Solver) putWorker(w *worker) { s.workerPool.Put(w) }

func (s *Solver) nextSpecialID() int {
	return int(s.specialID.Add(1))
}

func (s *Solver) noteDepth(depth int) {
	d := int64(depth)
	for {
		cur := s.stats.maxDepth.Load()
		if cur >= d || s.stats.maxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// metricValue computes the hybrid complexity metric for a subproblem.
func (s *Solver) metricValue(g *ext.Graph) float64 {
	switch s.Opts.Hybrid {
	case HybridEdgeCount:
		return float64(g.Size())
	case HybridWeightedCount:
		total := 0
		for _, e := range g.Edges {
			total += s.H.Edge(e).Len()
		}
		for _, sp := range g.Specials {
			total += sp.Vertices.Len()
		}
		if g.Size() == 0 {
			return 0
		}
		avg := float64(total) / float64(g.Size())
		if avg == 0 {
			return 0
		}
		return float64(g.Size()) * float64(s.Opts.K) / avg
	default:
		return 0
	}
}
