package logk

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
)

// ladder builds the 2×n ladder from the benchmark generator: two rails
// plus rungs every other position. Its hypertree width is 2, and at
// k = 3 the extra label slack exposed a stitching soundness bug: a node
// in the "up" fragment chose a λ-edge containing a vertex of the spliced
// "down" region outside χ(c), violating the special condition in the
// assembled tree. These tests pin the fix (ext.Special.Forbidden).
func ladder(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(i+1))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(i+1))
	}
	for i := 0; i < n; i += 2 {
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return b.Build()
}

// TestStitchSoundnessLadderHybrid is the regression test for the exact
// failure first caught by the Table 1 bench: hybrid, k = 3, ladder.
func TestStitchSoundnessLadderHybrid(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{12, 24, 44} {
		h := ladder(n)
		for k := 2; k <= 3; k++ {
			s := New(h, Options{K: k, Hybrid: HybridWeightedCount, HybridThreshold: 40})
			d, ok, err := s.Decompose(ctx)
			if err != nil {
				t.Fatalf("ladder(%d) k=%d: %v", n, k, err)
			}
			if !ok {
				t.Fatalf("ladder(%d) k=%d: should be decomposable (hw=2)", n, k)
			}
			if err := decomp.CheckHD(d); err != nil {
				t.Fatalf("ladder(%d) k=%d: invalid HD: %v", n, k, err)
			}
		}
	}
}

// TestStitchSoundnessAboveWidth runs all solvers with k strictly above
// the optimal width — the regime where λ-label slack makes unsound
// stitching likely — and validates every output.
func TestStitchSoundnessAboveWidth(t *testing.T) {
	ctx := context.Background()
	graphs := map[string]*hypergraph.Hypergraph{
		"ladder16": ladder(16),
		"cycle14":  cycle(14),
		"grid3":    grid(3),
	}
	for name, h := range graphs {
		for k := 2; k <= 4; k++ {
			for _, mode := range []string{"plain", "parallel", "hybrid"} {
				var o Options
				switch mode {
				case "plain":
					o = Options{K: k}
				case "parallel":
					o = Options{K: k, Workers: 8}
				case "hybrid":
					o = Options{K: k, Hybrid: HybridEdgeCount, HybridThreshold: 10}
				}
				s := New(h, o)
				d, ok, err := s.Decompose(ctx)
				if err != nil {
					t.Fatalf("%s k=%d %s: %v", name, k, mode, err)
				}
				if !ok {
					t.Fatalf("%s k=%d %s: expected success", name, k, mode)
				}
				if err := decomp.CheckHD(d); err != nil {
					t.Fatalf("%s k=%d %s: invalid HD: %v\n%s", name, k, mode, err, d)
				}
				if err := decomp.CheckWidth(d, k); err != nil {
					t.Fatal(err)
				}
			}
			// det-k above width, for the same reason.
			d, ok, err := detk.New(h, k).Decompose(ctx)
			if err != nil || !ok {
				t.Fatalf("%s k=%d detk: ok=%v err=%v", name, k, ok, err)
			}
			if err := decomp.CheckHD(d); err != nil {
				t.Fatalf("%s k=%d detk: invalid HD: %v", name, k, err)
			}
		}
	}
}

// TestStitchSoundnessBasicSolver covers the Algorithm 1 transliteration
// in the same above-width regime (small sizes; it is slow).
func TestStitchSoundnessBasicSolver(t *testing.T) {
	ctx := context.Background()
	for _, h := range []*hypergraph.Hypergraph{ladder(6), cycle(7)} {
		for k := 2; k <= 3; k++ {
			d, ok, err := NewBasic(h, k).Decompose(ctx)
			if err != nil || !ok {
				t.Fatalf("k=%d: ok=%v err=%v", k, ok, err)
			}
			if err := decomp.CheckHD(d); err != nil {
				t.Fatalf("k=%d: invalid HD: %v\n%s", k, err, d)
			}
		}
	}
}
