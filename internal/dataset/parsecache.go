package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"repro/internal/join"
	"repro/internal/store"
)

// ParseCache is the inline-database fix: `/query` requests that ship
// their database inline used to pay parse + index builds per request,
// N times over for N concurrent identical requests. The cache is
// content-addressed (hash of the database text) with two pieces:
//
//   - a small LRU of parsed databases, so repeat inline uploads of the
//     same text skip parsing entirely; cached relations carry an
//     IndexSet, so index builds are captured once and reused across
//     queries — the same machinery dataset snapshots use;
//   - a single-flight (mirroring the plan cache's solve coalescing):
//     concurrent identical uploads elect one parser, the rest share
//     its result.
//
// Cached relations are immutable: the parser built them, queries only
// read them, and the IndexSet synchronises its own capture writes.
type ParseCache struct {
	flight *store.Flight

	mu  sync.Mutex
	cap int
	m   map[string]join.Database
	use []string // LRU order, most recent last

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
}

// ParseCacheStats counts cache outcomes: Hits served from the LRU,
// Misses parsed fresh, Coalesced attached to a concurrent leader.
type ParseCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
}

// NewParseCache returns a cache retaining up to capacity parsed
// databases.
func NewParseCache(capacity int) *ParseCache {
	return &ParseCache{
		flight: store.NewFlight(),
		cap:    capacity,
		m:      make(map[string]join.Database, capacity),
	}
}

type parseOutcome struct {
	db  join.Database
	err error
}

// Parse returns the parsed form of the inline database text, cached
// and coalesced. Parse errors are returned but never cached — a
// malformed upload should not poison the key for a later valid one
// (hash collisions aside, the same text always fails the same way;
// re-parsing it is just the unlucky path staying slow).
func (p *ParseCache) Parse(ctx context.Context, text string) (join.Database, error) {
	sum := sha256.Sum256([]byte(text))
	key := hex.EncodeToString(sum[:])

	if db := p.lookup(key); db != nil {
		p.hits.Add(1)
		return db, nil
	}

	val, leader, err := p.flight.Do(ctx, key, func() any {
		db, perr := join.ParseRelations(text)
		if perr != nil {
			return parseOutcome{err: perr}
		}
		for _, rel := range db {
			rel.EnableIndexReuse()
		}
		p.insert(key, db)
		return parseOutcome{db: db}
	})
	if err != nil {
		return nil, err
	}
	if leader {
		p.misses.Add(1)
	} else {
		p.coalesced.Add(1)
	}
	out, ok := val.(parseOutcome)
	if !ok {
		// The leader panicked mid-parse and the flight released us with
		// a nil value; re-parse on our own rather than failing the query.
		return p.Parse(ctx, text)
	}
	return out.db, out.err
}

// lookup returns the cached database for key, refreshing its LRU slot.
func (p *ParseCache) lookup(key string) join.Database {
	p.mu.Lock()
	defer p.mu.Unlock()
	db, ok := p.m[key]
	if !ok {
		return nil
	}
	for i, k := range p.use {
		if k == key {
			p.use = append(append(p.use[:i:i], p.use[i+1:]...), key)
			break
		}
	}
	return db
}

// insert adds a parsed database, evicting the least recently used
// entry past capacity.
func (p *ParseCache) insert(key string, db join.Database) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.m[key]; ok {
		return
	}
	p.m[key] = db
	p.use = append(p.use, key)
	if len(p.m) > p.cap {
		victim := p.use[0]
		p.use = p.use[1:]
		delete(p.m, victim)
	}
}

// Stats returns the cache's outcome counters.
func (p *ParseCache) Stats() ParseCacheStats {
	return ParseCacheStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Coalesced: p.coalesced.Load(),
	}
}
