// Package dataset holds named, server-resident, versioned databases —
// the data half of the plan-cache story. A dataset is a set of
// maintained relations (join.MRel) plus a monotonically increasing
// version; mutation batches (insert/delete tuple deltas per relation)
// advance the version by exactly one, and every version publishes an
// immutable copy-on-write snapshot whose relations carry maintained
// hash indexes.
//
// Contracts:
//
//   - Version monotonicity: versions only increase — one batch, one
//     bump; a replaced dataset continues the old counter.
//   - Snapshot isolation: a Snapshot resolved before a mutation
//     commits reads exactly its version's rows forever; writers never
//     touch published storage.
//   - Bounded pinning: the last Config.Retain versions stay
//     resolvable; pinning an evicted or future version is a clear
//     error (ErrVersionGone / ErrFutureVersion), never wrong rows.
//   - Incremental ≡ from-scratch: evaluating any query over a snapshot
//     equals evaluating it over a database freshly built from the
//     snapshot's materialised rows — byte-identical; the differential
//     wall in internal/query enforces this after random delta
//     sequences.
//
// The registry is tenant-namespaced: tenants see only their own
// datasets, and the tenant wall admission-controls mutations like any
// other request. ParseCache is the inline-database side piece: a
// single-flight, content-addressed cache of parsed inline databases,
// so concurrent identical inline uploads pay one parse and share
// captured indexes.
package dataset
