package dataset

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/join"
)

// Sentinel errors the HTTP layer maps to statuses.
var (
	// ErrNotFound: no dataset with that name for the tenant.
	ErrNotFound = errors.New("dataset: not found")
	// ErrVersionGone: the pinned version existed but fell out of the
	// retention window (or the dataset was replaced) — re-resolve,
	// don't guess: serving newer rows under an old pin would be wrong.
	ErrVersionGone = errors.New("dataset: version evicted from retention window")
	// ErrFutureVersion: the pinned version has not been produced yet.
	ErrFutureVersion = errors.New("dataset: version is ahead of the dataset")
	// ErrLimit: a registry or tuple budget would be exceeded.
	ErrLimit = errors.New("dataset: limit exceeded")
)

// Config bounds a Registry.
type Config struct {
	// MaxDatasets caps datasets per registry (all tenants combined).
	MaxDatasets int
	// MaxTuples caps live tuples per dataset across its relations.
	MaxTuples int
	// Retain is how many recent versions stay resolvable for pinned
	// reads (the current version included).
	Retain int
	// ParseCacheSize caps the inline-database parse cache entries.
	ParseCacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxTuples <= 0 {
		c.MaxTuples = 2_000_000
	}
	if c.Retain <= 0 {
		c.Retain = 4
	}
	if c.ParseCacheSize <= 0 {
		c.ParseCacheSize = 8
	}
	return c
}

// Mutation is one NDJSON delta line: an insert or delete of a tuple
// batch against one relation. Ops inside a batch apply sequentially —
// a delete sees tuples inserted earlier in the same batch.
type Mutation struct {
	Op   string  `json:"op"` // "insert" | "delete"
	Rel  string  `json:"rel"`
	Rows [][]int `json:"rows"`
}

// MutationResult reports one committed batch. Deduped counts inserts
// skipped because the tuple was already live (relations are sets);
// Missed counts deletes of tuples that were not live — a no-op, not an
// error. Compacted reports whether tombstoned rows were compacted out.
type MutationResult struct {
	Version   uint64 `json:"version"`
	Inserted  int    `json:"inserted"`
	Deduped   int    `json:"deduped"`
	Deleted   int    `json:"deleted"`
	Missed    int    `json:"missed"`
	Compacted bool   `json:"compacted"`
}

// Snapshot is one immutable published version: queries evaluate over
// DB while writers advance the dataset past it.
type Snapshot struct {
	Version uint64
	DB      join.Database
}

// RelInfo describes one relation of a dataset version.
type RelInfo struct {
	Attrs []string `json:"attrs"`
	Rows  int      `json:"rows"`
}

// Info is the metadata view of a dataset (GET /data/{name}).
type Info struct {
	Name      string             `json:"name"`
	Version   uint64             `json:"version"`
	Tuples    int                `json:"tuples"`
	Relations map[string]RelInfo `json:"relations"`
	Queries   int64              `json:"queries"`
	Mutations int64              `json:"mutations"`
}

// Dataset is one named, versioned database. Mutation batches serialise
// on mu; resolved snapshots are immutable and read lock-free.
type Dataset struct {
	name   string
	tenant string

	mu        sync.Mutex
	version   uint64
	rels      map[string]*join.MRel
	snaps     []Snapshot // ascending versions, current last, ≤ retain
	retain    int
	maxTuples int
	mutations int64

	queries atomic.Int64
}

// Registry is the tenant-namespaced dataset registry one service owns.
type Registry struct {
	cfg   Config
	parse *ParseCache

	mu    sync.Mutex
	byKey map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	return &Registry{
		cfg:   cfg,
		parse: NewParseCache(cfg.ParseCacheSize),
		byKey: make(map[string]*Dataset),
	}
}

// ParseCache returns the registry's inline-database parse cache.
func (g *Registry) ParseCache() *ParseCache { return g.parse }

func key(tenant, name string) string { return tenant + "\x00" + name }

func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("dataset: name must be 1..128 bytes")
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return fmt.Errorf("dataset: name contains control bytes")
		}
	}
	return nil
}

// Put creates or replaces tenant's dataset name with db's tuples,
// returning the new version. A replacement continues the old version
// counter (monotonicity survives replacement) and evicts every prior
// pinnable version — the old data is gone, and ErrVersionGone beats
// silently serving rows from a different upload.
func (g *Registry) Put(tenant, name string, db join.Database) (uint64, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	total := 0
	for _, rel := range db {
		total += rel.Size()
	}
	if total > g.cfg.MaxTuples {
		return 0, fmt.Errorf("%w: %d tuples > per-dataset cap %d", ErrLimit, total, g.cfg.MaxTuples)
	}

	g.mu.Lock()
	d, ok := g.byKey[key(tenant, name)]
	if !ok {
		if len(g.byKey) >= g.cfg.MaxDatasets {
			g.mu.Unlock()
			return 0, fmt.Errorf("%w: registry holds %d datasets", ErrLimit, len(g.byKey))
		}
		d = &Dataset{
			name:      name,
			tenant:    tenant,
			rels:      make(map[string]*join.MRel),
			retain:    g.cfg.Retain,
			maxTuples: g.cfg.MaxTuples,
		}
		g.byKey[key(tenant, name)] = d
	}
	g.mu.Unlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.rels = make(map[string]*join.MRel, len(db))
	for rname, rel := range db {
		d.rels[rname] = join.NewMRel(rel)
	}
	d.version++
	d.snaps = []Snapshot{{Version: d.version, DB: d.snapshotDB()}}
	return d.version, nil
}

// Get returns tenant's dataset name.
func (g *Registry) Get(tenant, name string) (*Dataset, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.byKey[key(tenant, name)]
	return d, ok
}

// Drop removes tenant's dataset name, reporting whether it existed.
// In-flight queries holding its snapshots finish unaffected — storage
// lives as long as any snapshot references it.
func (g *Registry) Drop(tenant, name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := key(tenant, name)
	_, ok := g.byKey[k]
	delete(g.byKey, k)
	return ok
}

// List returns tenant's datasets, name-sorted.
func (g *Registry) List(tenant string) []Info {
	g.mu.Lock()
	var ds []*Dataset
	for _, d := range g.byKey {
		if d.tenant == tenant {
			ds = append(ds, d)
		}
	}
	g.mu.Unlock()
	out := make([]Info, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve returns the snapshot of tenant's dataset name at version
// (0 = current) and counts the read as one dataset query.
func (g *Registry) Resolve(tenant, name string, version uint64) (Snapshot, error) {
	d, ok := g.Get(tenant, name)
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	snap, err := d.At(version)
	if err != nil {
		return Snapshot{}, err
	}
	d.queries.Add(1)
	return snap, nil
}

// Stats aggregates registry-wide counters for /stats.
type Stats struct {
	Datasets  int   `json:"datasets"`
	Queries   int64 `json:"queries"`
	Mutations int64 `json:"mutations"`
}

// Stats returns registry-wide totals.
func (g *Registry) Stats() Stats {
	g.mu.Lock()
	ds := make([]*Dataset, 0, len(g.byKey))
	for _, d := range g.byKey {
		ds = append(ds, d)
	}
	g.mu.Unlock()
	st := Stats{Datasets: len(ds)}
	for _, d := range ds {
		st.Queries += d.queries.Load()
		d.mu.Lock()
		st.Mutations += d.mutations
		d.mu.Unlock()
	}
	return st
}

// Version returns the dataset's current version.
func (d *Dataset) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// snapshotDB builds the version's database from the current views.
// Caller holds d.mu.
func (d *Dataset) snapshotDB() join.Database {
	db := make(join.Database, len(d.rels))
	for name, m := range d.rels {
		db[name] = m.View()
	}
	return db
}

// At resolves version (0 = current) to its snapshot. Evicted versions
// return ErrVersionGone, unproduced ones ErrFutureVersion — never a
// silently different version's rows.
func (d *Dataset) At(version uint64) (Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.snaps) == 0 {
		return Snapshot{}, fmt.Errorf("%w: %q has no published version", ErrNotFound, d.name)
	}
	if version == 0 || version == d.version {
		return d.snaps[len(d.snaps)-1], nil
	}
	if version > d.version {
		return Snapshot{}, fmt.Errorf("%w: pinned %d, current %d", ErrFutureVersion, version, d.version)
	}
	for _, s := range d.snaps {
		if s.Version == version {
			return s, nil
		}
	}
	return Snapshot{}, fmt.Errorf("%w: pinned %d, retained [%d, %d]",
		ErrVersionGone, version, d.snaps[0].Version, d.version)
}

// Mutate applies one delta batch as one version bump. The whole batch
// is validated before anything applies — an invalid op leaves the
// dataset untouched at its old version. Within the batch, ops apply
// sequentially with set semantics (see MutationResult).
func (d *Dataset) Mutate(batch []Mutation) (MutationResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	adds := 0
	live := 0
	for _, m := range d.rels {
		live += m.LiveSize()
	}
	for i, op := range batch {
		if op.Op != "insert" && op.Op != "delete" {
			return MutationResult{}, fmt.Errorf("dataset: op %d: unknown op %q (want insert or delete)", i, op.Op)
		}
		m, ok := d.rels[op.Rel]
		if !ok {
			return MutationResult{}, fmt.Errorf("dataset: op %d: unknown relation %q", i, op.Rel)
		}
		arity := len(m.View().Attrs)
		for _, row := range op.Rows {
			if len(row) != arity {
				return MutationResult{}, fmt.Errorf("dataset: op %d: tuple arity %d != relation %q arity %d",
					i, len(row), op.Rel, arity)
			}
		}
		if op.Op == "insert" {
			adds += len(op.Rows)
		}
	}
	if live+adds > d.maxTuples {
		return MutationResult{}, fmt.Errorf("%w: %d live + %d inserts > per-dataset cap %d",
			ErrLimit, live, adds, d.maxTuples)
	}

	var res MutationResult
	touched := make(map[string]*join.MRel)
	for _, op := range batch {
		m := d.rels[op.Rel]
		touched[op.Rel] = m
		if op.Op == "insert" {
			ins, dups, err := m.Insert(op.Rows)
			res.Inserted += ins
			res.Deduped += dups
			if err != nil {
				// Unreachable after validation; surface rather than hide.
				return MutationResult{}, err
			}
		} else {
			del, missed, err := m.Delete(op.Rows)
			res.Deleted += del
			res.Missed += missed
			if err != nil {
				return MutationResult{}, err
			}
		}
	}
	for _, m := range touched {
		if m.Commit() {
			res.Compacted = true
		}
	}
	d.version++
	d.mutations++
	res.Version = d.version
	d.snaps = append(d.snaps, Snapshot{Version: d.version, DB: d.snapshotDB()})
	if len(d.snaps) > d.retain {
		d.snaps = d.snaps[len(d.snaps)-d.retain:]
	}
	return res, nil
}

// Info returns the dataset's metadata at its current version.
func (d *Dataset) Info() Info {
	d.mu.Lock()
	defer d.mu.Unlock()
	info := Info{
		Name:      d.name,
		Version:   d.version,
		Relations: make(map[string]RelInfo, len(d.rels)),
		Queries:   d.queries.Load(),
		Mutations: d.mutations,
	}
	for name, m := range d.rels {
		v := m.View()
		info.Relations[name] = RelInfo{Attrs: v.Attrs, Rows: v.Size()}
		info.Tuples += v.Size()
	}
	return info
}
