package dataset

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/join"
)

func mustDB(t *testing.T, text string) join.Database {
	t.Helper()
	db, err := join.ParseRelations(text)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const twoRelText = "rel R(a,b)\n1 2\n3 4\nend\nrel S(b,c)\n2 5\n4 6\nend\n"

func newTestRegistry() *Registry {
	return NewRegistry(Config{Retain: 3})
}

func TestPutGetDropLifecycle(t *testing.T) {
	g := newTestRegistry()
	v, err := g.Put("t1", "d", mustDB(t, twoRelText))
	if err != nil || v != 1 {
		t.Fatalf("Put = (%d, %v), want (1, nil)", v, err)
	}
	if _, ok := g.Get("t1", "d"); !ok {
		t.Fatal("dataset missing after Put")
	}
	// Tenant wall: another tenant cannot see it.
	if _, ok := g.Get("t2", "d"); ok {
		t.Fatal("dataset visible across tenants")
	}
	if _, err := g.Resolve("t2", "d", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant Resolve = %v, want ErrNotFound", err)
	}
	// Replacement continues the version counter.
	v, err = g.Put("t1", "d", mustDB(t, twoRelText))
	if err != nil || v != 2 {
		t.Fatalf("replace Put = (%d, %v), want (2, nil)", v, err)
	}
	if !g.Drop("t1", "d") {
		t.Fatal("Drop reported missing")
	}
	if g.Drop("t1", "d") {
		t.Fatal("second Drop reported present")
	}
}

func TestMutateVersionsAndCounts(t *testing.T) {
	g := newTestRegistry()
	if _, err := g.Put("", "d", mustDB(t, twoRelText)); err != nil {
		t.Fatal(err)
	}
	d, _ := g.Get("", "d")

	res, err := d.Mutate([]Mutation{
		{Op: "insert", Rel: "R", Rows: [][]int{{5, 6}, {1, 2}}}, // {1,2} already live
		{Op: "delete", Rel: "S", Rows: [][]int{{2, 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := MutationResult{Version: 2, Inserted: 1, Deduped: 1, Deleted: 1, Compacted: true}
	if res != want {
		t.Fatalf("Mutate = %+v, want %+v", res, want)
	}
	snap, err := d.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.DB["R"].Sorted(); !reflect.DeepEqual(got, [][]int{{1, 2}, {3, 4}, {5, 6}}) {
		t.Fatalf("R after batch = %v", got)
	}
	if got := snap.DB["S"].Sorted(); !reflect.DeepEqual(got, [][]int{{4, 6}}) {
		t.Fatalf("S after batch = %v", got)
	}
}

// Satellite edge case: delete of a never-inserted tuple is a counted
// no-op that still commits a version.
func TestDeleteNeverInserted(t *testing.T) {
	g := newTestRegistry()
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	res, err := d.Mutate([]Mutation{{Op: "delete", Rel: "R", Rows: [][]int{{9, 9}}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 1 || res.Deleted != 0 || res.Version != 2 {
		t.Fatalf("Mutate = %+v", res)
	}
	snap, _ := d.At(0)
	if snap.DB["R"].Size() != 2 {
		t.Fatal("missed delete changed rows")
	}
}

// Satellite edge case: insert and delete of the same tuple inside one
// batch nets to absence — ops apply sequentially.
func TestInsertDeleteSameBatch(t *testing.T) {
	g := newTestRegistry()
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	res, err := d.Mutate([]Mutation{
		{Op: "insert", Rel: "R", Rows: [][]int{{7, 7}}},
		{Op: "delete", Rel: "R", Rows: [][]int{{7, 7}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 {
		t.Fatalf("Mutate = %+v", res)
	}
	snap, _ := d.At(0)
	if got := snap.DB["R"].Sorted(); !reflect.DeepEqual(got, [][]int{{1, 2}, {3, 4}}) {
		t.Fatalf("R = %v, want original rows", got)
	}
	// And the reverse order: delete-then-insert leaves the tuple live.
	if _, err := d.Mutate([]Mutation{
		{Op: "delete", Rel: "R", Rows: [][]int{{1, 2}}},
		{Op: "insert", Rel: "R", Rows: [][]int{{1, 2}}},
	}); err != nil {
		t.Fatal(err)
	}
	snap, _ = d.At(0)
	if got := snap.DB["R"].Sorted(); !reflect.DeepEqual(got, [][]int{{1, 2}, {3, 4}}) {
		t.Fatalf("R after delete+reinsert = %v", got)
	}
}

// Satellite edge case: empty-relation transitions — drain a relation
// to zero rows, query the snapshot, refill.
func TestEmptyRelationTransitions(t *testing.T) {
	g := newTestRegistry()
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	if _, err := d.Mutate([]Mutation{{Op: "delete", Rel: "S", Rows: [][]int{{2, 5}, {4, 6}}}}); err != nil {
		t.Fatal(err)
	}
	snap, _ := d.At(0)
	if snap.DB["S"].Size() != 0 || snap.DB["S"].Rows() != nil {
		t.Fatalf("S not empty: %v", snap.DB["S"].Rows())
	}
	if _, err := d.Mutate([]Mutation{{Op: "insert", Rel: "S", Rows: [][]int{{8, 9}}}}); err != nil {
		t.Fatal(err)
	}
	snap, _ = d.At(0)
	if got := snap.DB["S"].Sorted(); !reflect.DeepEqual(got, [][]int{{8, 9}}) {
		t.Fatalf("S refilled = %v", got)
	}
}

// Satellite edge case: pinning an evicted or future version is a clear
// error, never a different version's rows.
func TestVersionPinningErrors(t *testing.T) {
	g := newTestRegistry() // Retain: 3
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	for i := 0; i < 5; i++ {
		if _, err := d.Mutate([]Mutation{{Op: "insert", Rel: "R", Rows: [][]int{{10 + i, i}}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Versions now 1..6; retain 3 keeps 4, 5, 6.
	if _, err := d.At(2); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("At(evicted) = %v, want ErrVersionGone", err)
	}
	if _, err := d.At(99); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("At(future) = %v, want ErrFutureVersion", err)
	}
	snap, err := d.At(5)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 5 || snap.DB["R"].Size() != 2+4 {
		t.Fatalf("At(5) = version %d with %d rows", snap.Version, snap.DB["R"].Size())
	}
	// Replacement evicts every pinnable version.
	g.Put("", "d", mustDB(t, twoRelText))
	if _, err := d.At(5); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("At(pre-replacement) = %v, want ErrVersionGone", err)
	}
}

// Satellite edge case: a mutation racing a long-running query — the
// query's resolved snapshot must keep serving its version's rows while
// the writer advances (snapshot isolation), under -race.
func TestMutationRacesPinnedQuery(t *testing.T) {
	g := newTestRegistry()
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	snap, err := d.At(0)
	if err != nil {
		t.Fatal(err)
	}
	wantR := snap.DB["R"].Sorted()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			d.Mutate([]Mutation{
				{Op: "insert", Rel: "R", Rows: [][]int{{100 + i, i}}},
				{Op: "delete", Rel: "R", Rows: [][]int{{100 + i - 1, i - 1}}},
			})
		}
	}()
	for i := 0; i < 200; i++ {
		if got := snap.DB["R"].Sorted(); !reflect.DeepEqual(got, wantR) {
			t.Fatalf("pinned snapshot drifted at read %d", i)
		}
	}
	wg.Wait()
	if v := d.Version(); v != 51 {
		t.Fatalf("version = %d, want 51", v)
	}
}

func TestMutateValidationLeavesStateUntouched(t *testing.T) {
	g := newTestRegistry()
	g.Put("", "d", mustDB(t, twoRelText))
	d, _ := g.Get("", "d")
	cases := [][]Mutation{
		{{Op: "upsert", Rel: "R", Rows: [][]int{{1, 2}}}},
		{{Op: "insert", Rel: "nope", Rows: [][]int{{1, 2}}}},
		{{Op: "insert", Rel: "R", Rows: [][]int{{1, 2, 3}}}},
		// A valid first op must not apply when a later op is invalid.
		{{Op: "insert", Rel: "R", Rows: [][]int{{7, 7}}}, {Op: "insert", Rel: "R", Rows: [][]int{{1}}}},
	}
	for i, batch := range cases {
		if _, err := d.Mutate(batch); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("version advanced to %d on invalid batches", v)
	}
	snap, _ := d.At(0)
	if snap.DB["R"].Size() != 2 {
		t.Fatal("invalid batch mutated rows")
	}
}

func TestRegistryLimits(t *testing.T) {
	g := NewRegistry(Config{MaxDatasets: 1, MaxTuples: 3})
	if _, err := g.Put("", "a", mustDB(t, "rel R(a)\n1\n2\nend\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Put("", "b", mustDB(t, "rel R(a)\n1\nend\n")); !errors.Is(err, ErrLimit) {
		t.Fatalf("MaxDatasets breach = %v, want ErrLimit", err)
	}
	d, _ := g.Get("", "a")
	if _, err := d.Mutate([]Mutation{{Op: "insert", Rel: "R", Rows: [][]int{{3}, {4}}}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("MaxTuples breach = %v, want ErrLimit", err)
	}
	// One insert fits (2 live + 1 = 3).
	if _, err := d.Mutate([]Mutation{{Op: "insert", Rel: "R", Rows: [][]int{{3}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Put("", "big", mustDB(t, "rel R(a)\n1\n2\n3\n4\nend\n")); !errors.Is(err, ErrLimit) {
		t.Fatalf("Put over MaxTuples = %v, want ErrLimit", err)
	}
}

func TestValidNames(t *testing.T) {
	g := newTestRegistry()
	for _, bad := range []string{"", string(make([]byte, 200)), "a\nb", "a\x00b"} {
		if _, err := g.Put("", bad, mustDB(t, twoRelText)); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
}

func TestParseCacheHitAndCoalesce(t *testing.T) {
	p := NewParseCache(2)
	ctx := context.Background()

	db1, err := p.Parse(ctx, twoRelText)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := p.Parse(ctx, twoRelText)
	if err != nil {
		t.Fatal(err)
	}
	// Not just equal — the same parsed object, indexes and all.
	if !reflect.DeepEqual(db1, db2) || db1["R"] != db2["R"] {
		t.Fatal("repeat parse did not share the cached database")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// Errors are returned, not cached.
	if _, err := p.Parse(ctx, "rel broken(\n"); err == nil {
		t.Fatal("malformed text parsed")
	}
	if _, err := p.Parse(ctx, "rel broken(\n"); err == nil {
		t.Fatal("malformed text cached as success")
	}

	// Eviction past capacity.
	p.Parse(ctx, "rel A(a)\n1\nend\n")
	p.Parse(ctx, "rel B(a)\n1\nend\n")
	before := p.Stats().Hits
	p.Parse(ctx, twoRelText) // evicted by A/B, re-parsed
	if p.Stats().Hits != before {
		t.Fatal("evicted entry served as a hit")
	}
}

func TestParseCacheConcurrentIdentical(t *testing.T) {
	p := NewParseCache(4)
	const n = 16
	var wg sync.WaitGroup
	dbs := make([]join.Database, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, err := p.Parse(context.Background(), twoRelText)
			if err != nil {
				t.Error(err)
				return
			}
			dbs[i] = db
		}(i)
	}
	wg.Wait()
	st := p.Stats()
	if st.Misses+st.Hits+st.Coalesced < n {
		t.Fatalf("stats don't cover all calls: %+v", st)
	}
	if st.Misses > n/2 {
		t.Fatalf("%d misses across %d concurrent identical parses — no sharing", st.Misses, n)
	}
}
