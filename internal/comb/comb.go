// Package comb enumerates the λ-label candidate space of the decomposition
// algorithms: all subsets of size 1..k of an m-element candidate edge list.
//
// The space is totally ordered (all size-1 subsets in lexicographic order,
// then all size-2 subsets, and so on), and ranks in [0, Total()) can be
// unranked directly via binomial combinadics. This gives exact, contiguous
// partitioning of the search space across parallel workers with no
// coordination — the property the paper's Appendix D.1 relies on for
// linear scaling of the separator search.
package comb

import "math"

// Binomial returns C(n, k), saturating at math.MaxInt64 on overflow.
// Out-of-range arguments yield 0.
func Binomial(n, k int) int64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		// r = r * (n-k+i) / i, guarding overflow on the multiply.
		f := int64(n - k + i)
		if r > math.MaxInt64/f {
			return math.MaxInt64
		}
		r = r * f / int64(i)
	}
	return r
}

// Space describes the set of subsets of {0..M-1} with size in [1, K].
type Space struct {
	M, K int
}

// Total returns the number of subsets in the space, saturating at
// math.MaxInt64.
func (s Space) Total() int64 {
	var t int64
	for sz := 1; sz <= s.K && sz <= s.M; sz++ {
		b := Binomial(s.M, sz)
		if t > math.MaxInt64-b {
			return math.MaxInt64
		}
		t += b
	}
	return t
}

// sizeOf locates the subset size holding global rank r and returns the
// size together with the rank local to that size class.
func (s Space) sizeOf(r int64) (size int, local int64) {
	for sz := 1; sz <= s.K && sz <= s.M; sz++ {
		b := Binomial(s.M, sz)
		if r < b {
			return sz, r
		}
		r -= b
	}
	return -1, 0
}

// Unrank writes the subset with global rank r into dst (which must have
// capacity >= K) and returns it. Elements are in increasing order.
// It panics if r is out of range.
func (s Space) Unrank(r int64, dst []int) []int {
	size, local := s.sizeOf(r)
	if size < 0 {
		panic("comb: rank out of range")
	}
	dst = dst[:0]
	v := 0
	for pos := 0; pos < size; pos++ {
		for {
			c := Binomial(s.M-1-v, size-1-pos)
			if local < c {
				dst = append(dst, v)
				v++
				break
			}
			local -= c
			v++
		}
	}
	return dst
}

// Rank is the inverse of Unrank: it returns the global rank of the given
// strictly increasing subset. It is used in tests to verify the bijection.
func (s Space) Rank(subset []int) int64 {
	size := len(subset)
	var r int64
	for sz := 1; sz < size; sz++ {
		r += Binomial(s.M, sz)
	}
	prev := 0
	for pos, v := range subset {
		for w := prev; w < v; w++ {
			r += Binomial(s.M-1-w, size-1-pos)
		}
		prev = v + 1
	}
	return r
}

// Iter walks a contiguous rank range of a Space. After the first Unrank,
// successive subsets are produced by the classic next-combination step,
// which is O(size) amortised — far cheaper than unranking every rank.
type Iter struct {
	space Space
	next  int64 // next global rank to produce
	hi    int64 // exclusive upper bound
	cur   []int
	size  int
	fresh bool // cur not yet produced
}

// NewIter returns an iterator over ranks [lo, hi) of the space.
func NewIter(s Space, lo, hi int64) *Iter {
	t := s.Total()
	if hi > t {
		hi = t
	}
	if lo < 0 {
		lo = 0
	}
	it := &Iter{space: s, next: lo, hi: hi, cur: make([]int, 0, s.K)}
	if lo < hi {
		it.cur = s.Unrank(lo, it.cur)
		it.size = len(it.cur)
		it.fresh = true
	}
	return it
}

// Next returns the next subset in the range, or nil when exhausted. The
// returned slice is reused between calls; callers must not retain it.
func (it *Iter) Next() []int {
	if it.next >= it.hi {
		return nil
	}
	if it.fresh {
		it.fresh = false
		it.next++
		return it.cur
	}
	// Advance cur to the lexicographic successor within its size class,
	// rolling over to the first subset of the next size when exhausted.
	m, size := it.space.M, it.size
	i := size - 1
	for i >= 0 && it.cur[i] == m-size+i {
		i--
	}
	if i < 0 {
		// First subset of the next size: {0, 1, ..., size}.
		size++
		it.size = size
		it.cur = it.cur[:0]
		for v := 0; v < size; v++ {
			it.cur = append(it.cur, v)
		}
	} else {
		it.cur[i]++
		for j := i + 1; j < size; j++ {
			it.cur[j] = it.cur[j-1] + 1
		}
	}
	it.next++
	return it.cur
}

// Split partitions the full space into n contiguous, near-equal rank
// ranges and returns one iterator per non-empty range.
func Split(s Space, n int) []*Iter {
	if n < 1 {
		n = 1
	}
	total := s.Total()
	iters := make([]*Iter, 0, n)
	for i := 0; i < n; i++ {
		lo := total * int64(i) / int64(n)
		hi := total * int64(i+1) / int64(n)
		if lo < hi {
			iters = append(iters, NewIter(s, lo, hi))
		}
	}
	return iters
}
