package comb

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {3, 4, 0}, {-1, 0, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	for n := 0; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			if Binomial(n, k) != Binomial(n, n-k) {
				t.Fatalf("C(%d,%d) != C(%d,%d)", n, k, n, n-k)
			}
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 1; k <= n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestBinomialSaturates(t *testing.T) {
	if got := Binomial(500, 250); got != math.MaxInt64 {
		t.Fatalf("C(500,250) should saturate, got %d", got)
	}
}

func TestSpaceTotal(t *testing.T) {
	// C(4,1)+C(4,2) = 4+6 = 10
	if got := (Space{M: 4, K: 2}).Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	// K > M clamps: subsets of sizes 1..3 of 3 elements = 2^3-1 = 7
	if got := (Space{M: 3, K: 5}).Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if got := (Space{M: 0, K: 3}).Total(); got != 0 {
		t.Fatalf("Total of empty space = %d, want 0", got)
	}
}

func TestIterEnumeratesWholeSpace(t *testing.T) {
	s := Space{M: 6, K: 3}
	it := NewIter(s, 0, s.Total())
	var got [][]int
	for c := it.Next(); c != nil; c = it.Next() {
		cp := append([]int(nil), c...)
		got = append(got, cp)
	}
	want := int(s.Total())
	if len(got) != want {
		t.Fatalf("enumerated %d subsets, want %d", len(got), want)
	}
	// Sizes must be non-decreasing, each subset strictly increasing, all unique.
	seen := map[string]bool{}
	lastSize := 0
	for _, c := range got {
		if len(c) < lastSize {
			t.Fatalf("size decreased: %v after size %d", c, lastSize)
		}
		lastSize = len(c)
		for i := 1; i < len(c); i++ {
			if c[i] <= c[i-1] {
				t.Fatalf("subset not strictly increasing: %v", c)
			}
		}
		key := ""
		for _, v := range c {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %v", c)
		}
		seen[key] = true
	}
}

func TestUnrankMatchesIteration(t *testing.T) {
	s := Space{M: 7, K: 4}
	it := NewIter(s, 0, s.Total())
	buf := make([]int, 0, s.K)
	for r := int64(0); r < s.Total(); r++ {
		fromIter := it.Next()
		fromUnrank := s.Unrank(r, buf)
		if !reflect.DeepEqual(fromIter, fromUnrank) {
			t.Fatalf("rank %d: iter %v != unrank %v", r, fromIter, fromUnrank)
		}
	}
	if it.Next() != nil {
		t.Fatal("iterator should be exhausted")
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	s := Space{M: 9, K: 3}
	buf := make([]int, 0, s.K)
	for r := int64(0); r < s.Total(); r++ {
		sub := s.Unrank(r, buf)
		if got := s.Rank(sub); got != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
		}
	}
}

func TestSplitCoversSpaceExactly(t *testing.T) {
	s := Space{M: 8, K: 3}
	for _, workers := range []int{1, 2, 3, 5, 16, 1000} {
		var all [][]int
		for _, it := range Split(s, workers) {
			for c := it.Next(); c != nil; c = it.Next() {
				all = append(all, append([]int(nil), c...))
			}
		}
		if int64(len(all)) != s.Total() {
			t.Fatalf("workers=%d: got %d subsets, want %d", workers, len(all), s.Total())
		}
		// Uniqueness check via sorting a canonical encoding.
		keys := make([]string, len(all))
		for i, c := range all {
			k := ""
			for _, v := range c {
				k += string(rune('a'+v)) + ","
			}
			keys[i] = k
		}
		sort.Strings(keys)
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				t.Fatalf("workers=%d: duplicate subset across ranges: %q", workers, keys[i])
			}
		}
	}
}

func TestIterEmptyRange(t *testing.T) {
	s := Space{M: 5, K: 2}
	it := NewIter(s, 3, 3)
	if it.Next() != nil {
		t.Fatal("empty range should yield nothing")
	}
	it = NewIter(s, s.Total(), s.Total()+10)
	if it.Next() != nil {
		t.Fatal("out-of-range should yield nothing")
	}
}

func TestQuickRankUnrankBijection(t *testing.T) {
	prop := func(mRaw, kRaw uint8, rRaw uint32) bool {
		m := int(mRaw%20) + 1
		k := int(kRaw%6) + 1
		s := Space{M: m, K: k}
		total := s.Total()
		if total == 0 {
			return true
		}
		r := int64(rRaw) % total
		sub := s.Unrank(r, nil)
		if int64(len(sub)) == 0 || len(sub) > k {
			return false
		}
		return s.Rank(sub) == r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitPreservesOrderWithinRange(t *testing.T) {
	prop := func(mRaw, kRaw, wRaw uint8) bool {
		m := int(mRaw%15) + 1
		k := int(kRaw%4) + 1
		w := int(wRaw%7) + 1
		s := Space{M: m, K: k}
		count := int64(0)
		for _, it := range Split(s, w) {
			for c := it.Next(); c != nil; c = it.Next() {
				count++
				_ = c
			}
		}
		return count == s.Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIterate(b *testing.B) {
	s := Space{M: 40, K: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewIter(s, 0, s.Total())
		for c := it.Next(); c != nil; c = it.Next() {
			_ = c
		}
	}
}

func BenchmarkUnrank(b *testing.B) {
	s := Space{M: 100, K: 5}
	total := s.Total()
	r := rand.New(rand.NewSource(7))
	buf := make([]int, 0, s.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Unrank(r.Int63n(total), buf)
	}
}
