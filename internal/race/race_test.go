package race

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/opt"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func chain(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa(i+1))
	}
	return b.Build()
}

func clique(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge("", "v"+strconv.Itoa(i), "v"+strconv.Itoa(j))
		}
	}
	return b.Build()
}

func cylinder(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(j))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(j))
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return b.Build()
}

func grid(m int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	name := func(i, j int) string { return "g" + strconv.Itoa(i) + "_" + strconv.Itoa(j) }
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j+1 < m {
				b.MustAddEdge("", name(i, j), name(i, j+1))
			}
			if i+1 < m {
				b.MustAddEdge("", name(i, j), name(i+1, j))
			}
		}
	}
	return b.Build()
}

// TestRaceMatchesSerialOptimum is the core correctness test: on
// instances with known widths the racer must agree with the serial
// optimal solver and produce a CheckHD-valid witness of exactly that
// width, across probe-count and worker configurations.
func TestRaceMatchesSerialOptimum(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"chain-8", chain(8), 1},
		{"cycle-12", cycle(12), 2},
		{"clique-5", clique(5), 3},
		{"cylinder-8", cylinder(8), 3},
	}
	ctx := context.Background()
	for _, tc := range cases {
		wantW, _, ok, err := opt.New(tc.h, 6).Solve(ctx)
		if err != nil || !ok {
			t.Fatalf("%s: serial oracle failed: ok=%v err=%v", tc.name, ok, err)
		}
		if wantW != tc.want {
			t.Fatalf("%s: oracle width %d, expected %d", tc.name, wantW, tc.want)
		}
		for _, probes := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4} {
				res, err := New(tc.h, Config{
					KMax: 6, MaxProbes: probes, Workers: workers,
				}).Solve(ctx)
				if err != nil {
					t.Fatalf("%s probes=%d workers=%d: %v", tc.name, probes, workers, err)
				}
				if !res.Found || res.Width != wantW {
					t.Fatalf("%s probes=%d workers=%d: found=%v width=%d, want %d",
						tc.name, probes, workers, res.Found, res.Width, wantW)
				}
				if err := decomp.CheckHD(res.Decomp); err != nil {
					t.Fatalf("%s probes=%d: invalid witness: %v", tc.name, probes, err)
				}
				if err := decomp.CheckWidth(res.Decomp, wantW); err != nil {
					t.Fatalf("%s probes=%d: witness too wide: %v", tc.name, probes, err)
				}
				if res.LowerBound != wantW {
					t.Fatalf("%s probes=%d: lower bound %d, want %d", tc.name, probes, res.LowerBound, wantW)
				}
				wantSrc := BoundProbe
				if wantW == 1 {
					wantSrc = BoundTrivial
				}
				if res.LowerBoundFrom != wantSrc {
					t.Fatalf("%s probes=%d: provenance %v, want %v", tc.name, probes, res.LowerBoundFrom, wantSrc)
				}
			}
		}
	}
}

// TestRaceUnsolvableWithinKMax: when hw(H) > KMax the racer must refute
// every width up to KMax and report Found=false with the bound banked.
func TestRaceUnsolvableWithinKMax(t *testing.T) {
	res, err := New(clique(5), Config{KMax: 2, MaxProbes: 2}).Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("clique(5) has hw 3, must not be found at KMax 2")
	}
	if res.LowerBound != 3 {
		t.Fatalf("lower bound %d, want 3 (both widths refuted)", res.LowerBound)
	}
	if res.LowerBoundFrom != BoundProbe {
		t.Fatalf("provenance %v, want probe", res.LowerBoundFrom)
	}
}

// TestRaceTrustsInitialBounds: a cached lower bound skips the
// refutation work entirely and is reported with memo provenance.
func TestRaceTrustsInitialBounds(t *testing.T) {
	h := cylinder(8) // hw 3
	res, err := New(h, Config{KMax: 6, MaxProbes: 3, LowerBound: 3, UpperBoundHint: 3}).Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Width != 3 {
		t.Fatalf("found=%v width=%d, want width 3", res.Found, res.Width)
	}
	if res.LowerBoundFrom != BoundInitial {
		t.Fatalf("provenance %v, want memo (initial bound)", res.LowerBoundFrom)
	}
	for _, p := range res.Probes {
		if p.K != 3 {
			t.Fatalf("probe at width %d launched despite bounds pinning the race to 3", p.K)
		}
	}
	// A cached bound proving hw > KMax short-circuits with no probes.
	res, err = New(h, Config{KMax: 2, LowerBound: 3}).Solve(context.Background())
	if err != nil || res.Found || len(res.Probes) != 0 {
		t.Fatalf("short-circuit failed: err=%v found=%v probes=%d", err, res.Found, len(res.Probes))
	}
}

// countingTokens wraps a pool and tracks outstanding tokens so tests
// can prove the racer never leaks worker tokens, even on error paths.
type countingTokens struct {
	src logk.TokenSource
	out atomic.Int64
}

func (c *countingTokens) TryAcquire(max int) int {
	n := c.src.TryAcquire(max)
	c.out.Add(int64(n))
	return n
}

func (c *countingTokens) Release(n int) {
	c.out.Add(-int64(n))
	c.src.Release(n)
}

// TestRaceDeadlineReturnsPartialBounds: a hopeless deadline surfaces
// the context error but still banks whatever was proven, and every
// shared token is back in the pool when Solve returns.
func TestRaceDeadlineReturnsPartialBounds(t *testing.T) {
	tokens := &countingTokens{src: logk.NewTokenPool(4)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := New(grid(8), Config{KMax: 6, MaxProbes: 3, Workers: 4, Tokens: tokens}).Solve(ctx)
	if err == nil {
		t.Skip("8x8 grid raced to completion in 30ms; timeout path not exercised")
	}
	if res.Found {
		t.Fatal("timed-out race cannot claim the optimum")
	}
	if res.LowerBound < 1 {
		t.Fatalf("lower bound %d must stay at least trivial", res.LowerBound)
	}
	if got := tokens.out.Load(); got != 0 {
		t.Fatalf("%d tokens still outstanding after Solve returned", got)
	}
}

// TestRaceSharedMemoInjection: refutations performed by a race must
// land in the injected per-width memo backends, and a second race
// seeded with those tables must hit them.
func TestRaceSharedMemoInjection(t *testing.T) {
	h := cycle(16) // hw 2
	tables := map[int]*logk.ShardedMemo{}
	memoFor := func(k int) logk.MemoBackend {
		if tables[k] == nil {
			tables[k] = new(logk.ShardedMemo)
		}
		return tables[k]
	}
	ctx := context.Background()
	res, err := New(h, Config{KMax: 4, MaxProbes: 1, MemoFor: memoFor}).Solve(ctx)
	if err != nil || !res.Found || res.Width != 2 {
		t.Fatalf("first race: err=%v found=%v width=%d", err, res.Found, res.Width)
	}
	if tables[1] == nil || tables[1].Len() == 0 {
		t.Fatal("refuting width 1 should have populated the width-1 memo table")
	}
	second, err := New(h, Config{KMax: 4, MaxProbes: 1, MemoFor: memoFor}).Solve(ctx)
	if err != nil || !second.Found || second.Width != 2 {
		t.Fatalf("second race: err=%v found=%v width=%d", err, second.Found, second.Width)
	}
	var hits int64
	for _, p := range second.Probes {
		hits += p.Stats.MemoHits
	}
	if hits == 0 {
		t.Fatal("second race should hit the shared memo tables")
	}
}

// TestRaceCancelsMootProbes: with wide racing on an easy instance, the
// probes made moot by the winner must be reported, and the outcome
// split must cover every launched probe.
func TestRaceCancelsMootProbes(t *testing.T) {
	res, err := New(cylinder(12), Config{KMax: 6, MaxProbes: 6, Workers: 2}).Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Width != 3 {
		t.Fatalf("found=%v width=%d, want 3", res.Found, res.Width)
	}
	counts := map[Outcome]int{}
	for _, p := range res.Probes {
		counts[p.Outcome]++
	}
	if got := counts[Cancelled]; got != res.Cancelled {
		t.Fatalf("Cancelled=%d but %d probes report cancelled", res.Cancelled, got)
	}
	if counts[Found] == 0 || counts[Refuted] == 0 {
		t.Fatalf("expected both found and refuted probes, got %v", counts)
	}
}

// TestNextWidthLadder pins the deterministic probe ladder: frontier
// first, then bisection, then ascending fill.
func TestNextWidthLadder(t *testing.T) {
	probed := map[int]bool{}
	running := map[int]*probeHandle{}
	order := []int{}
	for {
		k, ok := nextWidth(1, 7, 6, probed, running)
		if !ok {
			break
		}
		probed[k] = true
		order = append(order, k)
	}
	want := []int{1, 4, 2, 3, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("ladder %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ladder %v, want %v", order, want)
		}
	}
	// Bounds clamp the ladder: nothing below lb or at/above ub.
	if k, ok := nextWidth(3, 4, 6, map[int]bool{}, running); !ok || k != 3 {
		t.Fatalf("clamped ladder picked %d (ok=%v), want 3", k, ok)
	}
	if _, ok := nextWidth(4, 4, 6, map[int]bool{}, running); ok {
		t.Fatal("empty interval must yield no probe")
	}
}

// TestOptimalWrapper covers the one-shot helper.
func TestOptimalWrapper(t *testing.T) {
	w, d, ok, err := Optimal(context.Background(), cycle(10), Config{KMax: 4})
	if err != nil || !ok || w != 2 {
		t.Fatalf("ok=%v w=%d err=%v", ok, w, err)
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := Optimal(context.Background(), clique(5), Config{KMax: 2}); err != nil || ok {
		t.Fatalf("clique(5) at KMax 2: ok=%v err=%v", ok, err)
	}
}
