// Package race computes the exact hypertree width hw(H) by racing
// width-bound probes against each other instead of probing widths
// serially. The paper's evaluation (§5.1) counts an instance as solved
// only when the optimal-width HD is found *and* every smaller width is
// refuted; a serial k = 1..kmax ladder pays for those refutations one
// after another, while the refutations and the witness search are
// independent and embarrassingly parallel. The racer runs several
// log-k-decomp probes concurrently, shares a live lower/upper bound
// pair between them, and cancels any probe made moot by a sibling's
// result:
//
//   - a probe that finds an HD of width w lowers the upper bound to w
//     and kills every probe at width ≥ w (their witnesses are redundant);
//   - a probe that refutes width k raises the lower bound to k+1 and
//     kills every probe at width ≤ k (hw > k implies hw > k' for k' < k,
//     following the bound-sharing idea of Gottlob & Samer's backtracking
//     optimal search).
//
// The race is over when the bounds meet: lb = ub with a witness at ub.
//
// Cancellation is two-stage: the moot probe's context is cancelled, and
// its token gate (logk.GatedTokens) is closed so it stops acquiring new
// search workers immediately, returning its parallelism to the
// surviving probes. All probes can share one logk.TokenSource and
// per-width logk.MemoBackend tables, which is how the service layer
// races many jobs against a single machine-wide worker budget and feeds
// every refutation into its cross-request negative-memo cache.
package race
