package race

import (
	"context"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
)

// BoundSource says how the racer's final lower bound was established —
// the provenance the harness reports for "proven optimal" claims.
type BoundSource int

const (
	// BoundTrivial: the lower bound is the trivial hw ≥ 1 (the optimum
	// was width 1, so there was nothing to refute).
	BoundTrivial BoundSource = iota
	// BoundInitial: the caller-supplied initial bound (a bounds-cache or
	// memo hit in the service layer) was already tight; no probe had to
	// refute anything.
	BoundInitial
	// BoundProbe: a probe refuted width optimum-1 during this race.
	BoundProbe
)

func (b BoundSource) String() string {
	switch b {
	case BoundInitial:
		return "memo"
	case BoundProbe:
		return "probe"
	}
	return "trivial"
}

// Outcome is the terminal state of one launched probe.
type Outcome int

const (
	// Found: the probe produced an HD within its width bound.
	Found Outcome = iota
	// Refuted: the probe exhausted the search space; hw > its width.
	Refuted
	// Cancelled: a sibling's result made the probe moot before it
	// finished.
	Cancelled
	// Failed: the probe aborted on a real error (deadline, outer
	// cancellation) — not a moot kill; the race cannot conclude.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Found:
		return "found"
	case Refuted:
		return "refuted"
	case Failed:
		return "failed"
	}
	return "cancelled"
}

// ProbeReport describes one launched probe after the race.
type ProbeReport struct {
	K       int
	Outcome Outcome
	Elapsed time.Duration
	Stats   logk.Stats
}

// Config parameterises a race. KMax is required; everything else
// defaults sensibly.
type Config struct {
	// KMax bounds the width search: the racer decides hw(H) exactly when
	// hw(H) ≤ KMax and reports Found=false otherwise.
	KMax int
	// MaxProbes bounds how many width probes run concurrently.
	// Default: min(3, KMax).
	MaxProbes int
	// Workers caps one probe's internal search parallelism (logk
	// Options.Workers). Default 1. Extra workers beyond each probe's own
	// goroutine come from Tokens.
	Workers int
	// Hybrid and HybridThreshold configure det-k-decomp hybridisation
	// inside each probe, as in logk.Options.
	Hybrid          logk.HybridMetric
	HybridThreshold float64
	// Tokens is the shared extra-worker pool all probes draw from. Nil
	// creates a private pool of Workers-1 tokens shared across the
	// probes, so the race as a whole never uses more than Workers extra
	// goroutines plus one per live probe.
	Tokens logk.TokenSource
	// MemoFor, when non-nil, supplies the negative-memo backend for the
	// probe at width k. The service layer injects its cross-request
	// tables here, so refutations performed by one race accelerate every
	// later job on the same hypergraph.
	MemoFor func(k int) logk.MemoBackend
	// LowerBound, when > 1, asserts that all widths < LowerBound are
	// already refuted (e.g. by a previous race recorded in a bounds
	// cache). The racer trusts it and starts probing at LowerBound.
	LowerBound int
	// UpperBoundHint, when in [1, KMax], asserts that an HD of that
	// width is known to exist. The racer still has to re-find a witness
	// (hints carry no decomposition), but it never probes above the hint.
	UpperBoundHint int
}

// Result is the outcome of a race. Width/Decomp/Found describe the
// optimum; LowerBound and Probes survive even when the race fails with
// an error, so partial progress (refuted widths) can be banked by the
// caller.
type Result struct {
	// Width is hw(H) when Found.
	Width int
	// Decomp is a CheckHD-valid witness of width exactly Width.
	Decomp *decomp.Decomp
	// Found reports hw(H) ≤ KMax.
	Found bool
	// LowerBound is the final proven bound: all widths < LowerBound are
	// refuted. When Found, LowerBound == Width.
	LowerBound int
	// LowerBoundFrom is the provenance of the final lower bound.
	LowerBoundFrom BoundSource
	// BestWidth is the smallest width with a found witness so far (0 if
	// none); on a timeout it may exceed the yet-unknown optimum.
	BestWidth int
	// Probes reports every launched probe.
	Probes []ProbeReport
	// Cancelled counts probes killed as moot by a sibling's result (or
	// by the race shutting down); probes that aborted on real errors
	// report Failed and are not counted here.
	Cancelled int
}

// Racer races width probes for one hypergraph. Create with New; one
// Solve call per Racer.
type Racer struct {
	h   *hypergraph.Hypergraph
	cfg Config
}

// New returns a Racer for h.
func New(h *hypergraph.Hypergraph, cfg Config) *Racer {
	if cfg.KMax < 1 {
		panic("race: KMax must be >= 1")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxProbes < 1 {
		cfg.MaxProbes = 3
	}
	if cfg.MaxProbes > cfg.KMax {
		cfg.MaxProbes = cfg.KMax
	}
	if cfg.LowerBound < 1 {
		cfg.LowerBound = 1
	}
	if cfg.Tokens == nil {
		cfg.Tokens = logk.NewTokenPool(cfg.Workers - 1)
	}
	return &Racer{h: h, cfg: cfg}
}

// probeDone carries one probe's result back to the race loop.
type probeDone struct {
	k       int
	d       *decomp.Decomp
	ok      bool
	err     error
	stats   logk.Stats
	elapsed time.Duration
}

// probeHandle is the race loop's grip on a live probe.
type probeHandle struct {
	cancel context.CancelFunc
	gate   *logk.GatedTokens
	moot   bool
}

// Solve runs the race. The returned Result is meaningful even when err
// is non-nil: LowerBound, BestWidth and Probes reflect the partial
// progress made before the deadline or cancellation hit.
func (r *Racer) Solve(ctx context.Context) (Result, error) {
	res := Result{LowerBound: r.cfg.LowerBound}
	if r.cfg.LowerBound > 1 {
		res.LowerBoundFrom = BoundInitial
	}
	if res.LowerBound > r.cfg.KMax {
		// The caller's cached bound already proves hw > KMax.
		return res, nil
	}

	ub := r.cfg.KMax + 1 // smallest width with a witness in hand
	hint := r.cfg.KMax
	if r.cfg.UpperBoundHint >= 1 && r.cfg.UpperBoundHint < hint {
		hint = r.cfg.UpperBoundHint
	}

	running := map[int]*probeHandle{}
	done := make(chan probeDone)
	launch := func(k int) {
		pctx, cancel := context.WithCancel(ctx)
		gate := logk.NewGatedTokens(r.cfg.Tokens)
		opts := logk.Options{
			K:               k,
			Workers:         r.cfg.Workers,
			Hybrid:          r.cfg.Hybrid,
			HybridThreshold: r.cfg.HybridThreshold,
			Tokens:          gate,
		}
		if r.cfg.MemoFor != nil {
			opts.Memo = r.cfg.MemoFor(k)
		}
		running[k] = &probeHandle{cancel: cancel, gate: gate}
		go func() {
			solver := logk.New(r.h, opts)
			start := time.Now()
			d, ok, err := solver.Decompose(pctx)
			done <- probeDone{k: k, d: d, ok: ok, err: err,
				stats: solver.Stats(), elapsed: time.Since(start)}
		}()
	}
	// kill marks a live probe moot and starts winding it down: the token
	// gate closes first so it stops grabbing workers, then its context
	// is cancelled. The probe still reports on the done channel.
	kill := func(k int) {
		h := running[k]
		if h == nil || h.moot {
			return
		}
		h.moot = true
		h.gate.Close()
		h.cancel()
	}
	// drain cancels everything still live and waits it out, so shared
	// tokens are back in the pool before Solve returns.
	drain := func() {
		for k := range running {
			kill(k)
		}
		for len(running) > 0 {
			pd := <-done
			h := running[pd.k]
			delete(running, pd.k)
			res.recordDrained(pd, h)
		}
	}

	probed := map[int]bool{} // widths launched at any point
	var raceErr error
	for {
		// Fill free probe slots with the most informative unknown widths.
		for len(running) < r.cfg.MaxProbes {
			k, ok := nextWidth(res.LowerBound, ub, hint, probed, running)
			if !ok {
				break
			}
			probed[k] = true
			launch(k)
		}
		if len(running) == 0 {
			break // bounds met (or lb passed KMax): the race is decided
		}

		pd := <-done
		h := running[pd.k]
		delete(running, pd.k)
		report := ProbeReport{K: pd.k, Elapsed: pd.elapsed, Stats: pd.stats}

		switch {
		case pd.err != nil:
			if h.moot {
				// Killed as moot; its abort is bookkeeping, not failure.
				report.Outcome = Cancelled
				res.Cancelled++
				res.Probes = append(res.Probes, report)
				continue
			}
			// A real deadline/cancellation (or solver failure): the race
			// cannot decide optimality any more. Bank partial bounds.
			report.Outcome = Failed
			res.Probes = append(res.Probes, report)
			raceErr = pd.err
			drain()
			return res, raceErr
		case pd.ok:
			report.Outcome = Found
			res.Probes = append(res.Probes, report)
			// The witness width can undercut the probe's bound.
			w := pd.d.Width()
			if w > pd.k {
				w = pd.k // defensive; Width() never exceeds K for valid HDs
			}
			if w < ub {
				ub = w
				res.Decomp = pd.d
				res.BestWidth = w
			}
			for k := range running {
				if k >= ub {
					kill(k)
				}
			}
		default:
			report.Outcome = Refuted
			res.Probes = append(res.Probes, report)
			if pd.k+1 > res.LowerBound {
				res.LowerBound = pd.k + 1
				res.LowerBoundFrom = BoundProbe
			}
			for k := range running {
				if k < res.LowerBound {
					kill(k)
				}
			}
		}
	}

	if res.Decomp != nil && res.LowerBound >= ub {
		res.Found = true
		res.Width = ub
		if res.Width == 1 {
			res.LowerBoundFrom = BoundTrivial
		}
	}
	return res, nil
}

// recordDrained books a probe result that arrives while the race is
// shutting down.
func (res *Result) recordDrained(pd probeDone, h *probeHandle) {
	report := ProbeReport{K: pd.k, Elapsed: pd.elapsed, Stats: pd.stats}
	switch {
	case pd.err != nil || (h != nil && h.moot):
		report.Outcome = Cancelled
		res.Cancelled++
	case pd.ok:
		report.Outcome = Found
		w := pd.d.Width()
		if res.BestWidth == 0 || w < res.BestWidth {
			res.BestWidth = w
			res.Decomp = pd.d
		}
	default:
		report.Outcome = Refuted
		if pd.k+1 > res.LowerBound {
			res.LowerBound = pd.k + 1
			res.LowerBoundFrom = BoundProbe
		}
	}
	res.Probes = append(res.Probes, report)
}

// nextWidth picks the next width to probe, or ok=false when every
// useful width is covered. The ladder is deterministic:
//
//  1. the lower-bound frontier lb itself (the probe whose refutation
//     tightens the bound, and whose success ends the race);
//  2. the hinted/known upper region's midpoint — a bisection step that
//     either finds a witness quickly (halving the open interval from
//     above) or refutes half the interval at once;
//  3. ascending fill of whatever is left.
//
// Only widths in [lb, min(ub-1, hint)] are ever probed: below lb is
// refuted, at or above ub a witness exists already.
func nextWidth(lb, ub, hint int, probed map[int]bool, running map[int]*probeHandle) (int, bool) {
	top := ub - 1
	if hint < top {
		top = hint
	}
	free := func(k int) bool { return !probed[k] && running[k] == nil }
	if lb <= top && free(lb) {
		return lb, true
	}
	if mid := (lb + top + 1) / 2; mid >= lb && mid <= top && free(mid) {
		return mid, true
	}
	for k := lb; k <= top; k++ {
		if free(k) {
			return k, true
		}
	}
	return 0, false
}

// Optimal is the one-shot convenience wrapper: race widths 1..kMax and
// return the paper's "solved" tuple.
func Optimal(ctx context.Context, h *hypergraph.Hypergraph, cfg Config) (int, *decomp.Decomp, bool, error) {
	res, err := New(h, cfg).Solve(ctx)
	if err != nil {
		return 0, nil, false, err
	}
	if !res.Found {
		return 0, nil, false, nil
	}
	return res.Width, res.Decomp, true, nil
}
