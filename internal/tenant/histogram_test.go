package tenant

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	if h.Count() != 0 {
		t.Fatal("empty histogram has a count")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	// 1ms lands in [800µs, 1.6ms); the p50 estimate must stay inside
	// that bucket.
	p50 := h.Quantile(0.50)
	if p50 < 800*time.Microsecond || p50 > 1600*time.Microsecond {
		t.Fatalf("p50 = %v, want within 1ms's bucket [800µs, 1.6ms)", p50)
	}
	// 100ms lands in [51.2ms, 102.4ms); p99 must reach that bucket.
	p99 := h.Quantile(0.99)
	if p99 < 51200*time.Microsecond || p99 > 102400*time.Microsecond {
		t.Fatalf("p99 = %v, want within 100ms's bucket [51.2ms, 102.4ms)", p99)
	}
	if lo := h.Quantile(-1); lo < 0 {
		t.Fatalf("clamped quantile negative: %v", lo)
	}
	if hi := h.Quantile(2); hi < p99 {
		t.Fatalf("q=2 (clamped to 1) below p99: %v < %v", hi, p99)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)         // clamped into bucket 0
	h.Record(0)                    // bucket 0
	h.Record(400 * 24 * time.Hour) // beyond the range: overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if p01 := h.Quantile(0.01); p01 >= histBase {
		t.Fatalf("low quantile %v escaped bucket 0", p01)
	}
	if p99 := h.Quantile(0.999); p99 <= time.Hour {
		t.Fatalf("overflow observation not visible at p99.9: %v", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 16*time.Millisecond {
		t.Fatalf("p50 = %v out of plausible range", p50)
	}
}
