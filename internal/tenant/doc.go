// Package tenant implements per-tenant admission control for the
// serving layers: the load wall that turns the solver's per-query
// tractability guarantee into a per-caller fairness guarantee.
//
// The central type is the Wall. Every request is attributed to a
// tenant id (Default when the caller names none) and passes three
// per-tenant gates before it may consume any solver or executor
// budget:
//
//   - a token-bucket rate limit (Config.Rate requests/second reserved
//     per tenant, Config.Burst of instantaneous headroom),
//   - a concurrency cap (Config.MaxInFlight admitted requests at
//     once), and
//   - a bounded wait queue in front of the concurrency cap
//     (Config.MaxQueue; beyond it the request is rejected instead of
//     queued, so a greedy tenant's overflow turns into fast 429s
//     rather than ever-growing latency for everyone).
//
// In fair-share mode (Config.FairShare) the wall additionally keeps a
// shared spare pool: every refill interval, tokens a tenant cannot
// hold (its bucket is already full) flow into the pool, as does the
// capacity the box has beyond the sum of per-tenant reserves
// (Config.GlobalRate). A tenant whose own bucket is empty may draw
// from the pool, so a single tenant on an otherwise idle box still
// gets the full global throughput — while every other tenant's
// reserved rate remains untouchable, which is the isolation property
// the load gate asserts.
//
// Rejections are *LimitError values carrying the tenant, the gate that
// rejected (rate or load) and a RetryAfter hint sized from the actual
// token deficit; errors.Is(err, ErrLimited) identifies them across
// layers. Admissions return a *Lease whose Done records the request's
// outcome and its admit-to-done latency into a fixed-memory streaming
// Histogram, from which per-tenant p50/p99 are served on /stats.
//
// A Wall with a zero Config enforces nothing but still accounts
// everything: per-tenant counters and latency quantiles are always
// maintained, enforcement of each gate is opt-in via its config knob.
package tenant
