package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Default is the tenant id attributed to requests that name none.
const Default = "default"

// ErrLimited identifies per-tenant admission rejections across layers:
// errors.Is(err, ErrLimited) holds for every *LimitError the wall
// returns, whatever gate rejected.
var ErrLimited = errors.New("tenant: over limit")

// Reason names the gate that rejected a request.
type Reason string

const (
	// ReasonRate: the tenant's token bucket (and, in fair-share mode,
	// the spare pool) is empty.
	ReasonRate Reason = "rate"
	// ReasonLoad: the tenant's in-flight cap and wait queue are both
	// full.
	ReasonLoad Reason = "load"
)

// LimitError is a per-tenant admission rejection. RetryAfter is sized
// from the actual token deficit, so a well-behaved client backing off
// by it will find a token waiting rather than guessing.
type LimitError struct {
	Tenant     string
	Reason     Reason
	RetryAfter time.Duration
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("tenant %q over %s limit (retry after %v)", e.Tenant, e.Reason, e.RetryAfter)
}

// Is reports ErrLimited as a match, so callers can classify without
// naming the concrete type.
func (e *LimitError) Is(target error) bool { return target == ErrLimited }

// Config sizes a Wall. Every gate is opt-in: a zero value enforces
// nothing while still accounting per-tenant counters and latency.
type Config struct {
	// Rate is each tenant's reserved admission rate in requests per
	// second. ≤ 0 disables rate limiting.
	Rate float64
	// Burst is the per-tenant token-bucket capacity — how far above
	// Rate a tenant may spike instantaneously. Default: Rate (one
	// second of traffic), minimum 1.
	Burst float64
	// MaxInFlight bounds one tenant's concurrently admitted requests.
	// ≤ 0 disables the concurrency gate.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond
	// it Admit rejects with ReasonLoad instead of queueing. 0 means no
	// waiting: a full tenant rejects immediately.
	MaxQueue int
	// FairShare lets a tenant whose own bucket is empty draw from the
	// shared spare pool, which collects refill tokens other tenants'
	// full buckets could not hold plus the headroom above the summed
	// reserves (GlobalRate). Reserved per-tenant rates are never
	// touched, so fair-share adds throughput without costing isolation.
	FairShare bool
	// GlobalRate is the aggregate admission rate the box sustains; the
	// spare pool refills at GlobalRate minus the known tenants' summed
	// reserves (when positive). 0 means the pool is fed only by other
	// tenants' unused refill.
	GlobalRate float64
	// GlobalBurst caps the spare pool. Default: GlobalRate (one second
	// of global headroom), else Burst.
	GlobalBurst float64
	// MaxTenants caps tracked tenants; beyond it the least recently
	// seen fully idle tenant is evicted, so hostile tenant-id
	// cardinality cannot grow the wall's memory without bound.
	// Default 1024.
	MaxTenants int
	// Now is the wall's clock, injectable for tests. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.GlobalBurst <= 0 {
		c.GlobalBurst = c.GlobalRate
		if c.GlobalBurst < c.Burst {
			c.GlobalBurst = c.Burst
		}
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is one tenant's admission snapshot, the per-tenant block of
// /stats.
type Stats struct {
	Admitted     int64   `json:"admitted"`
	RateRejected int64   `json:"rate_rejected"`
	LoadRejected int64   `json:"load_rejected"`
	Completed    int64   `json:"completed"`
	Failed       int64   `json:"failed"`
	InFlight     int64   `json:"in_flight"`
	Queued       int64   `json:"queued"`
	Tokens       float64 `json:"tokens"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
}

// state is one tenant's live admission state. All fields are guarded
// by the owning Wall's mutex except hist, which is internally atomic.
type state struct {
	tokens   float64
	inFlight int
	queued   int
	// waiters is the FIFO of requests blocked on an in-flight slot;
	// Done hands a freed slot to the head by closing its channel (the
	// in-flight count transfers, it never dips in between).
	waiters  []chan struct{}
	lastSeen time.Time

	admitted     int64
	rateRejected int64
	loadRejected int64
	completed    int64
	failed       int64
	hist         Histogram
}

// Wall is the multi-tenant admission layer. One Wall fronts one
// service; it is safe for concurrent use.
type Wall struct {
	cfg Config

	mu         sync.Mutex
	tenants    map[string]*state
	spare      float64
	lastRefill time.Time
}

// NewWall returns a Wall enforcing cfg.
func NewWall(cfg Config) *Wall {
	cfg = cfg.withDefaults()
	return &Wall{
		cfg:        cfg,
		tenants:    make(map[string]*state),
		lastRefill: cfg.Now(),
	}
}

// Config returns the effective configuration, with defaults resolved.
func (w *Wall) Config() Config { return w.cfg }

// Lease is one admitted request. Exactly one Done call releases the
// tenant's in-flight slot and records outcome and latency; extra calls
// and calls on a nil Lease are no-ops.
type Lease struct {
	w     *Wall
	st    *state
	start time.Time
	once  sync.Once
}

// Admit passes one request for tenant id (Default when empty) through
// the wall. It returns a Lease on admission; a *LimitError when a gate
// rejects; ctx.Err() when the context ends while queued for a slot.
func (w *Wall) Admit(ctx context.Context, id string) (*Lease, error) {
	if id == "" {
		id = Default
	}
	now := w.cfg.Now()

	w.mu.Lock()
	w.refillLocked(now)
	st := w.touchLocked(id, now)

	// Gate 1: the rate limit. Own bucket first, spare pool second —
	// drawing reserve before spare keeps the spare available for
	// tenants that actually exhausted theirs.
	if w.cfg.Rate > 0 {
		switch {
		case st.tokens >= 1:
			st.tokens--
		case w.cfg.FairShare && w.spare >= 1:
			w.spare--
		default:
			st.rateRejected++
			retry := w.retryAfterLocked(st)
			w.mu.Unlock()
			return nil, &LimitError{Tenant: id, Reason: ReasonRate, RetryAfter: retry}
		}
	}

	// Gate 2: the concurrency cap, with a bounded FIFO wait queue.
	if w.cfg.MaxInFlight > 0 && st.inFlight >= w.cfg.MaxInFlight {
		if st.queued >= w.cfg.MaxQueue {
			st.loadRejected++
			retry := w.retryAfterLocked(st)
			w.mu.Unlock()
			return nil, &LimitError{Tenant: id, Reason: ReasonLoad, RetryAfter: retry}
		}
		ready := make(chan struct{})
		st.waiters = append(st.waiters, ready)
		st.queued++
		w.mu.Unlock()
		select {
		case <-ready:
			// The slot was handed over: inFlight already counts us.
			w.mu.Lock()
		case <-ctx.Done():
			w.mu.Lock()
			if !removeWaiter(st, ready) {
				// Lost the race: a Done handed us the slot while we were
				// cancelling. Pass it on (or free it) before leaving.
				w.releaseSlotLocked(st)
			}
			st.failed++
			w.mu.Unlock()
			return nil, ctx.Err()
		}
	} else {
		st.inFlight++
	}
	st.admitted++
	w.mu.Unlock()
	return &Lease{w: w, st: st, start: now}, nil
}

// Done releases the lease: the in-flight slot moves to the oldest
// queued waiter (or frees), the outcome is counted, and the
// admit-to-done latency lands in the tenant's histogram.
func (l *Lease) Done(failed bool) {
	if l == nil {
		return
	}
	l.once.Do(func() {
		l.st.hist.Record(l.w.cfg.Now().Sub(l.start))
		l.w.mu.Lock()
		l.w.releaseSlotLocked(l.st)
		if failed {
			l.st.failed++
		} else {
			l.st.completed++
		}
		l.w.mu.Unlock()
	})
}

// releaseSlotLocked frees one in-flight slot: the oldest waiter
// inherits it when there is one (inFlight is transferred, not
// decremented, so the cap is never transiently exceeded or starved).
func (w *Wall) releaseSlotLocked(st *state) {
	if len(st.waiters) > 0 {
		ready := st.waiters[0]
		st.waiters = st.waiters[1:]
		st.queued--
		close(ready)
		return
	}
	st.inFlight--
}

// removeWaiter unlinks a cancelled waiter; false means it was already
// promoted (its channel is closed and it owns a slot).
func removeWaiter(st *state, ready chan struct{}) bool {
	for i, c := range st.waiters {
		if c == ready {
			st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
			st.queued--
			return true
		}
	}
	return false
}

// refillLocked advances every bucket to now. Tokens a full bucket
// cannot hold spill into the spare pool (fair-share mode), as does the
// global headroom above the known tenants' summed reserves — this is
// the reflow that lets one active tenant use an idle box fully.
func (w *Wall) refillLocked(now time.Time) {
	dt := now.Sub(w.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	w.lastRefill = now
	if w.cfg.Rate > 0 {
		for _, st := range w.tenants {
			st.tokens += w.cfg.Rate * dt
			if st.tokens > w.cfg.Burst {
				if w.cfg.FairShare {
					w.spare += st.tokens - w.cfg.Burst
				}
				st.tokens = w.cfg.Burst
			}
		}
	}
	if w.cfg.FairShare {
		if head := w.cfg.GlobalRate - float64(len(w.tenants))*w.cfg.Rate; head > 0 {
			w.spare += head * dt
		}
		if w.spare > w.cfg.GlobalBurst {
			w.spare = w.cfg.GlobalBurst
		}
	}
}

// touchLocked returns id's state, creating it (with a full bucket)
// on first sight and evicting the least recently seen idle tenant
// beyond MaxTenants.
func (w *Wall) touchLocked(id string, now time.Time) *state {
	st, ok := w.tenants[id]
	if !ok {
		if len(w.tenants) >= w.cfg.MaxTenants {
			w.evictLocked()
		}
		st = &state{tokens: w.cfg.Burst}
		w.tenants[id] = st
	}
	st.lastSeen = now
	return st
}

// evictLocked drops the least recently seen tenant with nothing in
// flight or queued. Tenants with live requests are never evicted (the
// map can transiently exceed MaxTenants by the number of such
// tenants, which concurrency caps already bound).
func (w *Wall) evictLocked() {
	var victim string
	var oldest time.Time
	for id, st := range w.tenants {
		if st.inFlight > 0 || st.queued > 0 {
			continue
		}
		if victim == "" || st.lastSeen.Before(oldest) {
			victim, oldest = id, st.lastSeen
		}
	}
	if victim != "" {
		delete(w.tenants, victim)
	}
}

// retryAfterLocked sizes the backoff hint from the tenant's token
// deficit against its reserved refill rate (the rate it is guaranteed
// regardless of other tenants).
func (w *Wall) retryAfterLocked(st *state) time.Duration {
	if w.cfg.Rate <= 0 {
		return time.Second
	}
	deficit := 1 - st.tokens
	if deficit < 0 {
		deficit = 0
	}
	d := time.Duration(deficit / w.cfg.Rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Stats snapshots every tracked tenant (buckets refreshed to now, so
// Tokens is current).
func (w *Wall) Stats() map[string]Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.refillLocked(w.cfg.Now())
	out := make(map[string]Stats, len(w.tenants))
	for id, st := range w.tenants {
		out[id] = Stats{
			Admitted:     st.admitted,
			RateRejected: st.rateRejected,
			LoadRejected: st.loadRejected,
			Completed:    st.completed,
			Failed:       st.failed,
			InFlight:     int64(st.inFlight),
			Queued:       int64(st.queued),
			Tokens:       st.tokens,
			P50Millis:    float64(st.hist.Quantile(0.50)) / float64(time.Millisecond),
			P99Millis:    float64(st.hist.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	return out
}

// Spare returns the spare pool's current balance (after a refresh);
// tests assert reflow against it.
func (w *Wall) Spare() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.refillLocked(w.cfg.Now())
	return w.spare
}
