package tenant

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket 0 covers [0, histBase); bucket i ≥ 1
// covers [histBase<<(i-1), histBase<<i). With histBase = 50µs and 40
// buckets the range runs to ~7.6h before the overflow bucket, which is
// far beyond any per-job timeout the service allows.
const (
	histBuckets = 40
	histBase    = 50 * time.Microsecond
)

// Histogram is a fixed-memory streaming latency histogram over
// power-of-two buckets. Record and Quantile are safe for concurrent
// use. Quantiles are linearly interpolated inside the winning bucket,
// so their error is bounded by one bucket's width (a factor of two),
// independent of how many samples were recorded — the right trade for
// an always-on per-tenant stat that must never grow with traffic.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

func bucketOf(d time.Duration) int {
	if d < histBase {
		return 0
	}
	i := bits.Len64(uint64(d / histBase))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns the half-open duration range bucket i covers.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, histBase
	}
	return histBase << (i - 1), histBase << i
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns the q-quantile (q in [0,1]) of the recorded
// observations, or 0 when none were recorded. Concurrent Records may
// skew a racing snapshot by the samples in flight; the estimate is
// within one power-of-two bucket of the true order statistic.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / c
			if frac < 0 {
				frac = 0
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += c
	}
	// Racing Records moved the total past the bucket sum; the largest
	// occupied bucket's upper bound is the best remaining answer.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}
