package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced wall clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// admitN admits up to max requests for id, immediately releasing each
// lease, and returns how many were admitted before the first rejection.
func admitN(t *testing.T, w *Wall, id string, max int) int {
	t.Helper()
	for i := 0; i < max; i++ {
		l, err := w.Admit(context.Background(), id)
		if err != nil {
			if !errors.Is(err, ErrLimited) {
				t.Fatalf("admit %d: unexpected error kind: %v", i, err)
			}
			return i
		}
		l.Done(false)
	}
	return max
}

func TestBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	w := NewWall(Config{Rate: 5, Burst: 3, Now: clk.Now})

	if got := admitN(t, w, "a", 10); got != 3 {
		t.Fatalf("fresh bucket admitted %d, want burst 3", got)
	}

	// The rejection's backoff hint matches the deficit: 1 token at 5/s.
	_, err := w.Admit(context.Background(), "a")
	var le *LimitError
	if !errors.As(err, &le) || le.Reason != ReasonRate {
		t.Fatalf("want rate LimitError, got %v", err)
	}
	if le.RetryAfter <= 0 || le.RetryAfter > 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~200ms", le.RetryAfter)
	}

	// A full second refills 5 but the bucket caps at burst 3.
	clk.Advance(time.Second)
	if got := admitN(t, w, "a", 10); got != 3 {
		t.Fatalf("after 1s admitted %d, want 3 (burst-capped)", got)
	}
	// 200ms refills exactly one token at 5/s.
	clk.Advance(200 * time.Millisecond)
	if got := admitN(t, w, "a", 10); got != 1 {
		t.Fatalf("after 200ms admitted %d, want 1", got)
	}
}

func TestFairShareGlobalHeadroom(t *testing.T) {
	clk := newFakeClock()
	w := NewWall(Config{Rate: 1, Burst: 1, FairShare: true, GlobalRate: 10, Now: clk.Now})

	if got := admitN(t, w, "a", 5); got != 1 {
		t.Fatalf("fresh tenant admitted %d, want 1", got)
	}
	// One second: a's bucket refills its reserved 1, the spare pool
	// collects the global headroom (10 - 1 tenant × 1) = 9. A lone
	// tenant on an idle box gets the full global throughput.
	clk.Advance(time.Second)
	if got := admitN(t, w, "a", 20); got != 10 {
		t.Fatalf("fair-share admitted %d, want 10 (1 reserved + 9 spare)", got)
	}
}

func TestFairShareSpillKeepsIsolation(t *testing.T) {
	clk := newFakeClock()
	// GlobalRate 0: the spare pool is fed only by refill that full
	// buckets cannot hold — the reflow of other tenants' unused budget.
	w := NewWall(Config{Rate: 2, Burst: 2, FairShare: true, Now: clk.Now})

	// Touch both tenants once so both buckets exist (2 → 1 token each).
	if got := admitN(t, w, "greedy", 1); got != 1 {
		t.Fatal("seed greedy")
	}
	if got := admitN(t, w, "polite", 1); got != 1 {
		t.Fatal("seed polite")
	}
	// One second: each bucket 1+2 caps at 2, spilling 1 each → spare 2.
	clk.Advance(time.Second)
	if spare := w.Spare(); spare != 2 {
		t.Fatalf("spare = %v, want 2 (1 spilled per full bucket)", spare)
	}
	// Greedy takes its own 2 plus the whole spare pool...
	if got := admitN(t, w, "greedy", 20); got != 4 {
		t.Fatalf("greedy admitted %d, want 4 (2 reserved + 2 spare)", got)
	}
	// ...but polite's reserved tokens were never touchable.
	if got := admitN(t, w, "polite", 20); got != 2 {
		t.Fatalf("polite admitted %d, want its reserved 2", got)
	}
}

func TestNoFairShareHardCap(t *testing.T) {
	clk := newFakeClock()
	w := NewWall(Config{Rate: 1, Burst: 1, GlobalRate: 100, Now: clk.Now})
	admitN(t, w, "a", 5)
	clk.Advance(10 * time.Second)
	if got := admitN(t, w, "a", 20); got != 1 {
		t.Fatalf("without fair-share admitted %d, want hard cap 1", got)
	}
}

func TestInFlightAndQueue(t *testing.T) {
	w := NewWall(Config{MaxInFlight: 2, MaxQueue: 1})
	ctx := context.Background()

	l1, err := w.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := w.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}

	// Third admission queues; wait until the wall sees it.
	got := make(chan *Lease, 1)
	go func() {
		l, err := w.Admit(ctx, "a")
		if err != nil {
			t.Errorf("queued admit failed: %v", err)
		}
		got <- l
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats()["a"].Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("third admission never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth: queue full → immediate load rejection.
	_, err = w.Admit(ctx, "a")
	var le *LimitError
	if !errors.As(err, &le) || le.Reason != ReasonLoad {
		t.Fatalf("want load LimitError, got %v", err)
	}

	// Releasing a slot promotes the waiter.
	l1.Done(false)
	select {
	case l3 := <-got:
		l3.Done(false)
	case <-time.After(5 * time.Second):
		t.Fatal("waiter was not promoted after Done")
	}
	l2.Done(false)

	st := w.Stats()["a"]
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("slots not drained: %+v", st)
	}
	if st.Admitted != 3 || st.LoadRejected != 1 {
		t.Fatalf("counters: %+v, want 3 admitted / 1 load-rejected", st)
	}
}

func TestQueuedCancellation(t *testing.T) {
	w := NewWall(Config{MaxInFlight: 1, MaxQueue: 4})
	l1, err := w.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := w.Admit(ctx, "a")
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats()["a"].Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admission never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	st := w.Stats()["a"]
	if st.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	// The held slot is unaffected; releasing it must not panic or
	// double-promote.
	l1.Done(false)
	if st := w.Stats()["a"]; st.InFlight != 0 {
		t.Fatalf("in-flight not released: %+v", st)
	}
}

func TestDefaultTenantAndAccountingWithoutLimits(t *testing.T) {
	w := NewWall(Config{})
	l, err := w.Admit(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	l.Done(false)
	l.Done(true) // idempotent: the second call must not double-count
	var nilLease *Lease
	nilLease.Done(false) // and a nil lease is a no-op

	st, ok := w.Stats()[Default]
	if !ok {
		t.Fatalf("empty tenant id not mapped to %q: %v", Default, w.Stats())
	}
	if st.Admitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("zero-config wall still accounts: %+v", st)
	}
}

func TestEvictionDropsOldestIdle(t *testing.T) {
	clk := newFakeClock()
	w := NewWall(Config{MaxTenants: 2, Now: clk.Now})
	admitN(t, w, "t1", 1)
	clk.Advance(time.Second)
	admitN(t, w, "t2", 1)
	clk.Advance(time.Second)
	admitN(t, w, "t3", 1)

	stats := w.Stats()
	if len(stats) != 2 {
		t.Fatalf("tracked %d tenants, want cap 2", len(stats))
	}
	if _, ok := stats["t1"]; ok {
		t.Fatalf("oldest idle tenant not evicted: %v", stats)
	}
	if _, ok := stats["t3"]; !ok {
		t.Fatalf("newest tenant missing: %v", stats)
	}
}

func TestEvictionSparesLiveTenants(t *testing.T) {
	clk := newFakeClock()
	w := NewWall(Config{MaxTenants: 1, Now: clk.Now})
	l, err := w.Admit(context.Background(), "busy")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	admitN(t, w, "other", 1)
	if _, ok := w.Stats()["busy"]; !ok {
		t.Fatal("tenant with a live lease was evicted")
	}
	l.Done(false)
}

func TestConcurrentAdmissions(t *testing.T) {
	w := NewWall(Config{
		Rate: 100000, Burst: 100000,
		MaxInFlight: 4, MaxQueue: 64,
		FairShare: true, GlobalRate: 200000,
	})
	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := []string{"a", "b", "c"}[g%3]
			for i := 0; i < perG; i++ {
				l, err := w.Admit(context.Background(), id)
				if err != nil {
					if !errors.Is(err, ErrLimited) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				l.Done(i%7 == 0)
			}
		}(g)
	}
	wg.Wait()

	var total, settled int64
	for _, st := range w.Stats() {
		if st.InFlight != 0 || st.Queued != 0 {
			t.Fatalf("live counts after drain: %+v", st)
		}
		total += st.Admitted + st.RateRejected + st.LoadRejected
		settled += st.Completed + st.Failed + st.RateRejected + st.LoadRejected
	}
	if total != goroutines*perG {
		t.Fatalf("admission outcomes %d, want %d", total, goroutines*perG)
	}
	if settled != goroutines*perG {
		t.Fatalf("settled outcomes %d, want %d", settled, goroutines*perG)
	}
}
