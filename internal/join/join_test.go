package join

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/decomp"
	"repro/internal/logk"
)

func TestProject(t *testing.T) {
	r := NewRelation("a", "b", "c").Add(1, 2, 3).Add(1, 2, 4).Add(5, 6, 7)
	p, err := r.Project("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 2}, {5, 6}}
	if !reflect.DeepEqual(p.Sorted(), want) {
		t.Fatalf("Project = %v, want %v", p.Sorted(), want)
	}
	if _, err := r.Project("zzz"); err == nil {
		t.Fatal("projecting a missing attribute should fail")
	}
}

func TestSemijoin(t *testing.T) {
	r := NewRelation("a", "b").Add(1, 10).Add(2, 20).Add(3, 30)
	s := NewRelation("b", "c").Add(10, 100).Add(30, 300)
	out, err := r.Semijoin(s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 10}, {3, 30}}
	if !reflect.DeepEqual(out.Sorted(), want) {
		t.Fatalf("Semijoin = %v, want %v", out.Sorted(), want)
	}
}

func TestSemijoinNoSharedAttrs(t *testing.T) {
	r := NewRelation("a").Add(1).Add(2)
	nonEmpty := NewRelation("z").Add(9)
	empty := NewRelation("z")
	out, _ := r.Semijoin(nonEmpty)
	if out.Size() != 2 {
		t.Fatal("semijoin with non-empty disjoint relation should keep all tuples")
	}
	out, _ = r.Semijoin(empty)
	if out.Size() != 0 {
		t.Fatal("semijoin with empty disjoint relation should drop all tuples")
	}
}

func TestJoin(t *testing.T) {
	r := NewRelation("a", "b").Add(1, 10).Add(2, 20)
	s := NewRelation("b", "c").Add(10, 100).Add(10, 101).Add(99, 999)
	out, err := r.Join(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Attrs, []string{"a", "b", "c"}) {
		t.Fatalf("join attrs = %v", out.Attrs)
	}
	want := [][]int{{1, 10, 100}, {1, 10, 101}}
	if !reflect.DeepEqual(out.Sorted(), want) {
		t.Fatalf("Join = %v, want %v", out.Sorted(), want)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	r := NewRelation("a").Add(1).Add(2)
	s := NewRelation("b").Add(7)
	out, err := r.Join(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("cross product size = %d, want 2", out.Size())
	}
}

func TestAddArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	NewRelation("a", "b").Add(1)
}

// triangleFixture: the triangle query Q(x,y,z) = R(x,y) ∧ S(y,z) ∧ T(z,x).
func triangleFixture() (Query, Database) {
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
		{Relation: "T", Vars: []string{"z", "x"}},
	}}
	db := Database{
		"R": NewRelation("c1", "c2").Add(1, 2).Add(1, 3).Add(4, 2),
		"S": NewRelation("c1", "c2").Add(2, 5).Add(3, 6).Add(2, 7),
		"T": NewRelation("c1", "c2").Add(5, 1).Add(6, 4).Add(7, 4),
	}
	return q, db
}

func decompose(t *testing.T, q Query, k int) *decomp.Decomp {
	t.Helper()
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	s := logk.New(h, logk.Options{K: k})
	d, ok, err := s.Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("decompose: ok=%v err=%v", ok, err)
	}
	return d
}

func TestEvaluateTriangle(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)
	got, err := Evaluate(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	gotP, _ := got.Project("x", "y", "z")
	wantP, _ := want.Project("x", "y", "z")
	if !reflect.DeepEqual(gotP.Sorted(), wantP.Sorted()) {
		t.Fatalf("Evaluate = %v, want %v", gotP.Sorted(), wantP.Sorted())
	}
	// Expected answers: (x=1,y=2,z=5) and (x=4,y=2,z=7)? T(7,4) yes; and
	// (x=4,y=2,z=5)? needs T(5,4): absent. Check against the naive result
	// (already asserted) plus a spot check:
	if got.Size() == 0 {
		t.Fatal("triangle query should have answers")
	}
}

func TestIsBoolean(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)
	ok, err := IsBoolean(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("triangle query should be satisfiable")
	}
	// Remove all T tuples: unsatisfiable.
	db2 := Database{"R": db["R"], "S": db["S"], "T": NewRelation("c1", "c2")}
	ok, err = IsBoolean(q, db2, d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("query with empty T should be unsatisfiable")
	}
}

func TestEvaluateChainQuery(t *testing.T) {
	// A longer acyclic chain: R1(x0,x1) ⋈ … ⋈ R5(x4,x5).
	var q Query
	db := Database{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		name := "R" + strconv.Itoa(i)
		rel := NewRelation("a", "b")
		for j := 0; j < 20; j++ {
			rel.Add(r.Intn(6), r.Intn(6))
		}
		db[name] = rel
		q.Atoms = append(q.Atoms, Atom{Relation: name,
			Vars: []string{"x" + strconv.Itoa(i), "x" + strconv.Itoa(i+1)}})
	}
	d := decompose(t, q, 1)
	got, err := Evaluate(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []string{"x0", "x1", "x2", "x3", "x4", "x5"}
	gotP, _ := got.Project(attrs...)
	wantP, _ := want.Project(attrs...)
	if !reflect.DeepEqual(gotP.Sorted(), wantP.Sorted()) {
		t.Fatalf("chain evaluation mismatch: %d vs %d tuples", gotP.Size(), wantP.Size())
	}
}

// TestEvaluateRandomQueriesAgainstNaive is the main correctness property:
// decomposition-guided evaluation must agree with the naive join on
// random cyclic queries and random data.
func TestEvaluateRandomQueriesAgainstNaive(t *testing.T) {
	for seed := 0; seed < 15; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		nv := 4 + r.Intn(3)
		na := 3 + r.Intn(4)
		var q Query
		db := Database{}
		for i := 0; i < na; i++ {
			arity := 2 + r.Intn(2)
			if arity > nv {
				arity = nv
			}
			perm := r.Perm(nv)[:arity]
			vars := make([]string, arity)
			attrs := make([]string, arity)
			for j, v := range perm {
				vars[j] = "x" + strconv.Itoa(v)
				attrs[j] = "c" + strconv.Itoa(j)
			}
			name := "R" + strconv.Itoa(i)
			rel := NewRelation(attrs...)
			rows := 4 + r.Intn(10)
			for j := 0; j < rows; j++ {
				row := make([]int, arity)
				for k := range row {
					row[k] = r.Intn(4)
				}
				rel.Add(row...)
			}
			db[name] = rel
			q.Atoms = append(q.Atoms, Atom{Relation: name, Vars: vars})
		}
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		var d *decomp.Decomp
		for k := 1; k <= 4; k++ {
			s := logk.New(h, logk.Options{K: k})
			dd, ok, derr := s.Decompose(context.Background())
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				d = dd
				break
			}
		}
		if d == nil {
			t.Fatalf("seed %d: no decomposition of width <= 4", seed)
		}
		got, err := Evaluate(q, db, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := EvaluateNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		// Compare over the union of variables, sorted.
		vars := map[string]bool{}
		for _, a := range q.Atoms {
			for _, v := range a.Vars {
				vars[v] = true
			}
		}
		var attrs []string
		for v := range vars {
			attrs = append(attrs, v)
		}
		gotP, _ := got.Project(attrs...)
		wantP, _ := want.Project(attrs...)
		if !reflect.DeepEqual(gotP.Sorted(), wantP.Sorted()) {
			t.Fatalf("seed %d: evaluation mismatch: %d vs %d tuples",
				seed, gotP.Size(), wantP.Size())
		}
	}
}

func TestAtomErrors(t *testing.T) {
	db := Database{"R": NewRelation("a", "b").Add(1, 2)}
	if _, err := atomRelation(db, Atom{Relation: "missing", Vars: []string{"x", "y"}}); err == nil {
		t.Fatal("missing relation should error")
	}
	if _, err := atomRelation(db, Atom{Relation: "R", Vars: []string{"x"}}); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if _, err := atomRelation(db, Atom{Relation: "R", Vars: []string{"x", "x"}}); err == nil {
		t.Fatal("repeated variable should error")
	}
}

// TestBuildJoinTreeEdgeCountMismatch: a decomposition built for a
// different hypergraph (different atom count) must be rejected up front
// with a descriptive error, not fail deep inside bag materialisation.
func TestBuildJoinTreeEdgeCountMismatch(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)

	short := Query{Atoms: q.Atoms[:2]}
	if _, err := BuildJoinTree(short, db, d); err == nil {
		t.Fatal("BuildJoinTree should reject a decomposition with more edges than the query has atoms")
	} else if !strings.Contains(err.Error(), "3 edges, query has 2 atoms") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}

	long := Query{Atoms: append(append([]Atom(nil), q.Atoms...), Atom{Relation: "R", Vars: []string{"x", "w"}})}
	if _, err := BuildJoinTree(long, db, d); err == nil {
		t.Fatal("BuildJoinTree should reject a decomposition with fewer edges than the query has atoms")
	}

	// Evaluate and EvaluateCtx surface the same guard.
	if _, err := Evaluate(short, db, d); err == nil {
		t.Fatal("Evaluate should propagate the edge-count mismatch")
	}
	if _, err := EvaluateCtx(context.Background(), short, db, d, EvalOptions{}); err == nil {
		t.Fatal("EvaluateCtx should propagate the edge-count mismatch")
	}
}

// TestEvaluateCtxBudgets: the budgeted evaluator matches the unbudgeted
// one when limits are loose, aborts with ErrRowBudget when the cap is
// tight, and honours context cancellation.
func TestEvaluateCtxBudgets(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)

	got, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{MaxRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sorted(), want.Sorted()) {
		t.Fatalf("budgeted evaluation disagrees: %v vs %v", got.Sorted(), want.Sorted())
	}

	if _, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{MaxRows: 1}); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("MaxRows=1 should exceed the row budget, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateCtx(ctx, q, db, d, EvalOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context should abort the evaluation, got %v", err)
	}
}

// TestEvaluateNaiveSingleAtomDoesNotMutateDB: the one-atom path aliases
// the database relation's tuple storage; Dedup must not compact the
// caller's data in place.
func TestEvaluateNaiveSingleAtomDoesNotMutateDB(t *testing.T) {
	db := Database{"R": NewRelation("a").Add(1).Add(1).Add(2)}
	q := Query{Atoms: []Atom{{Relation: "R", Vars: []string{"x"}}}}
	out, err := EvaluateNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("deduped result size = %d, want 2", out.Size())
	}
	if want := [][]int{{1}, {1}, {2}}; !reflect.DeepEqual(db["R"].Rows(), want) {
		t.Fatalf("EvaluateNaive mutated the database relation: %v, want %v", db["R"].Rows(), want)
	}
}
