package join

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/decomp"
)

// Kernel selects the relational kernel backing an evaluation.
type Kernel int

const (
	// KernelIndexed (the default) evaluates over build-once hash indexes
	// keyed on the shared variables of each join-tree edge, optionally in
	// parallel (EvalOptions.Parallelism). Its output is byte-identical to
	// the scan kernel's.
	KernelIndexed Kernel = iota
	// KernelScan is the legacy slice-scan kernel: every semijoin and join
	// re-scans tuple slices with formatted string keys. Kept as the
	// benchmark baseline and as an independent implementation for
	// differential tests.
	KernelScan
)

// TokenSource supplies the extra-worker tokens a parallel evaluation's
// spawned subtree tasks draw from. It mirrors logk.TokenSource
// structurally (service.TokenBudget satisfies both), so query execution
// and decomposition jobs can share one process-wide budget without this
// package importing the solver. Implementations must be safe for
// concurrent use.
type TokenSource interface {
	// TryAcquire takes up to max tokens without blocking and returns how
	// many it got (0..max).
	TryAcquire(max int) int
	// Release returns n previously acquired tokens.
	Release(n int)
}

// ExecStats counts one evaluation's executor effort. Populate it by
// pointing EvalOptions.Stats at a zero value.
type ExecStats struct {
	// IndexBuilds and IndexProbes count hash indexes built and tuples
	// probed against them (KernelIndexed only). IndexReuses counts the
	// builds avoided because a base relation arrived with a maintained
	// index for the probed column set (dataset snapshots, cached inline
	// databases) — the unchanged-data fast path.
	IndexBuilds int64
	IndexReuses int64
	IndexProbes int64
	// Semijoins and Joins count relational operations executed.
	Semijoins int64
	Joins     int64
	// ParallelTasks counts subtree/partition tasks run on spawned
	// workers; InlineTasks those run on the task that scheduled them.
	ParallelTasks int64
	InlineTasks   int64
	// MaxWorkers is the maximum number of workers (including the
	// caller's goroutine) observed running concurrently.
	MaxWorkers int64
}

// pollEvery is the probe-loop cancellation granularity: long scans check
// the context every pollEvery iterations, so a single huge semijoin or
// join cannot blow past the query deadline the way the scan kernel's
// between-ops checks allow.
const pollEvery = 1024

// parallelJoinMinRows is the probe-side size beyond which a final-pass
// join partitions its probe loop across workers.
const parallelJoinMinRows = 4096

// executor runs one indexed evaluation: bag materialisation and the
// three Yannakakis passes over hash indexes, with sibling subtrees (and
// large final-join probe loops) running concurrently on a bounded worker
// pool. All workers are joined before any entry point returns, so an
// aborted evaluation leaks no goroutines.
type executor struct {
	g      *guard
	cancel context.CancelFunc
	// sem bounds spawned workers to Parallelism-1 (nil = serial);
	// tokens, when set, additionally gates each spawn on the shared
	// process-wide budget.
	sem    chan struct{}
	tokens TokenSource

	mu  sync.Mutex
	err error // first failure; later (usually cancellation) errors are noise

	indexBuilds   atomic.Int64
	indexReuses   atomic.Int64
	indexProbes   atomic.Int64
	semijoins     atomic.Int64
	joins         atomic.Int64
	parallelTasks atomic.Int64
	inlineTasks   atomic.Int64
	workers       atomic.Int64
	maxWorkers    atomic.Int64
}

// evaluateIndexed is the KernelIndexed entry point behind EvaluateCtx.
func evaluateIndexed(ctx context.Context, q Query, db Database, d *decomp.Decomp, opts EvalOptions) (*Relation, error) {
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &executor{
		g:      &guard{ctx: ectx, maxRows: opts.MaxRows},
		cancel: cancel,
		tokens: opts.Tokens,
	}
	if opts.Parallelism > 1 {
		e.sem = make(chan struct{}, opts.Parallelism-1)
	}
	e.workers.Store(1)
	e.maxWorkers.Store(1)

	res, err := e.run(q, db, d)
	if opts.Stats != nil {
		*opts.Stats = ExecStats{
			IndexBuilds:   e.indexBuilds.Load(),
			IndexReuses:   e.indexReuses.Load(),
			IndexProbes:   e.indexProbes.Load(),
			Semijoins:     e.semijoins.Load(),
			Joins:         e.joins.Load(),
			ParallelTasks: e.parallelTasks.Load(),
			InlineTasks:   e.inlineTasks.Load(),
			MaxWorkers:    e.maxWorkers.Load(),
		}
	}
	if err != nil {
		// Prefer the first recorded failure: sibling tasks that died of
		// the executor-internal cancellation it triggered are symptoms.
		if first := e.firstErr(); first != nil {
			return nil, first
		}
		return nil, err
	}
	return res, nil
}

// fail records the evaluation's first error and cancels the executor's
// context so every other branch winds down promptly.
func (e *executor) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
		e.cancel()
	}
	e.mu.Unlock()
}

func (e *executor) firstErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// trySpawn reserves a worker slot (and a shared-budget token when one is
// configured). It never blocks: when the pool is exhausted the caller
// runs the task inline instead, so progress is guaranteed even with a
// zero-token budget.
func (e *executor) trySpawn() bool {
	if e.sem == nil {
		return false
	}
	select {
	case e.sem <- struct{}{}:
	default:
		return false
	}
	if e.tokens != nil && e.tokens.TryAcquire(1) == 0 {
		<-e.sem
		return false
	}
	cur := e.workers.Add(1)
	for {
		hw := e.maxWorkers.Load()
		if cur <= hw || e.maxWorkers.CompareAndSwap(hw, cur) {
			break
		}
	}
	return true
}

func (e *executor) releaseWorker() {
	e.workers.Add(-1)
	if e.tokens != nil {
		e.tokens.Release(1)
	}
	<-e.sem
}

// forEach runs f(0..n-1): items beyond the first run on spawned workers
// when slots and tokens are available, inline otherwise, and item 0 on
// the calling task. It waits for every spawned item before returning, so
// callers never race their results, and returns the executor's first
// recorded error when any item failed.
func (e *executor) forEach(n int, f func(int) error) error {
	if n == 0 {
		return nil
	}
	run := func(i int, parallel bool) {
		if parallel {
			e.parallelTasks.Add(1)
		} else {
			e.inlineTasks.Add(1)
		}
		if err := e.g.ctx.Err(); err != nil {
			e.fail(err)
			return
		}
		if err := f(i); err != nil {
			e.fail(err)
		}
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		if e.trySpawn() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer e.releaseWorker()
				run(i, true)
			}(i)
		} else {
			run(i, false)
		}
	}
	run(0, false)
	wg.Wait()
	return e.firstErr()
}

// index builds (and counts) a hash index of r on attrs. Reuse is the
// caller's job where it exists — the top-down pass keeps a per-node
// cache of its parent's indexes (see down) rather than the executor
// caching globally, so indexes on superseded intermediates don't pin
// their tuple storage for the whole evaluation.
func (e *executor) index(r *Relation, attrs []string) (*hashIndex, error) {
	e.indexBuilds.Add(1)
	return buildIndex(r, attrs, e.g)
}

// indexStack resolves the index layers to probe s on: a maintained
// stack when s carries one for the shared column set (counted as a
// reuse — no build at all), otherwise a fresh single index that is
// captured back into s's IndexSet so later queries at the same dataset
// version — and the next mutation's delta maintenance — inherit it.
// Only base relations with an IndexSet take this path; operator
// outputs keep the plain build-once route of index().
func (e *executor) indexStack(s *Relation, shared []string) ([]*hashIndex, error) {
	cols, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	if stack := s.indexes.lookup(cols); stack != nil {
		e.indexReuses.Add(1)
		return stack, nil
	}
	ix, err := buildIndexCols(s, cols, 0, s.n, e.g)
	if err != nil {
		return nil, err
	}
	e.indexBuilds.Add(1)
	return s.indexes.store(cols, []*hashIndex{ix}), nil
}

// semijoin returns r ⋉ s by probing a hash index of s on the shared
// attributes.
func (e *executor) semijoin(r, s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	if len(shared) == 0 {
		e.semijoins.Add(1)
		if s.Size() > 0 {
			return r.alias(), nil
		}
		return NewRelation(r.Attrs...), nil
	}
	if s.indexes != nil {
		stack, err := e.indexStack(s, shared)
		if err != nil {
			return nil, err
		}
		return e.semijoinStack(r, shared, stack)
	}
	ix, err := e.index(s, shared)
	if err != nil {
		return nil, err
	}
	return e.semijoinProbe(r, shared, ix)
}

// semijoinStack is semijoinProbe over a maintained layer stack: a
// probe tuple survives when any layer holds its key. Single-layer
// stacks (the common case) take the plain probe path.
func (e *executor) semijoinStack(r *Relation, shared []string, stack []*hashIndex) (*Relation, error) {
	if len(stack) == 1 {
		return e.semijoinProbe(r, shared, stack[0])
	}
	e.semijoins.Add(1)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	out := NewRelation(r.Attrs...)
	for i := 0; i < r.Size(); i++ {
		if err := e.g.poll(i); err != nil {
			return nil, err
		}
		for _, ix := range stack {
			if _, ok := ix.lookupRow(r, rIdx, i); ok {
				out.appendFrom(r, i)
				break
			}
		}
	}
	e.indexProbes.Add(int64(r.Size()))
	return out, nil
}

// semijoinProbe filters r to the tuples whose key on shared hits ix (a
// prebuilt index of the other relation on the same attributes). The
// probe loop polls the context every pollEvery tuples — the fix for the
// scan kernel's "budgets checked only between ops" gap.
func (e *executor) semijoinProbe(r *Relation, shared []string, ix *hashIndex) (*Relation, error) {
	e.semijoins.Add(1)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	out := NewRelation(r.Attrs...)
	for i := 0; i < r.Size(); i++ {
		if err := e.g.poll(i); err != nil {
			return nil, err
		}
		if _, ok := ix.lookupRow(r, rIdx, i); ok {
			out.appendFrom(r, i)
		}
	}
	e.indexProbes.Add(int64(r.Size()))
	return out, nil
}

// join returns the natural join r ⋈ s via a hash index of s on the
// shared attributes. Output row order matches the scan kernel exactly:
// probe tuples in r order, matches in s insertion order. Large probe
// sides are partitioned across workers and the partitions concatenated
// in order, so the parallel result stays byte-identical. The row budget
// is enforced inside the probe loop, not just on the finished relation.
func (e *executor) join(r, s *Relation) (*Relation, error) {
	e.joins.Add(1)
	shared := sharedAttrs(r, s)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	// ix is the first (usually only) index layer; rest holds further
	// maintained delta layers, in ascending row-range order, so the
	// per-key match order equals a single full index's row order.
	var ix *hashIndex
	var rest []*hashIndex
	if s.indexes != nil {
		stack, serr := e.indexStack(s, shared)
		if serr != nil {
			return nil, serr
		}
		ix, rest = stack[0], stack[1:]
	} else if ix, err = e.index(s, shared); err != nil {
		return nil, err
	}
	outAttrs, sExtra := joinSchema(r, s, shared)

	// produced tracks rows across all partitions so a single exploding
	// join aborts at the budget instead of materialising past it. The
	// check runs inside the per-key match loop too: one skewed join key
	// whose bucket alone exceeds the budget must abort mid-bucket, not
	// after materialising it.
	var produced atomic.Int64
	probeRange := func(lo, hi int, part *Relation) error {
		flushed := 0
		flush := func() error {
			if err := e.g.checkRows(int(produced.Add(int64(part.n - flushed)))); err != nil {
				return err
			}
			flushed = part.n
			return e.g.ctx.Err()
		}
		for i := lo; i < hi; i++ {
			if err := e.g.poll(i - lo); err != nil {
				return err
			}
			for _, j := range ix.probeRow(r, rIdx, i) {
				part.appendJoined(r, i, s, int(j), sExtra)
				if part.n-flushed >= pollEvery {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			for _, ly := range rest {
				for _, j := range ly.probeRow(r, rIdx, i) {
					part.appendJoined(r, i, s, int(j), sExtra)
					if part.n-flushed >= pollEvery {
						if err := flush(); err != nil {
							return err
						}
					}
				}
			}
		}
		if part.n > flushed {
			return flush()
		}
		return nil
	}

	e.indexProbes.Add(int64(r.Size()))
	if e.sem != nil && r.Size() >= parallelJoinMinRows {
		chunks := cap(e.sem) + 1
		if max := r.Size() / parallelJoinMinRows; chunks > max {
			chunks = max
		}
		size := (r.Size() + chunks - 1) / chunks
		parts := make([]*Relation, chunks)
		err := e.forEach(chunks, func(c int) error {
			lo := c * size
			hi := lo + size
			if hi > r.Size() {
				hi = r.Size()
			}
			// Each partition materialises into its own relation (own
			// arena), so workers never contend on an allocator; the ordered
			// concatenation below keeps partition order, hence
			// byte-identity at any parallelism.
			part := newRelation(outAttrs)
			if err := probeRange(lo, hi, part); err != nil {
				return err
			}
			parts[c] = part
			return nil
		})
		if err != nil {
			return nil, err
		}
		out := parts[0]
		for _, p := range parts[1:] {
			out.appendAll(p)
		}
		return out, nil
	}
	out := newRelation(outAttrs)
	if err := probeRange(0, r.Size(), out); err != nil {
		return nil, err
	}
	return out, nil
}

// run evaluates the query: indexed bag materialisation, the two semijoin
// passes, and the final join pass, with sibling subtrees concurrent in
// every phase.
func (e *executor) run(q Query, db Database, d *decomp.Decomp) (*Relation, error) {
	coverOf, err := assignAtomCovers(q, d)
	if err != nil {
		return nil, err
	}

	root, err := e.build(q, db, d, coverOf, d.Root)
	if err != nil {
		return nil, err
	}
	if err := e.up(root); err != nil {
		return nil, err
	}
	if err := e.down(root); err != nil {
		return nil, err
	}
	res, err := e.collect(root)
	if err != nil {
		return nil, err
	}
	return dedupFast(res, e.g)
}

// build materialises the bag relation of n (join of the λ(u) atom
// relations, projected to χ(u), with covering atoms enforced) and
// recurses into the children concurrently.
func (e *executor) build(q Query, db Database, d *decomp.Decomp, coverOf map[*decomp.Node][]int, n *decomp.Node) (*bagNode, error) {
	var acc *Relation
	for _, eid := range n.Lambda {
		r, err := atomRelation(db, q.Atoms[eid])
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = r
		} else {
			acc, err = e.join(acc, r)
			if err != nil {
				return nil, err
			}
		}
		if err := e.g.check(acc); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("join: node with empty λ-label")
	}
	var bagAttrs []string
	n.Bag.ForEach(func(v int) { bagAttrs = append(bagAttrs, d.H.VertexName(v)) })
	proj, err := projectFast(acc, bagAttrs, e.g)
	if err != nil {
		return nil, err
	}
	for _, eid := range coverOf[n] {
		r, err := atomRelation(db, q.Atoms[eid])
		if err != nil {
			return nil, err
		}
		proj, err = e.semijoin(proj, r)
		if err != nil {
			return nil, err
		}
	}
	if err := e.g.check(proj); err != nil {
		return nil, err
	}
	bn := &bagNode{rel: proj, children: make([]*bagNode, len(n.Children))}
	if err := e.forEach(len(n.Children), func(i int) error {
		cb, err := e.build(q, db, d, coverOf, n.Children[i])
		if err != nil {
			return err
		}
		bn.children[i] = cb
		return nil
	}); err != nil {
		return nil, err
	}
	return bn, nil
}

// up is the bottom-up semijoin pass: children's subtrees reduce
// concurrently, then the node filters against each reduced child.
func (e *executor) up(n *bagNode) error {
	if len(n.children) > 0 {
		if err := e.forEach(len(n.children), func(i int) error {
			return e.up(n.children[i])
		}); err != nil {
			return err
		}
		for _, c := range n.children {
			red, err := e.semijoin(n.rel, c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
	}
	return e.g.check(n.rel)
}

// down is the top-down semijoin pass: each child filters against its
// (already final) parent and recurses; siblings run concurrently. The
// parent is indexed once per distinct shared-column set and the index
// shared by all children probing it — scoped to this node, so it is
// collectable as soon as the pass moves on.
func (e *executor) down(n *bagNode) error {
	if len(n.children) == 0 {
		return nil
	}
	var mu sync.Mutex
	parentIx := map[string]*hashIndex{}
	indexOn := func(shared []string) (*hashIndex, error) {
		key := strings.Join(shared, "\x00")
		mu.Lock()
		defer mu.Unlock()
		if ix, ok := parentIx[key]; ok {
			return ix, nil
		}
		ix, err := e.index(n.rel, shared)
		if err != nil {
			return nil, err
		}
		parentIx[key] = ix
		return ix, nil
	}
	return e.forEach(len(n.children), func(i int) error {
		c := n.children[i]
		shared := sharedAttrs(c.rel, n.rel)
		var red *Relation
		var err error
		if len(shared) == 0 {
			red, err = e.semijoin(c.rel, n.rel)
		} else {
			var ix *hashIndex
			if ix, err = indexOn(shared); err == nil {
				red, err = e.semijoinProbe(c.rel, shared, ix)
			}
		}
		if err != nil {
			return err
		}
		c.rel = red
		if err := e.g.check(c.rel); err != nil {
			return err
		}
		return e.down(c)
	})
}

// collect is the final bottom-up join pass: each child's subtree result
// materialises concurrently (a per-subtree partition of the answer's
// provenance), then the node joins them left to right — the same merge
// order as the scan kernel, so rows come out byte-identical.
func (e *executor) collect(n *bagNode) (*Relation, error) {
	subs := make([]*Relation, len(n.children))
	if err := e.forEach(len(n.children), func(i int) error {
		sub, err := e.collect(n.children[i])
		if err != nil {
			return err
		}
		subs[i] = sub
		return nil
	}); err != nil {
		return nil, err
	}
	acc := n.rel
	for _, sub := range subs {
		var err error
		acc, err = e.join(acc, sub)
		if err != nil {
			return nil, err
		}
		if err := e.g.check(acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
