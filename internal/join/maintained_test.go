package join

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// mrelDB wraps every relation of db in an MRel and returns the
// maintained set plus the database of current views.
func mrelDB(db Database) (map[string]*MRel, Database) {
	ms := make(map[string]*MRel, len(db))
	views := make(Database, len(db))
	for name, rel := range db {
		m := NewMRel(rel)
		ms[name] = m
		views[name] = m.View()
	}
	return ms, views
}

func viewDB(ms map[string]*MRel) Database {
	views := make(Database, len(ms))
	for name, m := range ms {
		views[name] = m.View()
	}
	return views
}

// plainDB rebuilds each view's rows into a fresh unindexed relation —
// the from-scratch materialised state an incremental run must match.
func plainDB(db Database) Database {
	out := make(Database, len(db))
	for name, rel := range db {
		fresh := NewRelation(rel.Attrs...)
		for i := 0; i < rel.Size(); i++ {
			fresh.appendFrom(rel, i)
		}
		out[name] = fresh
	}
	return out
}

// TestMaintainedDeltaByteIdentical: after every random insert/delete
// batch, evaluating over the maintained snapshot views (layered
// indexes, reused across queries) must produce rows byte-identical to
// a from-scratch evaluation on the materialised state — serial,
// parallel, and against the scan kernel.
func TestMaintainedDeltaByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		q, db := randomInstanceForExec(r, 3+int(seed%3), 30, 5)
		d := decomposeFor(t, q)
		ms, views := mrelDB(db)

		for round := 0; round < 6; round++ {
			// Random delta batch: inserts (some duplicating live rows)
			// and deletes (some of absent tuples) over every relation.
			for _, m := range ms {
				var ins, del [][]int
				for k := 0; k < 1+r.Intn(20); k++ {
					ins = append(ins, []int{r.Intn(5), r.Intn(5)})
				}
				for k := 0; k < r.Intn(8); k++ {
					del = append(del, []int{r.Intn(6), r.Intn(6)})
				}
				if _, _, err := m.Insert(ins); err != nil {
					t.Fatal(err)
				}
				if _, _, err := m.Delete(del); err != nil {
					t.Fatal(err)
				}
				m.Commit()
			}
			views = viewDB(ms)
			baseline := plainDB(views)

			want, err := EvaluateCtx(context.Background(), q, baseline, d, EvalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for name, opts := range map[string]EvalOptions{
				"indexed":  {},
				"parallel": {Parallelism: 4},
				"scan":     {Kernel: KernelScan},
			} {
				got, err := EvaluateCtx(context.Background(), q, views, d, opts)
				if err != nil {
					t.Fatalf("seed %d round %d %s: %v", seed, round, name, err)
				}
				if !reflect.DeepEqual(got.Rows(), want.Rows()) {
					t.Fatalf("seed %d round %d %s: maintained rows diverge from from-scratch", seed, round, name)
				}
			}
		}
	}
}

// TestMaintainedIndexReuse: the first query at a version captures its
// index builds into the snapshot's IndexSet; a repeat query at the
// same version must reuse them (IndexReuses > 0), and after an
// insert-only delta the maintained stacks keep serving (no full
// rebuilds of registered sets).
func TestMaintainedIndexReuse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	q, db := randomInstanceForExec(r, 4, 50, 6)
	d := decomposeFor(t, q)
	ms, views := mrelDB(db)

	var cold, warm ExecStats
	if _, err := EvaluateCtx(context.Background(), q, views, d, EvalOptions{Stats: &cold}); err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateCtx(context.Background(), q, views, d, EvalOptions{Stats: &warm}); err != nil {
		t.Fatal(err)
	}
	if warm.IndexReuses == 0 {
		t.Fatalf("repeat query at same version reused no indexes: %+v", warm)
	}
	if warm.IndexReuses < cold.IndexReuses {
		t.Fatalf("warm reuses %d < cold reuses %d", warm.IndexReuses, cold.IndexReuses)
	}

	// Insert-only delta: captured sets are adopted and extended with a
	// delta layer, so the next query still reuses instead of rebuilding.
	for _, m := range ms {
		if _, _, err := m.Insert([][]int{{9, 9}, {9, 8}}); err != nil {
			t.Fatal(err)
		}
		m.Commit()
	}
	var after ExecStats
	if _, err := EvaluateCtx(context.Background(), q, viewDB(ms), d, EvalOptions{Stats: &after}); err != nil {
		t.Fatal(err)
	}
	if after.IndexReuses == 0 {
		t.Fatalf("post-delta query reused no maintained indexes: %+v", after)
	}
}

// TestMaintainedSetSemantics: duplicate inserts collapse, deletes
// remove the live copy, deleting an absent tuple is a counted no-op,
// and insert+delete of the same tuple in one batch nets to absence.
func TestMaintainedSetSemantics(t *testing.T) {
	m := NewMRel(NewRelation("a", "b").Add(1, 1).Add(2, 2))

	ins, dups, err := m.Insert([][]int{{1, 1}, {3, 3}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ins != 1 || dups != 2 {
		t.Fatalf("insert counts = (%d, %d), want (1, 2)", ins, dups)
	}
	del, missed, err := m.Delete([][]int{{3, 3}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if del != 1 || missed != 1 {
		t.Fatalf("delete counts = (%d, %d), want (1, 1)", del, missed)
	}
	if compacted := m.Commit(); !compacted {
		t.Fatal("batch with an effective delete did not compact")
	}
	got := m.View().Sorted()
	want := [][]int{{1, 1}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live rows = %v, want %v", got, want)
	}
	if m.LiveSize() != 2 {
		t.Fatalf("LiveSize = %d, want 2", m.LiveSize())
	}

	// Arity mismatches are rejected, not silently misapplied.
	if _, _, err := m.Insert([][]int{{1}}); err == nil {
		t.Fatal("arity-mismatched insert accepted")
	}
	if _, _, err := m.Delete([][]int{{1, 2, 3}}); err == nil {
		t.Fatal("arity-mismatched delete accepted")
	}
}

// TestMaintainedEmptyTransitions: delete-to-empty and refill — the
// empty-relation edge both ways.
func TestMaintainedEmptyTransitions(t *testing.T) {
	m := NewMRel(NewRelation("a", "b").Add(1, 2))
	if _, _, err := m.Delete([][]int{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	m.Commit()
	if m.View().Size() != 0 || m.View().Rows() != nil {
		t.Fatalf("emptied relation view has %d rows", m.View().Size())
	}
	if _, _, err := m.Insert([][]int{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	m.Commit()
	if got := m.View().Sorted(); !reflect.DeepEqual(got, [][]int{{5, 6}}) {
		t.Fatalf("refilled relation = %v", got)
	}
}

// TestMaintainedLayerCollapse: a long run of tiny insert batches must
// not grow layer stacks without bound — past maxIndexLayers the next
// commit collapses a set to one full index — and point lookups stay
// correct throughout.
func TestMaintainedLayerCollapse(t *testing.T) {
	m := NewMRel(NewRelation("a", "b"))
	for i := 0; i < 4*maxIndexLayers; i++ {
		if _, _, err := m.Insert([][]int{{i, i}}); err != nil {
			t.Fatal(err)
		}
		m.Commit()
		if _, layers := m.Layers(); layers > maxIndexLayers {
			t.Fatalf("batch %d: %d layers, cap is %d", i, layers, maxIndexLayers)
		}
		// Every inserted tuple must stay findable through the stack.
		if _, dups, _ := m.Insert([][]int{{0, 0}}); dups != 1 {
			t.Fatalf("batch %d: earliest tuple lost from rowset stack", i)
		}
		m.Commit()
	}
	if m.LiveSize() != 4*maxIndexLayers {
		t.Fatalf("LiveSize = %d, want %d", m.LiveSize(), 4*maxIndexLayers)
	}
}

// TestMaintainedWidenIsolation: a width promotion (int32 → int64
// column) on the writer's side must not disturb an already-published
// snapshot, which keeps its narrow chunks.
func TestMaintainedWidenIsolation(t *testing.T) {
	m := NewMRel(NewRelation("a", "b").Add(1, 2))
	old := m.View()
	if _, _, err := m.Insert([][]int{{1 << 40, 3}}); err != nil {
		t.Fatal(err)
	}
	m.Commit()
	if got := old.Sorted(); !reflect.DeepEqual(got, [][]int{{1, 2}}) {
		t.Fatalf("old snapshot changed after widen: %v", got)
	}
	want := [][]int{{1, 2}, {1 << 40, 3}}
	if got := m.View().Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("new snapshot = %v, want %v", got, want)
	}
}

// TestMaintainedSnapshotIsolationRace: queries pinned to an old
// snapshot run concurrently with a writer pushing insert/delete
// batches (including a width promotion) through many commits. Under
// -race this is the proof that published views share storage with the
// advancing writer without a single conflicting access, and every
// pinned read sees exactly the pinned version's rows.
func TestMaintainedSnapshotIsolationRace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q, db := randomInstanceForExec(r, 3, 40, 5)
	d := decomposeFor(t, q)
	ms, views := mrelDB(db)

	want, err := EvaluateCtx(context.Background(), q, views, d, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := want.Rows()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wr := rand.New(rand.NewSource(12))
		for i := 0; i < 30; i++ {
			for _, m := range ms {
				var ins, del [][]int
				for k := 0; k < 10; k++ {
					ins = append(ins, []int{wr.Intn(5), wr.Intn(5)})
					del = append(del, []int{wr.Intn(5), wr.Intn(5)})
				}
				if i == 7 {
					ins = append(ins, []int{1 << 40, wr.Intn(5)})
				}
				m.Insert(ins)
				m.Delete(del)
				m.Commit()
			}
		}
	}()
	for i := 0; i < 10; i++ {
		got, err := EvaluateCtx(context.Background(), q, views, d, EvalOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows(), wantRows) {
			t.Fatalf("read %d: pinned snapshot drifted under concurrent writes", i)
		}
	}
	wg.Wait()
}

// TestBuildIndexColsRange: a stack of range indexes over ascending
// disjoint ranges must enumerate exactly the rows of one full index,
// in the same order.
func TestBuildIndexColsRange(t *testing.T) {
	r := NewRelation("a", "b")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		r.Add(rng.Intn(7), rng.Intn(7))
	}
	cols := []int{0}
	full, err := buildIndexCols(r, cols, 0, r.Size(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 900, 901, 2048, 3000}
	var stack []*hashIndex
	for i := 0; i+1 < len(cuts); i++ {
		ly, err := buildIndexCols(r, cols, cuts[i], cuts[i+1], nil)
		if err != nil {
			t.Fatal(err)
		}
		stack = append(stack, ly)
	}
	for key := 0; key < 7; key++ {
		vals := []int{key}
		var got []int32
		for _, ly := range stack {
			got = append(got, ly.probeVals(vals)...)
		}
		want := full.probeVals(vals)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, append([]int32(nil), want...)) {
			t.Fatalf("key %d: layered rows %v != full-index rows %v", key, got, want)
		}
	}
}

// TestMaintainedValueWidths: lookups and deletes keep working across
// the int32/int64 column split (hashVals must mirror hashRow).
func TestMaintainedValueWidths(t *testing.T) {
	wide := 1 << 40
	m := NewMRel(NewRelation("a").Add(1).Add(wide))
	if _, dups, _ := m.Insert([][]int{{wide}}); dups != 1 {
		t.Fatal("wide tuple not found by value lookup")
	}
	if del, _, _ := m.Delete([][]int{{wide}}); del != 1 {
		t.Fatal("wide tuple not deleted by value")
	}
	m.Commit()
	if got := m.View().Sorted(); !reflect.DeepEqual(got, [][]int{{1}}) {
		t.Fatalf("rows = %v, want [[1]]", got)
	}
}
