package join

// Build-once hash indexes over relations, the storage half of the
// indexed Yannakakis executor (exec.go). An index maps the byte-encoded
// key of a tuple's projection onto a column set — the shared variables
// of one join-tree edge — to the positions of the matching tuples, so a
// semijoin or join probes a map instead of re-scanning tuple slices.
//
// Keys are raw little-endian encodings of the key columns, not the
// fmt-formatted strings of the legacy scan kernel (keyOf): encoding is
// allocation-free on the probe side (the map lookup uses the string(buf)
// no-copy form) and an order of magnitude cheaper per tuple.

// hashIndex is a build-once index of one relation on one column set.
type hashIndex struct {
	cols    []int // key column positions in the indexed relation
	buckets map[string][]int32
}

// appendTupleKey appends the little-endian encoding of the key columns
// of t to dst and returns the extended buffer.
func appendTupleKey(dst []byte, t []int, cols []int) []byte {
	for _, c := range cols {
		v := uint64(t[c])
		dst = append(dst,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return dst
}

// buildIndex indexes r on attrs. Bucket tuple positions keep r's tuple
// order, so probes that emit matches bucket-by-bucket produce the same
// row order as the legacy scan kernel. The guard's poll keeps a huge
// build responsive to cancellation.
func buildIndex(r *Relation, attrs []string, g *guard) (*hashIndex, error) {
	cols, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	ix := &hashIndex{
		cols:    cols,
		buckets: make(map[string][]int32, len(r.Tuples)),
	}
	buf := make([]byte, 0, 8*len(cols))
	for i, t := range r.Tuples {
		if err := g.poll(i); err != nil {
			return nil, err
		}
		buf = appendTupleKey(buf[:0], t, cols)
		ix.buckets[string(buf)] = append(ix.buckets[string(buf)], int32(i))
	}
	return ix, nil
}

// probe returns the positions of the indexed tuples matching the key in
// buf (nil when none). The lookup does not retain buf.
func (ix *hashIndex) probe(buf []byte) []int32 {
	return ix.buckets[string(buf)]
}

// dedupFast removes duplicate tuples in place preserving first-occurrence
// order, like Relation.Dedup but with byte keys instead of fmt-formatted
// strings.
func dedupFast(r *Relation, g *guard) (*Relation, error) {
	cols := identity(len(r.Attrs))
	seen := make(map[string]struct{}, len(r.Tuples))
	buf := make([]byte, 0, 8*len(cols))
	out := r.Tuples[:0]
	for i, t := range r.Tuples {
		if err := g.poll(i); err != nil {
			return nil, err
		}
		buf = appendTupleKey(buf[:0], t, cols)
		if _, dup := seen[string(buf)]; !dup {
			seen[string(buf)] = struct{}{}
			out = append(out, t)
		}
	}
	r.Tuples = out
	return r, nil
}

// projectFast is Relation.Project with byte-key deduplication and guard
// polling; first-occurrence order is preserved, like the legacy path.
func projectFast(r *Relation, attrs []string, g *guard) (*Relation, error) {
	idx, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(attrs...)
	seen := make(map[string]struct{}, len(r.Tuples))
	buf := make([]byte, 0, 8*len(idx))
	for i, t := range r.Tuples {
		if err := g.poll(i); err != nil {
			return nil, err
		}
		buf = appendTupleKey(buf[:0], t, idx)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		row := make([]int, len(idx))
		for j, c := range idx {
			row[j] = t[c]
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}
