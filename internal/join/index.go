package join

// Build-once hash indexes over columnar relations, the storage half of
// the indexed Yannakakis executor (exec.go). An index groups a
// relation's row offsets by their key on one column set — the shared
// variables of one join-tree edge — in CSR form: probe a key, get back
// an offset range into perm instead of a [][]int bucket.
//
// There are no keys materialised anywhere: bucket assignment runs on
// an open-addressing table that hashes column values directly and
// resolves collisions by comparing values against a representative row
// of the candidate bucket. Building an index therefore allocates a
// handful of flat arrays, where the byte-string-keyed map of the
// pre-columnar layout allocated one key string per distinct key — the
// single biggest line item of the old kernel's allocation profile.

// hashIndex is a build-once index of one relation on one column set.
// An index may cover only a row range [lo, hi) of its relation: the
// maintained-index layers of maintained.go index each insert delta as
// its own range, and a stack of such layers over disjoint ascending
// ranges probes in the same overall row order as one full index.
type hashIndex struct {
	r    *Relation
	cols []int // key column positions in the indexed relation
	// lo/hi bound the covered row range; perm holds absolute row ids.
	lo, hi int
	// slots is the open-addressing table: bucket id + 1, 0 = empty.
	slots []int32
	mask  uint64
	// first maps bucket id → a representative row, for key equality.
	first []int32
	// starts/perm are the CSR payload: bucket b's rows are
	// perm[starts[b]:starts[b+1]], in the relation's row order.
	starts []int32
	perm   []int32
}

// tableSize returns the open-addressing table size for n keys: the
// next power of two ≥ 2n, so load stays ≤ ~0.5 and probes short.
func tableSize(n int) int {
	size := 8
	for size < 2*n {
		size <<= 1
	}
	return size
}

// rowsEqualOn reports whether row i of r equals row j of s on the
// paired column sets.
func rowsEqualOn(r *Relation, rCols []int, i int, s *Relation, sCols []int, j int) bool {
	for k, c := range rCols {
		if r.cols[c].at(i) != s.cols[sCols[k]].at(j) {
			return false
		}
	}
	return true
}

// buildIndex indexes r on attrs. Bucket row offsets keep r's row
// order, so probes that emit matches bucket-by-bucket produce the same
// row order as the scan kernel's insertion-order buckets — the
// byte-identity contract. The guard's poll keeps a huge build
// responsive to cancellation.
func buildIndex(r *Relation, attrs []string, g *guard) (*hashIndex, error) {
	cols, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	return buildIndexCols(r, cols, 0, r.n, g)
}

// buildIndexCols indexes rows [lo, hi) of r on column positions cols.
// perm holds absolute row ids, so a layer stack over disjoint
// ascending ranges enumerates matches in overall row order — the
// property that keeps maintained indexes byte-identical to a single
// full rebuild. A nil guard skips cancellation polling (maintenance
// builds run under the dataset lock, not a query deadline).
func buildIndexCols(r *Relation, cols []int, lo, hi int, g *guard) (*hashIndex, error) {
	n := hi - lo
	size := tableSize(n)
	ix := &hashIndex{
		r:     r,
		cols:  cols,
		lo:    lo,
		hi:    hi,
		slots: make([]int32, size),
		mask:  uint64(size - 1),
	}
	rowBucket := make([]int32, n)
	for i := lo; i < hi; i++ {
		if err := g.poll(i - lo); err != nil {
			return nil, err
		}
		j := hashRow(r, cols, i) & ix.mask
		for {
			b := ix.slots[j]
			if b == 0 {
				b = int32(len(ix.first)) + 1
				ix.slots[j] = b
				ix.first = append(ix.first, int32(i))
			} else if !rowsEqualOn(r, cols, int(ix.first[b-1]), r, cols, i) {
				j = (j + 1) & ix.mask
				continue
			}
			rowBucket[i-lo] = b - 1
			break
		}
	}
	// CSR fill: counts → prefix sums → offsets in row order.
	ix.starts = make([]int32, len(ix.first)+1)
	for _, b := range rowBucket {
		ix.starts[b+1]++
	}
	for b := 0; b < len(ix.first); b++ {
		ix.starts[b+1] += ix.starts[b]
	}
	ix.perm = make([]int32, n)
	cursor := append([]int32(nil), ix.starts[:len(ix.first)]...)
	for i := lo; i < hi; i++ {
		b := rowBucket[i-lo]
		ix.perm[cursor[b]] = int32(i)
		cursor[b]++
	}
	return ix, nil
}

// lookupRow finds the bucket whose key equals row `row` of s on sCols.
func (ix *hashIndex) lookupRow(s *Relation, sCols []int, row int) (int32, bool) {
	j := hashRow(s, sCols, row) & ix.mask
	for {
		b := ix.slots[j]
		if b == 0 {
			return 0, false
		}
		if rowsEqualOn(ix.r, ix.cols, int(ix.first[b-1]), s, sCols, row) {
			return b - 1, true
		}
		j = (j + 1) & ix.mask
	}
}

// probeRow returns the offsets (into the indexed relation, in its row
// order) whose key equals row `row` of s on sCols; nil when none.
func (ix *hashIndex) probeRow(s *Relation, sCols []int, row int) []int32 {
	b, ok := ix.lookupRow(s, sCols, row)
	if !ok {
		return nil
	}
	return ix.perm[ix.starts[b]:ix.starts[b+1]]
}

// hashVals hashes a materialised value tuple exactly like hashRow
// hashes the same values read from a relation, so value probes and row
// probes land in the same buckets.
func hashVals(vals []int) uint64 {
	h := uint64(len(vals))*0x94d049bb133111eb + 1
	for _, v := range vals {
		h = hashMix(h, uint64(v))
	}
	return h
}

// valsEqualOn reports whether row i of r equals vals on cols.
func valsEqualOn(r *Relation, cols []int, i int, vals []int) bool {
	for k, c := range cols {
		if r.cols[c].at(i) != vals[k] {
			return false
		}
	}
	return true
}

// lookupVals finds the bucket whose key equals the materialised tuple
// vals — the mutation path's point lookup (delete-by-value, insert
// dedup) against the always-maintained all-columns index.
func (ix *hashIndex) lookupVals(vals []int) (int32, bool) {
	j := hashVals(vals) & ix.mask
	for {
		b := ix.slots[j]
		if b == 0 {
			return 0, false
		}
		if valsEqualOn(ix.r, ix.cols, int(ix.first[b-1]), vals) {
			return b - 1, true
		}
		j = (j + 1) & ix.mask
	}
}

// probeVals returns the absolute row offsets whose key equals vals.
func (ix *hashIndex) probeVals(vals []int) []int32 {
	b, ok := ix.lookupVals(vals)
	if !ok {
		return nil
	}
	return ix.perm[ix.starts[b]:ix.starts[b+1]]
}

// bucketOf returns the bucket id of one of the indexed relation's own
// rows (always present).
func (ix *hashIndex) bucketOf(row int) int32 {
	b, _ := ix.lookupRow(ix.r, ix.cols, row)
	return b
}

// dedupFast removes duplicate tuples preserving first-occurrence
// order, like Relation.Dedup but deduplicating on an open-addressing
// seen-table (values compared against the rows already emitted) — no
// key strings. The result is a fresh relation.
func dedupFast(r *Relation, g *guard) (*Relation, error) {
	return projectIdx(r, NewRelation(r.Attrs...), identCols(len(r.cols)), g)
}

// projectFast is Relation.Project with the same open-addressing
// deduplication and guard polling; first-occurrence order is
// preserved, like the scan path.
func projectFast(r *Relation, attrs []string, g *guard) (*Relation, error) {
	idx, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	return projectIdx(r, NewRelation(attrs...), idx, g)
}

// projectIdx emits the distinct projections of r onto columns idx into
// out (whose schema is aligned with idx). Candidate rows dedupe
// against already-emitted output rows via an open-addressing table of
// output offsets, so the loop allocates nothing per row.
func projectIdx(r *Relation, out *Relation, idx []int, g *guard) (*Relation, error) {
	size := tableSize(r.n)
	slots := make([]int32, size)
	mask := uint64(size - 1)
	outCols := identCols(len(idx))
	for i := 0; i < r.n; i++ {
		if err := g.poll(i); err != nil {
			return nil, err
		}
		j := hashRow(r, idx, i) & mask
		for {
			o := slots[j]
			if o == 0 {
				slots[j] = int32(out.n) + 1
				out.appendProjected(r, i, idx)
				break
			}
			if rowsEqualOn(out, outCols, int(o-1), r, idx, i) {
				break
			}
			j = (j + 1) & mask
		}
	}
	return out, nil
}
