package join

import (
	"fmt"

	"repro/internal/decomp"
)

// bagNode is one node of the join tree derived from an HD.
type bagNode struct {
	rel      *Relation
	children []*bagNode
}

// BuildJoinTree materialises the join tree of query q over database db
// guided by the hypertree decomposition d of q's hypergraph:
//
//   - the bag relation of node u is the join of the λ(u) atom relations
//     projected onto χ(u);
//   - every atom e is additionally enforced at some node whose bag
//     covers e (HD condition 1 guarantees one exists).
//
// The intermediate relation at each node has at most ∏_{e∈λ(u)} |rel(e)|
// ≤ N^width tuples — the classic width-bounded evaluation guarantee.
func BuildJoinTree(q Query, db Database, d *decomp.Decomp) (*bagNode, error) {
	h := d.H
	if h.NumEdges() != len(q.Atoms) {
		return nil, fmt.Errorf("join: decomposition hypergraph has %d edges, query has %d atoms",
			h.NumEdges(), len(q.Atoms))
	}
	// Assign each atom to one covering node.
	coverOf := map[*decomp.Node][]int{}
	for e := range q.Atoms {
		var host *decomp.Node
		d.Root.Walk(func(n *decomp.Node) bool {
			if h.Edge(e).SubsetOf(n.Bag) {
				host = n
				return false
			}
			return true
		})
		if host == nil {
			return nil, fmt.Errorf("join: atom %d not covered by any bag (invalid HD?)", e)
		}
		coverOf[host] = append(coverOf[host], e)
	}

	var build func(n *decomp.Node) (*bagNode, error)
	build = func(n *decomp.Node) (*bagNode, error) {
		// Join the λ(u) atom relations.
		var acc *Relation
		for _, e := range n.Lambda {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = r
			} else {
				acc, err = acc.Join(r)
				if err != nil {
					return nil, err
				}
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("join: node with empty λ-label")
		}
		// Project to χ(u).
		var bagAttrs []string
		n.Bag.ForEach(func(v int) { bagAttrs = append(bagAttrs, h.VertexName(v)) })
		proj, err := acc.Project(bagAttrs...)
		if err != nil {
			return nil, err
		}
		// Enforce atoms assigned to this node.
		for _, e := range coverOf[n] {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			proj, err = proj.Semijoin(r)
			if err != nil {
				return nil, err
			}
		}
		bn := &bagNode{rel: proj}
		for _, c := range n.Children {
			cb, err := build(c)
			if err != nil {
				return nil, err
			}
			bn.children = append(bn.children, cb)
		}
		return bn, nil
	}
	return build(d.Root)
}

// Yannakakis runs the classic three-pass algorithm on a join tree:
// bottom-up semijoin reduction, top-down semijoin reduction, then a
// bottom-up join producing the full result. The output relation ranges
// over the union of all bag attributes (= all query variables).
func Yannakakis(root *bagNode) (*Relation, error) {
	// Pass 1: bottom-up semijoins.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return nil
	}
	if err := up(root); err != nil {
		return nil, err
	}
	// Pass 2: top-down semijoins.
	var down func(n *bagNode) error
	down = func(n *bagNode) error {
		for _, c := range n.children {
			red, err := c.rel.Semijoin(n.rel)
			if err != nil {
				return err
			}
			c.rel = red
			if err := down(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(root); err != nil {
		return nil, err
	}
	// Pass 3: bottom-up joins.
	var collect func(n *bagNode) (*Relation, error)
	collect = func(n *bagNode) (*Relation, error) {
		acc := n.rel
		for _, c := range n.children {
			sub, err := collect(c)
			if err != nil {
				return nil, err
			}
			acc, err = acc.Join(sub)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	res, err := collect(root)
	if err != nil {
		return nil, err
	}
	return res.Dedup(), nil
}

// Evaluate answers the full conjunctive query using the decomposition:
// join tree materialisation followed by Yannakakis. The result is the
// set of all satisfying assignments to the query's variables.
func Evaluate(q Query, db Database, d *decomp.Decomp) (*Relation, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return nil, err
	}
	return Yannakakis(tree)
}

// IsBoolean reports whether the query has at least one answer, with
// early-exit semantics on the final pass (the Boolean CQ case the paper
// mentions is solvable in linear time from an HD).
func IsBoolean(q Query, db Database, d *decomp.Decomp) (bool, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return false, err
	}
	// Bottom-up semijoin reduction alone decides non-emptiness.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return nil
	}
	if err := up(tree); err != nil {
		return false, err
	}
	return tree.rel.Size() > 0, nil
}
