package join

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/decomp"
)

// bagNode is one node of the join tree derived from an HD.
type bagNode struct {
	rel      *Relation
	children []*bagNode
}

// ErrRowBudget is returned (wrapped) when an evaluation exceeds its
// per-query row budget.
var ErrRowBudget = errors.New("join: row budget exceeded")

// EvalOptions configures one evaluation. The zero value means the
// indexed kernel, serial, with no limits.
type EvalOptions struct {
	// MaxRows caps the size of every intermediate and final relation;
	// exceeding it aborts the evaluation with ErrRowBudget. 0 = no cap.
	// The indexed kernel additionally enforces the cap inside join probe
	// loops, so a single exploding operation aborts at the budget.
	MaxRows int
	// Kernel selects the relational kernel: KernelIndexed (default,
	// build-once hash indexes) or KernelScan (the legacy slice-scan
	// baseline).
	Kernel Kernel
	// Parallelism caps concurrent executor workers, including the
	// calling goroutine (KernelIndexed only): sibling subtrees of the
	// three Yannakakis passes, bag builds, and large final-join probe
	// loops run on the pool. ≤ 1 means serial.
	Parallelism int
	// Tokens, when set, gates every spawned worker on a shared budget
	// (e.g. the decomposition service's) so query execution and solver
	// parallelism never oversubscribe the host together. A spawn that
	// gets no token runs inline instead — tokens throttle, never block.
	Tokens TokenSource
	// Stats, when non-nil, receives the executor's effort counters.
	Stats *ExecStats
}

// guard is checked after every relational operation of a budgeted
// evaluation — and, in the indexed kernel, inside long probe loops via
// poll — so a runaway join cannot pin a serving goroutine past its
// deadline. A nil guard checks nothing.
type guard struct {
	ctx     context.Context
	maxRows int
}

func (g *guard) check(r *Relation) error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	return g.checkRows(r.Size())
}

// checkRows enforces the row budget against a running row count.
func (g *guard) checkRows(n int) error {
	if g == nil {
		return nil
	}
	if g.maxRows > 0 && n > g.maxRows {
		return fmt.Errorf("%w: intermediate result has %d rows, budget is %d",
			ErrRowBudget, n, g.maxRows)
	}
	return nil
}

// poll is the in-loop cancellation check: iteration counters pass
// through it and every pollEvery-th one (plus the first) consults the
// context, keeping huge scans responsive at negligible cost.
func (g *guard) poll(i int) error {
	if g == nil || i&(pollEvery-1) != 0 {
		return nil
	}
	return g.ctx.Err()
}

// BuildJoinTree materialises the join tree of query q over database db
// guided by the hypertree decomposition d of q's hypergraph:
//
//   - the bag relation of node u is the join of the λ(u) atom relations
//     projected onto χ(u);
//   - every atom e is additionally enforced at some node whose bag
//     covers e (HD condition 1 guarantees one exists).
//
// The intermediate relation at each node has at most ∏_{e∈λ(u)} |rel(e)|
// ≤ N^width tuples — the classic width-bounded evaluation guarantee.
func BuildJoinTree(q Query, db Database, d *decomp.Decomp) (*bagNode, error) {
	return buildJoinTree(q, db, d, nil)
}

func buildJoinTree(q Query, db Database, d *decomp.Decomp, g *guard) (*bagNode, error) {
	h := d.H
	coverOf, err := assignAtomCovers(q, d)
	if err != nil {
		return nil, err
	}

	var build func(n *decomp.Node) (*bagNode, error)
	build = func(n *decomp.Node) (*bagNode, error) {
		// Join the λ(u) atom relations.
		var acc *Relation
		for _, e := range n.Lambda {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = r
			} else {
				acc, err = acc.Join(r)
				if err != nil {
					return nil, err
				}
			}
			if err := g.check(acc); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("join: node with empty λ-label")
		}
		// Project to χ(u).
		var bagAttrs []string
		n.Bag.ForEach(func(v int) { bagAttrs = append(bagAttrs, h.VertexName(v)) })
		proj, err := acc.Project(bagAttrs...)
		if err != nil {
			return nil, err
		}
		// Enforce atoms assigned to this node.
		for _, e := range coverOf[n] {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			proj, err = proj.Semijoin(r)
			if err != nil {
				return nil, err
			}
		}
		if err := g.check(proj); err != nil {
			return nil, err
		}
		bn := &bagNode{rel: proj}
		for _, c := range n.Children {
			cb, err := build(c)
			if err != nil {
				return nil, err
			}
			bn.children = append(bn.children, cb)
		}
		return bn, nil
	}
	return build(d.Root)
}

// assignAtomCovers validates the decomposition against the query and
// maps each decomposition node to the atoms it must enforce: every atom
// is assigned to the first node (in Walk order) whose bag covers it (HD
// condition 1 guarantees one exists). Both kernels share this plan
// shaping — identical host selection is part of what keeps their
// outputs byte-identical.
func assignAtomCovers(q Query, d *decomp.Decomp) (map[*decomp.Node][]int, error) {
	h := d.H
	if h.NumEdges() != len(q.Atoms) {
		return nil, fmt.Errorf("join: decomposition hypergraph has %d edges, query has %d atoms",
			h.NumEdges(), len(q.Atoms))
	}
	coverOf := map[*decomp.Node][]int{}
	for e := range q.Atoms {
		var host *decomp.Node
		d.Root.Walk(func(n *decomp.Node) bool {
			if h.Edge(e).SubsetOf(n.Bag) {
				host = n
				return false
			}
			return true
		})
		if host == nil {
			return nil, fmt.Errorf("join: atom %d not covered by any bag (invalid HD?)", e)
		}
		coverOf[host] = append(coverOf[host], e)
	}
	return coverOf, nil
}

// Yannakakis runs the classic three-pass algorithm on a join tree:
// bottom-up semijoin reduction, top-down semijoin reduction, then a
// bottom-up join producing the full result. The output relation ranges
// over the union of all bag attributes (= all query variables).
func Yannakakis(root *bagNode) (*Relation, error) {
	return yannakakis(root, nil)
}

func yannakakis(root *bagNode, g *guard) (*Relation, error) {
	// Pass 1: bottom-up semijoins.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return g.check(n.rel)
	}
	if err := up(root); err != nil {
		return nil, err
	}
	// Pass 2: top-down semijoins.
	var down func(n *bagNode) error
	down = func(n *bagNode) error {
		for _, c := range n.children {
			red, err := c.rel.Semijoin(n.rel)
			if err != nil {
				return err
			}
			c.rel = red
			if err := g.check(c.rel); err != nil {
				return err
			}
			if err := down(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(root); err != nil {
		return nil, err
	}
	// Pass 3: bottom-up joins.
	var collect func(n *bagNode) (*Relation, error)
	collect = func(n *bagNode) (*Relation, error) {
		acc := n.rel
		for _, c := range n.children {
			sub, err := collect(c)
			if err != nil {
				return nil, err
			}
			acc, err = acc.Join(sub)
			if err != nil {
				return nil, err
			}
			if err := g.check(acc); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	res, err := collect(root)
	if err != nil {
		return nil, err
	}
	return res.Dedup(), nil
}

// Evaluate answers the full conjunctive query using the decomposition:
// join tree materialisation followed by Yannakakis, on the indexed
// kernel. The result is the set of all satisfying assignments to the
// query's variables.
func Evaluate(q Query, db Database, d *decomp.Decomp) (*Relation, error) {
	return EvaluateCtx(context.Background(), q, db, d, EvalOptions{})
}

// EvaluateCtx is Evaluate under a context, per-query limits, and an
// executor configuration: the evaluation is aborted when the context is
// cancelled (deadline = the query's time budget) or when any
// intermediate or final relation exceeds opts.MaxRows (ErrRowBudget).
// The default indexed kernel checks both inside its probe loops; the
// legacy scan kernel (opts.Kernel = KernelScan) only between relational
// operations. Both kernels produce byte-identical rows, at any
// parallelism.
func EvaluateCtx(ctx context.Context, q Query, db Database, d *decomp.Decomp, opts EvalOptions) (*Relation, error) {
	if opts.Kernel == KernelScan {
		g := &guard{ctx: ctx, maxRows: opts.MaxRows}
		tree, err := buildJoinTree(q, db, d, g)
		if err != nil {
			return nil, err
		}
		return yannakakis(tree, g)
	}
	return evaluateIndexed(ctx, q, db, d, opts)
}

// IsBoolean reports whether the query has at least one answer, with
// early-exit semantics on the final pass (the Boolean CQ case the paper
// mentions is solvable in linear time from an HD).
func IsBoolean(q Query, db Database, d *decomp.Decomp) (bool, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return false, err
	}
	// Bottom-up semijoin reduction alone decides non-emptiness.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return nil
	}
	if err := up(tree); err != nil {
		return false, err
	}
	return tree.rel.Size() > 0, nil
}
