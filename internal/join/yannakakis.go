package join

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/decomp"
)

// bagNode is one node of the join tree derived from an HD.
type bagNode struct {
	rel      *Relation
	children []*bagNode
}

// ErrRowBudget is returned (wrapped) when an evaluation exceeds its
// per-query row budget.
var ErrRowBudget = errors.New("join: row budget exceeded")

// EvalOptions bounds one evaluation. The zero value means no limits.
type EvalOptions struct {
	// MaxRows caps the size of every intermediate and final relation;
	// exceeding it aborts the evaluation with ErrRowBudget. 0 = no cap.
	MaxRows int
}

// guard is checked after every relational operation of a budgeted
// evaluation: context cancellation and the row cap both abort the
// query between operations, so a runaway join cannot pin a serving
// goroutine past its deadline. A nil guard checks nothing.
type guard struct {
	ctx     context.Context
	maxRows int
}

func (g *guard) check(r *Relation) error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	if g.maxRows > 0 && r.Size() > g.maxRows {
		return fmt.Errorf("%w: intermediate result has %d rows, budget is %d",
			ErrRowBudget, r.Size(), g.maxRows)
	}
	return nil
}

// BuildJoinTree materialises the join tree of query q over database db
// guided by the hypertree decomposition d of q's hypergraph:
//
//   - the bag relation of node u is the join of the λ(u) atom relations
//     projected onto χ(u);
//   - every atom e is additionally enforced at some node whose bag
//     covers e (HD condition 1 guarantees one exists).
//
// The intermediate relation at each node has at most ∏_{e∈λ(u)} |rel(e)|
// ≤ N^width tuples — the classic width-bounded evaluation guarantee.
func BuildJoinTree(q Query, db Database, d *decomp.Decomp) (*bagNode, error) {
	return buildJoinTree(q, db, d, nil)
}

func buildJoinTree(q Query, db Database, d *decomp.Decomp, g *guard) (*bagNode, error) {
	h := d.H
	if h.NumEdges() != len(q.Atoms) {
		return nil, fmt.Errorf("join: decomposition hypergraph has %d edges, query has %d atoms",
			h.NumEdges(), len(q.Atoms))
	}
	// Assign each atom to one covering node.
	coverOf := map[*decomp.Node][]int{}
	for e := range q.Atoms {
		var host *decomp.Node
		d.Root.Walk(func(n *decomp.Node) bool {
			if h.Edge(e).SubsetOf(n.Bag) {
				host = n
				return false
			}
			return true
		})
		if host == nil {
			return nil, fmt.Errorf("join: atom %d not covered by any bag (invalid HD?)", e)
		}
		coverOf[host] = append(coverOf[host], e)
	}

	var build func(n *decomp.Node) (*bagNode, error)
	build = func(n *decomp.Node) (*bagNode, error) {
		// Join the λ(u) atom relations.
		var acc *Relation
		for _, e := range n.Lambda {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = r
			} else {
				acc, err = acc.Join(r)
				if err != nil {
					return nil, err
				}
			}
			if err := g.check(acc); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("join: node with empty λ-label")
		}
		// Project to χ(u).
		var bagAttrs []string
		n.Bag.ForEach(func(v int) { bagAttrs = append(bagAttrs, h.VertexName(v)) })
		proj, err := acc.Project(bagAttrs...)
		if err != nil {
			return nil, err
		}
		// Enforce atoms assigned to this node.
		for _, e := range coverOf[n] {
			r, err := atomRelation(db, q.Atoms[e])
			if err != nil {
				return nil, err
			}
			proj, err = proj.Semijoin(r)
			if err != nil {
				return nil, err
			}
		}
		if err := g.check(proj); err != nil {
			return nil, err
		}
		bn := &bagNode{rel: proj}
		for _, c := range n.Children {
			cb, err := build(c)
			if err != nil {
				return nil, err
			}
			bn.children = append(bn.children, cb)
		}
		return bn, nil
	}
	return build(d.Root)
}

// Yannakakis runs the classic three-pass algorithm on a join tree:
// bottom-up semijoin reduction, top-down semijoin reduction, then a
// bottom-up join producing the full result. The output relation ranges
// over the union of all bag attributes (= all query variables).
func Yannakakis(root *bagNode) (*Relation, error) {
	return yannakakis(root, nil)
}

func yannakakis(root *bagNode, g *guard) (*Relation, error) {
	// Pass 1: bottom-up semijoins.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return g.check(n.rel)
	}
	if err := up(root); err != nil {
		return nil, err
	}
	// Pass 2: top-down semijoins.
	var down func(n *bagNode) error
	down = func(n *bagNode) error {
		for _, c := range n.children {
			red, err := c.rel.Semijoin(n.rel)
			if err != nil {
				return err
			}
			c.rel = red
			if err := g.check(c.rel); err != nil {
				return err
			}
			if err := down(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(root); err != nil {
		return nil, err
	}
	// Pass 3: bottom-up joins.
	var collect func(n *bagNode) (*Relation, error)
	collect = func(n *bagNode) (*Relation, error) {
		acc := n.rel
		for _, c := range n.children {
			sub, err := collect(c)
			if err != nil {
				return nil, err
			}
			acc, err = acc.Join(sub)
			if err != nil {
				return nil, err
			}
			if err := g.check(acc); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	res, err := collect(root)
	if err != nil {
		return nil, err
	}
	return res.Dedup(), nil
}

// Evaluate answers the full conjunctive query using the decomposition:
// join tree materialisation followed by Yannakakis. The result is the
// set of all satisfying assignments to the query's variables.
func Evaluate(q Query, db Database, d *decomp.Decomp) (*Relation, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return nil, err
	}
	return Yannakakis(tree)
}

// EvaluateCtx is Evaluate under a context and per-query limits: the
// evaluation is aborted between relational operations when the context
// is cancelled (deadline = the query's time budget) or when any
// intermediate or final relation exceeds opts.MaxRows (ErrRowBudget).
func EvaluateCtx(ctx context.Context, q Query, db Database, d *decomp.Decomp, opts EvalOptions) (*Relation, error) {
	g := &guard{ctx: ctx, maxRows: opts.MaxRows}
	tree, err := buildJoinTree(q, db, d, g)
	if err != nil {
		return nil, err
	}
	return yannakakis(tree, g)
}

// IsBoolean reports whether the query has at least one answer, with
// early-exit semantics on the final pass (the Boolean CQ case the paper
// mentions is solvable in linear time from an HD).
func IsBoolean(q Query, db Database, d *decomp.Decomp) (bool, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return false, err
	}
	// Bottom-up semijoin reduction alone decides non-emptiness.
	var up func(n *bagNode) error
	up = func(n *bagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return nil
	}
	if err := up(tree); err != nil {
		return false, err
	}
	return tree.rel.Size() > 0, nil
}
