package join

import (
	"reflect"
	"testing"
)

func TestParseQueryPlain(t *testing.T) {
	q, err := ParseQuery("R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("got %d atoms", len(q.Atoms))
	}
	want := Atom{Relation: "S", Vars: []string{"y", "z"}}
	if !reflect.DeepEqual(q.Atoms[1], want) {
		t.Fatalf("atom 1 = %+v", q.Atoms[1])
	}
}

func TestParseQueryWithHead(t *testing.T) {
	q, err := ParseQuery("Q(x,y,z) :- R(x, y), S(y ,z).")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("got %d atoms (head must be dropped)", len(q.Atoms))
	}
	if q.Atoms[0].Relation != "R" || q.Atoms[1].Vars[1] != "z" {
		t.Fatalf("atoms = %+v", q.Atoms)
	}
}

func TestParseQuerySelfJoin(t *testing.T) {
	q, err := ParseQuery("E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Relation != "E" || q.Atoms[1].Relation != "E" {
		t.Fatal("self-join names lost")
	}
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.NumVertices() != 3 {
		t.Fatalf("hypergraph shape: %d edges %d vertices", h.NumEdges(), h.NumVertices())
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, src := range []string{"", "R", "R(", "R()", "R(x,)", "  .  "} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}
