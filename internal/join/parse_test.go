package join

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseQueryPlain(t *testing.T) {
	q, err := ParseQuery("R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("got %d atoms", len(q.Atoms))
	}
	want := Atom{Relation: "S", Vars: []string{"y", "z"}}
	if !reflect.DeepEqual(q.Atoms[1], want) {
		t.Fatalf("atom 1 = %+v", q.Atoms[1])
	}
}

func TestParseQueryWithHead(t *testing.T) {
	q, err := ParseQuery("Q(x,y,z) :- R(x, y), S(y ,z).")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("got %d atoms (head must be dropped)", len(q.Atoms))
	}
	if q.Atoms[0].Relation != "R" || q.Atoms[1].Vars[1] != "z" {
		t.Fatalf("atoms = %+v", q.Atoms)
	}
}

func TestParseQuerySelfJoin(t *testing.T) {
	q, err := ParseQuery("E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Relation != "E" || q.Atoms[1].Relation != "E" {
		t.Fatal("self-join names lost")
	}
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.NumVertices() != 3 {
		t.Fatalf("hypergraph shape: %d edges %d vertices", h.NumEdges(), h.NumVertices())
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, src := range []string{"", "R", "R(", "R()", "R(x,)", "  .  ",
		"R(x.y)", "R.S(x)", "R(x\vy)", "Q(x) :- R(a:-b)."} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestFormatQueryRoundTrip(t *testing.T) {
	q, err := ParseQuery("Q(x,y,z) :- R(x, y), S(y ,z), S(z,x).")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(FormatQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Fatalf("round trip changed the query:\n%+v\nvs\n%+v", q, q2)
	}
}

func TestParseDocumentTestdata(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.cq"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("testdata glob: paths=%v err=%v", paths, err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := ParseDocument(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(doc.Query.Atoms) == 0 || len(doc.DB) == 0 {
			t.Fatalf("%s parsed empty: %d atoms, %d relations", path, len(doc.Query.Atoms), len(doc.DB))
		}
		// Every testdata document must be evaluable: relations exist and
		// arities match, so the naive baseline runs without error.
		if _, err := EvaluateNaive(doc.Query, doc.DB); err != nil {
			t.Fatalf("%s does not evaluate: %v", path, err)
		}
	}
}

func TestParseDocumentTriangle(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "triangle.cq"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Query.Atoms); got != 3 {
		t.Fatalf("atoms = %d, want 3", got)
	}
	r := doc.DB["R"]
	if r == nil || !reflect.DeepEqual(r.Attrs, []string{"c1", "c2"}) || r.Size() != 3 {
		t.Fatalf("R = %+v", r)
	}
	if !reflect.DeepEqual(r.Row(2), []int{4, 2}) {
		t.Fatalf("R tuple order not preserved: %v", r.Rows())
	}
}

func TestParseDocumentErrors(t *testing.T) {
	cases := map[string]string{
		"no query":           "rel R(a)\n1\nend\n",
		"two queries":        "query R(x).\nquery R(x).\nrel R(a)\nend\n",
		"unclosed rel":       "query R(x).\nrel R(a)\n1\n",
		"bad arity":          "query R(x).\nrel R(a)\n1 2\nend\n",
		"non-integer value":  "query R(x).\nrel R(a)\nx\nend\n",
		"duplicate relation": "query R(x).\nrel R(a)\nend\nrel R(a)\nend\n",
		"duplicate column":   "query R(x).\nrel R(a,a)\nend\n",
		"stray line":         "query R(x).\nbogus\n",
		"bad rel header":     "query R(x).\nrel R a\nend\n",
		"bad query":          "query R(.\n",
	}
	for name, src := range cases {
		if _, err := ParseDocument(src); err == nil {
			t.Errorf("%s: ParseDocument(%q) should fail", name, src)
		}
	}
}

func TestFormatDocumentDeterministic(t *testing.T) {
	src := "query B(x,y), A(y,z).\nrel B(c,d)\n1 2\nend\nrel A(c,d)\n2 3\nend\n"
	doc, err := ParseDocument(src)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatDocument(doc)
	// Relations come out in sorted name order regardless of input order.
	if !strings.Contains(out, "rel A(c,d)\n2 3\nend\nrel B(c,d)\n1 2\nend\n") {
		t.Fatalf("formatted document not in sorted relation order:\n%s", out)
	}
	for i := 0; i < 3; i++ {
		if again := FormatDocument(doc); again != out {
			t.Fatalf("FormatDocument is not deterministic:\n%q\nvs\n%q", out, again)
		}
	}
}
