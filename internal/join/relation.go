package join

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a set of tuples over named attributes, stored
// column-major: each attribute is a vec of chunked int32/int64 values
// carved from the relation's arena (arena.go). A tuple is a row
// offset; operators and indexes pass offsets around and read values
// with at(), so an intermediate relation costs a handful of slab
// allocations rather than one slice header per tuple, and frees as one
// unit. Values are ints (dictionary-encode externally if needed).
// Tuples are not deduplicated on construction; operations that could
// produce duplicates dedupe.
//
// Relations are append-only while being built and immutable once an
// operator has consumed them — no operator mutates an input — which is
// what makes the O(1) storage-sharing views (alias, renamed) safe.
type Relation struct {
	Attrs []string
	// pos maps attribute → column position, built once at construction
	// and reused by every operation (the pre-columnar attrIndex re-ran
	// an O(attrs²) scan per semijoin instead).
	pos  map[string]int
	cols []vec
	n    int
	mem  *arena
	// indexes, when non-nil, marks a server-resident base relation
	// (a dataset snapshot view) carrying maintained hash indexes the
	// executor reuses instead of rebuilding per query (maintained.go).
	// Ephemeral relations — every operator output — leave it nil.
	indexes *IndexSet
}

// NewRelation returns an empty relation with the given attribute names.
func NewRelation(attrs ...string) *Relation {
	return newRelation(append([]string(nil), attrs...))
}

// newRelation builds an empty relation taking ownership of attrs.
func newRelation(attrs []string) *Relation {
	r := &Relation{
		Attrs: attrs,
		pos:   make(map[string]int, len(attrs)),
		cols:  make([]vec, len(attrs)),
		mem:   &arena{},
	}
	for i, a := range attrs {
		r.pos[a] = i
	}
	return r
}

// Add appends a tuple; the value count must match the attribute count.
func (r *Relation) Add(values ...int) *Relation {
	return r.AddRow(values)
}

// AddRow is Add without the varargs copy; values is not retained.
func (r *Relation) AddRow(values []int) *Relation {
	if len(values) != len(r.Attrs) {
		panic(fmt.Sprintf("join: tuple arity %d != attrs %d", len(values), len(r.Attrs)))
	}
	for c, v := range values {
		r.cols[c].push(r.mem, r.n, v)
	}
	r.n++
	return r
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return r.n }

// at returns column c of row i.
func (r *Relation) at(i, c int) int { return r.cols[c].at(i) }

// Row materialises row i as a fresh slice.
func (r *Relation) Row(i int) []int {
	return r.AppendRow(make([]int, 0, len(r.cols)), i)
}

// AppendRow appends row i's values to dst and returns it.
func (r *Relation) AppendRow(dst []int, i int) []int {
	for c := range r.cols {
		dst = append(dst, r.cols[c].at(i))
	}
	return dst
}

// Rows materialises every row in order — the boundary format for
// callers leaving the columnar world (HTTP responses, test diffs).
func (r *Relation) Rows() [][]int {
	if r.n == 0 {
		// nil, not an empty slice: the pre-columnar layout's empty
		// relation had a nil tuple slice, and both the JSON wire format
		// and reflect.DeepEqual tell the two apart.
		return nil
	}
	out := make([][]int, r.n)
	flat := make([]int, r.n*len(r.cols))
	w := len(r.cols)
	for i := range out {
		out[i] = r.AppendRow(flat[i*w:i*w:(i+1)*w], i)
	}
	return out
}

// alias returns an O(1) view sharing r's storage, safe because
// relations are immutable once consumed.
func (r *Relation) alias() *Relation {
	cp := *r
	return &cp
}

// renamed returns a view of r's rows under new attribute names —
// shared storage, fresh schema (atomRelation's column renaming).
// Maintained indexes carry over: they are keyed by column position,
// which renaming preserves.
func (r *Relation) renamed(attrs []string) *Relation {
	out := &Relation{
		Attrs:   attrs,
		pos:     make(map[string]int, len(attrs)),
		cols:    r.cols,
		n:       r.n,
		mem:     r.mem,
		indexes: r.indexes,
	}
	for i, a := range attrs {
		out.pos[a] = i
	}
	return out
}

// appendFrom appends row i of src (same schema) to r.
func (r *Relation) appendFrom(src *Relation, i int) {
	for c := range r.cols {
		r.cols[c].push(r.mem, r.n, src.cols[c].at(i))
	}
	r.n++
}

// appendProjected appends row i of src projected onto src columns idx
// (r's schema is attrs aligned with idx).
func (r *Relation) appendProjected(src *Relation, i int, idx []int) {
	for k, c := range idx {
		r.cols[k].push(r.mem, r.n, src.cols[c].at(i))
	}
	r.n++
}

// appendJoined appends the join row of r-side row i and s's sExtra
// columns of row j — the output layout joinSchema defines.
func (out *Relation) appendJoined(r *Relation, i int, s *Relation, j int, sExtra []int) {
	c := 0
	for rc := range r.cols {
		out.cols[c].push(out.mem, out.n, r.cols[rc].at(i))
		c++
	}
	for _, sc := range sExtra {
		out.cols[c].push(out.mem, out.n, s.cols[sc].at(j))
		c++
	}
	out.n++
}

// appendAll concatenates src (same schema) onto r — the ordered merge
// of parallel join partitions.
func (r *Relation) appendAll(src *Relation) {
	for c := range r.cols {
		r.cols[c].extend(r.mem, r.n, &src.cols[c], src.n)
	}
	r.n += src.n
}

// attrIndex returns the position of each requested attribute.
func (r *Relation) attrIndex(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.pos[a]
		if !ok {
			return nil, fmt.Errorf("join: attribute %q not in relation %v", a, r.Attrs)
		}
		idx[i] = p
	}
	return idx, nil
}

// identCols returns [0, 1, …, n-1]: every column, in order.
func identCols(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// sharedAttrs returns the attributes common to r and s (in r's order).
func sharedAttrs(r, s *Relation) []string {
	var out []string
	for _, a := range r.Attrs {
		if _, ok := s.pos[a]; ok {
			out = append(out, a)
		}
	}
	return out
}

// appendRowKey appends the little-endian encoding of the key columns
// of row i to dst — the single no-copy key encoder behind every
// string-keyed map left in the package (scan-kernel buckets, aggregate
// cell maps); lookups use the string(buf) no-copy form. The
// open-addressing tables of index.go compare column values directly
// and need no keys at all.
func appendRowKey(dst []byte, r *Relation, i int, cols []int) []byte {
	for _, c := range cols {
		dst = appendKeyVal(dst, uint64(r.cols[c].at(i)))
	}
	return dst
}

// appendValsKey encodes an already-materialised value tuple with the
// same encoding as appendRowKey.
func appendValsKey(dst []byte, vals []int) []byte {
	for _, v := range vals {
		dst = appendKeyVal(dst, uint64(v))
	}
	return dst
}

func appendKeyVal(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Project returns the projection onto attrs, with duplicates removed
// (first occurrence wins).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(attrs...)
	seen := make(map[string]struct{}, r.n)
	buf := make([]byte, 0, 8*len(idx))
	for i := 0; i < r.n; i++ {
		buf = appendRowKey(buf[:0], r, i, idx)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.appendProjected(r, i, idx)
	}
	return out, nil
}

// Semijoin returns the tuples of r that join with at least one tuple of
// s on their shared attributes (r ⋉ s). With no shared attributes, r is
// returned unchanged when s is non-empty and emptied when s is empty
// (consistent with r ⋉ s = π_r(r ⋈ s)).
func (r *Relation) Semijoin(s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	if len(shared) == 0 {
		if s.Size() > 0 {
			return r.alias(), nil
		}
		return NewRelation(r.Attrs...), nil
	}
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]struct{}, s.n)
	buf := make([]byte, 0, 8*len(shared))
	for j := 0; j < s.n; j++ {
		buf = appendRowKey(buf[:0], s, j, sIdx)
		keys[string(buf)] = struct{}{}
	}
	out := NewRelation(r.Attrs...)
	for i := 0; i < r.n; i++ {
		buf = appendRowKey(buf[:0], r, i, rIdx)
		if _, ok := keys[string(buf)]; ok {
			out.appendFrom(r, i)
		}
	}
	return out, nil
}

// joinSchema derives a natural join's output schema: r's attrs followed
// by s's non-shared attrs, with sExtra holding the positions of those
// extra columns in s. Both kernels share it — the byte-identity
// guarantee between them depends on identical schema construction.
func joinSchema(r, s *Relation, shared []string) (outAttrs []string, sExtra []int) {
	sExtra = make([]int, 0, len(s.Attrs))
	outAttrs = append([]string(nil), r.Attrs...)
	for j, a := range s.Attrs {
		isShared := false
		for _, b := range shared {
			if a == b {
				isShared = true
				break
			}
		}
		if !isShared {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, j)
		}
	}
	return outAttrs, sExtra
}

// Join returns the natural join r ⋈ s: a hash join bucketing s by its
// shared-key encoding, probe tuples in r order, matches in s insertion
// order. This is the scan kernel's join, deliberately implemented on
// string-keyed buckets as an independent cross-check of the
// open-addressing indexed kernel (index.go).
func (r *Relation) Join(s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	outAttrs, sExtra := joinSchema(r, s, shared)
	out := newRelation(outAttrs)
	buckets := make(map[string][]int32, s.n)
	buf := make([]byte, 0, 8*len(shared))
	for j := 0; j < s.n; j++ {
		buf = appendRowKey(buf[:0], s, j, sIdx)
		buckets[string(buf)] = append(buckets[string(buf)], int32(j))
	}
	for i := 0; i < r.n; i++ {
		buf = appendRowKey(buf[:0], r, i, rIdx)
		for _, j := range buckets[string(buf)] {
			out.appendJoined(r, i, s, int(j), sExtra)
		}
	}
	return out, nil
}

// Dedup returns r with duplicate tuples removed, preserving
// first-occurrence order. The result is a fresh relation — inputs stay
// immutable — so callers must use the return value.
func (r *Relation) Dedup() *Relation {
	cols := identCols(len(r.cols))
	out := NewRelation(r.Attrs...)
	seen := make(map[string]struct{}, r.n)
	buf := make([]byte, 0, 8*len(cols))
	for i := 0; i < r.n; i++ {
		buf = appendRowKey(buf[:0], r, i, cols)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.appendFrom(r, i)
	}
	return out
}

// Sorted returns the tuples in deterministic lexicographic order (for
// test comparisons).
func (r *Relation) Sorted() [][]int {
	out := r.Rows()
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// SortRows reorders the rows into lexicographic order, rebuilding the
// columns — the canonicalisation step of the query layer. The sort
// permutes row offsets first, then moves each value exactly once; the
// sorted rows are value-for-value the same tuples, which is why
// canonical forms stay byte-identical across storage layouts.
func (r *Relation) SortRows() {
	ord := make([]int32, r.n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		i, j := int(ord[a]), int(ord[b])
		for c := range r.cols {
			vi, vj := r.cols[c].at(i), r.cols[c].at(j)
			if vi != vj {
				return vi < vj
			}
		}
		return false
	})
	mem := &arena{}
	cols := make([]vec, len(r.cols))
	for c := range r.cols {
		src := &r.cols[c]
		for k, i := range ord {
			cols[c].push(mem, k, src.at(int(i)))
		}
	}
	r.cols, r.mem = cols, mem
}

// String renders the relation for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Attrs, ","))
	b.WriteByte('\n')
	for _, t := range r.Sorted() {
		fmt.Fprintf(&b, "%v\n", t)
	}
	return b.String()
}
