package join

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a set of tuples over named attributes. Values are ints
// (dictionary-encode externally if needed). Tuples are not deduplicated
// on construction; operations that could produce duplicates dedupe.
type Relation struct {
	Attrs  []string
	Tuples [][]int
}

// NewRelation returns a relation with the given attribute names.
func NewRelation(attrs ...string) *Relation {
	return &Relation{Attrs: append([]string(nil), attrs...)}
}

// Add appends a tuple; the value count must match the attribute count.
func (r *Relation) Add(values ...int) *Relation {
	if len(values) != len(r.Attrs) {
		panic(fmt.Sprintf("join: tuple arity %d != attrs %d", len(values), len(r.Attrs)))
	}
	r.Tuples = append(r.Tuples, append([]int(nil), values...))
	return r
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.Tuples) }

// attrIndex returns the position of each requested attribute.
func (r *Relation) attrIndex(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		pos := -1
		for j, b := range r.Attrs {
			if a == b {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("join: attribute %q not in relation %v", a, r.Attrs)
		}
		idx[i] = pos
	}
	return idx, nil
}

// sharedAttrs returns the attributes common to r and s (in r's order).
func sharedAttrs(r, s *Relation) []string {
	var out []string
	for _, a := range r.Attrs {
		for _, b := range s.Attrs {
			if a == b {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

func keyOf(tuple []int, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%d|", tuple[i])
	}
	return b.String()
}

// Project returns the projection onto attrs, with duplicates removed.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(attrs...)
	seen := map[string]bool{}
	for _, t := range r.Tuples {
		row := make([]int, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		k := keyOf(row, identity(len(row)))
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Semijoin returns the tuples of r that join with at least one tuple of
// s on their shared attributes (r ⋉ s). With no shared attributes, r is
// returned unchanged when s is non-empty and emptied when s is empty
// (consistent with r ⋉ s = π_r(r ⋈ s)).
func (r *Relation) Semijoin(s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	out := NewRelation(r.Attrs...)
	if len(shared) == 0 {
		if s.Size() > 0 {
			out.Tuples = append(out.Tuples, r.Tuples...)
		}
		return out, nil
	}
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, s.Size())
	for _, t := range s.Tuples {
		keys[keyOf(t, sIdx)] = true
	}
	for _, t := range r.Tuples {
		if keys[keyOf(t, rIdx)] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// joinSchema derives a natural join's output schema: r's attrs followed
// by s's non-shared attrs, with sExtra holding the positions of those
// extra columns in s. Both kernels share it — the byte-identity
// guarantee between them depends on identical schema construction.
func joinSchema(r, s *Relation, shared []string) (outAttrs []string, sExtra []int) {
	sExtra = make([]int, 0, len(s.Attrs))
	outAttrs = append([]string(nil), r.Attrs...)
	for j, a := range s.Attrs {
		isShared := false
		for _, b := range shared {
			if a == b {
				isShared = true
				break
			}
		}
		if !isShared {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, j)
		}
	}
	return outAttrs, sExtra
}

// Join returns the natural join r ⋈ s.
func (r *Relation) Join(s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	outAttrs, sExtra := joinSchema(r, s, shared)
	out := NewRelation(outAttrs...)
	// Hash join on the shared key.
	buckets := map[string][][]int{}
	for _, t := range s.Tuples {
		k := keyOf(t, sIdx)
		buckets[k] = append(buckets[k], t)
	}
	for _, t := range r.Tuples {
		for _, u := range buckets[keyOf(t, rIdx)] {
			row := make([]int, 0, len(outAttrs))
			row = append(row, t...)
			for _, j := range sExtra {
				row = append(row, u[j])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

// Dedup removes duplicate tuples in place and returns r.
func (r *Relation) Dedup() *Relation {
	seen := map[string]bool{}
	idx := identity(len(r.Attrs))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := keyOf(t, idx)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	r.Tuples = out
	return r
}

// Sorted returns the tuples in deterministic lexicographic order (for
// test comparisons).
func (r *Relation) Sorted() [][]int {
	out := make([][]int, len(r.Tuples))
	copy(out, r.Tuples)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// String renders the relation for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Attrs, ","))
	b.WriteByte('\n')
	for _, t := range r.Sorted() {
		fmt.Fprintf(&b, "%v\n", t)
	}
	return b.String()
}
