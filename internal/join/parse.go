package join

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseQuery reads a conjunctive query in Datalog-ish syntax:
//
//	R(x,y), S(y,z), T(z,x)
//
// or with an explicit (ignored) head:
//
//	Q(x,y,z) :- R(x,y), S(y,z), T(z,x).
//
// Atom and variable names may contain anything except '(', ')', ',',
// whitespace and '.'. The same relation name may appear in several
// atoms (self-joins).
func ParseQuery(src string) (Query, error) {
	s := strings.TrimSpace(src)
	if i := strings.Index(s, ":-"); i >= 0 {
		s = strings.TrimSpace(s[i+2:])
	}
	s = strings.TrimSuffix(strings.TrimSpace(s), ".")
	var q Query
	pos := 0
	for {
		for pos < len(s) && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == ',') {
			pos++
		}
		if pos >= len(s) {
			break
		}
		open := strings.IndexByte(s[pos:], '(')
		if open < 0 {
			return Query{}, fmt.Errorf("join: expected '(' after atom name at offset %d", pos)
		}
		name := strings.TrimSpace(s[pos : pos+open])
		if name == "" {
			return Query{}, fmt.Errorf("join: empty atom name at offset %d", pos)
		}
		if err := checkName(name); err != nil {
			return Query{}, fmt.Errorf("join: atom name %q: %w", name, err)
		}
		close := strings.IndexByte(s[pos+open:], ')')
		if close < 0 {
			return Query{}, fmt.Errorf("join: unterminated atom %q", name)
		}
		inner := s[pos+open+1 : pos+open+close]
		var vars []string
		for _, v := range strings.Split(inner, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return Query{}, fmt.Errorf("join: empty variable in atom %q", name)
			}
			if err := checkName(v); err != nil {
				return Query{}, fmt.Errorf("join: variable %q in atom %q: %w", v, name, err)
			}
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			return Query{}, fmt.Errorf("join: atom %q has no variables", name)
		}
		q.Atoms = append(q.Atoms, Atom{Relation: name, Vars: vars})
		pos += open + close + 1
	}
	if len(q.Atoms) == 0 {
		return Query{}, fmt.Errorf("join: no atoms found")
	}
	return q, nil
}

// checkName enforces the grammar ParseQuery documents: atom and
// variable names may contain anything except '(', ')', ',', '.' and
// whitespace, and may not contain the rule separator ":-" (ParseQuery
// splits the head off at its first occurrence in the raw string).
// Enforcing it (rather than assuming it) keeps the format unambiguous,
// so parse → format → parse is the identity.
func checkName(name string) error {
	if i := strings.IndexFunc(name, func(r rune) bool {
		return r == '(' || r == ')' || r == ',' || r == '.' || unicode.IsSpace(r)
	}); i >= 0 {
		r, _ := utf8.DecodeRuneInString(name[i:])
		return fmt.Errorf("contains forbidden character %q", r)
	}
	if strings.Contains(name, ":-") {
		return fmt.Errorf("contains the rule separator \":-\"")
	}
	return nil
}

// ParseAggregate reads an aggregate head in the syntax:
//
//	count
//	count distinct(x,y)
//	sum(x) | min(x) | max(x)
//	group g1,g2: <any of the above>
//
// Variables referenced by an aggregate head additionally may not
// contain ':' (the group separator); this is stricter than the atom
// grammar, which keeps the head unambiguous and parse → format → parse
// the identity.
func ParseAggregate(src string) (AggSpec, error) {
	var spec AggSpec
	s := strings.TrimSpace(src)
	if strings.HasPrefix(s, "group") {
		rest, ok := keywordRest(s, "group")
		if !ok {
			return AggSpec{}, fmt.Errorf("join: malformed aggregate group clause %q", s)
		}
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return AggSpec{}, fmt.Errorf("join: aggregate group clause %q is missing ':'", s)
		}
		vars, err := aggVarList(rest[:colon], "group by")
		if err != nil {
			return AggSpec{}, err
		}
		spec.GroupBy = vars
		s = strings.TrimSpace(rest[colon+1:])
	}
	switch {
	case s == "count":
		spec.Kind = AggCount
	case strings.HasPrefix(s, "count"):
		rest, ok := keywordRest(s, "count")
		if !ok || !strings.HasPrefix(rest, "distinct") {
			return AggSpec{}, fmt.Errorf("join: unknown aggregate head %q", s)
		}
		inner, err := aggParens(rest, "distinct")
		if err != nil {
			return AggSpec{}, err
		}
		vars, err := aggVarList(inner, "count distinct")
		if err != nil {
			return AggSpec{}, err
		}
		spec.Kind, spec.Over = AggCountDistinct, vars
	case strings.HasPrefix(s, "sum"), strings.HasPrefix(s, "min"), strings.HasPrefix(s, "max"):
		kw := s[:3]
		inner, err := aggParens(s, kw)
		if err != nil {
			return AggSpec{}, err
		}
		vars, err := aggVarList(inner, kw)
		if err != nil {
			return AggSpec{}, err
		}
		if len(vars) != 1 {
			return AggSpec{}, fmt.Errorf("join: %s takes exactly one variable, got %d", kw, len(vars))
		}
		switch kw {
		case "sum":
			spec.Kind = AggSum
		case "min":
			spec.Kind = AggMin
		case "max":
			spec.Kind = AggMax
		}
		spec.Var = vars[0]
	default:
		return AggSpec{}, fmt.Errorf("join: unknown aggregate head %q", s)
	}
	return spec, nil
}

// aggParens extracts the parenthesised operand list of "kw ( ... )",
// requiring the ')' to close the head.
func aggParens(s, kw string) (string, error) {
	rest := strings.TrimSpace(s[strings.Index(s, kw)+len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("join: aggregate %s needs a parenthesised variable list, got %q", kw, s)
	}
	return rest[1 : len(rest)-1], nil
}

// aggVarList parses a comma-separated variable list of an aggregate
// head, enforcing the head's stricter name rule (no ':').
func aggVarList(s, what string) ([]string, error) {
	var vars []string
	for _, v := range strings.Split(s, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return nil, fmt.Errorf("join: empty variable in aggregate %s list", what)
		}
		if err := checkName(v); err != nil {
			return nil, fmt.Errorf("join: aggregate %s variable %q: %w", what, v, err)
		}
		if strings.ContainsRune(v, ':') {
			return nil, fmt.Errorf("join: aggregate %s variable %q: contains forbidden character ':'", what, v)
		}
		vars = append(vars, v)
	}
	return vars, nil
}

// FormatAggregate renders an aggregate head in the syntax ParseAggregate
// reads. GroupBy order is preserved (the canonical result nonetheless
// sorts group columns — see AggResult).
func FormatAggregate(spec AggSpec) string {
	var b strings.Builder
	if len(spec.GroupBy) > 0 {
		b.WriteString("group ")
		b.WriteString(strings.Join(spec.GroupBy, ","))
		b.WriteString(": ")
	}
	switch spec.Kind {
	case AggCount:
		b.WriteString("count")
	case AggCountDistinct:
		fmt.Fprintf(&b, "count distinct(%s)", strings.Join(spec.Over, ","))
	case AggSum, AggMin, AggMax:
		fmt.Fprintf(&b, "%s(%s)", spec.Kind, spec.Var)
	}
	return b.String()
}

// FormatQuery renders a query in the syntax ParseQuery reads:
// comma-separated atoms, terminated by a period.
func FormatQuery(q Query) string {
	var b strings.Builder
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Relation)
		b.WriteByte('(')
		b.WriteString(strings.Join(a.Vars, ","))
		b.WriteByte(')')
	}
	b.WriteByte('.')
	return b.String()
}

// Document is a self-contained conjunctive-query instance: the query
// plus the database it runs over. It is the unit of the line-oriented
// text format understood by ParseDocument:
//
//	% comments start with '%'; blank lines are ignored
//	query R(x,y), S(y,z), T(z,x).
//	rel R(c1,c2)
//	1 2
//	1 3
//	end
//	rel S(c1,c2)
//	2 5
//	end
//	...
//
// One `query` line (ParseQuery syntax), an optional `aggregate` line
// (ParseAggregate syntax, e.g. `aggregate group x: count`), and any
// number of `rel` blocks: a header naming the relation and its columns,
// one whitespace-separated integer tuple per line, closed by `end`.
type Document struct {
	Query Query
	// Aggregate, when non-nil, asks for this aggregate over the query's
	// answers instead of the rows themselves.
	Aggregate *AggSpec
	DB        Database
}

// ParseDocument reads a query+database document. The format round-trips
// through FormatDocument: parsing the formatted form of a parsed
// document yields the same document.
func ParseDocument(src string) (Document, error) {
	doc, err := parseDoc(src, true)
	if err != nil {
		return Document{}, err
	}
	if len(doc.Query.Atoms) == 0 {
		return Document{}, fmt.Errorf("join: document has no query line")
	}
	if doc.Aggregate != nil {
		if err := doc.Aggregate.Validate(doc.Query); err != nil {
			return Document{}, err
		}
	}
	return doc, nil
}

// ParseRelations reads a database alone: rel blocks in the document
// syntax, with no query line. It is what the HTTP query endpoints use
// for the "database" field, where the query travels separately.
func ParseRelations(src string) (Database, error) {
	doc, err := parseDoc(src, false)
	if err != nil {
		return nil, err
	}
	return doc.DB, nil
}

func parseDoc(src string, allowQuery bool) (Document, error) {
	doc := Document{DB: Database{}}
	sawQuery := false
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "%"):
		case allowQuery && strings.HasPrefix(line, "query"):
			rest, ok := keywordRest(line, "query")
			if !ok {
				return Document{}, fmt.Errorf("join: line %d: malformed query line", i+1)
			}
			if sawQuery {
				return Document{}, fmt.Errorf("join: line %d: duplicate query line", i+1)
			}
			q, err := ParseQuery(rest)
			if err != nil {
				return Document{}, fmt.Errorf("join: line %d: %w", i+1, err)
			}
			doc.Query = q
			sawQuery = true
		case allowQuery && strings.HasPrefix(line, "aggregate"):
			rest, ok := keywordRest(line, "aggregate")
			if !ok {
				return Document{}, fmt.Errorf("join: line %d: malformed aggregate line", i+1)
			}
			if doc.Aggregate != nil {
				return Document{}, fmt.Errorf("join: line %d: duplicate aggregate line", i+1)
			}
			spec, err := ParseAggregate(rest)
			if err != nil {
				return Document{}, fmt.Errorf("join: line %d: %w", i+1, err)
			}
			doc.Aggregate = &spec
		case strings.HasPrefix(line, "rel"):
			rest, ok := keywordRest(line, "rel")
			if !ok {
				return Document{}, fmt.Errorf("join: line %d: malformed rel header", i+1)
			}
			name, rel, err := parseRelHeader(rest)
			if err != nil {
				return Document{}, fmt.Errorf("join: line %d: %w", i+1, err)
			}
			if _, dup := doc.DB[name]; dup {
				return Document{}, fmt.Errorf("join: line %d: duplicate relation %q", i+1, name)
			}
			end, err := parseTuples(rel, lines, i+1)
			if err != nil {
				return Document{}, err
			}
			doc.DB[name] = rel
			i = end
		default:
			return Document{}, fmt.Errorf("join: line %d: expected %s, end, or comment, got %q",
				i+1, map[bool]string{true: "query, rel", false: "rel"}[allowQuery], line)
		}
	}
	return doc, nil
}

// keywordRest splits "kw rest" and reports whether line really starts
// with the keyword as a word (not merely as a prefix like "relx").
func keywordRest(line, kw string) (string, bool) {
	rest := line[len(kw):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// parseRelHeader reads "name(col1,col2,...)" into an empty relation.
func parseRelHeader(s string) (string, *Relation, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("join: rel header %q must be name(col,...)", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("join: rel header %q has an empty name", s)
	}
	if err := checkName(name); err != nil {
		return "", nil, fmt.Errorf("join: relation name %q: %w", name, err)
	}
	var attrs []string
	seen := map[string]bool{}
	for _, a := range strings.Split(s[open+1:len(s)-1], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("join: rel %q has an empty column name", name)
		}
		if err := checkName(a); err != nil {
			return "", nil, fmt.Errorf("join: column %q of rel %q: %w", a, name, err)
		}
		if seen[a] {
			return "", nil, fmt.Errorf("join: rel %q repeats column %q", name, a)
		}
		seen[a] = true
		attrs = append(attrs, a)
	}
	return name, NewRelation(attrs...), nil
}

// parseTuples reads integer tuple lines into rel until the closing
// `end`, returning the index of that line.
func parseTuples(rel *Relation, lines []string, start int) (int, error) {
	vals := make([]int, len(rel.Attrs))
	for i := start; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if line == "end" {
			return i, nil
		}
		fields := strings.Fields(line)
		if len(fields) != len(rel.Attrs) {
			return 0, fmt.Errorf("join: line %d: tuple has %d values, relation has %d columns",
				i+1, len(fields), len(rel.Attrs))
		}
		for j, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return 0, fmt.Errorf("join: line %d: value %q is not an integer", i+1, f)
			}
			vals[j] = v
		}
		rel.AddRow(vals)
	}
	return 0, fmt.Errorf("join: relation block starting at line %d is not closed with end", start)
}

// FormatDocument renders a document in the format ParseDocument reads.
// Relations are emitted in sorted name order so the output is
// deterministic; tuple order within a relation is preserved.
func FormatDocument(doc Document) string {
	var b strings.Builder
	b.WriteString("query ")
	b.WriteString(FormatQuery(doc.Query))
	b.WriteByte('\n')
	if doc.Aggregate != nil {
		b.WriteString("aggregate ")
		b.WriteString(FormatAggregate(*doc.Aggregate))
		b.WriteByte('\n')
	}
	names := make([]string, 0, len(doc.DB))
	for name := range doc.DB {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rel := doc.DB[name]
		fmt.Fprintf(&b, "rel %s(%s)\n", name, strings.Join(rel.Attrs, ","))
		row := make([]int, 0, len(rel.Attrs))
		for i := 0; i < rel.Size(); i++ {
			row = rel.AppendRow(row[:0], i)
			for j, v := range row {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(strconv.Itoa(v))
			}
			b.WriteByte('\n')
		}
		b.WriteString("end\n")
	}
	return b.String()
}
