package join

import (
	"fmt"
	"strings"
)

// ParseQuery reads a conjunctive query in Datalog-ish syntax:
//
//	R(x,y), S(y,z), T(z,x)
//
// or with an explicit (ignored) head:
//
//	Q(x,y,z) :- R(x,y), S(y,z), T(z,x).
//
// Atom and variable names may contain anything except '(', ')', ',',
// whitespace and '.'. The same relation name may appear in several
// atoms (self-joins).
func ParseQuery(src string) (Query, error) {
	s := strings.TrimSpace(src)
	if i := strings.Index(s, ":-"); i >= 0 {
		s = strings.TrimSpace(s[i+2:])
	}
	s = strings.TrimSuffix(strings.TrimSpace(s), ".")
	var q Query
	pos := 0
	for {
		for pos < len(s) && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == ',') {
			pos++
		}
		if pos >= len(s) {
			break
		}
		open := strings.IndexByte(s[pos:], '(')
		if open < 0 {
			return Query{}, fmt.Errorf("join: expected '(' after atom name at offset %d", pos)
		}
		name := strings.TrimSpace(s[pos : pos+open])
		if name == "" {
			return Query{}, fmt.Errorf("join: empty atom name at offset %d", pos)
		}
		close := strings.IndexByte(s[pos+open:], ')')
		if close < 0 {
			return Query{}, fmt.Errorf("join: unterminated atom %q", name)
		}
		inner := s[pos+open+1 : pos+open+close]
		var vars []string
		for _, v := range strings.Split(inner, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return Query{}, fmt.Errorf("join: empty variable in atom %q", name)
			}
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			return Query{}, fmt.Errorf("join: atom %q has no variables", name)
		}
		q.Atoms = append(q.Atoms, Atom{Relation: name, Vars: vars})
		pos += open + close + 1
	}
	if len(q.Atoms) == 0 {
		return Query{}, fmt.Errorf("join: no atoms found")
	}
	return q, nil
}
