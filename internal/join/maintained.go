package join

import (
	"fmt"
	"sync"
)

// Maintained relations: the storage side of incremental evaluation.
//
// An MRel owns one base relation of a named dataset and keeps its hash
// indexes *maintained* across insert/delete deltas instead of letting
// every query rebuild them:
//
//   - the base is append-only columnar storage (arena.go); an insert
//     delta of k tuples costs O(k) appends plus one O(k) index layer
//     per registered column set;
//   - deletes tombstone rows and compact the live rows into fresh
//     storage when the owning batch commits, so published snapshots
//     are always dense and queries never see (or filter) dead rows;
//   - every commit publishes an immutable copy-on-write view: the
//     chunk-pointer headers are cloned (cheap — a few words per 4096
//     values) while the value chunks are shared. The writer only ever
//     appends at rows ≥ the view's count, so in-flight queries read a
//     frozen version while the writer advances — snapshot isolation
//     without any lock on the query path.
//
// Index maintenance is layered: each registered column set holds a
// stack of immutable range indexes over disjoint ascending row ranges
// (buildIndexCols). Probing the layers in stack order enumerates
// matches in exactly the row order of one full index, which is what
// keeps incremental results byte-identical to a from-scratch run. The
// stack collapses into a single full index when it grows past
// maxIndexLayers, bounding probe fan-out.
//
// Column sets are discovered, not declared: the executor's
// capture-on-miss (exec.go indexStack) records each set it had to
// build into the view's IndexSet, and the next commit adopts those
// sets for delta maintenance. The all-columns "rowset" set is always
// maintained — it is the mutation path's own point-lookup structure
// (insert dedup, delete-by-value).

const (
	// maxIndexSets bounds the column sets maintained per relation (the
	// all-columns rowset included); sets beyond the cap are still built
	// per query, just not maintained.
	maxIndexSets = 6
	// maxIndexLayers is the layer-stack depth that triggers a collapse
	// into one full index at the next commit.
	maxIndexLayers = 8
)

// IndexSet is the maintained-index registry carried by server-resident
// base relations (dataset snapshot views, cached inline databases).
// It maps a column-position set to an immutable stack of index layers.
// Lookups and capture-on-miss stores run concurrently from query
// executors; stacks are never mutated once stored.
type IndexSet struct {
	mu    sync.Mutex
	limit int
	m     map[string][]*hashIndex
}

func newIndexSet(limit int) *IndexSet {
	return &IndexSet{limit: limit, m: make(map[string][]*hashIndex, limit)}
}

// colsKey encodes column positions with the package's injective
// fixed-width key encoding; keying by position (not attribute name)
// makes the registry invariant under atom renaming.
func colsKey(cols []int) string {
	b := make([]byte, 0, 8*len(cols))
	for _, c := range cols {
		b = appendKeyVal(b, uint64(c))
	}
	return string(b)
}

// lookup returns the layer stack for cols, nil when absent.
func (s *IndexSet) lookup(cols []int) []*hashIndex {
	key := colsKey(cols)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// store publishes stack for cols and returns the stack to probe. When
// a concurrent executor won the race the prior stack wins — both index
// identical rows, and first-wins keeps every query at this version
// probing one structure. At the set limit the stack is returned
// unstored: still usable for the calling query, just not retained.
func (s *IndexSet) store(cols []int, stack []*hashIndex) []*hashIndex {
	key := colsKey(cols)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.m[key]; ok {
		return prior
	}
	if len(s.m) < s.limit {
		s.m[key] = stack
	}
	return stack
}

// indexEntry is one registered column set and its layer stack.
type indexEntry struct {
	cols  []int
	stack []*hashIndex
}

// entries snapshots the registry — the commit path reads it to adopt
// query-captured sets into delta maintenance.
func (s *IndexSet) entries() []indexEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]indexEntry, 0, len(s.m))
	for _, stack := range s.m {
		out = append(out, indexEntry{cols: stack[0].cols, stack: stack})
	}
	return out
}

// EnableIndexReuse attaches an empty IndexSet to r, marking it a
// server-resident base relation whose per-query index builds should be
// captured and shared. The dataset layer calls this on cached inline
// databases; MRel views get their IndexSet from the commit path.
func (r *Relation) EnableIndexReuse() {
	if r.indexes == nil {
		r.indexes = newIndexSet(maxIndexSets)
	}
}

// mset is one maintained column set: its layers cover the base's rows
// [0, hi of last layer) as disjoint ascending ranges.
type mset struct {
	cols   []int
	layers []*hashIndex
}

// MRel is one maintained base relation. It is not goroutine-safe: the
// dataset layer serialises all mutation batches per dataset, while the
// published views are immutable and read lock-free by any number of
// concurrent queries.
type MRel struct {
	base  *Relation
	dead  []bool // tombstones, parallel to base rows
	deadN int
	sets  []*mset
	// tail tracks rows appended by the in-flight batch (not yet covered
	// by any layer), keyed by full-tuple encoding, until Commit extends
	// the layers over them.
	tail map[string][]int32
	view *Relation
}

// NewMRel takes ownership of r's tuples as a maintained relation.
// Duplicates collapse — datasets are sets, and single-copy live rows
// are what make delete-by-value O(1) — and the first version's view
// and rowset index are built immediately.
func NewMRel(r *Relation) *MRel {
	base := r.Dedup()
	m := &MRel{
		base: base,
		dead: make([]bool, base.Size()),
		sets: []*mset{{cols: identCols(len(base.cols))}},
	}
	m.Commit()
	return m
}

// View returns the current published snapshot view: immutable, dense
// (no tombstones), carrying the maintained IndexSet.
func (m *MRel) View() *Relation { return m.view }

// LiveSize returns the live tuple count including uncommitted deltas.
func (m *MRel) LiveSize() int { return m.base.n - m.deadN }

// Layers returns the maintained layer count across all registered
// column sets — observability for dataset stats and the incr bench.
func (m *MRel) Layers() (sets, layers int) {
	for _, st := range m.sets {
		layers += len(st.layers)
	}
	return len(m.sets), layers
}

// liveRow returns the row id of the live copy of vals, -1 when absent.
// Committed rows resolve through the rowset layers, rows appended by
// the in-flight batch through the tail map.
func (m *MRel) liveRow(vals []int) int {
	for _, ly := range m.sets[0].layers {
		for _, i := range ly.probeVals(vals) {
			if !m.dead[i] {
				return int(i)
			}
		}
	}
	if len(m.tail) > 0 {
		key := string(appendValsKey(make([]byte, 0, 8*len(vals)), vals))
		for _, i := range m.tail[key] {
			if !m.dead[i] {
				return int(i)
			}
		}
	}
	return -1
}

// Insert appends the tuples of rows that are not already live.
// Inserted is the count appended; dups the count skipped as already
// present (set semantics — a later delete of the tuple removes it
// regardless of how many times it was inserted).
func (m *MRel) Insert(rows [][]int) (inserted, dups int, err error) {
	for _, vals := range rows {
		if len(vals) != len(m.base.Attrs) {
			return inserted, dups, fmt.Errorf("join: insert arity %d != relation arity %d", len(vals), len(m.base.Attrs))
		}
		if m.liveRow(vals) >= 0 {
			dups++
			continue
		}
		row := m.base.n
		m.base.AddRow(vals)
		m.dead = append(m.dead, false)
		if m.tail == nil {
			m.tail = make(map[string][]int32)
		}
		key := string(appendValsKey(make([]byte, 0, 8*len(vals)), vals))
		m.tail[key] = append(m.tail[key], int32(row))
		inserted++
	}
	return inserted, dups, nil
}

// Delete tombstones the live copy of each tuple in rows. Deleting a
// tuple that was never inserted (or already deleted) is a counted
// no-op, not an error — deltas are idempotent per batch position.
func (m *MRel) Delete(rows [][]int) (deleted, missed int, err error) {
	for _, vals := range rows {
		if len(vals) != len(m.base.Attrs) {
			return deleted, missed, fmt.Errorf("join: delete arity %d != relation arity %d", len(vals), len(m.base.Attrs))
		}
		if i := m.liveRow(vals); i >= 0 {
			m.dead[i] = true
			m.deadN++
			deleted++
		} else {
			missed++
		}
	}
	return deleted, missed, nil
}

// ForceRebuild drops every maintained layer so the next Commit builds
// each registered set from scratch — the full-rebuild baseline the
// incr benchmark measures delta maintenance against.
func (m *MRel) ForceRebuild() {
	for _, st := range m.sets {
		st.layers = nil
	}
}

// adoptCaptured promotes column sets the executor captured into the
// current view's IndexSet (sets some query had to build) to registered
// maintained sets, so the next delta extends them instead of the next
// query rebuilding them.
func (m *MRel) adoptCaptured() {
	if m.view == nil || m.view.indexes == nil {
		return
	}
	for _, entry := range m.view.indexes.entries() {
		if len(m.sets) >= maxIndexSets {
			return
		}
		key := colsKey(entry.cols)
		known := false
		for _, st := range m.sets {
			if colsKey(st.cols) == key {
				known = true
				break
			}
		}
		if !known {
			m.sets = append(m.sets, &mset{
				cols:   entry.cols,
				layers: append([]*hashIndex(nil), entry.stack...),
			})
		}
	}
}

// Commit publishes the in-flight batch as a new immutable snapshot
// view and brings every registered index set up to date:
//
//   - insert-only batches append one O(delta) index layer per set;
//   - batches with effective deletes compact the live rows into fresh
//     storage (O(live)) and rebuild each set as one full layer;
//   - stacks past maxIndexLayers collapse into one full layer.
//
// It reports whether a compaction ran. Layers always reference the
// immutable view published at their build time — never the writable
// base — so later widen/append activity on the base cannot race
// concurrent probes of old layers.
func (m *MRel) Commit() (compacted bool) {
	m.adoptCaptured()
	if m.deadN > 0 {
		nb := newRelation(m.base.Attrs)
		for i := 0; i < m.base.n; i++ {
			if !m.dead[i] {
				nb.appendFrom(m.base, i)
			}
		}
		m.base = nb
		m.dead = make([]bool, nb.n)
		m.deadN = 0
		for _, st := range m.sets {
			st.layers = nil
		}
		compacted = true
	}
	view := m.cowView()
	for _, st := range m.sets {
		if len(st.layers) >= maxIndexLayers {
			st.layers = nil
		}
		lo := 0
		if k := len(st.layers); k > 0 {
			lo = st.layers[k-1].hi
		}
		if lo < view.n || len(st.layers) == 0 {
			// A nil guard cannot fail buildIndexCols: maintenance runs
			// under the dataset lock, not a query deadline.
			ly, _ := buildIndexCols(view, st.cols, lo, view.n, nil)
			st.layers = append(st.layers, ly)
		}
	}
	is := newIndexSet(maxIndexSets)
	for _, st := range m.sets {
		is.store(st.cols, append([]*hashIndex(nil), st.layers...))
	}
	view.indexes = is
	m.view = view
	m.tail = nil
	return compacted
}

// cowView clones the chunk-pointer headers of every column — sharing
// the value chunks — frozen at the current row count. The writer's
// later appends land at rows ≥ view.n (fresh tails of shared chunks or
// brand-new chunks), and a width promotion allocates fresh 64-bit
// chunks on the writer's side only, so the view is immutable.
func (m *MRel) cowView() *Relation {
	src := m.base
	v := &Relation{
		Attrs: src.Attrs,
		pos:   src.pos,
		cols:  make([]vec, len(src.cols)),
		n:     src.n,
		mem:   &arena{},
	}
	for c := range src.cols {
		sc := &src.cols[c]
		if sc.wide {
			v.cols[c] = vec{c64: append([][]int64(nil), sc.c64...), wide: true}
		} else {
			v.cols[c] = vec{c32: append([][]int32(nil), sc.c32...)}
		}
	}
	return v
}
