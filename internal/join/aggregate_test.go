package join

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// aggSpecs is the operator matrix every differential-style aggregate
// test sweeps: each kind, scalar and grouped, including a GROUP BY
// variable that is absent from some bags of multi-bag decompositions.
func aggSpecs(q Query) []AggSpec {
	vars := map[string]bool{}
	var order []string
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !vars[v] {
				vars[v] = true
				order = append(order, v)
			}
		}
	}
	first, last := order[0], order[len(order)-1]
	specs := []AggSpec{
		{Kind: AggCount},
		{Kind: AggCountDistinct, Over: []string{first}},
		{Kind: AggSum, Var: last},
		{Kind: AggMin, Var: first},
		{Kind: AggMax, Var: last},
		{Kind: AggCount, GroupBy: []string{first}},
		{Kind: AggSum, Var: first, GroupBy: []string{last}},
		{Kind: AggMin, Var: last, GroupBy: []string{first}},
	}
	if len(order) > 2 {
		mid := order[len(order)/2]
		specs = append(specs,
			AggSpec{Kind: AggCountDistinct, Over: []string{first, mid}, GroupBy: []string{last}},
			AggSpec{Kind: AggMax, Var: mid, GroupBy: []string{first, last}},
			AggSpec{Kind: AggCount, GroupBy: []string{first, mid, last}},
		)
	}
	return specs
}

// checkAggAgainstNaive asserts the pushdown answer equals the naive
// materialise-then-fold answer for one spec, serial and parallel.
func checkAggAgainstNaive(t *testing.T, q Query, db Database, spec AggSpec) {
	t.Helper()
	d := decompose(t, q, len(q.Atoms))
	rows, err := Evaluate(q, db, d)
	if err != nil {
		t.Fatalf("%s: evaluate: %v", FormatAggregate(spec), err)
	}
	want, err := AggregateRows(rows, spec)
	if err != nil {
		t.Fatalf("%s: naive fold: %v", FormatAggregate(spec), err)
	}
	for _, par := range []int{0, 4} {
		got, err := AggregateCtx(context.Background(), q, db, d, spec, EvalOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("%s (par=%d): pushdown: %v", FormatAggregate(spec), par, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s (par=%d): pushdown %+v, naive %+v\nquery: %s",
				FormatAggregate(spec), par, got, want, FormatQuery(q))
		}
	}
}

func TestAggregateTriangle(t *testing.T) {
	q, db := triangleFixture()
	for _, spec := range aggSpecs(q) {
		checkAggAgainstNaive(t, q, db, spec)
	}
}

// TestAggregateTable pins down exact values on a hand-checkable
// instance: R(x,y) ⋈ S(y,z) with known answers
// (x,y,z) ∈ {(1,2,5),(1,2,7),(4,2,5),(4,2,7),(1,3,6)}.
func TestAggregateTable(t *testing.T) {
	q, err := ParseQuery("R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	db := Database{
		"R": NewRelation("c1", "c2").Add(1, 2).Add(4, 2).Add(1, 3),
		"S": NewRelation("c1", "c2").Add(2, 5).Add(2, 7).Add(3, 6),
	}
	d := decompose(t, q, 2)

	cases := []struct {
		spec   AggSpec
		groups [][]int
		values []int64
	}{
		{AggSpec{Kind: AggCount}, [][]int{{}}, []int64{5}},
		{AggSpec{Kind: AggCountDistinct, Over: []string{"x"}}, [][]int{{}}, []int64{2}},
		{AggSpec{Kind: AggCountDistinct, Over: []string{"x", "z"}}, [][]int{{}}, []int64{5}},
		{AggSpec{Kind: AggSum, Var: "z"}, [][]int{{}}, []int64{5 + 7 + 5 + 7 + 6}},
		{AggSpec{Kind: AggMin, Var: "z"}, [][]int{{}}, []int64{5}},
		{AggSpec{Kind: AggMax, Var: "z"}, [][]int{{}}, []int64{7}},
		{AggSpec{Kind: AggCount, GroupBy: []string{"x"}}, [][]int{{1}, {4}}, []int64{3, 2}},
		{AggSpec{Kind: AggCount, GroupBy: []string{"y"}}, [][]int{{2}, {3}}, []int64{4, 1}},
		{AggSpec{Kind: AggSum, Var: "z", GroupBy: []string{"x"}}, [][]int{{1}, {4}}, []int64{18, 12}},
		{AggSpec{Kind: AggMax, Var: "x", GroupBy: []string{"z"}}, [][]int{{5}, {6}, {7}}, []int64{4, 1, 4}},
		{AggSpec{Kind: AggCountDistinct, Over: []string{"z"}, GroupBy: []string{"x"}},
			[][]int{{1}, {4}}, []int64{3, 2}},
	}
	for _, c := range cases {
		got, err := Aggregate(q, db, d, c.spec)
		if err != nil {
			t.Fatalf("%s: %v", FormatAggregate(c.spec), err)
		}
		if !reflect.DeepEqual(got.Groups, c.groups) || !reflect.DeepEqual(got.Values, c.values) {
			t.Errorf("%s: got groups=%v values=%v, want groups=%v values=%v",
				FormatAggregate(c.spec), got.Groups, got.Values, c.groups, c.values)
		}
		checkAggAgainstNaive(t, q, db, c.spec)
	}
}

// TestAggregateEmptyAnswerSet pins the empty-set semantics: scalar
// COUNT/COUNT DISTINCT/SUM are 0, scalar MIN/MAX and grouped aggregates
// have no groups — identically for pushdown and naive fold.
func TestAggregateEmptyAnswerSet(t *testing.T) {
	q, err := ParseQuery("R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	db := Database{
		"R": NewRelation("c1", "c2").Add(1, 2),
		"S": NewRelation("c1", "c2"), // empty: no answers at all
	}
	for _, spec := range aggSpecs(q) {
		checkAggAgainstNaive(t, q, db, spec)
	}
	d := decompose(t, q, 2)
	res, err := Aggregate(q, db, d, AggSpec{Kind: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Value(); !ok || v != 0 {
		t.Fatalf("scalar count over empty: value=%d ok=%v, want 0 true", v, ok)
	}
	res, err = Aggregate(q, db, d, AggSpec{Kind: AggMin, Var: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Value(); ok || len(res.Groups) != 0 {
		t.Fatalf("scalar min over empty must have no value, got %+v", res)
	}
}

// TestAggregateSingleAtom: a one-atom query exercises the DP's trivial
// tree (root only, no lifts), with duplicate tuples deduplicated by
// answer semantics.
func TestAggregateSingleAtom(t *testing.T) {
	q, err := ParseQuery("R(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	db := Database{
		// Duplicate rows: answers are distinct assignments, so (1,2)
		// counts once.
		"R": NewRelation("c1", "c2").Add(1, 2).Add(1, 2).Add(3, 4).Add(3, 9),
	}
	for _, spec := range aggSpecs(q) {
		checkAggAgainstNaive(t, q, db, spec)
	}
	d := decompose(t, q, 1)
	res, err := Aggregate(q, db, d, AggSpec{Kind: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v != 3 {
		t.Fatalf("count with duplicate tuples = %d, want 3", v)
	}
}

// TestAggregateDuplicateRows: self-join with repeated tuples — bag
// relations contain duplicates until projection, and the same base
// relation feeds two atoms.
func TestAggregateDuplicateRows(t *testing.T) {
	q, err := ParseQuery("R(x,y), R(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	db := Database{
		"R": NewRelation("c1", "c2").Add(1, 1).Add(1, 1).Add(1, 2).Add(2, 1),
	}
	for _, spec := range aggSpecs(q) {
		checkAggAgainstNaive(t, q, db, spec)
	}
}

// TestAggregateAgainstNaiveRandom is the join-level differential wall:
// on seeded random instances (shapes shared with the query-level wall),
// every aggregate kind must match the naive fold, serial and parallel,
// across decomposition widths.
func TestAggregateAgainstNaiveRandom(t *testing.T) {
	for seed := 0; seed < 12; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		q, db := randomAggInstance(r)
		for _, spec := range aggSpecs(q) {
			checkAggAgainstNaive(t, q, db, spec)
		}
	}
}

// randomAggInstance is a compact local generator (internal/query's
// RandomInstance would be an import cycle): connected 2..4-atom queries
// over a small domain, arity ≤ 3, with self-joins possible.
func randomAggInstance(r *rand.Rand) (Query, Database) {
	nAtoms := 2 + r.Intn(3)
	nRels := 1 + r.Intn(nAtoms)
	arities := make([]int, nRels)
	for i := range arities {
		arities[i] = 1 + r.Intn(3)
	}
	var q Query
	var used []string
	seen := map[string]bool{}
	for i := 0; i < nAtoms; i++ {
		rel := r.Intn(nRels)
		picked := map[string]bool{}
		var vars []string
		if i > 0 {
			v := used[r.Intn(len(used))]
			picked[v] = true
			vars = append(vars, v)
		}
		for len(vars) < arities[rel] {
			v := fmt.Sprintf("x%d", r.Intn(5))
			if picked[v] {
				continue
			}
			picked[v] = true
			vars = append(vars, v)
		}
		for _, v := range vars {
			if !seen[v] {
				seen[v] = true
				used = append(used, v)
			}
		}
		q.Atoms = append(q.Atoms, Atom{Relation: fmt.Sprintf("R%d", rel), Vars: vars})
	}
	db := Database{}
	for i, arity := range arities {
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("c%d", j)
		}
		rel := NewRelation(attrs...)
		for n := r.Intn(15); n > 0; n-- {
			row := make([]int, arity)
			for j := range row {
				row[j] = r.Intn(4)
			}
			rel.Add(row...)
		}
		db[fmt.Sprintf("R%d", i)] = rel.Dedup()
	}
	return q, db
}

// TestCountCancellation is the bugfix regression: Count used to run an
// un-budgeted recursion that ignored its caller entirely; it must now
// stop on a cancelled context.
func TestCountCancellation(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountCtx(ctx, q, db, d, EvalOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled count: got %v, want context.Canceled", err)
	}
	if _, err := AggregateCtx(ctx, q, db, d, AggSpec{Kind: AggSum, Var: "x"}, EvalOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled aggregate: got %v, want context.Canceled", err)
	}
}

// TestAggregateRowBudget: the DP's state is bounded by the group count,
// so a huge answer set with few groups fits a small budget — and a
// grouped aggregate with more groups than the budget aborts.
func TestAggregateRowBudget(t *testing.T) {
	q, err := ParseQuery("R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	r, s := NewRelation("c1", "c2"), NewRelation("c1", "c2")
	for i := 0; i < 30; i++ {
		r.Add(i, 0)
		s.Add(0, i)
	}
	db := Database{"R": r, "S": s}
	// Width-1 plan: one atom per bag, so no intermediate materialises the
	// 900-row join and the DP's own state is what the budget measures.
	d := decompose(t, q, 1)

	// 900 answers, but a scalar count carries one cell per tuple: it
	// must succeed under a budget far below the answer count. (The bag
	// relations themselves have 30 rows, so budget 50 > every
	// intermediate.)
	res, err := AggregateCtx(context.Background(), q, db, d, AggSpec{Kind: AggCount}, EvalOptions{MaxRows: 50})
	if err != nil {
		t.Fatalf("scalar count under budget: %v", err)
	}
	if v, _ := res.Value(); v != 900 {
		t.Fatalf("count = %d, want 900", v)
	}

	// Grouping by both x and z yields 900 groups — that must blow a
	// 50-row budget.
	_, err = AggregateCtx(context.Background(), q, db, d,
		AggSpec{Kind: AggCount, GroupBy: []string{"x", "z"}}, EvalOptions{MaxRows: 50})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("900-group aggregate under 50-row budget: got %v, want ErrRowBudget", err)
	}
}

func TestAggSpecValidate(t *testing.T) {
	q, _ := ParseQuery("R(x,y), S(y,z)")
	bad := []AggSpec{
		{Kind: AggCount, Var: "x"},                              // count takes no operand
		{Kind: AggSum},                                          // sum needs an operand
		{Kind: AggSum, Var: "w"},                                // not a query variable
		{Kind: AggCountDistinct},                                // empty projection
		{Kind: AggCountDistinct, Over: []string{"x", "x"}},      // repeated variable
		{Kind: AggCount, GroupBy: []string{"x", "x"}},           // repeated group variable
		{Kind: AggCount, GroupBy: []string{"q"}},                // unknown group variable
		{Kind: AggMin, Var: "x", Over: []string{"y"}},           // min takes no projection
		{Kind: AggCountDistinct, Over: []string{"x"}, Var: "y"}, // distinct takes no operand
		{Kind: AggKind(42)},                                     // unknown kind
	}
	for _, spec := range bad {
		if err := spec.Validate(q); err == nil {
			t.Errorf("spec %+v must fail validation", spec)
		}
	}
	good := []AggSpec{
		{Kind: AggCount},
		{Kind: AggCountDistinct, Over: []string{"x", "z"}, GroupBy: []string{"y"}},
		{Kind: AggMax, Var: "z", GroupBy: []string{"x", "y"}},
	}
	for _, spec := range good {
		if err := spec.Validate(q); err != nil {
			t.Errorf("spec %+v: unexpected validation error %v", spec, err)
		}
	}
}

func TestParseAggregateRoundTrip(t *testing.T) {
	cases := []string{
		"count",
		"count distinct(x)",
		"count distinct(x,y)",
		"sum(x)",
		"min(y)",
		"max(z)",
		"group x: count",
		"group x,y: sum(z)",
		"group y: count distinct(x,z)",
	}
	for _, src := range cases {
		spec, err := ParseAggregate(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := FormatAggregate(spec); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
	bad := []string{
		"", "tally", "count(x)", "count distinct", "sum", "sum()", "sum(x,y)",
		"group : count", "group x count", "group x,: sum(y)", "min(a:b)",
	}
	for _, src := range bad {
		if _, err := ParseAggregate(src); err == nil {
			t.Errorf("%q must fail to parse", src)
		}
	}
}

func TestParseDocumentAggregate(t *testing.T) {
	src := strings.Join([]string{
		"% aggregate document",
		"query R(x,y), S(y,z).",
		"aggregate group x: count distinct(z)",
		"rel R(c1,c2)",
		"1 2",
		"end",
		"rel S(c1,c2)",
		"2 3",
		"end",
	}, "\n")
	doc, err := ParseDocument(src)
	if err != nil {
		t.Fatal(err)
	}
	want := AggSpec{Kind: AggCountDistinct, Over: []string{"z"}, GroupBy: []string{"x"}}
	if doc.Aggregate == nil || !reflect.DeepEqual(*doc.Aggregate, want) {
		t.Fatalf("parsed aggregate %+v, want %+v", doc.Aggregate, want)
	}
	re, err := ParseDocument(FormatDocument(doc))
	if err != nil {
		t.Fatalf("reparse formatted document: %v", err)
	}
	if !reflect.DeepEqual(re, doc) {
		t.Fatalf("document with aggregate does not round-trip")
	}

	// An aggregate over a variable the query does not bind is rejected
	// at parse time.
	if _, err := ParseDocument(strings.Replace(src, "distinct(z)", "distinct(w)", 1)); err == nil {
		t.Fatal("aggregate over unknown variable must fail")
	}
	// Duplicate aggregate lines are rejected.
	if _, err := ParseDocument(strings.Replace(src,
		"aggregate group x: count distinct(z)",
		"aggregate count\naggregate count", 1)); err == nil {
		t.Fatal("duplicate aggregate line must fail")
	}
}
