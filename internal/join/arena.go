package join

// Columnar storage primitives: fixed-size column chunks carved from
// arena slabs. A Relation's values live in per-column chunk lists
// (vec); all chunks of one relation come from the relation's own
// arena, so an intermediate relation is a handful of slab allocations
// that free together — not millions of per-tuple slice headers for the
// GC to trace.

const (
	// chunkShift sets the chunk size: 4096 values per chunk keeps row
	// addressing a shift+mask while bounding slack on small relations.
	chunkShift = 12
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// slabChunks caps slab growth: slabs double from 1 chunk up to this
// many, so a tiny relation costs one chunk-sized allocation while a
// big one amortises the allocator to one call per slabChunks chunks.
const slabChunks = 16

// arena hands out column chunks carved from geometrically growing
// slabs. It is not goroutine-safe: parallel join partitions each build
// into their own relation (own arena) and concatenate afterwards.
type arena struct {
	free32 []int32
	free64 []int64
	next32 int // chunks in the next 32-bit slab
	next64 int // chunks in the next 64-bit slab
}

func (a *arena) chunk32() []int32 {
	if len(a.free32) < chunkSize {
		if a.next32 < 1 {
			a.next32 = 1
		}
		a.free32 = make([]int32, a.next32*chunkSize)
		if a.next32 < slabChunks {
			a.next32 *= 2
		}
	}
	c := a.free32[:chunkSize:chunkSize]
	a.free32 = a.free32[chunkSize:]
	return c
}

func (a *arena) chunk64() []int64 {
	if len(a.free64) < chunkSize {
		if a.next64 < 1 {
			a.next64 = 1
		}
		a.free64 = make([]int64, a.next64*chunkSize)
		if a.next64 < slabChunks {
			a.next64 *= 2
		}
	}
	c := a.free64[:chunkSize:chunkSize]
	a.free64 = a.free64[chunkSize:]
	return c
}

// vec is one column: a chunk list of int32 values, promoted wholesale
// to int64 by the first value that does not fit (parsed values are
// arbitrary ints, so promotion must be lossless).
type vec struct {
	c32  [][]int32
	c64  [][]int64
	wide bool
}

// at returns the value at row i.
func (v *vec) at(i int) int {
	if v.wide {
		return int(v.c64[i>>chunkShift][i&chunkMask])
	}
	return int(v.c32[i>>chunkShift][i&chunkMask])
}

// push appends x as row n (the owning relation tracks the row count).
func (v *vec) push(a *arena, n, x int) {
	if !v.wide {
		if int64(int32(x)) == int64(x) {
			if n&chunkMask == 0 {
				v.c32 = append(v.c32, a.chunk32())
			}
			v.c32[n>>chunkShift][n&chunkMask] = int32(x)
			return
		}
		v.widen(a)
	}
	if n&chunkMask == 0 {
		v.c64 = append(v.c64, a.chunk64())
	}
	v.c64[n>>chunkShift][n&chunkMask] = int64(x)
}

// widen promotes every chunk to 64-bit. Slack beyond the filled rows
// copies whatever the chunk held, which is harmless — rows past the
// relation's count are never read.
func (v *vec) widen(a *arena) {
	v.c64 = make([][]int64, len(v.c32))
	for ci, c := range v.c32 {
		w := a.chunk64()
		for j, x := range c {
			w[j] = int64(x)
		}
		v.c64[ci] = w
	}
	v.c32, v.wide = nil, true
}

// extend appends the first srcN rows of src to v, which currently has
// n rows. Chunk-aligned same-width appends copy whole chunks; anything
// else goes value-wise through push (which handles width promotion).
func (v *vec) extend(a *arena, n int, src *vec, srcN int) {
	if srcN == 0 {
		return
	}
	if n&chunkMask == 0 && v.wide == src.wide {
		nc := (srcN + chunkMask) >> chunkShift
		if v.wide {
			for _, c := range src.c64[:nc] {
				w := a.chunk64()
				copy(w, c)
				v.c64 = append(v.c64, w)
			}
		} else {
			for _, c := range src.c32[:nc] {
				w := a.chunk32()
				copy(w, c)
				v.c32 = append(v.c32, w)
			}
		}
		return
	}
	for i := 0; i < srcN; i++ {
		v.push(a, n+i, src.at(i))
	}
}

// hashMix folds one column value into a running hash (splitmix64-style
// finalisation). Good avalanche keeps the open-addressing tables of
// index.go at their design load factor.
func hashMix(h, v uint64) uint64 {
	v *= 0x9e3779b97f4a7c15
	v ^= v >> 29
	h ^= v
	h *= 0xbf58476d1ce4e5b9
	return h ^ h>>32
}

// hashRow hashes the key columns of row i of r.
func hashRow(r *Relation, cols []int, row int) uint64 {
	h := uint64(len(cols))*0x94d049bb133111eb + 1
	for _, c := range cols {
		h = hashMix(h, uint64(r.cols[c].at(row)))
	}
	return h
}
