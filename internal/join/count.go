package join

import (
	"context"

	"repro/internal/decomp"
)

// Count returns the number of answers of the full conjunctive query
// without materialising them, by dynamic programming over the join tree
// of the decomposition: after the semijoin reduction, each bag tuple's
// extension count is the product over children of the summed counts of
// joining child tuples. This is the tractable counting the paper cites
// as an HD application (Pichler & Skritek [23]): time is polynomial in
// the size of the bag relations, hence in N^width.
//
// Count is the scalar-COUNT special case of the aggregate pushdown
// engine (see AggregateCtx) and runs on the same budgeted indexed
// kernel.
func Count(q Query, db Database, d *decomp.Decomp) (int64, error) {
	return CountCtx(context.Background(), q, db, d, EvalOptions{})
}

// CountCtx is Count under a context and per-query limits: the reduction
// passes and the counting DP honour ctx cancellation, opts.MaxRows and
// the shared token budget exactly like EvaluateCtx. opts.Kernel is
// ignored; counting always runs on the indexed executor.
func CountCtx(ctx context.Context, q Query, db Database, d *decomp.Decomp, opts EvalOptions) (int64, error) {
	res, err := AggregateCtx(ctx, q, db, d, AggSpec{Kind: AggCount}, opts)
	if err != nil {
		return 0, err
	}
	n, _ := res.Value()
	return n, nil
}
