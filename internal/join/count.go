package join

import (
	"repro/internal/decomp"
)

// Count returns the number of answers of the full conjunctive query
// without materialising them, by dynamic programming over the join tree
// of the decomposition: after the bottom-up semijoin reduction, each bag
// tuple's extension count is the product over children of the summed
// counts of joining child tuples. This is the tractable counting the
// paper cites as an HD application (Pichler & Skritek [23]): time is
// polynomial in the size of the bag relations, hence in N^width.
func Count(q Query, db Database, d *decomp.Decomp) (int64, error) {
	tree, err := BuildJoinTree(q, db, d)
	if err != nil {
		return 0, err
	}
	// Bottom-up semijoin reduction so every remaining tuple extends to
	// at least one full answer downward.
	var reduce func(n *bagNode) error
	reduce = func(n *bagNode) error {
		for _, c := range n.children {
			if err := reduce(c); err != nil {
				return err
			}
			red, err := n.rel.Semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return nil
	}
	if err := reduce(tree); err != nil {
		return 0, err
	}

	// extensions(n) returns, per tuple of n.rel, how many distinct
	// assignments to the variables of T_n extend it.
	var extensions func(n *bagNode) ([]int64, error)
	extensions = func(n *bagNode) ([]int64, error) {
		counts := make([]int64, n.rel.Size())
		for i := range counts {
			counts[i] = 1
		}
		for _, c := range n.children {
			childCounts, err := extensions(c)
			if err != nil {
				return nil, err
			}
			shared := sharedAttrs(c.rel, n.rel)
			cIdx, err := c.rel.attrIndex(shared)
			if err != nil {
				return nil, err
			}
			nIdx, err := n.rel.attrIndex(shared)
			if err != nil {
				return nil, err
			}
			// Sum child extension counts per join key.
			sums := make(map[string]int64, c.rel.Size())
			for j, t := range c.rel.Tuples {
				sums[keyOf(t, cIdx)] += childCounts[j]
			}
			for i, t := range n.rel.Tuples {
				counts[i] *= sums[keyOf(t, nIdx)]
			}
		}
		return counts, nil
	}
	counts, err := extensions(tree)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}
