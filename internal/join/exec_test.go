package join

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/logk"
)

// execOptsMatrix is every executor configuration the differential tests
// sweep: the legacy scan baseline, the serial indexed kernel, and the
// parallel indexed kernel with and without a token budget.
func execOptsMatrix() map[string]EvalOptions {
	return map[string]EvalOptions{
		"scan":             {Kernel: KernelScan},
		"indexed":          {},
		"parallel":         {Parallelism: 4},
		"parallel-tokens":  {Parallelism: 4, Tokens: newCountingTokens(3)},
		"parallel-0tokens": {Parallelism: 4, Tokens: newCountingTokens(0)},
	}
}

// countingTokens is a TokenSource that tracks outstanding leases, the
// counter check that no worker leaks a token (or a goroutine holding
// one) past the end of an evaluation.
type countingTokens struct {
	avail       atomic.Int64
	outstanding atomic.Int64
	acquires    atomic.Int64
}

func newCountingTokens(n int) *countingTokens {
	t := &countingTokens{}
	t.avail.Store(int64(n))
	return t
}

func (t *countingTokens) TryAcquire(max int) int {
	for {
		cur := t.avail.Load()
		if cur <= 0 {
			return 0
		}
		n := int64(max)
		if n > cur {
			n = cur
		}
		if t.avail.CompareAndSwap(cur, cur-n) {
			t.outstanding.Add(n)
			t.acquires.Add(n)
			return int(n)
		}
	}
}

func (t *countingTokens) Release(n int) {
	t.avail.Add(int64(n))
	t.outstanding.Add(-int64(n))
}

// randomInstanceForExec builds a random connected CQ + database, sized
// by tuples per relation.
func randomInstanceForExec(r *rand.Rand, atoms, tuples, domain int) (Query, Database) {
	var q Query
	db := Database{}
	nv := atoms + 2
	for i := 0; i < atoms; i++ {
		arity := 2
		vars := make([]string, arity)
		vars[0] = "x" + strconv.Itoa(r.Intn(nv))
		for {
			v := "x" + strconv.Itoa(r.Intn(nv))
			if v != vars[0] {
				vars[1] = v
				break
			}
		}
		if i > 0 {
			// Keep the query connected: reuse a variable from atom 0.
			vars[0] = q.Atoms[0].Vars[r.Intn(2)]
			if vars[1] == vars[0] {
				vars[1] = "x" + strconv.Itoa(nv)
			}
		}
		name := "R" + strconv.Itoa(i)
		rel := NewRelation("a", "b")
		for j := 0; j < tuples; j++ {
			rel.Add(r.Intn(domain), r.Intn(domain))
		}
		db[name] = rel
		q.Atoms = append(q.Atoms, Atom{Relation: name, Vars: vars})
	}
	return q, db
}

func decomposeFor(t *testing.T, q Query) *decomp.Decomp {
	t.Helper()
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(q.Atoms); k++ {
		d, ok, err := logk.New(h, logk.Options{K: k}).Decompose(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return d
		}
	}
	t.Fatal("no decomposition found")
	return nil
}

// TestKernelsByteIdentical: the indexed kernel — serial and parallel —
// must produce not just the same row set as the legacy scan kernel but
// the very same tuple order, byte for byte.
func TestKernelsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		q, db := randomInstanceForExec(r, 3+int(seed%4), 40, 6)
		d := decomposeFor(t, q)

		want, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{Kernel: KernelScan})
		if err != nil {
			t.Fatalf("seed %d scan: %v", seed, err)
		}
		for name, opts := range execOptsMatrix() {
			if name == "scan" {
				continue
			}
			var stats ExecStats
			opts.Stats = &stats
			got, err := EvaluateCtx(context.Background(), q, db, d, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if !reflect.DeepEqual(got.Attrs, want.Attrs) {
				t.Fatalf("seed %d %s: attrs %v, want %v", seed, name, got.Attrs, want.Attrs)
			}
			if !reflect.DeepEqual(got.Rows(), want.Rows()) {
				t.Fatalf("seed %d %s: tuple order diverged from the scan kernel (%d vs %d rows)",
					seed, name, got.Size(), want.Size())
			}
			if stats.Joins == 0 && stats.Semijoins == 0 && len(q.Atoms) > 1 {
				t.Fatalf("seed %d %s: executor stats not populated: %+v", seed, name, stats)
			}
			if tok, ok := opts.Tokens.(*countingTokens); ok {
				if n := tok.outstanding.Load(); n != 0 {
					t.Fatalf("seed %d %s: %d tokens still outstanding after evaluation", seed, name, n)
				}
			}
		}
	}
}

// TestExecEmptyRelation: an empty atom relation empties the whole
// answer, in every kernel, without errors.
func TestExecEmptyRelation(t *testing.T) {
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
		{Relation: "T", Vars: []string{"z", "w"}},
	}}
	db := Database{
		"R": NewRelation("a", "b").Add(1, 2).Add(3, 4),
		"S": NewRelation("a", "b"), // empty
		"T": NewRelation("a", "b").Add(5, 6),
	}
	d := decomposeFor(t, q)
	for name, opts := range execOptsMatrix() {
		got, err := EvaluateCtx(context.Background(), q, db, d, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Size() != 0 {
			t.Fatalf("%s: %d rows from a query over an empty relation", name, got.Size())
		}
	}
}

// TestExecDuplicateRows: duplicate input tuples must not produce
// duplicate answers (the final dedup), in every kernel.
func TestExecDuplicateRows(t *testing.T) {
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
	}}
	db := Database{
		"R": NewRelation("a", "b").Add(1, 2).Add(1, 2).Add(1, 2).Add(3, 2),
		"S": NewRelation("a", "b").Add(2, 9).Add(2, 9),
	}
	d := decomposeFor(t, q)
	want, err := EvaluateNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range execOptsMatrix() {
		got, err := EvaluateCtx(context.Background(), q, db, d, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Sorted(), want.Sorted()) {
			t.Fatalf("%s: %v, want %v", name, got.Sorted(), want.Sorted())
		}
		if got.Size() != 2 {
			t.Fatalf("%s: %d rows, want 2 (dedup failed)", name, got.Size())
		}
	}
}

// TestExecSingleAtom: a one-atom query is a width-1 decomposition with a
// single bag; the answer is the deduplicated relation itself.
func TestExecSingleAtom(t *testing.T) {
	q := Query{Atoms: []Atom{{Relation: "R", Vars: []string{"x", "y"}}}}
	db := Database{"R": NewRelation("a", "b").Add(1, 2).Add(1, 2).Add(3, 4)}
	d := decomposeFor(t, q)
	for name, opts := range execOptsMatrix() {
		got, err := EvaluateCtx(context.Background(), q, db, d, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := [][]int{{1, 2}, {3, 4}}; !reflect.DeepEqual(got.Sorted(), want) {
			t.Fatalf("%s: %v, want %v", name, got.Sorted(), want)
		}
	}
	// The database relation itself must stay untouched.
	if want := [][]int{{1, 2}, {1, 2}, {3, 4}}; !reflect.DeepEqual(db["R"].Rows(), want) {
		t.Fatalf("single-atom evaluation mutated the database: %v", db["R"].Rows())
	}
}

// explodingInstance is a 3-atom query whose full answer has
// rows^2 tuples — enough work that budgets and cancellations fire while
// the parallel passes are genuinely in flight.
func explodingInstance(rows int) (Query, Database) {
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
		{Relation: "T", Vars: []string{"y", "w"}},
	}}
	r := NewRelation("a", "b")
	s := NewRelation("a", "b")
	tt := NewRelation("a", "b")
	for i := 0; i < rows; i++ {
		r.Add(i, 0)
		s.Add(0, i)
		tt.Add(0, i)
	}
	return q, Database{"R": r, "S": s, "T": tt}
}

// leakCheck asserts the goroutine count returns to its baseline — the
// executor must join every worker before returning, even on abort.
func leakCheck(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecRowBudgetMidParallel: ErrRowBudget fires inside the parallel
// final-join probe loops, every worker is joined, and no token stays
// leased.
func TestExecRowBudgetMidParallel(t *testing.T) {
	q, db := explodingInstance(300) // 90 000 answers
	d := decomposeFor(t, q)
	tok := newCountingTokens(3)
	baseline := runtime.NumGoroutine()
	var stats ExecStats
	_, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{
		MaxRows: 1000, Parallelism: 4, Tokens: tok, Stats: &stats,
	})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	if n := tok.outstanding.Load(); n != 0 {
		t.Fatalf("%d tokens still outstanding after abort", n)
	}
	leakCheck(t, baseline)
}

// TestExecCancelMidParallel: a context cancelled while the parallel
// passes run aborts the evaluation promptly without leaking goroutines
// or tokens.
func TestExecCancelMidParallel(t *testing.T) {
	q, db := explodingInstance(600) // 360 000 answers: enough to outlive the cancel
	d := decomposeFor(t, q)
	tok := newCountingTokens(3)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := EvaluateCtx(ctx, q, db, d, EvalOptions{Parallelism: 4, Tokens: tok})
	<-ctx.Done()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled or nil (if the run won the race)", err)
	}
	if n := tok.outstanding.Load(); n != 0 {
		t.Fatalf("%d tokens still outstanding after cancellation", n)
	}
	leakCheck(t, baseline)
}

// TestDownPassIndexesParentOnce: in the top-down pass, children sharing
// a column set probe one index of their parent — k children must not
// trigger k builds of the same index.
func TestDownPassIndexesParentOnce(t *testing.T) {
	parent := &bagNode{rel: NewRelation("a").Add(1).Add(2)}
	for i := 0; i < 4; i++ {
		child := NewRelation("a", "b").Add(1, 10+i).Add(3, 20+i)
		parent.children = append(parent.children, &bagNode{rel: child})
	}
	e := &executor{g: &guard{ctx: context.Background()}, cancel: func() {}}
	if err := e.down(parent); err != nil {
		t.Fatal(err)
	}
	if n := e.indexBuilds.Load(); n != 1 {
		t.Fatalf("IndexBuilds = %d, want 1 (four children share the parent's index)", n)
	}
	for i, c := range parent.children {
		if c.rel.Size() != 1 || c.rel.Row(0)[0] != 1 {
			t.Fatalf("child %d not reduced against the parent: %v", i, c.rel.Rows())
		}
	}
}

// TestExecRowBudgetSkewedKey: a single join key whose match bucket alone
// exceeds the budget must abort mid-bucket — the check cannot wait for
// the next probe tuple.
func TestExecRowBudgetSkewedKey(t *testing.T) {
	// R has ONE tuple; S has 200k tuples all sharing the join key, so
	// the whole blow-up happens inside one probe tuple's bucket loop.
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"y", "z"}},
	}}
	s := NewRelation("a", "b")
	for i := 0; i < 200_000; i++ {
		s.Add(0, i)
	}
	db := Database{"R": NewRelation("a", "b").Add(7, 0), "S": s}
	d := decomposeFor(t, q)
	start := time.Now()
	_, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{MaxRows: 1000})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("skewed-key budget abort took %v — the in-bucket check is gone", elapsed)
	}
}

// TestSemijoinPollsInsideProbeLoop: a deadline expiring in the middle of
// one huge semijoin must abort that operation from within its probe
// loop — the scan kernel would only notice after finishing the scan.
func TestSemijoinPollsInsideProbeLoop(t *testing.T) {
	// One semijoin with a large probe side; the deadline lands mid-scan.
	big := NewRelation("a", "b")
	small := NewRelation("b", "c")
	for i := 0; i < 2_000_000; i++ {
		big.Add(i, i%7)
	}
	for i := 0; i < 7; i++ {
		small.Add(i, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the in-loop poll must fire on iteration 0
	e := &executor{g: &guard{ctx: ctx}, cancel: func() {}}
	if _, err := e.semijoin(big, small); !errors.Is(err, context.Canceled) {
		t.Fatalf("in-loop poll did not fire: %v", err)
	}
}

// TestExecRowBudgetInsideJoinLoop: the indexed join aborts while
// producing rows, long before materialising the full cross product.
func TestExecRowBudgetInsideJoinLoop(t *testing.T) {
	q, db := explodingInstance(2000) // 4M answers if allowed to finish
	d := decomposeFor(t, q)
	start := time.Now()
	_, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{MaxRows: 500})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	// Generous bound: producing 4M wide rows takes far longer than
	// aborting at 500; this guards against the check silently moving
	// back to "after the full operation".
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget abort took %v — the in-loop check is gone", elapsed)
	}
}
