package join

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Atom is one query atom R(x, y, ...): a relation name applied to
// variables. Repeated variables within an atom are not supported (they
// can be compiled away by a selection beforehand).
type Atom struct {
	Relation string
	Vars     []string
}

// Query is a conjunctive query: a conjunction of atoms. All variables
// are output variables (full CQ); projections can be applied to the
// result.
type Query struct {
	Atoms []Atom
}

// Database maps relation names to their data.
type Database map[string]*Relation

// Hypergraph returns the query's hypergraph H_φ (§2 of the paper):
// vertices are variables, and each atom contributes the edge vars(a).
// Edge i corresponds to Atoms[i].
func (q Query) Hypergraph() (*hypergraph.Hypergraph, error) {
	var b hypergraph.Builder
	for i, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return nil, fmt.Errorf("join: atom %d (%s) has no variables", i, a.Relation)
		}
		if err := b.AddEdge(fmt.Sprintf("%s#%d", a.Relation, i), a.Vars...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// atomRelation returns the atom's data with columns renamed to the
// query's variables. Repeated variables in the atom are rejected.
func atomRelation(db Database, a Atom) (*Relation, error) {
	base, ok := db[a.Relation]
	if !ok {
		return nil, fmt.Errorf("join: relation %q not in database", a.Relation)
	}
	if len(base.Attrs) != len(a.Vars) {
		return nil, fmt.Errorf("join: atom %s has %d vars but relation has %d columns",
			a.Relation, len(a.Vars), len(base.Attrs))
	}
	seen := map[string]bool{}
	for _, v := range a.Vars {
		if seen[v] {
			return nil, fmt.Errorf("join: repeated variable %q in atom %s", v, a.Relation)
		}
		seen[v] = true
	}
	// Shared column storage under the query's variable names; safe
	// because operators never mutate an input relation.
	return base.renamed(append([]string(nil), a.Vars...)), nil
}

// EvaluateNaive joins all atoms left to right — exponential in general,
// used as the correctness baseline in tests and examples.
func EvaluateNaive(q Query, db Database) (*Relation, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("join: empty query")
	}
	acc, err := atomRelation(db, q.Atoms[0])
	if err != nil {
		return nil, err
	}
	for _, a := range q.Atoms[1:] {
		r, err := atomRelation(db, a)
		if err != nil {
			return nil, err
		}
		acc, err = acc.Join(r)
		if err != nil {
			return nil, err
		}
	}
	// acc may share storage with a database relation (atomRelation
	// aliases it); Dedup builds a fresh relation, so that is safe.
	return acc.Dedup(), nil
}
