package join

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/decomp"
)

// Aggregate pushdown over the join tree: per-bag partial aggregates
// folded during the bottom-up Yannakakis pass instead of
// materialise-then-fold. This generalises the extension-count DP of
// Count to keyed partial aggregates carried per bag tuple — the
// tractable aggregation over bounded-width decompositions that
// Gottlob–Leone–Scarcello cite as an HD application: a COUNT, SUM or
// GROUP BY answer costs polynomial time in the bag relations (N^width),
// even when the enumerated result would be exponentially larger.
//
// The correctness backbone is the running-intersection property of the
// join tree: a variable's occurrence bags form a connected subtree, so
// every variable has a unique resolution point (the topmost bag that
// contains it), sibling subtrees share no unresolved variables, and
// per-branch partial aggregates combine by key-wise products.

// AggKind selects the aggregate operation.
type AggKind int

const (
	// AggCount counts distinct full answers (per group).
	AggCount AggKind = iota
	// AggCountDistinct counts distinct assignments to the Over
	// projection (per group).
	AggCountDistinct
	// AggSum sums the operand variable over distinct full answers.
	AggSum
	// AggMin takes the minimum of the operand variable over the answers.
	AggMin
	// AggMax takes the maximum of the operand variable over the answers.
	AggMax
)

// String returns the function keyword of the kind ("count", "sum", …).
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggCountDistinct:
		return "count distinct"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec is one aggregate head over a full conjunctive query:
//
//	count                     — number of distinct answers
//	count distinct(x,y)       — distinct assignments to a projection
//	sum(x) | min(x) | max(x)  — fold of one variable over the answers
//	group g1,g2: <any above>  — the same, per assignment to g1,g2
//
// Answers are the distinct satisfying assignments of the full CQ (the
// same set Evaluate enumerates), so every aggregate here agrees with
// materialise-then-fold — just without the materialisation.
type AggSpec struct {
	Kind AggKind
	// Var is the operand variable of Sum/Min/Max.
	Var string
	// Over is the projection of CountDistinct (at least one variable).
	Over []string
	// GroupBy groups the answers by these variables; empty = one scalar
	// aggregate over the whole answer set.
	GroupBy []string
}

// Validate checks the spec against the query's variables, so a typo
// fails before any planning or execution effort.
func (s AggSpec) Validate(q Query) error {
	vars := map[string]bool{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			vars[v] = true
		}
	}
	checkList := func(what string, list []string, allowEmpty bool) error {
		if !allowEmpty && len(list) == 0 {
			return fmt.Errorf("join: aggregate %s needs at least one variable", what)
		}
		seen := map[string]bool{}
		for _, v := range list {
			if err := checkName(v); err != nil {
				return fmt.Errorf("join: aggregate %s variable %q: %w", what, v, err)
			}
			if !vars[v] {
				return fmt.Errorf("join: aggregate %s variable %q is not a query variable", what, v)
			}
			if seen[v] {
				return fmt.Errorf("join: aggregate %s repeats variable %q", what, v)
			}
			seen[v] = true
		}
		return nil
	}
	switch s.Kind {
	case AggCount:
		if s.Var != "" || len(s.Over) != 0 {
			return fmt.Errorf("join: count takes no operand")
		}
	case AggCountDistinct:
		if s.Var != "" {
			return fmt.Errorf("join: count distinct takes a projection, not an operand variable")
		}
		if err := checkList("count distinct", s.Over, false); err != nil {
			return err
		}
	case AggSum, AggMin, AggMax:
		if len(s.Over) != 0 {
			return fmt.Errorf("join: %s takes a single operand variable", s.Kind)
		}
		if s.Var == "" {
			return fmt.Errorf("join: %s needs an operand variable", s.Kind)
		}
		if err := checkList(s.Kind.String(), []string{s.Var}, false); err != nil {
			return err
		}
	default:
		return fmt.Errorf("join: unknown aggregate kind %d", int(s.Kind))
	}
	return checkList("group by", s.GroupBy, true)
}

// watched returns the variables whose assignments the pushdown must
// carry as partial-aggregate keys, in sorted order: the group-by
// variables, plus the projection for count distinct.
func (s AggSpec) watched() []string {
	set := map[string]bool{}
	for _, v := range s.GroupBy {
		set[v] = true
	}
	if s.Kind == AggCountDistinct {
		for _, v := range s.Over {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// groupVars returns the group-by variables in sorted order — the
// canonical column order of AggResult.Groups.
func (s AggSpec) groupVars() []string {
	out := append([]string(nil), s.GroupBy...)
	sort.Strings(out)
	return out
}

// scalar reports whether the spec has no GROUP BY.
func (s AggSpec) scalar() bool { return len(s.GroupBy) == 0 }

// AggResult is one answered aggregate. It is canonical: group columns
// in sorted variable order, group rows in sorted order — repeat answers
// are byte-identical, and pushdown answers comparable to naive folds
// with reflect.DeepEqual.
type AggResult struct {
	// GroupVars are the GROUP BY variables in sorted order; empty for a
	// scalar aggregate.
	GroupVars []string
	// Groups holds one row per group (values aligned with GroupVars,
	// sorted lexicographically). A scalar aggregate has one empty row —
	// except MIN/MAX over an empty answer set, which have no value at
	// all and return zero rows.
	Groups [][]int
	// Values is the aggregate value per group, parallel to Groups.
	Values []int64
}

// Value returns the scalar answer of a no-GROUP-BY aggregate and
// whether one exists (false only for MIN/MAX over an empty answer set,
// or when the result is grouped).
func (r AggResult) Value() (int64, bool) {
	if len(r.GroupVars) == 0 && len(r.Values) == 1 {
		return r.Values[0], true
	}
	return 0, false
}

// AggregateRows folds an already-materialised full-query result — the
// definitional semantics every pushdown answer must reproduce, and the
// naive baseline of the differential wall. rel must be a full answer
// relation (distinct rows over all query variables), as produced by
// Evaluate or EvaluateNaive.
func AggregateRows(rel *Relation, spec AggSpec) (AggResult, error) {
	gVars := spec.groupVars()
	gIdx, err := rel.attrIndex(gVars)
	if err != nil {
		return AggResult{}, err
	}
	var opIdx int
	switch spec.Kind {
	case AggSum, AggMin, AggMax:
		idx, err := rel.attrIndex([]string{spec.Var})
		if err != nil {
			return AggResult{}, err
		}
		opIdx = idx[0]
	}
	var overIdx []int
	if spec.Kind == AggCountDistinct {
		over := append([]string(nil), spec.Over...)
		sort.Strings(over)
		if overIdx, err = rel.attrIndex(over); err != nil {
			return AggResult{}, err
		}
	}

	type acc struct {
		key      []int
		count    int64
		val      int64
		has      bool
		distinct map[string]struct{}
	}
	groups := map[string]*acc{}
	kbuf := make([]byte, 0, 64)
	dbuf := make([]byte, 0, 64)
	for i := 0; i < rel.Size(); i++ {
		kbuf = appendRowKey(kbuf[:0], rel, i, gIdx)
		a := groups[string(kbuf)]
		if a == nil {
			key := make([]int, len(gIdx))
			for k, c := range gIdx {
				key[k] = rel.at(i, c)
			}
			a = &acc{key: key}
			groups[string(kbuf)] = a
		}
		a.count++
		switch spec.Kind {
		case AggCountDistinct:
			if a.distinct == nil {
				a.distinct = map[string]struct{}{}
			}
			dbuf = appendRowKey(dbuf[:0], rel, i, overIdx)
			a.distinct[string(dbuf)] = struct{}{}
		case AggSum:
			a.val += int64(rel.at(i, opIdx))
			a.has = true
		case AggMin:
			if v := int64(rel.at(i, opIdx)); !a.has || v < a.val {
				a.val, a.has = v, true
			}
		case AggMax:
			if v := int64(rel.at(i, opIdx)); !a.has || v > a.val {
				a.val, a.has = v, true
			}
		}
	}

	out := AggResult{GroupVars: gVars}
	for _, a := range groups {
		var v int64
		switch spec.Kind {
		case AggCount:
			v = a.count
		case AggCountDistinct:
			v = int64(len(a.distinct))
		default:
			v = a.val
		}
		out.Groups = append(out.Groups, a.key)
		out.Values = append(out.Values, v)
	}
	sortAggResult(&out)
	fillEmptyScalar(&out, spec)
	return out, nil
}

// sortAggResult orders groups lexicographically by key, keeping Values
// aligned — the canonical form shared by pushdown and naive folds.
func sortAggResult(r *AggResult) {
	ord := make([]int, len(r.Groups))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ta, tb := r.Groups[ord[a]], r.Groups[ord[b]]
		for k := range ta {
			if ta[k] != tb[k] {
				return ta[k] < tb[k]
			}
		}
		return false
	})
	groups := make([][]int, len(ord))
	values := make([]int64, len(ord))
	for i, j := range ord {
		groups[i], values[i] = r.Groups[j], r.Values[j]
	}
	r.Groups, r.Values = groups, values
}

// fillEmptyScalar pins down the empty-answer-set semantics: a scalar
// COUNT, COUNT DISTINCT or SUM over zero answers is 0 (one group, like
// SQL's COUNT over an empty table); scalar MIN/MAX have no value, and
// grouped aggregates have no groups.
func fillEmptyScalar(r *AggResult, spec AggSpec) {
	if !spec.scalar() || len(r.Groups) > 0 {
		return
	}
	switch spec.Kind {
	case AggCount, AggCountDistinct, AggSum:
		r.Groups = [][]int{{}}
		r.Values = []int64{0}
	}
}

// aggCell is one partial-aggregate cell: the aggregate state of every
// answer extension that agrees with one carried watched-variable key.
type aggCell struct {
	key   []int // carried watched-variable values (node state order)
	count int64 // distinct extensions below, per key
	val   int64 // running SUM, or MIN/MAX extreme, once the operand resolved
	has   bool  // operand variable was resolved in this subtree
}

// mul combines the cells of two independent branches (disjoint variable
// scopes): extension counts multiply; the operand is resolved in at
// most one branch (resolution points are unique), whose fold scales by
// the other branch's count (SUM) or passes through (MIN/MAX).
func (s AggSpec) mul(a, b aggCell) aggCell {
	out := aggCell{count: a.count * b.count}
	switch s.Kind {
	case AggSum:
		switch {
		case a.has:
			out.val, out.has = a.val*b.count, true
		case b.has:
			out.val, out.has = b.val*a.count, true
		}
	case AggMin, AggMax:
		switch {
		case a.has:
			out.val, out.has = a.val, true
		case b.has:
			out.val, out.has = b.val, true
		}
	}
	return out
}

// addInto merges cell c (same key) into the map slot — the fold over
// alternative child tuples sharing one lifted key.
func (s AggSpec) addInto(m map[string]aggCell, k string, c aggCell) {
	prev, ok := m[k]
	if !ok {
		m[k] = c
		return
	}
	out := aggCell{key: prev.key, count: prev.count + c.count, val: prev.val, has: prev.has}
	switch s.Kind {
	case AggSum:
		out.val += c.val
		out.has = out.has || c.has
	case AggMin:
		if c.has && (!out.has || c.val < out.val) {
			out.val, out.has = c.val, true
		}
	case AggMax:
		if c.has && (!out.has || c.val > out.val) {
			out.val, out.has = c.val, true
		}
	}
	m[k] = out
}

// aggState is the pushdown state of one join-tree node: per bag tuple,
// a map from carried watched-variable key to partial aggregate. vars
// lists the carried variables (sorted): the watched variables resolved
// strictly below this node's bag.
type aggState struct {
	vars  []string
	cells []map[string]aggCell
}

// sortedUnion merges two sorted, disjoint string slices.
func sortedUnion(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// keySlots maps each var of union to its source: carried-cell key
// position (carried[i]) or bag-tuple column (cols[i]), one of which is
// -1 per slot.
func keySlots(union, cellVars []string, rel *Relation, liftVars []string) (carried, cols []int, err error) {
	carried = make([]int, len(union))
	cols = make([]int, len(union))
	cellPos := map[string]int{}
	for i, v := range cellVars {
		cellPos[v] = i
	}
	liftSet := map[string]bool{}
	for _, v := range liftVars {
		liftSet[v] = true
	}
	for i, v := range union {
		carried[i], cols[i] = -1, -1
		if p, ok := cellPos[v]; ok {
			carried[i] = p
			continue
		}
		if !liftSet[v] {
			return nil, nil, fmt.Errorf("join: aggregate variable %q has no source at this node", v)
		}
		idx, err := rel.attrIndex([]string{v})
		if err != nil {
			return nil, nil, err
		}
		cols[i] = idx[0]
	}
	return carried, cols, nil
}

// aggregate runs the pushdown DP: bag materialisation, full Yannakakis
// reduction (both semijoin passes, so every surviving tuple and carried
// key belongs to at least one real answer and partial states stay
// bounded by the answer's group count), then a bottom-up fold of keyed
// partial aggregates. No answer row is ever materialised.
func (e *executor) aggregate(q Query, db Database, d *decomp.Decomp, spec AggSpec) (AggResult, error) {
	coverOf, err := assignAtomCovers(q, d)
	if err != nil {
		return AggResult{}, err
	}
	root, err := e.build(q, db, d, coverOf, d.Root)
	if err != nil {
		return AggResult{}, err
	}
	if err := e.up(root); err != nil {
		return AggResult{}, err
	}
	if err := e.down(root); err != nil {
		return AggResult{}, err
	}

	watched := spec.watched()
	st, err := e.aggNode(root, spec, watched, nil)
	if err != nil {
		return AggResult{}, err
	}
	return e.aggFold(root, spec, watched, st)
}

// aggNode computes the node's partial-aggregate state bottom-up. parent
// is the parent bag relation (nil at the root); it determines which
// watched variables — and possibly the operand — resolve when this
// node's state is lifted into the parent, which happens in the caller
// via liftChild.
func (e *executor) aggNode(n *bagNode, spec AggSpec, watched []string, parent *Relation) (aggState, error) {
	// Children's subtree states compute concurrently (the same sibling
	// parallelism as the executor's relational passes); combination is
	// exact integer arithmetic, so the fold is deterministic at any
	// parallelism.
	childStates := make([]aggState, len(n.children))
	if err := e.forEach(len(n.children), func(i int) error {
		st, err := e.aggNode(n.children[i], spec, watched, n.rel)
		if err != nil {
			return err
		}
		childStates[i] = st
		return nil
	}); err != nil {
		return aggState{}, err
	}

	// Start every bag tuple at the multiplicative unit: one extension
	// (itself), nothing carried, operand unresolved.
	state := aggState{cells: make([]map[string]aggCell, n.rel.Size())}
	for i := range state.cells {
		state.cells[i] = map[string]aggCell{"": {count: 1}}
	}
	for ci, c := range n.children {
		contribIx, contrib, liftedVars, err := e.liftChild(n, c, childStates[ci], spec, watched)
		if err != nil {
			return aggState{}, err
		}
		union := sortedUnion(state.vars, liftedVars)
		fromA := make([]int, len(union))
		fromB := make([]int, len(union))
		posA, posB := map[string]int{}, map[string]int{}
		for i, v := range state.vars {
			posA[v] = i
		}
		for i, v := range liftedVars {
			posB[v] = i
		}
		for i, v := range union {
			fromA[i], fromB[i] = -1, -1
			if p, ok := posA[v]; ok {
				fromA[i] = p
			} else {
				fromB[i] = posB[v]
			}
		}

		nIdx, err := n.rel.attrIndex(sharedAttrs(n.rel, c.rel))
		if err != nil {
			return aggState{}, err
		}
		kbuf := make([]byte, 0, 8*len(union))
		for i := 0; i < n.rel.Size(); i++ {
			if err := e.g.poll(i); err != nil {
				return aggState{}, err
			}
			var m map[string]aggCell
			if b, ok := contribIx.lookupRow(n.rel, nIdx, i); ok {
				m = contrib[b]
			}
			acc := state.cells[i]
			next := make(map[string]aggCell, len(acc)*len(m))
			for _, a := range acc {
				for _, b := range m {
					cell := spec.mul(a, b)
					key := make([]int, len(union))
					for k := range union {
						if fromA[k] >= 0 {
							key[k] = a.key[fromA[k]]
						} else {
							key[k] = b.key[fromB[k]]
						}
					}
					cell.key = key
					kbuf = appendValsKey(kbuf[:0], key)
					next[string(kbuf)] = cell
				}
			}
			// After full reduction every carried key extends to a real
			// answer, so a per-tuple state larger than the row budget
			// means the grouped answer itself would blow the budget.
			if err := e.g.checkRows(len(next)); err != nil {
				return aggState{}, err
			}
			state.cells[i] = next
		}
		state.vars = union
	}
	return state, nil
}

// liftChild folds a child's per-tuple state into per-join-key
// contribution maps for the parent's probe: each child tuple resolves
// the watched variables (and the operand) that leave scope at this edge
// — the variables in the child's bag but not the parent's — and
// alternative child tuples with one lifted key sum. The result is a
// hash index of the child on the shared attributes plus one keyed cell
// map (over liftedVars) per index bucket; the parent looks its join
// key up in the index and reads the bucket's map — no join-key strings
// are built on either side.
func (e *executor) liftChild(n, c *bagNode, st aggState, spec AggSpec, watched []string) (*hashIndex, []map[string]aggCell, []string, error) {
	parentHas := map[string]bool{}
	for _, a := range n.rel.Attrs {
		parentHas[a] = true
	}
	childHas := map[string]bool{}
	for _, a := range c.rel.Attrs {
		childHas[a] = true
	}
	var liftVars []string
	for _, v := range watched {
		if childHas[v] && !parentHas[v] {
			liftVars = append(liftVars, v)
		}
	}
	liftedVars := sortedUnion(st.vars, liftVars)
	carried, cols, err := keySlots(liftedVars, st.vars, c.rel, liftVars)
	if err != nil {
		return nil, nil, nil, err
	}

	resolveOp := false
	var opCol int
	switch spec.Kind {
	case AggSum, AggMin, AggMax:
		if childHas[spec.Var] && !parentHas[spec.Var] {
			idx, err := c.rel.attrIndex([]string{spec.Var})
			if err != nil {
				return nil, nil, nil, err
			}
			resolveOp, opCol = true, idx[0]
		}
	}

	shared := sharedAttrs(c.rel, n.rel)
	ix, err := e.index(c.rel, shared)
	if err != nil {
		return nil, nil, nil, err
	}
	contrib := make([]map[string]aggCell, len(ix.first))
	kbuf := make([]byte, 0, 8*len(liftedVars))
	for j := 0; j < c.rel.Size(); j++ {
		if err := e.g.poll(j); err != nil {
			return nil, nil, nil, err
		}
		b := ix.bucketOf(j)
		m := contrib[b]
		if m == nil {
			m = map[string]aggCell{}
			contrib[b] = m
		}
		for _, cell := range st.cells[j] {
			lifted := cell
			if resolveOp && !lifted.has {
				v := int64(c.rel.at(j, opCol))
				if spec.Kind == AggSum {
					v *= lifted.count
				}
				lifted.val, lifted.has = v, true
			}
			key := make([]int, len(liftedVars))
			for k := range liftedVars {
				if carried[k] >= 0 {
					key[k] = cell.key[carried[k]]
				} else {
					key[k] = c.rel.at(j, cols[k])
				}
			}
			lifted.key = key
			kbuf = appendValsKey(kbuf[:0], key)
			spec.addInto(m, string(kbuf), lifted)
		}
	}
	e.indexProbes.Add(int64(c.rel.Size()))
	return ix, contrib, liftedVars, nil
}

// aggFold resolves the watched variables still bound by the root bag,
// merges every root tuple's cells into the global group map, and shapes
// the canonical AggResult.
func (e *executor) aggFold(root *bagNode, spec AggSpec, watched []string, st aggState) (AggResult, error) {
	rootHas := map[string]bool{}
	for _, a := range root.rel.Attrs {
		rootHas[a] = true
	}
	var liftVars []string
	for _, v := range watched {
		if rootHas[v] {
			liftVars = append(liftVars, v)
		}
	}
	// watched = st.vars ⊎ liftVars: every watched variable resolves
	// below the root or in the root bag.
	carried, cols, err := keySlots(watched, st.vars, root.rel, liftVars)
	if err != nil {
		return AggResult{}, err
	}
	resolveOp := false
	var opCol int
	switch spec.Kind {
	case AggSum, AggMin, AggMax:
		if rootHas[spec.Var] {
			idx, err := root.rel.attrIndex([]string{spec.Var})
			if err != nil {
				return AggResult{}, err
			}
			resolveOp, opCol = true, idx[0]
		}
	}

	global := map[string]aggCell{}
	kbuf := make([]byte, 0, 8*len(watched))
	for i := 0; i < root.rel.Size(); i++ {
		if err := e.g.poll(i); err != nil {
			return AggResult{}, err
		}
		for _, cell := range st.cells[i] {
			final := cell
			if resolveOp && !final.has {
				v := int64(root.rel.at(i, opCol))
				if spec.Kind == AggSum {
					v *= final.count
				}
				final.val, final.has = v, true
			}
			key := make([]int, len(watched))
			for k := range watched {
				if carried[k] >= 0 {
					key[k] = cell.key[carried[k]]
				} else {
					key[k] = root.rel.at(i, cols[k])
				}
			}
			final.key = key
			kbuf = appendValsKey(kbuf[:0], key)
			spec.addInto(global, string(kbuf), final)
		}
		if err := e.g.checkRows(len(global)); err != nil {
			return AggResult{}, err
		}
	}

	out := AggResult{GroupVars: spec.groupVars()}
	if spec.Kind == AggCountDistinct {
		// The global keys range over group ∪ projection variables; each
		// key is one distinct projection assignment within its group.
		gPos := make([]int, len(out.GroupVars))
		for i, v := range out.GroupVars {
			gPos[i] = sort.SearchStrings(watched, v)
		}
		counts := map[string]*aggCell{}
		for _, cell := range global {
			gk := make([]int, len(gPos))
			for i, p := range gPos {
				gk[i] = cell.key[p]
			}
			kbuf = appendValsKey(kbuf[:0], gk)
			a := counts[string(kbuf)]
			if a == nil {
				counts[string(kbuf)] = &aggCell{key: gk, count: 1}
			} else {
				a.count++
			}
		}
		for _, a := range counts {
			out.Groups = append(out.Groups, a.key)
			out.Values = append(out.Values, a.count)
		}
	} else {
		for _, cell := range global {
			var v int64
			switch spec.Kind {
			case AggCount:
				v = cell.count
			default:
				if !cell.has {
					return AggResult{}, fmt.Errorf("join: aggregate operand %q left unresolved (invalid join tree?)", spec.Var)
				}
				v = cell.val
			}
			out.Groups = append(out.Groups, cell.key)
			out.Values = append(out.Values, v)
		}
	}
	sortAggResult(&out)
	fillEmptyScalar(&out, spec)
	return out, nil
}

// Aggregate answers an aggregate head over the full conjunctive query
// by pushdown over the decomposition's join tree, with default options.
func Aggregate(q Query, db Database, d *decomp.Decomp, spec AggSpec) (AggResult, error) {
	return AggregateCtx(context.Background(), q, db, d, spec, EvalOptions{})
}

// AggregateCtx is Aggregate under a context and per-query limits,
// running on the budgeted indexed kernel: bag materialisation and the
// two semijoin passes honour ctx cancellation, the row budget and the
// shared token budget exactly like EvaluateCtx, and the partial
// aggregate states count against MaxRows through the group cardinality
// (a grouped answer larger than the budget aborts with ErrRowBudget —
// but a huge *answer set* folded into a few groups does not, which is
// the whole point of pushing aggregates down). opts.Kernel is ignored:
// aggregates always run on the indexed executor.
func AggregateCtx(ctx context.Context, q Query, db Database, d *decomp.Decomp, spec AggSpec, opts EvalOptions) (AggResult, error) {
	if err := spec.Validate(q); err != nil {
		return AggResult{}, err
	}
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &executor{
		g:      &guard{ctx: ectx, maxRows: opts.MaxRows},
		cancel: cancel,
		tokens: opts.Tokens,
	}
	if opts.Parallelism > 1 {
		e.sem = make(chan struct{}, opts.Parallelism-1)
	}
	e.workers.Store(1)
	e.maxWorkers.Store(1)

	res, err := e.aggregate(q, db, d, spec)
	if opts.Stats != nil {
		*opts.Stats = ExecStats{
			IndexBuilds:   e.indexBuilds.Load(),
			IndexReuses:   e.indexReuses.Load(),
			IndexProbes:   e.indexProbes.Load(),
			Semijoins:     e.semijoins.Load(),
			Joins:         e.joins.Load(),
			ParallelTasks: e.parallelTasks.Load(),
			InlineTasks:   e.inlineTasks.Load(),
			MaxWorkers:    e.maxWorkers.Load(),
		}
	}
	if err != nil {
		if first := e.firstErr(); first != nil {
			return AggResult{}, first
		}
		return AggResult{}, err
	}
	return res, nil
}
