package join

import (
	"context"
	"fmt"

	"repro/internal/decomp"
)

// The pre-columnar reference executor: relation storage as one heap
// []int per tuple and string-keyed hash maps — exactly the layout this
// package used before the arena refactor. It exists for measurement
// and differential testing, not for serving: benchtab's mem experiment
// runs it beside the columnar kernels to (a) prove the columnar rows
// are byte-identical to the old layout's, order included, and (b)
// quantify the allocation diet against a live baseline rather than a
// number frozen in a JSON file. It is deliberately serial and
// deliberately keeps the old allocation behaviour (per-tuple slices,
// per-key strings, the O(attrs²) attribute scan); do not "improve" it.

// RowRelation is a relation in the pre-columnar layout.
type RowRelation struct {
	Attrs  []string
	Tuples [][]int
}

// RowDatabase is the [][]int image of a Database, built once — outside
// any measurement window — with NewRowDatabase, mirroring how the old
// layout held base data resident.
type RowDatabase map[string]*RowRelation

// NewRowDatabase materialises db in the row layout.
func NewRowDatabase(db Database) RowDatabase {
	out := make(RowDatabase, len(db))
	for name, rel := range db {
		out[name] = &RowRelation{
			Attrs:  append([]string(nil), rel.Attrs...),
			Tuples: rel.Rows(),
		}
	}
	return out
}

// appendTupleKey is the row-layout key encoder: the same little-endian
// encoding as appendRowKey, over a materialised tuple.
func appendTupleKey(dst []byte, t []int, cols []int) []byte {
	for _, c := range cols {
		dst = appendKeyVal(dst, uint64(t[c]))
	}
	return dst
}

// attrIndex is the pre-columnar position lookup, O(attrs²) scan and
// all — part of the baseline being measured.
func (r *RowRelation) attrIndex(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		pos := -1
		for j, b := range r.Attrs {
			if a == b {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("join: attribute %q not in relation %v", a, r.Attrs)
		}
		idx[i] = pos
	}
	return idx, nil
}

func rowSharedAttrs(r, s *RowRelation) []string {
	var out []string
	for _, a := range r.Attrs {
		for _, b := range s.Attrs {
			if a == b {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

func (r *RowRelation) project(attrs []string) (*RowRelation, error) {
	idx, err := r.attrIndex(attrs)
	if err != nil {
		return nil, err
	}
	out := &RowRelation{Attrs: append([]string(nil), attrs...)}
	seen := make(map[string]struct{}, len(r.Tuples))
	buf := make([]byte, 0, 8*len(idx))
	for _, t := range r.Tuples {
		row := make([]int, len(idx))
		for i, c := range idx {
			row[i] = t[c]
		}
		buf = appendTupleKey(buf[:0], row, identCols(len(row)))
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

func (r *RowRelation) semijoin(s *RowRelation) (*RowRelation, error) {
	shared := rowSharedAttrs(r, s)
	out := &RowRelation{Attrs: r.Attrs}
	if len(shared) == 0 {
		if len(s.Tuples) > 0 {
			out.Tuples = append(out.Tuples, r.Tuples...)
		}
		return out, nil
	}
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]struct{}, len(s.Tuples))
	buf := make([]byte, 0, 8*len(shared))
	for _, t := range s.Tuples {
		buf = appendTupleKey(buf[:0], t, sIdx)
		keys[string(buf)] = struct{}{}
	}
	for _, t := range r.Tuples {
		buf = appendTupleKey(buf[:0], t, rIdx)
		if _, ok := keys[string(buf)]; ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func (r *RowRelation) join(s *RowRelation) (*RowRelation, error) {
	shared := rowSharedAttrs(r, s)
	rIdx, err := r.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	sIdx, err := s.attrIndex(shared)
	if err != nil {
		return nil, err
	}
	// The same schema construction as joinSchema, on row relations.
	outAttrs := append([]string(nil), r.Attrs...)
	var sExtra []int
	for j, a := range s.Attrs {
		isShared := false
		for _, b := range shared {
			if a == b {
				isShared = true
				break
			}
		}
		if !isShared {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, j)
		}
	}
	out := &RowRelation{Attrs: outAttrs}
	buckets := make(map[string][][]int, len(s.Tuples))
	buf := make([]byte, 0, 8*len(shared))
	for _, t := range s.Tuples {
		buf = appendTupleKey(buf[:0], t, sIdx)
		buckets[string(buf)] = append(buckets[string(buf)], t)
	}
	for _, t := range r.Tuples {
		buf = appendTupleKey(buf[:0], t, rIdx)
		for _, u := range buckets[string(buf)] {
			row := make([]int, 0, len(outAttrs))
			row = append(row, t...)
			for _, c := range sExtra {
				row = append(row, u[c])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

func (r *RowRelation) dedup() *RowRelation {
	cols := identCols(len(r.Attrs))
	seen := make(map[string]struct{}, len(r.Tuples))
	buf := make([]byte, 0, 8*len(cols))
	out := &RowRelation{Attrs: r.Attrs}
	for _, t := range r.Tuples {
		buf = appendTupleKey(buf[:0], t, cols)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

type rowBagNode struct {
	rel      *RowRelation
	children []*rowBagNode
}

// EvaluateRowRef answers q over the row-layout database with the same
// plan shaping as the columnar kernels — assignAtomCovers host
// selection, then the serial three-pass Yannakakis — so its rows are
// the byte-identity reference (order included) for both columnar
// kernels. ctx and maxRows are checked between relational operations,
// like the old scan kernel did.
func EvaluateRowRef(ctx context.Context, q Query, rdb RowDatabase, d *decomp.Decomp, maxRows int) (*RowRelation, error) {
	check := func(r *RowRelation) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if maxRows > 0 && len(r.Tuples) > maxRows {
			return fmt.Errorf("%w: intermediate result has %d rows, budget is %d",
				ErrRowBudget, len(r.Tuples), maxRows)
		}
		return nil
	}
	atomRel := func(a Atom) (*RowRelation, error) {
		base, ok := rdb[a.Relation]
		if !ok {
			return nil, fmt.Errorf("join: relation %q not in database", a.Relation)
		}
		if len(base.Attrs) != len(a.Vars) {
			return nil, fmt.Errorf("join: atom %s has %d vars but relation has %d columns",
				a.Relation, len(a.Vars), len(base.Attrs))
		}
		return &RowRelation{Attrs: append([]string(nil), a.Vars...), Tuples: base.Tuples}, nil
	}

	coverOf, err := assignAtomCovers(q, d)
	if err != nil {
		return nil, err
	}
	var build func(n *decomp.Node) (*rowBagNode, error)
	build = func(n *decomp.Node) (*rowBagNode, error) {
		var acc *RowRelation
		for _, eid := range n.Lambda {
			r, err := atomRel(q.Atoms[eid])
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = r
			} else {
				acc, err = acc.join(r)
				if err != nil {
					return nil, err
				}
			}
			if err := check(acc); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("join: node with empty λ-label")
		}
		var bagAttrs []string
		n.Bag.ForEach(func(v int) { bagAttrs = append(bagAttrs, d.H.VertexName(v)) })
		proj, err := acc.project(bagAttrs)
		if err != nil {
			return nil, err
		}
		for _, eid := range coverOf[n] {
			r, err := atomRel(q.Atoms[eid])
			if err != nil {
				return nil, err
			}
			proj, err = proj.semijoin(r)
			if err != nil {
				return nil, err
			}
		}
		if err := check(proj); err != nil {
			return nil, err
		}
		bn := &rowBagNode{rel: proj}
		for _, c := range n.Children {
			cb, err := build(c)
			if err != nil {
				return nil, err
			}
			bn.children = append(bn.children, cb)
		}
		return bn, nil
	}
	root, err := build(d.Root)
	if err != nil {
		return nil, err
	}

	var up func(n *rowBagNode) error
	up = func(n *rowBagNode) error {
		for _, c := range n.children {
			if err := up(c); err != nil {
				return err
			}
			red, err := n.rel.semijoin(c.rel)
			if err != nil {
				return err
			}
			n.rel = red
		}
		return check(n.rel)
	}
	if err := up(root); err != nil {
		return nil, err
	}
	var down func(n *rowBagNode) error
	down = func(n *rowBagNode) error {
		for _, c := range n.children {
			red, err := c.rel.semijoin(n.rel)
			if err != nil {
				return err
			}
			c.rel = red
			if err := check(c.rel); err != nil {
				return err
			}
			if err := down(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(root); err != nil {
		return nil, err
	}
	var collect func(n *rowBagNode) (*RowRelation, error)
	collect = func(n *rowBagNode) (*RowRelation, error) {
		acc := n.rel
		for _, c := range n.children {
			sub, err := collect(c)
			if err != nil {
				return nil, err
			}
			acc, err = acc.join(sub)
			if err != nil {
				return nil, err
			}
			if err := check(acc); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	res, err := collect(root)
	if err != nil {
		return nil, err
	}
	return res.dedup(), nil
}
