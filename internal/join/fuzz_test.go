package join

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseQuery fuzzes the query/database text format end to end:
// ParseDocument must never panic, and for every document it accepts,
// format → parse must reproduce the document exactly (the parser and
// formatter agree on the grammar). The seed corpus is the testdata
// documents plus hand-picked degenerate shapes; CI runs a short -fuzz
// smoke alongside FuzzDecomposeCheckHD, and plain `go test` replays the
// seeds as regression tests.
func FuzzParseQuery(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.cq"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no testdata/*.cq seed documents")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("query R(x).\nrel R(a)\nend\n")
	f.Add("query R(x,y), R(y,x).\nrel R(a,b)\n1 2\nend\n")
	f.Add("query Q(x) :- R(x), S(x).\n% no relations at all\n")
	f.Add("query R(x).\nrel R(a)\n1\nrel nested(b)\nend\n")
	f.Add("rel R(a)\n1\nend\n")
	f.Add("query R(x.\n")
	f.Add("query R(x,y).\naggregate count\nrel R(a,b)\n1 2\nend\n")
	f.Add("query R(x,y), S(y,z).\naggregate group x: count distinct(z)\n")
	f.Add("query R(x,y).\naggregate sum(y)\n")
	f.Add("query R(x,y).\naggregate group y,x: max(x)\nrel R(a,b)\nend\n")
	f.Add("query R(x).\naggregate min(q)\n")
	f.Add("query R(x).\naggregate count\naggregate count\n")

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseDocument(src)
		if err != nil {
			return
		}
		// Accepted documents must be internally consistent...
		if len(doc.Query.Atoms) == 0 {
			t.Fatalf("accepted document with no atoms:\n%s", src)
		}
		for name, rel := range doc.DB {
			for i, tup := range rel.Rows() {
				if len(tup) != len(rel.Attrs) {
					t.Fatalf("relation %q tuple %d has arity %d, schema %d", name, i, len(tup), len(rel.Attrs))
				}
			}
		}
		// ...and survive a format → parse round trip unchanged.
		out := FormatDocument(doc)
		doc2, err := ParseDocument(out)
		if err != nil {
			t.Fatalf("reparse of formatted document failed: %v\nformatted:\n%s", err, out)
		}
		if !reflect.DeepEqual(doc.Query, doc2.Query) {
			t.Fatalf("query changed across round trip:\n%+v\nvs\n%+v", doc.Query, doc2.Query)
		}
		if !reflect.DeepEqual(doc.Aggregate, doc2.Aggregate) {
			t.Fatalf("aggregate changed across round trip:\n%+v\nvs\n%+v", doc.Aggregate, doc2.Aggregate)
		}
		if doc.Aggregate != nil {
			if err := doc.Aggregate.Validate(doc.Query); err != nil {
				t.Fatalf("accepted aggregate fails validation: %v\n%s", err, src)
			}
		}
		if len(doc.DB) != len(doc2.DB) {
			t.Fatalf("database changed across round trip: %d vs %d relations", len(doc.DB), len(doc2.DB))
		}
		for name, rel := range doc.DB {
			rel2, ok := doc2.DB[name]
			if !ok {
				t.Fatalf("relation %q lost across round trip", name)
			}
			if !reflect.DeepEqual(rel.Attrs, rel2.Attrs) {
				t.Fatalf("relation %q schema changed: %v vs %v", name, rel.Attrs, rel2.Attrs)
			}
			if rel.Size() != rel2.Size() || (rel.Size() > 0 && !reflect.DeepEqual(rel.Rows(), rel2.Rows())) {
				t.Fatalf("relation %q tuples changed:\n%v\nvs\n%v", name, rel.Rows(), rel2.Rows())
			}
		}
		// Formatting is a fixed point: format(parse(format(d))) == format(d).
		if out2 := FormatDocument(doc2); out2 != out {
			t.Fatalf("formatting is not canonical:\n%q\nvs\n%q", out, out2)
		}
	})
}
