package join

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"
)

// Edge-case coverage for the columnar storage layer: empty and
// single-column relations, rows that straddle chunk boundaries, the
// int32→int64 promotion path, and abort semantics (row budget, ctx
// cancellation) while a columnar join is mid-flight — the shapes where
// an off-by-one in shift/mask addressing or a missed chunk append
// would corrupt data silently.

func TestArenaZeroRowRelation(t *testing.T) {
	r := NewRelation("a", "b")
	if r.Size() != 0 {
		t.Fatalf("Size = %d, want 0", r.Size())
	}
	if rows := r.Rows(); rows != nil {
		t.Fatalf("Rows() of an empty relation = %#v, want nil (the pre-columnar layout's nil tuple slice)", rows)
	}
	s := NewRelation("b", "c").Add(1, 2)

	j, err := r.Join(s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("empty ⋈ nonempty has %d rows", j.Size())
	}
	sj, err := s.Semijoin(r)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Size() != 0 {
		t.Fatalf("nonempty ⋉ empty has %d rows", sj.Size())
	}
	p, err := r.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 || !reflect.DeepEqual(p.Attrs, []string{"b"}) {
		t.Fatalf("projection of empty relation: %v", p)
	}
	if d := r.Dedup(); d.Size() != 0 {
		t.Fatalf("dedup of empty relation has %d rows", d.Size())
	}
	r.SortRows() // must not panic on zero chunks
}

func TestArenaSingleAttribute(t *testing.T) {
	r := NewRelation("x").Add(3).Add(1).Add(3).Add(2)
	if got := r.Rows(); !reflect.DeepEqual(got, [][]int{{3}, {1}, {3}, {2}}) {
		t.Fatalf("Rows = %v", got)
	}
	d := r.Dedup()
	if got := d.Rows(); !reflect.DeepEqual(got, [][]int{{3}, {1}, {2}}) {
		t.Fatalf("Dedup = %v", got)
	}
	s := NewRelation("x").Add(1).Add(2)
	sj, err := r.Semijoin(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sj.Rows(); !reflect.DeepEqual(got, [][]int{{1}, {2}}) {
		t.Fatalf("Semijoin = %v", got)
	}
}

// TestArenaChunkBoundaryRows drives relations across one and several
// chunk boundaries and checks every row round-trips, for sizes one
// below, at, and one past each boundary.
func TestArenaChunkBoundaryRows(t *testing.T) {
	for _, n := range []int{chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize - 1, 3 * chunkSize, 3*chunkSize + 1} {
		r := NewRelation("a", "b")
		for i := 0; i < n; i++ {
			r.Add(i, -i)
		}
		if r.Size() != n {
			t.Fatalf("n=%d: Size = %d", n, r.Size())
		}
		// Spot-check by offset addressing and by materialisation.
		for _, i := range []int{0, n / 2, n - 2, n - 1} {
			if i < 0 {
				continue
			}
			if row := r.Row(i); row[0] != i || row[1] != -i {
				t.Fatalf("n=%d: Row(%d) = %v", n, i, row)
			}
		}
		rows := r.Rows()
		for i, row := range rows {
			if row[0] != i || row[1] != -i {
				t.Fatalf("n=%d: Rows()[%d] = %v", n, i, row)
			}
		}
	}
}

// TestArenaWidePromotion forces the int32→int64 promotion mid-column
// — both mid-chunk and exactly at a chunk boundary — and checks the
// already-written narrow values survive losslessly.
func TestArenaWidePromotion(t *testing.T) {
	big := int(math.MaxInt32) + 7
	for _, at := range []int{1, chunkSize / 2, chunkSize, chunkSize + 1} {
		r := NewRelation("v")
		for i := 0; i < at; i++ {
			r.Add(i)
		}
		r.Add(big).Add(-big).Add(math.MinInt32)
		for i := 0; i < at; i++ {
			if got := r.Row(i)[0]; got != i {
				t.Fatalf("promote@%d: narrow value %d read back as %d", at, i, got)
			}
		}
		tail := r.Rows()[at:]
		if want := [][]int{{big}, {-big}, {math.MinInt32}}; !reflect.DeepEqual(tail, want) {
			t.Fatalf("promote@%d: wide tail = %v, want %v", at, tail, want)
		}
	}
}

// TestArenaAppendAllWidths exercises the partition-concatenation path
// (vec.extend) in all four width combinations, with the source large
// enough to take the chunk-copy fast path.
func TestArenaAppendAllWidths(t *testing.T) {
	big := int(math.MaxInt32) + 1
	mk := func(n int, wide bool) *Relation {
		r := newRelation([]string{"a"})
		for i := 0; i < n; i++ {
			r.AddRow([]int{i})
		}
		if wide {
			r.AddRow([]int{big})
		}
		return r
	}
	for _, tc := range []struct{ dstWide, srcWide bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	} {
		dst := mk(chunkSize, tc.dstWide) // chunk-aligned when narrow
		src := mk(chunkSize+5, tc.srcWide)
		want := append(dst.Rows(), src.Rows()...)
		dst.appendAll(src)
		if got := dst.Rows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("dstWide=%v srcWide=%v: appendAll diverged at size %d", tc.dstWide, tc.srcWide, len(got))
		}
	}
}

// TestArenaSortRowsChunkSpan checks canonicalisation over a relation
// spanning several chunks against a reference sort of the
// materialised rows.
func TestArenaSortRowsChunkSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewRelation("a", "b")
	n := 2*chunkSize + 123
	for i := 0; i < n; i++ {
		r.Add(rng.Intn(100), rng.Intn(100))
	}
	want := r.Rows()
	sort.Slice(want, func(i, j int) bool {
		if want[i][0] != want[j][0] {
			return want[i][0] < want[j][0]
		}
		return want[i][1] < want[j][1]
	})
	r.SortRows()
	if got := r.Rows(); !reflect.DeepEqual(got, want) {
		t.Fatal("SortRows diverged from reference sort across chunk boundaries")
	}
}

// TestExecChunkBoundaryJoin runs a query whose final join output lands
// exactly around a chunk boundary through every executor configuration
// — the spot where a missed chunk append in the probe loop would panic
// or drop rows.
func TestExecChunkBoundaryJoin(t *testing.T) {
	for _, rows := range []int{16, 17} { // 16³ = 4096 answers = exactly one chunk
		q, db := explodingInstance(rows)
		d := decomposeFor(t, q)
		var want *Relation
		for _, name := range []string{"scan", "indexed", "parallel", "parallel-tokens", "parallel-0tokens"} {
			opts := execOptsMatrix()[name]
			got, err := EvaluateCtx(context.Background(), q, db, d, opts)
			if err != nil {
				t.Fatalf("rows=%d %s: %v", rows, name, err)
			}
			if got.Size() != rows*rows*rows {
				t.Fatalf("rows=%d %s: %d answers, want %d", rows, name, got.Size(), rows*rows*rows)
			}
			if want == nil {
				want = got
			} else if !reflect.DeepEqual(got.Rows(), want.Rows()) {
				t.Fatalf("rows=%d %s: diverged from the scan kernel", rows, name)
			}
		}
	}
}

// TestExecBudgetAbortAtChunkBoundary sets row budgets just below, at,
// and above a chunk boundary: the columnar join must abort with
// ErrRowBudget without leaking goroutines or tokens, whichever side of
// a chunk append the abort lands on.
func TestExecBudgetAbortAtChunkBoundary(t *testing.T) {
	q, db := explodingInstance(300) // 90 000 answers
	d := decomposeFor(t, q)
	for _, budget := range []int{chunkSize - 1, chunkSize, chunkSize + 1} {
		tok := newCountingTokens(3)
		baseline := runtime.NumGoroutine()
		_, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{
			MaxRows: budget, Parallelism: 4, Tokens: tok,
		})
		if !errors.Is(err, ErrRowBudget) {
			t.Fatalf("budget=%d: got %v, want ErrRowBudget", budget, err)
		}
		if n := tok.outstanding.Load(); n != 0 {
			t.Fatalf("budget=%d: %d tokens still outstanding", budget, n)
		}
		leakCheck(t, baseline)
	}
}

// TestExecCancelMidColumnarJoin cancels while the partitioned columnar
// probe loops are writing into their per-partition arenas.
func TestExecCancelMidColumnarJoin(t *testing.T) {
	q, db := explodingInstance(600)
	d := decomposeFor(t, q)
	tok := newCountingTokens(3)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	_, err := EvaluateCtx(ctx, q, db, d, EvalOptions{Parallelism: 4, Tokens: tok})
	<-ctx.Done()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled or nil", err)
	}
	if n := tok.outstanding.Load(); n != 0 {
		t.Fatalf("%d tokens still outstanding after cancellation", n)
	}
	leakCheck(t, baseline)
}

// TestRowRefMatchesColumnarKernels is the pre-columnar differential:
// the frozen row-layout executor must agree byte for byte — order
// included — with every columnar configuration, on random instances
// and on a chunk-spanning one.
func TestRowRefMatchesColumnarKernels(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		q, db := randomInstanceForExec(rng, 2+rng.Intn(3), 30, 12)
		d := decomposeFor(t, q)
		rdb := NewRowDatabase(db)
		want, err := EvaluateRowRef(context.Background(), q, rdb, d, 0)
		if err != nil {
			t.Fatalf("seed %d rowref: %v", seed, err)
		}
		for name, opts := range execOptsMatrix() {
			got, err := EvaluateCtx(context.Background(), q, db, d, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if !reflect.DeepEqual(got.Attrs, want.Attrs) {
				t.Fatalf("seed %d %s: attrs %v, want %v", seed, name, got.Attrs, want.Attrs)
			}
			if !reflect.DeepEqual(got.Rows(), want.Tuples) {
				t.Fatalf("seed %d %s: rows diverged from the pre-columnar reference (%d vs %d)",
					seed, name, got.Size(), len(want.Tuples))
			}
		}
	}
	// One instance whose final join spans chunks.
	q, db := explodingInstance(20) // 8000 answers, two chunks
	d := decomposeFor(t, q)
	want, err := EvaluateRowRef(context.Background(), q, NewRowDatabase(db), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateCtx(context.Background(), q, db, d, EvalOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows(), want.Tuples) {
		t.Fatal("chunk-spanning answer diverged from the pre-columnar reference")
	}
}

// TestRowRefBudget: the reference executor honours ErrRowBudget too,
// so the mem experiment can sweep it with the same limits.
func TestRowRefBudget(t *testing.T) {
	q, db := explodingInstance(120)
	d := decomposeFor(t, q)
	_, err := EvaluateRowRef(context.Background(), q, NewRowDatabase(db), d, 100)
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
}
