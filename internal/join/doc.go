// Package join is a small in-memory relational engine supporting
// conjunctive query evaluation through hypertree decompositions: bag
// materialisation, the three semijoin/join passes of Yannakakis'
// algorithm [26], an aggregate pushdown engine, and a naive join
// baseline for cross-checking. It is the substrate for the paper's
// motivating application (§1): CQs whose hypergraphs have bounded
// hypertree width evaluate in polynomial time by reduction to an
// acyclic instance.
//
// Contract: Evaluate/EvaluateCtx return the canonical answer relation
// (columns sorted by variable name, rows deduplicated and sorted) so
// results are byte-identical across serial and parallel execution;
// AggregateCtx folds COUNT / COUNT DISTINCT / SUM / MIN / MAX —
// optionally GROUP BY a variable subset — during the bottom-up pass,
// touching per-bag state bounded by the group count instead of the
// answer count, and agrees exactly with AggregateRows over the
// materialised answers. Both honour context cancellation and the
// EvalOptions.MaxRows intermediate-size budget. Parse/FormatQuery and
// Parse/FormatDocument round-trip the text format defined in
// docs/QUERY_FORMAT.md.
package join
