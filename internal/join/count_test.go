package join

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/logk"
)

func TestCountTriangle(t *testing.T) {
	q, db := triangleFixture()
	d := decompose(t, q, 2)
	got, err := Count(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(want.Size()) {
		t.Fatalf("Count = %d, naive size = %d", got, want.Size())
	}
}

func TestCountEmptyResult(t *testing.T) {
	q, db := triangleFixture()
	db["T"] = NewRelation("c1", "c2") // unsatisfiable
	d := decompose(t, q, 2)
	got, err := Count(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestCountCrossProduct(t *testing.T) {
	// Two disconnected atoms: count = |R| × |S| (over distinct tuples).
	q := Query{Atoms: []Atom{
		{Relation: "R", Vars: []string{"x", "y"}},
		{Relation: "S", Vars: []string{"u", "v"}},
	}}
	db := Database{
		"R": NewRelation("a", "b").Add(1, 2).Add(3, 4),
		"S": NewRelation("a", "b").Add(5, 6).Add(7, 8).Add(9, 10),
	}
	d := decompose(t, q, 1)
	got, err := Count(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestCountAgainstNaiveRandom(t *testing.T) {
	for seed := 0; seed < 12; seed++ {
		r := rand.New(rand.NewSource(int64(100 + seed)))
		nv := 4 + r.Intn(3)
		na := 3 + r.Intn(3)
		var q Query
		db := Database{}
		for i := 0; i < na; i++ {
			arity := 2
			perm := r.Perm(nv)[:arity]
			vars := make([]string, arity)
			for j, v := range perm {
				vars[j] = "x" + strconv.Itoa(v)
			}
			name := "R" + strconv.Itoa(i)
			rel := NewRelation("c1", "c2")
			for j := 0; j < 6+r.Intn(8); j++ {
				rel.Add(r.Intn(4), r.Intn(4))
			}
			db[name] = rel
			q.Atoms = append(q.Atoms, Atom{Relation: name, Vars: vars})
		}
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		var d *decomp.Decomp
		for k := 1; k <= 4; k++ {
			s := logk.New(h, logk.Options{K: k})
			dd, ok, derr := s.Decompose(context.Background())
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				d = dd
				break
			}
		}
		if d == nil {
			t.Fatalf("seed %d: width > 4", seed)
		}
		got, err := Count(q, db, d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EvaluateNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want.Size()) {
			t.Fatalf("seed %d: Count = %d, naive = %d", seed, got, want.Size())
		}
	}
}
