// Package service runs decompositions as a managed, concurrent service
// rather than one Solver at a time. It owns the resources that
// individual logk.Solver instances would otherwise fight over:
//
//   - a global worker-token budget (TokenBudget): every job's parallel
//     search splits draw from one pool, so total search parallelism is
//     bounded regardless of how many requests are in flight;
//   - a job scheduler with admission control: at most MaxConcurrent
//     jobs decompose at once, at most MaxQueue more wait, the rest are
//     rejected immediately with ErrOverloaded; every job gets its own
//     context with a per-job timeout;
//   - a unified cross-request store (internal/store): one
//     content-addressed record per hypergraph holding width bounds, a
//     validated witness decomposition, and per-width negative-memo
//     tables. Submit reads through it — a repeat of an already-solved
//     request returns the cached, re-validated HD without running a
//     solver — and concurrent identical requests are coalesced onto a
//     single solver run (singleflight), including duplicates inside one
//     Batch. The store is pluggable (Config.Store) and snapshotable,
//     so a serving process restarts warm.
//
// The package is exposed publicly as htd.Service.
package service
