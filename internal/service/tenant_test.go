package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tenant"
)

// TestSubmitChargesTenantWall verifies Submit admits through the
// per-tenant wall: a tenant over its rate budget is rejected with
// tenant.ErrLimited, the rejection shows up in both the global Rejected
// counter and the tenant's own stats, and other tenants are untouched.
func TestSubmitChargesTenantWall(t *testing.T) {
	svc := New(Config{
		TokenBudget:   1,
		MaxConcurrent: 4,
		MaxQueue:      16,
		Tenants:       tenant.Config{Rate: 0.001, Burst: 1},
	})
	defer svc.Close()

	h := cycle(6)
	res := svc.Submit(context.Background(), Request{H: h, K: 2, Tenant: "alice"})
	if res.Err != nil {
		t.Fatalf("first submit: %v", res.Err)
	}

	res = svc.Submit(context.Background(), Request{H: h, K: 2, Tenant: "alice"})
	if !errors.Is(res.Err, tenant.ErrLimited) {
		t.Fatalf("second submit err = %v, want tenant.ErrLimited", res.Err)
	}
	var le *tenant.LimitError
	if !errors.As(res.Err, &le) || le.RetryAfter <= 0 {
		t.Fatalf("limit error %v carries no positive RetryAfter", res.Err)
	}

	// A different tenant has its own untouched bucket.
	res = svc.Submit(context.Background(), Request{H: h, K: 2, Tenant: "bob"})
	if res.Err != nil {
		t.Fatalf("other tenant submit: %v", res.Err)
	}

	st := svc.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	ts, ok := st.Tenants["alice"]
	if !ok {
		t.Fatal("stats missing tenant alice")
	}
	if ts.Admitted != 1 || ts.RateRejected != 1 {
		t.Fatalf("alice stats = %+v, want Admitted 1, RateRejected 1", ts)
	}
	if bs := st.Tenants["bob"]; bs.Admitted != 1 || bs.RateRejected != 0 {
		t.Fatalf("bob stats = %+v, want Admitted 1, RateRejected 0", bs)
	}
}

// TestSubmitTenantAdmittedBypassesWall verifies the pre-admitted path:
// a layered caller (the query planner) that already holds a tenant
// lease must not be charged a second time by the inner Submit.
func TestSubmitTenantAdmittedBypassesWall(t *testing.T) {
	svc := New(Config{
		TokenBudget:   1,
		MaxConcurrent: 4,
		MaxQueue:      16,
		Tenants:       tenant.Config{Rate: 0.001, Burst: 1},
	})
	defer svc.Close()

	h := cycle(6)
	for i := 0; i < 3; i++ {
		res := svc.Submit(context.Background(), Request{
			H: h, K: 2, Tenant: "alice", TenantAdmitted: true,
		})
		if res.Err != nil {
			t.Fatalf("pre-admitted submit %d: %v", i, res.Err)
		}
	}
	if ts := svc.Stats().Tenants["alice"]; ts.Admitted != 0 || ts.RateRejected != 0 {
		t.Fatalf("pre-admitted submissions charged the wall: %+v", ts)
	}
}

// TestSubmitDefaultTenantUnlimited verifies the zero tenant config is
// pure accounting: no limits armed, every request admitted, latency
// still recorded per tenant.
func TestSubmitDefaultTenantUnlimited(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 4, MaxQueue: 16})
	defer svc.Close()

	h := cycle(6)
	for i := 0; i < 5; i++ {
		if res := svc.Submit(context.Background(), Request{H: h, K: 2}); res.Err != nil {
			t.Fatalf("submit %d: %v", i, res.Err)
		}
	}
	ts, ok := svc.Stats().Tenants[tenant.Default]
	if !ok {
		t.Fatal("stats missing the default tenant")
	}
	if ts.Admitted != 5 || ts.Completed != 5 {
		t.Fatalf("default tenant stats = %+v, want Admitted 5, Completed 5", ts)
	}
}
