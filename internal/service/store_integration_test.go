package service

import (
	"context"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/store"
)

// barrierBackend wraps a store.Backend and blocks the first `need`
// Bounds lookups until all of them have arrived. Submitting N identical
// requests against it guarantees all N are in flight before any result
// lands, making coalescing assertions deterministic. It doubles as the
// test of Config.Store pluggability.
type barrierBackend struct {
	store.Backend
	mu      sync.Mutex
	need    int
	arrived int
	release chan struct{}
}

func newBarrierBackend(inner store.Backend, need int) *barrierBackend {
	return &barrierBackend{Backend: inner, need: need, release: make(chan struct{})}
}

func (b *barrierBackend) Bounds(hash string) (store.Bounds, bool) {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.need {
		close(b.release)
	}
	b.mu.Unlock()
	<-b.release
	return b.Backend.Bounds(hash)
}

// TestCoalescingExactlyOneSolver is the acceptance check for request
// coalescing: N concurrent identical submissions launch exactly one
// solver; the other N-1 share its result.
func TestCoalescingExactlyOneSolver(t *testing.T) {
	const n = 8
	bb := newBarrierBackend(store.NewSharded(store.Config{}), n)
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4, Store: bb})
	defer svc.Close()

	h := cycle(20)
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = svc.Submit(context.Background(), Request{H: h, K: 2})
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.Err != nil || !r.OK {
			t.Fatalf("job %d: ok=%v err=%v", i, r.OK, r.Err)
		}
		if err := decomp.CheckHD(r.Decomp); err != nil {
			t.Fatalf("job %d: invalid HD: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want exactly 1 for %d identical requests", st.SolverRuns, n)
	}
	// Every non-leader either waited on the flight (Coalesced) or — if
	// it was descheduled past the leader's completion — was answered by
	// the in-flight store re-check (PositiveHits). Neither ran a solver.
	if st.Coalesced+st.PositiveHits != n-1 {
		t.Fatalf("Coalesced=%d PositiveHits=%d, want them to sum to %d", st.Coalesced, st.PositiveHits, n-1)
	}
	if st.Completed != n {
		t.Fatalf("Completed=%d, want %d", st.Completed, n)
	}
}

// TestBatchDuplicatesCoalesce: duplicate requests inside one Batch run
// one solver, and every duplicate still gets a full, valid result in
// its slot.
func TestBatchDuplicatesCoalesce(t *testing.T) {
	const n = 6
	bb := newBarrierBackend(store.NewSharded(store.Config{}), n)
	svc := New(Config{TokenBudget: 2, MaxConcurrent: n, Store: bb})
	defer svc.Close()

	h := cycle(16)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{H: h, K: 2}
	}
	results := svc.Batch(context.Background(), reqs)
	for i, r := range results {
		if r.Err != nil || !r.OK {
			t.Fatalf("batch[%d]: ok=%v err=%v", i, r.OK, r.Err)
		}
		if err := decomp.CheckHD(r.Decomp); err != nil {
			t.Fatalf("batch[%d]: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.SolverRuns != 1 || st.Coalesced+st.PositiveHits != n-1 {
		t.Fatalf("SolverRuns=%d Coalesced=%d PositiveHits=%d, want 1 run and %d shared",
			st.SolverRuns, st.Coalesced, st.PositiveHits, n-1)
	}
}

// TestCoalescedFollowerReboundDecomp: a follower submitting a renamed
// (structurally identical) hypergraph gets the leader's witness rebound
// onto its own hypergraph, not a foreign one.
func TestCoalescedFollowerReboundDecomp(t *testing.T) {
	const n = 2
	bb := newBarrierBackend(store.NewSharded(store.Config{}), n)
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4, Store: bb})
	defer svc.Close()

	a := cycle(14)
	var b hypergraph.Builder
	for i := 0; i < 14; i++ {
		b.MustAddEdge("S"+strconv.Itoa(i), "y"+strconv.Itoa(i), "y"+strconv.Itoa((i+1)%14))
	}
	renamed := b.Build()

	var ra, rb Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ra = svc.Submit(context.Background(), Request{H: a, K: 2}) }()
	go func() { defer wg.Done(); rb = svc.Submit(context.Background(), Request{H: renamed, K: 2}) }()
	wg.Wait()

	for _, r := range []Result{ra, rb} {
		if r.Err != nil || !r.OK {
			t.Fatalf("ok=%v err=%v", r.OK, r.Err)
		}
	}
	if ra.Decomp.H != a || rb.Decomp.H != renamed {
		t.Fatal("each result must reference the submitting request's hypergraph")
	}
	if err := decomp.CheckHD(ra.Decomp); err != nil {
		t.Fatal(err)
	}
	if err := decomp.CheckHD(rb.Decomp); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want 1", st.SolverRuns)
	}
}

// TestCoalescedFollowerNotPoisonedByLeaderFailure: when the flight
// leader fails on its own terms (here: a microsecond timeout), a
// follower with a healthy context must not inherit the failure — it
// runs independently and succeeds.
func TestCoalescedFollowerNotPoisonedByLeaderFailure(t *testing.T) {
	h := cycle(24)
	for round := 0; round < 8; round++ {
		const n = 2
		bb := newBarrierBackend(store.NewSharded(store.Config{}), n)
		svc := New(Config{TokenBudget: 2, MaxConcurrent: 4, Store: bb})

		var doomed, healthy Result
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			doomed = svc.Submit(context.Background(),
				Request{H: h, K: 2, Timeout: time.Microsecond})
		}()
		go func() {
			defer wg.Done()
			healthy = svc.Submit(context.Background(), Request{H: h, K: 2})
		}()
		wg.Wait()
		svc.Close()

		// Whichever of the two led the flight, the request with no
		// timeout must end with a definitive, valid answer.
		if healthy.Err != nil || !healthy.OK {
			t.Fatalf("round %d: healthy request poisoned: ok=%v err=%v (doomed: %v)",
				round, healthy.OK, healthy.Err, doomed.Err)
		}
		if err := decomp.CheckHD(healthy.Decomp); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestSnapshotWarmRestart: a snapshot saved from one service warms a
// freshly started one — repeat submissions are answered from the
// restored store without a single solver run.
func TestSnapshotWarmRestart(t *testing.T) {
	ctx := context.Background()
	h := cycle(12)

	svc1 := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	if res := svc1.Submit(ctx, Request{H: h, K: 4, Mode: ModeOptimal}); res.Err != nil || res.Width != 2 {
		t.Fatalf("warmup: width=%d err=%v", res.Width, res.Err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.json")
	if err := store.WriteFile(path, svc1.Store().Export()); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	snap, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc2.Close()
	if n, err := svc2.Store().Import(snap); err != nil || n == 0 {
		t.Fatalf("import: n=%d err=%v", n, err)
	}

	// The restarted service answers both problems from the snapshot.
	opt := svc2.Submit(ctx, Request{H: h, K: 4, Mode: ModeOptimal})
	if opt.Err != nil || !opt.OK || opt.Width != 2 || !opt.CacheHit {
		t.Fatalf("optimal after restart: %+v", opt)
	}
	if err := decomp.CheckHD(opt.Decomp); err != nil {
		t.Fatalf("restored witness invalid: %v", err)
	}
	no := svc2.Submit(ctx, Request{H: h, K: 1})
	if no.Err != nil || no.OK || !no.CacheHit {
		t.Fatalf("decide K=1 after restart: %+v", no)
	}
	if st := svc2.Stats(); st.SolverRuns != 0 {
		t.Fatalf("SolverRuns=%d after warm restart, want 0", st.SolverRuns)
	}
}

// clique returns the hypergraph with an edge {i, j} for every vertex
// pair — hw grows with n, and refuting small widths is much cheaper
// than the full optimal search, which is exactly the shape that leaves
// partial bounds behind on a timeout.
func clique(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge("", "v"+strconv.Itoa(i), "v"+strconv.Itoa(j))
		}
	}
	return b.Build()
}

// TestOptimalTimeoutBanksPartialBounds: whatever an optimal job proves
// before its deadline is written back — on a timeout the partial lower
// bound lands in the store so the next job starts ahead.
func TestOptimalTimeoutBanksPartialBounds(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 2})
	defer svc.Close()
	h := clique(14)
	res := svc.Submit(context.Background(),
		Request{H: h, K: 8, Mode: ModeOptimal, Timeout: 250 * time.Millisecond})

	b, ok := svc.Store().Bounds(h.ContentHash())
	if res.Err != nil {
		// The expected path: timed out mid-race. The widths refuted so
		// far must be banked (width 1 refutes in microseconds, so the
		// partial lower bound is ≥ 2).
		if res.LowerBound < 2 {
			t.Skipf("timeout hit before any refutation (lb=%d); nothing to bank", res.LowerBound)
		}
		if !ok || b.LB != res.LowerBound {
			t.Fatalf("partial bounds not banked: result lb=%d, store=%+v ok=%v",
				res.LowerBound, b, ok)
		}
		return
	}
	// Fast machine: the race finished. The exact bounds must be banked.
	if !ok || !b.Exact() || b.UB != res.Width {
		t.Fatalf("final bounds not banked: width=%d store=%+v ok=%v", res.Width, b, ok)
	}
}

// TestStoreStress is the CI store-stress workload: concurrent Submit,
// Batch (with duplicates) and snapshot save/load over identical and
// renamed hypergraphs, run under -race. Correctness of every answer is
// checked; the store must neither wedge nor serve a wrong or invalid
// result while snapshots are taken mid-traffic.
func TestStoreStress(t *testing.T) {
	svc := New(Config{TokenBudget: 4, MaxConcurrent: 8, MaxQueue: 1024, MemoMaxGraphs: 8})
	defer svc.Close()
	ctx := context.Background()
	dir := t.TempDir()

	type job struct {
		h      *hypergraph.Hypergraph
		k      int
		mode   Mode
		wantOK bool
	}
	var renamed hypergraph.Builder
	for i := 0; i < 16; i++ {
		renamed.MustAddEdge("S"+strconv.Itoa(i), "w"+strconv.Itoa(i), "w"+strconv.Itoa((i+1)%16))
	}
	jobs := []job{
		{cycle(16), 1, ModeDecide, false},
		{cycle(16), 2, ModeDecide, true},
		{renamed.Build(), 2, ModeDecide, true}, // same hash as cycle(16)
		{grid(3), 2, ModeDecide, true},
		{cycle(16), 4, ModeOptimal, true},
		{grid(3), 3, ModeOptimal, true},
	}

	const workers = 6
	const iters = 20
	errs := make(chan string, workers*iters+workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 3 {
				case 0: // single submissions
					j := jobs[(w+i)%len(jobs)]
					res := svc.Submit(ctx, Request{H: j.h, K: j.k, Mode: j.mode})
					if res.Err != nil {
						errs <- "submit: " + res.Err.Error()
					} else if res.OK != j.wantOK {
						errs <- "submit: wrong answer for k=" + strconv.Itoa(j.k)
					} else if res.OK {
						if err := decomp.CheckHD(res.Decomp); err != nil {
							errs <- "submit: " + err.Error()
						}
					}
				case 1: // batches with duplicates
					reqs := []Request{
						{H: jobs[1].h, K: 2}, {H: jobs[1].h, K: 2},
						{H: jobs[2].h, K: 2}, {H: jobs[0].h, K: 1},
					}
					for bi, r := range svc.Batch(ctx, reqs) {
						want := bi != 3
						if r.Err != nil {
							errs <- "batch: " + r.Err.Error()
						} else if r.OK != want {
							errs <- "batch: wrong answer at slot " + strconv.Itoa(bi)
						}
					}
				case 2: // snapshot save/load mid-traffic
					path := filepath.Join(dir, "stress-"+strconv.Itoa(w)+".json")
					if err := store.WriteFile(path, svc.Store().Export()); err != nil {
						errs <- "save: " + err.Error()
						continue
					}
					snap, err := store.ReadFile(path)
					if err != nil {
						errs <- "load: " + err.Error()
						continue
					}
					if _, err := svc.Store().Import(snap); err != nil {
						errs <- "import: " + err.Error()
					}
					svc.Store().Info(4)
					svc.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := svc.Stats()
	if st.StoreEntries == 0 || st.CacheReuses == 0 {
		t.Fatalf("stress left no cross-request state: %+v", st)
	}
	if st.TokensInUse != 0 {
		t.Fatalf("tokens leaked: %d", st.TokensInUse)
	}
}
