package service

import "sync"

// boundsStore caches proven width bounds per hypergraph content hash,
// the width-level complement of the state-level negative memo: a
// refutation of width k is a property of the graph alone, so any later
// job on a structurally identical hypergraph can start its optimal
// search at lb = k+1, and a witnessed width w means no probe above w is
// ever worth launching. Optimal-mode jobs read their starting bounds
// here and write their final (or partial, on timeout) bounds back.
type boundsStore struct {
	mu    sync.Mutex
	max   int
	m     map[string]*boundsEntry
	clock int64
}

// boundsEntry is one graph's known bounds: widths < lb are refuted,
// and ub > 0 means an HD of width ub has been witnessed.
type boundsEntry struct {
	lb      int
	ub      int
	lastUse int64
}

func newBoundsStore(maxGraphs int) *boundsStore {
	return &boundsStore{max: maxGraphs, m: make(map[string]*boundsEntry)}
}

// get returns the cached bounds for hash; ok is false when nothing is
// known. ub == 0 means no witnessed width.
func (b *boundsStore) get(hash string) (lb, ub int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[hash]
	if e == nil {
		return 0, 0, false
	}
	b.clock++
	e.lastUse = b.clock
	return e.lb, e.ub, true
}

// update merges new knowledge: the lower bound only ever rises, the
// witnessed width only ever falls. lb ≤ 1 and ub ≤ 0 are no-ops for
// their side. Insertion evicts the least recently used entry beyond
// the cap.
func (b *boundsStore) update(hash string, lb, ub int) {
	if lb <= 1 && ub <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock++
	e := b.m[hash]
	if e == nil {
		if len(b.m) >= b.max {
			var oldestKey string
			oldest := int64(1<<63 - 1)
			for k, cand := range b.m {
				if cand.lastUse < oldest {
					oldest, oldestKey = cand.lastUse, k
				}
			}
			delete(b.m, oldestKey)
		}
		e = &boundsEntry{}
		b.m[hash] = e
	}
	e.lastUse = b.clock
	if lb > e.lb {
		e.lb = lb
	}
	if ub > 0 && (e.ub == 0 || ub < e.ub) {
		e.ub = ub
	}
}

// len reports how many graphs have cached bounds.
func (b *boundsStore) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
