package service

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/race"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Mode selects what a job computes.
type Mode int

const (
	// ModeDecide answers the decision problem hw(H) ≤ K and returns a
	// witness on yes — the original service behaviour.
	ModeDecide Mode = iota
	// ModeOptimal computes hw(H) exactly (searching widths 1..K) with
	// the width racer: concurrent probes share live bounds, moot probes
	// are cancelled, refutations feed the cross-request store.
	ModeOptimal
)

func (m Mode) String() string {
	if m == ModeOptimal {
		return "optimal"
	}
	return "decide"
}

// ErrOverloaded is returned when the waiting queue is full and the job
// was rejected by admission control.
var ErrOverloaded = errors.New("service: overloaded, job rejected")

// ErrClosed is returned for jobs submitted after Close.
var ErrClosed = errors.New("service: closed")

// Config sizes the service. The zero value picks sensible defaults.
type Config struct {
	// TokenBudget is the number of extra search workers shared by all
	// jobs (on top of each running job's own goroutine). Default:
	// GOMAXPROCS-1, minimum 0.
	TokenBudget int
	// MaxConcurrent bounds jobs decomposing simultaneously. Default:
	// GOMAXPROCS, minimum 1.
	MaxConcurrent int
	// MaxQueue bounds jobs waiting for a slot; beyond it Submit fails
	// fast with ErrOverloaded. Default 64.
	MaxQueue int
	// DefaultTimeout applies to jobs that set none, and caps per-job
	// overrides. 0 means no timeout.
	DefaultTimeout time.Duration
	// DefaultWorkers caps one job's search parallelism when the request
	// sets none. Default TokenBudget+1 (one job can use the whole pool).
	DefaultWorkers int
	// Store injects a cross-request storage backend; nil builds an
	// in-memory sharded backend sized by StoreShards, MemoMaxGraphs and
	// MemoMaxEntries. Custom backends are the seam for disk or remote
	// storage.
	Store store.Backend
	// StoreShards is the stripe count of the default sharded backend
	// (more shards = less lock contention). Default 16.
	StoreShards int
	// MemoMaxGraphs bounds distinct hypergraphs cached in the default
	// store (LRU-evicted beyond it). Default 32.
	MemoMaxGraphs int
	// MemoMaxEntries bounds memoised states per (hypergraph, width)
	// table; inserts beyond it are dropped. Default 1<<20.
	MemoMaxEntries int
	// StoreDir, when set (and Store is nil), makes Open build a
	// disk-backed tiered store: the sharded in-memory backend above
	// becomes the LRU working set over a crash-safe append-only log in
	// this directory, so a restart serves its whole history warm with
	// no snapshot file. The service owns the backend and closes it on
	// Close. New ignores this field — a disk store can fail to open, so
	// it is Open's job.
	StoreDir string
	// StoreFsync is the disk store's durability cadence: 0 fsyncs every
	// append, > 0 fsyncs at most that often (a crash loses at most the
	// unsynced tail).
	StoreFsync time.Duration
	// Tenants configures the per-tenant admission wall layered in
	// front of the global admission above. The zero value enforces
	// nothing but still tracks per-tenant counters and latency; set
	// tenant.Config knobs (rate, burst, in-flight, queue, fair-share)
	// to turn individual gates on.
	Tenants tenant.Config
	// Datasets sizes the named-dataset registry (server-resident
	// versioned databases with delta-maintained indexes). The zero
	// value picks the dataset package's defaults.
	Datasets dataset.Config
}

func (c Config) withDefaults() Config {
	if c.TokenBudget <= 0 {
		c.TokenBudget = runtime.GOMAXPROCS(0) - 1
		if c.TokenBudget < 0 {
			c.TokenBudget = 0
		}
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = c.TokenBudget + 1
	}
	if c.StoreShards <= 0 {
		c.StoreShards = 16
	}
	if c.MemoMaxGraphs <= 0 {
		c.MemoMaxGraphs = 32
	}
	if c.MemoMaxEntries <= 0 {
		c.MemoMaxEntries = 1 << 20
	}
	return c
}

// Request is one decomposition job.
type Request struct {
	// H is the hypergraph to decompose (required).
	H *hypergraph.Hypergraph
	// Mode selects the problem: ModeDecide (default) answers hw(H) ≤ K,
	// ModeOptimal computes hw(H) exactly over widths 1..K.
	Mode Mode
	// K is the width bound (required, ≥ 1). In ModeOptimal it is the
	// search ceiling KMax.
	K int
	// MaxProbes bounds concurrent width probes in ModeOptimal (0 picks
	// the racer default).
	MaxProbes int
	// Workers caps this job's search parallelism; 0 uses the service
	// default. Actual parallelism is further bounded by the shared
	// token budget.
	Workers int
	// Timeout tightens the service's DefaultTimeout for this job; ≤ 0
	// inherits it, and values beyond it are clamped to it.
	Timeout time.Duration
	// Hybrid and HybridThreshold configure det-k-decomp hybridisation,
	// as in logk.Options.
	Hybrid          logk.HybridMetric
	HybridThreshold float64
	// NoSharedMemo opts this job out of all cross-request state: the
	// negative-memo tables, the width bounds, the positive result
	// cache, and request coalescing. The job always runs its own
	// solver (with a private memo).
	NoSharedMemo bool
	// Tenant attributes the job to a caller for per-tenant admission
	// control and latency accounting; empty means tenant.Default.
	Tenant string
	// TenantAdmitted marks that a surrounding layer (the query
	// planner, which admits a whole query — plan and execution — as
	// one request) already holds this job's tenant lease; Submit then
	// skips the tenant wall so the caller is admitted and rate-charged
	// exactly once.
	TenantAdmitted bool
}

// Result is the outcome of one job.
type Result struct {
	// Decomp is the decomposition when OK; nil otherwise.
	Decomp *decomp.Decomp
	// OK reports hw(H) ≤ K. It is false both for a definitive "no" and
	// when Err is set.
	OK bool
	// Err is nil for a definitive answer; context errors mean the job
	// timed out or was cancelled, ErrOverloaded that it never ran.
	Err error
	// Stats are the solver's effort counters for this job (zero for
	// cache hits and coalesced jobs: the effort belongs to the run that
	// actually searched).
	Stats logk.Stats
	// Elapsed is wall-clock solve time (excluding queueing).
	Elapsed time.Duration
	// CacheShared reports that the job reused cross-request state: a
	// memo table, cached bounds, or a cached result.
	CacheShared bool
	// CacheHit reports that the job was answered entirely from the
	// store — no solver ran. Positive hits return a re-validated
	// witness decomposition; negative hits return a width-level
	// refutation (OK=false).
	CacheHit bool
	// Coalesced reports that this job shared a concurrent identical
	// request's solver run instead of launching its own.
	Coalesced bool

	// The fields below are populated by ModeOptimal jobs only.

	// Width is the exact hypertree width when OK.
	Width int
	// LowerBound is the largest proven bound: all widths < LowerBound
	// are refuted. Meaningful even when the job timed out.
	LowerBound int
	// LowerBoundFrom is the provenance of the final lower bound:
	// "probe" (refuted during this job), "memo" (cached bounds from an
	// earlier job) or "trivial" (optimum was width 1).
	LowerBoundFrom string
	// ProbesLaunched and ProbesCancelled count the job's width probes
	// and how many of them were killed as moot by a sibling's result.
	ProbesLaunched  int
	ProbesCancelled int
	// BoundsShared reports that the job started from cached bounds.
	BoundsShared bool
}

// Stats is a snapshot of service-wide counters.
type Stats struct {
	Submitted int64 // jobs accepted by Submit (including later failures)
	Completed int64 // jobs that ran to a definitive answer
	Failed    int64 // jobs that errored (timeouts, cancellations)
	Rejected  int64 // jobs refused by admission control
	Running   int64 // jobs decomposing right now
	Waiting   int64 // jobs queued for a slot

	TokenBudget     int64 // size of the shared worker-token pool
	TokensInUse     int64 // tokens currently lent out
	TokensHighWater int64 // max tokens ever simultaneously lent out

	SolverRuns   int64 // jobs that actually ran a solver
	PositiveHits int64 // jobs answered with a cached, re-validated witness
	NegativeHits int64 // jobs answered with a cached width-level refutation
	Coalesced    int64 // jobs that shared a concurrent identical run

	StoreEntries   int64 // hypergraphs cached in the store
	StoreTrees     int64 // cached witness decompositions
	StoreEvictions int64 // entries dropped by the store's LRU cap
	StoreShards    int64 // stripe count of the store backend

	MemoGraphs  int64 // per-width negative-memo tables cached
	MemoEntries int64 // memoised dead states across all tables
	CacheReuses int64 // jobs that reused any cross-request state

	OptimalJobs     int64 // ModeOptimal jobs run
	ProbesLaunched  int64 // width probes launched by optimal jobs
	ProbesCancelled int64 // probes killed as moot by sibling results
	BoundsGraphs    int64 // graphs with cached width bounds
	BoundsReuses    int64 // optimal jobs that started from cached bounds
	// CancelledByWidth breaks ProbesCancelled down per width bound k
	// (the /stats payload the operators watch to see racing pay off).
	CancelledByWidth map[int]int64

	// Solver aggregates per-job solver counters over all finished jobs
	// (sums; MaxDepth is the maximum observed).
	Solver logk.Stats

	// Tenants is the per-tenant admission snapshot: admitted/rejected
	// counts, live in-flight and queue depth, and p50/p99 latency from
	// each tenant's streaming histogram.
	Tenants map[string]tenant.Stats
}

// Service is a concurrent decomposition service. Create one with New,
// share it freely between goroutines, and Close it when done.
type Service struct {
	cfg      Config
	budget   *TokenBudget
	store    store.Backend
	flight   *store.Flight
	tenants  *tenant.Wall
	datasets *dataset.Registry
	slots    chan struct{}

	// ownsStore marks a backend Open built itself (not injected via
	// Config.Store): Close closes it, flushing the disk tier.
	ownsStore bool

	mu     sync.Mutex // guards closed + jobs Add
	closed bool
	jobs   sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	running   atomic.Int64
	waiting   atomic.Int64

	solverRuns   atomic.Int64
	positiveHits atomic.Int64
	negativeHits atomic.Int64
	coalesced    atomic.Int64

	optimalJobs     atomic.Int64
	probesLaunched  atomic.Int64
	probesCancelled atomic.Int64
	boundsReuses    atomic.Int64

	agg struct {
		sync.Mutex
		stats            logk.Stats
		cancelledByWidth map[int]int64
	}
}

// New returns a Service with the given configuration. It never fails:
// Config.StoreDir is ignored (opening a disk store can fail) — use Open
// for a disk-backed service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		cfg.Store = store.NewSharded(store.Config{
			Shards:        cfg.StoreShards,
			MaxGraphs:     cfg.MemoMaxGraphs,
			MemoMaxStates: int64(cfg.MemoMaxEntries),
		})
	}
	s := &Service{
		cfg:      cfg,
		budget:   NewTokenBudget(cfg.TokenBudget),
		store:    cfg.Store,
		flight:   store.NewFlight(),
		tenants:  tenant.NewWall(cfg.Tenants),
		datasets: dataset.NewRegistry(cfg.Datasets),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
	}
	s.agg.cancelledByWidth = make(map[int]int64)
	return s
}

// Open returns a Service like New, additionally honouring
// Config.StoreDir: with no injected Store and a StoreDir set, it opens
// a disk-backed tiered backend there (the sharded in-memory store as
// the LRU working set over a crash-safe append-only log), owned by the
// service and closed by Close. A restart pointed at the same directory
// serves the entire cached history warm — zero solver runs for repeat
// submissions — with no snapshot file involved.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	owns := false
	if cfg.Store == nil && cfg.StoreDir != "" {
		ts, err := store.OpenTiered(store.TieredConfig{
			Mem: store.Config{
				Shards:        cfg.StoreShards,
				MaxGraphs:     cfg.MemoMaxGraphs,
				MemoMaxStates: int64(cfg.MemoMaxEntries),
			},
			Log: store.LogConfig{Dir: cfg.StoreDir, Fsync: cfg.StoreFsync},
		})
		if err != nil {
			return nil, err
		}
		cfg.Store = ts
		owns = true
	}
	s := New(cfg)
	s.ownsStore = owns
	return s, nil
}

// Budget exposes the shared token pool (read-only use: sizing, stats).
func (s *Service) Budget() *TokenBudget { return s.budget }

// Store exposes the cross-request storage backend, for snapshots
// (Export/Import), purges, and introspection.
func (s *Service) Store() store.Backend { return s.store }

// Tenants exposes the per-tenant admission wall, for layered callers
// (the query planner admits a whole query through it as one lease) and
// for stats.
func (s *Service) Tenants() *tenant.Wall { return s.tenants }

// Datasets exposes the named-dataset registry: server-resident,
// versioned databases with delta-maintained indexes, plus the
// single-flight parse cache for inline databases.
func (s *Service) Datasets() *dataset.Registry { return s.datasets }

// Config returns the effective configuration, with defaults resolved.
func (s *Service) Config() Config { return s.cfg }

// flightKey identifies interchangeable requests: same structure, same
// problem. Two requests with equal keys produce equivalent results even
// if their solver tuning (workers, hybridisation) differs — the
// leader's tuning wins for a coalesced group.
func flightKey(hash string, req Request) string {
	return hash + "/" + req.Mode.String() + "/" + strconv.Itoa(req.K)
}

// Submit runs one job, blocking until it finishes, fails, or is
// rejected. It is safe to call from any number of goroutines; the
// per-tenant wall (keyed by Request.Tenant) and the global admission
// control decide which callers wait and which fail fast.
//
// Submissions read through the cross-request store: a request whose
// answer is already cached returns a validated result without running a
// solver (Result.CacheHit), and concurrent identical requests share one
// solver run (Result.Coalesced). Cache hits and coalesced followers do
// not occupy run slots.
func (s *Service) Submit(ctx context.Context, req Request) Result {
	if req.H == nil {
		return Result{Err: errors.New("service: nil hypergraph")}
	}
	if req.K < 1 {
		return Result{Err: errors.New("service: width bound K must be >= 1")}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{Err: ErrClosed}
	}
	s.jobs.Add(1)
	s.mu.Unlock()
	defer s.jobs.Done()
	s.submitted.Add(1)

	// The tenant wall sits in front of the global admission below: a
	// caller over its own rate, in-flight or queue budget is rejected
	// here before it can consume any shared slot, queue space, or
	// solver effort — one hot tenant's overflow cannot starve the rest.
	if !req.TenantAdmitted {
		lease, err := s.tenants.Admit(ctx, req.Tenant)
		if err != nil {
			if errors.Is(err, tenant.ErrLimited) {
				s.rejected.Add(1)
			} else {
				s.failed.Add(1)
			}
			return Result{Err: err}
		}
		res := s.dispatch(ctx, req)
		lease.Done(res.Err != nil)
		return res
	}
	return s.dispatch(ctx, req)
}

// dispatch routes an accepted, tenant-admitted job: read-through cache
// lookup, coalescing, then global admission and the solver.
func (s *Service) dispatch(ctx context.Context, req Request) Result {
	if req.NoSharedMemo {
		return s.admitAndRun(ctx, req, "")
	}
	hash := req.H.ContentHash()
	if res, ok := s.lookup(req, hash); ok {
		s.completed.Add(1)
		return res
	}
	v, leader, err := s.flight.Do(ctx, flightKey(hash, req), func() any {
		// Re-check the store under the flight: a result banked between
		// the lookup above and this call (a just-finished leader whose
		// key was already forgotten) must answer here, not trigger a
		// second solve — otherwise "N identical concurrent requests run
		// one solver" would hold only probabilistically.
		if res, ok := s.lookup(req, hash); ok {
			return res
		}
		return s.admitAndRun(ctx, req, hash)
	})
	if err != nil {
		// The follower's own context expired while waiting.
		s.failed.Add(1)
		return Result{Err: err}
	}
	if leader {
		res := v.(Result)
		if res.CacheHit {
			// The in-flight re-check answered; run/runOptimal never
			// executed, so the completion is counted here.
			s.completed.Add(1)
		}
		return res
	}
	res, ok := v.(Result)
	if !ok || (res.Err != nil && ctx.Err() == nil) {
		// The leader died or failed for reasons of its own — its
		// cancellation, timeout, or admission rejection is not this
		// caller's to inherit while its context is still live. Run
		// independently and be judged on our own merits.
		return s.admitAndRun(ctx, req, hash)
	}
	return s.adoptShared(ctx, res, req, hash)
}

// lookup answers a request straight from the store when possible:
// OK=false when the cached lower bound already refutes K, OK=true with
// a re-validated witness when one of width ≤ K is cached. ModeOptimal
// additionally requires the bounds to pin the width exactly.
func (s *Service) lookup(req Request, hash string) (Result, bool) {
	b, ok := s.store.Bounds(hash)
	if !ok {
		return Result{}, false
	}
	if req.Mode == ModeOptimal {
		if b.LB > req.K {
			// Every width up to the ceiling is already refuted.
			s.negativeHits.Add(1)
			s.optimalJobs.Add(1)
			s.boundsReuses.Add(1)
			return Result{
				CacheHit: true, CacheShared: true, BoundsShared: true,
				LowerBound: b.LB, LowerBoundFrom: race.BoundInitial.String(),
			}, true
		}
		if b.Exact() && b.UB <= req.K {
			if d, w, ok := s.cachedWitness(req.H, hash, b.UB); ok {
				s.positiveHits.Add(1)
				s.optimalJobs.Add(1)
				s.boundsReuses.Add(1)
				return Result{
					OK: true, Decomp: d, Width: w,
					CacheHit: true, CacheShared: true, BoundsShared: true,
					LowerBound: b.LB, LowerBoundFrom: race.BoundInitial.String(),
				}, true
			}
		}
		return Result{}, false
	}
	// ModeDecide.
	if b.LB > req.K {
		s.negativeHits.Add(1)
		return Result{CacheHit: true, CacheShared: true}, true
	}
	if b.UB > 0 && b.UB <= req.K {
		if d, _, ok := s.cachedWitness(req.H, hash, req.K); ok {
			s.positiveHits.Add(1)
			return Result{OK: true, Decomp: d, CacheHit: true, CacheShared: true}, true
		}
	}
	return Result{}, false
}

// cachedWitness materialises the cached tree for hash against h and
// re-validates it with the independent checkers. An invalid tree (a
// corrupted snapshot, a buggy backend) is dropped and reported as a
// miss — the store can never leak an unvalidated decomposition.
func (s *Service) cachedWitness(h *hypergraph.Hypergraph, hash string, maxW int) (*decomp.Decomp, int, bool) {
	tree, ok := s.store.Decomposition(hash)
	if !ok {
		return nil, 0, false
	}
	w := tree.Width()
	if w == 0 || w > maxW {
		return nil, 0, false
	}
	if d, err := tree.Bind(h); err == nil {
		if decomp.CheckHD(d) == nil && decomp.CheckWidth(d, maxW) == nil {
			return d, w, true
		}
	}
	s.store.DropDecomposition(hash)
	return nil, 0, false
}

// adoptShared shapes a leader's result for a coalesced follower: the
// effort counters belong to the leader, and a decomposition computed
// for a structurally identical but distinct hypergraph is rebound onto
// the follower's.
func (s *Service) adoptShared(ctx context.Context, res Result, req Request, hash string) Result {
	if res.Decomp != nil && res.Decomp.H != req.H {
		d, err := store.EncodeTree(res.Decomp).Bind(req.H)
		if err != nil {
			// Cannot happen for equal content hashes; fall back to an
			// independent run rather than return a foreign decomposition.
			return s.admitAndRun(ctx, req, hash)
		}
		res.Decomp = d
	}
	res.Coalesced = true
	res.CacheShared = true
	// The solve effort — counters, probe accounting, wall time —
	// belongs to the run that actually searched, not to each follower.
	res.Stats = logk.Stats{}
	res.ProbesLaunched = 0
	res.ProbesCancelled = 0
	res.Elapsed = 0
	s.coalesced.Add(1)
	if req.Mode == ModeOptimal {
		s.optimalJobs.Add(1)
	}
	switch {
	case errors.Is(res.Err, ErrOverloaded):
		s.rejected.Add(1)
	case res.Err != nil:
		s.failed.Add(1)
	default:
		s.completed.Add(1)
	}
	return res
}

// admitAndRun takes the job through admission control and executes it.
// An empty hash means the job opted out of cross-request state.
func (s *Service) admitAndRun(ctx context.Context, req Request, hash string) Result {
	// Admission: take a run slot without waiting if one is free, join
	// the bounded queue otherwise, reject when the queue is full. The
	// queue count is reserved *before* the bound check (add-then-test)
	// so a simultaneous burst cannot slip past MaxQueue.
	select {
	case s.slots <- struct{}{}:
	default:
		if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
			s.waiting.Add(-1)
			s.rejected.Add(1)
			return Result{Err: ErrOverloaded}
		}
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-ctx.Done():
			s.waiting.Add(-1)
			s.failed.Add(1)
			return Result{Err: ctx.Err()}
		}
	}
	defer func() { <-s.slots }()

	s.running.Add(1)
	defer s.running.Add(-1)
	return s.run(ctx, req, hash)
}

// run executes an admitted job on the caller's goroutine.
func (s *Service) run(ctx context.Context, req Request, hash string) Result {
	// Per-request timeouts can only tighten the operator's default:
	// unset (or negative) inherits it, larger values are clamped to it.
	// Otherwise any caller could opt out of the server-wide deadline
	// and pin a run slot indefinitely.
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.DefaultTimeout > 0 && timeout > s.cfg.DefaultTimeout {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	if max := s.budget.Size() + 1; workers > max {
		workers = max
	}

	if req.Mode == ModeOptimal {
		return s.runOptimal(ctx, req, workers, hash)
	}

	opts := logk.Options{
		K:               req.K,
		Workers:         workers,
		Hybrid:          req.Hybrid,
		HybridThreshold: req.HybridThreshold,
		Tokens:          s.budget,
	}
	var res Result
	if hash != "" {
		table, existed := s.store.Memo(hash, req.K)
		opts.Memo = table
		res.CacheShared = existed
	}

	solver := logk.New(req.H, opts)
	s.solverRuns.Add(1)
	start := time.Now()
	d, ok, err := solver.Decompose(ctx)
	res.Elapsed = time.Since(start)
	res.Decomp, res.OK, res.Err = d, ok, err
	res.Stats = solver.Stats()

	s.addSolverStats(res.Stats, nil)

	// Bank what this definitive answer proves at the width level: a
	// witness caps UB (and is cached for repeat submissions), an
	// exhausted search raises LB to K+1.
	if hash != "" && err == nil {
		if ok {
			if t := store.EncodeTree(d); t != nil {
				s.store.PutDecomposition(hash, t)
			}
		} else {
			s.store.MergeBounds(hash, store.Bounds{LB: req.K + 1})
		}
	}

	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return res
}

// runOptimal executes an admitted ModeOptimal job: a width race over
// 1..K sharing the service's worker budget and store. Refutations are
// banked twice — state-level in the per-width memo tables, width-level
// in the store's bounds — so later jobs on the same structure start
// from tighter bounds whether they decide or optimise.
func (s *Service) runOptimal(ctx context.Context, req Request, workers int, hash string) Result {
	s.optimalJobs.Add(1)
	cfg := race.Config{
		KMax:            req.K,
		MaxProbes:       req.MaxProbes,
		Workers:         workers,
		Hybrid:          req.Hybrid,
		HybridThreshold: req.HybridThreshold,
		Tokens:          s.budget,
	}
	var res Result
	if hash != "" {
		cfg.MemoFor = func(k int) logk.MemoBackend {
			table, existed := s.store.Memo(hash, k)
			if existed {
				res.CacheShared = true
			}
			return table
		}
		if b, ok := s.store.Bounds(hash); ok {
			cfg.LowerBound = b.LB
			cfg.UpperBoundHint = b.UB
			res.BoundsShared = true
			s.boundsReuses.Add(1)
		}
	}

	s.solverRuns.Add(1)
	start := time.Now()
	rr, err := race.New(req.H, cfg).Solve(ctx)
	res.Elapsed = time.Since(start)
	res.Err = err
	res.OK = err == nil && rr.Found
	res.Width = rr.Width
	res.LowerBound = rr.LowerBound
	res.LowerBoundFrom = rr.LowerBoundFrom.String()
	res.ProbesLaunched = len(rr.Probes)
	res.ProbesCancelled = rr.Cancelled
	if res.OK {
		res.Decomp = rr.Decomp
	}

	cancelledByWidth := make(map[int]int64)
	for _, p := range rr.Probes {
		res.Stats.Candidates += p.Stats.Candidates
		res.Stats.ParentCands += p.Stats.ParentCands
		res.Stats.HybridCalls += p.Stats.HybridCalls
		res.Stats.TokensGrabbed += p.Stats.TokensGrabbed
		res.Stats.MemoHits += p.Stats.MemoHits
		if p.Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = p.Stats.MaxDepth
		}
		if p.Outcome == race.Cancelled {
			cancelledByWidth[p.K]++
		}
	}
	s.probesLaunched.Add(int64(len(rr.Probes)))
	s.probesCancelled.Add(int64(rr.Cancelled))
	s.addSolverStats(res.Stats, cancelledByWidth)

	// Bank what this job proved, even partially on timeout: the lower
	// bound is sound regardless, the witnessed width (and its witness
	// decomposition) only when found.
	if hash != "" {
		s.store.MergeBounds(hash, store.Bounds{LB: rr.LowerBound, UB: rr.BestWidth})
		if rr.Decomp != nil {
			if t := store.EncodeTree(rr.Decomp); t != nil {
				s.store.PutDecomposition(hash, t)
			}
		}
	}

	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return res
}

// addSolverStats merges one job's solver counters (and optionally its
// per-width cancellation counts) into the service-wide aggregates.
func (s *Service) addSolverStats(st logk.Stats, cancelledByWidth map[int]int64) {
	s.agg.Lock()
	s.agg.stats.Candidates += st.Candidates
	s.agg.stats.ParentCands += st.ParentCands
	s.agg.stats.HybridCalls += st.HybridCalls
	s.agg.stats.TokensGrabbed += st.TokensGrabbed
	s.agg.stats.MemoHits += st.MemoHits
	if st.MaxDepth > s.agg.stats.MaxDepth {
		s.agg.stats.MaxDepth = st.MaxDepth
	}
	for k, n := range cancelledByWidth {
		s.agg.cancelledByWidth[k] += n
	}
	s.agg.Unlock()
}

// Batch runs all requests and returns results in request order. It
// feeds at most MaxConcurrent jobs into Submit at a time, so a large
// batch makes steady progress instead of tripping its own admission
// control (concurrent external traffic can still cause rejections,
// reported per-result). Duplicate requests inside one batch coalesce
// onto a single solver run like any other concurrent submissions.
func (s *Service) Batch(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	limit := s.cfg.MaxConcurrent
	if limit > len(reqs) {
		limit = len(reqs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = s.Submit(ctx, reqs[idx])
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	sst := s.store.Stats()
	s.agg.Lock()
	solver := s.agg.stats
	cancelled := make(map[int]int64, len(s.agg.cancelledByWidth))
	for k, n := range s.agg.cancelledByWidth {
		cancelled[k] = n
	}
	s.agg.Unlock()
	positive := s.positiveHits.Load()
	negative := s.negativeHits.Load()
	return Stats{
		Submitted:        s.submitted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Rejected:         s.rejected.Load(),
		Running:          s.running.Load(),
		Waiting:          s.waiting.Load(),
		TokenBudget:      int64(s.budget.Size()),
		TokensInUse:      int64(s.budget.InUse()),
		TokensHighWater:  int64(s.budget.HighWater()),
		SolverRuns:       s.solverRuns.Load(),
		PositiveHits:     positive,
		NegativeHits:     negative,
		Coalesced:        s.coalesced.Load(),
		StoreEntries:     sst.Entries,
		StoreTrees:       sst.Trees,
		StoreEvictions:   sst.Evictions,
		StoreShards:      int64(sst.Shards),
		MemoGraphs:       sst.MemoTables,
		MemoEntries:      sst.MemoStates,
		CacheReuses:      sst.MemoReuses + positive + negative,
		OptimalJobs:      s.optimalJobs.Load(),
		ProbesLaunched:   s.probesLaunched.Load(),
		ProbesCancelled:  s.probesCancelled.Load(),
		BoundsGraphs:     sst.BoundsGraphs,
		BoundsReuses:     s.boundsReuses.Load(),
		CancelledByWidth: cancelled,
		Solver:           solver,
		Tenants:          s.tenants.Stats(),
	}
}

// Close rejects future submissions and waits for in-flight jobs to
// drain. Jobs keep their own contexts; Close does not cancel them. A
// backend the service owns (built by Open from StoreDir) is closed
// after the drain, flushing the disk tier; the returned error is that
// close's. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.jobs.Wait()
	if s.ownsStore {
		if c, ok := s.store.(interface{ Close() error }); ok {
			return c.Close()
		}
	}
	return nil
}
