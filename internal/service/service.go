// Package service runs decompositions as a managed, concurrent service
// rather than one Solver at a time. It owns three resources that
// individual logk.Solver instances would otherwise fight over:
//
//   - a global worker-token budget (TokenBudget): every job's parallel
//     search splits draw from one pool, so total search parallelism is
//     bounded regardless of how many requests are in flight;
//   - a job scheduler with admission control: at most MaxConcurrent
//     jobs decompose at once, at most MaxQueue more wait, the rest are
//     rejected immediately with ErrOverloaded; every job gets its own
//     context with a per-job timeout;
//   - a cross-request negative-memo cache: tables keyed by hypergraph
//     content hash and width bound are shared between requests, so
//     repeated or structurally identical workloads skip search states
//     already proven exhausted.
//
// The package is exposed publicly as htd.Service.
package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/race"
)

// Mode selects what a job computes.
type Mode int

const (
	// ModeDecide answers the decision problem hw(H) ≤ K and returns a
	// witness on yes — the original service behaviour.
	ModeDecide Mode = iota
	// ModeOptimal computes hw(H) exactly (searching widths 1..K) with
	// the width racer: concurrent probes share live bounds, moot probes
	// are cancelled, refutations feed the cross-request caches.
	ModeOptimal
)

func (m Mode) String() string {
	if m == ModeOptimal {
		return "optimal"
	}
	return "decide"
}

// ErrOverloaded is returned when the waiting queue is full and the job
// was rejected by admission control.
var ErrOverloaded = errors.New("service: overloaded, job rejected")

// ErrClosed is returned for jobs submitted after Close.
var ErrClosed = errors.New("service: closed")

// Config sizes the service. The zero value picks sensible defaults.
type Config struct {
	// TokenBudget is the number of extra search workers shared by all
	// jobs (on top of each running job's own goroutine). Default:
	// GOMAXPROCS-1, minimum 0.
	TokenBudget int
	// MaxConcurrent bounds jobs decomposing simultaneously. Default:
	// GOMAXPROCS, minimum 1.
	MaxConcurrent int
	// MaxQueue bounds jobs waiting for a slot; beyond it Submit fails
	// fast with ErrOverloaded. Default 64.
	MaxQueue int
	// DefaultTimeout applies to jobs that set none, and caps per-job
	// overrides. 0 means no timeout.
	DefaultTimeout time.Duration
	// DefaultWorkers caps one job's search parallelism when the request
	// sets none. Default TokenBudget+1 (one job can use the whole pool).
	DefaultWorkers int
	// MemoMaxGraphs bounds distinct (hypergraph, K) memo tables kept
	// (LRU-evicted beyond it). Default 32.
	MemoMaxGraphs int
	// MemoMaxEntries bounds memoised states per table; inserts beyond it
	// are dropped. Default 1<<20.
	MemoMaxEntries int
}

func (c Config) withDefaults() Config {
	if c.TokenBudget <= 0 {
		c.TokenBudget = runtime.GOMAXPROCS(0) - 1
		if c.TokenBudget < 0 {
			c.TokenBudget = 0
		}
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = c.TokenBudget + 1
	}
	if c.MemoMaxGraphs <= 0 {
		c.MemoMaxGraphs = 32
	}
	if c.MemoMaxEntries <= 0 {
		c.MemoMaxEntries = 1 << 20
	}
	return c
}

// Request is one decomposition job.
type Request struct {
	// H is the hypergraph to decompose (required).
	H *hypergraph.Hypergraph
	// Mode selects the problem: ModeDecide (default) answers hw(H) ≤ K,
	// ModeOptimal computes hw(H) exactly over widths 1..K.
	Mode Mode
	// K is the width bound (required, ≥ 1). In ModeOptimal it is the
	// search ceiling KMax.
	K int
	// MaxProbes bounds concurrent width probes in ModeOptimal (0 picks
	// the racer default).
	MaxProbes int
	// Workers caps this job's search parallelism; 0 uses the service
	// default. Actual parallelism is further bounded by the shared
	// token budget.
	Workers int
	// Timeout tightens the service's DefaultTimeout for this job; ≤ 0
	// inherits it, and values beyond it are clamped to it.
	Timeout time.Duration
	// Hybrid and HybridThreshold configure det-k-decomp hybridisation,
	// as in logk.Options.
	Hybrid          logk.HybridMetric
	HybridThreshold float64
	// NoSharedMemo opts this job out of the cross-request memo cache
	// (it still gets a private one).
	NoSharedMemo bool
}

// Result is the outcome of one job.
type Result struct {
	// Decomp is the decomposition when OK; nil otherwise.
	Decomp *decomp.Decomp
	// OK reports hw(H) ≤ K. It is false both for a definitive "no" and
	// when Err is set.
	OK bool
	// Err is nil for a definitive answer; context errors mean the job
	// timed out or was cancelled, ErrOverloaded that it never ran.
	Err error
	// Stats are the solver's effort counters for this job.
	Stats logk.Stats
	// Elapsed is wall-clock solve time (excluding queueing).
	Elapsed time.Duration
	// CacheShared reports that the job found an existing cross-request
	// memo table for its hypergraph and width.
	CacheShared bool

	// The fields below are populated by ModeOptimal jobs only.

	// Width is the exact hypertree width when OK.
	Width int
	// LowerBound is the largest proven bound: all widths < LowerBound
	// are refuted. Meaningful even when the job timed out.
	LowerBound int
	// LowerBoundFrom is the provenance of the final lower bound:
	// "probe" (refuted during this job), "memo" (cached bounds from an
	// earlier job) or "trivial" (optimum was width 1).
	LowerBoundFrom string
	// ProbesLaunched and ProbesCancelled count the job's width probes
	// and how many of them were killed as moot by a sibling's result.
	ProbesLaunched  int
	ProbesCancelled int
	// BoundsShared reports that the job started from cached bounds.
	BoundsShared bool
}

// Stats is a snapshot of service-wide counters.
type Stats struct {
	Submitted int64 // jobs accepted by Submit (including later failures)
	Completed int64 // jobs that ran to a definitive answer
	Failed    int64 // jobs that errored (timeouts, cancellations)
	Rejected  int64 // jobs refused by admission control
	Running   int64 // jobs decomposing right now
	Waiting   int64 // jobs queued for a slot

	TokenBudget     int64 // size of the shared worker-token pool
	TokensInUse     int64 // tokens currently lent out
	TokensHighWater int64 // max tokens ever simultaneously lent out

	MemoGraphs  int64 // distinct (hypergraph, K) memo tables cached
	MemoEntries int64 // memoised dead states across all tables
	CacheReuses int64 // jobs that found an existing memo table

	OptimalJobs     int64 // ModeOptimal jobs run
	ProbesLaunched  int64 // width probes launched by optimal jobs
	ProbesCancelled int64 // probes killed as moot by sibling results
	BoundsGraphs    int64 // graphs with cached width bounds
	BoundsReuses    int64 // optimal jobs that started from cached bounds
	// CancelledByWidth breaks ProbesCancelled down per width bound k
	// (the /stats payload the operators watch to see racing pay off).
	CancelledByWidth map[int]int64

	// Solver aggregates per-job solver counters over all finished jobs
	// (sums; MaxDepth is the maximum observed).
	Solver logk.Stats
}

// Service is a concurrent decomposition service. Create one with New,
// share it freely between goroutines, and Close it when done.
type Service struct {
	cfg    Config
	budget *TokenBudget
	memos  *memoStore
	bounds *boundsStore
	slots  chan struct{}

	mu     sync.Mutex // guards closed + jobs Add
	closed bool
	jobs   sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	running   atomic.Int64
	waiting   atomic.Int64

	optimalJobs     atomic.Int64
	probesLaunched  atomic.Int64
	probesCancelled atomic.Int64
	boundsReuses    atomic.Int64

	agg struct {
		sync.Mutex
		stats            logk.Stats
		cancelledByWidth map[int]int64
	}
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		budget: NewTokenBudget(cfg.TokenBudget),
		memos:  newMemoStore(cfg.MemoMaxGraphs, int64(cfg.MemoMaxEntries)),
		bounds: newBoundsStore(cfg.MemoMaxGraphs),
		slots:  make(chan struct{}, cfg.MaxConcurrent),
	}
	s.agg.cancelledByWidth = make(map[int]int64)
	return s
}

// Budget exposes the shared token pool (read-only use: sizing, stats).
func (s *Service) Budget() *TokenBudget { return s.budget }

// Config returns the effective configuration, with defaults resolved.
func (s *Service) Config() Config { return s.cfg }

// Submit runs one job, blocking until it finishes, fails, or is
// rejected. It is safe to call from any number of goroutines; admission
// control decides which callers wait and which fail fast.
func (s *Service) Submit(ctx context.Context, req Request) Result {
	if req.H == nil {
		return Result{Err: errors.New("service: nil hypergraph")}
	}
	if req.K < 1 {
		return Result{Err: errors.New("service: width bound K must be >= 1")}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{Err: ErrClosed}
	}
	s.jobs.Add(1)
	s.mu.Unlock()
	defer s.jobs.Done()
	s.submitted.Add(1)

	// Admission: take a run slot without waiting if one is free, join
	// the bounded queue otherwise, reject when the queue is full. The
	// queue count is reserved *before* the bound check (add-then-test)
	// so a simultaneous burst cannot slip past MaxQueue.
	select {
	case s.slots <- struct{}{}:
	default:
		if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
			s.waiting.Add(-1)
			s.rejected.Add(1)
			return Result{Err: ErrOverloaded}
		}
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-ctx.Done():
			s.waiting.Add(-1)
			s.failed.Add(1)
			return Result{Err: ctx.Err()}
		}
	}
	defer func() { <-s.slots }()

	s.running.Add(1)
	defer s.running.Add(-1)
	return s.run(ctx, req)
}

// run executes an admitted job on the caller's goroutine.
func (s *Service) run(ctx context.Context, req Request) Result {
	// Per-request timeouts can only tighten the operator's default:
	// unset (or negative) inherits it, larger values are clamped to it.
	// Otherwise any caller could opt out of the server-wide deadline
	// and pin a run slot indefinitely.
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.DefaultTimeout > 0 && timeout > s.cfg.DefaultTimeout {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	if max := s.budget.Size() + 1; workers > max {
		workers = max
	}

	if req.Mode == ModeOptimal {
		return s.runOptimal(ctx, req, workers)
	}

	opts := logk.Options{
		K:               req.K,
		Workers:         workers,
		Hybrid:          req.Hybrid,
		HybridThreshold: req.HybridThreshold,
		Tokens:          s.budget,
	}
	var res Result
	if !req.NoSharedMemo {
		table, existed := s.memos.get(req.H.ContentHash(), req.K)
		opts.Memo = table
		res.CacheShared = existed
	}

	solver := logk.New(req.H, opts)
	start := time.Now()
	d, ok, err := solver.Decompose(ctx)
	res.Elapsed = time.Since(start)
	res.Decomp, res.OK, res.Err = d, ok, err
	res.Stats = solver.Stats()

	s.addSolverStats(res.Stats, nil)

	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return res
}

// runOptimal executes an admitted ModeOptimal job: a width race over
// 1..K sharing the service's worker budget and caches. Refutations are
// banked twice — state-level in the per-width memo tables, width-level
// in the bounds store — so later jobs on the same structure start from
// tighter bounds whether they decide or optimise.
func (s *Service) runOptimal(ctx context.Context, req Request, workers int) Result {
	s.optimalJobs.Add(1)
	cfg := race.Config{
		KMax:            req.K,
		MaxProbes:       req.MaxProbes,
		Workers:         workers,
		Hybrid:          req.Hybrid,
		HybridThreshold: req.HybridThreshold,
		Tokens:          s.budget,
	}
	var res Result
	var hash string
	if !req.NoSharedMemo {
		hash = req.H.ContentHash()
		cfg.MemoFor = func(k int) logk.MemoBackend {
			table, existed := s.memos.get(hash, k)
			if existed {
				res.CacheShared = true
			}
			return table
		}
		if lb, ub, ok := s.bounds.get(hash); ok {
			cfg.LowerBound = lb
			cfg.UpperBoundHint = ub
			res.BoundsShared = true
			s.boundsReuses.Add(1)
		}
	}

	start := time.Now()
	rr, err := race.New(req.H, cfg).Solve(ctx)
	res.Elapsed = time.Since(start)
	res.Err = err
	res.OK = err == nil && rr.Found
	res.Width = rr.Width
	res.LowerBound = rr.LowerBound
	res.LowerBoundFrom = rr.LowerBoundFrom.String()
	res.ProbesLaunched = len(rr.Probes)
	res.ProbesCancelled = rr.Cancelled
	if res.OK {
		res.Decomp = rr.Decomp
	}

	cancelledByWidth := make(map[int]int64)
	for _, p := range rr.Probes {
		res.Stats.Candidates += p.Stats.Candidates
		res.Stats.ParentCands += p.Stats.ParentCands
		res.Stats.HybridCalls += p.Stats.HybridCalls
		res.Stats.TokensGrabbed += p.Stats.TokensGrabbed
		res.Stats.MemoHits += p.Stats.MemoHits
		if p.Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = p.Stats.MaxDepth
		}
		if p.Outcome == race.Cancelled {
			cancelledByWidth[p.K]++
		}
	}
	s.probesLaunched.Add(int64(len(rr.Probes)))
	s.probesCancelled.Add(int64(rr.Cancelled))
	s.addSolverStats(res.Stats, cancelledByWidth)

	// Bank what this job proved, even partially on timeout: the lower
	// bound is sound regardless, the witnessed width only when found.
	if !req.NoSharedMemo {
		ub := 0
		if rr.BestWidth > 0 {
			ub = rr.BestWidth
		}
		s.bounds.update(hash, rr.LowerBound, ub)
	}

	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return res
}

// addSolverStats merges one job's solver counters (and optionally its
// per-width cancellation counts) into the service-wide aggregates.
func (s *Service) addSolverStats(st logk.Stats, cancelledByWidth map[int]int64) {
	s.agg.Lock()
	s.agg.stats.Candidates += st.Candidates
	s.agg.stats.ParentCands += st.ParentCands
	s.agg.stats.HybridCalls += st.HybridCalls
	s.agg.stats.TokensGrabbed += st.TokensGrabbed
	s.agg.stats.MemoHits += st.MemoHits
	if st.MaxDepth > s.agg.stats.MaxDepth {
		s.agg.stats.MaxDepth = st.MaxDepth
	}
	for k, n := range cancelledByWidth {
		s.agg.cancelledByWidth[k] += n
	}
	s.agg.Unlock()
}

// Batch runs all requests and returns results in request order. It
// feeds at most MaxConcurrent jobs into Submit at a time, so a large
// batch makes steady progress instead of tripping its own admission
// control (concurrent external traffic can still cause rejections,
// reported per-result).
func (s *Service) Batch(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	limit := s.cfg.MaxConcurrent
	if limit > len(reqs) {
		limit = len(reqs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = s.Submit(ctx, reqs[idx])
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	graphs, entries := s.memos.counts()
	s.agg.Lock()
	solver := s.agg.stats
	cancelled := make(map[int]int64, len(s.agg.cancelledByWidth))
	for k, n := range s.agg.cancelledByWidth {
		cancelled[k] = n
	}
	s.agg.Unlock()
	return Stats{
		Submitted:        s.submitted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Rejected:         s.rejected.Load(),
		Running:          s.running.Load(),
		Waiting:          s.waiting.Load(),
		TokenBudget:      int64(s.budget.Size()),
		TokensInUse:      int64(s.budget.InUse()),
		TokensHighWater:  int64(s.budget.HighWater()),
		MemoGraphs:       int64(graphs),
		MemoEntries:      entries,
		CacheReuses:      s.memos.reuses.Load(),
		OptimalJobs:      s.optimalJobs.Load(),
		ProbesLaunched:   s.probesLaunched.Load(),
		ProbesCancelled:  s.probesCancelled.Load(),
		BoundsGraphs:     int64(s.bounds.len()),
		BoundsReuses:     s.boundsReuses.Load(),
		CancelledByWidth: cancelled,
		Solver:           solver,
	}
}

// Close rejects future submissions and waits for in-flight jobs to
// drain. Jobs keep their own contexts; Close does not cancel them.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.jobs.Wait()
}
