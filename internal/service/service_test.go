package service

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func grid(m int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	name := func(i, j int) string { return "g" + strconv.Itoa(i) + "_" + strconv.Itoa(j) }
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j+1 < m {
				b.MustAddEdge("", name(i, j), name(i, j+1))
			}
			if i+1 < m {
				b.MustAddEdge("", name(i, j), name(i+1, j))
			}
		}
	}
	return b.Build()
}

// TestConcurrentSubmissionsBoundedBudget is the central serving-layer
// test: many concurrent jobs with a small global token budget must all
// answer correctly, produce valid HDs, and never push the pool past its
// bound — even though each job asks for far more workers than exist.
func TestConcurrentSubmissionsBoundedBudget(t *testing.T) {
	const budget = 3
	svc := New(Config{TokenBudget: budget, MaxConcurrent: 16, MaxQueue: 256})
	defer svc.Close()

	graphs := []*hypergraph.Hypergraph{cycle(24), cycle(32), cycle(48), grid(3)}
	const jobs = 40 // ≥ 32 concurrent submissions
	results := make([]Result, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = svc.Submit(context.Background(), Request{
				H: graphs[i%len(graphs)], K: 2, Workers: 64,
			})
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !r.OK {
			t.Fatalf("job %d: expected a width-2 HD", i)
		}
		if err := decomp.CheckHD(r.Decomp); err != nil {
			t.Fatalf("job %d: invalid HD: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.TokensHighWater > budget {
		t.Fatalf("token budget exceeded: high water %d > budget %d", st.TokensHighWater, budget)
	}
	if st.TokensInUse != 0 {
		t.Fatalf("tokens leaked: %d still in use after drain", st.TokensInUse)
	}
	if st.Completed != jobs {
		t.Fatalf("completed %d of %d jobs", st.Completed, jobs)
	}
}

// TestRefutationSharedAcrossRequests: a second request for a
// structurally identical hypergraph must reuse the first request's
// refutation — an unsatisfiable instance is answered straight from the
// store, with no solver run at all.
func TestRefutationSharedAcrossRequests(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	ctx := context.Background()

	// cycle(12) has hw = 2: K=1 exhausts the search space, which raises
	// the stored lower bound to 2.
	first := svc.Submit(ctx, Request{H: cycle(12), K: 1})
	if first.Err != nil || first.OK {
		t.Fatalf("first: ok=%v err=%v", first.OK, first.Err)
	}
	if first.CacheShared || first.CacheHit {
		t.Fatal("first request cannot reuse cross-request state")
	}
	if first.Stats.Candidates == 0 {
		t.Fatal("first request should have searched")
	}

	// Same structure under different names: content hash must match and
	// the stored width bound answers without any search.
	var b hypergraph.Builder
	for i := 0; i < 12; i++ {
		b.MustAddEdge("S"+strconv.Itoa(i), "y"+strconv.Itoa(i), "y"+strconv.Itoa((i+1)%12))
	}
	renamed := b.Build()
	second := svc.Submit(ctx, Request{H: renamed, K: 1})
	if second.Err != nil || second.OK {
		t.Fatalf("second: ok=%v err=%v", second.OK, second.Err)
	}
	if !second.CacheHit || !second.CacheShared {
		t.Fatalf("second request should be a width-level cache hit: %+v", second)
	}
	if second.Stats.Candidates != 0 {
		t.Fatalf("second request searched %d candidates despite a cached refutation", second.Stats.Candidates)
	}

	st := svc.Stats()
	if st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want 1 (second request must not run a solver)", st.SolverRuns)
	}
	if st.NegativeHits != 1 || st.CacheReuses == 0 || st.MemoGraphs == 0 || st.MemoEntries == 0 {
		t.Fatalf("cache stats not populated: %+v", st)
	}
}

// TestPositiveCacheHit is the acceptance check for the result cache: a
// repeat Submit of an identical satisfiable request returns a
// validated witness without running a solver.
func TestPositiveCacheHit(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	ctx := context.Background()

	first := svc.Submit(ctx, Request{H: cycle(12), K: 2})
	if first.Err != nil || !first.OK || first.CacheHit {
		t.Fatalf("first: ok=%v hit=%v err=%v", first.OK, first.CacheHit, first.Err)
	}
	second := svc.Submit(ctx, Request{H: cycle(12), K: 2})
	if second.Err != nil || !second.OK {
		t.Fatalf("second: ok=%v err=%v", second.OK, second.Err)
	}
	if !second.CacheHit {
		t.Fatalf("repeat submit must be a cache hit: %+v", second)
	}
	if err := decomp.CheckHD(second.Decomp); err != nil {
		t.Fatalf("cached witness invalid: %v", err)
	}

	// A wider decide on the same structure is also answered by the
	// cached witness (width 2 ≤ 4).
	wider := svc.Submit(ctx, Request{H: cycle(12), K: 4})
	if !wider.CacheHit || !wider.OK {
		t.Fatalf("wider decide should hit the cached witness: %+v", wider)
	}

	st := svc.Stats()
	if st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want 1", st.SolverRuns)
	}
	if st.PositiveHits != 2 || st.StoreTrees != 1 {
		t.Fatalf("positive-cache stats: %+v", st)
	}
}

// TestMemoSharingUnderConcurrency: many jobs hammering the same two
// instances concurrently — shared tables must stay race-free and the
// decisions must match a fresh, cache-free solver.
func TestMemoSharingUnderConcurrency(t *testing.T) {
	svc := New(Config{TokenBudget: 4, MaxConcurrent: 8, MaxQueue: 256})
	defer svc.Close()
	ctx := context.Background()

	type job struct {
		h    *hypergraph.Hypergraph
		k    int
		want bool
	}
	jobs := []job{
		{cycle(16), 1, false},
		{cycle(16), 2, true},
		{grid(3), 1, false},
		{grid(3), 2, true},
	}
	// Verify expectations against direct cache-free solvers first.
	for i, j := range jobs {
		ok, err := logk.New(j.h, logk.Options{K: j.k, NoCache: true}).Decide(ctx)
		if err != nil || ok != j.want {
			t.Fatalf("job template %d: direct ok=%v err=%v want=%v", i, ok, err, j.want)
		}
	}

	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(jobs))
	for r := 0; r < rounds; r++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(r, i int, j job) {
				defer wg.Done()
				res := svc.Submit(ctx, Request{H: j.h, K: j.k})
				if res.Err != nil {
					errs <- "round " + strconv.Itoa(r) + " job " + strconv.Itoa(i) + ": " + res.Err.Error()
					return
				}
				if res.OK != j.want {
					errs <- "round " + strconv.Itoa(r) + " job " + strconv.Itoa(i) + ": wrong decision"
					return
				}
				if res.OK {
					if err := decomp.CheckHD(res.Decomp); err != nil {
						errs <- "round " + strconv.Itoa(r) + " job " + strconv.Itoa(i) + ": " + err.Error()
					}
				}
			}(r, i, j)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := svc.Stats(); st.CacheReuses == 0 {
		t.Fatal("no cross-request cache reuse under concurrency")
	}
}

func cylinderH(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(j))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(j))
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return b.Build()
}

// TestOptimalMode: a ModeOptimal job computes the exact width with a
// valid witness, proves the bound below it, and reports racer effort.
func TestOptimalMode(t *testing.T) {
	svc := New(Config{TokenBudget: 3, MaxConcurrent: 4})
	defer svc.Close()

	res := svc.Submit(context.Background(), Request{H: cylinderH(10), K: 6, Mode: ModeOptimal})
	if res.Err != nil || !res.OK {
		t.Fatalf("ok=%v err=%v", res.OK, res.Err)
	}
	if res.Width != 3 {
		t.Fatalf("width %d, want 3 (cylinder)", res.Width)
	}
	if err := decomp.CheckHD(res.Decomp); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	if err := decomp.CheckWidth(res.Decomp, 3); err != nil {
		t.Fatal(err)
	}
	if res.LowerBound != 3 || res.LowerBoundFrom != "probe" {
		t.Fatalf("lower bound %d from %q, want 3 from probe", res.LowerBound, res.LowerBoundFrom)
	}
	if res.ProbesLaunched < 3 {
		t.Fatalf("launched %d probes, want at least one per width 1..3", res.ProbesLaunched)
	}
	st := svc.Stats()
	if st.OptimalJobs != 1 || st.ProbesLaunched == 0 {
		t.Fatalf("optimal counters not populated: %+v", st)
	}
	if st.BoundsGraphs == 0 {
		t.Fatal("the job's bounds should be banked for later requests")
	}
}

// TestOptimalBoundsSharedAcrossRequests: a second optimal job on a
// structurally identical hypergraph must start from the first job's
// bounds — memo provenance, no probes outside the pinned width.
func TestOptimalBoundsSharedAcrossRequests(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	ctx := context.Background()

	first := svc.Submit(ctx, Request{H: cycle(12), K: 4, Mode: ModeOptimal})
	if first.Err != nil || !first.OK || first.Width != 2 {
		t.Fatalf("first: ok=%v width=%d err=%v", first.OK, first.Width, first.Err)
	}
	if first.BoundsShared || first.LowerBoundFrom != "probe" {
		t.Fatalf("first job cannot start from cached bounds (shared=%v from=%q)",
			first.BoundsShared, first.LowerBoundFrom)
	}

	// Same structure, different names: content hash matches.
	var b hypergraph.Builder
	for i := 0; i < 12; i++ {
		b.MustAddEdge("S"+strconv.Itoa(i), "y"+strconv.Itoa(i), "y"+strconv.Itoa((i+1)%12))
	}
	renamed := b.Build()
	second := svc.Submit(ctx, Request{H: renamed, K: 4, Mode: ModeOptimal})
	if second.Err != nil || !second.OK || second.Width != 2 {
		t.Fatalf("second: ok=%v width=%d err=%v", second.OK, second.Width, second.Err)
	}
	if !second.BoundsShared || !second.CacheHit {
		t.Fatalf("second job should be answered from the cached exact bounds: %+v", second)
	}
	if second.LowerBoundFrom != "memo" {
		t.Fatalf("second job's lower bound from %q, want memo", second.LowerBoundFrom)
	}
	if second.ProbesLaunched != 0 {
		t.Fatalf("second job launched %d probes, want 0 (cached witness)", second.ProbesLaunched)
	}
	// The cached witness was rebound onto the renamed hypergraph and
	// re-validated before being returned.
	if second.Decomp.H != renamed {
		t.Fatal("cached witness not rebound onto the requesting hypergraph")
	}
	if err := decomp.CheckHD(second.Decomp); err != nil {
		t.Fatalf("rebound witness invalid: %v", err)
	}
	if st := svc.Stats(); st.BoundsReuses != 1 || st.SolverRuns != 1 {
		t.Fatalf("BoundsReuses=%d SolverRuns=%d, want 1/1", st.BoundsReuses, st.SolverRuns)
	}
}

// TestOptimalRefutationsFeedDecideJobs: widths refuted by an optimal
// race must answer a later plain decide job at that width straight
// from the store's bounds — no solver run at all.
func TestOptimalRefutationsFeedDecideJobs(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	ctx := context.Background()

	opt := svc.Submit(ctx, Request{H: cycle(12), K: 3, Mode: ModeOptimal})
	if opt.Err != nil || !opt.OK || opt.Width != 2 {
		t.Fatalf("optimal: ok=%v width=%d err=%v", opt.OK, opt.Width, opt.Err)
	}
	// The race refuted width 1 (LB=2): a decide job at K=1 is a
	// width-level negative hit.
	dec := svc.Submit(ctx, Request{H: cycle(12), K: 1})
	if dec.Err != nil || dec.OK {
		t.Fatalf("decide: ok=%v err=%v", dec.OK, dec.Err)
	}
	if !dec.CacheHit || !dec.CacheShared {
		t.Fatalf("decide job should reuse the race's refutation: %+v", dec)
	}
	if dec.Stats.Candidates != 0 {
		t.Fatalf("decide searched %d candidates despite a cached refutation", dec.Stats.Candidates)
	}
	// And a decide at K=2 is a positive hit off the race's witness.
	yes := svc.Submit(ctx, Request{H: cycle(12), K: 2})
	if !yes.OK || !yes.CacheHit {
		t.Fatalf("decide K=2 should hit the race's cached witness: %+v", yes)
	}
	if err := decomp.CheckHD(yes.Decomp); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want 1 (only the race searched)", st.SolverRuns)
	}
}

// TestMemoTablesSurviveTimeouts: when a job times out (so no
// width-level bound is banked), its partially filled negative-memo
// table still exists and is shared with the next request at that
// width — the state-level cache still matters exactly where the
// width-level one cannot answer.
func TestMemoTablesSurviveTimeouts(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 2})
	defer svc.Close()
	ctx := context.Background()
	heavy := grid(8)

	first := svc.Submit(ctx, Request{H: heavy, K: 4, Timeout: 30 * time.Millisecond})
	if first.Err == nil {
		t.Skip("heavy instance solved within 30ms; timeout path not exercised")
	}
	if _, ok := svc.Store().Bounds(heavy.ContentHash()); ok {
		t.Fatal("a timed-out decide job must not bank width bounds")
	}
	second := svc.Submit(ctx, Request{H: heavy, K: 4, Timeout: 30 * time.Millisecond})
	if !second.CacheShared {
		t.Fatalf("second job should find the first job's memo table: %+v", second)
	}
}

// TestOptimalUnderConcurrentLoad: optimal and decide jobs racing
// together must stay within the global token budget and all answer
// correctly — the serving-layer guarantee the ISSUE's acceptance
// criterion checks under -race.
func TestOptimalUnderConcurrentLoad(t *testing.T) {
	const budget = 3
	svc := New(Config{TokenBudget: budget, MaxConcurrent: 8, MaxQueue: 256})
	defer svc.Close()

	type job struct {
		req       Request
		wantOK    bool
		wantWidth int // 0 = don't check
	}
	jobs := []job{
		{Request{H: cycle(16), K: 4, Mode: ModeOptimal}, true, 2},
		{Request{H: cylinderH(8), K: 5, Mode: ModeOptimal, MaxProbes: 4}, true, 3},
		{Request{H: grid(3), K: 2}, true, 0},
		{Request{H: cycle(24), K: 1}, false, 0},
	}
	const rounds = 6
	results := make([]Result, rounds*len(jobs))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := range jobs {
			wg.Add(1)
			go func(slot int, j job) {
				defer wg.Done()
				results[slot] = svc.Submit(context.Background(), j.req)
			}(r*len(jobs)+i, jobs[i])
		}
	}
	wg.Wait()

	for idx, res := range results {
		j := jobs[idx%len(jobs)]
		if res.Err != nil {
			t.Fatalf("job %d: %v", idx, res.Err)
		}
		if res.OK != j.wantOK {
			t.Fatalf("job %d: ok=%v want %v", idx, res.OK, j.wantOK)
		}
		if j.wantWidth > 0 && res.Width != j.wantWidth {
			t.Fatalf("job %d: width=%d want %d", idx, res.Width, j.wantWidth)
		}
		if res.OK {
			if err := decomp.CheckHD(res.Decomp); err != nil {
				t.Fatalf("job %d: %v", idx, err)
			}
		}
	}
	st := svc.Stats()
	if st.TokensHighWater > budget {
		t.Fatalf("token budget exceeded under racing load: %d > %d", st.TokensHighWater, budget)
	}
	if st.TokensInUse != 0 {
		t.Fatalf("tokens leaked: %d in use after drain", st.TokensInUse)
	}
	if st.OptimalJobs != 2*rounds {
		t.Fatalf("OptimalJobs=%d, want %d", st.OptimalJobs, 2*rounds)
	}
}

// TestBoundsMergeThroughService: bounds written by jobs obey the merge
// rules end to end — the lower bound only rises, the witnessed upper
// bound only falls (unit-level merge semantics live in internal/store).
func TestBoundsMergeThroughService(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	ctx := context.Background()
	h := cycle(12) // hw = 2
	hash := h.ContentHash()

	// A decide "no" at K=1 raises LB to 2.
	if res := svc.Submit(ctx, Request{H: h, K: 1}); res.Err != nil || res.OK {
		t.Fatalf("decide K=1: ok=%v err=%v", res.OK, res.Err)
	}
	b, ok := svc.Store().Bounds(hash)
	if !ok || b.LB != 2 || b.UB != 0 {
		t.Fatalf("after refutation: %+v ok=%v, want LB=2 UB=0", b, ok)
	}

	// A decide "yes" at K=3 witnesses some width ≤ 3; UB drops.
	if res := svc.Submit(ctx, Request{H: h, K: 3}); res.Err != nil || !res.OK {
		t.Fatalf("decide K=3: ok=%v err=%v", res.OK, res.Err)
	}
	b, _ = svc.Store().Bounds(hash)
	if b.LB != 2 || b.UB < 2 || b.UB > 3 {
		t.Fatalf("after witness: %+v, want LB=2, UB in [2,3]", b)
	}

	// The optimal job pins the width exactly; LB never regressed.
	if res := svc.Submit(ctx, Request{H: h, K: 4, Mode: ModeOptimal}); res.Err != nil || res.Width != 2 {
		t.Fatalf("optimal: width=%d err=%v", res.Width, res.Err)
	}
	b, _ = svc.Store().Bounds(hash)
	if b.LB != 2 || b.UB != 2 {
		t.Fatalf("after optimal: %+v, want LB=UB=2", b)
	}
}

// TestAdmissionControl: with one slot and a one-deep queue, once a slow
// job runs and another waits, further submissions must be rejected
// immediately with ErrOverloaded.
func TestAdmissionControl(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 1, MaxQueue: 1})
	defer svc.Close()

	// Heavy instance: the search cannot finish before we cancel it.
	slow := grid(8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Submit(ctx, Request{H: slow, K: 4, NoSharedMemo: true})
		}()
	}
	// Wait until one job holds the slot and the other fills the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.Running == 1 && st.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not settle into run+wait: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	const flood = 5
	for i := 0; i < flood; i++ {
		if res := svc.Submit(ctx, Request{H: slow, K: 4, NoSharedMemo: true}); res.Err != ErrOverloaded {
			t.Fatalf("flood submission %d: err=%v, want ErrOverloaded", i, res.Err)
		}
	}

	// A simultaneous burst must not slip past the queue bound either
	// (the check is add-then-test, not check-then-act): the queue is
	// full, so every one of these must be rejected.
	const burst = 64
	var rejected atomic.Int64
	var burstWG sync.WaitGroup
	for i := 0; i < burst; i++ {
		burstWG.Add(1)
		go func() {
			defer burstWG.Done()
			if svc.Submit(ctx, Request{H: slow, K: 4, NoSharedMemo: true}).Err == ErrOverloaded {
				rejected.Add(1)
			}
		}()
	}
	burstWG.Wait()
	if got := rejected.Load(); got != burst {
		t.Fatalf("burst: %d of %d rejected, want all", got, burst)
	}

	cancel()
	wg.Wait()
	if st := svc.Stats(); st.Rejected != flood+burst {
		t.Fatalf("stats.Rejected=%d, want %d", st.Rejected, flood+burst)
	}
}

// TestPerJobTimeout: a hopeless deadline must surface the context error
// without wedging the service.
func TestPerJobTimeout(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 2})
	defer svc.Close()

	res := svc.Submit(context.Background(), Request{H: grid(5), K: 3, Timeout: time.Microsecond})
	if res.Err == nil {
		t.Skip("instance solved within a microsecond; timeout not exercised")
	}
	if res.OK {
		t.Fatal("timed-out job cannot report OK")
	}
	// The service must still serve after a timeout.
	ok := svc.Submit(context.Background(), Request{H: cycle(6), K: 2})
	if ok.Err != nil || !ok.OK {
		t.Fatalf("post-timeout job: ok=%v err=%v", ok.OK, ok.Err)
	}
	if st := svc.Stats(); st.Failed == 0 {
		t.Fatal("timeout not counted as failed")
	}
}

// TestTimeoutCannotBeEscaped: a negative or oversized per-job timeout
// must not bypass the service's DefaultTimeout cap.
func TestTimeoutCannotBeEscaped(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 2, DefaultTimeout: 20 * time.Millisecond})
	defer svc.Close()
	heavy := grid(8)
	for _, timeout := range []time.Duration{-1, time.Hour} {
		start := time.Now()
		res := svc.Submit(context.Background(), Request{H: heavy, K: 4, Timeout: timeout})
		if res.Err == nil {
			t.Fatalf("timeout %v: heavy job finished under the 20ms cap?!", timeout)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("timeout %v: job ran %v, cap did not apply", timeout, elapsed)
		}
	}
}

// TestBatchOrderAndStreaming: Batch preserves request order and handles
// mixed widths.
func TestBatch(t *testing.T) {
	svc := New(Config{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()

	reqs := []Request{
		{H: cycle(6), K: 2},
		{H: cycle(6), K: 1},
		{H: grid(3), K: 2},
		{H: cycle(10), K: 2},
	}
	want := []bool{true, false, true, true}
	results := svc.Batch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		if r.OK != want[i] {
			t.Fatalf("batch[%d]: ok=%v want %v", i, r.OK, want[i])
		}
	}
}

// TestCloseRejectsAndDrains: Close waits for running jobs and later
// submissions fail with ErrClosed.
func TestCloseRejectsAndDrains(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 2})
	done := make(chan Result, 1)
	go func() { done <- svc.Submit(context.Background(), Request{H: cycle(20), K: 2}) }()
	// Give the job a chance to be admitted before closing.
	for i := 0; i < 1000 && svc.Stats().Submitted == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	svc.Close()
	if res := svc.Submit(context.Background(), Request{H: cycle(6), K: 2}); res.Err != ErrClosed {
		t.Fatalf("submit after close: err=%v, want ErrClosed", res.Err)
	}
	if res := <-done; res.Err != nil || !res.OK {
		t.Fatalf("in-flight job: ok=%v err=%v", res.OK, res.Err)
	}
}

// TestStoreEviction: the LRU cap on cached graphs holds through the
// service configuration.
func TestStoreEviction(t *testing.T) {
	svc := New(Config{TokenBudget: 1, MaxConcurrent: 2, MemoMaxGraphs: 2})
	defer svc.Close()
	ctx := context.Background()
	for _, n := range []int{6, 8, 10, 12} {
		if res := svc.Submit(ctx, Request{H: cycle(n), K: 2}); res.Err != nil || !res.OK {
			t.Fatalf("cycle(%d): ok=%v err=%v", n, res.OK, res.Err)
		}
	}
	st := svc.Stats()
	if st.StoreEntries > 2 {
		t.Fatalf("store holds %d graphs, cap is 2", st.StoreEntries)
	}
	if st.StoreEvictions == 0 {
		t.Fatal("four graphs through a cap of two must evict")
	}
}

// TestTokenBudgetUnit exercises the budget directly.
func TestTokenBudgetUnit(t *testing.T) {
	b := NewTokenBudget(4)
	if got := b.TryAcquire(10); got != 4 {
		t.Fatalf("TryAcquire(10) = %d, want 4", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty = %d, want 0", got)
	}
	b.Release(4)
	if b.InUse() != 0 || b.HighWater() != 4 {
		t.Fatalf("InUse=%d HighWater=%d", b.InUse(), b.HighWater())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	b.Release(1)
}
