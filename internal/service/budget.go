package service

import (
	"fmt"
	"sync/atomic"
)

// TokenBudget is a process-global pool of extra-worker tokens shared by
// every job the service runs. It implements logk.TokenSource, so each
// Solver's parallel search splits draw from this one pool instead of
// assuming it owns all cores: the total number of extra search
// goroutines across all concurrent decompositions never exceeds Size.
type TokenBudget struct {
	size  int64
	avail atomic.Int64

	// highWater tracks the maximum number of tokens simultaneously lent
	// out, so tests and /stats can verify the bound is respected.
	highWater atomic.Int64
}

// NewTokenBudget returns a budget of n tokens (n ≥ 0).
func NewTokenBudget(n int) *TokenBudget {
	if n < 0 {
		n = 0
	}
	b := &TokenBudget{size: int64(n)}
	b.avail.Store(int64(n))
	return b
}

// TryAcquire implements logk.TokenSource.
func (b *TokenBudget) TryAcquire(max int) int {
	if max <= 0 {
		return 0
	}
	for {
		cur := b.avail.Load()
		if cur <= 0 {
			return 0
		}
		n := int64(max)
		if n > cur {
			n = cur
		}
		if !b.avail.CompareAndSwap(cur, cur-n) {
			continue
		}
		inUse := b.size - (cur - n)
		for {
			hw := b.highWater.Load()
			if inUse <= hw || b.highWater.CompareAndSwap(hw, inUse) {
				break
			}
		}
		return int(n)
	}
}

// Release implements logk.TokenSource.
func (b *TokenBudget) Release(n int) {
	if n <= 0 {
		return
	}
	if now := b.avail.Add(int64(n)); now > b.size {
		panic(fmt.Sprintf("service: token budget over-released (%d tokens available, size %d)", now, b.size))
	}
}

// Size returns the total number of tokens in the budget.
func (b *TokenBudget) Size() int { return int(b.size) }

// InUse returns the number of tokens currently lent out.
func (b *TokenBudget) InUse() int { return int(b.size - b.avail.Load()) }

// HighWater returns the maximum number of tokens ever simultaneously
// lent out.
func (b *TokenBudget) HighWater() int { return int(b.highWater.Load()) }
