package service

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/logk"
)

// memoStore caches negative-memo tables across requests, keyed by
// (hypergraph content hash, width bound K). Memo keys are pure content
// (ext.Graph.MemoKey) and the content hash pins the edge-id space, so a
// table written by one request is sound for every later request on a
// structurally identical hypergraph with the same K — repeated or
// similar workloads skip search states already proven exhausted.
type memoStore struct {
	mu        sync.Mutex
	maxGraphs int
	maxEntry  int64
	tables    map[string]*memoTable
	clock     int64 // LRU tick

	reuses atomic.Int64 // lookups that found an existing table
}

func newMemoStore(maxGraphs int, maxEntriesPerGraph int64) *memoStore {
	return &memoStore{
		maxGraphs: maxGraphs,
		maxEntry:  maxEntriesPerGraph,
		tables:    make(map[string]*memoTable),
	}
}

// memoTable is one cached table: a sharded memo plus an advisory entry
// cap so a pathological workload cannot grow the cache without bound.
// It implements logk.MemoBackend.
type memoTable struct {
	memo    logk.ShardedMemo
	entries atomic.Int64
	max     int64
	lastUse atomic.Int64
}

// Lookup implements logk.MemoBackend.
func (t *memoTable) Lookup(key []byte) bool { return t.memo.Lookup(key) }

// Insert implements logk.MemoBackend. Inserts are dropped once the
// table is full; the memo is a pure acceleration, so dropping is safe.
func (t *memoTable) Insert(key string) {
	if t.entries.Load() >= t.max {
		return
	}
	if t.memo.Add(key) {
		t.entries.Add(1)
	}
}

// get returns the table for (hash, k), creating it if needed, and
// reports whether it already existed. Creation may evict the least
// recently used table beyond the graph cap; jobs holding a pointer to
// an evicted table keep using it safely, the store just forgets it.
func (m *memoStore) get(hash string, k int) (*memoTable, bool) {
	key := hash + ":" + strconv.Itoa(k)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	if t, ok := m.tables[key]; ok {
		t.lastUse.Store(m.clock)
		m.reuses.Add(1)
		return t, true
	}
	if len(m.tables) >= m.maxGraphs {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, t := range m.tables {
			if lu := t.lastUse.Load(); lu < oldest {
				oldest, oldestKey = lu, k
			}
		}
		delete(m.tables, oldestKey)
	}
	t := &memoTable{max: m.maxEntry}
	t.lastUse.Store(m.clock)
	m.tables[key] = t
	return t, false
}

// counts returns the number of cached tables and total memoised entries.
func (m *memoStore) counts() (graphs int, entries int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tables {
		entries += t.entries.Load()
	}
	return len(m.tables), entries
}
