package service

import (
	"context"
	"testing"

	"repro/internal/decomp"
	"repro/internal/store"
)

// TestDiskBackedServiceWarmRestart is the service-level warm-restart
// contract: submit through a StoreDir-backed service, close it, reopen
// on the same directory, and every repeat submission must be a cache
// hit — zero solver runs, the witness re-validated from disk.
func TestDiskBackedServiceWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	graphs := map[string]int{"c12": 12, "c16": 16, "c20": 20}

	svc, err := Open(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range graphs {
		r := svc.Submit(ctx, Request{H: cycle(n), K: 2})
		if r.Err != nil || !r.OK {
			t.Fatalf("%s cold: ok=%v err=%v", name, r.OK, r.Err)
		}
	}
	// A refutation must persist too: a 3-uniform-ish structure a width-1
	// bound cannot cover.
	if r := svc.Submit(ctx, Request{H: grid(3), K: 1}); r.Err != nil || r.OK {
		t.Fatalf("grid cold refutation: ok=%v err=%v", r.OK, r.Err)
	}
	cold := svc.Stats()
	if cold.SolverRuns != int64(len(graphs))+1 {
		t.Fatalf("cold SolverRuns=%d, want %d", cold.SolverRuns, len(graphs)+1)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc, err = Open(Config{StoreDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc.Close()
	for name, n := range graphs {
		r := svc.Submit(ctx, Request{H: cycle(n), K: 2})
		if r.Err != nil || !r.OK {
			t.Fatalf("%s warm: ok=%v err=%v", name, r.OK, r.Err)
		}
		if !r.CacheHit {
			t.Fatalf("%s warm submission missed the disk tier", name)
		}
		if r.Decomp == nil || decomp.CheckHD(r.Decomp) != nil || decomp.CheckWidth(r.Decomp, 2) != nil {
			t.Fatalf("%s warm witness invalid", name)
		}
	}
	if r := svc.Submit(ctx, Request{H: grid(3), K: 1}); r.Err != nil || r.OK || !r.CacheHit {
		t.Fatalf("grid warm refutation: ok=%v hit=%v err=%v", r.OK, r.CacheHit, r.Err)
	}
	warm := svc.Stats()
	if warm.SolverRuns != 0 {
		t.Fatalf("warm restart ran %d solvers, want 0", warm.SolverRuns)
	}
	if warm.PositiveHits != int64(len(graphs)) || warm.NegativeHits != 1 {
		t.Fatalf("warm hits: +%d -%d, want +%d -1", warm.PositiveHits, warm.NegativeHits, len(graphs))
	}
}

// TestOpenPrefersInjectedStore: an explicit Config.Store wins over
// StoreDir, and the service does not close a backend it was handed.
func TestOpenPrefersInjectedStore(t *testing.T) {
	mem := store.NewSharded(store.Config{})
	svc, err := Open(Config{Store: mem, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Store() != store.Backend(mem) {
		t.Fatal("injected store not used")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// The injected backend must still be usable after the service closed.
	mem.MergeBounds("g", store.Bounds{LB: 2})
	if _, ok := mem.Bounds("g"); !ok {
		t.Fatal("service closed a backend it does not own")
	}
}

// TestOpenBadStoreDir: an unopenable directory fails Open instead of
// silently degrading to memory-only.
func TestOpenBadStoreDir(t *testing.T) {
	if _, err := Open(Config{StoreDir: "/dev/null/not-a-dir"}); err == nil {
		t.Fatal("Open with an impossible StoreDir must fail")
	}
}
