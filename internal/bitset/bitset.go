// Package bitset provides dense, fixed-capacity bit sets used throughout
// the decomposition algorithms to represent sets of hypergraph vertices
// and sets of edge indices.
//
// A Set is a little-endian slice of 64-bit words. All binary operations
// require operands created with the same capacity; this invariant is
// cheap to maintain because every set in a decomposition run is sized to
// the vertex count (or edge count) of one fixed hypergraph.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to create a set that can hold elements.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set able to hold elements 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a set of capacity n containing the given elements.
func FromSlice(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Set(e)
	}
	return s
}

// Cap reports the capacity of the set (the n passed to New).
func (s *Set) Cap() int { return s.n }

// Set adds element i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear removes element i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether element i is present.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements in the set (population count).
func (s *Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o (same capacity required).
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// Reset removes all elements.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// InPlaceUnion adds all elements of o to s.
func (s *Set) InPlaceUnion(o *Set) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// InPlaceIntersect removes from s every element not in o.
func (s *Set) InPlaceIntersect(o *Set) {
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// InPlaceDiff removes from s every element of o.
func (s *Set) InPlaceDiff(o *Set) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Union returns s ∪ o as a new set.
func (s *Set) Union(o *Set) *Set {
	c := s.Clone()
	c.InPlaceUnion(o)
	return c
}

// Intersect returns s ∩ o as a new set.
func (s *Set) Intersect(o *Set) *Set {
	c := s.Clone()
	c.InPlaceIntersect(o)
	return c
}

// Diff returns s \ o as a new set.
func (s *Set) Diff(o *Set) *Set {
	c := s.Clone()
	c.InPlaceDiff(o)
	return c
}

// Intersects reports whether s ∩ o is non-empty.
func (s *Set) Intersects(o *Set) bool {
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectsDiff reports whether (s ∩ o) \ u is non-empty, i.e. whether s
// and o share an element outside u. This is the [U]-adjacency test of
// Definition 3.2 and is the hottest operation in component computation.
func (s *Set) IntersectsDiff(o, u *Set) bool {
	for i, w := range o.words {
		if s.words[i]&w&^u.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every element of s in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elements returns the members of s in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Next returns the smallest element >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits) << (uint(i) % wordBits)
	for {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// Hash returns an FNV-1a style hash of the set contents, suitable for use
// as a map key component. Sets with equal contents hash equally.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * uint(b))) & 0xff
			h *= prime
		}
	}
	return h
}

// AppendKey appends a canonical binary encoding of s to dst. Two sets of
// the same capacity produce equal encodings iff they are equal.
func (s *Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders the set as "{1,4,7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
