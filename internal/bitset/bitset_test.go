package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestNewZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero-capacity set should be empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("Test(%d) false after Set", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("Test(64) true after Clear")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

func TestTestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Test(-1) || s.Test(10) || s.Test(1000) {
		t.Fatal("out-of-range Test should be false")
	}
}

func TestFromSliceAndElements(t *testing.T) {
	in := []int{5, 3, 99, 64}
	s := FromSlice(100, in)
	got := s.Elements()
	want := []int{3, 5, 64, 99}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(70, []int{1, 65})
	c := s.Clone()
	c.Set(2)
	if s.Test(2) {
		t.Fatal("Clone shares storage with original")
	}
	s.Clear(1)
	if !c.Test(1) {
		t.Fatal("original mutation leaked into clone")
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := FromSlice(128, []int{1, 2, 3, 100})
	b := FromSlice(128, []int{3, 4, 100, 127})

	if got := a.Union(b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 100, 127}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Elements(); !reflect.DeepEqual(got, []int{3, 100}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Diff(b).Elements(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Diff = %v", got)
	}
}

func TestInPlaceOpsMatchPure(t *testing.T) {
	a := FromSlice(200, []int{0, 50, 150, 199})
	b := FromSlice(200, []int{50, 51, 199})

	u := a.Clone()
	u.InPlaceUnion(b)
	if !u.Equal(a.Union(b)) {
		t.Fatal("InPlaceUnion mismatch")
	}
	i := a.Clone()
	i.InPlaceIntersect(b)
	if !i.Equal(a.Intersect(b)) {
		t.Fatal("InPlaceIntersect mismatch")
	}
	d := a.Clone()
	d.InPlaceDiff(b)
	if !d.Equal(a.Diff(b)) {
		t.Fatal("InPlaceDiff mismatch")
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice(128, []int{10, 70})
	b := FromSlice(128, []int{70})
	c := FromSlice(128, []int{11, 71})
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
}

func TestIntersectsDiff(t *testing.T) {
	a := FromSlice(64, []int{1, 2, 3})
	b := FromSlice(64, []int{3, 4})
	u := FromSlice(64, []int{3})
	// a ∩ b = {3}, and 3 ∈ u, so no shared element outside u.
	if a.IntersectsDiff(b, u) {
		t.Fatal("IntersectsDiff should be false when overlap ⊆ u")
	}
	b.Set(2)
	if !a.IntersectsDiff(b, u) {
		t.Fatal("IntersectsDiff should be true: 2 is shared and outside u")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice(64, []int{1, 2})
	b := FromSlice(64, []int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Fatal("{1,2} ⊆ {1,2,3}")
	}
	if b.SubsetOf(a) {
		t.Fatal("{1,2,3} ⊄ {1,2}")
	}
	if !New(64).SubsetOf(a) {
		t.Fatal("∅ ⊆ anything")
	}
}

func TestEqualDifferentCapacity(t *testing.T) {
	if New(10).Equal(New(20)) {
		t.Fatal("sets of different capacity must not be Equal")
	}
}

func TestNext(t *testing.T) {
	s := FromSlice(200, []int{5, 64, 130})
	cases := []struct{ from, want int }{
		{-5, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {131, -1}, {500, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestHashEqualSets(t *testing.T) {
	a := FromSlice(128, []int{1, 64, 127})
	b := FromSlice(128, []int{127, 1, 64})
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets must hash equally")
	}
	b.Set(2)
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision between trivially different sets (suspicious)")
	}
}

func TestAppendKeyRoundTrip(t *testing.T) {
	a := FromSlice(128, []int{0, 77})
	b := FromSlice(128, []int{0, 77})
	c := FromSlice(128, []int{0, 78})
	ka := string(a.AppendKey(nil))
	kb := string(b.AppendKey(nil))
	kc := string(c.AppendKey(nil))
	if ka != kb {
		t.Fatal("equal sets produced different keys")
	}
	if ka == kc {
		t.Fatal("different sets produced equal keys")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1,3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestResetAndCopyFrom(t *testing.T) {
	a := FromSlice(64, []int{1, 2})
	a.Reset()
	if !a.IsEmpty() {
		t.Fatal("Reset did not empty the set")
	}
	b := FromSlice(64, []int{7})
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
}

// --- property-based tests -------------------------------------------------

// randSet is a helper: a reproducible random subset of [0,n).
func randSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

// setTriple generates three random same-capacity sets for quick.Check.
type setTriple struct{ a, b, c *Set }

func (setTriple) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(257)
	return reflect.ValueOf(setTriple{randSet(r, n), randSet(r, n), randSet(r, n)})
}

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	// Union is commutative; intersection distributes over union;
	// diff then union restores the superset; De Morgan via diff.
	prop := func(tr setTriple) bool {
		a, b, c := tr.a, tr.b, tr.c
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		lhs := a.Intersect(b.Union(c))
		rhs := a.Intersect(b).Union(a.Intersect(c))
		if !lhs.Equal(rhs) {
			return false
		}
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		// Intersects consistency
		if a.Intersects(b) != !a.Intersect(b).IsEmpty() {
			return false
		}
		// IntersectsDiff(b, c) == !((a∩b)\c).IsEmpty()
		if a.IntersectsDiff(b, c) != !a.Intersect(b).Diff(c).IsEmpty() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickElementsSortedUnique(t *testing.T) {
	prop := func(tr setTriple) bool {
		e := tr.a.Elements()
		if !sort.IntsAreSorted(e) {
			return false
		}
		for i := 1; i < len(e); i++ {
			if e[i] == e[i-1] {
				return false
			}
		}
		return len(e) == tr.a.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNextIteratesAll(t *testing.T) {
	prop := func(tr setTriple) bool {
		var got []int
		for i := tr.a.Next(0); i >= 0; i = tr.a.Next(i + 1) {
			got = append(got, i)
		}
		want := tr.a.Elements()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectsDiff(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y, u := randSet(r, 1024), randSet(r, 1024), randSet(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectsDiff(y, u)
	}
}

func BenchmarkInPlaceUnion(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x, y := randSet(r, 1024), randSet(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.InPlaceUnion(y)
	}
}
