// Package detk implements det-k-decomp (Gottlob & Samer 2008), the
// sequential state-of-the-art HD algorithm the paper compares against as
// NewDetKDecomp [9], and which log-k-decomp's hybrid mode switches to on
// small subproblems.
//
// The algorithm constructs an HD strictly top-down: given a component C
// and the connector Conn to the already-built part above, it guesses a
// λ-label covering Conn that makes progress (covers at least one edge of
// C), derives the bag χ(u) = ∪λ ∩ (V(C) ∪ Conn), and recurses into the
// [χ(u)]-components. Its performance relies on memoising failed and
// successful (component, connector) states — the caching that the paper
// identifies as the obstacle to parallelising it.
//
// This implementation is extended to handle extended subhypergraphs
// (special edges), which the original does not need but the hybrid mode
// of log-k-decomp does: a special edge is covered by attaching a
// dedicated leaf below the node whose bag contains it.
package detk

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/decomp"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// Solver runs det-k-decomp for one hypergraph and one width bound.
// A Solver is not safe for concurrent use.
type Solver struct {
	H *hypergraph.Hypergraph
	K int

	split    *ext.Splitter
	negCache map[string]struct{}
	posCache map[string]*decomp.Node

	// Stats are populated during Decompose for instrumentation.
	Stats Stats

	ctx      context.Context
	ctxCheck int
}

// Stats reports search effort counters.
type Stats struct {
	Candidates int64 // λ-labels tried
	CacheHits  int64
	CacheMiss  int64
	MaxDepth   int
}

// New returns a solver for hypergraph h and width bound k.
func New(h *hypergraph.Hypergraph, k int) *Solver {
	return &Solver{
		H:        h,
		K:        k,
		split:    ext.NewSplitter(h),
		negCache: make(map[string]struct{}),
		posCache: make(map[string]*decomp.Node),
	}
}

// Decompose checks whether hw(H) ≤ k and, if so, returns a width-≤k HD.
// The context cancels long searches; ctx.Err() is returned in that case.
func (s *Solver) Decompose(ctx context.Context) (*decomp.Decomp, bool, error) {
	root := ext.Root(s.H)
	conn := s.H.NewVertexSet()
	node, ok, err := s.DecomposeExt(ctx, root, conn)
	if err != nil || !ok {
		return nil, false, err
	}
	return &decomp.Decomp{H: s.H, Root: node}, true, nil
}

// DecomposeExt solves the extended subhypergraph g with interface conn.
// It returns the root of an HD-fragment per Definition 3.3, in which
// every special edge of g appears as exactly one placeholder leaf.
func (s *Solver) DecomposeExt(ctx context.Context, g *ext.Graph, conn *bitset.Set) (*decomp.Node, bool, error) {
	s.ctx = ctx
	return s.rec(g, conn, 1)
}

func (s *Solver) rec(g *ext.Graph, conn *bitset.Set, depth int) (*decomp.Node, bool, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, false, err
	}
	if depth > s.Stats.MaxDepth {
		s.Stats.MaxDepth = depth
	}
	// Base cases (mirroring lines 12-15 of Algorithm 1 plus the negative
	// base case of Appendix C).
	if len(g.Edges) == 0 {
		switch len(g.Specials) {
		case 0:
			return nil, false, nil // nothing to cover: caller never passes this
		case 1:
			sp := g.Specials[0]
			return decomp.NewSpecialLeaf(sp.ID, sp.Vertices), true, nil
		default:
			return nil, false, nil // ≥2 specials need a fresh edge: impossible
		}
	}
	if len(g.Edges) <= s.K && len(g.Specials) == 0 {
		bag := s.H.Union(g.Edges)
		return decomp.NewNode(g.Edges, bag), true, nil
	}

	key := string(g.KeyStrict(conn, nil))
	if _, bad := s.negCache[key]; bad {
		s.Stats.CacheHits++
		return nil, false, nil
	}
	if n, ok := s.posCache[key]; ok {
		s.Stats.CacheHits++
		return cloneNode(n), true, nil
	}
	s.Stats.CacheMiss++

	node, ok, err := s.search(g, conn, depth)
	if err != nil {
		return nil, false, err
	}
	if ok {
		s.posCache[key] = cloneNode(node)
		return node, true, nil
	}
	s.negCache[key] = struct{}{}
	return nil, false, nil
}

// search enumerates λ-labels for the next node below conn.
func (s *Solver) search(g *ext.Graph, conn *bitset.Set, depth int) (*decomp.Node, bool, error) {
	// Candidate pool: edges of H touching V(g) ∪ conn. Edges disjoint
	// from the subproblem contribute nothing to the bag. Every λ chosen
	// here roots the fragment covering g, hence sits above the leaf of
	// every special of g — so edges touching the specials' forbidden
	// vertices are excluded (see ext.Special.Forbidden).
	scope := g.Vertices().Union(conn)
	forbidden := g.ForbiddenUnion()
	var pool []int
	for e := 0; e < s.H.NumEdges(); e++ {
		if !s.H.Edge(e).Intersects(scope) {
			continue
		}
		if forbidden != nil && s.H.Edge(e).Intersects(forbidden) {
			continue
		}
		pool = append(pool, e)
	}
	lambda := make([]int, 0, s.K)
	cover := s.H.NewVertexSet()

	var try func(startIdx int) (*decomp.Node, bool, error)
	try = func(startIdx int) (*decomp.Node, bool, error) {
		if len(lambda) > 0 {
			s.Stats.Candidates++
			s.ctxCheck++
			if s.ctxCheck&0x3FF == 0 {
				if err := s.ctx.Err(); err != nil {
					return nil, false, err
				}
			}
			if node, ok, err := s.tryLambda(g, conn, cover, lambda, depth); err != nil || ok {
				return node, ok, err
			}
		}
		if len(lambda) == s.K {
			return nil, false, nil
		}
		for i := startIdx; i < len(pool); i++ {
			e := pool[i]
			lambda = append(lambda, e)
			saved := cover.Clone()
			cover.InPlaceUnion(s.H.Edge(e))
			node, ok, err := try(i + 1)
			lambda = lambda[:len(lambda)-1]
			cover.CopyFrom(saved)
			if err != nil || ok {
				return node, ok, err
			}
		}
		return nil, false, nil
	}
	return try(0)
}

// tryLambda checks one candidate λ-label and recurses on success.
func (s *Solver) tryLambda(g *ext.Graph, conn *bitset.Set, cover *bitset.Set, lambda []int, depth int) (*decomp.Node, bool, error) {
	// Connector must be fully covered (connectedness with the parent).
	if !conn.SubsetOf(cover) {
		return nil, false, nil
	}
	// Progress: some edge of the component must be fully covered
	// (normal-form condition 2).
	progress := false
	for _, e := range g.Edges {
		if s.H.Edge(e).SubsetOf(cover) {
			progress = true
			break
		}
	}
	if !progress {
		return nil, false, nil
	}
	// Bag per Gottlob & Samer: χ(u) = ∪λ ∩ (V(C) ∪ Conn).
	chi := cover.Intersect(g.Vertices().Union(conn))

	comps := s.split.Components(g, chi)
	children := make([]*decomp.Node, 0, len(comps)+len(g.Specials))
	for _, c := range comps {
		childConn := c.Vertices().Intersect(chi)
		child, ok, err := s.rec(c, childConn, depth+1)
		if err != nil || !ok {
			return nil, ok, err
		}
		children = append(children, child)
	}
	// Specials covered by this bag get dedicated leaves.
	for _, sp := range g.SpecialsCoveredBy(chi) {
		children = append(children, decomp.NewSpecialLeaf(sp.ID, sp.Vertices))
	}
	node := decomp.NewNode(lambda, chi)
	node.Children = children
	return node, true, nil
}

// cloneNode deep-copies a fragment so cached positives can be grafted
// into multiple trees without aliasing.
func cloneNode(n *decomp.Node) *decomp.Node {
	c := &decomp.Node{
		Lambda:    append([]int(nil), n.Lambda...),
		SpecialID: n.SpecialID,
		Bag:       n.Bag.Clone(),
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, cloneNode(ch))
	}
	return c
}
