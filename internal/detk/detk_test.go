package detk

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bitset"
	"repro/internal/decomp"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func TestCycleWidths(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{3, 4, 8, 12} {
		h := cycle(n)
		if _, ok, err := New(h, 1).Decompose(ctx); err != nil || ok {
			t.Fatalf("cycle(%d) k=1: ok=%v err=%v, want rejection", n, ok, err)
		}
		d, ok, err := New(h, 2).Decompose(ctx)
		if err != nil || !ok {
			t.Fatalf("cycle(%d) k=2: ok=%v err=%v", n, ok, err)
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("cycle(%d): invalid HD: %v", n, err)
		}
		if err := decomp.CheckWidth(d, 2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAcyclicWidthOne(t *testing.T) {
	var b hypergraph.Builder
	b.MustAddEdge("center", "a", "b", "c")
	b.MustAddEdge("s1", "a", "p")
	b.MustAddEdge("s2", "b", "q")
	h := b.Build()
	d, ok, err := New(h, 1).Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 1 {
		t.Fatalf("width = %d, want 1", d.Width())
	}
}

func TestCacheIsUsed(t *testing.T) {
	h := cycle(14)
	s := New(h, 2)
	_, ok, err := s.Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if s.Stats.CacheHits == 0 && s.Stats.CacheMiss == 0 {
		t.Fatal("cache counters never moved")
	}
}

func TestDecomposeExtWithSpecial(t *testing.T) {
	// The extended subhypergraph of Call 1.2 from Appendix B:
	// E' = {R3,R4,R5}, Sp = {s1 = {x1,x6,x7}}, Conn = {x1,x3}.
	h := cycle(10)
	n := h.NumVertices()
	s1 := ext.Special{ID: 77, Vertices: bitset.FromSlice(n, []int{0, 5, 6})}
	g := ext.NewGraph(h, []int{2, 3, 4}, []ext.Special{s1})
	conn := bitset.FromSlice(n, []int{0, 2})

	s := New(h, 2)
	node, ok, err := s.DecomposeExt(context.Background(), g, conn)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	d := &decomp.Decomp{H: h, Root: node}
	if err := decomp.CheckExtended(d, g, conn); err != nil {
		t.Fatalf("invalid extended HD: %v\n%s", err, d)
	}
}

func TestDecomposeExtTwoSpecialsNoEdges(t *testing.T) {
	// No edges and two specials is unsatisfiable (negative base case).
	h := cycle(6)
	n := h.NumVertices()
	g := ext.NewGraph(h, nil, []ext.Special{
		{ID: 1, Vertices: bitset.FromSlice(n, []int{0, 1})},
		{ID: 2, Vertices: bitset.FromSlice(n, []int{3, 4})},
	})
	_, ok, err := New(h, 3).DecomposeExt(context.Background(), g, h.NewVertexSet())
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v, want clean rejection", ok, err)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Large enough that the search cannot finish before the first check.
	_, _, err := New(cycle(30), 2).Decompose(ctx)
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}

func TestRandomInstancesProduceValidHDs(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 30; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		var b hypergraph.Builder
		nv := 3 + r.Intn(7)
		ne := 2 + r.Intn(8)
		for e := 0; e < ne; e++ {
			arity := 1 + r.Intn(min(3, nv))
			seen := map[int]bool{}
			var names []string
			for len(names) < arity {
				v := r.Intn(nv)
				if !seen[v] {
					seen[v] = true
					names = append(names, "v"+strconv.Itoa(v))
				}
			}
			b.MustAddEdge("", names...)
		}
		h := b.Build()
		for k := 1; k <= 3; k++ {
			d, ok, err := New(h, k).Decompose(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			if err := decomp.CheckHD(d); err != nil {
				t.Fatalf("seed %d k=%d: %v\n%s", seed, k, err, h)
			}
			if err := decomp.CheckWidth(d, k); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
