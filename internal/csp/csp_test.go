package csp

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"testing"
)

func TestColoringCycleEven(t *testing.T) {
	// An even cycle is 2-colorable: exactly 2 solutions.
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}
	p := Coloring(edges, 2)
	res, err := Solve(context.Background(), p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions.Size() != 2 {
		t.Fatalf("even cycle 2-coloring: %d solutions, want 2", res.Solutions.Size())
	}
	if res.Width != 2 {
		t.Fatalf("cycle constraint graph width = %d, want 2", res.Width)
	}
}

func TestColoringCycleOddUnsat(t *testing.T) {
	// An odd cycle is not 2-colorable.
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	p := Coloring(edges, 2)
	res, err := Solve(context.Background(), p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions.Size() != 0 {
		t.Fatalf("odd cycle 2-coloring: %d solutions, want 0", res.Solutions.Size())
	}
}

func TestColoringTriangleThreeColors(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	p := Coloring(edges, 3)
	res, err := Solve(context.Background(), p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions.Size() != 6 {
		t.Fatalf("triangle 3-coloring: %d solutions, want 6 (=3!)", res.Solutions.Size())
	}
}

func TestSolveMatchesBacktrack(t *testing.T) {
	// Random-ish structured CSP: a chain of ternary constraints.
	var p Problem
	for i := 0; i < 4; i++ {
		vars := []string{"x" + strconv.Itoa(i), "x" + strconv.Itoa(i+1), "x" + strconv.Itoa(i+2)}
		var rows [][]int
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				for c := 0; c < 3; c++ {
					if (a+b+c)%2 == 0 {
						rows = append(rows, []int{a, b, c})
					}
				}
			}
		}
		p.AddConstraint(vars, rows)
	}
	res, err := Solve(context.Background(), &p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := SolveBacktrack(&p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions.Size() != len(bt) {
		t.Fatalf("decomposition solver found %d solutions, backtracking %d",
			res.Solutions.Size(), len(bt))
	}
	// Compare the actual assignment sets.
	vars := p.Variables()
	fromBT := map[string]bool{}
	for _, sol := range bt {
		fromBT[assignmentKey(sol, vars)] = true
	}
	proj, err := res.Solutions.Project(vars...)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range proj.Sorted() {
		sol := map[string]int{}
		for i, v := range vars {
			sol[v] = tup[i]
		}
		if !fromBT[assignmentKey(sol, vars)] {
			t.Fatalf("decomposition solver produced spurious solution %v", sol)
		}
	}
}

func assignmentKey(sol map[string]int, vars []string) string {
	s := ""
	for _, v := range vars {
		s += fmt.Sprintf("%s=%d;", v, sol[v])
	}
	return s
}

func TestBacktrackSimple(t *testing.T) {
	var p Problem
	p.AddConstraint([]string{"x", "y"}, [][]int{{0, 1}, {1, 0}})
	sols, err := SolveBacktrack(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
}

func TestVariablesSorted(t *testing.T) {
	var p Problem
	p.AddConstraint([]string{"z", "a"}, [][]int{{0, 0}})
	p.AddConstraint([]string{"m"}, [][]int{{1}})
	vars := p.Variables()
	if !sort.StringsAreSorted(vars) || len(vars) != 3 {
		t.Fatalf("Variables = %v", vars)
	}
}

func TestSolveErrors(t *testing.T) {
	var empty Problem
	if _, err := Solve(context.Background(), &empty, SolveOptions{}); err == nil {
		t.Fatal("empty problem should error")
	}
	if _, err := SolveBacktrack(&empty); err == nil {
		t.Fatal("empty problem should error in backtracking too")
	}
}

func TestWidthBoundExceeded(t *testing.T) {
	// K_8's constraint graph has hw 4 > MaxWidth 1.
	var edges [][2]string
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, [2]string{"v" + strconv.Itoa(i), "v" + strconv.Itoa(j)})
		}
	}
	p := Coloring(edges, 3)
	if _, err := Solve(context.Background(), p, SolveOptions{MaxWidth: 1}); err == nil {
		t.Fatal("width bound 1 on a clique should error")
	}
}
