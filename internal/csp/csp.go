// Package csp solves constraint satisfaction problems through hypertree
// decompositions, the second motivating application of the paper (§1):
// a CSP whose constraint hypergraph has bounded hypertree width is
// solvable in polynomial time by decomposing it and running Yannakakis
// over the bag relations. A plain backtracking solver serves as the
// correctness baseline.
package csp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/join"
	"repro/internal/logk"
)

// Constraint is a table constraint: the scope variables and the allowed
// value combinations.
type Constraint struct {
	Vars    []string
	Allowed [][]int
}

// Problem is a CSP given by table constraints. Every variable must occur
// in at least one constraint (matching the paper's convention that
// hypergraphs have no isolated vertices).
type Problem struct {
	Constraints []Constraint
}

// AddConstraint appends a table constraint.
func (p *Problem) AddConstraint(vars []string, allowed [][]int) {
	cp := Constraint{Vars: append([]string(nil), vars...)}
	for _, row := range allowed {
		cp.Allowed = append(cp.Allowed, append([]int(nil), row...))
	}
	p.Constraints = append(p.Constraints, cp)
}

// Variables returns the problem's variables in sorted order.
func (p *Problem) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Constraints {
		for _, v := range c.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// asQuery converts the CSP to a conjunctive query plus database: each
// constraint becomes a relation and an atom over its scope.
func (p *Problem) asQuery() (join.Query, join.Database, error) {
	if len(p.Constraints) == 0 {
		return join.Query{}, nil, fmt.Errorf("csp: no constraints")
	}
	db := join.Database{}
	var q join.Query
	for i, c := range p.Constraints {
		name := fmt.Sprintf("C%d", i)
		rel := join.NewRelation(c.Vars...)
		for _, row := range c.Allowed {
			rel.Add(row...)
		}
		db[name] = rel
		q.Atoms = append(q.Atoms, join.Atom{Relation: name, Vars: c.Vars})
	}
	return q, db, nil
}

// SolveOptions configures the decomposition-guided solver.
type SolveOptions struct {
	// MaxWidth bounds the width search (default 6).
	MaxWidth int
	// Workers is passed to log-k-decomp (default 1).
	Workers int
}

// Result reports the solving outcome.
type Result struct {
	// Solutions holds every satisfying assignment, as a relation over
	// all variables.
	Solutions *join.Relation
	// Width is the hypertree width used for evaluation.
	Width int
	// Decomp is the decomposition that guided evaluation.
	Decomp *decomp.Decomp
}

// Solve decomposes the constraint hypergraph (searching widths
// 1..MaxWidth with log-k-decomp) and evaluates the CSP with Yannakakis'
// algorithm over the decomposition.
func Solve(ctx context.Context, p *Problem, opts SolveOptions) (*Result, error) {
	if opts.MaxWidth < 1 {
		opts.MaxWidth = 6
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	q, db, err := p.asQuery()
	if err != nil {
		return nil, err
	}
	h, err := q.Hypergraph()
	if err != nil {
		return nil, err
	}
	var d *decomp.Decomp
	width := 0
	for k := 1; k <= opts.MaxWidth; k++ {
		s := logk.New(h, logk.Options{K: k, Workers: opts.Workers,
			Hybrid: logk.HybridWeightedCount, HybridThreshold: 20})
		dd, ok, err := s.Decompose(ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			d, width = dd, k
			break
		}
	}
	if d == nil {
		return nil, fmt.Errorf("csp: hypertree width exceeds %d", opts.MaxWidth)
	}
	sols, err := join.Evaluate(q, db, d)
	if err != nil {
		return nil, err
	}
	return &Result{Solutions: sols, Width: width, Decomp: d}, nil
}

// SolveBacktrack enumerates all solutions by chronological backtracking
// with forward constraint checks — the baseline used to validate the
// decomposition-guided solver in tests. Exponential; small inputs only.
func SolveBacktrack(p *Problem) ([]map[string]int, error) {
	vars := p.Variables()
	if len(vars) == 0 {
		return nil, fmt.Errorf("csp: no variables")
	}
	// Candidate values per variable: every value it takes in any allowed
	// tuple of any constraint mentioning it.
	domain := map[string][]int{}
	for _, c := range p.Constraints {
		for vi, v := range c.Vars {
			seen := map[int]bool{}
			for _, x := range domain[v] {
				seen[x] = true
			}
			for _, row := range c.Allowed {
				if !seen[row[vi]] {
					seen[row[vi]] = true
					domain[v] = append(domain[v], row[vi])
				}
			}
		}
	}
	for _, v := range vars {
		sort.Ints(domain[v])
	}

	assign := map[string]int{}
	var out []map[string]int

	consistent := func() bool {
		for _, c := range p.Constraints {
			// Check only constraints with fully assigned scopes partially:
			// a partial scope is consistent if some allowed row matches
			// the assigned positions.
			ok := false
			for _, row := range c.Allowed {
				match := true
				for vi, v := range c.Vars {
					if val, has := assign[v]; has && val != row[vi] {
						match = false
						break
					}
				}
				if match {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			sol := map[string]int{}
			for k, v := range assign {
				sol[k] = v
			}
			out = append(out, sol)
			return
		}
		v := vars[i]
		for _, val := range domain[v] {
			assign[v] = val
			if consistent() {
				rec(i + 1)
			}
			delete(assign, v)
		}
	}
	rec(0)
	return out, nil
}

// Coloring builds the k-coloring CSP of a graph given as vertex-name
// pairs: one binary "different colour" constraint per edge.
func Coloring(edges [][2]string, colors int) *Problem {
	var p Problem
	var allowed [][]int
	for a := 0; a < colors; a++ {
		for b := 0; b < colors; b++ {
			if a != b {
				allowed = append(allowed, []int{a, b})
			}
		}
	}
	for _, e := range edges {
		p.AddConstraint([]string{e[0], e[1]}, allowed)
	}
	return &p
}
