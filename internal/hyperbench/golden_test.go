package hyperbench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden suite fingerprint")

// goldenFingerprint renders the suite as one line per instance: name,
// origin, Table-1 bucket, claimed width, and the structural content
// hash. Any change to naming, binning, KnownHW planting, or the
// generated structure itself changes the fingerprint.
func goldenFingerprint(suite []Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# HyperBench-sim suite fingerprint: Scale=1 Seed=2022, %d instances\n", len(suite))
	for _, in := range suite {
		fmt.Fprintf(&b, "%s|%s|%s|E=%d|V=%d|hw=%d|%s\n",
			in.Name, in.Origin, SizeBucket(in.Edges()),
			in.Edges(), in.H.NumVertices(), in.KnownHW, in.H.ContentHash())
	}
	return b.String()
}

// TestSuiteMatchesGolden pins the Table-1 binning against refactors:
// the same config must yield a byte-identical instance suite. Refresh
// intentionally with `go test ./internal/hyperbench -run Golden -update`.
func TestSuiteMatchesGolden(t *testing.T) {
	got := goldenFingerprint(Suite(Config{Scale: 1, Seed: 2022}))
	path := filepath.Join("testdata", "suite_scale1_seed2022.golden")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Pinpoint the first diverging line for a readable failure.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("suite diverges from golden at line %d:\n  got:  %s\n  want: %s\n"+
				"(intentional generator change? refresh with -update)", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("suite length diverges from golden: got %d lines, want %d (refresh with -update)",
		len(gotLines), len(wantLines))
}

// TestGoldenFingerprintSensitivity guards the fingerprint itself: it
// must react to the fields the golden test claims to pin.
func TestGoldenFingerprintSensitivity(t *testing.T) {
	suite := Suite(Config{Scale: 1, Seed: 2022})
	base := goldenFingerprint(suite)

	renamed := make([]Instance, len(suite))
	copy(renamed, suite)
	renamed[0].Name = "tampered"
	if goldenFingerprint(renamed) == base {
		t.Fatal("fingerprint ignores instance names")
	}

	rewidth := make([]Instance, len(suite))
	copy(rewidth, suite)
	rewidth[0].KnownHW = rewidth[0].KnownHW + 1
	if goldenFingerprint(rewidth) == base {
		t.Fatal("fingerprint ignores KnownHW")
	}

	if goldenFingerprint(Suite(Config{Scale: 1, Seed: 2023})) == base {
		t.Fatal("fingerprint ignores the seed")
	}
}
