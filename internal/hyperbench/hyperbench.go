// Package hyperbench generates the "HyperBench-sim" instance suite, the
// reproduction's stand-in for the HyperBench benchmark [9] used in the
// paper's evaluation (the real corpus of 3648 CQ/CSP hypergraphs is not
// available offline; see DESIGN.md §3).
//
// The suite mirrors HyperBench's taxonomy: application-derived shapes
// (join-query chains, stars, snowflakes, cyclic joins, TPC-style
// fact/dimension schemas) and synthetic shapes (grids, ladders, chorded
// cycles, random CSPs, cliques), binned into the exact groups of
// Table 1: origin (application/synthetic) × |E| bucket
// (≤10, 10–50, 50–75, 75–100, >100). Generation is fully deterministic:
// the same configuration always yields the same instances.
package hyperbench

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/hypergraph"
)

// Origin distinguishes application-derived from synthetic instances.
type Origin int

const (
	// Application marks instances shaped like real CQ workloads.
	Application Origin = iota
	// Synthetic marks generated CSP-like instances.
	Synthetic
)

func (o Origin) String() string {
	if o == Application {
		return "Application"
	}
	return "Synthetic"
}

// Instance is one benchmark hypergraph with provenance metadata.
type Instance struct {
	Name   string
	Origin Origin
	H      *hypergraph.Hypergraph
	// KnownHW is the exact hypertree width when the generator knows it
	// by construction, and 0 otherwise.
	KnownHW int
}

// Edges returns |E(H)| for bucketing.
func (in Instance) Edges() int { return in.H.NumEdges() }

// SizeBucket returns the Table-1 group label for an edge count.
func SizeBucket(edges int) string {
	switch {
	case edges <= 10:
		return "|E| <= 10"
	case edges <= 50:
		return "10 < |E| <= 50"
	case edges <= 75:
		return "50 < |E| <= 75"
	case edges <= 100:
		return "75 < |E| <= 100"
	default:
		return "|E| > 100"
	}
}

// BucketOrder lists the size buckets largest-first, matching Table 1.
var BucketOrder = []string{
	"|E| > 100",
	"75 < |E| <= 100",
	"50 < |E| <= 75",
	"10 < |E| <= 50",
	"|E| <= 10",
}

// Config scales the generated suite.
type Config struct {
	// Scale multiplies the number of instances per family; 1 yields a
	// small suite (~90 instances) suitable for unit benches, 4 a fuller
	// one for cmd/benchtab.
	Scale int
	// Seed derives all per-instance seeds.
	Seed int64
}

// Suite generates the deterministic HyperBench-sim suite.
func Suite(cfg Config) []Instance {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	g := &gen{seed: cfg.Seed}
	var out []Instance

	for rep := 0; rep < cfg.Scale; rep++ {
		r := rep * 7 // parameter stagger between repetitions

		// --- Application-like instances -----------------------------
		// Acyclic joins (hw 1): chains, stars, snowflakes.
		out = append(out,
			g.chainCQ(4+r%3),
			g.chainCQ(24+r),
			g.starCQ(6+r%4),
			g.starCQ(30+r),
			g.snowflakeCQ(3+r%2, 4),
			g.snowflakeCQ(8+r%4, 7),
		)
		// Cyclic joins (hw 2): plain cycles of growing length.
		out = append(out,
			g.cycleCQ(6+r%3),
			g.cycleCQ(30+r),
			g.cycleCQ(56+r),
			g.cycleCQ(80+r%20),
		)
		// Chorded cycles (hw 2..3).
		out = append(out,
			g.chordedCycleCQ(20+r, 3),
			g.chordedCycleCQ(60+r, 5),
			g.chordedCycleCQ(85+r%10, 6),
		)
		// TPC-style fact/dimension joins with cross-links (hw 2..3).
		// Edge count ≈ 1 + dims·levels + dims/3; parameters are chosen so
		// every call stays within the application buckets (≤ 100 edges).
		out = append(out,
			g.tpcCQ(3+r%2, 2),
			g.tpcCQ(8+r%3, 2),
			g.tpcCQ(18+r%4, 3),
			g.tpcCQ(20+r%3, 4),
		)
		// Clique queries (hw ⌈n/2⌉): moderate widths only.
		out = append(out,
			g.cliqueCQ(4),  // hw 2
			g.cliqueCQ(5),  // hw 3
			g.cliqueCQ(6),  // hw 3
			g.cliqueCQ(8),  // hw 4
			g.cliqueCQ(10), // hw 5: 45 edges
			g.cliqueCQ(13), // hw 7: 78 edges, expected unsolved at small timeouts
		)
		// Chains of 5-cliques sharing articulation vertices (hw 3):
		// top-down search must thread through the whole chain while
		// balanced separation splits it in the middle.
		out = append(out,
			g.cliqueChainCQ(3+r%2, 5),
			g.cliqueChainCQ(6+r%2, 5),
			g.cliqueChainCQ(9+r%2, 5),
		)

		// --- Synthetic CSP-like instances ----------------------------
		// Cylinders (prism graphs C_n × K_2, hw 3): the family where
		// balanced separation shines — the probe run behind DESIGN.md
		// shows hybrid solving cylinder(30) while det-k times out.
		out = append(out,
			g.cylinderCSP(8+r%3),
			g.cylinderCSP(18+r%3),
			g.cylinderCSP(26+r%3),
			g.cylinderCSP(35+r%3), // |E| > 100
		)
		// Wider grids (width ~rows): hard instances, realistically
		// unsolved at scaled timeouts like their HyperBench analogues.
		out = append(out,
			g.gridCSP(4, 14+r%4),
			g.gridCSP(5, 12+r%4),
		)
		out = append(out,
			g.gridCSP(2, 3+r%3),
			g.gridCSP(3, 10+r%6),
			g.gridCSP(3, 12+r%4),
			g.gridCSP(4, 11+r%3),
			g.gridCSP(4, 13+r%3),
			g.ladderCSP(28+r),
			g.ladderCSP(44+r%6),
			g.randomCSP(14+r%4, 8+r%3, 3),
			g.randomCSP(30+r, 35+r, 3),
			g.randomCSP(46+r, 58+r%10, 3),
			g.randomCSP(60+r, 82+r%14, 4),
			g.randomCSP(78+r%10, 108+r%18, 4), // |E| > 100 group
			g.randomCSP(90+r%8, 120+r%20, 3),  // |E| > 100 group
			g.cycleCSP(104+r%8),               // |E| > 100, hw 2
		)
	}
	return out
}

// Large filters the suite to the HBlarge analogue of §5.2: more than 50
// edges and hypertree width known (or believed) at most maxHW.
func Large(suite []Instance, maxHW int) []Instance {
	var out []Instance
	for _, in := range suite {
		if in.Edges() > 50 && in.KnownHW > 0 && in.KnownHW <= maxHW {
			out = append(out, in)
		}
	}
	return out
}

// gen owns naming and seeding.
type gen struct {
	seed int64
	n    int
}

func (g *gen) rng() *rand.Rand {
	g.n++
	return rand.New(rand.NewSource(g.seed + int64(g.n)*2654435761))
}

func (g *gen) name(family string, params ...int) string {
	s := family
	for _, p := range params {
		s += "-" + strconv.Itoa(p)
	}
	g.n++
	return fmt.Sprintf("%s#%d", s, g.n)
}

// chainCQ: R1(x0,x1) ⋈ R2(x1,x2) ⋈ … — acyclic, hw 1.
func (g *gen) chainCQ(n int) Instance {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa(i+1))
	}
	return Instance{Name: g.name("app-chain", n), Origin: Application, H: b.Build(), KnownHW: 1}
}

// starCQ: center fact table joined with n satellites — acyclic, hw 1.
func (g *gen) starCQ(n int) Instance {
	var b hypergraph.Builder
	center := make([]string, n)
	for i := range center {
		center[i] = "k" + strconv.Itoa(i)
	}
	b.MustAddEdge("Fact", center...)
	for i := 0; i < n; i++ {
		b.MustAddEdge("Dim"+strconv.Itoa(i), "k"+strconv.Itoa(i), "a"+strconv.Itoa(i))
	}
	return Instance{Name: g.name("app-star", n), Origin: Application, H: b.Build(), KnownHW: 1}
}

// snowflakeCQ: star of stars — acyclic, hw 1.
func (g *gen) snowflakeCQ(arms, armLen int) Instance {
	var b hypergraph.Builder
	keys := make([]string, arms)
	for i := range keys {
		keys[i] = "k" + strconv.Itoa(i)
	}
	b.MustAddEdge("Fact", keys...)
	for i := 0; i < arms; i++ {
		prev := "k" + strconv.Itoa(i)
		for j := 0; j < armLen; j++ {
			next := fmt.Sprintf("a%d_%d", i, j)
			b.MustAddEdge(fmt.Sprintf("D%d_%d", i, j), prev, next)
			prev = next
		}
	}
	return Instance{Name: g.name("app-snowflake", arms, armLen), Origin: Application, H: b.Build(), KnownHW: 1}
}

// cycleCQ: cyclic join query — hw 2 for n ≥ 3.
func (g *gen) cycleCQ(n int) Instance {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return Instance{Name: g.name("app-cycle", n), Origin: Application, H: b.Build(), KnownHW: 2}
}

// cycleCSP is cycleCQ labelled synthetic (for the >100 bucket).
func (g *gen) cycleCSP(n int) Instance {
	in := g.cycleCQ(n)
	in.Origin = Synthetic
	in.Name = g.name("syn-cycle", n)
	return in
}

// chordedCycleCQ: cycle of length n with chords every stride vertices.
// Width 2..3 depending on chord density (not known exactly).
func (g *gen) chordedCycleCQ(n, stride int) Instance {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	for i := 0; i < n; i += stride * 2 {
		b.MustAddEdge("C"+strconv.Itoa(i), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+stride)%n))
	}
	return Instance{Name: g.name("app-chorded", n, stride), Origin: Application, H: b.Build()}
}

// tpcCQ: layered fact/dimension schema with levels and a few cross links
// between dimensions — typical analytics join shape, low width.
func (g *gen) tpcCQ(dims, levels int) Instance {
	r := g.rng()
	var b hypergraph.Builder
	keys := make([]string, dims)
	for i := range keys {
		keys[i] = "k0_" + strconv.Itoa(i)
	}
	b.MustAddEdge("Fact", keys...)
	for i := 0; i < dims; i++ {
		prev := "k0_" + strconv.Itoa(i)
		for l := 1; l <= levels; l++ {
			next := fmt.Sprintf("k%d_%d", l, i)
			b.MustAddEdge(fmt.Sprintf("D%d_%d", l, i), prev, next)
			prev = next
		}
	}
	// Cross links between sibling dimensions create limited cyclicity.
	for i := 0; i+1 < dims; i += 3 {
		l := 1 + r.Intn(levels)
		b.MustAddEdge(fmt.Sprintf("X%d", i),
			fmt.Sprintf("k%d_%d", l, i), fmt.Sprintf("k%d_%d", l, i+1))
	}
	return Instance{Name: g.name("app-tpc", dims, levels), Origin: Application, H: b.Build()}
}

// cliqueChainCQ: a chain of `cliques` K_size cliques, consecutive pairs
// sharing one articulation vertex. For size 5 the width is 3 (= hw(K_5)),
// independent of chain length.
func (g *gen) cliqueChainCQ(cliques, size int) Instance {
	var b hypergraph.Builder
	vname := func(c, i int) string {
		// Vertex (c, size-1) is identified with (c+1, 0).
		if i == size-1 && c+1 < cliques {
			return fmt.Sprintf("c%d_0", c+1)
		}
		return fmt.Sprintf("c%d_%d", c, i)
	}
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.MustAddEdge("", vname(c, i), vname(c, j))
			}
		}
	}
	known := 0
	if size == 5 {
		known = 3
	}
	return Instance{Name: g.name("app-cliquechain", cliques, size), Origin: Application, H: b.Build(), KnownHW: known}
}

// cylinderCSP: the prism graph C_n × K_2 as binary constraints (two
// rails of length n plus a rung at every position) — hw 3 for n ≥ 5.
func (g *gen) cylinderCSP(n int) Instance {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(j))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(j))
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return Instance{Name: g.name("syn-cylinder", n), Origin: Synthetic, H: b.Build(), KnownHW: 3}
}

// cliqueCQ: K_n as binary edges — hw ⌈n/2⌉ (n ≥ 3).
func (g *gen) cliqueCQ(n int) Instance {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge(fmt.Sprintf("e%d_%d", i, j), "v"+strconv.Itoa(i), "v"+strconv.Itoa(j))
		}
	}
	return Instance{Name: g.name("app-clique", n), Origin: Application, H: b.Build(), KnownHW: (n + 1) / 2}
}

// gridCSP: rows×cols grid of binary constraints. For a 2×c grid the
// width is 2 (c ≥ 2); wider grids have width ≈ rows.
func (g *gen) gridCSP(rows, cols int) Instance {
	var b hypergraph.Builder
	name := func(i, j int) string { return fmt.Sprintf("g%d_%d", i, j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.MustAddEdge("", name(i, j), name(i, j+1))
			}
			if i+1 < rows {
				b.MustAddEdge("", name(i, j), name(i+1, j))
			}
		}
	}
	known := 0
	if rows == 2 && cols >= 2 {
		known = 2
	}
	return Instance{Name: g.name("syn-grid", rows, cols), Origin: Synthetic, H: b.Build(), KnownHW: known}
}

// ladderCSP: a 2×n ladder (cycle pair with rungs) — hw 2.
func (g *gen) ladderCSP(n int) Instance {
	var b hypergraph.Builder
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(i+1))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(i+1))
	}
	for i := 0; i < n; i += 2 {
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return Instance{Name: g.name("syn-ladder", n), Origin: Synthetic, H: b.Build(), KnownHW: 2}
}

// randomCSP: ne random constraints of arity ≤ maxArity over nv variables,
// connected by construction (each edge shares a variable with an earlier
// one). Width unknown.
func (g *gen) randomCSP(nv, ne, maxArity int) Instance {
	r := g.rng()
	var b hypergraph.Builder
	for e := 0; e < ne; e++ {
		arity := 2 + r.Intn(maxArity-1)
		if arity > nv {
			arity = nv
		}
		seen := map[int]bool{}
		var names []string
		if e > 0 {
			// Anchor to the already-used variable range for connectivity.
			v := r.Intn(min(nv, e*2+1))
			seen[v] = true
			names = append(names, "v"+strconv.Itoa(v))
		}
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, "v"+strconv.Itoa(v))
			}
		}
		b.MustAddEdge("c"+strconv.Itoa(e), names...)
	}
	return Instance{Name: g.name("syn-random", nv, ne), Origin: Synthetic, H: b.Build()}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
