package hyperbench

import (
	"context"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/logk"
)

func TestSuiteDeterministic(t *testing.T) {
	a := Suite(Config{Scale: 1, Seed: 42})
	b := Suite(Config{Scale: 1, Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("instance %d names differ: %s vs %s", i, a[i].Name, b[i].Name)
		}
		if a[i].H.NumEdges() != b[i].H.NumEdges() || a[i].H.NumVertices() != b[i].H.NumVertices() {
			t.Fatalf("instance %d shapes differ", i)
		}
		for e := 0; e < a[i].H.NumEdges(); e++ {
			if !a[i].H.Edge(e).Equal(b[i].H.Edge(e)) {
				t.Fatalf("instance %d edge %d differs", i, e)
			}
		}
	}
}

func TestSuiteCoversAllGroups(t *testing.T) {
	suite := Suite(Config{Scale: 1})
	type key struct {
		o Origin
		b string
	}
	counts := map[key]int{}
	for _, in := range suite {
		counts[key{in.Origin, SizeBucket(in.Edges())}]++
	}
	// Application instances exist in all buckets except |E| > 100 (as in
	// Table 1); synthetic instances cover every bucket.
	for _, bucket := range BucketOrder {
		if bucket != "|E| > 100" {
			if counts[key{Application, bucket}] == 0 {
				t.Errorf("no application instances in bucket %q", bucket)
			}
		}
		if counts[key{Synthetic, bucket}] == 0 {
			t.Errorf("no synthetic instances in bucket %q", bucket)
		}
	}
	if counts[key{Application, "|E| > 100"}] != 0 {
		t.Error("application instances should not exceed 100 edges (Table 1 omits that group)")
	}
}

func TestSizeBucket(t *testing.T) {
	cases := []struct {
		edges int
		want  string
	}{
		{1, "|E| <= 10"}, {10, "|E| <= 10"}, {11, "10 < |E| <= 50"},
		{50, "10 < |E| <= 50"}, {51, "50 < |E| <= 75"}, {75, "50 < |E| <= 75"},
		{76, "75 < |E| <= 100"}, {100, "75 < |E| <= 100"}, {101, "|E| > 100"},
	}
	for _, c := range cases {
		if got := SizeBucket(c.edges); got != c.want {
			t.Errorf("SizeBucket(%d) = %q, want %q", c.edges, got, c.want)
		}
	}
}

func TestKnownWidthsAreCorrect(t *testing.T) {
	// For every small instance with a claimed known width, verify the
	// claim with the solver: succeeds at KnownHW, fails at KnownHW-1.
	ctx := context.Background()
	suite := Suite(Config{Scale: 1})
	checked := 0
	for _, in := range suite {
		if in.KnownHW == 0 || in.Edges() > 30 || in.KnownHW > 3 {
			continue
		}
		checked++
		s := logk.New(in.H, logk.Options{K: in.KnownHW, Workers: 8})
		d, ok, err := s.Decompose(ctx)
		if err != nil || !ok {
			t.Fatalf("%s: claimed hw=%d but no HD found (err=%v)", in.Name, in.KnownHW, err)
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("%s: invalid HD: %v", in.Name, err)
		}
		if in.KnownHW > 1 {
			ctx2, cancel := context.WithTimeout(ctx, 20*time.Second)
			sLow := logk.New(in.H, logk.Options{K: in.KnownHW - 1, Workers: 8})
			_, okLow, err := sLow.Decompose(ctx2)
			cancel()
			if err == nil && okLow {
				t.Fatalf("%s: claimed hw=%d but width %d HD exists", in.Name, in.KnownHW, in.KnownHW-1)
			}
		}
		if checked >= 25 {
			break
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances had verifiable known widths; generator should plant more", checked)
	}
}

func TestLargeFilter(t *testing.T) {
	suite := Suite(Config{Scale: 1})
	large := Large(suite, 6)
	if len(large) == 0 {
		t.Fatal("HBlarge-sim filter selected nothing; Figure 1 needs instances")
	}
	for _, in := range large {
		if in.Edges() <= 50 {
			t.Fatalf("%s: %d edges, should be > 50", in.Name, in.Edges())
		}
		if in.KnownHW == 0 || in.KnownHW > 6 {
			t.Fatalf("%s: known width %d outside (0,6]", in.Name, in.KnownHW)
		}
	}
}

func TestScaleGrowsSuite(t *testing.T) {
	s1 := Suite(Config{Scale: 1})
	s2 := Suite(Config{Scale: 2})
	if len(s2) != 2*len(s1) {
		t.Fatalf("scale 2 suite has %d instances, want %d", len(s2), 2*len(s1))
	}
}

func TestInstancesAreConnectedMostly(t *testing.T) {
	// Random CSPs anchor each edge to earlier variables, so the suite
	// should be overwhelmingly connected (solvers handle both, but the
	// benchmark intends connected workloads).
	suite := Suite(Config{Scale: 1})
	disconnected := 0
	for _, in := range suite {
		if !in.H.ComputeStats().IsConnected {
			disconnected++
		}
	}
	if disconnected > len(suite)/10 {
		t.Fatalf("%d of %d instances disconnected", disconnected, len(suite))
	}
}
