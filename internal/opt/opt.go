// Package opt provides an exact optimal-width HD solver, standing in for
// HtdLEO [24] in the reproduction (see DESIGN.md §3: building a
// competitive SMT solver is out of scope).
//
// Like HtdLEO it takes no width parameter and returns the optimal
// hypertree width directly; like HtdLEO it is strictly single-threaded
// and trades memory for completeness (a memoised exhaustive search per
// width, with refutation of width k-1 playing the role of the SMT
// solver's UNSAT proofs — this is where most of the time goes, matching
// HtdLEO's much higher average runtimes in Table 1).
//
// Internally it runs subsumption preprocessing and then iterative
// deepening over k with a cached det-k-style search per width.
package opt

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
)

// Solver finds the exact hypertree width of a hypergraph.
type Solver struct {
	H *hypergraph.Hypergraph
	// MaxK bounds the search; Solve reports !ok if hw(H) > MaxK.
	MaxK int
	// NoPreprocess disables subsumption removal (for ablation).
	NoPreprocess bool

	// Stats describes the completed run.
	Stats struct {
		WidthsTried   int
		RemovedEdges  int
		SearchCands   int64
		SearchCacheHt int64
	}
}

// New returns an optimal-width solver with search bound maxK.
func New(h *hypergraph.Hypergraph, maxK int) *Solver {
	if maxK < 1 {
		panic("opt: maxK must be >= 1")
	}
	return &Solver{H: h, MaxK: maxK}
}

// Solve returns the optimal hypertree width of H together with a witness
// HD of that width. ok is false if hw(H) > MaxK. On timeout the
// context's error is returned.
func (s *Solver) Solve(ctx context.Context) (width int, d *decomp.Decomp, ok bool, err error) {
	work := s.H
	var mapping []int
	if !s.NoPreprocess {
		work, mapping = s.H.RemoveSubsumedEdges()
		s.Stats.RemovedEdges = s.H.NumEdges() - work.NumEdges()
	}
	for k := 1; k <= s.MaxK; k++ {
		s.Stats.WidthsTried = k
		solver := detk.New(work, k)
		dd, found, err := solver.Decompose(ctx)
		s.Stats.SearchCands += solver.Stats.Candidates
		s.Stats.SearchCacheHt += solver.Stats.CacheHits
		if err != nil {
			return 0, nil, false, err
		}
		if found {
			if !s.NoPreprocess {
				dd, err = remap(dd, s.H, mapping)
				if err != nil {
					return 0, nil, false, err
				}
			}
			return k, dd, true, nil
		}
	}
	return 0, nil, false, nil
}

// remap lifts a decomposition of the subsumption-reduced hypergraph back
// to the original: λ edge ids map through mapping, and bags translate by
// vertex name. Subsumed edges are covered automatically because each is
// a subset of a surviving edge whose covering bag contains it.
func remap(d *decomp.Decomp, orig *hypergraph.Hypergraph, mapping []int) (*decomp.Decomp, error) {
	var lift func(n *decomp.Node) (*decomp.Node, error)
	lift = func(n *decomp.Node) (*decomp.Node, error) {
		lambda := make([]int, len(n.Lambda))
		for i, e := range n.Lambda {
			lambda[i] = mapping[e]
		}
		bag := bitset.New(orig.NumVertices())
		var bagErr error
		n.Bag.ForEach(func(v int) {
			name := d.H.VertexName(v)
			id, ok := orig.VertexID(name)
			if !ok {
				bagErr = fmt.Errorf("opt: vertex %q missing from original hypergraph", name)
				return
			}
			bag.Set(id)
		})
		if bagErr != nil {
			return nil, bagErr
		}
		out := decomp.NewNode(lambda, bag)
		out.SpecialID = n.SpecialID
		for _, c := range n.Children {
			lc, err := lift(c)
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, lc)
		}
		return out, nil
	}
	root, err := lift(d.Root)
	if err != nil {
		return nil, err
	}
	return &decomp.Decomp{H: orig, Root: root}, nil
}
