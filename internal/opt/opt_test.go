package opt

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

func TestOptimalWidthKnownInstances(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"cycle8", cycle(8), 2},
		{"cycle3", cycle(3), 2},
	}
	// A path has width 1.
	var pb hypergraph.Builder
	pb.MustAddEdge("p1", "a", "b")
	pb.MustAddEdge("p2", "b", "c")
	cases = append(cases, struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{"path", pb.Build(), 1})

	for _, c := range cases {
		w, d, ok, err := New(c.h, 5).Solve(ctx)
		if err != nil || !ok {
			t.Fatalf("%s: ok=%v err=%v", c.name, ok, err)
		}
		if w != c.want {
			t.Fatalf("%s: width %d, want %d", c.name, w, c.want)
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("%s: invalid HD: %v", c.name, err)
		}
		if err := decomp.CheckWidth(d, w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxKExceeded(t *testing.T) {
	// hw(K_5) = 3 > 2, so MaxK = 2 reports not-ok.
	var b hypergraph.Builder
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.MustAddEdge("", "v"+strconv.Itoa(i), "v"+strconv.Itoa(j))
		}
	}
	_, _, ok, err := New(b.Build(), 2).Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("K_5 has hw 3; MaxK=2 should report failure")
	}
}

func TestPreprocessingLiftsCorrectly(t *testing.T) {
	// Subsumed edges must still be covered in the lifted decomposition.
	var b hypergraph.Builder
	b.MustAddEdge("big", "a", "b", "c")
	b.MustAddEdge("sub", "a", "b")
	b.MustAddEdge("next", "c", "d")
	h := b.Build()
	w, d, ok, err := New(h, 3).Solve(context.Background())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 1 {
		t.Fatalf("width = %d, want 1 (acyclic)", w)
	}
	if d.H != h {
		t.Fatal("decomposition must be over the original hypergraph")
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatalf("lifted HD invalid: %v\n%s", err, d)
	}
}

func TestAgreesWithDetKOnRandomInstances(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 20; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		var b hypergraph.Builder
		nv := 3 + r.Intn(6)
		ne := 2 + r.Intn(7)
		for e := 0; e < ne; e++ {
			arity := 1 + r.Intn(min(3, nv))
			seen := map[int]bool{}
			var names []string
			for len(names) < arity {
				v := r.Intn(nv)
				if !seen[v] {
					seen[v] = true
					names = append(names, "v"+strconv.Itoa(v))
				}
			}
			b.MustAddEdge("", names...)
		}
		h := b.Build()
		w, d, ok, err := New(h, 4).Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		if err := decomp.CheckHD(d); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Optimality: det-k at w succeeds, at w-1 fails.
		if _, okAt, _ := detk.New(h, w).Decompose(ctx); !okAt {
			t.Fatalf("seed %d: detk disagrees at width %d", seed, w)
		}
		if w > 1 {
			if _, okBelow, _ := detk.New(h, w-1).Decompose(ctx); okBelow {
				t.Fatalf("seed %d: width %d is not optimal", seed, w)
			}
		}
	}
}

func TestNoPreprocessVariant(t *testing.T) {
	s := New(cycle(6), 3)
	s.NoPreprocess = true
	w, d, ok, err := s.Solve(context.Background())
	if err != nil || !ok || w != 2 {
		t.Fatalf("w=%d ok=%v err=%v", w, ok, err)
	}
	if err := decomp.CheckHD(d); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
