package store

import (
	"sync/atomic"

	"repro/internal/logk"
)

// Table is the in-memory Memo implementation: a sharded negative-memo
// map (logk.ShardedMemo) with an advisory entry cap so a pathological
// workload cannot grow one table without bound. It is the adapter that
// banks solver refutations — logk search states and race width probes
// alike — into the store.
type Table struct {
	memo    logk.ShardedMemo
	entries atomic.Int64
	max     int64
}

// NewTable returns a Table capped at max entries (≤ 0 means unbounded).
func NewTable(max int64) *Table {
	if max <= 0 {
		max = 1 << 62
	}
	return &Table{max: max}
}

// Lookup implements logk.MemoBackend.
func (t *Table) Lookup(key []byte) bool { return t.memo.Lookup(key) }

// Insert implements logk.MemoBackend. Inserts are dropped once the
// table is full; the memo is a pure acceleration, so dropping is safe.
func (t *Table) Insert(key string) {
	if t.entries.Load() >= t.max {
		return
	}
	if t.memo.Add(key) {
		t.entries.Add(1)
	}
}

// Entries implements Memo.
func (t *Table) Entries() int64 { return t.entries.Load() }
