package store

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
)

// Tree is a portable, hypergraph-independent decomposition: the node
// structure of a decomp.Decomp with λ-labels as edge ids and bags as
// vertex ids. Because hypergraph.ContentHash pins the edge bitsets over
// the id space, a Tree encoded from a decomposition of H is valid for
// every hypergraph with the same content hash — including one built
// from renamed relations, or one parsed in a different process after a
// snapshot reload. Bind materialises it back into a decomp.Decomp over
// a concrete hypergraph; callers re-validate with decomp.CheckHD before
// trusting the result, so a corrupted snapshot can never leak an
// invalid decomposition to a client.
type Tree struct {
	Lambda   []int   `json:"lambda"`
	Bag      []int   `json:"bag"`
	Children []*Tree `json:"children,omitempty"`
}

// Width returns the maximum |λ| over the tree, 0 for a nil tree.
func (t *Tree) Width() int {
	if t == nil {
		return 0
	}
	w := len(t.Lambda)
	for _, c := range t.Children {
		if cw := c.Width(); cw > w {
			w = cw
		}
	}
	return w
}

// Nodes returns the number of nodes, 0 for a nil tree.
func (t *Tree) Nodes() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Nodes()
	}
	return n
}

// EncodeTree converts a finished decomposition into its portable form.
// Decompositions with placeholder special leaves (an internal solver
// state, never returned to callers) cannot be encoded and yield nil.
func EncodeTree(d *decomp.Decomp) *Tree {
	if d == nil || d.Root == nil {
		return nil
	}
	t, ok := encodeNode(d.Root)
	if !ok {
		return nil
	}
	return t
}

func encodeNode(n *decomp.Node) (*Tree, bool) {
	if n.IsSpecialLeaf() || n.Bag == nil {
		return nil, false
	}
	t := &Tree{
		Lambda: append([]int(nil), n.Lambda...),
		Bag:    n.Bag.Elements(),
	}
	for _, c := range n.Children {
		ct, ok := encodeNode(c)
		if !ok {
			return nil, false
		}
		t.Children = append(t.Children, ct)
	}
	return t, true
}

// Bind materialises the tree as a decomposition of h. Edge and vertex
// ids are range-checked so a corrupted or mismatched snapshot entry
// fails loudly here instead of panicking inside a validity checker.
func (t *Tree) Bind(h *hypergraph.Hypergraph) (*decomp.Decomp, error) {
	if t == nil {
		return nil, fmt.Errorf("store: nil tree")
	}
	root, err := t.bindNode(h)
	if err != nil {
		return nil, err
	}
	return &decomp.Decomp{H: h, Root: root}, nil
}

func (t *Tree) bindNode(h *hypergraph.Hypergraph) (*decomp.Node, error) {
	for _, e := range t.Lambda {
		if e < 0 || e >= h.NumEdges() {
			return nil, fmt.Errorf("store: tree edge id %d out of range [0,%d)", e, h.NumEdges())
		}
	}
	bag := h.NewVertexSet()
	for _, v := range t.Bag {
		if v < 0 || v >= h.NumVertices() {
			return nil, fmt.Errorf("store: tree vertex id %d out of range [0,%d)", v, h.NumVertices())
		}
		bag.Set(v)
	}
	n := decomp.NewNode(t.Lambda, bag)
	for _, c := range t.Children {
		cn, err := c.bindNode(h)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	return n, nil
}
