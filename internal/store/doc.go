// Package store is the unified cross-request state layer of the
// decomposition service: one content-addressed record per hypergraph
// (keyed by hypergraph.ContentHash) holding everything any request has
// ever proven about that structure —
//
//   - width bounds: all widths < LB are refuted, an HD of width UB has
//     been witnessed (the width-level knowledge formerly kept in the
//     service's boundsStore);
//   - a positive result cache: a portable witness decomposition (Tree)
//     of width UB, so a repeat submission is answered with a validated
//     HD instead of a fresh solver run;
//   - per-width negative-memo tables: content keys of search states
//     proven exhausted (formerly the service's memoStore), shared with
//     the solvers through logk.MemoBackend.
//
// All of it sits behind the small pluggable Backend interface. Three
// implementations ship:
//
//   - Sharded — in-memory: entries striped over independently locked
//     shards with O(1) LRU eviction;
//   - Log — disk-backed and crash-safe: an append-only record log
//     (length-prefixed, CRC-32C-checksummed records, fsync cadence
//     configurable down to every append) with segment rotation,
//     background compaction, and torn-tail recovery on open;
//   - Tiered — the composition serving processes actually run: a
//     Sharded front as the LRU working set over a Log as the durable
//     truth, so every result persists as it is computed and a restart
//     (graceful or kill -9) serves the whole history warm.
//
// Snapshot additionally gives any backend versioned save/load as a
// portable export/import format. Request coalescing (Flight) lives
// here too: N concurrent identical requests run one solver and share
// the result.
package store
