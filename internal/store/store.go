package store

import (
	"repro/internal/logk"
)

// Bounds is the width-level knowledge about one hypergraph: every width
// < LB is refuted (LB ≤ 1 means nothing is refuted), and UB > 0 means an
// HD of width UB has been witnessed. LB == UB > 0 pins the exact
// hypertree width.
type Bounds struct {
	LB int `json:"lb"`
	UB int `json:"ub,omitempty"`
}

// Known reports whether the bounds carry any information at all.
func (b Bounds) Known() bool { return b.LB > 1 || b.UB > 0 }

// Exact reports whether the bounds pin the hypertree width exactly.
func (b Bounds) Exact() bool { return b.UB > 0 && b.LB >= b.UB }

// Merge folds nw into b under the soundness rules: the lower bound only
// ever rises, the witnessed upper bound only ever falls. It reports
// whether b changed.
func (b *Bounds) Merge(nw Bounds) bool {
	changed := false
	if nw.LB > b.LB {
		b.LB = nw.LB
		changed = true
	}
	if nw.UB > 0 && (b.UB == 0 || nw.UB < b.UB) {
		b.UB = nw.UB
		changed = true
	}
	return changed
}

// Memo is one (hypergraph, width) negative-memo table as handed to the
// solvers: the logk.MemoBackend adapter plus a size probe for stats and
// snapshot summaries. Implementations must be safe for concurrent use.
type Memo interface {
	logk.MemoBackend
	// Entries returns the number of memoised dead states.
	Entries() int64
}

// Backend is the pluggable storage contract every consumer of
// cross-request state programs against. The in-memory implementation is
// Sharded; future disk or remote backends plug in here without touching
// the service layer.
//
// All methods must be safe for concurrent use. Handles returned by Memo
// and Decomposition stay valid after the entry is evicted — eviction
// only makes the store forget them.
type Backend interface {
	// Bounds returns the cached width bounds for hash; ok is false when
	// nothing non-trivial is known.
	Bounds(hash string) (b Bounds, ok bool)
	// MergeBounds merges new knowledge for hash: LB only rises, UB only
	// falls. Trivial bounds (LB ≤ 1, UB ≤ 0) are a no-op and must not
	// create an entry.
	MergeBounds(hash string, b Bounds)
	// Decomposition returns the cached witness tree for hash, if any.
	// The returned Tree is shared and must not be mutated.
	Decomposition(hash string) (t *Tree, ok bool)
	// PutDecomposition caches a witness tree for hash and merges its
	// width into UB. A tree no better (wider or equal) than the cached
	// one is dropped. Nil or empty trees are ignored.
	PutDecomposition(hash string, t *Tree)
	// DropDecomposition forgets the cached witness for hash (bounds and
	// memo tables survive). Used when a cached tree fails re-validation.
	DropDecomposition(hash string)
	// Memo returns the negative-memo table for (hash, k), creating it if
	// needed; existed reports that an earlier request already built it.
	Memo(hash string, k int) (m Memo, existed bool)
	// Stats returns a snapshot of the backend's counters.
	Stats() Stats
	// Info lists up to max cached entries (0 = all) for introspection
	// endpoints, most informative first within each shard.
	Info(max int) []EntryInfo
	// Purge drops every entry.
	Purge()
	// Export captures bounds, witness trees, and refutation summaries as
	// a portable Snapshot.
	Export() Snapshot
	// Import merges a Snapshot (same rules as MergeBounds /
	// PutDecomposition) and returns how many entries were restored.
	Import(snap Snapshot) (int, error)
}

// Stats is a snapshot of backend counters.
type Stats struct {
	Shards       int   `json:"shards"`        // stripe count (1 for unsharded backends)
	Entries      int64 `json:"entries"`       // cached hypergraphs
	Trees        int64 `json:"trees"`         // cached witness decompositions
	BoundsGraphs int64 `json:"bounds_graphs"` // entries with non-trivial bounds
	MemoTables   int64 `json:"memo_tables"`   // per-width negative-memo tables
	MemoStates   int64 `json:"memo_states"`   // memoised dead states across all tables
	MemoReuses   int64 `json:"memo_reuses"`   // Memo calls that found an existing table
	BoundsHits   int64 `json:"bounds_hits"`   // Bounds calls that found knowledge
	TreeHits     int64 `json:"tree_hits"`     // Decomposition calls that found a tree
	Evictions    int64 `json:"evictions"`     // entries dropped by the LRU cap
	Restored     int64 `json:"restored"`      // entries merged in by Import

	// Disk is the disk tier's counters, nil for purely in-memory
	// backends. For a Tiered backend the top-level fields above describe
	// the memory front (the LRU working set); Disk describes the
	// append-only log underneath it (the full durable state).
	Disk *DiskStats `json:"disk,omitempty"`
}

// EntryInfo is one cached hypergraph as listed by Backend.Info (the
// GET /cache payload).
type EntryInfo struct {
	Hash      string         `json:"hash"`
	Bounds    Bounds         `json:"bounds"`
	HasTree   bool           `json:"has_tree"`
	TreeWidth int            `json:"tree_width,omitempty"`
	Memos     []WidthSummary `json:"memos,omitempty"`
}

// WidthSummary summarises one per-width negative-memo table: how many
// dead states it holds (the table contents themselves are not part of
// snapshots — only this summary is).
type WidthSummary struct {
	K      int   `json:"k"`
	States int64 `json:"states"`
}
