package store

import (
	"fmt"
	"sync"
	"testing"
)

func openTiered(t *testing.T, dir string, mem Config) *Tiered {
	t.Helper()
	ts, err := OpenTiered(TieredConfig{Mem: mem, Log: LogConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTieredWarmRestart is the tentpole contract: everything written
// before Close is served after a reopen, with no snapshot file.
func TestTieredWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ts := openTiered(t, dir, Config{})
	ts.MergeBounds("g1", Bounds{LB: 3})
	ts.PutDecomposition("g1", testTree(4))
	ts.PutDecomposition("g2", testTree(2))
	ts.DropDecomposition("g2")
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ts = openTiered(t, dir, Config{})
	defer ts.Close()
	if b, ok := ts.Bounds("g1"); !ok || b.LB != 3 || b.UB != 4 {
		t.Fatalf("g1 bounds %+v ok=%v after restart", b, ok)
	}
	tr, ok := ts.Decomposition("g1")
	if !ok || tr.Width() != 4 {
		t.Fatalf("g1 tree after restart: ok=%v w=%d", ok, tr.Width())
	}
	// The read-back promoted g1 into the memory front: the next read
	// must be a memory hit, not another disk load.
	loads := ts.Stats().Disk.TreeLoads
	if _, ok := ts.Decomposition("g1"); !ok {
		t.Fatal("promoted tree lost")
	}
	if got := ts.Stats().Disk.TreeLoads; got != loads {
		t.Fatalf("second read hit disk (loads %d -> %d), promotion failed", loads, got)
	}
	// The drop survived the restart; g2's width-level fact did too.
	if _, ok := ts.Decomposition("g2"); ok {
		t.Fatal("dropped tree resurrected by restart")
	}
	if b, ok := ts.Bounds("g2"); !ok || b.UB != 2 {
		t.Fatalf("g2 bounds %+v ok=%v after restart", b, ok)
	}
}

// TestTieredEvictionFallsBackToDisk: the memory front evicts under
// LRU pressure, the disk tier does not — an evicted entry is still a
// hit.
func TestTieredEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	ts := openTiered(t, dir, Config{Shards: 1, MaxGraphs: 8})
	defer ts.Close()
	for i := 0; i < 40; i++ {
		hash := fmt.Sprintf("g%03d", i)
		ts.MergeBounds(hash, Bounds{LB: 2})
		ts.PutDecomposition(hash, testTree(i%4+2))
	}
	if ev := ts.Stats().Evictions; ev == 0 {
		t.Fatal("memory front never evicted; test is not exercising the fallback")
	}
	for i := 0; i < 40; i++ {
		hash := fmt.Sprintf("g%03d", i)
		if b, ok := ts.Bounds(hash); !ok || b.LB != 2 {
			t.Fatalf("%s bounds lost to eviction: %+v ok=%v", hash, b, ok)
		}
		if tr, ok := ts.Decomposition(hash); !ok || tr.Width() != i%4+2 {
			t.Fatalf("%s tree lost to eviction (ok=%v)", hash, ok)
		}
	}
	if ts.Stats().Disk.TreeLoads == 0 {
		t.Fatal("no disk read-backs; eviction fallback untested")
	}
}

// TestTieredSummariesFlushOnClose: memo tables are memory-only but
// their per-width summaries survive restarts via the flush-on-close.
func TestTieredSummariesFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	ts := openTiered(t, dir, Config{})
	ts.MergeBounds("g", Bounds{LB: 3})
	m, _ := ts.Memo("g", 2)
	m.Insert("dead-a")
	m.Insert("dead-b")
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ts = openTiered(t, dir, Config{})
	defer ts.Close()
	infos := ts.Info(0)
	if len(infos) != 1 || infos[0].Hash != "g" {
		t.Fatalf("info after restart: %+v", infos)
	}
	found := false
	for _, ws := range infos[0].Memos {
		if ws.K == 2 && ws.States == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("memo summary lost across restart: %+v", infos[0].Memos)
	}
}

func TestTieredExportImport(t *testing.T) {
	src := openTiered(t, t.TempDir(), Config{})
	defer src.Close()
	src.MergeBounds("g1", Bounds{LB: 3})
	src.PutDecomposition("g1", testTree(4))
	src.PutDecomposition("g2", testTree(2))
	snap := src.Export()
	if len(snap.Entries) != 2 {
		t.Fatalf("exported %d entries, want 2", len(snap.Entries))
	}

	dst := openTiered(t, t.TempDir(), Config{})
	n, err := dst.Import(snap)
	if err != nil || n != 2 {
		t.Fatalf("import n=%d err=%v", n, err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	// The import is durable on the destination's own disk.
	dst = openTiered(t, dst.log.cfg.Dir, Config{})
	defer dst.Close()
	if b, ok := dst.Bounds("g1"); !ok || b.LB != 3 || b.UB != 4 {
		t.Fatalf("imported g1 bounds %+v ok=%v after restart", b, ok)
	}
	if tr, ok := dst.Decomposition("g2"); !ok || tr.Width() != 2 {
		t.Fatalf("imported g2 tree missing after restart (ok=%v)", ok)
	}
}

func TestTieredPurge(t *testing.T) {
	dir := t.TempDir()
	ts := openTiered(t, dir, Config{})
	ts.MergeBounds("g", Bounds{LB: 3})
	ts.PutDecomposition("g", testTree(4))
	ts.Purge()
	if _, ok := ts.Bounds("g"); ok {
		t.Fatal("purge left bounds")
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	ts = openTiered(t, dir, Config{})
	defer ts.Close()
	if _, ok := ts.Bounds("g"); ok {
		t.Fatal("purged entry resurrected by restart")
	}
}

// TestTieredStats: the top level describes the memory front, Disk the
// log underneath.
func TestTieredStats(t *testing.T) {
	ts := openTiered(t, t.TempDir(), Config{})
	defer ts.Close()
	ts.MergeBounds("g", Bounds{LB: 3})
	ts.PutDecomposition("g", testTree(4))
	st := ts.Stats()
	if st.Disk == nil {
		t.Fatal("tiered stats must carry the disk tier")
	}
	if st.Disk.Entries != 1 || st.Disk.Trees != 1 || st.Disk.Appends == 0 {
		t.Fatalf("disk stats %+v", *st.Disk)
	}
	if st.Entries != 1 {
		t.Fatalf("mem stats %+v", st)
	}
}

func TestTieredConcurrency(t *testing.T) {
	ts := openTiered(t, t.TempDir(), Config{Shards: 2, MaxGraphs: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				hash := fmt.Sprintf("g%d", i%12)
				switch g % 4 {
				case 0:
					ts.MergeBounds(hash, Bounds{LB: i%4 + 2})
				case 1:
					ts.PutDecomposition(hash, testTree(i%5+2))
				case 2:
					ts.Bounds(hash)
					ts.Decomposition(hash)
				case 3:
					m, _ := ts.Memo(hash, i%3+2)
					m.Insert(fmt.Sprintf("k%d", i))
					if i%20 == 0 {
						ts.Sync()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := ts.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
