package store

import (
	"sync"
)

// TieredConfig sizes a Tiered backend: an in-memory Sharded front over
// a disk Log.
type TieredConfig struct {
	// Mem sizes the memory front (the read-through / write-behind LRU
	// working set). The zero value picks the Sharded defaults.
	Mem Config
	// Log configures the disk tier; Log.Dir is required.
	Log LogConfig
}

// Tiered is the disk-backed Backend: the Sharded in-memory store is
// the front (every read is answered from memory when possible, every
// promotion lands there), the append-only Log is the truth (every
// bounds / tree / drop mutation is appended before the call returns,
// with durability governed by the log's fsync cadence). The memory
// front is LRU-capped; the disk tier never evicts, so an entry pushed
// out of memory by hotter traffic is still a cache hit — it is read
// back from disk and re-promoted. A process restart reopens the log
// and serves the entire history warm, with no snapshot file involved.
//
// Negative-memo tables live in memory only (they are large and
// regenerate quickly); their per-width summaries are flushed to the
// log on Sync, Compact, Export, and Close, mirroring what snapshots
// persist.
//
// Disk append failures are counted (Stats().Disk.Errors) but do not
// fail reads or lose the in-memory state: availability degrades to
// the in-memory contract, not to an outage.
type Tiered struct {
	mem *Sharded
	log *Log

	closeMu  sync.Mutex
	closed   bool
	closeErr error
}

// OpenTiered opens (or creates) the disk tier and builds the memory
// front over it.
func OpenTiered(cfg TieredConfig) (*Tiered, error) {
	l, err := OpenLog(cfg.Log)
	if err != nil {
		return nil, err
	}
	return &Tiered{mem: NewSharded(cfg.Mem), log: l}, nil
}

// Log exposes the disk tier for maintenance (Compact, Sync) and tests.
func (t *Tiered) Log() *Log { return t.log }

// Bounds implements Backend: memory first, disk on miss (with
// promotion into the memory front).
func (t *Tiered) Bounds(hash string) (Bounds, bool) {
	if b, ok := t.mem.Bounds(hash); ok {
		return b, true
	}
	b, ok := t.log.Bounds(hash)
	if !ok {
		return Bounds{}, false
	}
	t.mem.MergeBounds(hash, b)
	return b, true
}

// MergeBounds implements Backend: write-through to both tiers. The
// log appends only when the merge changed its state, so repeat merges
// of known facts cost a map lookup, not disk traffic.
func (t *Tiered) MergeBounds(hash string, b Bounds) {
	t.mem.MergeBounds(hash, b)
	t.log.MergeBounds(hash, b) // error counted in DiskStats.Errors
}

// Decomposition implements Backend: memory first; on miss the witness
// is read back from the log (checksum-verified) and promoted.
func (t *Tiered) Decomposition(hash string) (*Tree, bool) {
	if tr, ok := t.mem.Decomposition(hash); ok {
		return tr, true
	}
	tr, ok, _ := t.log.Tree(hash)
	if !ok {
		return nil, false
	}
	t.mem.PutDecomposition(hash, tr)
	return tr, true
}

// PutDecomposition implements Backend.
func (t *Tiered) PutDecomposition(hash string, tr *Tree) {
	t.mem.PutDecomposition(hash, tr)
	t.log.PutTree(hash, tr)
}

// DropDecomposition implements Backend. The tombstone is appended so
// a tree that failed re-validation stays gone across restarts.
func (t *Tiered) DropDecomposition(hash string) {
	t.mem.DropDecomposition(hash)
	t.log.DropTree(hash)
}

// Memo implements Backend: negative-memo tables are memory-only.
func (t *Tiered) Memo(hash string, k int) (Memo, bool) {
	return t.mem.Memo(hash, k)
}

// Stats implements Backend: the top-level counters describe the
// memory front, Disk the log underneath.
func (t *Tiered) Stats() Stats {
	st := t.mem.Stats()
	d := t.log.Stats()
	st.Disk = &d
	return st
}

// Info implements Backend: entries come from the disk index (the full
// durable state, sorted by hash for deterministic listings), with live
// memo-table summaries overlaid from the memory front.
func (t *Tiered) Info(max int) []EntryInfo {
	hashes := t.log.Hashes()
	memInfo := make(map[string]EntryInfo)
	for _, in := range t.mem.Info(0) {
		memInfo[in.Hash] = in
	}
	var out []EntryInfo
	for _, hash := range hashes {
		if max > 0 && len(out) >= max {
			break
		}
		b, _ := t.log.Bounds(hash)
		in := EntryInfo{Hash: hash, Bounds: b}
		if w, ok := t.log.TreeWidth(hash); ok {
			in.HasTree, in.TreeWidth = true, w
		}
		if mi, ok := memInfo[hash]; ok {
			in.Memos = mi.Memos
			delete(memInfo, hash)
		} else {
			in.Memos = t.log.Refuted(hash)
		}
		out = append(out, in)
	}
	// Memory-front entries the disk has no record for (memo tables
	// created for hashes whose jobs produced no durable fact yet):
	// after the overlay pass above, memInfo holds exactly those.
	for _, in := range t.mem.Info(0) {
		if max > 0 && len(out) >= max {
			break
		}
		if _, memOnly := memInfo[in.Hash]; memOnly {
			out = append(out, in)
		}
	}
	return out
}

// Purge implements Backend: both tiers forget everything, including
// the on-disk history.
func (t *Tiered) Purge() {
	t.mem.Purge()
	t.log.Purge()
}

// flushSummaries appends the memory front's live memo summaries to the
// log, so restarts keep the refutation bookkeeping snapshots persist.
func (t *Tiered) flushSummaries() {
	for _, in := range t.mem.Info(0) {
		if len(in.Memos) > 0 {
			t.log.MergeRefuted(in.Hash, in.Memos)
		}
	}
}

// Export implements Backend: summaries are flushed first, then the
// disk index (the full durable state) becomes the snapshot.
func (t *Tiered) Export() Snapshot {
	t.flushSummaries()
	return t.log.Export()
}

// Import implements Backend: entries are merged into both tiers; the
// count is the number of snapshot entries now represented on disk
// (the disk tier never evicts, so everything non-empty survives).
func (t *Tiered) Import(snap Snapshot) (int, error) {
	if err := snap.Validate(); err != nil {
		return 0, err
	}
	n := 0
	for _, se := range snap.Entries {
		if se.Hash == "" {
			continue
		}
		if se.Bounds.Known() {
			t.MergeBounds(se.Hash, se.Bounds)
		}
		if se.Tree.Width() > 0 {
			t.PutDecomposition(se.Hash, se.Tree)
		}
		if len(se.Refuted) > 0 {
			t.log.MergeRefuted(se.Hash, se.Refuted)
		}
		if _, ok := t.log.Bounds(se.Hash); ok || len(se.Refuted) > 0 {
			n++
		}
	}
	t.mem.restored.Add(int64(n))
	return n, nil
}

// Sync flushes memo summaries and fsyncs the log's unsynced tail.
func (t *Tiered) Sync() error {
	t.flushSummaries()
	return t.log.Sync()
}

// Compact flushes memo summaries and compacts the log.
func (t *Tiered) Compact() error {
	t.flushSummaries()
	return t.log.Compact()
}

// Close flushes memo summaries and closes the log. Idempotent: every
// call returns the first close's error, so both a service that owns
// the backend and the operator code that built it can close safely.
func (t *Tiered) Close() error {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return t.closeErr
	}
	t.closed = true
	t.flushSummaries()
	t.closeErr = t.log.Close()
	return t.closeErr
}
