package store

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The crash tests re-exec the test binary as a child that writes to a
// shared directory in a tight loop, kill it with SIGKILL mid-write,
// and verify what the survivor recovers. Child entry points are gated
// on an environment variable so a normal `go test` run skips them.

const (
	crashDirEnv  = "STORE_CRASH_DIR"
	crashSnapEnv = "STORE_CRASH_SNAP"
)

// TestCrashChildAppend is the child body for the kill-mid-append test:
// it appends records forever (per-append fsync so every acknowledged
// record is durable) until the parent kills it. Record i is fully
// determined by i, so the parent can verify both prefix-closure and
// content integrity.
func TestCrashChildAppend(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("child entry point; driven by TestCrashRecoveryKillMidAppend")
	}
	l, err := OpenLog(LogConfig{Dir: dir, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		hash := fmt.Sprintf("h%06d", i)
		if err := l.MergeBounds(hash, Bounds{LB: i%5 + 2}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := l.PutTree(hash, testTree(i%4+2)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCrashRecoveryKillMidAppend: SIGKILL the appender at a random
// point; the reopened log must hold a contiguous prefix h000000..hN,
// every record carrying exactly the values the child wrote — at most
// the record in flight is lost, never an earlier or corrupted one.
func TestCrashRecoveryKillMidAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildAppend$", "-test.v")
		cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(40+round*35) * time.Millisecond)
		cmd.Process.Kill()
		err := cmd.Wait()
		if ee, ok := err.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
			t.Fatalf("round %d: child exited (%v) before the kill; output:\n%s", round, err, out.String())
		}

		l, err := OpenLog(LogConfig{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: recovery open: %v", round, err)
		}
		n := l.Len()
		if n == 0 {
			t.Fatalf("round %d: child wrote nothing before the kill", round)
		}
		for i := 0; i < n; i++ {
			hash := fmt.Sprintf("h%06d", i)
			b, ok := l.Bounds(hash)
			if !ok {
				t.Fatalf("round %d: hole at %s with %d entries recovered", round, hash, n)
			}
			wantLB := i%5 + 2
			wantUB := 0
			if i%3 == 0 {
				wantUB = i%4 + 2
			}
			// The newest entry may have lost the record in flight: its
			// bounds land before its tree, so UB may still be 0 there.
			lastEntry := i == n-1
			if b.LB != wantLB || (b.UB != wantUB && !(lastEntry && b.UB == 0)) {
				t.Fatalf("round %d: %s bounds %+v, want LB=%d UB=%d", round, hash, b, wantLB, wantUB)
			}
			if i%3 == 0 {
				if tr, ok, err := l.Tree(hash); err != nil || (ok && tr.Width() != i%4+2) {
					t.Fatalf("round %d: %s tree corrupt (ok=%v err=%v)", round, hash, ok, err)
				}
			}
		}
		if _, ok := l.Bounds(fmt.Sprintf("h%06d", n)); ok {
			t.Fatalf("round %d: Len=%d but h%06d exists — index out of step", round, n, n)
		}
		// The recovered log must accept and persist new appends.
		if err := l.MergeBounds("post-crash", Bounds{LB: 9}); err != nil {
			t.Fatalf("round %d: append after recovery: %v", round, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("round %d: close after recovery: %v", round, err)
		}
		t.Logf("round %d: recovered %d entries", round, n)
	}
}

// TestCrashChildSnapshot is the child body for the kill-mid-save test:
// it overwrites one snapshot path in a tight loop until killed. Each
// iteration writes i+1 entries so the parent can tell snapshots apart.
func TestCrashChildSnapshot(t *testing.T) {
	path := os.Getenv(crashSnapEnv)
	if path == "" {
		t.Skip("child entry point; driven by TestCrashRecoveryKillMidSnapshotSave")
	}
	for i := 0; ; i++ {
		snap := Snapshot{Version: SnapshotVersion}
		for j := 0; j <= i%50; j++ {
			snap.Entries = append(snap.Entries, SnapshotEntry{
				Hash: fmt.Sprintf("h%06d", j), Bounds: Bounds{LB: 2, UB: 5},
			})
		}
		if err := WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryKillMidSnapshotSave: SIGKILL a process mid-
// WriteFile; the snapshot at path must always parse and validate —
// the temp-file + fsync + rename discipline never exposes a torn file
// under the real name.
func TestCrashRecoveryKillMidSnapshotSave(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "cache.snapshot")
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildSnapshot$", "-test.v")
		cmd.Env = append(os.Environ(), crashSnapEnv+"="+path)
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(30+round*40) * time.Millisecond)
		cmd.Process.Kill()
		err := cmd.Wait()
		if ee, ok := err.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
			t.Fatalf("round %d: child exited (%v) before the kill; output:\n%s", round, err, out.String())
		}

		snap, err := ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				t.Logf("round %d: killed before the first save landed", round)
				continue
			}
			t.Fatalf("round %d: snapshot torn by the kill: %v", round, err)
		}
		for j, e := range snap.Entries {
			if e.Hash != fmt.Sprintf("h%06d", j) {
				t.Fatalf("round %d: entry %d is %q — mixed snapshot generations", round, j, e.Hash)
			}
		}
		t.Logf("round %d: snapshot intact with %d entries", round, len(snap.Entries))
	}
}

// TestSnapshotConcurrentSaves: many goroutines saving different
// snapshots to the same path must end with some complete snapshot —
// never a mix of two writers — and leave no temp litter.
func TestSnapshotConcurrentSaves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snapshot")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snap := Snapshot{Version: SnapshotVersion}
				for j := 0; j <= g; j++ {
					snap.Entries = append(snap.Entries, SnapshotEntry{
						Hash: fmt.Sprintf("g%d-%d", g, j), Bounds: Bounds{LB: 2},
					})
				}
				if err := WriteFile(path, snap); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatalf("final snapshot unreadable after concurrent saves: %v", err)
	}
	// All entries must come from ONE writer (atomic replacement, no
	// interleaving).
	writer := ""
	for _, e := range snap.Entries {
		w := strings.SplitN(e.Hash, "-", 2)[0]
		if writer == "" {
			writer = w
		} else if w != writer {
			t.Fatalf("snapshot mixes writers %s and %s", writer, w)
		}
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(left) != 0 {
		t.Fatalf("temp files leaked: %v", left)
	}
}
