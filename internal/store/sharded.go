package store

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Config sizes a Sharded backend. The zero value picks defaults.
type Config struct {
	// Shards is the desired number of independently locked stripes
	// (rounded to a power of two). The effective count is lowered so
	// every stripe holds at least minPerShard entries — striping below
	// that trades correctness (entries evicted far under the cap) for
	// lock granularity nobody needs at that size. Default 16; use 1 for
	// a deterministic global LRU.
	Shards int
	// MaxGraphs caps cached hypergraph entries across all shards. Each
	// stripe holds up to ceil(MaxGraphs/shards), so the total is capped
	// by MaxGraphs rounded up to a multiple of the stripe count.
	// Default 128.
	MaxGraphs int
	// MemoMaxStates caps memoised dead states per (hash, width) table;
	// inserts beyond it are dropped. Default 1<<20.
	MemoMaxStates int64
}

// minPerShard is the smallest per-stripe LRU capacity worth striping
// for: hashes distribute binomially over stripes, and tiny per-stripe
// caps make "a stripe overflows while the store is mostly empty" likely
// instead of rare.
const minPerShard = 8

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 128
	}
	if max := c.MaxGraphs / minPerShard; c.Shards > max {
		c.Shards = max
	}
	// Round shards down to a power of two for mask-based selection.
	n := 1
	for n*2 <= c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MemoMaxStates <= 0 {
		c.MemoMaxStates = 1 << 20
	}
	return c
}

// Sharded is the in-memory Backend: entries striped over independently
// locked shards selected by a hash of the content hash, each shard with
// its own intrusive doubly-linked LRU list. Every operation is O(1) in
// the number of cached entries — the striped locks kill the old global
// mutexes and the linked list kills the old O(n) eviction scan.
type Sharded struct {
	cfg    Config
	shards []shard

	memoReuses atomic.Int64
	boundsHits atomic.Int64
	treeHits   atomic.Int64
	evictions  atomic.Int64
	restored   atomic.Int64
}

// shard is one stripe: a map for lookup plus an intrusive LRU list
// (head = most recently used; tail evicted first).
type shard struct {
	mu         sync.Mutex
	entries    map[string]*entry
	head, tail *entry
	cap        int
}

// entry is everything the store knows about one hypergraph.
type entry struct {
	hash     string
	bounds   Bounds
	tree     *Tree
	treeW    int
	memos    map[int]*Table
	restored []WidthSummary // snapshot summaries with no live table

	prev, next *entry
}

// NewSharded returns a Sharded backend.
func NewSharded(cfg Config) *Sharded {
	cfg = cfg.withDefaults()
	perShard := (cfg.MaxGraphs + cfg.Shards - 1) / cfg.Shards
	s := &Sharded{cfg: cfg, shards: make([]shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = shard{entries: make(map[string]*entry), cap: perShard}
	}
	return s
}

// shardFor selects the stripe for a content hash (FNV-1a).
func (s *Sharded) shardFor(hash string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(hash); i++ {
		h ^= uint32(hash[i])
		h *= 16777619
	}
	return &s.shards[int(h)&(len(s.shards)-1)]
}

// get returns the entry for hash, creating it when create is set, and
// moves it to the LRU front. Caller must hold sh.mu.
func (sh *shard) get(hash string, create bool, evicted *atomic.Int64) *entry {
	e := sh.entries[hash]
	if e != nil {
		sh.touch(e)
		return e
	}
	if !create {
		return nil
	}
	if len(sh.entries) >= sh.cap {
		if tail := sh.tail; tail != nil {
			sh.unlink(tail)
			delete(sh.entries, tail.hash)
			evicted.Add(1)
		}
	}
	e = &entry{hash: hash}
	sh.entries[hash] = e
	sh.pushFront(e)
	return e
}

func (sh *shard) touch(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Bounds implements Backend.
func (s *Sharded) Bounds(hash string) (Bounds, bool) {
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.get(hash, false, &s.evictions)
	if e == nil || !e.bounds.Known() {
		return Bounds{}, false
	}
	s.boundsHits.Add(1)
	return e.bounds, true
}

// MergeBounds implements Backend.
func (s *Sharded) MergeBounds(hash string, b Bounds) {
	if !b.Known() {
		return
	}
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.get(hash, true, &s.evictions).bounds.Merge(b)
}

// Decomposition implements Backend.
func (s *Sharded) Decomposition(hash string) (*Tree, bool) {
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.get(hash, false, &s.evictions)
	if e == nil || e.tree == nil {
		return nil, false
	}
	s.treeHits.Add(1)
	return e.tree, true
}

// PutDecomposition implements Backend.
func (s *Sharded) PutDecomposition(hash string, t *Tree) {
	w := t.Width()
	if w == 0 {
		return
	}
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.get(hash, true, &s.evictions)
	if e.tree == nil || w < e.treeW {
		e.tree, e.treeW = t, w
	}
	e.bounds.Merge(Bounds{UB: w})
}

// DropDecomposition implements Backend.
func (s *Sharded) DropDecomposition(hash string) {
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[hash]; e != nil {
		e.tree, e.treeW = nil, 0
	}
}

// Memo implements Backend.
func (s *Sharded) Memo(hash string, k int) (Memo, bool) {
	sh := s.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.get(hash, true, &s.evictions)
	if t := e.memos[k]; t != nil {
		s.memoReuses.Add(1)
		return t, true
	}
	if e.memos == nil {
		e.memos = make(map[int]*Table)
	}
	t := NewTable(s.cfg.MemoMaxStates)
	e.memos[k] = t
	return t, false
}

// Stats implements Backend.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Shards:     len(s.shards),
		MemoReuses: s.memoReuses.Load(),
		BoundsHits: s.boundsHits.Load(),
		TreeHits:   s.treeHits.Load(),
		Evictions:  s.evictions.Load(),
		Restored:   s.restored.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Entries += int64(len(sh.entries))
		for _, e := range sh.entries {
			if e.tree != nil {
				st.Trees++
			}
			if e.bounds.Known() {
				st.BoundsGraphs++
			}
			st.MemoTables += int64(len(e.memos))
			for _, t := range e.memos {
				st.MemoStates += t.Entries()
			}
		}
		sh.mu.Unlock()
	}
	return st
}

// Info implements Backend.
func (s *Sharded) Info(max int) []EntryInfo {
	var out []EntryInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for e := sh.head; e != nil; e = e.next {
			if max > 0 && len(out) >= max {
				break
			}
			out = append(out, e.info())
		}
		sh.mu.Unlock()
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// info snapshots one entry. Caller must hold the shard lock.
func (e *entry) info() EntryInfo {
	in := EntryInfo{Hash: e.hash, Bounds: e.bounds, HasTree: e.tree != nil, TreeWidth: e.treeW}
	for k, t := range e.memos {
		in.Memos = append(in.Memos, WidthSummary{K: k, States: t.Entries()})
	}
	for _, ws := range e.restored {
		if _, live := e.memos[ws.K]; !live {
			in.Memos = append(in.Memos, ws)
		}
	}
	sort.Slice(in.Memos, func(a, b int) bool { return in.Memos[a].K < in.Memos[b].K })
	return in
}

// Purge implements Backend.
func (s *Sharded) Purge() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// Export implements Backend.
func (s *Sharded) Export() Snapshot {
	snap := Snapshot{Version: SnapshotVersion}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for e := sh.head; e != nil; e = e.next {
			if !e.bounds.Known() && e.tree == nil && len(e.memos) == 0 {
				continue
			}
			in := e.info()
			snap.Entries = append(snap.Entries, SnapshotEntry{
				Hash:    e.hash,
				Bounds:  e.bounds,
				Tree:    e.tree,
				Refuted: in.Memos,
			})
		}
		sh.mu.Unlock()
	}
	return snap
}

// Import implements Backend. The returned count is the number of
// snapshot entries still live in the store after the merge — importing
// a snapshot larger than the LRU cap reports what actually survived,
// not the file's size.
func (s *Sharded) Import(snap Snapshot) (int, error) {
	if err := snap.Validate(); err != nil {
		return 0, err
	}
	for _, se := range snap.Entries {
		if se.Hash == "" {
			continue
		}
		sh := s.shardFor(se.Hash)
		sh.mu.Lock()
		e := sh.get(se.Hash, true, &s.evictions)
		e.bounds.Merge(se.Bounds)
		if w := se.Tree.Width(); w > 0 && (e.tree == nil || w < e.treeW) {
			e.tree, e.treeW = se.Tree, w
			e.bounds.Merge(Bounds{UB: w})
		}
	summaries:
		for _, ws := range se.Refuted {
			if _, live := e.memos[ws.K]; live {
				continue
			}
			for i := range e.restored {
				if e.restored[i].K == ws.K {
					if ws.States > e.restored[i].States {
						e.restored[i].States = ws.States
					}
					continue summaries
				}
			}
			e.restored = append(e.restored, ws)
		}
		sh.mu.Unlock()
	}
	// Second pass: count survivors (later entries may have LRU-evicted
	// earlier ones when the snapshot exceeds the cap).
	n := 0
	for _, se := range snap.Entries {
		if se.Hash == "" {
			continue
		}
		sh := s.shardFor(se.Hash)
		sh.mu.Lock()
		_, live := sh.entries[se.Hash]
		sh.mu.Unlock()
		if live {
			n++
		}
	}
	s.restored.Add(int64(n))
	return n, nil
}
