package store

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent identical requests: among callers that
// Do() the same key at the same time, exactly one (the leader) runs the
// function; the rest (followers) block until the leader finishes and
// share its value. Unlike a cache, nothing is retained — once the
// leader's call completes the key is forgotten, so a later Do runs
// fresh. The service layer keys flights by (content hash, mode, K) so N
// identical in-flight submissions — including duplicates inside one
// Batch — burn one solver run instead of N.
type Flight struct {
	mu      sync.Mutex
	calls   map[string]*flightCall
	waiting atomic.Int64
}

// flightCall is one in-flight key.
type flightCall struct {
	done chan struct{}
	val  any
}

// NewFlight returns an empty Flight.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do runs fn under key, coalescing with concurrent callers. The leader
// (leader == true) executes fn on the caller's own goroutine with the
// caller's context and always runs fn to completion before returning.
// Followers wait for the leader's value, or abort with ctx.Err() when
// their own context expires first — the leader's run is unaffected.
// When the leader's value and the follower's cancellation are both
// ready, the value wins: an answer that has already been computed is
// never discarded for a context that expired in the same instant.
//
// Note the sharing contract: followers receive the leader's value as
// is, including any error it carries. Callers that must not share
// failures should inspect the value and retry outside the flight.
func (f *Flight) Do(ctx context.Context, key string, fn func() any) (val any, leader bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		f.waiting.Add(1)
		defer f.waiting.Add(-1)
		select {
		case <-c.done:
			return c.val, false, nil
		case <-ctx.Done():
			// Both arms may have been ready and select picks one at
			// random; prefer the delivered value over the cancellation.
			select {
			case <-c.done:
				return c.val, false, nil
			default:
			}
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	// The cleanup is deferred so a panicking fn cannot wedge the key:
	// the call is forgotten and followers are released (with a nil
	// value) even as the panic unwinds.
	defer func() {
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val = fn()
	return c.val, true, nil
}

// InFlight returns the number of keys currently being computed.
func (f *Flight) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// Waiting returns the number of followers currently blocked on a
// leader's result.
func (f *Flight) Waiting() int { return int(f.waiting.Load()) }
