package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// LogConfig sizes a disk Log. The zero value (plus a Dir) picks
// defaults.
type LogConfig struct {
	// Dir is the directory holding the segment files (required; created
	// if missing). One Log owns the directory exclusively.
	Dir string
	// SegmentBytes rotates the active segment once it grows past this
	// size. Default 4 MiB.
	SegmentBytes int64
	// Fsync is the durability cadence: 0 fsyncs the active segment after
	// every append (every acknowledged record survives a crash), > 0
	// fsyncs at most that often from a background goroutine (a crash can
	// lose at most the unsynced tail).
	Fsync time.Duration
	// CompactRatio is the garbage fraction (dead bytes / total bytes)
	// beyond which a segment rotation triggers background compaction.
	// Default 0.5; negative disables auto-compaction.
	CompactRatio float64
}

func (c LogConfig) withDefaults() LogConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.CompactRatio == 0 {
		c.CompactRatio = 0.5
	}
	return c
}

// DiskStats is the disk tier's corner of Stats.
type DiskStats struct {
	Entries        int64 `json:"entries"`         // hypergraphs in the disk index
	Trees          int64 `json:"trees"`           // witness trees on disk
	Segments       int64 `json:"segments"`        // live segment files
	Bytes          int64 `json:"bytes"`           // total bytes across segments
	LiveBytes      int64 `json:"live_bytes"`      // bytes of records still current
	Appends        int64 `json:"appends"`         // records appended this session
	Syncs          int64 `json:"syncs"`           // fsync calls on segment files
	Compactions    int64 `json:"compactions"`     // compaction passes completed
	TruncatedTail  int64 `json:"truncated_tail"`  // bytes cut from a torn tail on open
	CorruptRecords int64 `json:"corrupt_records"` // records rejected by checksum/framing
	TreeLoads      int64 `json:"tree_loads"`      // witness trees read back from disk
	Errors         int64 `json:"errors"`          // I/O failures (appends kept best-effort)
}

// Record type tags. Records are merges, not assignments: replaying any
// superseded prefix before the current record converges to the same
// state, which is what makes "compacted segment appended after the
// originals" crash-safe at every intermediate step.
const (
	recBounds  = "b" // full merged bounds for a hash
	recTree    = "t" // witness tree (strictly better than any before it)
	recDrop    = "d" // tombstone: forget the hash's tree (failed re-validation)
	recRefuted = "r" // full merged per-width refutation summaries
)

// logRecord is the JSON payload of one framed record.
type logRecord struct {
	T       string         `json:"t"`
	Hash    string         `json:"h"`
	LB      int            `json:"lb,omitempty"`
	UB      int            `json:"ub,omitempty"`
	Tree    *Tree          `json:"tree,omitempty"`
	Refuted []WidthSummary `json:"ref,omitempty"`
}

// Framing: 4-byte little-endian payload length, 4-byte little-endian
// CRC-32C (Castagnoli) of the payload, payload bytes. The CRC guards
// both torn tails (a partial record fails the check) and bit rot (a
// flipped payload bit fails it too).
const frameHeader = 8

// maxRecordBytes rejects absurd lengths during recovery so a corrupted
// length field cannot make the scanner allocate gigabytes.
const maxRecordBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one append-only file. The highest id is the active one.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64
}

func segName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

// logEntry is the in-memory index of one hash's live records: bounds
// and refutation summaries are held directly (small), the witness tree
// stays on disk and is read back on demand through its frame offset.
type logEntry struct {
	bounds  Bounds
	refuted []WidthSummary

	treeSeg *segment // nil = no live tree
	treeOff int64    // frame start offset of the live tree record
	treeW   int

	// frame sizes of the live records, for garbage accounting.
	bBytes, tBytes, rBytes int64
}

// Log is a crash-safe, append-only record log over segment files:
// bounds / tree / refutation-summary records keyed by content hash,
// length-prefixed and checksummed, fsync'd on a configurable cadence.
// Opening a log replays every segment into an in-memory index, cutting
// a torn tail off the last segment (a crash mid-append loses at most
// the unsynced suffix, never earlier records). Rotation bounds segment
// size; compaction rewrites live entries into a fresh segment and
// drops superseded bounds/trees. Witness trees are indexed by offset
// and read back (checksum-verified) on demand, so the resident cost of
// a disk entry is bounds + summaries, not the tree payload.
//
// All methods are safe for concurrent use.
type Log struct {
	cfg LogConfig

	mu             sync.Mutex
	index          map[string]*logEntry
	segs           []*segment // ascending id; last is active
	dirty          bool       // active segment has unsynced appends
	broken         bool       // an append failed and could not be rolled back
	compactPending bool       // a background compaction is queued or running
	inCompact      bool       // Compact is rewriting (suppresses rotation)
	closed         bool
	liveBytes      int64

	appends, syncs, compactions   int64
	truncated, corrupt, treeLoads int64
	errs                          int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// OpenLog opens (or creates) the log in cfg.Dir, replaying existing
// segments and truncating a torn tail on the last one.
func OpenLog(cfg LogConfig) (*Log, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: LogConfig.Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{cfg: cfg, index: make(map[string]*logEntry), stop: make(chan struct{})}

	names, err := filepath.Glob(filepath.Join(cfg.Dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, path := range names {
		var id int
		base := filepath.Base(path)
		if _, err := fmt.Sscanf(base, "seg-%08d.log", &id); err != nil || segName(id) != base {
			continue // foreign file; never touch it
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			l.closeAll()
			return nil, err
		}
		l.segs = append(l.segs, &segment{id: id, path: path, f: f})
	}
	for i, sg := range l.segs {
		if err := l.replay(sg, i == len(l.segs)-1); err != nil {
			l.closeAll()
			return nil, err
		}
	}
	if len(l.segs) == 0 {
		if err := l.addSegment(1); err != nil {
			return nil, err
		}
	}
	if cfg.Fsync > 0 {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// replay scans one segment record by record, applying each valid record
// to the index. The scan stops at the first invalid record: on the last
// segment the remainder is a torn tail and is truncated so new appends
// land after valid data; on earlier segments it is bit rot and the
// remainder is skipped (compaction rewrites the survivors).
func (l *Log) replay(sg *segment, last bool) error {
	info, err := sg.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, frameHeader)
	var payload []byte
	for off+frameHeader <= size {
		if _, err := sg.f.ReadAt(hdr, off); err != nil {
			return err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes || off+frameHeader+n > size {
			break
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := sg.f.ReadAt(payload, off+frameHeader); err != nil {
			return err
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		l.apply(sg, off, frameHeader+n, rec)
		off += frameHeader + n
	}
	if off < size {
		if last {
			if err := sg.f.Truncate(off); err != nil {
				return err
			}
			l.truncated += size - off
		} else {
			l.corrupt++
		}
	}
	sg.size = off
	return nil
}

// apply folds one valid record into the index. frameLen is the full
// on-disk footprint (header + payload) for garbage accounting.
func (l *Log) apply(sg *segment, off, frameLen int64, rec logRecord) {
	if rec.Hash == "" {
		return
	}
	e := l.index[rec.Hash]
	if e == nil {
		e = &logEntry{}
		l.index[rec.Hash] = e
	}
	switch rec.T {
	case recBounds:
		e.bounds.Merge(Bounds{LB: rec.LB, UB: rec.UB})
		l.liveBytes += frameLen - e.bBytes
		e.bBytes = frameLen
	case recTree:
		w := rec.Tree.Width()
		if w == 0 {
			return
		}
		if e.treeSeg == nil || w < e.treeW {
			l.liveBytes += frameLen - e.tBytes
			e.treeSeg, e.treeOff, e.treeW, e.tBytes = sg, off, w, frameLen
		}
		e.bounds.Merge(Bounds{UB: w})
	case recDrop:
		l.liveBytes -= e.tBytes
		e.treeSeg, e.treeOff, e.treeW, e.tBytes = nil, 0, 0, 0
	case recRefuted:
		mergeSummaries(&e.refuted, rec.Refuted)
		l.liveBytes += frameLen - e.rBytes
		e.rBytes = frameLen
	}
}

// mergeSummaries folds ws into dst: per width the state count only
// rises.
func mergeSummaries(dst *[]WidthSummary, ws []WidthSummary) (changed bool) {
outer:
	for _, w := range ws {
		for i := range *dst {
			if (*dst)[i].K == w.K {
				if w.States > (*dst)[i].States {
					(*dst)[i].States = w.States
					changed = true
				}
				continue outer
			}
		}
		*dst = append(*dst, w)
		changed = true
	}
	if changed {
		sort.Slice(*dst, func(a, b int) bool { return (*dst)[a].K < (*dst)[b].K })
	}
	return changed
}

// addSegment creates and fsyncs a fresh active segment. Caller must
// hold l.mu (or own the log exclusively, as in OpenLog).
func (l *Log) addSegment(id int) error {
	path := filepath.Join(l.cfg.Dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.segs = append(l.segs, &segment{id: id, path: path, f: f})
	return syncDir(l.cfg.Dir)
}

func (l *Log) active() *segment { return l.segs[len(l.segs)-1] }

func (l *Log) closeAll() {
	for _, sg := range l.segs {
		sg.f.Close()
	}
}

// syncLoop is the background fsync cadence for Fsync > 0.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.Fsync)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// syncLocked fsyncs the active segment if dirty. Caller holds l.mu.
func (l *Log) syncLocked() {
	if !l.dirty || l.closed {
		return
	}
	if err := l.active().f.Sync(); err != nil {
		l.errs++
		return
	}
	l.dirty = false
	l.syncs++
}

// append frames, writes, and (per cadence) fsyncs one record into the
// active segment, returning the segment and frame offset the record
// landed at. Caller holds l.mu. A failed write is rolled back by
// truncating to the pre-append offset so a torn record can never sit
// in front of later good ones; if even that fails the log is marked
// broken and refuses further appends (reads keep working).
func (l *Log) append(rec logRecord) (sg *segment, off, frameLen int64, err error) {
	if l.closed {
		return nil, 0, 0, fmt.Errorf("store: log closed")
	}
	if l.broken {
		return nil, 0, 0, fmt.Errorf("store: log broken by earlier write failure")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, 0, 0, err
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)

	sg = l.active()
	off = sg.size
	if _, werr := sg.f.WriteAt(buf, off); werr != nil {
		l.errs++
		if terr := sg.f.Truncate(off); terr != nil {
			l.broken = true
		}
		return nil, 0, 0, werr
	}
	sg.size += int64(len(buf))
	l.appends++
	if l.cfg.Fsync == 0 {
		if serr := sg.f.Sync(); serr != nil {
			l.errs++
			return nil, 0, 0, serr
		}
		l.syncs++
	} else {
		l.dirty = true
	}
	l.maybeRotate()
	return sg, off, int64(len(buf)), nil
}

// maybeRotate starts a new segment once the active one is full, and
// kicks off background compaction when the garbage ratio warrants it.
// Caller holds l.mu. Rotation is suppressed while Compact itself is
// writing — a compacted segment larger than SegmentBytes grows in
// place until the next natural rotation instead of re-triggering
// compaction in a loop.
func (l *Log) maybeRotate() {
	if l.inCompact || l.active().size < l.cfg.SegmentBytes {
		return
	}
	l.syncLocked()
	if err := l.addSegment(l.active().id + 1); err != nil {
		l.errs++
		return
	}
	total := l.totalBytes()
	if l.cfg.CompactRatio >= 0 && !l.compactPending &&
		total > 2*l.cfg.SegmentBytes &&
		float64(total-l.liveBytes) > l.cfg.CompactRatio*float64(total) {
		l.compactPending = true
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.Compact()
			l.mu.Lock()
			l.compactPending = false
			l.mu.Unlock()
		}()
	}
}

func (l *Log) totalBytes() int64 {
	var n int64
	for _, sg := range l.segs {
		n += sg.size
	}
	return n
}

// Bounds returns the cached bounds for hash.
func (l *Log) Bounds(hash string) (Bounds, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil || !e.bounds.Known() {
		return Bounds{}, false
	}
	return e.bounds, true
}

// MergeBounds merges b and appends a record when the merge changed the
// on-disk state. Appending the post-merge bounds (not the delta) makes
// every older bounds record for the hash dead weight, which is what
// compaction reclaims.
func (l *Log) MergeBounds(hash string, b Bounds) error {
	if hash == "" || !b.Known() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil {
		e = &logEntry{}
		l.index[hash] = e
	}
	if !e.bounds.Merge(b) {
		return nil
	}
	_, _, n, err := l.append(logRecord{T: recBounds, Hash: hash, LB: e.bounds.LB, UB: e.bounds.UB})
	if err == nil {
		l.liveBytes += n - e.bBytes
		e.bBytes = n
	}
	return err
}

// Tree reads the live witness tree for hash back from disk, verifying
// its checksum. A record that fails verification (bit rot after open)
// is dropped from the index and reported as a miss.
func (l *Log) Tree(hash string) (*Tree, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil || e.treeSeg == nil {
		return nil, false, nil
	}
	rec, err := l.readRecord(e.treeSeg, e.treeOff)
	if err != nil || rec.Tree == nil {
		l.corrupt++
		l.liveBytes -= e.tBytes
		e.treeSeg, e.treeOff, e.treeW, e.tBytes = nil, 0, 0, 0
		return nil, false, err
	}
	l.treeLoads++
	return rec.Tree, true, nil
}

// TreeWidth reports the width of the live tree without reading it.
func (l *Log) TreeWidth(hash string) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil || e.treeSeg == nil {
		return 0, false
	}
	return e.treeW, true
}

// readRecord reads and verifies one frame. Caller holds l.mu.
func (l *Log) readRecord(sg *segment, off int64) (logRecord, error) {
	var rec logRecord
	hdr := make([]byte, frameHeader)
	if _, err := sg.f.ReadAt(hdr, off); err != nil {
		return rec, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return rec, fmt.Errorf("store: corrupt record length %d at %s:%d", n, sg.path, off)
	}
	payload := make([]byte, n)
	if _, err := sg.f.ReadAt(payload, off+frameHeader); err != nil {
		return rec, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return rec, fmt.Errorf("store: checksum mismatch at %s:%d", sg.path, off)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// PutTree appends t when it is strictly better (narrower) than the
// live tree for hash, and merges its width into the bounds.
func (l *Log) PutTree(hash string, t *Tree) error {
	w := t.Width()
	if hash == "" || w == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil {
		e = &logEntry{}
		l.index[hash] = e
	}
	if e.treeSeg != nil && w >= e.treeW {
		return nil
	}
	sg, off, n, err := l.append(logRecord{T: recTree, Hash: hash, Tree: t})
	if err != nil {
		return err
	}
	l.liveBytes += n - e.tBytes
	e.treeSeg, e.treeOff, e.treeW, e.tBytes = sg, off, w, n
	e.bounds.Merge(Bounds{UB: w})
	return nil
}

// DropTree appends a tombstone so a tree that failed re-validation
// stays gone across restarts.
func (l *Log) DropTree(hash string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil || e.treeSeg == nil {
		return nil
	}
	if _, _, _, err := l.append(logRecord{T: recDrop, Hash: hash}); err != nil {
		return err
	}
	l.liveBytes -= e.tBytes
	e.treeSeg, e.treeOff, e.treeW, e.tBytes = nil, 0, 0, 0
	return nil
}

// MergeRefuted merges per-width refutation summaries and appends the
// merged set when it changed.
func (l *Log) MergeRefuted(hash string, ws []WidthSummary) error {
	if hash == "" || len(ws) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil {
		e = &logEntry{}
		l.index[hash] = e
	}
	if !mergeSummaries(&e.refuted, ws) {
		return nil
	}
	_, _, n, err := l.append(logRecord{T: recRefuted, Hash: hash, Refuted: e.refuted})
	if err == nil {
		l.liveBytes += n - e.rBytes
		e.rBytes = n
	}
	return err
}

// Refuted returns the live refutation summaries for hash.
func (l *Log) Refuted(hash string) []WidthSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.index[hash]
	if e == nil {
		return nil
	}
	return append([]WidthSummary(nil), e.refuted...)
}

// Hashes lists every indexed hash in sorted order.
func (l *Log) Hashes() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.index))
	for h := range l.index {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed hashes.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Compact rewrites every live entry into a fresh segment and removes
// the older ones. Crash safety: the compacted segment has a higher id
// than everything it replaces, and records are merges — replaying
// originals followed by a (possibly partial) compacted segment
// converges to the same state, so a crash at any point between "start
// writing" and "old segments removed" recovers cleanly.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: log closed")
	}
	l.syncLocked()
	nOld := len(l.segs)
	if err := l.addSegment(l.active().id + 1); err != nil {
		l.errs++
		return err
	}
	l.inCompact = true
	defer func() { l.inCompact = false }()
	appendsBefore := l.appends

	hashes := make([]string, 0, len(l.index))
	for h := range l.index {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)

	var live int64
	for _, hash := range hashes {
		e := l.index[hash]
		if e.bounds.Known() {
			_, _, n, err := l.append(logRecord{T: recBounds, Hash: hash, LB: e.bounds.LB, UB: e.bounds.UB})
			if err != nil {
				return err
			}
			e.bBytes = n
			live += n
		} else {
			e.bBytes = 0
		}
		if e.treeSeg != nil {
			rec, err := l.readRecord(e.treeSeg, e.treeOff)
			if err != nil || rec.Tree == nil {
				l.corrupt++
				e.treeSeg, e.treeOff, e.treeW, e.tBytes = nil, 0, 0, 0
			} else {
				sg, off, n, err := l.append(logRecord{T: recTree, Hash: hash, Tree: rec.Tree})
				if err != nil {
					return err
				}
				e.treeSeg, e.treeOff, e.tBytes = sg, off, n
				live += n
			}
		}
		if len(e.refuted) > 0 {
			_, _, n, err := l.append(logRecord{T: recRefuted, Hash: hash, Refuted: e.refuted})
			if err != nil {
				return err
			}
			e.rBytes = n
			live += n
		} else {
			e.rBytes = 0
		}
	}
	// Compaction writes are maintenance, not traffic.
	l.appends = appendsBefore
	if err := l.active().f.Sync(); err != nil {
		l.errs++
		return err
	}
	l.dirty = false
	l.syncs++

	// The compacted state is durable; the originals are now redundant.
	old := l.segs[:nOld]
	l.segs = append([]*segment(nil), l.segs[nOld:]...)
	for _, sg := range old {
		sg.f.Close()
		if err := os.Remove(sg.path); err != nil {
			l.errs++
		}
	}
	if err := syncDir(l.cfg.Dir); err != nil {
		l.errs++
	}
	l.liveBytes = live
	l.compactions++
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	before := l.errs
	l.syncLocked()
	if l.errs > before {
		return fmt.Errorf("store: fsync failed")
	}
	return nil
}

// Purge removes every segment and starts the log empty.
func (l *Log) Purge() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: log closed")
	}
	next := l.active().id + 1
	for _, sg := range l.segs {
		sg.f.Close()
		if err := os.Remove(sg.path); err != nil {
			l.errs++
		}
	}
	l.segs = nil
	l.index = make(map[string]*logEntry)
	l.liveBytes = 0
	l.dirty = false
	if err := l.addSegment(next); err != nil {
		return err
	}
	return nil
}

// Export captures the live disk state as a portable Snapshot.
func (l *Log) Export() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := Snapshot{Version: SnapshotVersion}
	hashes := make([]string, 0, len(l.index))
	for h := range l.index {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, hash := range hashes {
		e := l.index[hash]
		se := SnapshotEntry{Hash: hash, Bounds: e.bounds,
			Refuted: append([]WidthSummary(nil), e.refuted...)}
		if e.treeSeg != nil {
			if rec, err := l.readRecord(e.treeSeg, e.treeOff); err == nil {
				se.Tree = rec.Tree
			}
		}
		if !se.Bounds.Known() && se.Tree == nil && len(se.Refuted) == 0 {
			continue
		}
		snap.Entries = append(snap.Entries, se)
	}
	return snap
}

// Stats snapshots the disk counters.
func (l *Log) Stats() DiskStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := DiskStats{
		Entries:        int64(len(l.index)),
		Segments:       int64(len(l.segs)),
		Bytes:          l.totalBytes(),
		LiveBytes:      l.liveBytes,
		Appends:        l.appends,
		Syncs:          l.syncs,
		Compactions:    l.compactions,
		TruncatedTail:  l.truncated,
		CorruptRecords: l.corrupt,
		TreeLoads:      l.treeLoads,
		Errors:         l.errs,
	}
	for _, e := range l.index {
		if e.treeSeg != nil {
			st.Trees++
		}
	}
	return st
}

// Close fsyncs and closes every segment. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.syncLocked()
	failed := l.dirty
	l.closed = true
	close(l.stop)
	l.closeAll()
	l.mu.Unlock()
	l.wg.Wait()
	if failed {
		return fmt.Errorf("store: final fsync failed; unsynced tail may be lost")
	}
	return nil
}
