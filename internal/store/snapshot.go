package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// SnapshotVersion is the current snapshot schema version. Load rejects
// files written by a different major schema so a format change can
// never silently poison a warm restart.
const SnapshotVersion = 1

// Snapshot is the portable, versioned form of a store's contents:
// width bounds, witness decompositions (as hypergraph-independent
// Trees), and refutation summaries per hypergraph. Memo table contents
// are deliberately not persisted — they are large, regenerate quickly,
// and only their summaries matter for introspection — so snapshots stay
// small enough to write on every graceful shutdown.
type Snapshot struct {
	Version int             `json:"version"`
	SavedAt time.Time       `json:"saved_at,omitempty"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one hypergraph's persisted knowledge.
type SnapshotEntry struct {
	Hash    string         `json:"hash"`
	Bounds  Bounds         `json:"bounds"`
	Tree    *Tree          `json:"tree,omitempty"`
	Refuted []WidthSummary `json:"refuted,omitempty"`
}

// Validate checks the schema version and basic well-formedness.
func (s Snapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("store: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	for i, e := range s.Entries {
		if e.Hash == "" {
			return fmt.Errorf("store: snapshot entry %d has no hash", i)
		}
		if e.Bounds.LB < 0 || e.Bounds.UB < 0 {
			return fmt.Errorf("store: snapshot entry %d has negative bounds", i)
		}
	}
	return nil
}

// WriteFile writes the snapshot as indented JSON, stamping SavedAt.
// The write goes through a fresh temp file + rename so a crash mid-save
// never truncates an existing snapshot, and so concurrent saves to the
// same path cannot corrupt each other: each save owns a unique
// os.CreateTemp name (a fixed temp name would let one writer rename
// another's half-written file over a good snapshot), the temp file is
// fsync'd before the rename (the data is durable before it becomes
// visible under path), and the parent directory is fsync'd after (the
// rename itself is durable).
func WriteFile(path string, s Snapshot) error {
	s.Version = SnapshotVersion
	s.SavedAt = time.Now().UTC()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; snapshots keep their documented 0644.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-created, renamed, or removed
// entry inside it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

// ReadFile loads and validates a snapshot written by WriteFile.
func ReadFile(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("store: parse snapshot %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}
