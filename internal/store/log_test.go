package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testTree returns a small witness tree of the given width.
func testTree(w int) *Tree {
	lam := make([]int, w)
	bag := make([]int, w)
	for i := range lam {
		lam[i], bag[i] = i, i
	}
	return &Tree{Lambda: lam, Bag: bag, Children: []*Tree{{Lambda: []int{0}, Bag: []int{0}}}}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return names[len(names)-1]
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.MergeBounds("g1", Bounds{LB: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.PutTree("g1", testTree(4)); err != nil {
		t.Fatal(err)
	}
	if err := l.MergeRefuted("g1", []WidthSummary{{K: 2, States: 17}, {K: 1, States: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := l.PutTree("g2", testTree(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.DropTree("g2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if b, ok := l.Bounds("g1"); !ok || b.LB != 3 || b.UB != 4 {
		t.Fatalf("g1 bounds %+v ok=%v, want LB=3 UB=4", b, ok)
	}
	tr, ok, err := l.Tree("g1")
	if err != nil || !ok || tr.Width() != 4 || tr.Nodes() != 2 {
		t.Fatalf("g1 tree w=%d n=%d ok=%v err=%v", tr.Width(), tr.Nodes(), ok, err)
	}
	if ws := l.Refuted("g1"); len(ws) != 2 || ws[0].K != 1 || ws[1].States != 17 {
		t.Fatalf("g1 refuted %+v", ws)
	}
	// g2's tombstone must survive the restart; its UB (from the tree)
	// stays — the witness is gone, the width-level fact is not.
	if _, ok, _ := l.Tree("g2"); ok {
		t.Fatal("g2 tree must stay dropped after reopen")
	}
	if b, ok := l.Bounds("g2"); !ok || b.UB != 2 {
		t.Fatalf("g2 bounds %+v ok=%v, want UB=2", b, ok)
	}
	if n := l.Len(); n != 2 {
		t.Fatalf("len=%d, want 2", n)
	}
}

// TestLogSupersededRecordsDoNotResurrect: merges only tighten across
// append + replay — an older, looser record replayed before a newer
// one never wins.
func TestLogSupersededRecordsDoNotResurrect(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l.MergeBounds("g", Bounds{LB: 2, UB: 9})
	l.PutTree("g", testTree(6))
	l.PutTree("g", testTree(3)) // better: supersedes
	l.PutTree("g", testTree(5)) // worse: no-op
	l.MergeBounds("g", Bounds{LB: 3})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if b, _ := l.Bounds("g"); b.LB != 3 || b.UB != 3 {
		t.Fatalf("bounds %+v, want LB=3 UB=3", b)
	}
	if tr, ok, _ := l.Tree("g"); !ok || tr.Width() != 3 {
		t.Fatalf("tree width %d ok=%v, want 3", tr.Width(), ok)
	}
}

func TestLogRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments, auto-compaction off: the test drives Compact.
	l, err := OpenLog(LogConfig{Dir: dir, SegmentBytes: 512, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Lots of superseded records: the same hashes get ever-better trees.
	for round := 9; round >= 2; round-- {
		for i := 0; i < 8; i++ {
			hash := fmt.Sprintf("g%d", i)
			l.PutTree(hash, testTree(round))
			l.MergeBounds(hash, Bounds{LB: 2})
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("segments=%d, want rotation to have happened", st.Segments)
	}
	if st.LiveBytes >= st.Bytes {
		t.Fatalf("live=%d total=%d: superseded records must count as garbage", st.LiveBytes, st.Bytes)
	}
	preBytes := st.Bytes

	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.Segments != 1 {
		t.Fatalf("segments=%d after compaction, want 1", st.Segments)
	}
	if st.Bytes >= preBytes {
		t.Fatalf("bytes %d -> %d: compaction must reclaim garbage", preBytes, st.Bytes)
	}
	if st.Compactions != 1 {
		t.Fatalf("compactions=%d, want 1", st.Compactions)
	}
	// Live state intact, trees readable from the compacted segment.
	for i := 0; i < 8; i++ {
		hash := fmt.Sprintf("g%d", i)
		if tr, ok, err := l.Tree(hash); err != nil || !ok || tr.Width() != 2 {
			t.Fatalf("%s after compaction: w=%d ok=%v err=%v", hash, tr.Width(), ok, err)
		}
	}
	// Appends after compaction still work and everything survives reopen.
	l.PutTree("fresh", testTree(3))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n := l.Len(); n != 9 {
		t.Fatalf("len=%d after reopen, want 9", n)
	}
	if tr, ok, _ := l.Tree("g3"); !ok || tr.Width() != 2 {
		t.Fatalf("g3 lost by compaction+reopen (w=%d ok=%v)", tr.Width(), ok)
	}
}

// TestLogAutoCompaction: rotation triggers background compaction once
// the garbage ratio crosses the threshold.
func TestLogAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir, SegmentBytes: 256, CompactRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// One hash, endlessly superseded: nearly everything is garbage.
	for w := 60; w >= 2; w-- {
		l.PutTree("g", testTree(w))
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatalf("no background compaction: %+v", st)
	}
	if tr, ok, err := l.Tree("g"); err != nil || !ok || tr.Width() != 2 {
		t.Fatalf("g after auto-compaction: w=%d ok=%v err=%v", tr.Width(), ok, err)
	}
}

// TestLogTornTailRecovery: garbage appended after the last valid
// record (a crash mid-append) is truncated on open; every earlier
// record survives; new appends land cleanly after recovery.
func TestLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.PutTree(fmt.Sprintf("g%d", i), testTree(i%3+2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn tail: half a frame of garbage.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if st := l.Stats(); st.TruncatedTail == 0 {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	for i := 0; i < 10; i++ {
		if tr, ok, err := l.Tree(fmt.Sprintf("g%d", i)); err != nil || !ok || tr.Width() != i%3+2 {
			t.Fatalf("g%d lost to torn tail (w=%d ok=%v err=%v)", i, tr.Width(), ok, err)
		}
	}
	// Recovery truncated; the next append must be durable and readable.
	if err := l.PutTree("after", testTree(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, ok, _ := l.Tree("after"); !ok {
		t.Fatal("post-recovery append lost")
	}
}

// TestLogTornTailEveryOffset: a synced log truncated at EVERY byte
// offset inside its final region must reopen with exactly the records
// whose frames lie fully before the cut — no error, no corruption.
func TestLogTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: master})
	if err != nil {
		t.Fatal(err)
	}
	type mark struct {
		hash string
		end  int64 // file offset at which the record is complete
	}
	var marks []mark
	for i := 0; i < 5; i++ {
		hash := fmt.Sprintf("g%d", i)
		if err := l.PutTree(hash, testTree(2)); err != nil {
			t.Fatal(err)
		}
		marks = append(marks, mark{hash, l.active().size})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, master)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Sample every offset in the last two records plus a spread before.
	start := marks[2].end
	for cut := start; cut <= int64(len(data)); cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lc, err := OpenLog(LogConfig{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		for _, m := range marks {
			_, ok, terr := lc.Tree(m.hash)
			want := m.end <= cut
			if terr != nil || ok != want {
				t.Fatalf("cut=%d %s: ok=%v err=%v, want ok=%v", cut, m.hash, ok, terr, want)
			}
		}
		lc.Close()
	}
}

// TestLogBitFlipRecovery: a flipped bit inside a record fails its
// checksum — the log reopens, serves every record before the flip, and
// never serves the corrupted one.
func TestLogBitFlipRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 6; i++ {
		offsets = append(offsets, l.active().size)
		if err := l.PutTree(fmt.Sprintf("g%d", i), testTree(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the record for g3.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[3]+frameHeader+10] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open with bit flip: %v", err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if tr, ok, err := l.Tree(fmt.Sprintf("g%d", i)); err != nil || !ok || tr.Width() != 2 {
			t.Fatalf("g%d before the flip must survive (ok=%v err=%v)", i, ok, err)
		}
	}
	if _, ok, _ := l.Tree("g3"); ok {
		t.Fatal("corrupted record must never be served")
	}
}

func TestLogPurge(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l.PutTree("g", testTree(2))
	if err := l.Purge(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatal("purge left entries")
	}
	l.PutTree("h", testTree(3))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, ok := l.Bounds("g"); ok {
		t.Fatal("purged entry resurrected on reopen")
	}
	if _, ok, _ := l.Tree("h"); !ok {
		t.Fatal("post-purge append lost on reopen")
	}
}

// TestLogFsyncCadence: with a cadence the appends are buffered and the
// background loop (or an explicit Sync) flushes them.
func TestLogFsyncCadence(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir, Fsync: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.MergeBounds(fmt.Sprintf("g%d", i), Bounds{LB: 2})
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Syncs == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := l.Stats(); st.Syncs == 0 {
		t.Fatalf("background fsync never ran: %+v", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogConcurrency: concurrent merges, puts, reads, and a compaction
// under the race detector.
func TestLogConcurrency(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogConfig{Dir: dir, SegmentBytes: 2048, CompactRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				hash := fmt.Sprintf("g%d", i%10)
				switch g % 4 {
				case 0:
					l.MergeBounds(hash, Bounds{LB: i%4 + 2})
				case 1:
					l.PutTree(hash, testTree(i%5+2))
				case 2:
					l.Bounds(hash)
					l.Tree(hash)
				case 3:
					l.MergeRefuted(hash, []WidthSummary{{K: i % 3, States: int64(i)}})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenLog(LogConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if st := l.Stats(); st.Entries == 0 || st.CorruptRecords != 0 {
		t.Fatalf("after concurrent traffic: %+v", st)
	}
}
