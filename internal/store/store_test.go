package store

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/logk"
)

func cycle(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("R"+strconv.Itoa(i+1), "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	return b.Build()
}

// TestBoundsMergeSemantics: the lower bound only ever rises, the
// witnessed upper bound only ever falls, trivial bounds are a no-op.
func TestBoundsMergeSemantics(t *testing.T) {
	s := NewSharded(Config{Shards: 1, MaxGraphs: 8})

	s.MergeBounds("g1", Bounds{LB: 2})
	s.MergeBounds("g1", Bounds{LB: 3, UB: 5})
	s.MergeBounds("g1", Bounds{LB: 2, UB: 4}) // lb cannot regress, ub improves
	if b, ok := s.Bounds("g1"); !ok || b.LB != 3 || b.UB != 4 {
		t.Fatalf("g1: %+v ok=%v, want LB=3 UB=4", b, ok)
	}
	s.MergeBounds("g1", Bounds{UB: 9}) // wider witness: ignored
	if b, _ := s.Bounds("g1"); b.UB != 4 {
		t.Fatalf("ub regressed to %d", b.UB)
	}

	// Trivial bounds must not create an entry.
	s.MergeBounds("g2", Bounds{LB: 1})
	s.MergeBounds("g3", Bounds{})
	if _, ok := s.Bounds("g2"); ok {
		t.Fatal("LB=1 is trivial and must not be cached")
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries=%d, want 1", st.Entries)
	}

	var b Bounds
	if b.Known() || b.Exact() {
		t.Fatal("zero bounds must be unknown")
	}
	b.Merge(Bounds{LB: 3, UB: 3})
	if !b.Exact() {
		t.Fatalf("LB=UB=3 must be exact: %+v", b)
	}
}

// TestEvictionSparesJustReadEntry is the regression for the old
// boundsStore LRU: reading an entry must move it to the front, so an
// insert that triggers eviction drops the least recently used entry,
// never the one just read.
func TestEvictionSparesJustReadEntry(t *testing.T) {
	s := NewSharded(Config{Shards: 1, MaxGraphs: 3})
	s.MergeBounds("a", Bounds{LB: 2})
	s.MergeBounds("b", Bounds{LB: 2})
	s.MergeBounds("c", Bounds{LB: 2})

	// Read "a": it becomes most recent; "b" is now LRU.
	if _, ok := s.Bounds("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	s.MergeBounds("d", Bounds{LB: 2}) // evicts exactly one: "b"

	if _, ok := s.Bounds("a"); !ok {
		t.Fatal("eviction dropped the just-read entry")
	}
	if _, ok := s.Bounds("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if st := s.Stats(); st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 3/1", st.Entries, st.Evictions)
	}
}

// TestShardedCapHolds: the total entry cap holds regardless of shard
// count, and the configured shard count never exceeds the cap.
func TestShardedCapHolds(t *testing.T) {
	s := NewSharded(Config{Shards: 16, MaxGraphs: 2})
	for i := 0; i < 64; i++ {
		s.MergeBounds("h"+strconv.Itoa(i), Bounds{LB: 2})
	}
	if st := s.Stats(); st.Entries > 2 {
		t.Fatalf("cap 2 exceeded: %d entries over %d shards", st.Entries, st.Shards)
	}
}

// TestMemoTables: per-width tables are created once, shared afterwards,
// implement logk.MemoBackend, and honor their state cap.
func TestMemoTables(t *testing.T) {
	s := NewSharded(Config{Shards: 1, MaxGraphs: 4, MemoMaxStates: 2})
	m1, existed := s.Memo("g", 2)
	if existed {
		t.Fatal("first Memo call cannot find an existing table")
	}
	m2, existed := s.Memo("g", 2)
	if !existed || m1 != m2 {
		t.Fatal("second Memo call must return the same table")
	}
	if _, existed := s.Memo("g", 3); existed {
		t.Fatal("a different width is a different table")
	}

	var mb logk.MemoBackend = m1
	mb.Insert("s1")
	mb.Insert("s1") // duplicate: not counted twice
	mb.Insert("s2")
	mb.Insert("s3") // beyond cap: dropped
	if !mb.Lookup([]byte("s1")) || mb.Lookup([]byte("s3")) {
		t.Fatal("lookup disagrees with capped inserts")
	}
	if m1.Entries() != 2 {
		t.Fatalf("entries=%d, want 2", m1.Entries())
	}
	st := s.Stats()
	if st.MemoTables != 2 || st.MemoStates != 2 || st.MemoReuses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func testDecomp(t *testing.T, h *hypergraph.Hypergraph) *decomp.Decomp {
	t.Helper()
	d, ok, err := logk.New(h, logk.Options{K: 2}).Decompose(context.Background())
	if err != nil || !ok {
		t.Fatalf("decompose: ok=%v err=%v", ok, err)
	}
	return d
}

// TestTreeRoundTrip: encode → bind reproduces a CheckHD-valid
// decomposition, including on a renamed hypergraph with the same
// content hash.
func TestTreeRoundTrip(t *testing.T) {
	h := cycle(8)
	d := testDecomp(t, h)
	tree := EncodeTree(d)
	if tree == nil || tree.Width() != d.Width() || tree.Nodes() != d.NumNodes() {
		t.Fatalf("encode lost structure: width %d/%d nodes %d/%d",
			tree.Width(), d.Width(), tree.Nodes(), d.NumNodes())
	}

	bound, err := tree.Bind(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := decomp.CheckHD(bound); err != nil {
		t.Fatalf("rebound decomposition invalid: %v", err)
	}

	// Renamed copy: same content hash, different names and pointer.
	var b hypergraph.Builder
	for i := 0; i < 8; i++ {
		b.MustAddEdge("S"+strconv.Itoa(i), "y"+strconv.Itoa(i), "y"+strconv.Itoa((i+1)%8))
	}
	renamed := b.Build()
	if renamed.ContentHash() != h.ContentHash() {
		t.Fatal("test setup: hashes differ")
	}
	rebound, err := tree.Bind(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if err := decomp.CheckHD(rebound); err != nil {
		t.Fatalf("decomposition invalid on renamed graph: %v", err)
	}
	if rebound.H != renamed {
		t.Fatal("rebound decomposition must reference the new hypergraph")
	}
}

// TestTreeBindRejectsCorruption: out-of-range ids (a corrupted or
// mismatched snapshot) error instead of panicking.
func TestTreeBindRejectsCorruption(t *testing.T) {
	h := cycle(4)
	if _, err := (&Tree{Lambda: []int{99}, Bag: []int{0}}).Bind(h); err == nil {
		t.Fatal("edge id out of range must fail to bind")
	}
	if _, err := (&Tree{Lambda: []int{0}, Bag: []int{99}}).Bind(h); err == nil {
		t.Fatal("vertex id out of range must fail to bind")
	}
	if _, err := (*Tree)(nil).Bind(h); err == nil {
		t.Fatal("nil tree must fail to bind")
	}
}

// TestPutDecompositionOnlyImproves: a wider tree never replaces a
// narrower cached one, and caching a witness merges its width into UB.
func TestPutDecompositionOnlyImproves(t *testing.T) {
	s := NewSharded(Config{Shards: 1, MaxGraphs: 4})
	narrow := &Tree{Lambda: []int{0, 1}, Bag: []int{0}}
	wide := &Tree{Lambda: []int{0, 1, 2}, Bag: []int{0}}

	s.PutDecomposition("g", wide)
	s.PutDecomposition("g", narrow)
	if got, _ := s.Decomposition("g"); got != narrow {
		t.Fatal("narrower tree must win")
	}
	s.PutDecomposition("g", wide)
	if got, _ := s.Decomposition("g"); got != narrow {
		t.Fatal("wider tree must not replace a narrower one")
	}
	if b, _ := s.Bounds("g"); b.UB != 2 {
		t.Fatalf("UB=%d, want 2 (width of the cached witness)", b.UB)
	}

	s.DropDecomposition("g")
	if _, ok := s.Decomposition("g"); ok {
		t.Fatal("dropped tree still cached")
	}
	if b, ok := s.Bounds("g"); !ok || b.UB != 2 {
		t.Fatalf("bounds must survive a tree drop: %+v ok=%v", b, ok)
	}
}

// TestFlightCoalesces: concurrent Do calls on one key run the function
// exactly once; everyone shares the value.
func TestFlightCoalesces(t *testing.T) {
	f := NewFlight()
	var runs, leaders atomic.Int64
	release := make(chan struct{})
	arrived := make(chan struct{}, 16)

	const n = 8
	vals := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, leader, err := f.Do(context.Background(), "k", func() any {
				arrived <- struct{}{}
				<-release // hold the flight open until all callers joined
				runs.Add(1)
				return "result"
			})
			if err != nil {
				t.Error(err)
			}
			if leader {
				leaders.Add(1)
			}
			vals[i] = v
		}(i)
	}
	<-arrived // the leader is inside fn; followers will coalesce
	for f.Waiting() != n-1 {
		time.Sleep(time.Millisecond) // wait until all followers joined
	}
	close(release)
	wg.Wait()

	if runs.Load() != 1 || leaders.Load() != 1 {
		t.Fatalf("runs=%d leaders=%d, want 1/1", runs.Load(), leaders.Load())
	}
	for i, v := range vals {
		if v != "result" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	// The key is forgotten: a later Do runs fresh.
	if _, leader, _ := f.Do(context.Background(), "k", func() any { return nil }); !leader {
		t.Fatal("flight must not retain completed keys")
	}
}

// TestFlightLeaderPanicUnwedges: a panicking leader must not wedge its
// key — waiting followers are released (with a nil value) and the next
// caller runs fresh.
func TestFlightLeaderPanicUnwedges(t *testing.T) {
	f := NewFlight()
	started := make(chan struct{})
	boom := make(chan struct{})
	followerDone := make(chan any, 1)
	go func() {
		defer func() { recover() }()
		f.Do(context.Background(), "k", func() any {
			close(started)
			<-boom
			panic("leader died")
		})
	}()
	<-started
	go func() {
		v, _, _ := f.Do(context.Background(), "k", func() any { return "never" })
		followerDone <- v
	}()
	for f.Waiting() != 1 {
		time.Sleep(time.Millisecond)
	}
	close(boom)
	if v := <-followerDone; v != nil {
		t.Fatalf("follower of a panicked leader got %v, want nil", v)
	}
	if f.InFlight() != 0 {
		t.Fatal("panicked key still registered")
	}
	if _, leader, _ := f.Do(context.Background(), "k", func() any { return 1 }); !leader {
		t.Fatal("key must be reusable after a leader panic")
	}
}

// TestFlightFollowerHonorsContext: a follower whose context expires
// stops waiting; the leader is unaffected.
func TestFlightFollowerHonorsContext(t *testing.T) {
	f := NewFlight()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan any, 1)
	go func() {
		v, _, _ := f.Do(context.Background(), "k", func() any {
			close(started)
			<-release
			return 42
		})
		done <- v
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.Do(ctx, "k", func() any { return nil }); err != context.Canceled {
		t.Fatalf("follower err=%v, want context.Canceled", err)
	}
	close(release)
	if v := <-done; v != 42 {
		t.Fatalf("leader got %v", v)
	}
}

// TestSnapshotRoundTrip: export → file → import restores bounds, trees
// and refutation summaries into a fresh backend.
func TestSnapshotRoundTrip(t *testing.T) {
	h := cycle(8)
	d := testDecomp(t, h)
	hash := h.ContentHash()

	s := NewSharded(Config{Shards: 2, MaxGraphs: 8})
	s.MergeBounds(hash, Bounds{LB: 2})
	s.PutDecomposition(hash, EncodeTree(d))
	m, _ := s.Memo(hash, 1)
	m.Insert("dead-state")
	s.MergeBounds("other", Bounds{LB: 4, UB: 6})

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteFile(path, s.Export()); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion || len(snap.Entries) != 2 {
		t.Fatalf("snapshot: version=%d entries=%d", snap.Version, len(snap.Entries))
	}

	fresh := NewSharded(Config{Shards: 4, MaxGraphs: 8})
	n, err := fresh.Import(snap)
	if err != nil || n != 2 {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	if b, ok := fresh.Bounds(hash); !ok || b.LB != 2 || b.UB != 2 {
		t.Fatalf("restored bounds: %+v ok=%v", b, ok)
	}
	tree, ok := fresh.Decomposition(hash)
	if !ok {
		t.Fatal("restored tree missing")
	}
	bound, err := tree.Bind(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := decomp.CheckHD(bound); err != nil {
		t.Fatalf("restored witness invalid: %v", err)
	}
	// Refutation summaries survive as metadata.
	var found bool
	for _, in := range fresh.Info(0) {
		if in.Hash == hash {
			for _, ws := range in.Memos {
				if ws.K == 1 && ws.States == 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("refutation summary not restored")
	}
	if st := fresh.Stats(); st.Restored != 2 {
		t.Fatalf("Restored=%d, want 2", st.Restored)
	}
}

// TestSnapshotVersionReject: a snapshot from a different schema version
// must be refused, both by Import and by ReadFile.
func TestSnapshotVersionReject(t *testing.T) {
	s := NewSharded(Config{})
	if _, err := s.Import(Snapshot{Version: 99}); err == nil {
		t.Fatal("version 99 must be rejected")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	snap := s.Export()
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version on disk.
	if err := os.WriteFile(path, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile must reject a mismatched version")
	}
}

// TestShardedConcurrency hammers one backend from many goroutines (run
// under -race in CI's store-stress job).
func TestShardedConcurrency(t *testing.T) {
	s := NewSharded(Config{Shards: 4, MaxGraphs: 16})
	hashes := []string{"a", "b", "c", "d", "e", "f"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := hashes[(g+i)%len(hashes)]
				switch i % 5 {
				case 0:
					s.MergeBounds(h, Bounds{LB: 2 + i%3})
				case 1:
					s.Bounds(h)
				case 2:
					m, _ := s.Memo(h, 1+i%2)
					m.Insert("k" + strconv.Itoa(i%7))
					m.Lookup([]byte("k0"))
				case 3:
					s.PutDecomposition(h, &Tree{Lambda: []int{0, 1}, Bag: []int{0}})
					s.Decomposition(h)
				case 4:
					if i%40 == 4 {
						snap := s.Export()
						s.Import(snap)
					} else {
						s.Stats()
						s.Info(4)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries == 0 || st.Entries > 16 {
		t.Fatalf("entries=%d, want within (0,16]", st.Entries)
	}
}
