// Package decomp defines (generalized) hypertree decompositions as
// explicit trees, together with independent validity checkers for the
// classic HD conditions, GHDs, and HDs of extended subhypergraphs
// (Definition 3.3 of the paper). The checkers share no code with the
// solvers, so every solver's output is verified by a second
// implementation of the definitions.
package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// NoSpecial marks a Node that is not a special-edge leaf.
const NoSpecial = -1

// Node is one node u of a decomposition tree, carrying its λ-label
// (edge ids of the base hypergraph) and its bag χ(u).
//
// During fragment construction a node may instead be a placeholder leaf
// for a special edge: then SpecialID >= 0, Lambda is empty and Bag equals
// the special edge's vertex set. Finished decompositions contain no
// placeholder leaves.
type Node struct {
	Lambda    []int
	SpecialID int
	Bag       *bitset.Set
	Children  []*Node
}

// NewNode returns a regular node with the given cover and bag.
func NewNode(lambda []int, bag *bitset.Set) *Node {
	l := append([]int(nil), lambda...)
	sort.Ints(l)
	return &Node{Lambda: l, SpecialID: NoSpecial, Bag: bag}
}

// NewSpecialLeaf returns a placeholder leaf for a special edge.
func NewSpecialLeaf(id int, vertices *bitset.Set) *Node {
	return &Node{SpecialID: id, Bag: vertices}
}

// IsSpecialLeaf reports whether n is a placeholder for a special edge.
func (n *Node) IsSpecialLeaf() bool { return n.SpecialID != NoSpecial }

// CoverSize returns |λ(u)|; a special leaf has λ = {s}, hence size 1.
func (n *Node) CoverSize() int {
	if n.IsSpecialLeaf() {
		return 1
	}
	return len(n.Lambda)
}

// Walk calls f on n and all descendants in preorder. Returning false
// from f stops the walk.
func (n *Node) Walk(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(f) {
			return false
		}
	}
	return true
}

// FindSpecialLeaf returns the unique placeholder leaf with the given
// special id, or nil if none exists.
func (n *Node) FindSpecialLeaf(id int) *Node {
	var found *Node
	n.Walk(func(u *Node) bool {
		if u.SpecialID == id {
			found = u
			return false
		}
		return true
	})
	return found
}

// Decomp is a rooted decomposition of (an extended subhypergraph of) H.
type Decomp struct {
	H    *hypergraph.Hypergraph
	Root *Node
}

// Width returns max over nodes of |λ(u)|, or 0 for an empty decomposition.
func (d *Decomp) Width() int {
	w := 0
	if d.Root == nil {
		return 0
	}
	d.Root.Walk(func(n *Node) bool {
		if c := n.CoverSize(); c > w {
			w = c
		}
		return true
	})
	return w
}

// NumNodes returns the number of nodes in the tree.
func (d *Decomp) NumNodes() int {
	c := 0
	if d.Root != nil {
		d.Root.Walk(func(*Node) bool { c++; return true })
	}
	return c
}

// Depth returns the number of nodes on the longest root-leaf path.
func (d *Decomp) Depth() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := rec(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	if d.Root == nil {
		return 0
	}
	return rec(d.Root)
}

// String renders the decomposition as an indented tree with edge and
// vertex names, in the style of det-k-decomp's output.
func (d *Decomp) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.IsSpecialLeaf() {
			fmt.Fprintf(&b, "special#%d  chi=%s\n", n.SpecialID, d.bagNames(n.Bag))
		} else {
			fmt.Fprintf(&b, "lambda={%s}  chi=%s\n", d.coverNames(n.Lambda), d.bagNames(n.Bag))
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if d.Root != nil {
		rec(d.Root, 0)
	}
	return b.String()
}

func (d *Decomp) coverNames(lambda []int) string {
	parts := make([]string, len(lambda))
	for i, e := range lambda {
		parts[i] = d.H.EdgeName(e)
	}
	return strings.Join(parts, ",")
}

func (d *Decomp) bagNames(bag *bitset.Set) string {
	var parts []string
	bag.ForEach(func(v int) { parts = append(parts, d.H.VertexName(v)) })
	return "{" + strings.Join(parts, ",") + "}"
}

// DOT renders the decomposition in Graphviz dot syntax.
func (d *Decomp) DOT() string {
	var b strings.Builder
	b.WriteString("digraph HD {\n  node [shape=box];\n")
	ids := map[*Node]int{}
	next := 0
	d.Root.Walk(func(n *Node) bool {
		ids[n] = next
		next++
		label := fmt.Sprintf("λ: %s\\nχ: %s", d.coverNames(n.Lambda), d.bagNames(n.Bag))
		if n.IsSpecialLeaf() {
			label = fmt.Sprintf("special#%d\\nχ: %s", n.SpecialID, d.bagNames(n.Bag))
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", ids[n], label)
		return true
	})
	d.Root.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ids[n], ids[c])
		}
		return true
	})
	b.WriteString("}\n")
	return b.String()
}
