package decomp

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/ext"
)

func TestPaperHDIsNormalForm(t *testing.T) {
	// The Appendix B decomposition (Figure 2a) satisfies Definition 3.5:
	// bags are chosen minimally, every child covers exactly one
	// component, and progress is made at every node.
	h := cycle10()
	d := paperHD(h)
	if err := CheckNormalForm(d, ext.Root(h)); err != nil {
		t.Fatalf("paper HD rejected as normal form: %v", err)
	}
}

func TestNormalFormRejectsMaximalBags(t *testing.T) {
	// Inflating χ(u2) with x2 (= vertex 1, present in ∪λ(u2) via R1 and
	// in χ(u1)) keeps the HD valid under the 2002-style maximal normal
	// form but violates the paper's minimal condition (3).
	h := cycle10()
	d := paperHD(h)
	c := d.Root.Children[0]
	c.Bag = c.Bag.Clone()
	c.Bag.Set(1)
	if err := CheckHD(d); err != nil {
		t.Fatalf("inflated HD should still be valid: %v", err)
	}
	err := CheckNormalForm(d, ext.Root(h))
	if err == nil || !strings.Contains(err.Error(), "normal form (3)") {
		t.Fatalf("expected condition (3) violation, got %v", err)
	}
}

func TestNormalFormRejectsNoProgress(t *testing.T) {
	// Duplicate a node: the copy covers nothing new, violating (1):
	// cov(T_c) of the duplicated child is not a full component.
	h := cycle10()
	d := paperHD(h)
	dup := NewNode(d.Root.Lambda, d.Root.Bag.Clone())
	dup.Children = d.Root.Children
	d.Root.Children = []*Node{dup}
	if err := CheckHD(d); err != nil {
		t.Fatalf("duplicated-node HD should still be valid: %v", err)
	}
	if err := CheckNormalForm(d, ext.Root(h)); err == nil {
		t.Fatal("duplicated node should violate the normal form")
	}
}

func TestNormalFormWithSpecials(t *testing.T) {
	// The paper's fragment D1.2 (Figure 2c) is in normal form for its
	// extended subhypergraph.
	h := cycle10()
	d, g, _ := fragment12(h)
	if err := CheckNormalForm(d, g); err != nil {
		t.Fatalf("paper fragment rejected: %v", err)
	}
}

func TestGMLOutput(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	gml := d.GML()
	for _, want := range []string{"graph [", "node [", "edge [", "R01"} {
		if !strings.Contains(gml, want) {
			t.Fatalf("GML missing %q:\n%s", want, gml)
		}
	}
	// 8 nodes, 7 edges.
	if got := strings.Count(gml, "node ["); got != 8 {
		t.Fatalf("GML has %d nodes, want 8", got)
	}
	if got := strings.Count(gml, "edge ["); got != 7 {
		t.Fatalf("GML has %d edges, want 7", got)
	}
	_ = bitset.New // keep import if unused elsewhere
}
