package decomp

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ext"
)

// CheckNormalForm verifies that d is in the normal form of
// Definition 3.5 with respect to the extended subhypergraph g: for every
// node p and every child c,
//
//	(1) exactly one [χ(p)]-component C_p of g satisfies C_p = cov(T_c);
//	(2) some f ∈ C_p has f ⊆ χ(c) ("progress is made at c");
//	(3) χ(c) = ∪λ(c) ∩ ∪C_p (the bag is chosen minimally — the paper's
//	    deviation from the normal form of Gottlob/Leone/Scarcello 2002).
//
// Theorem 3.6 guarantees a width-preserving normal form always exists;
// solvers are not required to output one, so this checker serves the
// test suite and analysis tools rather than validation.
func CheckNormalForm(d *Decomp, g *ext.Graph) error {
	if d.Root == nil {
		return fmt.Errorf("decomp: empty decomposition")
	}
	nItems := g.Size()
	itemVerts := func(i int) *bitset.Set {
		if i < len(g.Edges) {
			return d.H.Edge(g.Edges[i])
		}
		return g.Specials[i-len(g.Edges)].Vertices
	}

	// covTree[n] = items covered for the first time within T_n, as an
	// item bitset (Definition 3.4; disjointness across incomparable
	// nodes holds in every valid HD).
	covTree := map[*Node]*bitset.Set{}
	coveredOnPath := make([]bool, nItems)
	var fill func(n *Node)
	fill = func(n *Node) {
		set := bitset.New(nItems)
		var newly []int
		for i := 0; i < nItems; i++ {
			if !coveredOnPath[i] && itemVerts(i).SubsetOf(n.Bag) {
				newly = append(newly, i)
				set.Set(i)
			}
		}
		for _, i := range newly {
			coveredOnPath[i] = true
		}
		for _, c := range n.Children {
			fill(c)
			set.InPlaceUnion(covTree[c])
		}
		covTree[n] = set
		for _, i := range newly {
			coveredOnPath[i] = false
		}
	}
	fill(d.Root)

	split := ext.NewSplitter(g.H)
	var check func(p *Node) error
	check = func(p *Node) error {
		if len(p.Children) > 0 {
			comps := split.Components(g, p.Bag)
			// Item bitset per component for comparison.
			compSets := make([]*bitset.Set, len(comps))
			for ci, comp := range comps {
				cs := bitset.New(nItems)
				for _, e := range comp.Edges {
					cs.Set(indexOfEdge(g, e))
				}
				for _, sp := range comp.Specials {
					cs.Set(indexOfSpecial(g, sp.ID))
				}
				compSets[ci] = cs
			}
			for _, c := range p.Children {
				cov := covTree[c]
				matched := -1
				for ci, cs := range compSets {
					if cs.Equal(cov) {
						matched = ci
						break
					}
				}
				if matched < 0 {
					return fmt.Errorf("decomp: normal form (1): cov(T_c) is not a single [χ(p)]-component at child with λ=%v", c.Lambda)
				}
				comp := comps[matched]
				// Condition (2).
				progress := false
				for _, e := range comp.Edges {
					if d.H.Edge(e).SubsetOf(c.Bag) {
						progress = true
						break
					}
				}
				if !progress {
					for _, sp := range comp.Specials {
						if sp.Vertices.SubsetOf(c.Bag) {
							progress = true
							break
						}
					}
				}
				if !progress {
					return fmt.Errorf("decomp: normal form (2): no component item covered at child with λ=%v", c.Lambda)
				}
				// Condition (3): χ(c) = ∪λ(c) ∩ ∪C_p.
				if !c.IsSpecialLeaf() {
					lamUnion := d.H.NewVertexSet()
					for _, e := range c.Lambda {
						lamUnion.InPlaceUnion(d.H.Edge(e))
					}
					want := lamUnion.Intersect(comp.Vertices())
					if !c.Bag.Equal(want) {
						return fmt.Errorf("decomp: normal form (3): χ(c) = %s, minimal choice is %s at child with λ=%v",
							c.Bag, want, c.Lambda)
					}
				}
			}
		}
		for _, c := range p.Children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(d.Root)
}

func indexOfEdge(g *ext.Graph, e int) int {
	for i, ge := range g.Edges {
		if ge == e {
			return i
		}
	}
	return -1
}

func indexOfSpecial(g *ext.Graph, id int) int {
	for i, sp := range g.Specials {
		if sp.ID == id {
			return len(g.Edges) + i
		}
	}
	return -1
}
