package decomp

import (
	"fmt"
	"strings"
)

// GML renders the decomposition in the Graph Modelling Language used by
// det-k-decomp and NewDetKDecomp for their output files, with the same
// label convention: each node's label lists its λ and χ contents.
func (d *Decomp) GML() string {
	var b strings.Builder
	b.WriteString("graph [\n  directed 0\n")
	ids := map[*Node]int{}
	next := 0
	d.Root.Walk(func(n *Node) bool {
		ids[n] = next
		next++
		var lam string
		if n.IsSpecialLeaf() {
			lam = fmt.Sprintf("special#%d", n.SpecialID)
		} else {
			parts := make([]string, len(n.Lambda))
			for i, e := range n.Lambda {
				parts[i] = d.H.EdgeName(e)
			}
			lam = strings.Join(parts, ", ")
		}
		var chi []string
		n.Bag.ForEach(func(v int) { chi = append(chi, d.H.VertexName(v)) })
		fmt.Fprintf(&b, "  node [\n    id %d\n    label \"{%s}  {%s}\"\n  ]\n",
			ids[n], lam, strings.Join(chi, ", "))
		return true
	})
	d.Root.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  edge [\n    source %d\n    target %d\n  ]\n", ids[n], ids[c])
		}
		return true
	})
	b.WriteString("]\n")
	return b.String()
}
