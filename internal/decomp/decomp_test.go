package decomp

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/ext"
	"repro/internal/hypergraph"
)

// cycle10 builds the hypergraph of Appendix B: a cycle R1(x1,x2), ...,
// R10(x10,x1). Edge Ri has id i-1; vertex xj has id j-1.
func cycle10() *hypergraph.Hypergraph {
	var b hypergraph.Builder
	names := func(i int) string { return "x" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
	for i := 1; i <= 10; i++ {
		next := i%10 + 1
		b.MustAddEdge("R"+names(i)[1:], names(i), names(next))
	}
	return b.Build()
}

// paperHD builds the HD of Figure 2a: a path u1..u8 with
// λ(u_i) = {R1, R_{i+1}} and χ(u_i) = {x1, x_{i+1}, x_{i+2}}.
func paperHD(h *hypergraph.Hypergraph) *Decomp {
	n := h.NumVertices()
	var prev *Node
	var root *Node
	for i := 1; i <= 8; i++ {
		bag := bitset.FromSlice(n, []int{0, i, i + 1})
		node := NewNode([]int{0, i}, bag)
		if prev == nil {
			root = node
		} else {
			prev.Children = append(prev.Children, node)
		}
		prev = node
	}
	return &Decomp{H: h, Root: root}
}

func TestPaperHDIsValid(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	if err := CheckHD(d); err != nil {
		t.Fatalf("paper HD rejected: %v", err)
	}
	if got := d.Width(); got != 2 {
		t.Fatalf("Width = %d, want 2", got)
	}
	if got := d.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
	if got := d.Depth(); got != 8 {
		t.Fatalf("Depth = %d, want 8", got)
	}
	if err := CheckWidth(d, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckWidth(d, 1); err == nil {
		t.Fatal("CheckWidth(1) should fail for width-2 HD")
	}
}

func TestCoverageViolationDetected(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	// Chop off the last node: R9 and R10 lose their covering bag.
	var prev *Node
	cur := d.Root
	for len(cur.Children) > 0 {
		prev = cur
		cur = cur.Children[0]
	}
	prev.Children = nil
	if err := CheckHD(d); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("expected coverage error, got %v", err)
	}
}

func TestConnectednessViolationDetected(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	// Remove x1 (vertex 0) from a middle bag: x1 occurs above and below.
	mid := d.Root.Children[0].Children[0]
	mid.Bag = mid.Bag.Clone()
	mid.Bag.Clear(0)
	if err := CheckHD(d); err == nil || !strings.Contains(err.Error(), "connectedness") {
		t.Fatalf("expected connectedness error, got %v", err)
	}
}

func TestBagNotCoveredDetected(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	d.Root.Bag = d.Root.Bag.Clone()
	d.Root.Bag.Set(5) // x6 is not in R1 ∪ R2
	if err := CheckHD(d); err == nil || !strings.Contains(err.Error(), "λ-label") {
		t.Fatalf("expected bag-cover error, got %v", err)
	}
}

func TestSpecialConditionViolationDetected(t *testing.T) {
	// H = {R1(a,b)}; root λ={R1} χ={a}, child λ={R1} χ={a,b}.
	// Valid GHD, invalid HD (condition 4 fails at the root).
	var b hypergraph.Builder
	b.MustAddEdge("R1", "a", "b")
	h := b.Build()
	root := NewNode([]int{0}, bitset.FromSlice(2, []int{0}))
	child := NewNode([]int{0}, bitset.FromSlice(2, []int{0, 1}))
	root.Children = []*Node{child}
	d := &Decomp{H: h, Root: root}
	if err := CheckGHD(d); err != nil {
		t.Fatalf("GHD check should pass: %v", err)
	}
	if err := CheckHD(d); err == nil || !strings.Contains(err.Error(), "special condition") {
		t.Fatalf("expected special-condition error, got %v", err)
	}
}

func TestUnresolvedSpecialLeafRejected(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	leaf := NewSpecialLeaf(1, bitset.FromSlice(h.NumVertices(), []int{0}))
	d.Root.Children = append(d.Root.Children, leaf)
	if err := CheckHD(d); err == nil || !strings.Contains(err.Error(), "special leaf") {
		t.Fatalf("expected special-leaf error, got %v", err)
	}
}

// fragment12 builds the HD-fragment D1.2 of Figure 2c: a path over
// λ={R1,R3}, {R1,R4}, {R1,R5} ending in the special leaf s1={x1,x6,x7},
// which is an HD of the extended subhypergraph ⟨{R3,R4,R5}, {s1}, {x1,x3}⟩.
func fragment12(h *hypergraph.Hypergraph) (*Decomp, *ext.Graph, *bitset.Set) {
	n := h.NumVertices()
	s1 := ext.Special{ID: 1, Vertices: bitset.FromSlice(n, []int{0, 5, 6})}
	g := ext.NewGraph(h, []int{2, 3, 4}, []ext.Special{s1})
	conn := bitset.FromSlice(n, []int{0, 2})

	n1 := NewNode([]int{0, 2}, bitset.FromSlice(n, []int{0, 2, 3}))
	n2 := NewNode([]int{0, 3}, bitset.FromSlice(n, []int{0, 3, 4}))
	n3 := NewNode([]int{0, 4}, bitset.FromSlice(n, []int{0, 4, 5}))
	leaf := NewSpecialLeaf(1, s1.Vertices)
	n1.Children = []*Node{n2}
	n2.Children = []*Node{n3}
	n3.Children = []*Node{leaf}
	return &Decomp{H: h, Root: n1}, g, conn
}

func TestCheckExtendedAcceptsPaperFragment(t *testing.T) {
	h := cycle10()
	d, g, conn := fragment12(h)
	if err := CheckExtended(d, g, conn); err != nil {
		t.Fatalf("paper fragment rejected: %v", err)
	}
}

func TestCheckExtendedConnViolation(t *testing.T) {
	h := cycle10()
	d, g, _ := fragment12(h)
	badConn := bitset.FromSlice(h.NumVertices(), []int{7}) // x8 not in root bag
	if err := CheckExtended(d, g, badConn); err == nil || !strings.Contains(err.Error(), "Conn") {
		t.Fatalf("expected Conn error, got %v", err)
	}
}

func TestCheckExtendedMissingSpecialLeaf(t *testing.T) {
	h := cycle10()
	d, g, conn := fragment12(h)
	// Drop the special leaf: special #1 loses its covering leaf.
	d.Root.Children[0].Children[0].Children = nil
	if err := CheckExtended(d, g, conn); err == nil || !strings.Contains(err.Error(), "special #1") {
		t.Fatalf("expected missing-special error, got %v", err)
	}
}

func TestCheckExtendedSpecialMustBeLeaf(t *testing.T) {
	h := cycle10()
	d, g, conn := fragment12(h)
	leaf := d.Root.Children[0].Children[0].Children[0]
	leaf.Children = []*Node{NewNode([]int{0}, bitset.FromSlice(h.NumVertices(), []int{0}))}
	if err := CheckExtended(d, g, conn); err == nil || !strings.Contains(err.Error(), "not a leaf") {
		t.Fatalf("expected not-a-leaf error, got %v", err)
	}
}

func TestFindBalancedSeparatorOnPaperHD(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	g := ext.Root(h)
	sep := FindBalancedSeparator(d, g)
	if sep == nil {
		t.Fatal("no balanced separator found")
	}
	if !IsBalancedSeparator(d, g, sep) {
		t.Fatal("returned node fails Definition 3.9")
	}
	// The walk lands on u4 (λ = {R1, R5}): its subtree covers R6..R10 via
	// the child, 5 ≤ 10/2, and above it R1..R4 are covered, 2*4 < 10.
	if len(sep.Lambda) != 2 || sep.Lambda[0] != 0 || sep.Lambda[1] != 4 {
		t.Fatalf("separator λ = %v, want [0 4]", sep.Lambda)
	}
	// The root is NOT balanced: its child subtree covers 8 > 5.
	if IsBalancedSeparator(d, g, d.Root) {
		t.Fatal("root should not be a balanced separator")
	}
}

func TestStringAndDOT(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	s := d.String()
	if !strings.Contains(s, "lambda={R01,R02}") {
		t.Fatalf("String output missing root label:\n%s", s)
	}
	dot := d.DOT()
	if !strings.Contains(dot, "digraph HD") || !strings.Contains(dot, "->") {
		t.Fatalf("DOT output malformed:\n%s", dot)
	}
}

func TestWalkStops(t *testing.T) {
	h := cycle10()
	d := paperHD(h)
	count := 0
	d.Root.Walk(func(*Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Walk visited %d nodes, want 3", count)
	}
}

func TestFindSpecialLeaf(t *testing.T) {
	h := cycle10()
	d, _, _ := fragment12(h)
	if d.Root.FindSpecialLeaf(1) == nil {
		t.Fatal("special leaf #1 not found")
	}
	if d.Root.FindSpecialLeaf(2) != nil {
		t.Fatal("nonexistent special leaf found")
	}
}

func TestEmptyDecomp(t *testing.T) {
	h := cycle10()
	d := &Decomp{H: h}
	if d.Width() != 0 || d.NumNodes() != 0 || d.Depth() != 0 {
		t.Fatal("empty decomposition metrics should be zero")
	}
	if err := CheckHD(d); err == nil {
		t.Fatal("empty decomposition should be invalid")
	}
}
