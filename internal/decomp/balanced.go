package decomp

import (
	"repro/internal/ext"
)

// FindBalancedSeparator walks an HD of g per the constructive proof of
// Lemma 3.10 and returns a node u such that
//
//   - every child subtree covers at most half of E′ ∪ Sp, and
//   - the part of the tree above u covers strictly less than half.
//
// Every HD has such a node; the walk always terminates at one.
func FindBalancedSeparator(d *Decomp, g *ext.Graph) *Node {
	cc := computeSubtreeCov(d, g)
	total := len(g.Edges) + len(g.Specials)
	u := d.Root
	for {
		oversized := (*Node)(nil)
		for _, ch := range u.Children {
			if 2*cc[ch] > total {
				oversized = ch
				break
			}
		}
		if oversized == nil {
			return u
		}
		u = oversized
	}
}

// computeSubtreeCov returns |cov(T_n)| for every node n of d with respect
// to the items (edges and specials) of g, per Definition 3.4. In any
// valid HD the cov sets of incomparable nodes are disjoint —
// connectedness forces an item covered at two incomparable nodes to also
// be covered at their common ancestors — so subtree sums are exact.
func computeSubtreeCov(d *Decomp, g *ext.Graph) map[*Node]int {
	tests := make([]func(n *Node) bool, 0, len(g.Edges)+len(g.Specials))
	for _, e := range g.Edges {
		e := e
		tests = append(tests, func(n *Node) bool {
			return d.H.Edge(e).SubsetOf(n.Bag)
		})
	}
	for _, s := range g.Specials {
		s := s
		tests = append(tests, func(n *Node) bool {
			return s.Vertices.SubsetOf(n.Bag)
		})
	}

	subtreeCov := map[*Node]int{}
	coveredOnPath := make([]bool, len(tests))
	var rec func(n *Node)
	rec = func(n *Node) {
		var newly []int
		for i := range tests {
			if !coveredOnPath[i] && tests[i](n) {
				newly = append(newly, i)
			}
		}
		for _, i := range newly {
			coveredOnPath[i] = true
		}
		sum := len(newly)
		for _, ch := range n.Children {
			rec(ch)
			sum += subtreeCov[ch]
		}
		subtreeCov[n] = sum
		for _, i := range newly {
			coveredOnPath[i] = false
		}
	}
	rec(d.Root)
	return subtreeCov
}

// IsBalancedSeparator checks Definition 3.9 directly for node u of an HD
// of g: every child subtree covers ≤ half and the part above covers
// strictly less than half of |E′| + |Sp|.
func IsBalancedSeparator(d *Decomp, g *ext.Graph, u *Node) bool {
	cc := computeSubtreeCov(d, g)
	total := len(g.Edges) + len(g.Specials)
	for _, ch := range u.Children {
		if 2*cc[ch] > total {
			return false
		}
	}
	above := cc[d.Root] - cc[u]
	return 2*above < total
}
