package decomp

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ext"
)

// CheckHD verifies the four conditions of a hypertree decomposition of H
// (Gottlob, Leone, Scarcello 2002, restated in §2 of the paper):
//
//	(1) every edge e has a node u with e ⊆ χ(u);
//	(2) for every vertex v, {u : v ∈ χ(u)} is connected in T;
//	(3) χ(u) ⊆ ∪λ(u) for every node;
//	(4) χ(T_u) ∩ ∪λ(u) ⊆ χ(u) for every node (the special condition).
//
// It returns nil iff the decomposition is a valid HD.
func CheckHD(d *Decomp) error {
	if err := CheckGHD(d); err != nil {
		return err
	}
	return checkSpecialCondition(d)
}

// CheckGHD verifies conditions (1)-(3) only, i.e. validity as a
// generalized hypertree decomposition.
func CheckGHD(d *Decomp) error {
	if d.Root == nil {
		return fmt.Errorf("decomp: empty decomposition")
	}
	if err := checkNoSpecialLeaves(d); err != nil {
		return err
	}
	if err := checkBagsCovered(d); err != nil {
		return err
	}
	if err := checkEdgeCoverage(d); err != nil {
		return err
	}
	return checkConnectedness(d, d.H.Vertices())
}

// CheckWidth verifies width(d) ≤ k.
func CheckWidth(d *Decomp, k int) error {
	if w := d.Width(); w > k {
		return fmt.Errorf("decomp: width %d exceeds %d", w, k)
	}
	return nil
}

func checkNoSpecialLeaves(d *Decomp) error {
	var err error
	d.Root.Walk(func(n *Node) bool {
		if n.IsSpecialLeaf() {
			err = fmt.Errorf("decomp: unresolved special leaf #%d", n.SpecialID)
			return false
		}
		return true
	})
	return err
}

func checkEdgeCoverage(d *Decomp) error {
	for e := 0; e < d.H.NumEdges(); e++ {
		covered := false
		d.Root.Walk(func(n *Node) bool {
			if d.H.Edge(e).SubsetOf(n.Bag) {
				covered = true
				return false
			}
			return true
		})
		if !covered {
			return fmt.Errorf("decomp: edge %s not covered by any bag", d.H.EdgeName(e))
		}
	}
	return nil
}

// checkConnectedness verifies condition (2) for every vertex in scope:
// the nodes whose bag contains v form a connected subtree.
func checkConnectedness(d *Decomp, scope *bitset.Set) error {
	// Collect nodes and parent pointers.
	var nodes []*Node
	parent := map[*Node]*Node{}
	d.Root.Walk(func(n *Node) bool {
		nodes = append(nodes, n)
		for _, c := range n.Children {
			parent[c] = n
		}
		return true
	})
	var err error
	scope.ForEach(func(v int) {
		if err != nil {
			return
		}
		// Count nodes containing v and find one of them.
		var first *Node
		total := 0
		for _, n := range nodes {
			if n.Bag.Test(v) {
				total++
				if first == nil {
					first = n
				}
			}
		}
		if total <= 1 {
			return
		}
		// BFS through nodes containing v.
		seen := map[*Node]bool{first: true}
		stack := []*Node{first}
		count := 1
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var nbrs []*Node
			if p := parent[n]; p != nil {
				nbrs = append(nbrs, p)
			}
			nbrs = append(nbrs, n.Children...)
			for _, x := range nbrs {
				if x.Bag.Test(v) && !seen[x] {
					seen[x] = true
					count++
					stack = append(stack, x)
				}
			}
		}
		if count != total {
			err = fmt.Errorf("decomp: vertex %s violates connectedness (%d of %d nodes reachable)",
				d.H.VertexName(v), count, total)
		}
	})
	return err
}

func checkBagsCovered(d *Decomp) error {
	var err error
	d.Root.Walk(func(n *Node) bool {
		cover := d.H.NewVertexSet()
		for _, e := range n.Lambda {
			cover.InPlaceUnion(d.H.Edge(e))
		}
		if !n.Bag.SubsetOf(cover) {
			err = fmt.Errorf("decomp: bag %s not covered by its λ-label", n.Bag)
			return false
		}
		return true
	})
	return err
}

// checkSpecialCondition verifies condition (4): for every node u,
// χ(T_u) ∩ ∪λ(u) ⊆ χ(u), where χ(T_u) is the union of bags in the
// subtree rooted at u.
func checkSpecialCondition(d *Decomp) error {
	var rec func(n *Node) (*bitset.Set, error)
	rec = func(n *Node) (*bitset.Set, error) {
		sub := n.Bag.Clone()
		for _, c := range n.Children {
			cs, err := rec(c)
			if err != nil {
				return nil, err
			}
			sub.InPlaceUnion(cs)
		}
		cover := d.H.NewVertexSet()
		for _, e := range n.Lambda {
			cover.InPlaceUnion(d.H.Edge(e))
		}
		if !sub.Intersect(cover).SubsetOf(n.Bag) {
			return nil, fmt.Errorf("decomp: special condition violated at node λ={%s}",
				d.coverNames(n.Lambda))
		}
		return sub, nil
	}
	_, err := rec(d.Root)
	return err
}

// CheckExtended verifies that d is an HD of the extended subhypergraph g
// with interface conn, per Definition 3.3 (all six conditions).
func CheckExtended(d *Decomp, g *ext.Graph, conn *bitset.Set) error {
	if d.Root == nil {
		return fmt.Errorf("decomp: empty decomposition")
	}
	specialByID := map[int]*bitset.Set{}
	for _, s := range g.Specials {
		specialByID[s.ID] = s.Vertices
	}
	var err error
	// Condition (1): regular nodes have χ(u) ⊆ ∪λ(u); special leaves have
	// χ(u) = s for a special edge of g. Condition (5): special nodes are leaves.
	d.Root.Walk(func(n *Node) bool {
		if n.IsSpecialLeaf() {
			s, ok := specialByID[n.SpecialID]
			if !ok {
				err = fmt.Errorf("decomp: node references unknown special #%d", n.SpecialID)
				return false
			}
			if !n.Bag.Equal(s) {
				err = fmt.Errorf("decomp: special leaf #%d bag differs from special edge", n.SpecialID)
				return false
			}
			if len(n.Children) > 0 {
				err = fmt.Errorf("decomp: special node #%d is not a leaf", n.SpecialID)
				return false
			}
			return true
		}
		cover := d.H.NewVertexSet()
		for _, e := range n.Lambda {
			cover.InPlaceUnion(d.H.Edge(e))
		}
		if !n.Bag.SubsetOf(cover) {
			err = fmt.Errorf("decomp: bag not covered by λ at node λ={%s}", d.coverNames(n.Lambda))
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	// Condition (2): every edge of E' covered by some bag; every special
	// covered by a special leaf with matching id.
	for _, e := range g.Edges {
		covered := false
		d.Root.Walk(func(n *Node) bool {
			if d.H.Edge(e).SubsetOf(n.Bag) {
				covered = true
				return false
			}
			return true
		})
		if !covered {
			return fmt.Errorf("decomp: extended edge %s not covered", d.H.EdgeName(e))
		}
	}
	for _, s := range g.Specials {
		if d.Root.FindSpecialLeaf(s.ID) == nil {
			return fmt.Errorf("decomp: special #%d has no covering leaf", s.ID)
		}
	}
	// Condition (3): connectedness over the vertices of g only.
	if err := checkConnectedness(d, g.Vertices()); err != nil {
		return err
	}
	// Condition (4): special condition (special leaves have no λ edges, so
	// they never violate it; regular nodes checked as usual).
	if err := checkSpecialCondition(d); err != nil {
		return err
	}
	// Condition (6): Conn ⊆ χ(root).
	if !conn.SubsetOf(d.Root.Bag) {
		return fmt.Errorf("decomp: Conn not contained in root bag")
	}
	return nil
}
