package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/join"
	"repro/internal/service"
	"repro/internal/tenant"
)

// ErrNoPlan is returned when the query's hypertree width exceeds the
// request's width ceiling: no tractable plan exists within the bound.
var ErrNoPlan = errors.New("query: no decomposition within the width ceiling")

// Request is one conjunctive query to answer.
type Request struct {
	// Query is the CQ to answer (required). It runs over exactly one of
	// Dataset (a named server-resident database) or DB (inline).
	Query join.Query
	// Dataset names a registered dataset to run over; the query reads a
	// consistent snapshot of it (current version, or AtVersion if set)
	// whose relations carry delta-maintained indexes, so repeat queries
	// skip parsing and index building entirely. Mutually exclusive with
	// DB.
	Dataset string
	// AtVersion pins the query to a specific dataset version (0 =
	// current). Requires Dataset; versions outside the retained window
	// fail with a clear error rather than wrong rows.
	AtVersion uint64
	// DB is the inline compatibility path: a database shipped with the
	// request itself. Prefer Dataset — inline databases are re-validated
	// per request and any indexes built for them live only as long as
	// the caller keeps the Database value alive.
	DB join.Database
	// MaxWidth is the decomposition width ceiling. 0 defaults to the
	// number of atoms (a plan then always exists: hw ≤ |atoms|); values
	// above the atom count are clamped to it.
	MaxWidth int
	// MaxRows caps every intermediate and final relation of the
	// execution; exceeding it aborts with join.ErrRowBudget. 0 = no cap.
	MaxRows int
	// Timeout bounds the whole query — planning and execution. 0 = no
	// per-query deadline (the service's default still caps the solve).
	Timeout time.Duration
	// Parallelism caps the executor's concurrent workers (including the
	// query's own goroutine): sibling subtrees of the Yannakakis passes
	// and large final-join probe loops run on the pool, with every
	// spawned worker drawing a token from the service's shared budget so
	// query execution and decomposition jobs never oversubscribe the
	// host together. 0 or 1 = serial indexed execution; < 0 is invalid.
	Parallelism int
	// Workers caps the solver's parallelism for cold plans (0 = service
	// default).
	Workers int
	// Aggregate, when non-nil, answers this aggregate over the query's
	// result set instead of the rows themselves, pushed down the join
	// tree: no answer row is ever materialised, so queries whose result
	// set would blow MaxRows still aggregate cheaply. The plan (and the
	// plan cache entry) is the same one a row query uses.
	Aggregate *join.AggSpec
	// Tenant attributes the query to a caller for per-tenant admission
	// control; empty means tenant.Default. The whole query — planning
	// and execution — is admitted through the service's tenant wall as
	// one request, so per-tenant p50/p99 measure end-to-end query
	// latency.
	Tenant string
}

// Result is the outcome of one answered query.
type Result struct {
	// Rows is the full answer relation in canonical form: attributes in
	// sorted variable order, tuples in sorted order. Canonical form makes
	// repeat answers byte-identical regardless of which plan produced
	// them. Nil for aggregate requests.
	Rows *join.Relation
	// Agg is the aggregate answer of an aggregate request (canonical:
	// group columns and rows sorted); nil for row requests.
	Agg *join.AggResult
	// Width is the hypertree width of the plan that was executed.
	Width int
	// PlanCacheHit reports that the decomposition came from the store's
	// positive result cache — no solver ran for this query.
	PlanCacheHit bool
	// PlanCoalesced reports that the plan was shared with a concurrent
	// identical query's solver run.
	PlanCoalesced bool
	// PlanElapsed and ExecElapsed split the query's wall time into the
	// decomposition (or cache lookup) and the Yannakakis execution.
	PlanElapsed time.Duration
	ExecElapsed time.Duration
	// Parallelism is the executor worker cap the query ran with (≥ 1).
	Parallelism int
	// DatasetVersion is the dataset version the query actually read
	// (the snapshot it resolved); 0 for inline-DB requests.
	DatasetVersion uint64
	// Exec reports the executor's per-query effort: indexes built,
	// tuples probed, and how much of the work ran on spawned workers.
	Exec join.ExecStats
}

// Stats is a snapshot of planner-wide counters.
type Stats struct {
	Queries        int64 // queries submitted to Eval
	Answered       int64 // queries that returned a result
	PlanCacheHits  int64 // plans served from the store, zero solver runs
	PlanCoalesced  int64 // plans shared with a concurrent identical query
	PlanFailures   int64 // planning errors (no plan in bound, solve errors)
	ExecFailures   int64 // execution errors (row budget, cancellation)
	TenantLimited  int64 // queries rejected by the per-tenant admission wall
	RowsReturned   int64 // total answer tuples across all row queries
	AggQueries     int64 // answered aggregate (row-free) queries
	AggGroups      int64 // total groups returned across aggregate queries
	DatasetQueries int64 // queries that ran over a named dataset snapshot

	// Executor counters, aggregated over all answered queries.
	ExecParallelQueries int64 // queries executed with Parallelism > 1
	ExecIndexBuilds     int64 // hash indexes built
	ExecIndexReuses     int64 // hash index builds skipped via maintained/captured indexes
	ExecIndexProbes     int64 // tuples probed against an index
	ExecParallelTasks   int64 // subtree/partition tasks run on spawned workers
	ExecInlineTasks     int64 // tasks run inline on the scheduling worker
}

// Planner answers conjunctive queries through a decomposition service.
// It is safe for concurrent use; create one per service and share it.
type Planner struct {
	svc *service.Service

	queries        atomic.Int64
	answered       atomic.Int64
	planCacheHits  atomic.Int64
	planCoalesced  atomic.Int64
	planFailures   atomic.Int64
	execFailures   atomic.Int64
	tenantLimited  atomic.Int64
	rowsReturned   atomic.Int64
	aggQueries     atomic.Int64
	aggGroups      atomic.Int64
	datasetQueries atomic.Int64

	execParallelQueries atomic.Int64
	execIndexBuilds     atomic.Int64
	execIndexReuses     atomic.Int64
	execIndexProbes     atomic.Int64
	execParallelTasks   atomic.Int64
	execInlineTasks     atomic.Int64
}

// NewPlanner returns a Planner executing queries over svc.
func NewPlanner(svc *service.Service) *Planner {
	return &Planner{svc: svc}
}

// Eval answers one conjunctive query: validate, admit through the
// per-tenant wall, plan (through the service's plan cache), execute
// Yannakakis, canonicalise the rows.
func (p *Planner) Eval(ctx context.Context, req Request) (Result, error) {
	p.queries.Add(1)
	if err := validate(req); err != nil {
		p.planFailures.Add(1)
		return Result{}, err
	}
	// One lease covers planning and execution, so the tenant is
	// rate-charged once per query and the wall's latency histogram sees
	// the query end to end. The inner Submit is marked pre-admitted.
	lease, err := p.svc.Tenants().Admit(ctx, req.Tenant)
	if err != nil {
		if errors.Is(err, tenant.ErrLimited) {
			p.tenantLimited.Add(1)
		} else {
			p.planFailures.Add(1)
		}
		return Result{}, err
	}
	res, err := p.eval(ctx, req)
	lease.Done(err != nil)
	return res, err
}

// eval is Eval past the tenant wall.
func (p *Planner) eval(ctx context.Context, req Request) (Result, error) {
	var dsVersion uint64
	if req.Dataset != "" {
		// Resolve the named dataset to an immutable snapshot. The
		// snapshot is pinned for the whole query: mutations committed
		// after this point advance the dataset without touching the
		// rows (or maintained indexes) this query reads.
		snap, err := p.svc.Datasets().Resolve(req.Tenant, req.Dataset, req.AtVersion)
		if err != nil {
			p.planFailures.Add(1)
			return Result{}, fmt.Errorf("query: dataset %q: %w", req.Dataset, err)
		}
		req.DB = snap.DB
		dsVersion = snap.Version
		p.datasetQueries.Add(1)
		if err := checkAtoms(req.Query, req.DB); err != nil {
			p.planFailures.Add(1)
			return Result{}, err
		}
	}
	h, err := req.Query.Hypergraph()
	if err != nil {
		p.planFailures.Add(1)
		return Result{}, err
	}
	maxW := req.MaxWidth
	if maxW <= 0 || maxW > h.NumEdges() {
		// hw(H) ≤ |E(H)| always (one bag covering everything), so a
		// ceiling above the atom count only wastes width probes.
		maxW = h.NumEdges()
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}

	// Plan: a ModeOptimal job yields the minimum-width decomposition —
	// the plan with the tightest N^width execution guarantee — and banks
	// exact bounds plus the witness tree in the store, so the identical
	// query planned again is answered from the cache without a solver.
	planStart := time.Now()
	res := p.svc.Submit(ctx, service.Request{
		H:              h,
		Mode:           service.ModeOptimal,
		K:              maxW,
		Workers:        req.Workers,
		Timeout:        req.Timeout,
		Tenant:         req.Tenant,
		TenantAdmitted: true,
	})
	planElapsed := time.Since(planStart)
	if res.Err != nil {
		p.planFailures.Add(1)
		return Result{}, fmt.Errorf("query: planning failed: %w", res.Err)
	}
	if !res.OK {
		p.planFailures.Add(1)
		return Result{}, fmt.Errorf("%w: hypertree width exceeds %d (proven lower bound %d)",
			ErrNoPlan, maxW, res.LowerBound)
	}
	if res.CacheHit {
		p.planCacheHits.Add(1)
	}
	if res.Coalesced {
		p.planCoalesced.Add(1)
	}

	// Execute on the indexed kernel. Spawned executor workers lease
	// tokens from the same budget the solvers draw on, so a burst of
	// parallel queries and a burst of cold decompositions share the
	// host instead of fighting over it.
	par := req.Parallelism
	if par < 1 {
		par = 1
	}
	execStart := time.Now()
	var exec join.ExecStats
	opts := join.EvalOptions{
		MaxRows:     req.MaxRows,
		Parallelism: par,
		Tokens:      p.svc.Budget(),
		Stats:       &exec,
	}
	var rel *join.Relation
	var agg join.AggResult
	if req.Aggregate != nil {
		// Aggregate pushdown: the same plan, the same budgeted kernel,
		// but per-bag partial aggregates instead of a materialised result
		// — MaxRows then bounds the number of groups, not the (possibly
		// enormous) number of answers.
		agg, err = join.AggregateCtx(ctx, req.Query, req.DB, res.Decomp, *req.Aggregate, opts)
	} else {
		rel, err = join.EvaluateCtx(ctx, req.Query, req.DB, res.Decomp, opts)
	}
	// The executor fills exec even on failure; aggregate before the
	// error check so aborted queries — often the most expensive ones the
	// server ran — still show their effort in /stats.
	if par > 1 {
		p.execParallelQueries.Add(1)
	}
	p.execIndexBuilds.Add(exec.IndexBuilds)
	p.execIndexReuses.Add(exec.IndexReuses)
	p.execIndexProbes.Add(exec.IndexProbes)
	p.execParallelTasks.Add(exec.ParallelTasks)
	p.execInlineTasks.Add(exec.InlineTasks)
	if err != nil {
		p.execFailures.Add(1)
		return Result{}, fmt.Errorf("query: execution failed: %w", err)
	}
	if req.Aggregate != nil {
		p.answered.Add(1)
		p.aggQueries.Add(1)
		p.aggGroups.Add(int64(len(agg.Groups)))
		return Result{
			Agg:            &agg,
			Width:          res.Decomp.Width(),
			PlanCacheHit:   res.CacheHit,
			PlanCoalesced:  res.Coalesced,
			PlanElapsed:    planElapsed,
			ExecElapsed:    time.Since(execStart),
			Parallelism:    par,
			DatasetVersion: dsVersion,
			Exec:           exec,
		}, nil
	}
	rows, err := Canonical(rel)
	if err != nil {
		p.execFailures.Add(1)
		return Result{}, err
	}
	p.answered.Add(1)
	p.rowsReturned.Add(int64(rows.Size()))
	return Result{
		Rows:           rows,
		Width:          res.Decomp.Width(),
		PlanCacheHit:   res.CacheHit,
		PlanCoalesced:  res.Coalesced,
		PlanElapsed:    planElapsed,
		ExecElapsed:    time.Since(execStart),
		Parallelism:    par,
		DatasetVersion: dsVersion,
		Exec:           exec,
	}, nil
}

// validate rejects malformed requests before any planning effort —
// cheap shape checks, so a typo fails in microseconds instead of after
// a decomposition run. Inline databases are checked here; a named
// dataset's snapshot is checked in eval, after resolution.
func validate(req Request) error {
	if len(req.Query.Atoms) == 0 {
		return errors.New("query: empty query")
	}
	if req.MaxRows < 0 {
		return errors.New("query: MaxRows must be >= 0")
	}
	if req.Parallelism < 0 {
		return errors.New("query: Parallelism must be >= 0")
	}
	if req.Dataset != "" {
		if req.DB != nil {
			return errors.New("query: set exactly one of Dataset or DB, not both")
		}
	} else {
		if req.AtVersion != 0 {
			return errors.New("query: AtVersion requires Dataset")
		}
		if err := checkAtoms(req.Query, req.DB); err != nil {
			return err
		}
	}
	if req.Aggregate != nil {
		if err := req.Aggregate.Validate(req.Query); err != nil {
			return fmt.Errorf("query: %w", err)
		}
	}
	return nil
}

// checkAtoms verifies every atom's relation exists in db with a
// matching arity.
func checkAtoms(q join.Query, db join.Database) error {
	for i, a := range q.Atoms {
		rel, ok := db[a.Relation]
		if !ok {
			return fmt.Errorf("query: atom %d: relation %q not in database", i, a.Relation)
		}
		if len(rel.Attrs) != len(a.Vars) {
			return fmt.Errorf("query: atom %d: %s has %d vars but relation has %d columns",
				i, a.Relation, len(a.Vars), len(rel.Attrs))
		}
	}
	return nil
}

// Canonical projects a full-query result onto its attributes in sorted
// order and sorts the tuples. Two evaluations of the same query —
// whatever plan, whatever tuple order the passes produced — have equal
// canonical forms, which is what makes repeat HTTP answers
// byte-identical and differential comparisons exact.
func Canonical(rel *join.Relation) (*join.Relation, error) {
	attrs := append([]string(nil), rel.Attrs...)
	sort.Strings(attrs)
	out, err := rel.Project(attrs...)
	if err != nil {
		return nil, err
	}
	out.SortRows()
	return out, nil
}

// Stats returns a snapshot of the planner counters.
func (p *Planner) Stats() Stats {
	return Stats{
		Queries:             p.queries.Load(),
		Answered:            p.answered.Load(),
		PlanCacheHits:       p.planCacheHits.Load(),
		PlanCoalesced:       p.planCoalesced.Load(),
		PlanFailures:        p.planFailures.Load(),
		ExecFailures:        p.execFailures.Load(),
		TenantLimited:       p.tenantLimited.Load(),
		RowsReturned:        p.rowsReturned.Load(),
		AggQueries:          p.aggQueries.Load(),
		AggGroups:           p.aggGroups.Load(),
		DatasetQueries:      p.datasetQueries.Load(),
		ExecParallelQueries: p.execParallelQueries.Load(),
		ExecIndexBuilds:     p.execIndexBuilds.Load(),
		ExecIndexReuses:     p.execIndexReuses.Load(),
		ExecIndexProbes:     p.execIndexProbes.Load(),
		ExecParallelTasks:   p.execParallelTasks.Load(),
		ExecInlineTasks:     p.execInlineTasks.Load(),
	}
}
