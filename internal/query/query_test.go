package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/join"
	"repro/internal/service"
)

func newTestPlanner(t *testing.T) (*Planner, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{
		TokenBudget:    2,
		MaxConcurrent:  4,
		MaxQueue:       256,
		DefaultTimeout: time.Minute,
	})
	t.Cleanup(func() { svc.Close() })
	return NewPlanner(svc), svc
}

// naiveCanonical is the independent baseline: the exponential cross
// join, canonicalised the same way as planner output. It returns an
// error instead of failing the test so it is safe to call from worker
// goroutines (t.Fatal must only run on the test goroutine).
func naiveCanonical(q join.Query, db join.Database) (*join.Relation, error) {
	rel, err := join.EvaluateNaive(q, db)
	if err != nil {
		return nil, fmt.Errorf("naive baseline: %w", err)
	}
	return Canonical(rel)
}

// TestDifferentialRandomQueries is the PR's correctness wall: on seeded
// random CQs and databases, the rows produced by the HD plan (through
// the service and its plan cache) must equal the naive cross-join
// baseline exactly. Queries run concurrently through one shared planner
// — under -race this also exercises concurrent Submit, plan-cache reads
// and coalescing — and every query is evaluated twice, the repeat being
// required to be a plan-cache hit with identical rows.
func TestDifferentialRandomQueries(t *testing.T) {
	const queries = 50
	p, svc := newTestPlanner(t)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, queries)
	sem := make(chan struct{}, 8)
	for seed := 0; seed < queries; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			r := rand.New(rand.NewSource(int64(seed)))
			q, db := RandomInstance(r, GenConfig{})
			want, err := naiveCanonical(q, db)
			if err != nil {
				errs <- err
				return
			}

			// Even seeds execute serially, odd seeds on the parallel
			// indexed executor; the repeat below flips the mode, so every
			// seed also checks parallel and serial answers byte-equal.
			par := seed % 2 * 4
			res, err := p.Eval(ctx, Request{Query: q, DB: db, Parallelism: par})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Rows.Attrs, want.Attrs) {
				t.Errorf("seed %d: attrs %v, naive %v", seed, res.Rows.Attrs, want.Attrs)
				return
			}
			if !reflect.DeepEqual(res.Rows.Rows(), want.Rows()) {
				t.Errorf("seed %d: HD plan returned %d rows, naive %d rows\nquery: %s",
					seed, res.Rows.Size(), want.Size(), join.FormatQuery(q))
				return
			}
			if res.Width < 1 || res.Width > len(q.Atoms) {
				t.Errorf("seed %d: implausible plan width %d for %d atoms", seed, res.Width, len(q.Atoms))
			}

			// The identical query again — in the opposite execution mode:
			// same rows, and the plan must come from the cache (or a
			// concurrent structurally identical query's run) — never a
			// fresh solve of an already-solved structure.
			again, err := p.Eval(ctx, Request{Query: q, DB: db, Parallelism: 4 - par})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(again.Rows.Rows(), res.Rows.Rows()) {
				t.Errorf("seed %d: repeat query (parallelism %d vs %d) returned different rows",
					seed, 4-par, par)
			}
			if !again.PlanCacheHit && !again.PlanCoalesced {
				t.Errorf("seed %d: repeat query neither hit the plan cache nor coalesced", seed)
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := p.Stats()
	if st.Queries != 2*queries || st.Answered != 2*queries {
		t.Fatalf("planner counters: %+v", st)
	}
	if st.PlanCacheHits+st.PlanCoalesced < queries {
		t.Fatalf("at least the %d repeats must reuse plans: %+v", queries, st)
	}
	// Every seed ran exactly one of its two evaluations in parallel mode.
	if st.ExecParallelQueries != queries {
		t.Fatalf("ExecParallelQueries = %d, want %d", st.ExecParallelQueries, queries)
	}
	if st.ExecIndexBuilds == 0 || st.ExecIndexProbes == 0 {
		t.Fatalf("executor counters not aggregated: %+v", st)
	}
	sst := svc.Stats()
	if sst.SolverRuns > int64(queries) {
		t.Fatalf("%d solver runs for %d distinct queries: plan cache not working", sst.SolverRuns, queries)
	}
}

// aggSweep is the operator matrix the aggregate differential wall
// sweeps per instance: every kind, scalar and grouped.
func aggSweep(q join.Query) []join.AggSpec {
	vars := map[string]bool{}
	var order []string
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !vars[v] {
				vars[v] = true
				order = append(order, v)
			}
		}
	}
	first, last := order[0], order[len(order)-1]
	return []join.AggSpec{
		{Kind: join.AggCount},
		{Kind: join.AggCountDistinct, Over: []string{first}},
		{Kind: join.AggSum, Var: last},
		{Kind: join.AggMin, Var: first},
		{Kind: join.AggMax, Var: last, GroupBy: []string{first}},
		{Kind: join.AggCount, GroupBy: []string{last}},
		{Kind: join.AggCountDistinct, Over: []string{last}, GroupBy: []string{first}},
	}
}

// TestDifferentialAggregates is the aggregate wall: on the same 50
// seeded random instances as the row wall, every pushdown aggregate
// answered through the planner must exactly equal the naive
// materialise-then-fold of the independently computed cross-join
// baseline — serial and parallel (seeds alternate, and each spec runs
// in both modes via the repeat), with the repeat required to reuse the
// plan.
func TestDifferentialAggregates(t *testing.T) {
	const queries = 50
	p, svc := newTestPlanner(t)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, queries)
	sem := make(chan struct{}, 8)
	for seed := 0; seed < queries; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			r := rand.New(rand.NewSource(int64(seed)))
			q, db := RandomInstance(r, GenConfig{})
			rows, err := naiveCanonical(q, db)
			if err != nil {
				errs <- err
				return
			}
			par := seed % 2 * 4
			for _, spec := range aggSweep(q) {
				want, err := join.AggregateRows(rows, spec)
				if err != nil {
					errs <- fmt.Errorf("seed %d %s: naive fold: %w", seed, join.FormatAggregate(spec), err)
					return
				}
				res, err := p.Eval(ctx, Request{Query: q, DB: db, Parallelism: par, Aggregate: &spec})
				if err != nil {
					errs <- fmt.Errorf("seed %d %s: %w", seed, join.FormatAggregate(spec), err)
					return
				}
				if res.Rows != nil {
					t.Errorf("seed %d %s: aggregate result carries rows", seed, join.FormatAggregate(spec))
					return
				}
				if res.Agg == nil || !reflect.DeepEqual(*res.Agg, want) {
					t.Errorf("seed %d %s: pushdown %+v, naive %+v\nquery: %s",
						seed, join.FormatAggregate(spec), res.Agg, want, join.FormatQuery(q))
					return
				}
				// The opposite execution mode must agree byte for byte and
				// reuse the plan the first run banked.
				again, err := p.Eval(ctx, Request{Query: q, DB: db, Parallelism: 4 - par, Aggregate: &spec})
				if err != nil {
					errs <- fmt.Errorf("seed %d %s repeat: %w", seed, join.FormatAggregate(spec), err)
					return
				}
				if !reflect.DeepEqual(again.Agg, res.Agg) {
					t.Errorf("seed %d %s: parallel and serial aggregates disagree", seed, join.FormatAggregate(spec))
				}
				if !again.PlanCacheHit && !again.PlanCoalesced {
					t.Errorf("seed %d %s: aggregate repeat did not reuse the plan", seed, join.FormatAggregate(spec))
				}
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := p.Stats()
	if st.AggQueries != st.Answered || st.Answered == 0 {
		t.Fatalf("aggregate query counters: %+v", st)
	}
	sst := svc.Stats()
	if sst.SolverRuns > queries {
		t.Fatalf("%d solver runs for %d distinct structures: aggregates not sharing plans", sst.SolverRuns, queries)
	}
}

// TestEvalAggregatePlanShared: a row query and an aggregate over the
// same query share one cached plan, and the aggregate answers a query
// whose row form blows the row budget.
func TestEvalAggregatePlanShared(t *testing.T) {
	p, svc := newTestPlanner(t)
	q, err := join.ParseQuery("R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	r, s := join.NewRelation("a", "b"), join.NewRelation("a", "b")
	for i := 0; i < 30; i++ {
		r.Add(i, 0)
		s.Add(0, i)
	}
	db := join.Database{"R": r, "S": s}

	// Row form: 900 answers, budget 50 → ErrRowBudget. (The budget still
	// covers intermediates, so it must stay above the 30-row bags.)
	if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, MaxRows: 50}); !errors.Is(err, join.ErrRowBudget) {
		t.Fatalf("row query: got %v, want ErrRowBudget", err)
	}
	// Aggregate form under the same budget: the count comes back.
	spec := join.AggSpec{Kind: join.AggCount}
	res, err := p.Eval(context.Background(), Request{Query: q, DB: db, MaxRows: 50, Aggregate: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Agg.Value(); !ok || v != 900 {
		t.Fatalf("aggregate count = %d (ok=%v), want 900", v, ok)
	}
	if !res.PlanCacheHit {
		t.Fatal("aggregate did not reuse the row query's cached plan")
	}
	if runs := svc.Stats().SolverRuns; runs != 1 {
		t.Fatalf("SolverRuns = %d, want 1 (row and aggregate share the plan)", runs)
	}

	// Invalid specs fail validation before planning.
	bad := join.AggSpec{Kind: join.AggSum, Var: "nope"}
	if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, Aggregate: &bad}); err == nil {
		t.Fatal("aggregate over unknown variable must fail")
	}
}

// TestConcurrentIdenticalQueries: N submissions of one query race
// through the planner; all must agree, and the service must run at most
// one solver (coalescing or cache hits absorb the rest).
func TestConcurrentIdenticalQueries(t *testing.T) {
	p, svc := newTestPlanner(t)
	r := rand.New(rand.NewSource(99))
	q, db := RandomInstance(r, GenConfig{})
	want, err := naiveCanonical(q, db)
	if err != nil {
		t.Fatal(err)
	}

	const dup = 8
	var wg sync.WaitGroup
	results := make([]Result, dup)
	errsArr := make([]error, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errsArr[i] = p.Eval(context.Background(), Request{Query: q, DB: db})
		}(i)
	}
	wg.Wait()
	for i := 0; i < dup; i++ {
		if errsArr[i] != nil {
			t.Fatalf("query %d: %v", i, errsArr[i])
		}
		if !reflect.DeepEqual(results[i].Rows.Rows(), want.Rows()) {
			t.Fatalf("query %d disagrees with the naive baseline", i)
		}
	}
	if runs := svc.Stats().SolverRuns; runs != 1 {
		t.Fatalf("SolverRuns = %d for %d identical concurrent queries, want 1", runs, dup)
	}
}

func TestEvalValidation(t *testing.T) {
	p, _ := newTestPlanner(t)
	ctx := context.Background()
	db := join.Database{"R": join.NewRelation("a", "b").Add(1, 2)}

	cases := map[string]Request{
		"empty query":      {DB: db},
		"missing relation": {Query: join.Query{Atoms: []join.Atom{{Relation: "S", Vars: []string{"x"}}}}, DB: db},
		"arity mismatch":   {Query: join.Query{Atoms: []join.Atom{{Relation: "R", Vars: []string{"x"}}}}, DB: db},
		"negative budget": {Query: join.Query{Atoms: []join.Atom{{Relation: "R", Vars: []string{"x", "y"}}}},
			DB: db, MaxRows: -1},
	}
	for name, req := range cases {
		if _, err := p.Eval(ctx, req); err == nil {
			t.Errorf("%s: Eval should fail", name)
		}
	}
	if st := p.Stats(); st.PlanFailures != int64(len(cases)) {
		t.Fatalf("validation failures not counted: %+v", st)
	}
}

func TestEvalWidthCeiling(t *testing.T) {
	p, _ := newTestPlanner(t)
	// The triangle has hw = 2: a ceiling of 1 must yield ErrNoPlan with
	// the proven bound in the message, not a wrong answer.
	q, err := join.ParseQuery("R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	db := join.Database{
		"R": join.NewRelation("a", "b").Add(1, 2),
		"S": join.NewRelation("a", "b").Add(2, 3),
		"T": join.NewRelation("a", "b").Add(3, 1),
	}
	if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, MaxWidth: 1}); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("MaxWidth=1 on the triangle: got %v, want ErrNoPlan", err)
	}
	res, err := p.Eval(context.Background(), Request{Query: q, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 2 || res.Rows.Size() != 1 {
		t.Fatalf("triangle: width=%d rows=%d, want width 2, 1 row", res.Width, res.Rows.Size())
	}
	if !reflect.DeepEqual(res.Rows.Attrs, []string{"x", "y", "z"}) {
		t.Fatalf("canonical attrs: %v", res.Rows.Attrs)
	}
}

func TestEvalRowBudget(t *testing.T) {
	p, _ := newTestPlanner(t)
	// A cross-join-heavy query whose full answer set is large.
	q, err := join.ParseQuery("R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	r, s := join.NewRelation("a", "b"), join.NewRelation("a", "b")
	for i := 0; i < 30; i++ {
		r.Add(i, 0)
		s.Add(0, i)
	}
	db := join.Database{"R": r, "S": s}
	if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, MaxRows: 10}); !errors.Is(err, join.ErrRowBudget) {
		t.Fatalf("row budget: got %v, want join.ErrRowBudget", err)
	}
	res, err := p.Eval(context.Background(), Request{Query: q, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Size() != 900 {
		t.Fatalf("unbudgeted rows = %d, want 900", res.Rows.Size())
	}
	if st := p.Stats(); st.ExecFailures != 1 || st.RowsReturned != 900 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEvalCancellation(t *testing.T) {
	p, _ := newTestPlanner(t)
	r := rand.New(rand.NewSource(7))
	q, db := RandomInstance(r, GenConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Eval(ctx, Request{Query: q, DB: db}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: got %v, want context.Canceled", err)
	}
}

// TestRandomInstanceDeterministic: the generator is a pure function of
// its rand source — the bench harness and the differential suite rely
// on replaying identical workloads.
func TestRandomInstanceDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q1, db1 := RandomInstance(rand.New(rand.NewSource(seed)), GenConfig{})
		q2, db2 := RandomInstance(rand.New(rand.NewSource(seed)), GenConfig{})
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("seed %d: queries differ", seed)
		}
		if !reflect.DeepEqual(db1, db2) {
			t.Fatalf("seed %d: databases differ", seed)
		}
		if len(q1.Atoms) < 2 {
			t.Fatalf("seed %d: %d atoms", seed, len(q1.Atoms))
		}
	}
	// Degenerate bounds are clamped, not a panic.
	q, _ := RandomInstance(rand.New(rand.NewSource(1)), GenConfig{MaxAtoms: 1})
	if len(q.Atoms) != 2 {
		t.Fatalf("MaxAtoms=1 should clamp to 2 atoms, got %d", len(q.Atoms))
	}
}
