package query

import (
	"math/rand"
	"strconv"

	"repro/internal/join"
)

// GenConfig sizes RandomInstance. The zero value picks defaults small
// enough that the naive cross-join baseline stays tractable, which is
// what the differential suite and the bench harness both need.
type GenConfig struct {
	MaxAtoms  int // atoms per query, 2..MaxAtoms (default 5)
	MaxVars   int // variable pool size (default 6)
	MaxArity  int // maximum atom arity (default 3)
	Domain    int // values are drawn from [0, Domain) (default 4)
	MaxTuples int // tuples per relation before dedup (default 20)
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 5
	}
	if c.MaxAtoms < 2 {
		// Queries always have 2..MaxAtoms atoms, so the bound itself
		// must be at least 2.
		c.MaxAtoms = 2
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 6
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 3
	}
	if c.Domain <= 0 {
		c.Domain = 4
	}
	if c.MaxTuples <= 0 {
		c.MaxTuples = 20
	}
	return c
}

// RandomInstance generates a random conjunctive query with a matching
// random database, deterministically from r. Queries are connected
// (every atom after the first reuses at least one earlier variable),
// may be cyclic, and may contain self-joins (the same relation in two
// atoms). Used by the differential test suite and by benchtab's query
// experiment, so both drive the pipeline with the same workload shape.
func RandomInstance(r *rand.Rand, cfg GenConfig) (join.Query, join.Database) {
	cfg = cfg.withDefaults()
	nAtoms := 2 + r.Intn(cfg.MaxAtoms-1)

	// Declare relations first so a relation reused across atoms keeps
	// one arity; roughly one relation per atom leaves room for
	// self-joins without forcing them.
	nRels := 1 + r.Intn(nAtoms)
	arities := make([]int, nRels)
	for i := range arities {
		arities[i] = 1 + r.Intn(cfg.MaxArity)
		if arities[i] > cfg.MaxVars {
			arities[i] = cfg.MaxVars
		}
	}

	varName := func(i int) string { return "x" + strconv.Itoa(i) }
	var q join.Query
	var usedIDs []int // insertion-ordered, so generation is deterministic in r
	used := map[int]bool{}
	use := func(v int) {
		if !used[v] {
			used[v] = true
			usedIDs = append(usedIDs, v)
		}
	}
	for i := 0; i < nAtoms; i++ {
		rel := r.Intn(nRels)
		arity := arities[rel]
		// Pick distinct variables; after the first atom, force at least
		// one previously used variable so the query stays connected.
		picked := map[int]bool{}
		vars := make([]string, 0, arity)
		if i > 0 {
			v := usedIDs[r.Intn(len(usedIDs))]
			picked[v] = true
			vars = append(vars, varName(v))
		}
		for len(vars) < arity {
			v := r.Intn(cfg.MaxVars)
			if picked[v] {
				continue
			}
			picked[v] = true
			vars = append(vars, varName(v))
		}
		for _, name := range vars {
			v, _ := strconv.Atoi(name[1:])
			use(v)
		}
		q.Atoms = append(q.Atoms, join.Atom{Relation: "R" + strconv.Itoa(rel), Vars: vars})
	}

	db := join.Database{}
	for i, arity := range arities {
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = "c" + strconv.Itoa(j)
		}
		rel := join.NewRelation(attrs...)
		for n := r.Intn(cfg.MaxTuples + 1); n > 0; n-- {
			row := make([]int, arity)
			for j := range row {
				row[j] = r.Intn(cfg.Domain)
			}
			rel.Add(row...)
		}
		// Dedup keeps the naive baseline's intermediates bounded by the
		// domain size, not the raw tuple count.
		db["R"+strconv.Itoa(i)] = rel.Dedup()
	}
	return q, db
}
