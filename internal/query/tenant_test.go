package query

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
)

// TestEvalTenantLeaseCoversWholeQuery verifies the planner takes ONE
// tenant lease per query — plan and execution together — so a query is
// rate-charged once, not once per layer, and the tenant's latency
// histogram sees end-to-end time.
func TestEvalTenantLeaseCoversWholeQuery(t *testing.T) {
	svc := service.New(service.Config{
		TokenBudget:    2,
		MaxConcurrent:  4,
		MaxQueue:       256,
		DefaultTimeout: time.Minute,
		Tenants:        tenant.Config{Rate: 0.001, Burst: 2},
	})
	t.Cleanup(func() { svc.Close() })
	p := NewPlanner(svc)

	r := rand.New(rand.NewSource(7))
	q, db := RandomInstance(r, GenConfig{})

	// Burst 2 admits exactly two queries even though each query also
	// submits an inner plan job — proof the inner Submit is pre-admitted
	// rather than double charged.
	for i := 0; i < 2; i++ {
		if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, Tenant: "alice"}); err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
	}
	if _, err := p.Eval(context.Background(), Request{Query: q, DB: db, Tenant: "alice"}); !errors.Is(err, tenant.ErrLimited) {
		t.Fatalf("third eval err = %v, want tenant.ErrLimited", err)
	}

	if got := p.Stats().TenantLimited; got != 1 {
		t.Fatalf("TenantLimited = %d, want 1", got)
	}
	ts := svc.Stats().Tenants["alice"]
	if ts.Admitted != 2 || ts.RateRejected != 1 {
		t.Fatalf("alice stats = %+v, want Admitted 2, RateRejected 1", ts)
	}
}
