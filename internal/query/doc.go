// Package query answers conjunctive queries end to end — the paper's §1
// motivating application. A Planner turns a CQ into its hypergraph,
// obtains a minimum-width hypertree decomposition through the
// decomposition service (read-through to the cross-request store: a
// repeat query is a plan-cache hit that runs no solver), and executes
// Yannakakis' algorithm over the bags on the hash-indexed kernel —
// optionally in parallel, sibling subtrees running on workers leased
// from the service's shared token budget — under a per-query row budget
// and context cancellation. A Request carrying an Aggregate spec skips
// answer materialisation entirely: the aggregate is folded down the
// join tree and the Result returns groups and values, never rows.
//
// The pipeline composes every prior subsystem: internal/join supplies
// the relational engine and the aggregate pushdown, internal/service
// the managed solvers, and internal/store the content-addressed plan
// cache keyed by the query hypergraph's structure — structurally
// identical queries (same atom shapes, any relation names) share one
// cached plan, and row and aggregate forms of the same query share it
// too.
package query
