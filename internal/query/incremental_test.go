package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

// mirrorDB is the from-scratch reference state: per relation, the set
// of live tuples, maintained by replaying every delta with plain map
// operations — no shared code with the incremental path.
type mirrorDB map[string]map[string][]int

func newMirror(db join.Database) mirrorDB {
	m := mirrorDB{}
	for name, rel := range db {
		rows := map[string][]int{}
		for _, row := range rel.Rows() {
			rows[rowKey(row)] = row
		}
		m[name] = rows
	}
	return m
}

func rowKey(row []int) string {
	var b strings.Builder
	for _, v := range row {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// apply replays one mutation batch onto the mirror with set semantics:
// ops apply sequentially, inserts of live tuples and deletes of absent
// tuples are no-ops.
func (m mirrorDB) apply(batch []dataset.Mutation) {
	for _, mu := range batch {
		for _, row := range mu.Rows {
			k := rowKey(row)
			if mu.Op == "insert" {
				m[mu.Rel][k] = append([]int(nil), row...)
			} else {
				delete(m[mu.Rel], k)
			}
		}
	}
}

// materialise builds a fresh database from the mirror — the
// from-scratch state an incremental evaluation must match exactly.
func (m mirrorDB) materialise(db join.Database) join.Database {
	out := join.Database{}
	for name, rel := range db {
		fresh := join.NewRelation(rel.Attrs...)
		keys := make([]string, 0, len(m[name]))
		for k := range m[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fresh.Add(m[name][k]...)
		}
		out[name] = fresh
	}
	return out
}

// randomBatch builds one random delta batch against the mirror's
// current state: inserts of fresh random tuples, deletes of currently
// live tuples, and deletes of tuples that were never inserted (no-ops
// the set semantics must absorb).
func randomBatch(r *rand.Rand, db join.Database, m mirrorDB, domain int) []dataset.Mutation {
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	var batch []dataset.Mutation
	for _, name := range names {
		arity := len(db[name].Attrs)
		var ins [][]int
		for n := 1 + r.Intn(3); n > 0; n-- {
			row := make([]int, arity)
			for j := range row {
				row[j] = r.Intn(domain)
			}
			ins = append(ins, row)
		}
		batch = append(batch, dataset.Mutation{Op: "insert", Rel: name, Rows: ins})

		var del [][]int
		// Delete up to two live tuples (sorted iteration keeps the
		// batch deterministic in r).
		keys := make([]string, 0, len(m[name]))
		for k := range m[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for n := r.Intn(3); n > 0 && len(keys) > 0; n-- {
			i := r.Intn(len(keys))
			del = append(del, append([]int(nil), m[name][keys[i]]...))
			keys = append(keys[:i], keys[i+1:]...)
		}
		// And sometimes a tuple outside the domain — never inserted,
		// so the delete must be a counted miss, not an error.
		if r.Intn(2) == 0 {
			row := make([]int, arity)
			for j := range row {
				row[j] = domain + 10 + r.Intn(5)
			}
			del = append(del, row)
		}
		if len(del) > 0 {
			batch = append(batch, dataset.Mutation{Op: "delete", Rel: name, Rows: del})
		}
	}
	return batch
}

// TestDifferentialIncremental is the incrementality wall: on seeded
// random instances registered as named datasets, a random sequence of
// insert+delete batches is applied, and after every batch the
// dataset-reference evaluation (delta-maintained indexes, snapshot
// reads) must byte-equal both an inline evaluation over the
// materialised from-scratch state and the naive cross-join baseline —
// rows and aggregates, serial and parallel alternating. Old versions
// stay pinnable within the retention window and answer with their own
// rows.
func TestDifferentialIncremental(t *testing.T) {
	const (
		seeds  = 50
		rounds = 4
		domain = 4
	)
	p, svc := newTestPlanner(t)
	reg := svc.Datasets()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, seeds*rounds)
	sem := make(chan struct{}, 8)
	for seed := 0; seed < seeds; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("seed %d: %s", seed, fmt.Sprintf(format, args...))
			}
			r := rand.New(rand.NewSource(int64(seed)))
			q, db := RandomInstance(r, GenConfig{Domain: domain})
			name := fmt.Sprintf("incr-%d", seed)
			if _, err := reg.Put("", name, db); err != nil {
				fail("put: %v", err)
				return
			}
			mirror := newMirror(db)
			d, _ := reg.Get("", name)

			// wantByVersion remembers each version's canonical rows for
			// the pinned reads below.
			wantByVersion := map[uint64]*join.Relation{}
			if w, err := naiveCanonical(q, db); err == nil {
				wantByVersion[1] = w
			} else {
				fail("naive: %v", err)
				return
			}

			for round := 0; round < rounds; round++ {
				batch := randomBatch(r, db, mirror, domain)
				res, err := d.Mutate(batch)
				if err != nil {
					fail("round %d mutate: %v", round, err)
					return
				}
				if res.Version != uint64(round)+2 {
					fail("round %d: version %d, want %d", round, res.Version, round+2)
					return
				}
				mirror.apply(batch)
				scratch := mirror.materialise(db)

				want, err := naiveCanonical(q, scratch)
				if err != nil {
					fail("round %d naive: %v", round, err)
					return
				}
				wantByVersion[res.Version] = want

				par := (seed + round) % 2 * 4
				incr, err := p.Eval(ctx, Request{Query: q, Dataset: name, Parallelism: par})
				if err != nil {
					fail("round %d incremental eval: %v", round, err)
					return
				}
				if incr.DatasetVersion != res.Version {
					fail("round %d: read version %d, want %d", round, incr.DatasetVersion, res.Version)
					return
				}
				if !reflect.DeepEqual(incr.Rows.Rows(), want.Rows()) {
					fail("round %d: incremental rows diverge from from-scratch naive\nquery: %s\nincremental %d rows, want %d",
						round, join.FormatQuery(q), incr.Rows.Size(), want.Size())
					return
				}
				// The inline evaluation over the materialised state must
				// agree too (it exercises the planner path end to end).
				scratchRes, err := p.Eval(ctx, Request{Query: q, DB: scratch, Parallelism: 4 - par})
				if err != nil {
					fail("round %d scratch eval: %v", round, err)
					return
				}
				if !reflect.DeepEqual(incr.Rows.Rows(), scratchRes.Rows.Rows()) {
					fail("round %d: incremental and from-scratch planner rows differ", round)
					return
				}

				// Aggregate form: pushdown over the maintained snapshot vs
				// the naive fold over the materialised rows.
				spec := aggSweep(q)[round%2]
				aggIncr, err := p.Eval(ctx, Request{Query: q, Dataset: name, Aggregate: &spec, Parallelism: par})
				if err != nil {
					fail("round %d incremental agg: %v", round, err)
					return
				}
				aggWant, err := join.AggregateRows(want, spec)
				if err != nil {
					fail("round %d agg fold: %v", round, err)
					return
				}
				if !reflect.DeepEqual(*aggIncr.Agg, aggWant) {
					fail("round %d: incremental aggregate diverges: %+v vs %+v", round, *aggIncr.Agg, aggWant)
					return
				}
			}

			// Pinned reads: every retained version answers with its own
			// rows; versions past the retention window are a clear error.
			current := d.Version()
			for v := uint64(1); v <= current; v++ {
				res, err := p.Eval(ctx, Request{Query: q, Dataset: name, AtVersion: v})
				if err != nil {
					if errors.Is(err, dataset.ErrVersionGone) {
						continue // evicted: the clear error, never wrong rows
					}
					fail("pin v%d: %v", v, err)
					return
				}
				if res.DatasetVersion != v {
					fail("pin v%d: answered from version %d", v, res.DatasetVersion)
					return
				}
				if !reflect.DeepEqual(res.Rows.Rows(), wantByVersion[v].Rows()) {
					fail("pin v%d: rows differ from that version's materialised state", v)
					return
				}
			}
			if _, err := p.Eval(ctx, Request{Query: q, Dataset: name, AtVersion: current + 10}); !errors.Is(err, dataset.ErrFutureVersion) {
				fail("future pin: err = %v, want ErrFutureVersion", err)
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := p.Stats()
	if st.DatasetQueries == 0 {
		t.Fatalf("no dataset queries counted: %+v", st)
	}
	if st.ExecIndexReuses == 0 {
		t.Fatalf("incremental evaluations never reused a maintained index: %+v", st)
	}
	if rst := reg.Stats(); rst.Mutations != seeds*rounds {
		t.Fatalf("registry counted %d mutations, want %d", rst.Mutations, seeds*rounds)
	}
}
