// Command hbgen writes the HyperBench-sim instance suite to disk: one
// .hg file per instance in the HyperBench text format, plus an index.csv
// with provenance metadata (origin, size group, known width).
//
// Usage:
//
//	hbgen -dir ./instances [-scale 4] [-seed 2022]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/hyperbench"
)

func main() {
	var (
		dir   = flag.String("dir", "", "output directory (required)")
		scale = flag.Int("scale", 1, "suite scale factor")
		seed  = flag.Int64("seed", 2022, "generator seed")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hbgen: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "hbgen:", err)
		os.Exit(1)
	}
}

func run(dir string, scale int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suite := hyperbench.Suite(hyperbench.Config{Scale: scale, Seed: seed})
	var index strings.Builder
	index.WriteString("file,name,origin,edges,vertices,group,known_hw\n")
	for _, in := range suite {
		file := sanitize(in.Name) + ".hg"
		if err := os.WriteFile(filepath.Join(dir, file), []byte(in.H.String()+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "%s,%s,%s,%d,%d,%q,%d\n",
			file, in.Name, in.Origin, in.Edges(), in.H.NumVertices(),
			hyperbench.SizeBucket(in.Edges()), in.KnownHW)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.csv"), []byte(index.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d instances to %s\n", len(suite), dir)
	return nil
}

func sanitize(name string) string {
	r := strings.NewReplacer("#", "_", "/", "_", " ", "_")
	return r.Replace(name)
}
