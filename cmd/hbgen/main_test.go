package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hypergraph"
)

func TestRunWritesSuite(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 7); err != nil {
		t.Fatal(err)
	}
	index, err := os.ReadFile(filepath.Join(dir, "index.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(index)), "\n")
	if len(lines) < 10 {
		t.Fatalf("index has %d lines, expected a full suite", len(lines))
	}
	if !strings.HasPrefix(lines[0], "file,name,origin,edges") {
		t.Fatalf("index header wrong: %q", lines[0])
	}
	// Every listed file exists and parses back to the declared edge count.
	checked := 0
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		f, err := os.Open(filepath.Join(dir, fields[0]))
		if err != nil {
			t.Fatalf("missing instance file: %v", err)
		}
		h, err := hypergraph.Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s does not parse: %v", fields[0], err)
		}
		if fields[3] != itoa(h.NumEdges()) {
			t.Fatalf("%s: index says %s edges, file has %d", fields[0], fields[3], h.NumEdges())
		}
		checked++
		if checked >= 10 {
			break
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestSanitize(t *testing.T) {
	if got := sanitize("app-cycle#3 / x"); strings.ContainsAny(got, "#/ ") {
		t.Fatalf("sanitize left separators: %q", got)
	}
}
