// Command hgstat prints structural statistics of a hypergraph file:
// vertex/edge counts, arity and degree distributions, connectivity,
// GYO α-acyclicity (equivalently hw = 1), and the HyperBench size group.
//
// Usage:
//
//	hgstat file.hg [file2.hg ...]
//	cat file.hg | hgstat -
package main

import (
	"fmt"
	"os"

	"repro/internal/hyperbench"
	"repro/internal/hypergraph"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hgstat <file.hg|-> ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range args {
		if err := report(path); err != nil {
			fmt.Fprintf(os.Stderr, "hgstat: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func report(path string) error {
	var (
		h   *hypergraph.Hypergraph
		err error
	)
	if path == "-" {
		h, err = hypergraph.Parse(os.Stdin)
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		h, err = hypergraph.Parse(f)
	}
	if err != nil {
		return err
	}
	st := h.ComputeStats()
	reduced, _ := h.RemoveSubsumedEdges()

	fmt.Printf("%s:\n", path)
	fmt.Printf("  vertices:        %d\n", st.Vertices)
	fmt.Printf("  edges:           %d  (group: %s)\n", st.Edges, hyperbench.SizeBucket(st.Edges))
	fmt.Printf("  arity:           min %d, max %d, avg %.2f\n", st.MinArity, st.MaxArity, st.AvgArity)
	fmt.Printf("  degree:          min %d, max %d, avg %.2f\n", st.MinDegree, st.MaxDegree, st.AvgDegree)
	fmt.Printf("  connected:       %v\n", st.IsConnected)
	fmt.Printf("  alpha-acyclic:   %v  (hw = 1 iff true)\n", h.IsAcyclic())
	fmt.Printf("  subsumed edges:  %d\n", st.Edges-reduced.NumEdges())
	return nil
}
