// Command hgstat prints structural statistics of a hypergraph file:
// vertex/edge counts, arity and degree distributions, connectivity,
// GYO α-acyclicity (equivalently hw = 1), and the HyperBench size group.
//
// Usage:
//
//	hgstat file.hg [file2.hg ...]
//	cat file.hg | hgstat -
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/hyperbench"
	"repro/internal/hypergraph"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// runMain is the testable entry point: it reports on every path in
// args ("-" reads stdin) and returns the process exit code.
func runMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: hgstat <file.hg|-> ...")
		return 2
	}
	exit := 0
	for _, path := range args {
		if err := report(stdout, stdin, path); err != nil {
			fmt.Fprintf(stderr, "hgstat: %s: %v\n", path, err)
			exit = 1
		}
	}
	return exit
}

func report(w io.Writer, stdin io.Reader, path string) error {
	var (
		h   *hypergraph.Hypergraph
		err error
	)
	if path == "-" {
		h, err = hypergraph.Parse(stdin)
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		h, err = hypergraph.Parse(f)
	}
	if err != nil {
		return err
	}
	st := h.ComputeStats()
	reduced, _ := h.RemoveSubsumedEdges()

	fmt.Fprintf(w, "%s:\n", path)
	fmt.Fprintf(w, "  vertices:        %d\n", st.Vertices)
	fmt.Fprintf(w, "  edges:           %d  (group: %s)\n", st.Edges, hyperbench.SizeBucket(st.Edges))
	fmt.Fprintf(w, "  arity:           min %d, max %d, avg %.2f\n", st.MinArity, st.MaxArity, st.AvgArity)
	fmt.Fprintf(w, "  degree:          min %d, max %d, avg %.2f\n", st.MinDegree, st.MaxDegree, st.AvgDegree)
	fmt.Fprintf(w, "  connected:       %v\n", st.IsConnected)
	fmt.Fprintf(w, "  alpha-acyclic:   %v  (hw = 1 iff true)\n", h.IsAcyclic())
	fmt.Fprintf(w, "  subsumed edges:  %d\n", st.Edges-reduced.NumEdges())
	return nil
}
