package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const triangleSrc = "r1(x,y), r2(y,z), r3(z,x), sub(x,y).\n"

func writeTempHG(t *testing.T, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.hg")
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportOnFile(t *testing.T) {
	path := writeTempHG(t, triangleSrc)
	var out strings.Builder
	if err := report(&out, nil, path); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"vertices:        3",
		"edges:           4  (group: |E| <= 10)",
		"connected:       true",
		"alpha-acyclic:   false",
		"subsumed edges:  1", // sub(x,y) ⊆ r1(x,y)
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestReportFromStdin(t *testing.T) {
	var out strings.Builder
	if err := report(&out, strings.NewReader("a(x,y), b(y,z).\n"), "-"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "alpha-acyclic:   true") {
		t.Fatalf("chain must be acyclic:\n%s", got)
	}
	if !strings.Contains(got, "-:") {
		t.Fatalf("stdin report should be labelled '-':\n%s", got)
	}
}

func TestRunMainExitCodes(t *testing.T) {
	var stdout, stderr strings.Builder

	// No args: usage on stderr, exit 2.
	if code := runMain(nil, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: hgstat") {
		t.Fatalf("usage missing: %q", stderr.String())
	}

	// Good file: exit 0 with the report on stdout.
	path := writeTempHG(t, triangleSrc)
	stdout.Reset()
	stderr.Reset()
	if code := runMain([]string{path}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("good file: exit %d (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "vertices:") {
		t.Fatalf("report missing:\n%s", stdout.String())
	}

	// Missing file: exit 1, error on stderr, good files still reported.
	stdout.Reset()
	stderr.Reset()
	if code := runMain([]string{"/definitely/not/there.hg", path}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "hgstat: /definitely/not/there.hg") {
		t.Fatalf("error line missing: %q", stderr.String())
	}
	if !strings.Contains(stdout.String(), "vertices:") {
		t.Fatal("surviving file should still be reported")
	}

	// Unparseable file: exit 1.
	bad := writeTempHG(t, "this is ( not a hypergraph")
	if code := runMain([]string{bad}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("bad file: exit %d, want 1", code)
	}
}
