package main

import (
	"net/http"
	"net/http/pprof"
)

// pprofMux is the profiling surface behind -pprof-addr: the standard
// net/http/pprof endpoints on their own mux, served from a separate
// listener so profiling exposure is an explicit deployment decision —
// the serving handler never routes /debug/pprof/, whatever the flag
// says. Default (flag empty) is off.
func pprofMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
