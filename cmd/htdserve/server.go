package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	htd "repro"
)

// apiRequest is the JSON body of POST /decompose and one NDJSON line of
// POST /batch.
type apiRequest struct {
	// Hypergraph in HyperBench syntax: name(v1,v2,...) terms separated
	// by commas.
	Hypergraph string `json:"hypergraph"`
	// Mode selects the problem: "decide" (default) answers hw ≤ k,
	// "optimal" computes hw exactly over widths 1..k with the racer.
	Mode string `json:"mode,omitempty"`
	// K is the width bound (required, ≥ 1); the search ceiling in
	// optimal mode.
	K int `json:"k"`
	// MaxProbes bounds concurrent width probes in optimal mode (0 picks
	// the default ladder width).
	MaxProbes int `json:"max_probes,omitempty"`
	// Workers caps this job's search parallelism (0 = service default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS tightens the server's per-job timeout in milliseconds
	// (it cannot exceed the server's -timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Hybrid selects det-k-decomp hybridisation: "none", "edges" or
	// "weighted"; HybridThreshold is the switch point.
	Hybrid          string  `json:"hybrid,omitempty"`
	HybridThreshold float64 `json:"hybrid_threshold,omitempty"`
	// Render asks for the indented tree rendering in the response.
	Render bool `json:"render,omitempty"`
}

// apiNode is one decomposition node in a response, with edge and vertex
// names resolved.
type apiNode struct {
	Lambda   []string   `json:"lambda"`
	Bag      []string   `json:"bag"`
	Children []*apiNode `json:"children,omitempty"`
}

// apiResponse is the JSON result of one job.
type apiResponse struct {
	OK          bool             `json:"ok"`
	Width       int              `json:"width,omitempty"`
	Nodes       int              `json:"nodes,omitempty"`
	Tree        *apiNode         `json:"tree,omitempty"`
	Rendering   string           `json:"rendering,omitempty"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	CacheShared bool             `json:"cache_shared"`
	CacheHit    bool             `json:"cache_hit,omitempty"`
	Coalesced   bool             `json:"coalesced,omitempty"`
	Stats       *htd.SolverStats `json:"stats,omitempty"`
	Error       string           `json:"error,omitempty"`
	TimedOut    bool             `json:"timed_out,omitempty"`
	// RetryAfterMS carries the tenant wall's backoff hint on 429
	// rejections (also sent as a Retry-After header on single-shot
	// responses; batch lines only have this field).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// Optimal-mode fields: the proven lower bound (sound even on
	// timeouts), where it came from ("probe", "memo", "trivial"), and
	// the racer's probe accounting.
	LowerBound      int    `json:"lower_bound,omitempty"`
	LowerBoundFrom  string `json:"lower_bound_from,omitempty"`
	ProbesLaunched  int    `json:"probes_launched,omitempty"`
	ProbesCancelled int    `json:"probes_cancelled,omitempty"`
	BoundsShared    bool   `json:"bounds_shared,omitempty"`

	// err keeps the underlying error for status-code mapping; the wire
	// carries only Error.
	err error
}

// errBadRequest marks responses for jobs that never ran because the
// request itself was invalid.
var errBadRequest = errors.New("bad request")

// tenantID extracts the caller's tenant from the X-Tenant header. An
// absent or blank header means the default tenant (mapped downstream).
func tenantID(r *http.Request) (string, error) {
	t := strings.TrimSpace(r.Header.Get("X-Tenant"))
	if len(t) > maxTenantIDLen {
		return "", fmt.Errorf("X-Tenant exceeds %d bytes", maxTenantIDLen)
	}
	return t, nil
}

// setRetryAfter adds the Retry-After header (whole seconds, rounded
// up, minimum 1) for tenant-limited rejections, so compliant clients
// back off by the bucket's actual deficit instead of guessing.
func setRetryAfter(w http.ResponseWriter, err error) {
	var le *htd.TenantLimitError
	if !errors.As(err, &le) {
		return
	}
	secs := int(math.Ceil(le.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// retryAfterMS mirrors the Retry-After hint into response bodies, the
// only channel an NDJSON batch line has for it.
func retryAfterMS(err error) int64 {
	var le *htd.TenantLimitError
	if !errors.As(err, &le) {
		return 0
	}
	ms := le.RetryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// bodyErrStatus maps a request-body decode error to its status code:
// 413 when the maxBody cap cut the read short, 400 otherwise.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// server wires an htd.Service into HTTP handlers.
type server struct {
	svc *htd.Service
	mux *http.ServeMux
	// saveMu serialises snapshot saves. Every save — POST /cache/save
	// and the shutdown save — must go through saveSnapshot: two
	// unserialised SaveSnapshotFile calls to the same path are each
	// atomic (temp file + rename), but whichever rename lands last wins,
	// so a slow handler save could clobber the fresher shutdown save.
	saveMu sync.Mutex
	// planner answers /query and /querybatch over svc; it shares the
	// service's plan cache with /decompose traffic (a decomposed
	// hypergraph is a warm plan for a structurally identical query).
	planner *htd.QueryPlanner
	// batchLimit bounds how many lines of one batch are in flight at
	// once, so a large batch queues inside the handler instead of
	// tripping the service's admission control.
	batchLimit int
	// snapshotPath is the default file for /cache/save and /cache/load
	// (the -snapshot flag); requests may override it per call.
	snapshotPath string
	// maxBody bounds every single-shot request body (decompose, query,
	// cache file requests); one oversized POST must never balloon
	// server memory. Batch bodies are streamed and bounded per line
	// instead (maxBatchLine).
	maxBody int64
	started time.Time
}

// maxBatchLine bounds one NDJSON line of /batch and /querybatch.
const maxBatchLine = 16 * 1024 * 1024

// maxTenantIDLen bounds the X-Tenant header; ids are map keys in the
// per-tenant stats, so a hostile header must not be able to make them
// arbitrarily large.
const maxTenantIDLen = 128

func newHandler(svc *htd.Service, batchLimit int, snapshotPath string, maxBody int64) *server {
	if batchLimit < 1 {
		batchLimit = 1
	}
	if maxBody <= 0 {
		maxBody = 8 * 1024 * 1024
	}
	s := &server{
		svc:          svc,
		planner:      htd.NewQueryPlanner(svc),
		batchLimit:   batchLimit,
		snapshotPath: snapshotPath,
		maxBody:      maxBody,
		started:      time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /decompose", s.handleDecompose)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /querybatch", s.handleQueryBatch)
	mux.HandleFunc("GET /data", s.handleDataList)
	mux.HandleFunc("PUT /data/{name}", s.handleDataPut)
	mux.HandleFunc("GET /data/{name}", s.handleDataGet)
	mux.HandleFunc("DELETE /data/{name}", s.handleDataDelete)
	mux.HandleFunc("POST /data/{name}/mutate", s.handleDataMutate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /cache", s.handleCache)
	mux.HandleFunc("POST /cache/save", s.handleCacheSave)
	mux.HandleFunc("POST /cache/load", s.handleCacheLoad)
	mux.HandleFunc("POST /cache/purge", s.handleCachePurge)
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// saveSnapshot exports the store and writes it to path, serialised
// against every other save (see saveMu). It returns the entry count.
func (s *server) saveSnapshot(path string) (int, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	snap := s.svc.Store().Export()
	if err := htd.SaveSnapshotFile(path, snap); err != nil {
		return 0, err
	}
	return len(snap.Entries), nil
}

// parseRequest turns an API request into a service request.
func parseRequest(a apiRequest) (htd.ServiceRequest, error) {
	var req htd.ServiceRequest
	if strings.TrimSpace(a.Hypergraph) == "" {
		return req, errors.New("missing \"hypergraph\"")
	}
	if a.K < 1 {
		return req, errors.New("\"k\" must be >= 1")
	}
	if a.TimeoutMS < 0 {
		return req, errors.New("\"timeout_ms\" must be >= 0")
	}
	h, err := htd.ParseString(a.Hypergraph)
	if err != nil {
		return req, fmt.Errorf("parse hypergraph: %w", err)
	}
	req = htd.ServiceRequest{
		H:               h,
		K:               a.K,
		MaxProbes:       a.MaxProbes,
		Workers:         a.Workers,
		Timeout:         time.Duration(a.TimeoutMS) * time.Millisecond,
		HybridThreshold: a.HybridThreshold,
	}
	switch a.Mode {
	case "", "decide":
		req.Mode = htd.ModeDecide
	case "optimal":
		req.Mode = htd.ModeOptimal
	default:
		return req, fmt.Errorf("unknown mode %q (want decide or optimal)", a.Mode)
	}
	switch a.Hybrid {
	case "", "none":
	case "edges":
		req.Hybrid = htd.HybridEdgeCount
	case "weighted":
		req.Hybrid = htd.HybridWeightedCount
	default:
		return req, fmt.Errorf("unknown hybrid metric %q (want none, edges or weighted)", a.Hybrid)
	}
	return req, nil
}

// runJob submits one parsed request and shapes the result for the wire.
func (s *server) runJob(ctx context.Context, a apiRequest, tenant string) *apiResponse {
	req, err := parseRequest(a)
	if err != nil {
		return &apiResponse{Error: err.Error(), err: errBadRequest}
	}
	req.Tenant = tenant
	res := s.svc.Submit(ctx, req)
	resp := &apiResponse{
		OK:              res.OK,
		ElapsedMS:       float64(res.Elapsed) / float64(time.Millisecond),
		CacheShared:     res.CacheShared,
		CacheHit:        res.CacheHit,
		Coalesced:       res.Coalesced,
		Stats:           &res.Stats,
		LowerBound:      res.LowerBound,
		LowerBoundFrom:  res.LowerBoundFrom,
		ProbesLaunched:  res.ProbesLaunched,
		ProbesCancelled: res.ProbesCancelled,
		BoundsShared:    res.BoundsShared,
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
		resp.err = res.Err
		resp.TimedOut = errors.Is(res.Err, context.DeadlineExceeded)
		resp.RetryAfterMS = retryAfterMS(res.Err)
		return resp
	}
	if res.OK {
		resp.Width = res.Decomp.Width()
		resp.Nodes = res.Decomp.NumNodes()
		resp.Tree = toAPINode(res.Decomp, res.Decomp.Root)
		if a.Render {
			resp.Rendering = res.Decomp.String()
		}
	}
	return resp
}

func toAPINode(d *htd.Decomposition, n *htd.Node) *apiNode {
	out := &apiNode{Lambda: make([]string, len(n.Lambda))}
	for i, e := range n.Lambda {
		out.Lambda[i] = d.H.EdgeName(e)
	}
	n.Bag.ForEach(func(v int) { out.Bag = append(out.Bag, d.H.VertexName(v)) })
	for _, c := range n.Children {
		out.Children = append(out.Children, toAPINode(d, c))
	}
	return out
}

func (s *server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var a apiRequest
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		httpError(w, bodyErrStatus(err), "invalid JSON: "+err.Error())
		return
	}
	resp := s.runJob(r.Context(), a, tenant)
	status := http.StatusOK
	switch {
	case errors.Is(resp.err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(resp.err, htd.ErrTenantLimited):
		status = http.StatusTooManyRequests
		setRetryAfter(w, resp.err)
	case errors.Is(resp.err, htd.ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(resp.err, htd.ErrServiceClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// streamNDJSON reads NDJSON request lines and streams NDJSON responses
// in input order, each line flushed as soon as its job finishes. At
// most batchLimit jobs run at once; handle turns one line into one
// response object.
//
// A failed response write marks the client dead: the scanner stops
// accepting lines, so a disconnected batch client stops consuming
// solver budget (already-running jobs finish and their results are
// discarded). A read error ends the stream with a final NDJSON error
// object — in particular a line beyond the maxBatchLine cap names
// bufio.ErrTooLong, so clients can tell "input rejected" from
// "connection died".
func (s *server) streamNDJSON(w http.ResponseWriter, r *http.Request, handle func([]byte) any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	// The stream writes responses while the request body is still being
	// read; on HTTP/1.x that concurrency needs full-duplex mode, or the
	// first flush blocks trying to drain a body the client is still
	// sending. Writers that can't do it (HTTP/2 allows it natively) just
	// keep their default behaviour.
	http.NewResponseController(w).EnableFullDuplex()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	// pending preserves input order; the writer drains one result
	// channel at a time while jobs run concurrently behind it.
	var clientDead atomic.Bool
	pending := make(chan chan any, s.batchLimit)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ch := range pending {
			v := <-ch
			if clientDead.Load() {
				// Keep draining so in-flight producers can finish, but
				// stop encoding to a dead connection.
				continue
			}
			if err := enc.Encode(v); err != nil {
				clientDead.Store(true)
				continue
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}()

	sem := make(chan struct{}, s.batchLimit)
	scanner := bufio.NewScanner(r.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), maxBatchLine)
	for scanner.Scan() {
		if clientDead.Load() {
			break
		}
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		ch := make(chan any, 1)
		pending <- ch
		sem <- struct{}{}
		go func(line []byte) {
			defer func() { <-sem }()
			ch <- handle(line)
		}(append([]byte(nil), line...))
	}
	close(pending)
	<-done
	if err := scanner.Err(); err != nil && !clientDead.Load() {
		// Too late for a status code, but not for a final NDJSON error
		// line telling the client why the batch ended early.
		msg := "batch aborted: " + err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("batch aborted: %v (one line exceeds the %d-byte batch line limit)",
				bufio.ErrTooLong, maxBatchLine)
		}
		enc.Encode(map[string]any{"ok": false, "error": msg})
	}
}

// handleBatch streams decomposition jobs: NDJSON apiRequest lines in,
// apiResponse lines out, input order preserved.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.streamNDJSON(w, r, func(line []byte) any {
		var a apiRequest
		if err := json.Unmarshal(line, &a); err != nil {
			return &apiResponse{Error: "invalid JSON: " + err.Error()}
		}
		return s.runJob(r.Context(), a, tenant)
	})
}

// queryAPIRequest is the JSON body of POST /query and one NDJSON line
// of POST /querybatch.
type queryAPIRequest struct {
	// Query is the conjunctive query: "R(x,y), S(y,z), T(z,x)."
	Query string `json:"query"`
	// Dataset names a server-resident dataset (PUT /data/{name}) to run
	// over instead of shipping the data inline: the query reads a
	// consistent snapshot whose relations carry maintained indexes, so
	// repeat queries skip parsing and index building. Mutually
	// exclusive with Database.
	Dataset string `json:"dataset,omitempty"`
	// AtVersion pins a dataset query to a specific version (0 =
	// current). Evicted or future versions are a clear error, never
	// wrong rows.
	AtVersion uint64 `json:"at_version,omitempty"`
	// Database is the inline compatibility path: the data shipped with
	// the request as rel blocks in the document text format:
	// "rel R(c1,c2)\n1 2\nend\n...". Relation names and arities must
	// match the query's atoms. Prefer Dataset for repeat queries —
	// inline databases are parsed per distinct text (cached and
	// single-flighted, but still shipped with every request).
	Database string `json:"database,omitempty"`
	// MaxWidth is the plan's width ceiling (0 = number of atoms, so a
	// plan always exists).
	MaxWidth int `json:"max_width,omitempty"`
	// MaxRows caps every intermediate and final relation; exceeding it
	// aborts the query. 0 = no cap.
	MaxRows int `json:"max_rows,omitempty"`
	// TimeoutMS bounds the whole query (planning + execution).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism caps the executor's concurrent workers for this query
	// (sibling subtrees and large final-join partitions); spawned
	// workers lease tokens from the server's shared budget. 0 or 1 =
	// serial. Rows are byte-identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
	// Workers caps solver parallelism for cold plans (0 = service
	// default).
	Workers int `json:"workers,omitempty"`
	// OmitRows asks for counts and plan metadata only — the answer rows
	// are computed but not serialised (cheap for large results).
	OmitRows bool `json:"omit_rows,omitempty"`
	// Aggregate, when non-empty, answers this aggregate head instead of
	// returning rows ("count", "sum(x)", "group x: count distinct(y)"
	// — see docs/QUERY_FORMAT.md). The aggregate is pushed down the join
	// tree, so max_rows then bounds the group count, not the answer
	// count: queries whose row form would exceed the budget still
	// aggregate cheaply.
	Aggregate string `json:"aggregate,omitempty"`
}

// queryAPIResponse is the JSON result of one query.
type queryAPIResponse struct {
	OK bool `json:"ok"`
	// Vars and Rows are the canonical answer: attributes in sorted
	// variable order, tuples sorted — a repeat of an identical query
	// returns byte-identical rows.
	Vars     []string `json:"vars,omitempty"`
	Rows     [][]int  `json:"rows,omitempty"`
	RowCount int      `json:"row_count"`
	// Width is the hypertree width of the executed plan; PlanCacheHit
	// reports it came from the store with zero solver runs.
	Width         int     `json:"width,omitempty"`
	PlanCacheHit  bool    `json:"plan_cache_hit"`
	PlanCoalesced bool    `json:"plan_coalesced,omitempty"`
	PlanMS        float64 `json:"plan_ms"`
	ExecMS        float64 `json:"exec_ms"`
	// Parallelism is the executor worker cap the query ran with; Exec
	// carries the executor's effort counters for this query.
	Parallelism int            `json:"parallelism,omitempty"`
	Exec        *execStatsWire `json:"exec,omitempty"`
	// DatasetVersion is the dataset version the query read (dataset
	// requests only): the snapshot that answered it.
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	// Aggregate is the answer of an aggregate request; rows are never
	// serialised for aggregates (RowCount stays 0).
	Aggregate *aggWire `json:"aggregate,omitempty"`
	Error     string   `json:"error,omitempty"`
	TimedOut  bool     `json:"timed_out,omitempty"`
	// RetryAfterMS carries the tenant wall's backoff hint on 429
	// rejections (batch lines have no headers, so the body carries it).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// err keeps the underlying error for status-code mapping.
	err error
}

// aggWire is the JSON shape of an aggregate answer: the canonical spec
// echoed back, group columns/rows in sorted order, and the scalar value
// when the spec has no GROUP BY.
type aggWire struct {
	Spec       string   `json:"spec"`
	GroupVars  []string `json:"group_vars,omitempty"`
	Groups     [][]int  `json:"groups,omitempty"`
	Values     []int64  `json:"values"`
	GroupCount int      `json:"group_count"`
	// Value is the scalar answer of a no-GROUP-BY aggregate; absent for
	// grouped aggregates and for MIN/MAX over an empty answer set.
	Value *int64 `json:"value,omitempty"`
}

// execStatsWire is the JSON shape of one query's executor counters.
type execStatsWire struct {
	IndexBuilds   int64 `json:"index_builds"`
	IndexReuses   int64 `json:"index_reuses"`
	IndexProbes   int64 `json:"index_probes"`
	Semijoins     int64 `json:"semijoins"`
	Joins         int64 `json:"joins"`
	ParallelTasks int64 `json:"parallel_tasks"`
	InlineTasks   int64 `json:"inline_tasks"`
	MaxWorkers    int64 `json:"max_workers"`
}

// runQuery answers one parsed query request and shapes the result for
// the wire.
func (s *server) runQuery(ctx context.Context, a queryAPIRequest, tenant string) *queryAPIResponse {
	if strings.TrimSpace(a.Query) == "" {
		return &queryAPIResponse{Error: "missing \"query\"", err: errBadRequest}
	}
	if a.TimeoutMS < 0 {
		return &queryAPIResponse{Error: "\"timeout_ms\" must be >= 0", err: errBadRequest}
	}
	if a.Parallelism < 0 {
		return &queryAPIResponse{Error: "\"parallelism\" must be >= 0", err: errBadRequest}
	}
	q, err := htd.ParseCQ(a.Query)
	if err != nil {
		return &queryAPIResponse{Error: "parse query: " + err.Error(), err: errBadRequest}
	}
	var db htd.Database
	if a.Dataset != "" {
		if a.Database != "" {
			return &queryAPIResponse{Error: "set exactly one of \"dataset\" or \"database\"", err: errBadRequest}
		}
		// db stays nil: the planner resolves the named dataset to a
		// pinned snapshot behind the tenant wall.
	} else {
		// Inline path: parse through the registry's content-addressed
		// cache — repeat uploads of the same text skip parsing, and
		// concurrent identical uploads coalesce onto one parse.
		db, err = s.svc.Datasets().ParseCache().Parse(ctx, a.Database)
		if err != nil {
			return &queryAPIResponse{Error: "parse database: " + err.Error(), err: errBadRequest}
		}
	}
	var spec *htd.AggregateSpec
	if strings.TrimSpace(a.Aggregate) != "" {
		parsed, err := htd.ParseAggregate(a.Aggregate)
		if err != nil {
			return &queryAPIResponse{Error: "parse aggregate: " + err.Error(), err: errBadRequest}
		}
		spec = &parsed
	}
	res, err := s.planner.Eval(ctx, htd.QueryRequest{
		Query:       q,
		Dataset:     a.Dataset,
		AtVersion:   a.AtVersion,
		DB:          db,
		MaxWidth:    a.MaxWidth,
		MaxRows:     a.MaxRows,
		Timeout:     time.Duration(a.TimeoutMS) * time.Millisecond,
		Parallelism: a.Parallelism,
		Workers:     a.Workers,
		Aggregate:   spec,
		Tenant:      tenant,
	})
	if err != nil {
		resp := &queryAPIResponse{Error: err.Error(), err: err}
		resp.TimedOut = errors.Is(err, context.DeadlineExceeded)
		resp.RetryAfterMS = retryAfterMS(err)
		switch {
		case errors.Is(err, htd.ErrNoQueryPlan),
			errors.Is(err, htd.ErrRowBudget),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled),
			errors.Is(err, htd.ErrTenantLimited),
			errors.Is(err, htd.ErrOverloaded),
			errors.Is(err, htd.ErrServiceClosed),
			errors.Is(err, htd.ErrDatasetNotFound),
			errors.Is(err, htd.ErrDatasetVersionGone),
			errors.Is(err, htd.ErrDatasetFutureVersion):
			// Definitive or operational failures keep their own mapping.
		default:
			// Anything else is a malformed query/database combination
			// (unknown relation, arity mismatch): the client's fault.
			resp.err = errBadRequest
		}
		return resp
	}
	resp := &queryAPIResponse{
		OK:             true,
		Width:          res.Width,
		PlanCacheHit:   res.PlanCacheHit,
		PlanCoalesced:  res.PlanCoalesced,
		PlanMS:         float64(res.PlanElapsed) / float64(time.Millisecond),
		ExecMS:         float64(res.ExecElapsed) / float64(time.Millisecond),
		Parallelism:    res.Parallelism,
		DatasetVersion: res.DatasetVersion,
		Exec: &execStatsWire{
			IndexBuilds:   res.Exec.IndexBuilds,
			IndexReuses:   res.Exec.IndexReuses,
			IndexProbes:   res.Exec.IndexProbes,
			Semijoins:     res.Exec.Semijoins,
			Joins:         res.Exec.Joins,
			ParallelTasks: res.Exec.ParallelTasks,
			InlineTasks:   res.Exec.InlineTasks,
			MaxWorkers:    res.Exec.MaxWorkers,
		},
	}
	if res.Agg != nil {
		resp.Aggregate = &aggWire{
			Spec:       htd.FormatAggregate(*spec),
			GroupVars:  res.Agg.GroupVars,
			Groups:     res.Agg.Groups,
			Values:     res.Agg.Values,
			GroupCount: len(res.Agg.Groups),
		}
		if v, ok := res.Agg.Value(); ok {
			resp.Aggregate.Value = &v
		}
		return resp
	}
	resp.RowCount = res.Rows.Size()
	if !a.OmitRows {
		resp.Vars = res.Rows.Attrs
		resp.Rows = res.Rows.Rows()
	}
	return resp
}

func (s *server) queryStatus(resp *queryAPIResponse) int {
	switch {
	case errors.Is(resp.err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(resp.err, htd.ErrDatasetNotFound):
		return http.StatusNotFound
	case errors.Is(resp.err, htd.ErrDatasetVersionGone):
		// 410, not 404: the version existed and is gone for good —
		// clients should re-resolve to the current version, not retry.
		return http.StatusGone
	case errors.Is(resp.err, htd.ErrDatasetFutureVersion):
		return http.StatusBadRequest
	case errors.Is(resp.err, htd.ErrTenantLimited):
		return http.StatusTooManyRequests
	case errors.Is(resp.err, htd.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(resp.err, htd.ErrServiceClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusOK
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var a queryAPIRequest
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		httpError(w, bodyErrStatus(err), "invalid JSON: "+err.Error())
		return
	}
	resp := s.runQuery(r.Context(), a, tenant)
	if errors.Is(resp.err, htd.ErrTenantLimited) {
		setRetryAfter(w, resp.err)
	}
	writeJSON(w, s.queryStatus(resp), resp)
}

// handleQueryBatch streams query jobs: NDJSON queryAPIRequest lines in,
// queryAPIResponse lines out, input order preserved. Duplicate queries
// inside one batch plan once: the first line's solve is coalesced with
// or cached for the rest.
func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.streamNDJSON(w, r, func(line []byte) any {
		var a queryAPIRequest
		if err := json.Unmarshal(line, &a); err != nil {
			return &queryAPIResponse{Error: "invalid JSON: " + err.Error()}
		}
		return s.runQuery(r.Context(), a, tenant)
	})
}

// cacheFileRequest is the JSON body of /cache/save and /cache/load; an
// empty path falls back to the server's -snapshot flag.
type cacheFileRequest struct {
	Path string `json:"path,omitempty"`
}

// snapshotTarget resolves the snapshot file for a save/load request.
// Per-request paths are confined to the directory of the -snapshot
// flag: these are operational endpoints, and an HTTP body must never be
// able to read or overwrite arbitrary files the server can reach. The
// body is capped at maxBody (a path request has no business being
// megabytes long); overflow surfaces as *http.MaxBytesError so callers
// map it to 413.
func (s *server) snapshotTarget(w http.ResponseWriter, r *http.Request) (string, error) {
	var req cacheFileRequest
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		// An empty body is fine; anything present must be valid JSON.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
			return "", fmt.Errorf("invalid JSON: %w", err)
		}
	}
	if s.snapshotPath == "" {
		return "", errors.New("snapshot endpoints disabled: start htdserve with -snapshot")
	}
	if req.Path == "" {
		return s.snapshotPath, nil
	}
	dir, err := filepath.Abs(filepath.Dir(s.snapshotPath))
	if err != nil {
		return "", err
	}
	path, err := filepath.Abs(req.Path)
	if err != nil {
		return "", fmt.Errorf("invalid path: %w", err)
	}
	if filepath.Dir(path) != dir {
		return "", fmt.Errorf("path must stay in the -snapshot directory %s", dir)
	}
	return path, nil
}

// handleCache lists the store: backend counters plus up to ?max cached
// entries (default 100) with bounds, witness width and memo summaries.
func (s *server) handleCache(w http.ResponseWriter, r *http.Request) {
	max := 100
	if q := r.URL.Query().Get("max"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid max")
			return
		}
		max = n
	}
	st := s.svc.Store()
	entries := []htd.StoreEntryInfo{}
	if max > 0 {
		// max=0 means counters only; Backend.Info's 0 means unbounded,
		// which an HTTP query must never request implicitly.
		entries = st.Info(max)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"store":   st.Stats(),
		"entries": entries,
	})
}

func (s *server) handleCacheSave(w http.ResponseWriter, r *http.Request) {
	path, err := s.snapshotTarget(w, r)
	if err != nil {
		httpError(w, bodyErrStatus(err), err.Error())
		return
	}
	n, err := s.saveSnapshot(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"saved": n, "path": path})
}

func (s *server) handleCacheLoad(w http.ResponseWriter, r *http.Request) {
	path, err := s.snapshotTarget(w, r)
	if err != nil {
		httpError(w, bodyErrStatus(err), err.Error())
		return
	}
	snap, err := htd.LoadSnapshotFile(path)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	n, err := s.svc.Store().Import(snap)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"restored": n, "path": path})
}

func (s *server) handleCachePurge(w http.ResponseWriter, r *http.Request) {
	before := s.svc.Store().Stats().Entries
	s.svc.Store().Purge()
	writeJSON(w, http.StatusOK, map[string]any{"purged": before})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// statsResponse flattens the service counters at the top level (the
// shape existing clients read) and nests the query-pipeline counters
// under "query".
type statsResponse struct {
	htd.ServiceStats
	Query htd.QueryStats `json:"query"`
	// Datasets and ParseCache cover the data half: registry totals and
	// the inline-database parse cache's hit/miss/coalesce counters.
	Datasets   htd.DatasetStats           `json:"datasets"`
	ParseCache htd.DatasetParseCacheStats `json:"parse_cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		ServiceStats: s.svc.Stats(),
		Query:        s.planner.Stats(),
		Datasets:     s.svc.Datasets().Stats(),
		ParseCache:   s.svc.Datasets().ParseCache().Stats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
