package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	htd "repro"
)

// TestPprofMuxServesEndpoints: the dedicated profiling mux answers the
// standard pprof surface.
func TestPprofMuxServesEndpoints(t *testing.T) {
	srv := httptest.NewServer(pprofMux())
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap",
		"/debug/pprof/allocs",
		"/debug/pprof/goroutine",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestServingHandlerNeverRoutesPprof: the serving handler must 404 the
// profiling paths regardless of flags — profiling is only reachable
// through the separate -pprof-addr listener.
func TestServingHandlerNeverRoutesPprof(t *testing.T) {
	svc := htd.NewService(htd.ServiceConfig{})
	defer svc.Close()
	srv := httptest.NewServer(newHandler(svc, 4, "", 0))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d on the serving handler, want 404", path, resp.StatusCode)
		}
	}
	// Sanity: the same handler does serve its own endpoints.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("/healthz content type %q", resp.Header.Get("Content-Type"))
	}
}
