package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	htd "repro"
)

// doData sends one /data request with an optional tenant header and
// returns the response with its decoded JSON body.
func doData(t *testing.T, method, url, tenant, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
	}
	return resp, out
}

// postQueryTenant is postQuery with an X-Tenant header.
func postQueryTenant(t *testing.T, url, tenant, body string) (*http.Response, queryAPIResponse, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out queryAPIResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode query response %q: %v", raw, err)
	}
	return resp, out, raw
}

// triangleData is the triangle fixture's database as an upload body.
const triangleData = "rel R(c1,c2)\n1 2\n1 3\n4 2\nend\n" +
	"rel S(c1,c2)\n2 5\n3 6\n2 7\nend\n" +
	"rel T(c1,c2)\n5 1\n6 4\n7 4\nend\n"

// TestServeQueryDataset: the dataset-reference query flow — upload
// once, query by name (byte-identical to the inline answer), mutate,
// re-query at the new and at the pinned old version.
func TestServeQueryDataset(t *testing.T) {
	ts, _ := newTestServer(t)

	// Upload.
	resp, up := doData(t, http.MethodPut, ts.URL+"/data/tri", "", triangleData)
	if resp.StatusCode != http.StatusOK || up["version"].(float64) != 1 {
		t.Fatalf("put: status=%d %v", resp.StatusCode, up)
	}

	// The dataset answer must be byte-identical to the inline answer.
	_, inline, rawInline := postQuery(t, ts.URL+"/query", triangleQueryBody)
	if !inline.OK {
		t.Fatalf("inline query: %+v", inline)
	}
	dsBody := `{"query":"R(x,y), S(y,z), T(z,x).","dataset":"tri"}`
	resp, ds, rawDS := postQuery(t, ts.URL+"/query", dsBody)
	if resp.StatusCode != http.StatusOK || !ds.OK {
		t.Fatalf("dataset query: status=%d %+v", resp.StatusCode, ds)
	}
	if ds.DatasetVersion != 1 {
		t.Fatalf("dataset_version = %d, want 1", ds.DatasetVersion)
	}
	if got, want := rawRows(t, rawDS), rawRows(t, rawInline); !bytes.Equal(got, want) {
		t.Fatalf("dataset rows differ from inline rows:\n%s\nvs\n%s", got, want)
	}

	// A repeat query reuses the snapshot's maintained indexes: no
	// builds, only reuses — the unchanged-data fast path.
	_, again, _ := postQuery(t, ts.URL+"/query", dsBody)
	if !again.OK || again.Exec == nil || again.Exec.IndexReuses == 0 || again.Exec.IndexBuilds != 0 {
		t.Fatalf("repeat dataset query should only reuse indexes: %+v", again.Exec)
	}

	// Mutate: insert R(4,3), delete S(2,7) — one batch, one version.
	mut := `{"op":"insert","rel":"R","rows":[[4,3]]}` + "\n" +
		`{"op":"delete","rel":"S","rows":[[2,7]]}` + "\n"
	resp, mres := doData(t, http.MethodPost, ts.URL+"/data/tri/mutate", "", mut)
	if resp.StatusCode != http.StatusOK || mres["version"].(float64) != 2 {
		t.Fatalf("mutate: status=%d %v", resp.StatusCode, mres)
	}
	if mres["inserted"].(float64) != 1 || mres["deleted"].(float64) != 1 {
		t.Fatalf("mutate counts: %v", mres)
	}

	// The incremental answer must match an inline evaluation over the
	// mutated state rebuilt from scratch.
	mutatedInline := `{"query":"R(x,y), S(y,z), T(z,x).",` +
		`"database":"rel R(c1,c2)\n1 2\n1 3\n4 2\n4 3\nend\nrel S(c1,c2)\n2 5\n3 6\nend\nrel T(c1,c2)\n5 1\n6 4\n7 4\nend\n"}`
	_, _, rawWant := postQuery(t, ts.URL+"/query", mutatedInline)
	resp, ds2, rawGot := postQuery(t, ts.URL+"/query", dsBody)
	if resp.StatusCode != http.StatusOK || !ds2.OK || ds2.DatasetVersion != 2 {
		t.Fatalf("post-mutation query: status=%d %+v", resp.StatusCode, ds2)
	}
	if got, want := rawRows(t, rawGot), rawRows(t, rawWant); !bytes.Equal(got, want) {
		t.Fatalf("incremental rows differ from from-scratch rows:\n%s\nvs\n%s", got, want)
	}

	// Pinning version 1 still answers with the pre-mutation rows.
	pinBody := `{"query":"R(x,y), S(y,z), T(z,x).","dataset":"tri","at_version":1}`
	resp, pin, rawPin := postQuery(t, ts.URL+"/query", pinBody)
	if resp.StatusCode != http.StatusOK || !pin.OK || pin.DatasetVersion != 1 {
		t.Fatalf("pinned query: status=%d %+v", resp.StatusCode, pin)
	}
	if got, want := rawRows(t, rawPin), rawRows(t, rawInline); !bytes.Equal(got, want) {
		t.Fatalf("pinned rows differ from the version-1 answer:\n%s\nvs\n%s", got, want)
	}

	// Clear errors, never wrong rows: unknown name is 404, a future
	// version 400, both dataset and database 400.
	for _, bad := range []struct {
		body   string
		status int
	}{
		{`{"query":"R(x,y), S(y,z), T(z,x).","dataset":"nope"}`, http.StatusNotFound},
		{`{"query":"R(x,y), S(y,z), T(z,x).","dataset":"tri","at_version":99}`, http.StatusBadRequest},
		{`{"query":"R(x,y).","database":"rel R(a,b)\n1 2\nend\n","dataset":"tri"}`, http.StatusBadRequest},
	} {
		resp, _, raw := postQuery(t, ts.URL+"/query", bad.body)
		if resp.StatusCode != bad.status {
			t.Fatalf("body %q: status %d, want %d (%s)", bad.body, resp.StatusCode, bad.status, raw)
		}
	}

	// Replacing the dataset evicts all pinnable versions: the old pin
	// is 410 Gone, not silently answered from different data.
	if resp, up := doData(t, http.MethodPut, ts.URL+"/data/tri", "", triangleData); resp.StatusCode != http.StatusOK || up["version"].(float64) != 3 {
		t.Fatalf("replacement put: status=%d %v", resp.StatusCode, up)
	}
	resp, _, raw := postQuery(t, ts.URL+"/query", `{"query":"R(x,y), S(y,z), T(z,x).","dataset":"tri","at_version":2}`)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pin to replaced version: status %d, want 410 (%s)", resp.StatusCode, raw)
	}
}

// TestServeDataLifecycle: upload, metadata, list, drop, and the tenant
// wall around names — tenants see only their own datasets.
func TestServeDataLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, up := doData(t, http.MethodPut, ts.URL+"/data/mine", "alice", triangleData)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status=%d %v", resp.StatusCode, up)
	}
	if up["relations"].(float64) != 3 || up["tuples"].(float64) != 9 {
		t.Fatalf("put summary: %v", up)
	}

	// Metadata for the owner; 404 for everyone else.
	resp, info := doData(t, http.MethodGet, ts.URL+"/data/mine", "alice", "")
	if resp.StatusCode != http.StatusOK || info["version"].(float64) != 1 || info["tuples"].(float64) != 9 {
		t.Fatalf("get: status=%d %v", resp.StatusCode, info)
	}
	if resp, _ := doData(t, http.MethodGet, ts.URL+"/data/mine", "bob", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant get: status=%d, want 404", resp.StatusCode)
	}
	dsBody := `{"query":"R(x,y), S(y,z), T(z,x).","dataset":"mine"}`
	if resp, _, _ := postQueryTenant(t, ts.URL+"/query", "bob", dsBody); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant query: status=%d, want 404", resp.StatusCode)
	}
	if resp, _, _ := postQueryTenant(t, ts.URL+"/query", "alice", dsBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner query: status=%d, want 200", resp.StatusCode)
	}

	// List is tenant-scoped.
	_, list := doData(t, http.MethodGet, ts.URL+"/data", "alice", "")
	if n := len(list["datasets"].([]any)); n != 1 {
		t.Fatalf("alice sees %d datasets, want 1", n)
	}
	_, empty := doData(t, http.MethodGet, ts.URL+"/data", "bob", "")
	if ds := empty["datasets"]; ds != nil && len(ds.([]any)) != 0 {
		t.Fatalf("bob sees %v, want none", ds)
	}

	// A mutation against a missing dataset is 404; a malformed batch is
	// 400 and leaves the version untouched.
	if resp, _ := doData(t, http.MethodPost, ts.URL+"/data/mine/mutate", "bob",
		`{"op":"insert","rel":"R","rows":[[9,9]]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant mutate: status=%d, want 404", resp.StatusCode)
	}
	for _, bad := range []string{
		`{"op":"upsert","rel":"R","rows":[[1,1]]}`,
		`{"op":"insert","rel":"Nope","rows":[[1,1]]}`,
		`{"op":"insert","rel":"R","rows":[[1]]}`,
		`not json`,
	} {
		if resp, _ := doData(t, http.MethodPost, ts.URL+"/data/mine/mutate", "alice", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mutation %q: status=%d, want 400", bad, resp.StatusCode)
		}
	}
	if _, info := doData(t, http.MethodGet, ts.URL+"/data/mine", "alice", ""); info["version"].(float64) != 1 {
		t.Fatalf("failed mutations must not advance the version: %v", info)
	}

	// Bad uploads: malformed text and oversized names are 400s.
	if resp, _ := doData(t, http.MethodPut, ts.URL+"/data/bad", "alice", "rel R(\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload: status=%d, want 400", resp.StatusCode)
	}
	if resp, _ := doData(t, http.MethodPut, ts.URL+"/data/"+strings.Repeat("x", 200), "alice", triangleData); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized name: status=%d, want 400", resp.StatusCode)
	}

	// /stats surfaces the dataset registry and parse-cache counters
	// (read before the drop below — the registry aggregates over live
	// datasets).
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Datasets.Datasets != 1 || st.Datasets.Queries == 0 || st.Query.DatasetQueries == 0 {
		t.Fatalf("dataset counters not surfaced in /stats: %+v %+v", st.Datasets, st.Query)
	}

	// Drop, then 404.
	if resp, _ := doData(t, http.MethodDelete, ts.URL+"/data/mine", "bob", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant delete: status=%d, want 404", resp.StatusCode)
	}
	if resp, _ := doData(t, http.MethodDelete, ts.URL+"/data/mine", "alice", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status=%d, want 200", resp.StatusCode)
	}
	if resp, _ := doData(t, http.MethodGet, ts.URL+"/data/mine", "alice", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status=%d, want 404", resp.StatusCode)
	}
}

// TestServeQueryInlineParseCache: repeat inline uploads of the same
// database text hit the content-addressed parse cache.
func TestServeQueryInlineParseCache(t *testing.T) {
	ts, svc := newTestServer(t)

	for i := 0; i < 3; i++ {
		if resp, out, _ := postQuery(t, ts.URL+"/query", triangleQueryBody); resp.StatusCode != http.StatusOK || !out.OK {
			t.Fatalf("query %d: status=%d %+v", i, resp.StatusCode, out)
		}
	}
	st := svc.Datasets().ParseCache().Stats()
	if st.Misses != 1 || st.Hits < 2 {
		t.Fatalf("parse cache: %+v, want 1 miss and >= 2 hits", st)
	}
	_ = htd.DatasetParseCacheStats(st)
}
