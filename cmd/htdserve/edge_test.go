package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	htd "repro"
)

// newEdgeServer builds a test server with full control over the service
// config (tenant wall) and the handler's body cap.
func newEdgeServer(t *testing.T, cfg htd.ServiceConfig, snapshotPath string, maxBody int64) (*httptest.Server, *htd.Service) {
	t.Helper()
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	svc := htd.NewService(cfg)
	ts := httptest.NewServer(newHandler(svc, 4, snapshotPath, maxBody))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func postRaw(t *testing.T, url, body string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestOversizedBody413 pins the MaxBytesReader satellite: a body over
// the -max-body cap must answer 413 (not 400) on every single-shot
// endpoint that reads a body, while an in-budget malformed body keeps
// its 400.
func TestOversizedBody413(t *testing.T) {
	snapshotPath := filepath.Join(t.TempDir(), "snap.json")
	ts, _ := newEdgeServer(t, htd.ServiceConfig{TokenBudget: 2}, snapshotPath, 512)

	huge := `{"hypergraph":"` + strings.Repeat("a", 2048) + `","k":1}`
	for _, ep := range []string{"/decompose", "/query", "/cache/load", "/cache/save"} {
		resp := postRaw(t, ts.URL+ep, huge, nil)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status %d, want 413", ep, resp.StatusCode)
		}
	}

	// A small but invalid body is still the client's fault, not a size
	// problem.
	resp := postRaw(t, ts.URL+"/decompose", "{not json", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed small body: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchLineTooLongEmitsErrorLine pins the scanner-overflow
// satellite: a /batch line beyond the 16 MiB line cap must not end the
// stream silently — the last NDJSON object names bufio.ErrTooLong.
func TestBatchLineTooLongEmitsErrorLine(t *testing.T) {
	ts, _ := newEdgeServer(t, htd.ServiceConfig{TokenBudget: 2}, "", 0)

	body := `{"hypergraph":"r1(x,y).","k":1}` + "\n" +
		strings.Repeat("x", maxBatchLine+16) + "\n"
	resp := postRaw(t, ts.URL+"/batch", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 (stream started)", resp.StatusCode)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d stream lines, want 2 (result + final error)", len(lines))
	}
	if ok, _ := lines[0]["ok"].(bool); !ok {
		t.Fatalf("first line not a successful result: %v", lines[0])
	}
	last := lines[len(lines)-1]
	if ok, _ := last["ok"].(bool); ok {
		t.Fatalf("final line claims ok: %v", last)
	}
	msg, _ := last["error"].(string)
	if !strings.Contains(msg, bufio.ErrTooLong.Error()) {
		t.Fatalf("final error %q does not name bufio.ErrTooLong", msg)
	}
}

// failingWriter simulates a client that vanished: every write fails.
type failingWriter struct {
	header http.Header
	writes atomic.Int64
}

func (w *failingWriter) Header() http.Header { return w.header }
func (w *failingWriter) WriteHeader(int)     {}
func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes.Add(1)
	return 0, errors.New("client gone")
}

// TestStreamStopsAfterWriteFailure pins the dead-client satellite at
// the streaming core: once a response write fails, the scanner must
// stop accepting lines, so a disconnected batch client cannot make the
// server chew through the rest of a large batch.
func TestStreamStopsAfterWriteFailure(t *testing.T) {
	s := &server{batchLimit: 2}

	const total = 200
	var body strings.Builder
	for i := 0; i < total; i++ {
		body.WriteString(fmt.Sprintf("{\"n\":%d}\n", i))
	}
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body.String()))

	var handled atomic.Int64
	w := &failingWriter{header: make(http.Header)}
	s.streamNDJSON(w, req, func(line []byte) any {
		handled.Add(1)
		time.Sleep(time.Millisecond)
		return map[string]bool{"ok": true}
	})

	// The first failed write marks the client dead; only lines already
	// in flight (≈ batchLimit + the pending buffer) may still run.
	if got := handled.Load(); got >= total/2 {
		t.Fatalf("handled %d of %d lines after the client died, want far fewer", got, total)
	}
	if w.writes.Load() == 0 {
		t.Fatal("writer never saw a write")
	}
}

// TestBatchClientDisconnectStopsSubmission is the end-to-end version:
// a real client opens /batch, receives one result, disconnects — job
// submission must stop and the handler's goroutines must drain.
func TestBatchClientDisconnectStopsSubmission(t *testing.T) {
	ts, svc := newEdgeServer(t, htd.ServiceConfig{TokenBudget: 2}, "", 0)
	baseline := runtime.NumGoroutine()

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, ts.URL+"/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the first line from a goroutine: Do only returns once the
	// server has flushed the first response line, which needs a request
	// line first.
	go io.WriteString(pw, `{"hypergraph":"r1(x,y), r2(y,z).","k":1}`+"\n")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 1)
	if _, err := resp.Body.Read(line); err != nil {
		t.Fatalf("read first response byte: %v", err)
	}

	// Disconnect mid-stream, with the server still waiting for lines.
	resp.Body.Close()
	pw.Close()

	// Submission must settle: once the disconnect propagates, no new
	// jobs may be submitted even if the client had more lines queued.
	deadline := time.Now().Add(5 * time.Second)
	var last int64 = -1
	for time.Now().Before(deadline) {
		cur := svc.Stats().Submitted
		if cur == last {
			break
		}
		last = cur
		time.Sleep(50 * time.Millisecond)
	}
	if last > 1 {
		t.Fatalf("Submitted = %d after disconnect, want at most the 1 job sent", last)
	}

	// The handler goroutines (scanner, writer, workers) must all exit.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestTenant429WithRetryAfter pins the tenant wall at the HTTP edge: a
// tenant over its rate budget gets 429 with a Retry-After header and a
// retry_after_ms body hint, on /decompose and /query alike, while other
// tenants keep flowing.
func TestTenant429WithRetryAfter(t *testing.T) {
	ts, _ := newEdgeServer(t, htd.ServiceConfig{
		TokenBudget: 2,
		Tenants:     htd.TenantConfig{Rate: 0.001, Burst: 1},
	}, "", 0)

	job := `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`
	hdr := map[string]string{"X-Tenant": "greedy"}

	if resp := postRaw(t, ts.URL+"/decompose", job, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("first decompose: status %d, want 200", resp.StatusCode)
	}

	resp := postRaw(t, ts.URL+"/decompose", job, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second decompose: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive number of seconds", ra)
	}
	var out apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RetryAfterMS < 1 {
		t.Fatalf("retry_after_ms = %d, want >= 1", out.RetryAfterMS)
	}

	// The query path admits through the same wall.
	resp = postRaw(t, ts.URL+"/query", triangleQueryBody, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query for exhausted tenant: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("query 429 is missing the Retry-After header")
	}

	// A polite tenant is untouched by the greedy one's exhaustion.
	if resp := postRaw(t, ts.URL+"/decompose", job, map[string]string{"X-Tenant": "polite"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d, want 200", resp.StatusCode)
	}
}

// TestStatsReportsTenants pins the observability satellite: /stats must
// carry a per-tenant section with admission counters and latency
// quantiles.
func TestStatsReportsTenants(t *testing.T) {
	ts, _ := newEdgeServer(t, htd.ServiceConfig{TokenBudget: 2}, "", 0)

	job := `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`
	for _, tenantName := range []string{"alice", "alice", "bob"} {
		if resp := postRaw(t, ts.URL+"/decompose", job, map[string]string{"X-Tenant": tenantName}); resp.StatusCode != http.StatusOK {
			t.Fatalf("decompose as %s: status %d", tenantName, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Tenants map[string]htd.TenantStats `json:"Tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	alice, ok := stats.Tenants["alice"]
	if !ok {
		t.Fatalf("stats missing tenant alice: %v", stats.Tenants)
	}
	if alice.Admitted != 2 || alice.Completed != 2 {
		t.Fatalf("alice = %+v, want Admitted 2, Completed 2", alice)
	}
	if alice.P99Millis < alice.P50Millis || alice.P50Millis < 0 {
		t.Fatalf("alice latency quantiles implausible: p50 %v, p99 %v", alice.P50Millis, alice.P99Millis)
	}
	if bob := stats.Tenants["bob"]; bob.Admitted != 1 {
		t.Fatalf("bob = %+v, want Admitted 1", bob)
	}
}

// TestTenantHeaderTooLong pins the header bound: X-Tenant ids become
// stats map keys, so an oversized header is rejected up front.
func TestTenantHeaderTooLong(t *testing.T) {
	ts, _ := newEdgeServer(t, htd.ServiceConfig{TokenBudget: 2}, "", 0)
	hdr := map[string]string{"X-Tenant": strings.Repeat("t", maxTenantIDLen+1)}
	for _, ep := range []string{"/decompose", "/batch", "/query", "/querybatch"} {
		if resp := postRaw(t, ts.URL+ep, `{"hypergraph":"r1(x,y).","k":1}`, hdr); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with oversized X-Tenant: status %d, want 400", ep, resp.StatusCode)
		}
	}
}
