package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	htd "repro"
)

// The /data endpoints manage named, server-resident, versioned
// datasets — upload once, query many times by name, mutate with tuple
// deltas:
//
//	PUT    /data/{name}         upload (create or replace) from rel blocks
//	GET    /data/{name}         metadata: version, relations, tuple counts
//	DELETE /data/{name}         drop (in-flight queries finish unaffected)
//	POST   /data/{name}/mutate  NDJSON delta batch -> one version bump
//	GET    /data                list the caller's datasets
//
// All endpoints are tenant-walled: datasets are namespaced by the
// X-Tenant header, and uploads/mutations pass the same per-tenant
// admission wall queries do — a tenant hammering writes is rejected
// with 429 + Retry-After before it can touch shared state.

// datasetStatus maps a dataset-layer error to its HTTP status.
func datasetStatus(err error) int {
	switch {
	case errors.Is(err, htd.ErrDatasetNotFound):
		return http.StatusNotFound
	case errors.Is(err, htd.ErrDatasetVersionGone):
		return http.StatusGone
	case errors.Is(err, htd.ErrDatasetLimit):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, htd.ErrTenantLimited):
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// admitWrite passes one dataset write (upload or mutation) through the
// per-tenant wall. On success the returned release must be called with
// whether the write failed; on rejection the 429/error has already
// been written.
func (s *server) admitWrite(w http.ResponseWriter, r *http.Request, tenant string) (release func(failed bool), ok bool) {
	lease, err := s.svc.Tenants().Admit(r.Context(), tenant)
	if err != nil {
		if errors.Is(err, htd.ErrTenantLimited) {
			setRetryAfter(w, err)
			writeJSON(w, http.StatusTooManyRequests,
				map[string]any{"error": err.Error(), "retry_after_ms": retryAfterMS(err)})
			return nil, false
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return nil, false
	}
	return lease.Done, true
}

// handleDataPut creates or replaces a named dataset from rel blocks
// (the same text format the inline /query "database" field uses). A
// replacement continues the version counter and evicts every prior
// pinnable version.
func (s *server) handleDataPut(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admitWrite(w, r, tenant)
	if !ok {
		return
	}
	failed := true
	defer func() { release(failed) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, bodyErrStatus(err), "read body: "+err.Error())
		return
	}
	db, err := htd.ParseRelations(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse database: "+err.Error())
		return
	}
	version, err := s.svc.Datasets().Put(tenant, r.PathValue("name"), db)
	if err != nil {
		httpError(w, datasetStatus(err), err.Error())
		return
	}
	failed = false
	tuples := 0
	for _, rel := range db {
		tuples += rel.Size()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":      r.PathValue("name"),
		"version":   version,
		"relations": len(db),
		"tuples":    tuples,
	})
}

func (s *server) handleDataGet(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, ok := s.svc.Datasets().Get(tenant, r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, htd.ErrDatasetNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, d.Info())
}

func (s *server) handleDataDelete(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.svc.Datasets().Drop(tenant, r.PathValue("name")) {
		httpError(w, http.StatusNotFound, htd.ErrDatasetNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": r.PathValue("name")})
}

func (s *server) handleDataList(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"datasets": s.svc.Datasets().List(tenant),
	})
}

// handleDataMutate applies one NDJSON delta batch — lines of
// {"op":"insert"|"delete","rel":"R","rows":[[..],..]} — as a single
// atomic version bump. The whole batch is validated before any of it
// applies: a bad line leaves the dataset untouched. In-flight queries
// keep reading the snapshot they resolved; only queries arriving after
// the commit see the new version.
func (s *server) handleDataMutate(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admitWrite(w, r, tenant)
	if !ok {
		return
	}
	failed := true
	defer func() { release(failed) }()

	d, ok := s.svc.Datasets().Get(tenant, r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, htd.ErrDatasetNotFound.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var batch []htd.DatasetMutation
	dec := json.NewDecoder(r.Body)
	for {
		var m htd.DatasetMutation
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			httpError(w, bodyErrStatus(err), "invalid mutation line: "+err.Error())
			return
		}
		batch = append(batch, m)
	}
	res, err := d.Mutate(batch)
	if err != nil {
		httpError(w, datasetStatus(err), err.Error())
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, res)
}
