// Command htdserve serves hypertree decompositions over HTTP, backed by
// htd.Service: a shared worker-token budget, admission control with
// per-job timeouts, and a unified sharded cross-request store (width
// bounds, cached witness decompositions, negative-memo tables) with
// request coalescing and snapshot persistence.
//
// Usage:
//
//	htdserve -addr :8080 [-budget 8] [-max-concurrent 8] [-timeout 30s]
//	         [-store-dir cache.d] [-store-fsync 100ms]
//	         [-snapshot cache.json] [-store-shards 16]
//	         [-tenant-rate 50] [-tenant-inflight 4] [-fair-share]
//	         [-pprof-addr localhost:6060]
//
// Profiling: -pprof-addr exposes the standard net/http/pprof endpoints
// (/debug/pprof/...) on a separate listener — off by default, and never
// routed by the serving handler, so heap and CPU profiles are only
// reachable where the operator points them (typically localhost).
//
// Multi-tenant admission: every request may carry an X-Tenant header
// (absent = the default tenant). The -tenant-* flags arm a per-tenant
// load wall in front of the global admission control — token-bucket
// rate limiting, an in-flight cap with a bounded FIFO queue — and
// -fair-share lets unused per-tenant budget flow to a shared spare pool
// so one tenant on an idle box still gets full throughput. Over-limit
// calls get 429 with a Retry-After header; /stats reports per-tenant
// counters and p50/p99 latency.
//
// Endpoints:
//
//	POST /decompose    one job; JSON body {"hypergraph":"r1(x,y), ...","k":2}
//	POST /batch        NDJSON job lines in, NDJSON results out (streamed,
//	                   input order)
//	POST /query        answer a conjunctive query: over a named dataset
//	                   ({"query":..., "dataset":"name"}) or inline data
//	                   ({"query":..., "database":"rel R(a,b)\n1 2\nend"})
//	POST /querybatch   NDJSON query lines in, NDJSON answers out
//	PUT  /data/{name}  upload (create or replace) a named dataset
//	GET  /data/{name}  dataset metadata: version, relations, tuples
//	DEL  /data/{name}  drop a dataset
//	POST /data/{name}/mutate  apply an NDJSON delta batch (one version bump)
//	GET  /data         list the caller's datasets
//	GET  /healthz      liveness probe
//	GET  /stats        service counters (jobs, tokens, store, solver)
//	GET  /cache        store introspection: counters + cached entries
//	POST /cache/save   persist the store as a snapshot file
//	POST /cache/load   merge a snapshot file into the store
//	POST /cache/purge  drop all cached entries
//
// Datasets: PUT /data/{name} uploads a database once; queries then
// reference it by name ({"dataset":"name"}) instead of shipping data
// per request, reading an immutable snapshot whose relations carry
// delta-maintained hash indexes (repeat queries skip parsing and index
// building; responses report the snapshot's "dataset_version").
// Mutation batches advance the version in O(delta); "at_version" pins a
// query to a recent version (-dataset-retain controls how many stay
// pinnable). Datasets are tenant-namespaced by X-Tenant.
//
// Persistence, two ways:
//
// With -store-dir, the cross-request store itself is disk-backed: the
// in-memory sharded store becomes the LRU working set over a crash-safe
// append-only log in that directory, every result is persisted as it is
// computed, and a restart (graceful or kill -9) serves the whole cached
// history warm with zero solver runs — no snapshot step involved.
// -store-fsync trades durability for append latency: 0 (the default)
// fsyncs every append, larger values fsync on that cadence and can lose
// at most the unsynced tail on a crash.
//
// With -snapshot, the server preloads the snapshot on boot (if the file
// exists) and saves it again on graceful shutdown, so restarts stay
// warm: repeat submissions are answered from the restored cache without
// a solver run. Unlike -store-dir this persists only at shutdown — a
// crash loses everything since the last save. The two compose: snapshot
// files remain the portable export/import format either way.
//
// Try it:
//
//	curl -s localhost:8080/decompose -d '{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	htd "repro"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		budget      = flag.Int("budget", 0, "global extra-worker token budget (0 = GOMAXPROCS-1)")
		maxConc     = flag.Int("max-concurrent", 0, "max jobs decomposing at once (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max jobs waiting before rejection (0 = 64)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-job timeout (0 = none)")
		storeShards = flag.Int("store-shards", 0, "lock stripes of the cross-request store (0 = 16)")
		memoGraphs  = flag.Int("memo-graphs", 0, "hypergraphs cached in the store (0 = 32)")
		memoEntry   = flag.Int("memo-entries", 0, "memoised states per (hypergraph, width) table (0 = 1<<20)")
		snapshot    = flag.String("snapshot", "", "snapshot file: preloaded on boot, saved on graceful shutdown")
		storeDir    = flag.String("store-dir", "", "disk-backed store directory: every result persists as computed, restarts serve warm")
		storeFsync  = flag.Duration("store-fsync", 0, "disk store fsync cadence (0 = every append)")

		tenantRate     = flag.Float64("tenant-rate", 0, "per-tenant admissions per second (0 = unlimited)")
		tenantBurst    = flag.Float64("tenant-burst", 0, "per-tenant burst size (0 = max(rate, 1))")
		tenantInflight = flag.Int("tenant-inflight", 0, "per-tenant max jobs in flight (0 = unlimited)")
		tenantQueue    = flag.Int("tenant-queue", 0, "per-tenant queue depth behind the in-flight cap (0 = none)")
		fairShare      = flag.Bool("fair-share", true, "let unused per-tenant rate flow to a shared spare pool")
		globalRate     = flag.Float64("global-rate", 0, "whole-server admissions per second feeding the fair-share pool (0 = sum of reserved rates only)")
		maxBody        = flag.Int64("max-body", 0, "max bytes of one request body on single-shot endpoints (0 = 8 MiB)")
		pprofAddr      = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")

		dsMax    = flag.Int("dataset-max", 0, "max named datasets across all tenants (0 = 64)")
		dsTuples = flag.Int("dataset-tuples", 0, "max live tuples per dataset (0 = 2M)")
		dsRetain = flag.Int("dataset-retain", 0, "dataset versions kept pinnable for at_version reads (0 = 4)")
		dsParse  = flag.Int("dataset-parse-cache", 0, "parsed inline databases cached (0 = 8)")
	)
	flag.Parse()

	cfg := htd.ServiceConfig{
		TokenBudget:    *budget,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		StoreShards:    *storeShards,
		MemoMaxGraphs:  *memoGraphs,
		MemoMaxEntries: *memoEntry,
		StoreDir:       *storeDir,
		StoreFsync:     *storeFsync,
		Tenants: htd.TenantConfig{
			Rate:        *tenantRate,
			Burst:       *tenantBurst,
			MaxInFlight: *tenantInflight,
			MaxQueue:    *tenantQueue,
			FairShare:   *fairShare,
			GlobalRate:  *globalRate,
		},
		Datasets: htd.DatasetConfig{
			MaxDatasets:    *dsMax,
			MaxTuples:      *dsTuples,
			Retain:         *dsRetain,
			ParseCacheSize: *dsParse,
		},
	}
	svc, err := htd.OpenService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htdserve: open store %s: %v\n", *storeDir, err)
		os.Exit(1)
	}
	if *storeDir != "" {
		if st := svc.Store().Stats(); st.Disk != nil {
			fmt.Fprintf(os.Stderr, "htdserve: disk store %s: %d entries, %d segments, %d bytes\n",
				*storeDir, st.Disk.Entries, st.Disk.Segments, st.Disk.Bytes)
		}
	}
	if *snapshot != "" {
		snap, err := htd.LoadSnapshotFile(*snapshot)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "htdserve: no snapshot at %s yet, starting cold\n", *snapshot)
		case err != nil:
			fmt.Fprintf(os.Stderr, "htdserve: snapshot %s: %v\n", *snapshot, err)
			os.Exit(1)
		default:
			n, err := svc.Store().Import(snap)
			if err != nil {
				fmt.Fprintf(os.Stderr, "htdserve: import snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "htdserve: warm start, %d cached entries restored\n", n)
		}
	}
	// The batch limit mirrors the service's effective concurrency so
	// /batch feeds it at full rate without tripping admission control.
	handler := newHandler(svc, svc.Config().MaxConcurrent, *snapshot, *maxBody)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiling listener is separate from the serving one: exposing
	// heap and CPU profiles is an operator decision (-pprof-addr, e.g.
	// bound to localhost), never a side effect of serving traffic.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "htdserve: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "htdserve: pprof on %s\n", *pprofAddr)
	}

	// shutdown is the single exit path: drain in-flight HTTP requests,
	// close the service, and persist the snapshot. Both the signal arm
	// and the listener-error arm run it, so a crashed listener saves the
	// warm cache exactly like a graceful SIGTERM does.
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "htdserve: shutdown: %v\n", err)
		}
		if pprofSrv != nil {
			if err := pprofSrv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "htdserve: pprof shutdown: %v\n", err)
			}
		}
		if *snapshot != "" {
			// The shutdown save goes through the handler's serialised
			// saver: a still-running POST /cache/save and this save must
			// not race each other's rename onto the same path.
			if n, err := handler.saveSnapshot(*snapshot); err != nil {
				fmt.Fprintf(os.Stderr, "htdserve: save snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "htdserve: snapshot saved to %s (%d entries)\n", *snapshot, n)
			}
		}
		// Close drains in-flight jobs, then flushes and closes the disk
		// store (when -store-dir owns one).
		if err := svc.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "htdserve: close store: %v\n", err)
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "htdserve: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "htdserve: %v, draining\n", sig)
		shutdown()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "htdserve: %v\n", err)
			shutdown()
			os.Exit(1)
		}
	}
}
