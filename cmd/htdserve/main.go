// Command htdserve serves hypertree decompositions over HTTP, backed by
// htd.Service: a shared worker-token budget, admission control with
// per-job timeouts, and a cross-request negative-memo cache.
//
// Usage:
//
//	htdserve -addr :8080 [-budget 8] [-max-concurrent 8] [-timeout 30s]
//
// Endpoints:
//
//	POST /decompose  one job; JSON body {"hypergraph":"r1(x,y), ...","k":2}
//	POST /batch      NDJSON job lines in, NDJSON results out (streamed,
//	                 input order)
//	GET  /healthz    liveness probe
//	GET  /stats      service counters (jobs, tokens, memo cache, solver)
//
// Try it:
//
//	curl -s localhost:8080/decompose -d '{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	htd "repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		budget     = flag.Int("budget", 0, "global extra-worker token budget (0 = GOMAXPROCS-1)")
		maxConc    = flag.Int("max-concurrent", 0, "max jobs decomposing at once (0 = GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 0, "max jobs waiting before rejection (0 = 64)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-job timeout (0 = none)")
		memoGraphs = flag.Int("memo-graphs", 0, "distinct (hypergraph, k) memo tables cached (0 = 32)")
		memoEntry  = flag.Int("memo-entries", 0, "memoised states per table (0 = 1<<20)")
	)
	flag.Parse()

	cfg := htd.ServiceConfig{
		TokenBudget:    *budget,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MemoMaxGraphs:  *memoGraphs,
		MemoMaxEntries: *memoEntry,
	}
	svc := htd.NewService(cfg)
	httpSrv := &http.Server{
		Addr: *addr,
		// The batch limit mirrors the service's effective concurrency so
		// /batch feeds it at full rate without tripping admission control.
		Handler:           newHandler(svc, svc.Config().MaxConcurrent),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "htdserve: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "htdserve: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "htdserve: shutdown: %v\n", err)
		}
		svc.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "htdserve: %v\n", err)
			os.Exit(1)
		}
	}
}
