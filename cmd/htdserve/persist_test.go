package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	htd "repro"
)

// TestConcurrentCacheSaveAndShutdownSave hammers POST /cache/save from
// many goroutines while the shutdown-style save runs through the same
// serialised saver. Every save must succeed, and the file must end up
// a complete, valid snapshot — the exact race the saveMu guards: two
// unserialised renames onto one path letting a stale save clobber a
// fresh one.
func TestConcurrentCacheSaveAndShutdownSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snapshot")
	svc := htd.NewService(htd.ServiceConfig{TokenBudget: 2, MaxConcurrent: 4})
	defer svc.Close()
	handler := newHandler(svc, 4, path, 0)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Seed the store so snapshots have content.
	_, out := postJSON(t, ts.URL+"/decompose",
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`)
	if !out.OK {
		t.Fatalf("seed decompose failed: %+v", out)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(ts.URL+"/cache/save", "application/json", strings.NewReader("{}"))
				if err != nil {
					t.Error(err)
					return
				}
				var body struct {
					Saved int    `json:"saved"`
					Error string `json:"error"`
				}
				json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("cache/save: %d %s", resp.StatusCode, body.Error)
					return
				}
			}
		}()
	}
	// The shutdown path concurrently, through the same saver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := handler.saveSnapshot(path); err != nil {
				t.Errorf("shutdown-style save: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	snap, err := htd.LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("final snapshot corrupt after concurrent saves: %v", err)
	}
	if len(snap.Entries) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(snap.Entries))
	}
}

// TestServeDiskStoreWarmRestart: an htdserve handler stack over a
// -store-dir service, torn down and rebuilt on the same directory,
// must answer the repeat request as a cache hit with zero solver runs
// — the two-process scripts/warm_restart.sh contract, in-process.
func TestServeDiskStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*httptest.Server, *htd.Service) {
		svc, err := htd.OpenService(htd.ServiceConfig{
			TokenBudget: 2, MaxConcurrent: 4, DefaultTimeout: 30 * time.Second,
			StoreDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(newHandler(svc, 4, "", 0)), svc
	}
	const job = `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x), r4(x,z).","k":2}`

	ts, svc := open()
	_, out := postJSON(t, ts.URL+"/decompose", job)
	if !out.OK || out.CacheHit {
		t.Fatalf("cold request: %+v", out)
	}
	ts.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	ts, svc = open()
	defer ts.Close()
	defer svc.Close()
	_, out = postJSON(t, ts.URL+"/decompose", job)
	if !out.OK || !out.CacheHit {
		t.Fatalf("warm request after restart not a cache hit: %+v", out)
	}
	if runs := svc.Stats().SolverRuns; runs != 0 {
		t.Fatalf("warm restart ran %d solvers, want 0", runs)
	}
	// /stats reports the disk tier so operators can see the log.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		PositiveHits int64 `json:"PositiveHits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PositiveHits != 1 {
		t.Fatalf("stats PositiveHits=%d, want 1", st.PositiveHits)
	}
	// /cache exposes Disk counters through the store stats.
	cresp, err := http.Get(ts.URL + "/cache?max=0")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cache struct {
		Store struct {
			Disk *htd.DiskStoreStats `json:"disk"`
		} `json:"store"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&cache); err != nil {
		t.Fatal(err)
	}
	if cache.Store.Disk == nil || cache.Store.Disk.Entries != 1 {
		t.Fatalf("cache stats missing the disk tier: %+v", cache.Store.Disk)
	}
}
