package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	htd "repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *htd.Service) {
	t.Helper()
	return newTestServerSnapshot(t, "")
}

func newTestServerSnapshot(t *testing.T, snapshotPath string) (*httptest.Server, *htd.Service) {
	t.Helper()
	svc := htd.NewService(htd.ServiceConfig{
		TokenBudget:    2,
		MaxConcurrent:  4,
		MaxQueue:       64,
		DefaultTimeout: 30 * time.Second,
	})
	ts := httptest.NewServer(newHandler(svc, 4, snapshotPath, 0))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func postJSON(t *testing.T, url, body string) (*http.Response, apiResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func TestServeDecomposeEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Width-2 triangle: expect a valid tree and a width of 2.
	resp, out := postJSON(t, ts.URL+"/decompose",
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2,"render":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.OK || out.Width != 2 || out.Tree == nil {
		t.Fatalf("unexpected result: %+v", out)
	}
	if len(out.Tree.Lambda) == 0 || len(out.Tree.Bag) == 0 {
		t.Fatalf("tree not resolved to names: %+v", out.Tree)
	}
	if !strings.Contains(out.Rendering, "lambda=") {
		t.Fatalf("rendering missing: %q", out.Rendering)
	}
	if out.Stats == nil || out.Stats.Candidates == 0 {
		t.Fatalf("solver stats missing: %+v", out.Stats)
	}

	// Same structure again: the cross-request memo table must be found.
	_, again := postJSON(t, ts.URL+"/decompose",
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`)
	if !again.CacheShared {
		t.Fatalf("second identical request should share the memo cache: %+v", again)
	}

	// Definitive NO is a 200 with ok=false and no error.
	resp, no := postJSON(t, ts.URL+"/decompose",
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":1}`)
	if resp.StatusCode != http.StatusOK || no.OK || no.Error != "" {
		t.Fatalf("k=1 triangle: status=%d %+v", resp.StatusCode, no)
	}

	// Bad inputs are 400s.
	for _, body := range []string{
		`{"hypergraph":"r1(x,y).","k":0}`,
		`{"k":2}`,
		`{"hypergraph":"not a ( graph","k":2}`,
		`{invalid json`,
	} {
		resp, _ := postJSON(t, ts.URL+"/decompose", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServeOptimalMode(t *testing.T) {
	ts, _ := newTestServer(t)

	// Optimal mode on a width-3 prism (cylinder): exact width, valid
	// tree, proven lower bound with probe provenance.
	var b strings.Builder
	for i := 0; i < 8; i++ {
		j := (i + 1) % 8
		fmt.Fprintf(&b, "ra%d(a%d,a%d), rb%d(b%d,b%d), rr%d(a%d,b%d), ", i, i, j, i, i, j, i, i, i)
	}
	body, _ := json.Marshal(map[string]any{
		"hypergraph": strings.TrimSuffix(strings.TrimSpace(b.String()), ",") + ".",
		"k":          6,
		"mode":       "optimal",
	})
	resp, out := postJSON(t, ts.URL+"/decompose", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.OK || out.Width != 3 || out.Tree == nil {
		t.Fatalf("optimal result: %+v", out)
	}
	if out.LowerBound != 3 || out.LowerBoundFrom != "probe" {
		t.Fatalf("lower bound %d from %q, want 3 from probe", out.LowerBound, out.LowerBoundFrom)
	}
	if out.ProbesLaunched < 3 {
		t.Fatalf("probes launched %d, want >= 3", out.ProbesLaunched)
	}

	// A second optimal request on the same structure starts from the
	// cached bounds.
	_, again := postJSON(t, ts.URL+"/decompose", string(body))
	if !again.OK || again.Width != 3 {
		t.Fatalf("repeat optimal request: %+v", again)
	}
	if !again.BoundsShared || again.LowerBoundFrom != "memo" {
		t.Fatalf("repeat should reuse cached bounds: shared=%v from=%q",
			again.BoundsShared, again.LowerBoundFrom)
	}

	// /stats surfaces the optimal-mode counters.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st htd.ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.OptimalJobs != 2 || st.ProbesLaunched == 0 || st.BoundsReuses != 1 {
		t.Fatalf("optimal stats not surfaced: %+v", st)
	}

	// An unknown mode is a 400.
	resp, _ = postJSON(t, ts.URL+"/decompose",
		`{"hypergraph":"r1(x,y).","k":2,"mode":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400", resp.StatusCode)
	}
}

func TestServeStatsReportsCancellationsByWidth(t *testing.T) {
	ts, _ := newTestServer(t)

	// A wide race on an easy instance: probes at widths above the
	// optimum are launched and then cancelled as moot. Cancellation is
	// timing-dependent, so drive a few rounds and only require the
	// stats plumbing (not a specific count) to hold.
	line, _ := json.Marshal(map[string]any{
		"hypergraph": "r1(x0,x1), r2(x1,x2), r3(x2,x3), r4(x3,x4), r5(x4,x5), r6(x5,x0).",
		"k":          6,
		"mode":       "optimal",
		"max_probes": 6,
	})
	for i := 0; i < 3; i++ {
		if _, out := postJSON(t, ts.URL+"/decompose", string(line)); !out.OK || out.Width != 2 {
			t.Fatalf("round %d: %+v", i, out)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ProbesCancelled  int64            `json:"ProbesCancelled"`
		CancelledByWidth map[string]int64 `json:"CancelledByWidth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range st.CancelledByWidth {
		sum += n
	}
	if sum != st.ProbesCancelled {
		t.Fatalf("per-width cancellations (%d) disagree with total (%d): %v",
			sum, st.ProbesCancelled, st.CancelledByWidth)
	}
}

func TestServeBatchStreamsInOrder(t *testing.T) {
	ts, _ := newTestServer(t)

	lines := []string{
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`,
		`{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":1}`,
		`{"bad":`,
		`{"hypergraph":"p1(a,b), p2(b,c).","k":1}`,
	}
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var results []apiResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r apiResponse
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", len(results), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(lines) {
		t.Fatalf("got %d results for %d lines", len(results), len(lines))
	}
	if !results[0].OK || results[0].Width != 2 {
		t.Fatalf("line 0: %+v", results[0])
	}
	if results[1].OK || results[1].Error != "" {
		t.Fatalf("line 1 should be a definitive NO: %+v", results[1])
	}
	if results[2].Error == "" {
		t.Fatalf("line 2 should be a parse error: %+v", results[2])
	}
	if !results[3].OK || results[3].Width != 1 {
		t.Fatalf("line 3: %+v", results[3])
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	// Drive some traffic, then check the counters moved.
	postJSON(t, ts.URL+"/decompose", `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`)
	postJSON(t, ts.URL+"/decompose", `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`)

	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st htd.ServiceStats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted < 2 || st.Completed < 2 {
		t.Fatalf("stats did not count jobs: %+v", st)
	}
	if st.CacheReuses == 0 {
		t.Fatalf("identical requests should reuse the memo cache: %+v", st)
	}
	if st.TokenBudget != 2 {
		t.Fatalf("token budget %d, want 2", st.TokenBudget)
	}
}

// TestServeCacheEndpoints drives the store over HTTP: a repeat request
// is a cache hit, GET /cache lists the entry, save/purge/load round the
// state through a snapshot file, and a second server warm-starts from
// it.
func TestServeCacheEndpoints(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "cache.json")
	ts, _ := newTestServerSnapshot(t, snapPath)
	body := `{"hypergraph":"r1(x,y), r2(y,z), r3(z,x).","k":2}`

	// First request solves; the repeat must be a validated cache hit.
	if _, out := postJSON(t, ts.URL+"/decompose", body); !out.OK {
		t.Fatalf("first request: %+v", out)
	}
	_, hit := postJSON(t, ts.URL+"/decompose", body)
	if !hit.OK || !hit.CacheHit || hit.Tree == nil {
		t.Fatalf("repeat request should be a cache hit with a tree: %+v", hit)
	}

	// GET /cache lists the cached entry with its bounds.
	cresp, err := http.Get(ts.URL + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cache struct {
		Store   htd.StoreStats       `json:"store"`
		Entries []htd.StoreEntryInfo `json:"entries"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&cache); err != nil {
		t.Fatal(err)
	}
	if cache.Store.Entries != 1 || len(cache.Entries) != 1 {
		t.Fatalf("cache listing: %+v", cache)
	}
	if !cache.Entries[0].HasTree || cache.Entries[0].Bounds.UB != 2 {
		t.Fatalf("cached entry: %+v", cache.Entries[0])
	}

	// Save, purge (cold again), then load (warm again).
	resp, save := postJSON(t, ts.URL+"/cache/save", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save: status %d %+v", resp.StatusCode, save)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}
	if resp, _ := postJSON(t, ts.URL+"/cache/purge", ``); resp.StatusCode != http.StatusOK {
		t.Fatalf("purge: status %d", resp.StatusCode)
	}
	_, cold := postJSON(t, ts.URL+"/decompose", body)
	if cold.CacheHit {
		t.Fatalf("request after purge cannot be a cache hit: %+v", cold)
	}
	if resp, _ := postJSON(t, ts.URL+"/cache/load", `{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d", resp.StatusCode)
	}

	// A fresh server warm-starts from the same snapshot file.
	ts2, svc2 := newTestServerSnapshot(t, snapPath)
	if resp, _ := postJSON(t, ts2.URL+"/cache/load", ``); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm load: status %d", resp.StatusCode)
	}
	_, warm := postJSON(t, ts2.URL+"/decompose", body)
	if !warm.OK || !warm.CacheHit {
		t.Fatalf("warm-started server should answer from the snapshot: %+v", warm)
	}
	if st := svc2.Stats(); st.SolverRuns != 0 {
		t.Fatalf("warm-started server ran %d solvers, want 0", st.SolverRuns)
	}

	// Save/load on a server started without -snapshot is a 400.
	ts3, _ := newTestServer(t)
	if resp, _ := postJSON(t, ts3.URL+"/cache/save", ``); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless save: status %d, want 400", resp.StatusCode)
	}
	// Loading a missing file (in the allowed directory) is a 400, not a
	// crash.
	missing := `{"path":"` + filepath.Join(filepath.Dir(snapPath), "nope.json") + `"}`
	if resp, _ := postJSON(t, ts.URL+"/cache/load", missing); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-file load: status %d, want 400", resp.StatusCode)
	}
	// Paths outside the -snapshot directory are rejected: the HTTP body
	// must not choose arbitrary filesystem targets.
	for _, escape := range []string{
		`{"path":"` + filepath.Join(t.TempDir(), "elsewhere.json") + `"}`,
		`{"path":"` + filepath.Join(filepath.Dir(snapPath), "..", "escape.json") + `"}`,
	} {
		if resp, _ := postJSON(t, ts.URL+"/cache/save", escape); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("out-of-directory save %s: status %d, want 400", escape, resp.StatusCode)
		}
	}
}

// TestServeCoalescedBatch: duplicate lines in one /batch run a single
// solver; every line still gets a full result.
func TestServeCoalescedBatch(t *testing.T) {
	ts, svc := newTestServer(t)
	line := `{"hypergraph":"c1(a,b), c2(b,c), c3(c,d), c4(d,e), c5(e,f), c6(f,a).","k":2}`
	lines := strings.Repeat(line+"\n", 4)
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r apiResponse
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if !r.OK || r.Width != 2 {
			t.Fatalf("line %d: %+v", n, r)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("got %d results, want 4", n)
	}
	// Identical in-flight lines coalesce; late lines may instead hit
	// the positive cache. Either way: exactly one solver ran.
	if st := svc.Stats(); st.SolverRuns != 1 {
		t.Fatalf("SolverRuns=%d, want 1 for four identical lines", st.SolverRuns)
	}
}

// triangleQueryBody is the /query body for the triangle fixture whose
// full answer set is exactly {(1,2,5), (4,2,7)}.
const triangleQueryBody = `{"query":"R(x,y), S(y,z), T(z,x).",` +
	`"database":"rel R(c1,c2)\n1 2\n1 3\n4 2\nend\nrel S(c1,c2)\n2 5\n3 6\n2 7\nend\nrel T(c1,c2)\n5 1\n6 4\n7 4\nend\n"}`

func postQuery(t *testing.T, url, body string) (*http.Response, queryAPIResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out queryAPIResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode response %q: %v", raw, err)
	}
	return resp, out, raw
}

// rawRows extracts the uninterpreted "rows" JSON of a /query response,
// for byte-identity comparisons across repeat requests.
func rawRows(t *testing.T, raw []byte) []byte {
	t.Helper()
	var probe struct {
		Rows json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	return probe.Rows
}

// TestServeQueryGolden pins the full /query contract on the triangle
// fixture: canonical vars and rows, plan metadata, and the plan-cache
// behaviour of a repeated identical request — byte-identical rows,
// plan_cache_hit=true, and no additional solver run.
func TestServeQueryGolden(t *testing.T) {
	ts, svc := newTestServer(t)

	resp, out, raw := postQuery(t, ts.URL+"/query", triangleQueryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if !out.OK || out.Error != "" {
		t.Fatalf("query failed: %+v", out)
	}
	if !reflect.DeepEqual(out.Vars, []string{"x", "y", "z"}) {
		t.Fatalf("vars = %v, want [x y z]", out.Vars)
	}
	wantRows := [][]int{{1, 2, 5}, {4, 2, 7}}
	if !reflect.DeepEqual(out.Rows, wantRows) || out.RowCount != 2 {
		t.Fatalf("rows = %v (count %d), want %v", out.Rows, out.RowCount, wantRows)
	}
	if out.Width != 2 {
		t.Fatalf("plan width = %d, want 2 (triangle hw)", out.Width)
	}
	if out.PlanCacheHit {
		t.Fatalf("first query cannot be a plan-cache hit: %+v", out)
	}

	// The repeat: byte-identical rows, plan from the cache, and the
	// service must not have run another solver.
	runsBefore := svc.Stats().SolverRuns
	resp2, again, raw2 := postQuery(t, ts.URL+"/query", triangleQueryBody)
	if resp2.StatusCode != http.StatusOK || !again.OK {
		t.Fatalf("repeat query: status=%d %+v", resp2.StatusCode, again)
	}
	if !again.PlanCacheHit {
		t.Fatalf("repeat query must hit the plan cache: %+v", again)
	}
	if got, want := rawRows(t, raw2), rawRows(t, raw); !bytes.Equal(got, want) {
		t.Fatalf("repeat rows not byte-identical:\n%s\nvs\n%s", got, want)
	}
	if runsAfter := svc.Stats().SolverRuns; runsAfter != runsBefore {
		t.Fatalf("repeat query ran a solver: SolverRuns %d -> %d", runsBefore, runsAfter)
	}

	// /stats surfaces the query-pipeline counters under "query".
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Query.Queries != 2 || st.Query.Answered != 2 || st.Query.PlanCacheHits != 1 {
		t.Fatalf("query stats not surfaced: %+v", st.Query)
	}
}

func TestServeQueryModes(t *testing.T) {
	ts, _ := newTestServer(t)

	// omit_rows: counts and plan metadata only.
	_, out, raw := postQuery(t, ts.URL+"/query",
		`{"query":"R(x,y), S(y,z), T(z,x).",`+
			`"database":"rel R(c1,c2)\n1 2\n1 3\n4 2\nend\nrel S(c1,c2)\n2 5\n3 6\n2 7\nend\nrel T(c1,c2)\n5 1\n6 4\n7 4\nend\n",`+
			`"omit_rows":true}`)
	if !out.OK || out.RowCount != 2 || out.Rows != nil {
		t.Fatalf("omit_rows: %+v (%s)", out, raw)
	}

	// max_width below the triangle's hw=2: a definitive no-plan answer,
	// not a server error.
	resp, noPlan, _ := postQuery(t, ts.URL+"/query",
		`{"query":"R(x,y), S(y,z), T(z,x).",`+
			`"database":"rel R(c1,c2)\nend\nrel S(c1,c2)\nend\nrel T(c1,c2)\nend\n",`+
			`"max_width":1}`)
	if resp.StatusCode != http.StatusOK || noPlan.OK || !strings.Contains(noPlan.Error, "width") {
		t.Fatalf("max_width=1: status=%d %+v", resp.StatusCode, noPlan)
	}

	// A tiny row budget aborts with a budget error, also a 200.
	resp, budget, _ := postQuery(t, ts.URL+"/query",
		`{"query":"R(x,y), S(y,z).",`+
			`"database":"rel R(c1,c2)\n1 1\n2 1\n3 1\nend\nrel S(c1,c2)\n1 1\n1 2\n1 3\nend\n",`+
			`"max_rows":2}`)
	if resp.StatusCode != http.StatusOK || budget.OK || !strings.Contains(budget.Error, "row budget") {
		t.Fatalf("row budget: status=%d %+v", resp.StatusCode, budget)
	}

	// Bad inputs are 400s: missing fields, parse errors, unknown
	// relations, arity mismatches, negative timeouts.
	for _, body := range []string{
		`{invalid json`,
		`{"database":"rel R(a)\nend\n"}`,
		`{"query":"R(x","database":""}`,
		`{"query":"R(x).","database":"rel R(a)\n1 2\nend\n"}`,
		`{"query":"R(x).","database":"not a database"}`,
		`{"query":"R(x,y).","database":"rel R(a)\n1\nend\n"}`,
		`{"query":"R(x).","database":"rel R(a)\nend\n","timeout_ms":-1}`,
	} {
		resp, _, raw := postQuery(t, ts.URL+"/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
	}
}

// TestServeQueryParallelism: a /query with "parallelism" runs the
// parallel indexed executor — same bytes as the serial answer, the
// effective parallelism echoed, executor counters populated, and the
// planner's executor aggregates surfaced under /stats.
func TestServeQueryParallelism(t *testing.T) {
	ts, _ := newTestServer(t)

	_, serial, rawSerial := postQuery(t, ts.URL+"/query", triangleQueryBody)
	if !serial.OK || serial.Parallelism != 1 {
		t.Fatalf("serial query: %+v", serial)
	}
	if serial.Exec == nil || serial.Exec.Semijoins == 0 {
		t.Fatalf("executor counters missing on the serial answer: %+v", serial.Exec)
	}

	parBody := strings.TrimSuffix(triangleQueryBody, "}") + `,"parallelism":4}`
	resp, par, rawPar := postQuery(t, ts.URL+"/query", parBody)
	if resp.StatusCode != http.StatusOK || !par.OK {
		t.Fatalf("parallel query: status=%d %+v", resp.StatusCode, par)
	}
	if par.Parallelism != 4 {
		t.Fatalf("parallelism echoed as %d, want 4", par.Parallelism)
	}
	if got, want := rawRows(t, rawPar), rawRows(t, rawSerial); !bytes.Equal(got, want) {
		t.Fatalf("parallel rows not byte-identical to serial:\n%s\nvs\n%s", got, want)
	}
	// The repeat of the same inline database hits the parse cache, so
	// this query reuses the serial run's captured indexes instead of
	// building its own.
	if par.Exec == nil || par.Exec.IndexBuilds+par.Exec.IndexReuses == 0 {
		t.Fatalf("executor counters missing on the parallel answer: %+v", par.Exec)
	}

	// Negative parallelism is the client's fault.
	resp, _, raw := postQuery(t, ts.URL+"/query",
		strings.TrimSuffix(triangleQueryBody, "}")+`,"parallelism":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parallelism=-1: status %d, want 400 (%s)", resp.StatusCode, raw)
	}

	// /stats aggregates the executor effort across queries.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Query.ExecIndexBuilds == 0 || st.Query.ExecParallelQueries != 1 {
		t.Fatalf("executor counters not aggregated in /stats: %+v", st.Query)
	}
}

// TestServeQueryBatch drives /querybatch: NDJSON in, NDJSON out in
// input order, per-line errors isolated, and duplicate lines planning
// once through the shared store.
func TestServeQueryBatch(t *testing.T) {
	ts, svc := newTestServer(t)

	good := `{"query":"R(x,y), S(y,z), T(z,x).",` +
		`"database":"rel R(c1,c2)\n1 2\n1 3\n4 2\nend\nrel S(c1,c2)\n2 5\n3 6\n2 7\nend\nrel T(c1,c2)\n5 1\n6 4\n7 4\nend\n"}`
	lines := []string{
		good,
		`{"bad":`,
		`{"query":"R(x,y).","database":"rel R(c1,c2)\n7 8\nend\n"}`,
		good,
		good,
	}
	resp, err := http.Post(ts.URL+"/querybatch", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var results []queryAPIResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r queryAPIResponse
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", len(results), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(lines) {
		t.Fatalf("got %d results for %d lines", len(results), len(lines))
	}
	for _, i := range []int{0, 3, 4} {
		if !results[i].OK || results[i].RowCount != 2 {
			t.Fatalf("line %d: %+v", i, results[i])
		}
	}
	if results[1].Error == "" || results[1].OK {
		t.Fatalf("line 1 should be a JSON error: %+v", results[1])
	}
	if !results[2].OK || results[2].RowCount != 1 || results[2].Width != 1 {
		t.Fatalf("line 2: %+v", results[2])
	}
	if !reflect.DeepEqual(results[0].Rows, results[3].Rows) {
		t.Fatalf("duplicate lines returned different rows")
	}
	// The three identical triangle lines share one plan: at most one
	// solver ran for them (plus one for the single-atom query's plan).
	if runs := svc.Stats().SolverRuns; runs > 2 {
		t.Fatalf("SolverRuns = %d, want <= 2 for 2 distinct query structures", runs)
	}
}

// TestServeQueryAggregate pins the /query aggregate contract: an
// "aggregate" head returns the aggregate and no rows, a query whose row
// form blows max_rows still aggregates under the same budget, grouped
// heads come back in canonical order, aggregates flow through
// /querybatch, and malformed heads are 400s.
func TestServeQueryAggregate(t *testing.T) {
	ts, svc := newTestServer(t)

	// Scalar count on the triangle fixture (2 answers).
	_, out, raw := postQuery(t, ts.URL+"/query",
		strings.TrimSuffix(triangleQueryBody, "}")+`,"aggregate":"count"}`)
	if !out.OK || out.Aggregate == nil {
		t.Fatalf("aggregate count: %+v (%s)", out, raw)
	}
	if out.Aggregate.Value == nil || *out.Aggregate.Value != 2 || out.Aggregate.Spec != "count" {
		t.Fatalf("aggregate answer: %+v", out.Aggregate)
	}
	if out.Rows != nil || out.RowCount != 0 {
		t.Fatalf("aggregate response must carry no rows: %+v", out)
	}

	// The aggregate shares the row query's plan structure: a repeat is a
	// plan-cache hit and runs no extra solver.
	runsBefore := svc.Stats().SolverRuns
	_, again, _ := postQuery(t, ts.URL+"/query",
		strings.TrimSuffix(triangleQueryBody, "}")+`,"aggregate":"count"}`)
	if !again.OK || !again.PlanCacheHit {
		t.Fatalf("aggregate repeat must hit the plan cache: %+v", again)
	}
	if runs := svc.Stats().SolverRuns; runs != runsBefore {
		t.Fatalf("aggregate repeat ran a solver: %d -> %d", runsBefore, runs)
	}

	// A cross-product query under a row budget: the row form fails, the
	// aggregate form answers (the ErrRowBudget-to-feature flip).
	crossDB := func() string {
		var r, s strings.Builder
		for i := 0; i < 30; i++ {
			fmt.Fprintf(&r, "%d 0\\n", i)
			fmt.Fprintf(&s, "0 %d\\n", i)
		}
		return `"database":"rel R(c1,c2)\n` + r.String() + `end\nrel S(c1,c2)\n` + s.String() + `end\n"`
	}()
	rowBody := `{"query":"R(x,y), S(y,z).",` + crossDB + `,"max_rows":50}`
	resp, rows, _ := postQuery(t, ts.URL+"/query", rowBody)
	if resp.StatusCode != http.StatusOK || rows.OK || !strings.Contains(rows.Error, "row budget") {
		t.Fatalf("row form under budget: status=%d %+v", resp.StatusCode, rows)
	}
	_, agg, _ := postQuery(t, ts.URL+"/query",
		strings.TrimSuffix(rowBody, "}")+`,"aggregate":"count"}`)
	if !agg.OK || agg.Aggregate == nil || agg.Aggregate.Value == nil || *agg.Aggregate.Value != 900 {
		t.Fatalf("aggregate under the same budget: %+v", agg.Aggregate)
	}

	// Grouped head: canonical group columns and sorted groups.
	_, grouped, _ := postQuery(t, ts.URL+"/query",
		strings.TrimSuffix(triangleQueryBody, "}")+`,"aggregate":"group x: count"}`)
	if !grouped.OK || grouped.Aggregate == nil {
		t.Fatalf("grouped aggregate: %+v", grouped)
	}
	ga := grouped.Aggregate
	if !reflect.DeepEqual(ga.GroupVars, []string{"x"}) ||
		!reflect.DeepEqual(ga.Groups, [][]int{{1}, {4}}) ||
		!reflect.DeepEqual(ga.Values, []int64{1, 1}) ||
		ga.GroupCount != 2 || ga.Value != nil {
		t.Fatalf("grouped answer: %+v", ga)
	}

	// Aggregates through /querybatch.
	aggLine := strings.TrimSuffix(triangleQueryBody, "}") + `,"aggregate":"max(z)"}`
	bresp, err := http.Post(ts.URL+"/querybatch", "application/x-ndjson",
		strings.NewReader(aggLine+"\n"+triangleQueryBody+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var results []queryAPIResponse
	sc := bufio.NewScanner(bresp.Body)
	for sc.Scan() {
		var r queryAPIResponse
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 2 || !results[0].OK || results[0].Aggregate == nil ||
		results[0].Aggregate.Value == nil || *results[0].Aggregate.Value != 7 {
		t.Fatalf("batch aggregate line: %+v", results)
	}
	if !results[1].OK || results[1].RowCount != 2 || results[1].Aggregate != nil {
		t.Fatalf("batch row line: %+v", results[1])
	}

	// Malformed or invalid aggregate heads are the client's fault.
	for _, head := range []string{"tally", "sum(unknown)", "group w: count", "sum(x,y)"} {
		resp, _, raw := postQuery(t, ts.URL+"/query",
			strings.TrimSuffix(triangleQueryBody, "}")+`,"aggregate":"`+head+`"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("aggregate %q: status %d, want 400 (%s)", head, resp.StatusCode, raw)
		}
	}
}
