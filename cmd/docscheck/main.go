// Command docscheck fails when a committed Markdown file contains a
// broken intra-repo link: a relative target that does not exist on
// disk, or a #fragment that names no heading in the target file.
// External links (http, https, mailto) are ignored — the check gates
// repo navigability, not the reachability of the wider web. CI runs it
// on every PR (`make docs-check` is the local mirror):
//
//	docscheck [root]
//
// The root defaults to the current directory; .git and testdata trees
// are skipped. Exit status is non-zero iff any link is broken, with
// one "file:line: message" diagnostic per violation.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links [text](target). Images
// ![alt](target) share the suffix and are checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	files, err := markdownFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no Markdown files under", root)
		os.Exit(2)
	}

	// Anchors are collected for every Markdown file up front so a
	// #fragment on any cross-file link can be validated in one pass.
	anchors := map[string]map[string]bool{}
	for _, f := range files {
		a, err := headingAnchors(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		anchors[f] = a
	}

	absRoot, err := filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	var broken []string
	for _, f := range files {
		b, err := checkFile(f, absRoot, anchors)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		broken = append(broken, b...)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d Markdown file(s)\n", len(broken), len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d Markdown file(s) clean\n", len(files))
}

func markdownFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// checkFile scans one Markdown file and returns a diagnostic per
// broken relative link. Fenced code blocks are skipped so shell
// snippets like `curl ...(...)` never count as links.
func checkFile(path, absRoot string, anchors map[string]map[string]bool) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var broken []string
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			if msg := checkLink(path, absRoot, m[1], anchors); msg != "" {
				broken = append(broken, fmt.Sprintf("%s:%d: %s", path, line, msg))
			}
		}
	}
	return broken, sc.Err()
}

// checkLink validates one link target relative to the file that
// contains it; the empty string means the target resolves.
func checkLink(fromFile, absRoot, target string, anchors map[string]map[string]bool) string {
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return "" // external: http, https, mailto, ...
	}
	targetPath, frag, _ := strings.Cut(target, "#")
	dest := fromFile
	if targetPath != "" {
		dest = filepath.Join(filepath.Dir(fromFile), filepath.FromSlash(targetPath))
		if abs, err := filepath.Abs(dest); err == nil && !strings.HasPrefix(abs, absRoot+string(filepath.Separator)) && abs != absRoot {
			// Targets that escape the repo root are GitHub web-UI
			// routes (e.g. ../../actions/... badges), not repo files.
			return ""
		}
		if _, err := os.Stat(dest); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, dest)
		}
	}
	if frag == "" {
		return ""
	}
	a, ok := anchors[dest]
	if !ok {
		return "" // fragment into a non-Markdown file (e.g. source line refs)
	}
	if !a[strings.ToLower(frag)] {
		return fmt.Sprintf("broken anchor %q: no heading #%s in %s", target, frag, dest)
	}
	return ""
}

// headingAnchors returns the GitHub-style anchor slugs of every ATX
// heading in a Markdown file: lowercase, punctuation stripped, spaces
// to hyphens, duplicates suffixed -1, -2, ...
func headingAnchors(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(text, "#") {
			continue
		}
		title := strings.TrimLeft(text, "#")
		if title == "" || !strings.HasPrefix(title, " ") {
			continue
		}
		slug := slugify(strings.TrimSpace(title))
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, sc.Err()
}

func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
