package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/hyperbench"
)

// storeExperiment measures what the unified decomposition store buys a
// serving process, per HyperBench-sim size bucket:
//
//   - cold vs warm: every instance is submitted as a ModeOptimal job
//     against a fresh service (cold pass), then the identical traffic
//     is replayed against the now-populated store (warm pass). Warm
//     submissions are positive cache hits — a re-validated witness, no
//     solver run — so the ratio is the headline number for repeat
//     traffic.
//   - coalescing: N identical requests submitted concurrently against
//     a fresh service run one solver (singleflight), compared with the
//     same N requests forced to solve independently (NoSharedMemo).
//
// With -benchjson the measurements are written as the benchmark JSON
// artifact (BENCH_PR3.json in CI).
func storeExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	type bucketRun struct {
		bucket    string
		instances []hyperbench.Instance
	}
	var runs []bucketRun
	for _, bucket := range []string{"|E| <= 10", "10 < |E| <= 50"} {
		var ins []hyperbench.Instance
		for _, in := range cfg.Suite {
			// Known moderate widths only, so every pass terminates at
			// every timeout setting and solved counts are comparable.
			if hyperbench.SizeBucket(in.Edges()) == bucket && in.KnownHW >= 1 && in.KnownHW <= 4 {
				ins = append(ins, in)
			}
		}
		if len(ins) > 0 {
			runs = append(runs, bucketRun{bucket, ins})
		}
	}

	out := benchFile{
		Experiment:  "store",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Store: cold vs warm traffic and request coalescing",
		Headers: []string{"Bucket", "N",
			"cold-ms", "cold-solved", "warm-ms", "warm-hits", "warmup",
			"solo8-ms", "flight8-ms", "coalesce"},
	}

	var totalCold, totalWarm float64
	var totalN, totalSolved int
	for _, br := range runs {
		svc := newBenchService(cfg, len(br.instances))
		coldMS, coldSolved, err := submitAll(ctx, svc, br.instances, cfg)
		if err != nil {
			svc.Close()
			return nil, err
		}
		warmMS, warmSolved, err := submitAll(ctx, svc, br.instances, cfg)
		st := svc.Stats()
		svc.Close()
		if err != nil {
			return nil, err
		}
		if warmSolved != coldSolved {
			return nil, fmt.Errorf("bucket %s: warm pass solved %d, cold pass %d", br.bucket, warmSolved, coldSolved)
		}
		warmup := coldMS / warmMS

		soloMS, flightMS, flightRuns, err := coalesceProbe(ctx, br.instances[0], cfg)
		if err != nil {
			return nil, err
		}

		n := len(br.instances)
		totalCold += coldMS
		totalWarm += warmMS
		totalN += n
		totalSolved += coldSolved
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "store-cold/" + br.bucket,
				NsPerOp: coldMS * 1e6 / float64(n),
				Ops:     n, Solved: coldSolved, WallMS: coldMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: "first pass: empty store, every job runs the racing solver",
			},
			benchEntry{
				Name:    "store-warm/" + br.bucket,
				NsPerOp: warmMS * 1e6 / float64(n),
				Ops:     n, Solved: warmSolved, WallMS: warmMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("identical repeat traffic: %d positive cache hits, 0 extra solver runs; %.1fx faster than cold", st.PositiveHits, warmup),
			},
			benchEntry{
				Name:    "coalesce-solo/" + br.bucket,
				NsPerOp: soloMS * 1e6 / 8,
				Ops:     8, Solved: 8, WallMS: soloMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: "8 identical concurrent jobs, coalescing disabled (NoSharedMemo): 8 solver runs",
			},
			benchEntry{
				Name:    "coalesce-flight/" + br.bucket,
				NsPerOp: flightMS * 1e6 / 8,
				Ops:     8, Solved: 8, WallMS: flightMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("8 identical concurrent jobs through the singleflight: %d solver run(s)", flightRuns),
			})
		t.AddRow(br.bucket, n,
			fmt.Sprintf("%.1f", coldMS), coldSolved,
			fmt.Sprintf("%.2f", warmMS), warmSolved,
			fmt.Sprintf("%.0fx", warmup),
			fmt.Sprintf("%.1f", soloMS),
			fmt.Sprintf("%.1f", flightMS),
			fmt.Sprintf("%.2fx", soloMS/flightMS))
	}
	if totalN > 0 && totalWarm > 0 {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name:    "store-warmup/suite",
			NsPerOp: totalWarm * 1e6 / float64(totalN),
			Ops:     totalN, Solved: totalSolved, WallMS: totalWarm,
			Workers: cfg.Workers, Rounds: 1,
			Notes: fmt.Sprintf("whole suite: cold %.1fms vs warm %.2fms = %.1fx", totalCold, totalWarm, totalCold/totalWarm),
		})
		t.AddRow("suite total", totalN,
			fmt.Sprintf("%.1f", totalCold), totalSolved,
			fmt.Sprintf("%.2f", totalWarm), totalSolved,
			fmt.Sprintf("%.0fx", totalCold/totalWarm), "-", "-", "-")
	}
	t.Notes = append(t.Notes,
		"cold: ModeOptimal jobs, concurrent submissions, empty store",
		"warm: the identical traffic again; answered from the positive result cache (validated witnesses, no solver)",
		"solo8/flight8: 8 copies of one instance submitted concurrently, without and with request coalescing")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// newBenchService builds the service every store-experiment pass uses.
func newBenchService(cfg harness.Config, instances int) *htd.Service {
	return htd.NewService(htd.ServiceConfig{
		TokenBudget:    cfg.Workers,
		MaxConcurrent:  4,
		MaxQueue:       4*instances + 16,
		DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
		MemoMaxGraphs:  2 * instances,
	})
}

// submitAll submits every instance concurrently as a ModeOptimal job
// and reports wall time and the number solved.
func submitAll(ctx context.Context, svc *htd.Service, ins []hyperbench.Instance, cfg harness.Config) (ms float64, solved int, err error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for _, in := range ins {
		wg.Add(1)
		go func(in hyperbench.Instance) {
			defer wg.Done()
			res := svc.Submit(ctx, htd.ServiceRequest{
				H: in.H, K: cfg.KMax, Mode: htd.ModeOptimal,
				Workers: cfg.Workers,
				Hybrid:  htd.HybridWeightedCount, HybridThreshold: 40,
			})
			if res.Err == nil && res.OK {
				mu.Lock()
				solved++
				mu.Unlock()
			}
		}(in)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return 0, 0, ctx.Err()
	}
	return float64(time.Since(start)) / float64(time.Millisecond), solved, nil
}

// coalesceProbe times 8 identical concurrent decide jobs twice: forced
// independent (NoSharedMemo) versus coalesced through the singleflight,
// and reports how many solvers the coalesced side actually ran.
func coalesceProbe(ctx context.Context, in hyperbench.Instance, cfg harness.Config) (soloMS, flightMS float64, flightRuns int64, err error) {
	const dup = 8
	k := in.KnownHW
	if k < 1 {
		k = 2
	}
	run := func(noShare bool) (float64, int64, error) {
		svc := htd.NewService(htd.ServiceConfig{
			TokenBudget:    cfg.Workers,
			MaxConcurrent:  dup,
			MaxQueue:       4 * dup,
			DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
		})
		defer svc.Close()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < dup; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				svc.Submit(ctx, htd.ServiceRequest{
					H: in.H, K: k, Workers: cfg.Workers,
					Hybrid: htd.HybridWeightedCount, HybridThreshold: 40,
					NoSharedMemo: noShare,
				})
			}()
		}
		wg.Wait()
		if ctx.Err() != nil {
			return 0, 0, ctx.Err()
		}
		return float64(time.Since(start)) / float64(time.Millisecond), svc.Stats().SolverRuns, nil
	}
	if soloMS, _, err = run(true); err != nil {
		return 0, 0, 0, err
	}
	if flightMS, flightRuns, err = run(false); err != nil {
		return 0, 0, 0, err
	}
	return soloMS, flightMS, flightRuns, nil
}
